// Quickstart: train TASER (TGAT backbone, both adaptive components, GPU
// neighbor finder, 20% feature cache) on the Wikipedia-style dataset and
// print the test MRR next to the non-adaptive baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"taser/internal/adaptive"
	"taser/internal/datasets"
	"taser/internal/train"
)

func main() {
	// 1. Generate a dynamic graph. The synthetic Wikipedia-style dataset has
	//    noisy interactions (deprecated links + random edges) that adaptive
	//    sampling learns to avoid.
	ds := datasets.Wikipedia(0.2, 1)
	fmt.Println(ds)

	// 2. Train the baseline: chronological mini-batches, uniform neighbors.
	base, err := train.New(train.Config{
		Model:  train.ModelTGAT,
		Epochs: 4, Hidden: 24, BatchSize: 150,
		CacheRatio: 0.2, MaxEvalEdges: 200, Seed: 7,
	}, ds)
	if err != nil {
		panic(err)
	}
	_, _, baseMRR := base.Run()

	// 3. Train TASER: adaptive mini-batch selection (importance scores over
	//    training edges) + adaptive neighbor sampling (encoder–decoder over
	//    25 candidates per root, GATv2 head).
	taser, err := train.New(train.Config{
		Model:  train.ModelTGAT,
		Epochs: 4, Hidden: 24, BatchSize: 150,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderGATv2,
		M: 25, N: 10,
		CacheRatio: 0.2, MaxEvalEdges: 200, Seed: 7,
	}, ds)
	if err != nil {
		panic(err)
	}
	_, _, taserMRR := taser.Run()

	fmt.Printf("\nbaseline test MRR: %.4f\n", baseMRR)
	fmt.Printf("TASER    test MRR: %.4f\n", taserMRR)
	fmt.Println("\nTASER runtime breakdown:", taser.Timer.Breakdown())
}
