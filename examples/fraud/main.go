// Fraud detection on a transaction graph: one of the motivating applications
// in the paper's introduction. We build a GDELT-style general graph (node
// and edge features, strong drift) where "fraudulent" interactions are the
// generator's ground-truth noise edges, train TASER, and show that
// (a) the adaptive mini-batch selector assigns lower importance to noise
// edges, and (b) the trained model separates clean from noisy interactions
// by predicted link probability.
//
// Run with:
//
//	go run ./examples/fraud
package main

import (
	"fmt"

	"taser/internal/adaptive"
	"taser/internal/datasets"
	"taser/internal/stats"
	"taser/internal/train"
)

func main() {
	ds := datasets.GDELT(0.15, 3)
	fmt.Println(ds)

	tr, err := train.New(train.Config{
		Model:  train.ModelGraphMixer, // cheap single-hop backbone
		Epochs: 5, Hidden: 24, BatchSize: 150, LR: 3e-3,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderLinear,
		CacheRatio: 0.2, MaxEvalEdges: 200, Seed: 11,
	}, ds)
	if err != nil {
		panic(err)
	}
	for e := 0; e < tr.Cfg.Epochs; e++ {
		res := tr.TrainEpoch()
		fmt.Printf("epoch %d loss=%.4f\n", e+1, res.MeanLoss)
	}

	// The importance scores P (Eq. 11) double as an unsupervised noise
	// signal: confidently predicted edges score near 1+γ, noise edges near γ.
	var clean, noisy stats.Welford
	for e := 0; e < ds.TrainEnd; e++ {
		score := tr.Selector.Score(e)
		if score == 1 {
			continue // never visited
		}
		if ds.Noise[e] {
			noisy.Add(score)
		} else {
			clean.Add(score)
		}
	}
	fmt.Printf("\nimportance score P(e) — clean edges: %s\n", clean.String())
	fmt.Printf("importance score P(e) — noise edges: %s\n", noisy.String())
	if clean.Mean() > noisy.Mean() {
		fmt.Println("→ the adaptive selector down-weights fraudulent interactions")
	} else {
		fmt.Println("→ separation not yet visible at this scale; train longer")
	}
	fmt.Printf("\ntest MRR: %.4f\n", tr.EvalMRR(train.SplitTest))
}
