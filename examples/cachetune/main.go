// Cache tuning: a systems-focused walkthrough of TASER's GPU feature cache
// (§III-D). It sweeps the cache ratio on a Reddit-style workload, reporting
// hit rate, PCIe vs VRAM traffic, and the modeled feature-slicing time, then
// compares the frequency policy against LRU under the same access stream —
// the data a practitioner needs to size VRAM for a new dataset.
//
// Run with:
//
//	go run ./examples/cachetune
package main

import (
	"fmt"

	"taser/internal/adaptive"
	"taser/internal/datasets"
	"taser/internal/train"
)

func main() {
	ds := datasets.Reddit(0.15, 9)
	fmt.Println(ds)
	fmt.Println("\ncache-ratio sweep (TGAT + TASER pipeline, 1 warm-up + 1 measured epoch)")
	fmt.Printf("%-8s %10s %12s %12s %14s\n", "ratio", "hit rate", "PCIe MB", "VRAM MB", "modeled FS")

	for _, ratio := range []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50} {
		tr := newTrainer(ds, ratio, "freq")
		tr.TrainEpoch() // warm-up trains the cache (Algorithm 3)
		if pol := tr.EdgeStore.Policy(); pol != nil {
			pol.ResetStats()
		}
		tr.Xfer.Reset()
		tr.TrainEpoch()
		hit := 0.0
		if pol := tr.EdgeStore.Policy(); pol != nil {
			hit = pol.HitRate()
		}
		fmt.Printf("%-8.2f %9.1f%% %12.1f %12.1f %14v\n",
			ratio, 100*hit,
			float64(tr.Xfer.PCIeBytes())/1e6, float64(tr.Xfer.VRAMBytes())/1e6,
			tr.Xfer.ModeledTime().Round(1e5))
	}

	fmt.Println("\nreplacement-policy comparison at 20% ratio")
	fmt.Printf("%-8s %10s\n", "policy", "hit rate")
	for _, policy := range []string{"freq", "lru"} {
		tr := newTrainer(ds, 0.20, policy)
		tr.TrainEpoch()
		tr.EdgeStore.Policy().ResetStats()
		tr.TrainEpoch()
		fmt.Printf("%-8s %9.1f%%\n", policy, 100*tr.EdgeStore.Policy().HitRate())
	}
	fmt.Println("\nAlgorithm 3's epoch-granular frequency policy needs one O(|E|)")
	fmt.Println("pass per epoch, while LRU pays pointer maintenance on every access.")
}

func newTrainer(ds *datasets.Dataset, ratio float64, policy string) *train.Trainer {
	tr, err := train.New(train.Config{
		Model:  train.ModelTGAT,
		Epochs: 2, Hidden: 16, TimeDim: 8, BatchSize: 150,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderGATv2,
		CacheRatio: ratio, CachePolicy: policy,
		MaxEvalEdges: 100, Seed: 13,
	}, ds)
	if err != nil {
		panic(err)
	}
	return tr
}
