// Sequential recommendation on a user–item bipartite graph (MovieLens-style):
// the paper's second motivating application. We train TGAT with TASER and
// produce top-k next-item recommendations for the most active users by
// ranking candidate destinations with the trained edge predictor — the same
// scoring path the MRR evaluation uses.
//
// Run with:
//
//	go run ./examples/recsys
package main

import (
	"fmt"
	"sort"

	"taser/internal/adaptive"
	"taser/internal/autograd"
	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/train"
)

func main() {
	ds := datasets.MovieLens(0.1, 5)
	fmt.Println(ds)

	tr, err := train.New(train.Config{
		Model:  train.ModelTGAT,
		Epochs: 4, Hidden: 24, BatchSize: 150, LR: 3e-3,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderGATv2,
		CacheRatio: 0.2, MaxEvalEdges: 150, Seed: 21,
	}, ds)
	if err != nil {
		panic(err)
	}
	for e := 0; e < tr.Cfg.Epochs; e++ {
		res := tr.TrainEpoch()
		fmt.Printf("epoch %d loss=%.4f\n", e+1, res.MeanLoss)
	}
	fmt.Printf("test MRR: %.4f\n\n", tr.EvalMRR(train.SplitTest))

	// Find the three most active users in the training window.
	activity := map[int32]int{}
	for _, ev := range ds.Graph.Events[:ds.TrainEnd] {
		activity[ev.Src]++
	}
	type ua struct {
		user int32
		n    int
	}
	users := make([]ua, 0, len(activity))
	for u, n := range activity {
		users = append(users, ua{u, n})
	}
	sort.Slice(users, func(i, j int) bool { return users[i].n > users[j].n })

	// Recommend: embed the user and a pool of candidate items at the end of
	// the training window, score all pairs, report the top 5.
	horizon := ds.Graph.Events[ds.TrainEnd-1].Time + 1
	const pool = 60
	for _, u := range users[:3] {
		items := make([]int32, pool)
		for i := range items {
			items[i] = int32(ds.Spec.NumSrc + (i*37)%(ds.Spec.NumNodes-ds.Spec.NumSrc))
		}
		scores := scorePairs(tr, u.user, items, horizon)
		type rec struct {
			item  int32
			score float64
		}
		recs := make([]rec, len(items))
		for i := range items {
			recs[i] = rec{items[i], scores[i]}
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
		fmt.Printf("user %4d (%3d interactions) → top items:", u.user, u.n)
		for _, r := range recs[:5] {
			fmt.Printf(" %d(%.2f)", r.item, r.score)
		}
		fmt.Println()
	}
}

// scorePairs embeds one user and a candidate item pool at time t and returns
// the predictor logits for every (user, item) pair.
func scorePairs(tr *train.Trainer, user int32, items []int32, t float64) []float64 {
	roots := make([]sampler.Target, 0, 1+len(items))
	roots = append(roots, sampler.Target{Node: user, Time: t})
	for _, it := range items {
		roots = append(roots, sampler.Target{Node: it, Time: t})
	}
	mb := tr.BuildMiniBatch(roots)
	g := autograd.New()
	emb, _ := tr.Model.Forward(g, mb)
	src := make([]int32, len(items))
	dst := make([]int32, len(items))
	for i := range items {
		src[i] = 0
		dst[i] = int32(1 + i)
	}
	logits := tr.Pred.ScoreGathered(g, emb, src, dst)
	out := make([]float64, len(items))
	copy(out, logits.Val.Data)
	return out
}
