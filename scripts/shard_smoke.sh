#!/usr/bin/env bash
# Sharded-serving smoke test (DESIGN.md §12): one real taser-serve process
# running a 4-shard fleet over localhost HTTP, mixed ingest/predict traffic,
# a hard kill, and a -recover restart over the same per-shard WAL directories
# — asserting watermark and prediction continuity across the crash.
#
#   fleet :18201 (-shards 4, durable, -wal-sync-every 1 → zero loss)
#   mixed ingest (cross-shard pairs included) + predict + embed
#   kill -9 → restart -recover → watermark equal, same probe scores bitwise,
#   ingest keeps working; contradictory flags (-shards + -replicate-from)
#   must fail fast before any of that.
set -euo pipefail

ADDR=127.0.0.1:18201
# -snapshot-every 1: publish every ingested event into serving, so pre-kill
# probes see the full stream — recovery always publishes everything it
# restored, and the continuity check below compares the two bitwise.
COMMON="-dataset wikipedia -scale 0.02 -epochs 0 -seed 42 -model graphmixer -shards 4 -snapshot-every 1"

WORK=$(mktemp -d /tmp/taser-shard-smoke.XXXXXX)
BIN=$WORK/taser-serve
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "[shard-smoke] $*"; }
die() { say "FAIL: $*"; exit 1; }

# wait_json URL PATTERN TRIES — poll until the JSON body matches the pattern.
wait_json() {
    local url=$1 pattern=$2 tries=${3:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS --max-time 2 "$url" 2>/dev/null | grep -q "$pattern"; then
            return 0
        fi
        sleep 0.2
    done
    die "$url never matched '$pattern'"
}

# field URL NAME — extract a numeric JSON field (scientific notation included).
field() { curl -fsS --max-time 2 "$1" | grep -o "\"$2\":[0-9.eE+-]*" | head -1 | cut -d: -f2; }

go build -o "$BIN" ./cmd/taser-serve
say "built $BIN"

say "contradictory flags must fail fast"
if "$BIN" $COMMON -replicate-from http://127.0.0.1:1 >"$WORK/flags.log" 2>&1; then
    die "-shards 4 with -replicate-from was accepted"
fi
grep -q "replicate-from" "$WORK/flags.log" || die "rejection did not name the flag"
if "$BIN" -dataset wikipedia -scale 0.02 -epochs 0 -shards 4 -model tgat >"$WORK/flags2.log" 2>&1; then
    die "-shards 4 with a multi-layer model was accepted"
fi
grep -q "graphmixer" "$WORK/flags2.log" || die "model rejection did not name graphmixer"

say "starting a 4-shard fleet on $ADDR"
"$BIN" $COMMON -addr "$ADDR" -wal-dir "$WORK/fleet" -wal-sync-every 1 \
    >"$WORK/fleet.log" 2>&1 &
FLEET=$!; PIDS+=("$FLEET"); disown
wait_json "http://$ADDR/v1/healthz" '"status":"ok"'
curl -fsS --max-time 2 "http://$ADDR/v1/stats" | grep -q '"shard_count":4' \
    || die "/v1/stats has no shard_count:4"
for s in 0 1 2 3; do
    [ -d "$WORK/fleet/shard-$s" ] || die "per-shard WAL dir shard-$s missing"
done

say "mixed ingest/predict traffic (cross-shard pairs included)"
T0=$(field "http://$ADDR/v1/stats" live_watermark)
for i in $(seq 60); do
    # Rotating endpoints across a handful of node ids guarantees both
    # same-shard and cross-shard events against any 4-way ring layout.
    SRC=$((i % 7)); DST=$(( (i * 3 + 1) % 11 ))
    [ "$SRC" = "$DST" ] && DST=$(( (DST + 1) % 11 ))
    curl -fsS --max-time 2 -X POST "http://$ADDR/v1/ingest" \
        -d "{\"src\":$SRC,\"dst\":$DST,\"t\":$(awk "BEGIN{printf \"%.1f\", $T0 + $i}")}" >/dev/null
    if [ $((i % 10)) = 0 ]; then
        curl -fsS --max-time 5 -X POST "http://$ADDR/v1/predict" \
            -d "{\"src\":$SRC,\"dst\":$DST,\"t\":9e9}" | grep -q '"score"' \
            || die "predict during ingest failed"
    fi
done
TEED=$(field "http://$ADDR/v1/stats" events_teed)
[ "${TEED%%.*}" -ge 1 ] || die "no events were teed across shards (teed=$TEED)"
EVENTS_PRE=$(field "http://$ADDR/v1/stats" events)
WM_PRE=$(field "http://$ADDR/v1/stats" live_watermark)
SCORE_PRE=$(curl -fsS --max-time 5 -X POST "http://$ADDR/v1/predict" \
    -d '{"src":1,"dst":4,"t":9e9}' | grep -o '"score":[0-9.eE+-]*' | cut -d: -f2)
EMB_PRE=$(curl -fsS --max-time 5 -X POST "http://$ADDR/v1/embed" \
    -d '{"node":1,"t":9e9}' | grep -o '"embedding":\[[^]]*\]')
say "pre-kill: $EVENTS_PRE events, watermark $WM_PRE, probe score $SCORE_PRE"

say "killing the fleet (kill -9) and restarting with -recover"
kill -9 "$FLEET"
"$BIN" $COMMON -addr "$ADDR" -wal-dir "$WORK/fleet" -wal-sync-every 1 \
    >"$WORK/recovered.log" 2>&1 &
REC=$!; PIDS+=("$REC"); disown
wait_json "http://$ADDR/v1/healthz" '"status":"ok"'
grep -q "recovered" "$WORK/recovered.log" || die "restart did not report a recovery"

say "watermark and event-count continuity (sync-every 1 → zero loss)"
EVENTS_POST=$(field "http://$ADDR/v1/stats" events)
WM_POST=$(field "http://$ADDR/v1/stats" live_watermark)
[ "$EVENTS_POST" = "$EVENTS_PRE" ] || die "events $EVENTS_PRE → $EVENTS_POST across the crash"
[ "$WM_POST" = "$WM_PRE" ] || die "watermark $WM_PRE → $WM_POST across the crash"

say "prediction continuity: the same probes must score bitwise-identically"
SCORE_POST=$(curl -fsS --max-time 5 -X POST "http://$ADDR/v1/predict" \
    -d '{"src":1,"dst":4,"t":9e9}' | grep -o '"score":[0-9.eE+-]*' | cut -d: -f2)
[ "$SCORE_POST" = "$SCORE_PRE" ] || die "probe score $SCORE_PRE → $SCORE_POST across the crash"
EMB_POST=$(curl -fsS --max-time 5 -X POST "http://$ADDR/v1/embed" \
    -d '{"node":1,"t":9e9}' | grep -o '"embedding":\[[^]]*\]')
[ "$EMB_POST" = "$EMB_PRE" ] || die "probe embedding changed across the crash"

say "the recovered fleet keeps accepting writes"
WM=$(field "http://$ADDR/v1/stats" live_watermark)
for i in $(seq 10); do
    curl -fsS --max-time 2 -X POST "http://$ADDR/v1/ingest" \
        -d "{\"src\":2,\"dst\":5,\"t\":$(awk "BEGIN{printf \"%.1f\", $WM + $i}")}" >/dev/null \
        || die "post-recovery ingest $i failed"
done

say "PASS: flag validation → 4-shard serve → kill → recover → continuity all held"
