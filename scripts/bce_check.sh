#!/usr/bin/env bash
# Bounds-check-elimination guard for the tensor hot loops.
#
# Compiles internal/tensor with -d=ssa/check_bce and diffs the emitted check
# sites against scripts/bce_allowlist.txt. Every allowlisted site is a
# per-row / per-tile setup check (slice-length hints, dst write-backs, pack
# loops); the innermost multiply-add loops carry none. A new site in a hot
# loop therefore shows up as a diff and fails CI.
#
# If the diff is legitimate (a kernel changed shape and its setup checks
# moved), regenerate the allowlist with:  scripts/bce_check.sh -update
set -eu
cd "$(dirname "$0")/.."

allowlist=scripts/bce_allowlist.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT

# The compiler emits one "Found IsInBounds"/"Found IsSliceInBounds" line per
# residual check; the build cache replays diagnostics, so repeated runs are
# stable. Sort for a canonical order.
go build -o /dev/null -gcflags='-d=ssa/check_bce' ./internal/tensor/ 2>&1 |
    grep 'Found Is' | sort -t: -k1,1 -k2,2n >"$current" || true

if [ "${1:-}" = "-update" ]; then
    cp "$current" "$allowlist"
    echo "bce_check: allowlist regenerated ($(wc -l <"$allowlist") sites)"
    exit 0
fi

if ! diff -u "$allowlist" "$current"; then
    echo >&2
    echo "bce_check: FAIL — bounds-check sites in internal/tensor changed." >&2
    echo "Lines prefixed '+' are new checks (a hot loop may have regressed);" >&2
    echo "lines prefixed '-' disappeared (update the allowlist)." >&2
    echo "After verifying no innermost loop regressed: scripts/bce_check.sh -update" >&2
    exit 1
fi
echo "bce_check: OK ($(wc -l <"$allowlist") allowlisted setup sites, hot loops clean)"
