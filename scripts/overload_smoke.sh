#!/usr/bin/env bash
# Overload-plane smoke test (DESIGN.md §14): one real taser-serve process
# with the SLO controller and a deliberately tiny admission gate, a parallel
# predict burst that must shed deliberately (429 + usable Retry-After, shed
# counters in /v1/stats), full recovery once the burst drains, and a SIGTERM
# mid-burst that must exit cleanly — the process-level analog of the
# in-process zero-goroutine-leak drain test (TestCloseDuringShedBurst).
#
#   server :18301 (-slo-p99 25ms -max-queue 2 -overload-capacity 1
#                  → at most 1 in service + 2 queued per lane; everything
#                    else sheds)
#   8 looping predict clients against that → guaranteed rejections
#   contradictory overload flags must fail fast before any of that.
set -euo pipefail

ADDR=127.0.0.1:18301
COMMON="-dataset wikipedia -scale 0.02 -epochs 0 -seed 42 -snapshot-every 1"

WORK=$(mktemp -d /tmp/taser-overload-smoke.XXXXXX)
BIN=$WORK/taser-serve
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "[overload-smoke] $*"; }
die() { say "FAIL: $*"; exit 1; }

# wait_json URL PATTERN TRIES — poll until the JSON body matches the pattern.
wait_json() {
    local url=$1 pattern=$2 tries=${3:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS --max-time 2 "$url" 2>/dev/null | grep -q "$pattern"; then
            return 0
        fi
        sleep 0.2
    done
    die "$url never matched '$pattern'"
}

# field URL NAME — extract a numeric JSON field (scientific notation included).
field() { curl -fsS --max-time 2 "$1" | grep -o "\"$2\":[0-9.eE+-]*" | head -1 | cut -d: -f2; }

# lane_shed LANE — the shed counter of one lane in the overload gate block.
lane_shed() {
    curl -fsS --max-time 2 "http://$ADDR/v1/stats" \
        | grep -o "\"$1\":{[^}]*" | grep -o '"shed":[0-9]*' | cut -d: -f2
}

go build -o "$BIN" ./cmd/taser-serve
say "built $BIN"

say "contradictory overload flags must fail fast"
if "$BIN" $COMMON -slo-p99 0s >"$WORK/flags1.log" 2>&1; then
    die "an explicit -slo-p99 0s was accepted"
fi
grep -q "slo-p99" "$WORK/flags1.log" || die "zero-SLO rejection did not name the flag"
if "$BIN" $COMMON -overload-interval 100ms >"$WORK/flags2.log" 2>&1; then
    die "-overload-interval without -slo-p99 was accepted"
fi
grep -q "overload-interval requires -slo-p99" "$WORK/flags2.log" \
    || die "interval-without-target rejection did not explain itself"
if "$BIN" $COMMON -overload-capacity 4 >"$WORK/flags3.log" 2>&1; then
    die "-overload-capacity without -max-queue was accepted"
fi
grep -q "overload-capacity requires -max-queue" "$WORK/flags3.log" \
    || die "capacity-without-queue rejection did not explain itself"
if "$BIN" $COMMON -max-queue -1 >"$WORK/flags4.log" 2>&1; then
    die "a negative -max-queue was accepted"
fi
grep -q "max-queue must be positive" "$WORK/flags4.log" \
    || die "negative-queue rejection did not explain itself"

say "starting taser-serve with the overload plane on tiny queues"
"$BIN" $COMMON -addr "$ADDR" -slo-p99 25ms -max-queue 2 -overload-capacity 1 \
    >"$WORK/serve.log" 2>&1 &
SRV=$!; PIDS+=("$SRV")
wait_json "http://$ADDR/v1/healthz" '"status":"ok"'
STATS=$(curl -fsS --max-time 2 "http://$ADDR/v1/stats")
echo "$STATS" | grep -q '"overload"' || die "/v1/stats has no overload block"
echo "$STATS" | grep -q '"effective_max_batch"' || die "overload block has no effective batch"
echo "$STATS" | grep -q '"target_p99_us"' || die "overload block has no controller view"
echo "$STATS" | grep -q '"lanes"' || die "overload block has no gate lanes"

say "burst: 8 looping clients against capacity 1 / queue 2 must shed"
T0=$(field "http://$ADDR/v1/stats" live_watermark)
QT=$(awk "BEGIN{printf \"%.1f\", $T0 + 1e9}")
flood() { # flood N_REQS OUT — sequential predicts, one status code per line
    local n=$1 out=$2
    for _ in $(seq "$n"); do
        curl -s -o /dev/null --max-time 10 -w '%{http_code}\n' \
            -X POST "http://$ADDR/v1/predict" \
            -d "{\"src\":1,\"dst\":4,\"t\":$QT}" >>"$out" 2>/dev/null || true
    done
}
FLOODERS=()
for c in $(seq 8); do
    flood 40 "$WORK/codes.$c" &
    FLOODERS+=("$!")
done
# While the flood holds the gate full, capture one full shed response: it
# must be a 429 and it must carry a usable (integer ≥ 1) Retry-After.
GOT429=""
for _ in $(seq 200); do
    RESP=$(curl -s -i --max-time 10 -X POST "http://$ADDR/v1/predict" \
        -d "{\"src\":2,\"dst\":5,\"t\":$QT}" || true)
    if echo "$RESP" | head -1 | grep -q 429; then GOT429=$RESP; break; fi
done
for pid in "${FLOODERS[@]}"; do wait "$pid"; done
[ -n "$GOT429" ] || die "never captured a 429 during the burst"
RA=$(echo "$GOT429" | grep -i '^retry-after:' | tr -dc 0-9)
[ -n "$RA" ] && [ "$RA" -ge 1 ] || die "429 carried no usable Retry-After (got '$RA')"
echo "$GOT429" | grep -q '"lane":"predict"' || die "429 body did not name the lane"
SHED_TOTAL=$(cat "$WORK"/codes.* | grep -c '^429' || true)
OK_TOTAL=$(cat "$WORK"/codes.* | grep -c '^200' || true)
[ "$SHED_TOTAL" -ge 1 ] || die "no flood request was shed (codes: $(sort "$WORK"/codes.* | uniq -c | tr '\n' ' '))"
[ "$OK_TOTAL" -ge 1 ] || die "no flood request succeeded — that is an outage, not load shedding"
STATS_SHED=$(lane_shed predict)
[ -n "$STATS_SHED" ] && [ "$STATS_SHED" -ge "$SHED_TOTAL" ] \
    || die "/v1/stats shed counter ($STATS_SHED) below the client-observed count ($SHED_TOTAL)"
say "burst: $OK_TOTAL served, $SHED_TOTAL shed with Retry-After=${RA}s, stats counter $STATS_SHED"

say "recovery: once the burst drains, serial requests must all succeed"
for _ in $(seq 100); do
    [ "$(field "http://$ADDR/v1/stats" in_service)" = "0" ] && break
    sleep 0.1
done
[ "$(field "http://$ADDR/v1/stats" in_service)" = "0" ] || die "gate never drained after the burst"
for i in $(seq 10); do
    curl -fsS --max-time 5 -X POST "http://$ADDR/v1/predict" \
        -d "{\"src\":$i,\"dst\":$((i + 3)),\"t\":$QT}" | grep -q '"score"' \
        || die "post-burst predict $i failed — shedding must stop when pressure does"
done

say "SIGTERM mid-burst: the drain must terminate, queued work must not hang it"
for c in $(seq 4); do
    flood 200 /dev/null &
    FLOODERS+=("$!")
done
sleep 0.3
kill -TERM "$SRV"
for _ in $(seq 150); do
    kill -0 "$SRV" 2>/dev/null || break
    sleep 0.2
done
kill -0 "$SRV" 2>/dev/null && die "server still alive 30s after SIGTERM under load"
grep -q "bye" "$WORK/serve.log" || die "shutdown did not reach the clean 'bye' exit"
wait 2>/dev/null || true

say "PASS: flag validation → tiny-gate boot → shed burst (429+Retry-After) → recovery → clean SIGTERM drain"
