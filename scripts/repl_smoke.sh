#!/usr/bin/env bash
# Two-process replication smoke test (DESIGN.md §11): a real leader and a
# real follower over localhost HTTP, a hard leader kill, a promotion, and
# the demoted leader's store re-joining the new leader — the full hand-off
# drill the in-process tests cover only single-process.
#
#   leader :18191 (durable) ← follower :18192 tails it
#   ingest → leader, follower converges, follower rejects writes with 421
#   kill -9 leader → POST /v1/repl/promote → follower serves writes
#   old store restarts as a follower of the new leader and converges
set -euo pipefail

ADDR_A=127.0.0.1:18191
ADDR_B=127.0.0.1:18192
ADDR_C=127.0.0.1:18193
COMMON="-dataset wikipedia -scale 0.02 -epochs 0 -seed 42"

WORK=$(mktemp -d /tmp/taser-repl-smoke.XXXXXX)
BIN=$WORK/taser-serve
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "[repl-smoke] $*"; }
die() { say "FAIL: $*"; exit 1; }

# wait_json URL PATTERN TRIES — poll until the JSON body matches the pattern.
wait_json() {
    local url=$1 pattern=$2 tries=${3:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS --max-time 2 "$url" 2>/dev/null | grep -q "$pattern"; then
            return 0
        fi
        sleep 0.2
    done
    die "$url never matched '$pattern'"
}

# field URL NAME — extract a numeric JSON field (scientific notation included).
field() { curl -fsS --max-time 2 "$1" | grep -o "\"$2\":[0-9.eE+-]*" | head -1 | cut -d: -f2; }

go build -o "$BIN" ./cmd/taser-serve
say "built $BIN"

say "starting leader on $ADDR_A"
"$BIN" $COMMON -addr "$ADDR_A" -wal-dir "$WORK/leader" >"$WORK/leader.log" 2>&1 &
LEADER=$!; PIDS+=("$LEADER"); disown
wait_json "http://$ADDR_A/v1/healthz" '"status":"ok"'

say "ingesting 100 events into the leader"
T0=$(field "http://$ADDR_A/v1/stats" live_watermark)
for i in $(seq 100); do
    curl -fsS --max-time 2 -X POST "http://$ADDR_A/v1/ingest" \
        -d "{\"src\":1,\"dst\":2,\"t\":$(awk "BEGIN{printf \"%.1f\", $T0 + $i}")}" >/dev/null
done
LEADER_EVENTS=$(field "http://$ADDR_A/v1/stats" events)

say "starting follower on $ADDR_B (replicating from $ADDR_A)"
"$BIN" $COMMON -addr "$ADDR_B" -wal-dir "$WORK/follower" \
    -replicate-from "http://$ADDR_A" >"$WORK/follower.log" 2>&1 &
FOLLOWER=$!; PIDS+=("$FOLLOWER"); disown
wait_json "http://$ADDR_B/v1/healthz" '"role":"follower"'
wait_json "http://$ADDR_B/v1/stats" '"repl_lag":0[,}]'
say "follower caught up (leader has $LEADER_EVENTS events)"

say "follower must reject writes with 421 and point at the leader"
CODE=$(curl -s --max-time 2 -o "$WORK/rej.json" -w '%{http_code}' -X POST \
    "http://$ADDR_B/v1/ingest" -d '{"src":1,"dst":2,"t":9e9}')
[ "$CODE" = 421 ] || die "follower ingest returned $CODE, want 421"
grep -q "$ADDR_A" "$WORK/rej.json" || die "421 body does not name the leader"

say "follower serves reads while tailing"
curl -fsS --max-time 5 -X POST "http://$ADDR_B/v1/predict" \
    -d '{"src":1,"dst":2,"t":9e9}' | grep -q '"score"' || die "follower predict failed"

say "killing the leader (kill -9) and promoting the follower"
kill -9 "$LEADER"
curl -fsS --max-time 5 -X POST "http://$ADDR_B/v1/repl/promote" | grep -q true
wait_json "http://$ADDR_B/v1/healthz" '"role":"leader"'

say "promoted follower must accept writes and keep serving"
WM=$(field "http://$ADDR_B/v1/stats" live_watermark)
for i in $(seq 70); do
    curl -fsS --max-time 2 -X POST "http://$ADDR_B/v1/ingest" \
        -d "{\"src\":3,\"dst\":4,\"t\":$(awk "BEGIN{printf \"%.1f\", $WM + $i}")}" \
        >"$WORK/ing.json" || die "promoted follower rejected write $i"
done
grep -q '"events"' "$WORK/ing.json" || die "promoted follower ingest gave no event count"
NEW_EVENTS=$(grep -o '"events":[0-9]*' "$WORK/ing.json" | cut -d: -f2)
curl -fsS --max-time 5 -X POST "http://$ADDR_B/v1/predict" \
    -d '{"src":3,"dst":4,"t":9e9}' | grep -q '"score"' || die "post-promotion predict failed"

say "demoted leader's store re-joins as a follower of the new leader"
"$BIN" $COMMON -addr "$ADDR_C" -wal-dir "$WORK/leader" \
    -replicate-from "http://$ADDR_B" >"$WORK/rejoin.log" 2>&1 &
REJOIN=$!; PIDS+=("$REJOIN"); disown
wait_json "http://$ADDR_C/v1/healthz" '"role":"follower"'
wait_json "http://$ADDR_C/v1/stats" '"repl_lag":0[,}]'
REJOIN_APPLIED=$(field "http://$ADDR_C/v1/stats" repl_applied)
# The rejoined node must have advanced past the kill point into the new
# leader's writes; only the new leader's unsynced tail (< 64) may be missing.
[ "$REJOIN_APPLIED" -ge "$((NEW_EVENTS - 64))" ] || \
    die "rejoined node applied $REJOIN_APPLIED events, new leader has $NEW_EVENTS"

say "PASS: converge → 421 → kill → promote → write → re-join all held"
