// Command taser-datagen prints Table II's dataset statistics and optionally
// dumps a dataset's event stream as CSV for external analysis.
//
// Usage:
//
//	taser-datagen                        # Table II statistics
//	taser-datagen -dump wikipedia > w.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"taser/internal/datasets"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.25, "dataset scale multiplier")
		seed  = flag.Uint64("seed", 42, "random seed")
		dump  = flag.String("dump", "", "dump one dataset's events as CSV to stdout")
	)
	flag.Parse()

	if *dump != "" {
		ds, ok := datasets.ByName(*dump, *scale, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "taser-datagen: unknown dataset %q\n", *dump)
			os.Exit(2)
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		fmt.Fprintln(w, "event,src,dst,time,noise")
		for i, e := range ds.Graph.Events {
			fmt.Fprintf(w, "%d,%d,%d,%g,%t\n", i, e.Src, e.Dst, e.Time, ds.Noise[i])
		}
		return
	}

	fmt.Printf("Table II — dataset statistics (scale=%.2f, seed=%d)\n", *scale, *seed)
	for _, ds := range datasets.All(*scale, *seed) {
		fmt.Println(ds)
		// Extra structural diagnostics beyond Table II.
		noisy := 0
		for _, b := range ds.Noise {
			if b {
				noisy++
			}
		}
		maxDeg := 0
		for v := int32(0); int(v) < ds.Spec.NumNodes; v++ {
			if d := ds.TCSR.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		avgDeg := float64(2*len(ds.Graph.Events)) / float64(ds.Spec.NumNodes)
		fmt.Printf("           noise=%.1f%%  avg deg=%.1f  max deg=%d\n",
			100*float64(noisy)/float64(len(ds.Noise)), avgDeg, maxDeg)
	}
}
