package main

import (
	"strings"
	"testing"
	"time"
)

// ok is a valid single-engine baseline every case below perturbs.
func okFlags() flagValues {
	return flagValues{shards: 1, model: "tgat"}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*flagValues)
		explicit []string
		wantErr  string // substring; "" = must pass
	}{
		{name: "defaults pass", mutate: nil},
		{name: "overload fully on", mutate: func(v *flagValues) {
			v.sloP99 = 25 * time.Millisecond
			v.ovInterval = 100 * time.Millisecond
			v.maxQueue = 64
			v.ovCap = 32
		}, explicit: []string{"slo-p99", "overload-interval", "max-queue", "overload-capacity"}},
		{name: "controller alone", mutate: func(v *flagValues) { v.sloP99 = time.Millisecond }, explicit: []string{"slo-p99"}},
		{name: "admission alone", mutate: func(v *flagValues) { v.maxQueue = 8 }, explicit: []string{"max-queue"}},
		{name: "sharded overload", mutate: func(v *flagValues) {
			v.shards = 4
			v.model = "graphmixer"
			v.maxQueue = 8
		}, explicit: []string{"max-queue"}},

		{name: "explicit zero slo", mutate: nil, explicit: []string{"slo-p99"}, wantErr: "-slo-p99 must be a positive duration"},
		{name: "negative slo", mutate: func(v *flagValues) { v.sloP99 = -time.Second }, explicit: []string{"slo-p99"}, wantErr: "-slo-p99 must be a positive duration"},
		{name: "explicit zero queue", mutate: nil, explicit: []string{"max-queue"}, wantErr: "-max-queue must be positive"},
		{name: "interval without target", mutate: func(v *flagValues) { v.ovInterval = time.Second }, explicit: []string{"overload-interval"}, wantErr: "-overload-interval requires -slo-p99"},
		{name: "capacity without queue", mutate: func(v *flagValues) { v.ovCap = 16 }, explicit: []string{"overload-capacity"}, wantErr: "-overload-capacity requires -max-queue"},

		{name: "zero shards", mutate: func(v *flagValues) { v.shards = 0 }, wantErr: "-shards must be at least 1"},
		{name: "sharded replica", mutate: func(v *flagValues) {
			v.shards = 2
			v.model = "graphmixer"
			v.replFrom = "http://leader:8080"
		}, wantErr: "cannot combine with -replicate-from"},
		{name: "sharded finetune", mutate: func(v *flagValues) {
			v.shards = 2
			v.model = "graphmixer"
			v.ftOn = true
		}, wantErr: "cannot combine with -finetune"},
		{name: "sharded tgat", mutate: func(v *flagValues) { v.shards = 2 }, wantErr: "requires -model graphmixer"},
		{name: "recover without wal", mutate: nil, explicit: []string{"recover"}, wantErr: "-recover requires -wal-dir"},
		{name: "promote without leader", mutate: func(v *flagValues) { v.promote = true }, wantErr: "-promote requires -replicate-from"},
		{name: "replica finetune", mutate: func(v *flagValues) {
			v.replFrom = "http://leader:8080"
			v.ftOn = true
		}, wantErr: "-finetune cannot run on a replica"},
		{name: "replica replay", mutate: func(v *flagValues) {
			v.replFrom = "http://leader:8080"
			v.replay = true
		}, wantErr: "-replay cannot run on a replica"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := okFlags()
			if tc.mutate != nil {
				tc.mutate(&v)
			}
			explicit := map[string]bool{}
			for _, name := range tc.explicit {
				explicit[name] = true
			}
			err := validateFlags(v, explicit)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want nil", v, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags(%+v) = %v, want error containing %q", v, err, tc.wantErr)
			}
		})
	}
}
