// Command taser-serve runs the online inference subsystem behind an
// HTTP/JSON API: it pretrains a model offline on a dataset's training split,
// bootstraps the serving engine with those events, and then serves link
// prediction and node embeddings while accepting streaming ingest — the
// deployment loop of the paper's motivating applications. With -finetune it
// also attaches the continual-learning fine-tuner (internal/finetune), which
// tails the ingest stream and publishes updated weights into serving without
// ever blocking prediction.
//
// Usage:
//
//	taser-serve -dataset wikipedia -scale 0.1 -epochs 2 -addr :8080 [-finetune] [-wal-dir DIR]
//
// With -wal-dir the engine write-ahead-logs every ingested event and pairs
// published weights with checkpoints; on restart it recovers the stream
// (checkpoint + WAL replay) instead of re-bootstrapping, so the process picks
// up where the previous one crashed — losing at most the unsynced WAL tail,
// bounded by -wal-sync-every events.
//
// Endpoints (all JSON; see serve.NewHandler):
//
//	POST /v1/ingest   {"src":1,"dst":2,"t":123.5,"feat":[...]}   → {"events":N,"watermark":T}
//	POST /v1/predict  {"src":1,"dst":2,"t":123.5}                → {"score":S,"version":V,"weights":W,"cached":B}
//	POST /v1/embed    {"node":1,"t":123.5}                       → {"embedding":[...],"version":V,"weights":W,"cached":B}
//	GET  /v1/stats                                               → engine counters and latency percentiles
//
// Out-of-order events are rejected with HTTP 409 and the current watermark
// in the error body, so producers can resynchronize.
//
// Sharding: -shards K (K > 1, requires -model graphmixer) partitions the node
// space across K engines behind a consistent-hash router. Ingest routes each
// event to the shard owning its destination (teed to the source's owner when
// that differs), prediction scatter/gathers across shards when the endpoints
// hash apart, and -wal-dir gives every shard its own store directory
// (<dir>/shard-0..K-1) with independent recovery. /v1/stats reports merged
// totals plus a per-shard block each. Sharding excludes -replicate-from,
// -repl-listen, -promote and -finetune (single-engine features; DESIGN.md §12
// explains how they compose per-shard later).
//
// Replication (internal/replica): a durable node serves its WAL to read
// replicas under /v1/repl/ (or on a dedicated -repl-listen address). A node
// started with -replicate-from tails that leader instead of bootstrapping
// from the dataset: it catches up from the leader's shipped checkpoint,
// applies the streamed log through the identical ingest path (so its state
// is bitwise-equal to the leader's at every applied sequence), serves reads,
// and answers ingest with 421 + the leader's URL. POST /v1/repl/promote (or
// -promote at startup, or -failover-after of leader silence) seals the
// applied prefix and makes the node writable — the leader hand-off.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taser/internal/datasets"
	"taser/internal/finetune"
	"taser/internal/models"
	"taser/internal/overload"
	"taser/internal/replica"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/train"
)

func main() {
	var (
		dataset   = flag.String("dataset", "wikipedia", "dataset: wikipedia|reddit|flights|movielens|gdelt")
		scale     = flag.Float64("scale", 0.1, "dataset scale multiplier")
		model     = flag.String("model", "tgat", "backbone: tgat|graphmixer")
		epochs    = flag.Int("epochs", 2, "offline pretraining epochs")
		hidden    = flag.Int("hidden", 24, "hidden dimension")
		batch     = flag.Int("batch", 150, "pretraining batch size")
		n         = flag.Int("n", 10, "supporting neighbors per hop")
		seed      = flag.Uint64("seed", 42, "random seed")
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.Int("shards", 1, "serving shards: partition the node space across K engines behind a consistent-hash router (requires -model graphmixer for K>1)")
		maxBatch  = flag.Int("max-batch", 32, "max roots per serving micro-batch")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "max coalescing wait per micro-batch")
		cacheSize = flag.Int("emb-cache", 4096, "embedding-cache capacity in nodes (0 disables)")
		snapEvery = flag.Int("snapshot-every", 256, "publish a snapshot every k ingested events")
		latWindow = flag.Int("latency-window", 0, "request latencies retained for P50/P99 stats (0 = default 4096)")
		replay    = flag.Bool("replay", false, "replay the val/test split through ingest at startup")
		quant     = flag.String("quant", "none", "serving weight quantization: none|f32|int8 (fine-tuning keeps f64 masters)")

		walDir    = flag.String("wal-dir", "", "durable store directory: WAL + checkpoints (empty = durability off)")
		walSync   = flag.Int("wal-sync-every", 0, "events per WAL group commit (0 = serve default 64; 1 = fsync every event)")
		ckptEvery = flag.Int("checkpoint-every", 0, "events between periodic checkpoints (0 = only on weight publication, bootstrap and shutdown)")
		doRecover = flag.Bool("recover", true, "recover the stream from -wal-dir at startup (checkpoint + WAL replay)")

		ftOn       = flag.Bool("finetune", false, "attach the online fine-tuner (continual learning from the ingest stream)")
		ftInterval = flag.Duration("finetune-interval", 0, "fine-tune round cadence (0 = finetune default)")
		ftWindow   = flag.Int("replay-window", 0, "recent events replayed per fine-tune round (0 = finetune default)")
		ftLR       = flag.Float64("finetune-lr", 0, "fine-tuning learning rate (0 = finetune default)")

		sloP99     = flag.Duration("slo-p99", 0, "p99 latency target: the engine retunes its effective batching against it (0 = controller off)")
		ovInterval = flag.Duration("overload-interval", 0, "SLO controller decision cadence (0 = default 250ms; requires -slo-p99)")
		maxQueue   = flag.Int("max-queue", 0, "bounded admission: waiters per priority lane before shedding with 429 (0 = admission off)")
		ovCap      = flag.Int("overload-capacity", 0, "concurrent requests admitted across lanes (0 = default 2×-max-batch; requires -max-queue)")

		replFrom   = flag.String("replicate-from", "", "run as a read replica tailing this leader base URL (e.g. http://host:8080)")
		replListen = flag.String("repl-listen", "", "serve the replication endpoints on a dedicated address (default: mounted under /v1/repl/ on -addr)")
		promote    = flag.Bool("promote", false, "promote immediately after catching up (replica takes over as leader)")
		failover   = flag.Duration("failover-after", 0, "auto-promote after this much leader silence (0 = manual promotion only)")
		lagBound   = flag.Uint64("lag-threshold", 0, "replication lag above which /v1/healthz reports unready (0 = replica default)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
	if err := validateFlags(flagValues{
		walDir: *walDir, replFrom: *replFrom, replListen: *replListen,
		promote: *promote, ftOn: *ftOn, replay: *replay,
		shards: *shards, model: *model,
		sloP99: *sloP99, ovInterval: *ovInterval,
		maxQueue: *maxQueue, ovCap: *ovCap,
	}, explicit); err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(2)
	}
	quantMode, err := models.ParseQuantization(*quant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(2)
	}

	ds, ok := datasets.ByName(*dataset, *scale, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "taser-serve: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	fmt.Println(ds)

	tr, err := train.New(train.Config{
		Model: train.ModelKind(*model), Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: *hidden, BatchSize: *batch, Epochs: *epochs, N: *n, Seed: *seed,
	}, ds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	}
	for e := 0; e < *epochs; e++ {
		res := tr.TrainEpoch()
		fmt.Printf("pretrain epoch %2d  loss=%.4f  (%.1fs)\n", e+1, res.MeanLoss, res.Duration.Seconds())
	}

	cfg := serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: *n, Policy: sampler.MostRecent,
		MaxBatch: *maxBatch, MaxWait: *maxWait,
		CacheSize: *cacheSize, SnapshotEvery: *snapEvery, LatencyWindow: *latWindow,
		FinetuneInterval: *ftInterval, ReplayWindow: *ftWindow,
		Durability: serve.Durability{Dir: *walDir, SyncEvery: *walSync, CheckpointEvery: *ckptEvery},
		Overload:   overload.Config{TargetP99: *sloP99, Interval: *ovInterval, MaxQueue: *maxQueue, Capacity: *ovCap},
		Quantize:   quantMode,
		Seed:       *seed,
	}
	if *shards > 1 {
		// The sharded plane has its own serving loop: per-shard WAL dirs,
		// aggregate recovery, no replication/fine-tuning (validated above).
		runFleet(cfg, ds, *shards, *addr, *walDir, *doRecover, *replay)
		return
	}
	engine, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	}

	// Recover the stream from the durable store when one exists; otherwise
	// bootstrap with the training split. The rest of the stream arrives via
	// /v1/ingest (or -replay for a self-contained demo). A recovered store
	// already contains the bootstrap prefix (Bootstrap WAL-logs its events),
	// so re-bootstrapping would double-ingest it.
	recovered := false
	if *walDir != "" && *doRecover {
		rep, err := engine.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: recover: %v\n", err)
			os.Exit(1)
		}
		if rep.HasWatermark {
			recovered = true
			fmt.Printf("recovered %d events (checkpoint %d + replay %d, healed %d) to watermark t=%v, weights v%d in %v\n",
				rep.CheckpointEvents+rep.ReplayedEvents, rep.CheckpointEvents, rep.ReplayedEvents,
				rep.HealedEvents, rep.Watermark, rep.WeightVersion, rep.Duration.Round(time.Millisecond))
		} else {
			fmt.Printf("durable store %s is empty: fresh start\n", *walDir)
		}
	}
	feats := ds.EdgeFeat
	if !recovered && *replFrom == "" {
		if err := engine.Bootstrap(ds.Graph.Events[:ds.TrainEnd], feats.SliceRows(ds.TrainEnd)); err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: bootstrap: %v\n", err)
			os.Exit(1)
		}
		wm, _ := engine.Watermark()
		fmt.Printf("bootstrapped %d events (watermark t=%v)\n", ds.TrainEnd, wm)
	}
	if *replay && !recovered {
		for i := ds.TrainEnd; i < len(ds.Graph.Events); i++ {
			ev := ds.Graph.Events[i]
			var row []float64
			if feats.Cols > 0 {
				row = feats.Row(i)
			}
			if err := engine.Ingest(ev.Src, ev.Dst, ev.Time, row); err != nil {
				fmt.Fprintf(os.Stderr, "taser-serve: replay: %v\n", err)
				os.Exit(1)
			}
		}
		engine.PublishSnapshot() // serve the replayed tail immediately
		wm, _ := engine.Watermark()
		fmt.Printf("replayed to watermark t=%v\n", wm)
	}

	// Follower: catch up from the leader's checkpoint (on top of whatever the
	// local durable store already recovered), then tail its WAL. The dataset
	// bootstrap above is skipped — the stream, training split included,
	// arrives from the leader, so the two states stay bitwise-equal.
	var follower *replica.Follower
	if *replFrom != "" {
		follower, err = replica.StartFollower(replica.FollowerConfig{
			Engine: engine, Leader: *replFrom,
			FailoverAfter: *failover, LagThreshold: *lagBound,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: replicate: %v\n", err)
			os.Exit(1)
		}
		st := follower.Status()
		fmt.Printf("replicating from %s: %d events applied at start (leader synced %d)\n",
			*replFrom, st.Applied, st.LeaderSeq)
		if *promote {
			follower.Promote()
			fmt.Println("promoted: this node is now the writable leader")
		}
	}

	var tuner *finetune.Tuner
	if *ftOn {
		tuner, err = finetune.New(finetune.Config{
			Engine: engine, Model: tr.Model, Pred: tr.Pred,
			NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			NumNodes: ds.Spec.NumNodes, NumSrc: ds.Spec.NumSrc,
			Budget: *n, Policy: sampler.MostRecent,
			LR: *ftLR, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: finetune: %v\n", err)
			os.Exit(1)
		}
		tuner.Start()
		fmt.Println("online fine-tuner attached (weights publish lock-free into serving)")
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting connections,
	// finish in-flight handlers, and only then close the tuner and engine so
	// every accepted micro-batch is served. A bare http.ListenAndServe would
	// block until process kill and the deferred closes would never run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hc := serve.HandlerConfig{}
	if follower != nil {
		hc.LeaderURL = func() string { return *replFrom }
		hc.StatsExtra = follower.StatsExtra
		hc.Health = follower.Healthy
	}
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandlerConfig(engine, hc))
	if follower != nil {
		mux.HandleFunc("POST /v1/repl/promote", func(w http.ResponseWriter, r *http.Request) {
			follower.Promote()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"promoted":true}`)
		})
	}
	var replSrv *http.Server
	if *walDir != "" {
		// A durable node is a shippable log: mount the leader endpoints so
		// replicas (and, after a promotion, the demoted ex-leader) can tail it.
		leader, err := replica.NewLeader(engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
			os.Exit(1)
		}
		if *replListen != "" {
			replSrv = &http.Server{Addr: *replListen, Handler: leader.Handler()}
			go func() {
				if err := replSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "taser-serve: repl listener: %v\n", err)
				}
			}()
			fmt.Printf("replication endpoints on %s\n", *replListen)
		} else {
			mux.Handle("GET /v1/repl/", leader.Handler())
		}
	}
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s\n", *addr)

	shutdown := func() {
		if follower != nil {
			follower.Close() // stop tailing before the engine goes away
			st := follower.Status()
			fmt.Printf("replication: state %v, %d applied (leader synced %d, lag %d), %d polls (%d fault, %d dup)\n",
				st.State, st.Applied, st.LeaderSeq, st.Lag, st.Polls, st.FaultPolls, st.DupRecords)
		}
		if replSrv != nil {
			_ = replSrv.Close()
		}
		if tuner != nil {
			tuner.Close()
			st := tuner.Stats()
			fmt.Printf("fine-tuner: %d rounds, %d steps, %d events, published v%d (last loss %.4f)\n",
				st.Rounds, st.Steps, st.Events, st.Published, st.LastLoss)
			if st.Failed != "" {
				fmt.Fprintf(os.Stderr, "taser-serve: fine-tuner stopped early: %s\n", st.Failed)
			}
		}
		engine.Close() // flushes the WAL and writes the final checkpoint
		if st := engine.Stats(); st.Durable {
			fmt.Printf("durable store: %d events logged (%d synced, %d fsync batches, %d segments), %d checkpoints (last covers %d events, %d failed)\n",
				st.WALAppended, st.WALSynced, st.WALSyncs, st.WALSegments,
				st.Checkpoints, st.CheckpointEvents, st.CheckpointFails)
		}
	}
	select {
	case err := <-errc: // listener failed before any signal
		shutdown()
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("shutting down: draining HTTP connections, the fine-tuner and the engine")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: shutdown: %v\n", err)
	}
	shutdown()
	fmt.Println("bye")
}

// runFleet is the sharded serving loop: K engines behind the consistent-hash
// router, each with its own WAL directory under -wal-dir, served through the
// same HTTP surface (the handler speaks serve.Server, which both the bare
// engine and the fleet implement). Replication and fine-tuning are
// single-engine features — validateFlags already rejected them for K>1.
func runFleet(cfg serve.Config, ds *datasets.Dataset, shards int, addr, walDir string, doRecover, replay bool) {
	fleet, err := serve.NewFleet(serve.FleetConfig{Config: cfg, Shards: shards})
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sharded plane: %d engines on a consistent-hash ring (vnodes=%d/shard)\n", shards, serve.DefaultVNodes)

	recovered := false
	if walDir != "" && doRecover {
		rep, err := fleet.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: recover: %v\n", err)
			os.Exit(1)
		}
		if _, has := fleet.Watermark(); has {
			recovered = true
			fmt.Printf("recovered %d distinct events (+%d teed copies) across %d shards, weights v%d in %v\n",
				rep.Events, rep.Teed, shards, rep.WeightVersion, rep.Duration.Round(time.Millisecond))
			for i, sr := range rep.Shards {
				fmt.Printf("  shard %d: checkpoint %d + replay %d (healed %d), watermark t=%v\n",
					i, sr.CheckpointEvents, sr.ReplayedEvents, sr.HealedEvents, sr.Watermark)
			}
		} else {
			fmt.Printf("durable store %s is empty: fresh start\n", walDir)
		}
	}
	feats := ds.EdgeFeat
	if !recovered {
		if err := fleet.Bootstrap(ds.Graph.Events[:ds.TrainEnd], feats.SliceRows(ds.TrainEnd)); err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: bootstrap: %v\n", err)
			os.Exit(1)
		}
		wm, _ := fleet.Watermark()
		fmt.Printf("bootstrapped %d events (watermark t=%v)\n", ds.TrainEnd, wm)
	}
	if replay && !recovered {
		for i := ds.TrainEnd; i < len(ds.Graph.Events); i++ {
			ev := ds.Graph.Events[i]
			var row []float64
			if feats.Cols > 0 {
				row = feats.Row(i)
			}
			if err := fleet.Ingest(ev.Src, ev.Dst, ev.Time, row); err != nil {
				fmt.Fprintf(os.Stderr, "taser-serve: replay: %v\n", err)
				os.Exit(1)
			}
		}
		fleet.PublishSnapshots()
		wm, _ := fleet.Watermark()
		fmt.Printf("replayed to watermark t=%v\n", wm)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: serve.NewHandler(fleet)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s\n", addr)

	shutdown := func() {
		fleet.Close() // drains in-flight ops, then each shard checkpoints
		st := fleet.Stats()
		fmt.Printf("fleet: %d distinct events (+%d teed), %d requests (%d cross-shard, %d gather retries)\n",
			st.Ingested, st.Teed, st.Requests, st.CrossShard, st.GatherRetries)
		for i, ss := range st.Shards {
			fmt.Printf("  shard %d: %d events, %d requests, snapshot v%d\n", i, ss.Events, ss.Requests, ss.SnapshotVersion)
		}
	}
	select {
	case err := <-errc:
		shutdown()
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down: draining HTTP connections and the fleet")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: shutdown: %v\n", err)
	}
	shutdown()
	fmt.Println("bye")
}

// flagValues carries the parsed flag combination validateFlags reasons over
// (a struct so the table test can enumerate combinations without a flag set).
type flagValues struct {
	walDir, replFrom, replListen string
	promote, ftOn, replay        bool
	shards                       int
	model                        string
	sloP99, ovInterval           time.Duration
	maxQueue, ovCap              int
}

// validateFlags fails fast on contradictory flag combinations instead of
// letting them surface as confusing runtime behavior (a -checkpoint-every
// that silently does nothing, a -promote with no leader to catch up from).
// explicit marks flags the user set on the command line — a knob explicitly
// set to a value that disables it (-slo-p99 0) is a contradiction, while the
// same value as a default is simply off.
func validateFlags(v flagValues, explicit map[string]bool) error {
	fail := fmt.Errorf
	if v.shards < 1 {
		return fail("-shards must be at least 1, got %d", v.shards)
	}
	if v.shards > 1 {
		// The sharded plane composes with durability (per-shard WALs) but not
		// yet with replication or online fine-tuning — those wrap a single
		// engine; DESIGN.md §12 explains why they will compose per-shard.
		if v.replFrom != "" {
			return fail("-shards %d cannot combine with -replicate-from: replication wraps a single engine (per-shard replication is future work)", v.shards)
		}
		if v.replListen != "" {
			return fail("-shards %d cannot combine with -repl-listen: a fleet does not ship one WAL (each shard has its own)", v.shards)
		}
		if v.promote {
			return fail("-promote requires -replicate-from, which -shards %d excludes", v.shards)
		}
		if v.ftOn {
			return fail("-shards %d cannot combine with -finetune: the fine-tuner tails a single engine's stream", v.shards)
		}
		if v.model != "graphmixer" {
			return fail("-shards %d requires -model graphmixer: the endpoint tee keeps one hop shard-locally complete, multi-hop backbones (%s) would read incomplete neighborhoods", v.shards, v.model)
		}
	}
	if explicit["slo-p99"] && v.sloP99 <= 0 {
		return fail("-slo-p99 must be a positive duration, got %v", v.sloP99)
	}
	if explicit["max-queue"] && v.maxQueue <= 0 {
		return fail("-max-queue must be positive, got %d (omit the flag to leave admission control off)", v.maxQueue)
	}
	if (explicit["overload-interval"] || v.ovInterval != 0) && v.sloP99 <= 0 {
		return fail("-overload-interval requires -slo-p99 (there is no controller to tick without a target)")
	}
	if (explicit["overload-capacity"] || v.ovCap != 0) && v.maxQueue <= 0 {
		return fail("-overload-capacity requires -max-queue (there is no admission gate without a queue bound)")
	}
	if v.walDir == "" {
		for _, name := range []string{"recover", "wal-sync-every", "checkpoint-every"} {
			if explicit[name] {
				return fail("-%s requires -wal-dir (durability is off without a store directory)", name)
			}
		}
		if v.replListen != "" {
			return fail("-repl-listen requires -wal-dir (a leader ships its WAL; there is no log without one)")
		}
	}
	if v.replFrom == "" {
		if v.promote {
			return fail("-promote requires -replicate-from (only a replica can be promoted)")
		}
		for _, name := range []string{"failover-after", "lag-threshold"} {
			if explicit[name] {
				return fail("-%s requires -replicate-from", name)
			}
		}
		return nil
	}
	if v.ftOn {
		return fail("-finetune cannot run on a replica: weights replicate from the leader's checkpoints")
	}
	if v.replay {
		return fail("-replay cannot run on a replica: the stream arrives from the leader")
	}
	return nil
}
