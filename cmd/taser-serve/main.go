// Command taser-serve runs the online inference subsystem behind an
// HTTP/JSON API: it pretrains a model offline on a dataset's training split,
// bootstraps the serving engine with those events, and then serves link
// prediction and node embeddings while accepting streaming ingest — the
// deployment loop of the paper's motivating applications. With -finetune it
// also attaches the continual-learning fine-tuner (internal/finetune), which
// tails the ingest stream and publishes updated weights into serving without
// ever blocking prediction.
//
// Usage:
//
//	taser-serve -dataset wikipedia -scale 0.1 -epochs 2 -addr :8080 [-finetune] [-wal-dir DIR]
//
// With -wal-dir the engine write-ahead-logs every ingested event and pairs
// published weights with checkpoints; on restart it recovers the stream
// (checkpoint + WAL replay) instead of re-bootstrapping, so the process picks
// up where the previous one crashed — losing at most the unsynced WAL tail,
// bounded by -wal-sync-every events.
//
// Endpoints (all JSON; see serve.NewHandler):
//
//	POST /v1/ingest   {"src":1,"dst":2,"t":123.5,"feat":[...]}   → {"events":N,"watermark":T}
//	POST /v1/predict  {"src":1,"dst":2,"t":123.5}                → {"score":S,"version":V,"weights":W,"cached":B}
//	POST /v1/embed    {"node":1,"t":123.5}                       → {"embedding":[...],"version":V,"weights":W,"cached":B}
//	GET  /v1/stats                                               → engine counters and latency percentiles
//
// Out-of-order events are rejected with HTTP 409 and the current watermark
// in the error body, so producers can resynchronize.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taser/internal/datasets"
	"taser/internal/finetune"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/train"
)

func main() {
	var (
		dataset   = flag.String("dataset", "wikipedia", "dataset: wikipedia|reddit|flights|movielens|gdelt")
		scale     = flag.Float64("scale", 0.1, "dataset scale multiplier")
		model     = flag.String("model", "tgat", "backbone: tgat|graphmixer")
		epochs    = flag.Int("epochs", 2, "offline pretraining epochs")
		hidden    = flag.Int("hidden", 24, "hidden dimension")
		batch     = flag.Int("batch", 150, "pretraining batch size")
		n         = flag.Int("n", 10, "supporting neighbors per hop")
		seed      = flag.Uint64("seed", 42, "random seed")
		addr      = flag.String("addr", ":8080", "listen address")
		maxBatch  = flag.Int("max-batch", 32, "max roots per serving micro-batch")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "max coalescing wait per micro-batch")
		cacheSize = flag.Int("emb-cache", 4096, "embedding-cache capacity in nodes (0 disables)")
		snapEvery = flag.Int("snapshot-every", 256, "publish a snapshot every k ingested events")
		latWindow = flag.Int("latency-window", 0, "request latencies retained for P50/P99 stats (0 = default 4096)")
		replay    = flag.Bool("replay", false, "replay the val/test split through ingest at startup")

		walDir    = flag.String("wal-dir", "", "durable store directory: WAL + checkpoints (empty = durability off)")
		walSync   = flag.Int("wal-sync-every", 0, "events per WAL group commit (0 = serve default 64; 1 = fsync every event)")
		ckptEvery = flag.Int("checkpoint-every", 0, "events between periodic checkpoints (0 = only on weight publication, bootstrap and shutdown)")
		doRecover = flag.Bool("recover", true, "recover the stream from -wal-dir at startup (checkpoint + WAL replay)")

		ftOn       = flag.Bool("finetune", false, "attach the online fine-tuner (continual learning from the ingest stream)")
		ftInterval = flag.Duration("finetune-interval", 0, "fine-tune round cadence (0 = finetune default)")
		ftWindow   = flag.Int("replay-window", 0, "recent events replayed per fine-tune round (0 = finetune default)")
		ftLR       = flag.Float64("finetune-lr", 0, "fine-tuning learning rate (0 = finetune default)")
	)
	flag.Parse()

	ds, ok := datasets.ByName(*dataset, *scale, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "taser-serve: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	fmt.Println(ds)

	tr, err := train.New(train.Config{
		Model: train.ModelKind(*model), Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: *hidden, BatchSize: *batch, Epochs: *epochs, N: *n, Seed: *seed,
	}, ds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	}
	for e := 0; e < *epochs; e++ {
		res := tr.TrainEpoch()
		fmt.Printf("pretrain epoch %2d  loss=%.4f  (%.1fs)\n", e+1, res.MeanLoss, res.Duration.Seconds())
	}

	engine, err := serve.New(serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: *n, Policy: sampler.MostRecent,
		MaxBatch: *maxBatch, MaxWait: *maxWait,
		CacheSize: *cacheSize, SnapshotEvery: *snapEvery, LatencyWindow: *latWindow,
		FinetuneInterval: *ftInterval, ReplayWindow: *ftWindow,
		Durability: serve.Durability{Dir: *walDir, SyncEvery: *walSync, CheckpointEvery: *ckptEvery},
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	}

	// Recover the stream from the durable store when one exists; otherwise
	// bootstrap with the training split. The rest of the stream arrives via
	// /v1/ingest (or -replay for a self-contained demo). A recovered store
	// already contains the bootstrap prefix (Bootstrap WAL-logs its events),
	// so re-bootstrapping would double-ingest it.
	recovered := false
	if *walDir != "" && *doRecover {
		rep, err := engine.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: recover: %v\n", err)
			os.Exit(1)
		}
		if rep.HasWatermark {
			recovered = true
			fmt.Printf("recovered %d events (checkpoint %d + replay %d, healed %d) to watermark t=%v, weights v%d in %v\n",
				rep.CheckpointEvents+rep.ReplayedEvents, rep.CheckpointEvents, rep.ReplayedEvents,
				rep.HealedEvents, rep.Watermark, rep.WeightVersion, rep.Duration.Round(time.Millisecond))
		} else {
			fmt.Printf("durable store %s is empty: fresh start\n", *walDir)
		}
	}
	feats := ds.EdgeFeat
	if !recovered {
		if err := engine.Bootstrap(ds.Graph.Events[:ds.TrainEnd], feats.SliceRows(ds.TrainEnd)); err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: bootstrap: %v\n", err)
			os.Exit(1)
		}
		wm, _ := engine.Watermark()
		fmt.Printf("bootstrapped %d events (watermark t=%v)\n", ds.TrainEnd, wm)
	}
	if *replay && !recovered {
		for i := ds.TrainEnd; i < len(ds.Graph.Events); i++ {
			ev := ds.Graph.Events[i]
			var row []float64
			if feats.Cols > 0 {
				row = feats.Row(i)
			}
			if err := engine.Ingest(ev.Src, ev.Dst, ev.Time, row); err != nil {
				fmt.Fprintf(os.Stderr, "taser-serve: replay: %v\n", err)
				os.Exit(1)
			}
		}
		engine.PublishSnapshot() // serve the replayed tail immediately
		wm, _ := engine.Watermark()
		fmt.Printf("replayed to watermark t=%v\n", wm)
	}

	var tuner *finetune.Tuner
	if *ftOn {
		tuner, err = finetune.New(finetune.Config{
			Engine: engine, Model: tr.Model, Pred: tr.Pred,
			NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			NumNodes: ds.Spec.NumNodes, NumSrc: ds.Spec.NumSrc,
			Budget: *n, Policy: sampler.MostRecent,
			LR: *ftLR, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "taser-serve: finetune: %v\n", err)
			os.Exit(1)
		}
		tuner.Start()
		fmt.Println("online fine-tuner attached (weights publish lock-free into serving)")
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting connections,
	// finish in-flight handlers, and only then close the tuner and engine so
	// every accepted micro-batch is served. A bare http.ListenAndServe would
	// block until process kill and the deferred closes would never run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(engine)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s\n", *addr)

	shutdown := func() {
		if tuner != nil {
			tuner.Close()
			st := tuner.Stats()
			fmt.Printf("fine-tuner: %d rounds, %d steps, %d events, published v%d (last loss %.4f)\n",
				st.Rounds, st.Steps, st.Events, st.Published, st.LastLoss)
			if st.Failed != "" {
				fmt.Fprintf(os.Stderr, "taser-serve: fine-tuner stopped early: %s\n", st.Failed)
			}
		}
		engine.Close() // flushes the WAL and writes the final checkpoint
		if st := engine.Stats(); st.Durable {
			fmt.Printf("durable store: %d events logged (%d synced, %d fsync batches, %d segments), %d checkpoints (last covers %d events, %d failed)\n",
				st.WALAppended, st.WALSynced, st.WALSyncs, st.WALSegments,
				st.Checkpoints, st.CheckpointEvents, st.CheckpointFails)
		}
	}
	select {
	case err := <-errc: // listener failed before any signal
		shutdown()
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("shutting down: draining HTTP connections, the fine-tuner and the engine")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: shutdown: %v\n", err)
	}
	shutdown()
	fmt.Println("bye")
}
