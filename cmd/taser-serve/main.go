// Command taser-serve runs the online inference subsystem behind an
// HTTP/JSON API: it pretrains a model offline on a dataset's training split,
// bootstraps the serving engine with those events, and then serves link
// prediction and node embeddings while accepting streaming ingest — the
// deployment loop of the paper's motivating applications.
//
// Usage:
//
//	taser-serve -dataset wikipedia -scale 0.1 -epochs 2 -addr :8080
//
// Endpoints (all JSON):
//
//	POST /v1/ingest   {"src":1,"dst":2,"t":123.5,"feat":[...]}   → {"events":N,"watermark":T}
//	POST /v1/predict  {"src":1,"dst":2,"t":123.5}                → {"score":S,"version":V,"cached":B}
//	POST /v1/embed    {"node":1,"t":123.5}                       → {"embedding":[...],"version":V,"cached":B}
//	GET  /v1/stats                                               → engine counters and latency percentiles
//
// Out-of-order events are rejected with HTTP 409 and the current watermark
// in the error body, so producers can resynchronize.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/train"
)

func main() {
	var (
		dataset   = flag.String("dataset", "wikipedia", "dataset: wikipedia|reddit|flights|movielens|gdelt")
		scale     = flag.Float64("scale", 0.1, "dataset scale multiplier")
		model     = flag.String("model", "tgat", "backbone: tgat|graphmixer")
		epochs    = flag.Int("epochs", 2, "offline pretraining epochs")
		hidden    = flag.Int("hidden", 24, "hidden dimension")
		batch     = flag.Int("batch", 150, "pretraining batch size")
		n         = flag.Int("n", 10, "supporting neighbors per hop")
		seed      = flag.Uint64("seed", 42, "random seed")
		addr      = flag.String("addr", ":8080", "listen address")
		maxBatch  = flag.Int("max-batch", 32, "max roots per serving micro-batch")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "max coalescing wait per micro-batch")
		cacheSize = flag.Int("emb-cache", 4096, "embedding-cache capacity in nodes (0 disables)")
		snapEvery = flag.Int("snapshot-every", 256, "publish a snapshot every k ingested events")
		latWindow = flag.Int("latency-window", 0, "request latencies retained for P50/P99 stats (0 = default 4096)")
		replay    = flag.Bool("replay", false, "replay the val/test split through ingest at startup")
	)
	flag.Parse()

	ds, ok := datasets.ByName(*dataset, *scale, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "taser-serve: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	fmt.Println(ds)

	tr, err := train.New(train.Config{
		Model: train.ModelKind(*model), Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: *hidden, BatchSize: *batch, Epochs: *epochs, N: *n, Seed: *seed,
	}, ds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	}
	for e := 0; e < *epochs; e++ {
		res := tr.TrainEpoch()
		fmt.Printf("pretrain epoch %2d  loss=%.4f  (%.1fs)\n", e+1, res.MeanLoss, res.Duration.Seconds())
	}

	engine, err := serve.New(serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: *n, Policy: sampler.MostRecent,
		MaxBatch: *maxBatch, MaxWait: *maxWait,
		CacheSize: *cacheSize, SnapshotEvery: *snapEvery, LatencyWindow: *latWindow,
		Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	}

	// Bootstrap with the training split; the rest of the stream arrives via
	// /v1/ingest (or -replay for a self-contained demo).
	feats := ds.EdgeFeat
	if err := engine.Bootstrap(ds.Graph.Events[:ds.TrainEnd], feats.SliceRows(ds.TrainEnd)); err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: bootstrap: %v\n", err)
		os.Exit(1)
	}
	wm, _ := engine.Watermark()
	fmt.Printf("bootstrapped %d events (watermark t=%v)\n", ds.TrainEnd, wm)
	if *replay {
		for i := ds.TrainEnd; i < len(ds.Graph.Events); i++ {
			ev := ds.Graph.Events[i]
			var row []float64
			if feats.Cols > 0 {
				row = feats.Row(i)
			}
			if err := engine.Ingest(ev.Src, ev.Dst, ev.Time, row); err != nil {
				fmt.Fprintf(os.Stderr, "taser-serve: replay: %v\n", err)
				os.Exit(1)
			}
		}
		engine.PublishSnapshot() // serve the replayed tail immediately
		wm, _ := engine.Watermark()
		fmt.Printf("replayed to watermark t=%v\n", wm)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Src, Dst int32
			T        float64
			Feat     []float64
		}
		if !decode(w, r, &req) {
			return
		}
		if err := engine.Ingest(req.Src, req.Dst, req.T, req.Feat); err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, serve.ErrStaleEvent) {
				code = http.StatusConflict
			}
			writeErr(w, code, err)
			return
		}
		wm, _ := engine.Watermark() // the event just admitted set it
		writeJSON(w, map[string]any{"events": engine.NumEvents(), "watermark": wm})
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Src, Dst int32
			T        float64
		}
		if !decode(w, r, &req) {
			return
		}
		res, err := engine.PredictLink(req.Src, req.Dst, req.T)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{"score": res.Score, "version": res.Version, "cached": res.Cached})
	})
	mux.HandleFunc("POST /v1/embed", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node int32
			T    float64
		}
		if !decode(w, r, &req) {
			return
		}
		res, err := engine.Embed(req.Node, req.T)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{"embedding": res.Embedding, "version": res.Version, "cached": res.Cached})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := engine.Stats()
		writeJSON(w, map[string]any{
			"requests": st.Requests, "batches": st.Batches,
			"avg_batch": st.AvgBatch(), "cache_hit_rate": st.CacheHitRate(),
			"cache_hits": st.CacheHits, "cache_stale": st.CacheStale, "cache_misses": st.CacheMisses,
			"snapshot_version": st.SnapshotVersion,
			"watermark":        st.Watermark, "has_watermark": st.HasWatermark,
			"events": st.Events,
			"p50_us": st.P50.Microseconds(), "p99_us": st.P99.Microseconds(),
		})
	})

	// Serve until SIGINT/SIGTERM, then drain: stop accepting connections,
	// finish in-flight handlers, and only then close the engine so every
	// accepted micro-batch is served. A bare http.ListenAndServe would block
	// until process kill and the deferred engine.Close would never run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s\n", *addr)

	select {
	case err := <-errc: // listener failed before any signal
		engine.Close()
		fmt.Fprintf(os.Stderr, "taser-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("shutting down: draining HTTP connections and the engine")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "taser-serve: shutdown: %v\n", err)
	}
	engine.Close()
	fmt.Println("bye")
}

// decode parses the JSON body into dst, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing useful left to do.
		_ = err
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
