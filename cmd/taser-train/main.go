// Command taser-train runs one (dataset, model, variant) training
// configuration and reports per-epoch losses, the runtime breakdown, and the
// final validation/test MRR.
//
// Usage:
//
//	taser-train -dataset wikipedia -model tgat -taser
//	taser-train -dataset reddit -model graphmixer -ada-batch
package main

import (
	"flag"
	"fmt"
	"os"

	"taser/internal/adaptive"
	"taser/internal/datasets"
	"taser/internal/train"
)

func main() {
	var (
		dataset   = flag.String("dataset", "wikipedia", "dataset: wikipedia|reddit|flights|movielens|gdelt")
		scale     = flag.Float64("scale", 0.25, "dataset scale multiplier")
		model     = flag.String("model", "tgat", "backbone: tgat|graphmixer")
		finder    = flag.String("finder", "gpu", "neighbor finder: origin|tgl|gpu")
		epochs    = flag.Int("epochs", 6, "training epochs")
		hidden    = flag.Int("hidden", 24, "hidden dimension")
		batch     = flag.Int("batch", 150, "batch size (positive edges)")
		lr        = flag.Float64("lr", 3e-3, "learning rate")
		n         = flag.Int("n", 10, "supporting neighbors per hop")
		m         = flag.Int("m", 25, "adaptive-sampling candidate budget")
		adaBatch  = flag.Bool("ada-batch", false, "enable adaptive mini-batch selection")
		adaNbr    = flag.Bool("ada-neighbor", false, "enable adaptive neighbor sampling")
		taser     = flag.Bool("taser", false, "enable both adaptive components")
		decoder   = flag.String("decoder", "gatv2", "sampler decoder: linear|gat|gatv2|trans")
		cache     = flag.Float64("cache", 0.2, "edge-feature cache ratio")
		seed      = flag.Uint64("seed", 42, "random seed")
		evalEdges = flag.Int("eval-edges", 300, "max edges per MRR evaluation")
		pipeline  = flag.Bool("pipeline", false, "overlap batch construction with compute (async prefetch loop)")
		prefetch  = flag.Int("prefetch", 2, "prefetch depth of the pipelined loop")
	)
	flag.Parse()

	ds, ok := datasets.ByName(*dataset, *scale, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "taser-train: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	fmt.Println(ds)

	dec := map[string]adaptive.Decoder{
		"linear": adaptive.DecoderLinear, "gat": adaptive.DecoderGAT,
		"gatv2": adaptive.DecoderGATv2, "trans": adaptive.DecoderTrans,
	}[*decoder]

	cfg := train.Config{
		Model: train.ModelKind(*model), Finder: train.FinderKind(*finder),
		Hidden: *hidden, BatchSize: *batch, Epochs: *epochs, LR: *lr,
		N: *n, M: *m,
		AdaBatch: *adaBatch || *taser, AdaNeighbor: *adaNbr || *taser,
		Decoder: dec, CacheRatio: *cache,
		MaxEvalEdges: *evalEdges, Seed: *seed,
		PrefetchDepth: *prefetch,
	}
	tr, err := train.New(cfg, ds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taser-train: %v\n", err)
		os.Exit(1)
	}
	for e := 0; e < cfg.Epochs; e++ {
		var res train.EpochResult
		if *pipeline {
			res = tr.TrainEpochPipelined()
		} else {
			res = tr.TrainEpoch()
		}
		fmt.Printf("epoch %2d  loss=%.4f  (%.1fs, %d steps)\n",
			e+1, res.MeanLoss, res.Duration.Seconds(), res.Steps)
	}
	fmt.Println("breakdown:", tr.Timer.Breakdown())
	if pol := tr.EdgeStore.Policy(); pol != nil {
		fmt.Printf("cache hit rate: %.1f%%\n", 100*pol.HitRate())
	}
	fmt.Printf("val MRR:  %.4f\n", tr.EvalMRR(train.SplitVal))
	fmt.Printf("test MRR: %.4f\n", tr.EvalMRR(train.SplitTest))
}
