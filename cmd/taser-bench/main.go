// Command taser-bench regenerates the paper's tables and figures against the
// synthetic datasets. Each experiment prints a plain-text table; see
// EXPERIMENTS.md for recorded runs and the paper-vs-measured comparison.
//
// Usage:
//
//	taser-bench -exp table1 [-scale 0.25] [-epochs 6] [-datasets wikipedia,reddit]
//	taser-bench -exp all
//
// Experiments: table1, table2, table3, fig1, fig3a, fig3b, fig4,
// ablation-encoder, ablation-decoder, ablation-cache, pipeline, serve,
// ingest, alloc, finetune, recover, replicate, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"taser/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment to run (table1|table2|table3|fig1|fig3a|fig3b|fig4|ablation-encoder|ablation-decoder|ablation-cache|serve|ingest|alloc|kernels|finetune|recover|replicate|loadhttp|all)")
		scale      = flag.Float64("scale", 0.25, "dataset scale multiplier")
		epochs     = flag.Int("epochs", 6, "training epochs for accuracy experiments")
		hidden     = flag.Int("hidden", 24, "hidden dimension")
		batch      = flag.Int("batch", 150, "batch size (positive edges)")
		seed       = flag.Uint64("seed", 42, "random seed")
		evalEdges  = flag.Int("eval-edges", 300, "max edges per MRR evaluation")
		dsNames    = flag.String("datasets", "", "comma-separated dataset subset (default: experiment's own)")
		srvClients = flag.String("serve-clients", "", "serve: comma-separated client counts (default 1,4,16)")
		srvReqs    = flag.Int("serve-requests", 0, "serve: requests per client (default 200)")
		srvIngest  = flag.Float64("serve-ingest", 0, "serve: ingest rate, events/sec (default 2000)")
		ingEvents  = flag.String("ingest-events", "", "ingest: comma-separated stream lengths (default 8192,16384,32768,65536)")
		ingEvery   = flag.Int("ingest-every", 0, "ingest: events per snapshot publication (default 256)")
		ingNodes   = flag.Int("ingest-nodes", 0, "ingest: node-id space of the synthetic stream (default 2000)")
		recEvents  = flag.String("recover-events", "", "recover: comma-separated stream lengths (default 1024,4096,16384)")
		recSync    = flag.Int("recover-sync-every", 0, "recover: WAL group-commit interval (default 64)")
		repEvents  = flag.String("replicate-events", "", "replicate: comma-separated catch-up stream lengths (default 1024,4096,16384)")
		repRates   = flag.String("replicate-rates", "", "replicate: comma-separated leader ingest rates, events/sec (default 1000,4000,16000)")
		ftEvery    = flag.Int("finetune-every", 0, "finetune: drifted events per fine-tune round (default 96)")
		ftNegs     = flag.Int("finetune-negs", 0, "finetune: negatives per prequential MRR eval (default 19)")
		ftLR       = flag.Float64("finetune-lr", 0, "finetune: fine-tuning learning rate (default 3e-4)")
		ftPasses   = flag.Int("finetune-passes", 0, "finetune: replay passes per round (default 4)")
		srvAddr    = flag.String("serve-addr", "", "loadhttp: base URL of a live taser-serve (empty = self-host in process)")
		srvWait    = flag.Duration("serve-wait", 0, "loadhttp: readiness-poll budget for an external server (default 120s)")
		srvShards  = flag.String("shards", "", "loadhttp: comma-separated shard counts to sweep (self-hosts a K-shard fleet per entry, e.g. 1,2,4)")
		openLoop   = flag.Bool("open", false, "loadhttp: open-loop overload experiment (static vs adaptive engine, constant-arrival burst)")
		openRate   = flag.Float64("open-rate", 0, "loadhttp -open: offered burst rate, req/sec (default 2× the calibrated sustainable rate)")
		openDur    = flag.Duration("open-duration", 0, "loadhttp -open: per-phase duration (default 3s)")
		openSLO    = flag.Duration("open-slo", 0, "loadhttp -open: adaptive engine's p99 target (default 25ms)")
		openQueue  = flag.Int("open-queue", 0, "loadhttp -open: adaptive engine's per-lane admission bound (default 64)")
	)
	flag.Parse()

	opts := bench.Options{
		Out: os.Stdout, Scale: *scale, Epochs: *epochs, Hidden: *hidden,
		BatchSize: *batch, Seed: *seed, MaxEvalEdges: *evalEdges,
		ServeRequests: *srvReqs, ServeIngestRate: *srvIngest,
		IngestEvery: *ingEvery, IngestNodes: *ingNodes,
		RecoverSyncEvery: *recSync,
		FinetuneEvery:    *ftEvery, FinetuneNegs: *ftNegs, FinetuneLR: *ftLR,
		FinetunePasses: *ftPasses,
		ServeAddr:      *srvAddr, ServeWait: *srvWait,
		OpenLoop: *openLoop, OpenRate: *openRate, OpenDuration: *openDur,
		OpenSLO: *openSLO, OpenQueue: *openQueue,
	}
	if *dsNames != "" {
		opts.Datasets = strings.Split(*dsNames, ",")
	}
	parseInts := func(flagName, csv string) []int {
		if csv == "" {
			return nil
		}
		var out []int
		for _, s := range strings.Split(csv, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "taser-bench: bad %s %q: %v\n", flagName, csv, err)
				os.Exit(2)
			}
			out = append(out, c)
		}
		return out
	}
	opts.ServeClients = parseInts("-serve-clients", *srvClients)
	opts.ServeShards = parseInts("-shards", *srvShards)
	opts.IngestEvents = parseInts("-ingest-events", *ingEvents)
	opts.RecoverEvents = parseInts("-recover-events", *recEvents)
	opts.ReplicateEvents = parseInts("-replicate-events", *repEvents)
	opts.ReplicateRates = parseInts("-replicate-rates", *repRates)

	experiments := map[string]func(bench.Options) error{
		"table1":              bench.Table1,
		"table2":              bench.Table2,
		"table3":              bench.Table3,
		"fig1":                bench.Fig1,
		"fig3a":               bench.Fig3a,
		"fig3b":               bench.Fig3b,
		"fig4":                bench.Fig4,
		"ablation-encoder":    bench.AblationEncoder,
		"ablation-decoder":    bench.AblationDecoder,
		"ablation-cache":      bench.AblationCache,
		"ablation-heuristics": bench.AblationHeuristics,
		"pipeline":            bench.Pipeline,
		"serve":               bench.Serve,
		"ingest":              bench.Ingest,
		"alloc":               bench.Alloc,
		"kernels":             bench.Kernels,
		"finetune":            bench.Finetune,
		"recover":             bench.Recover,
		"replicate":           bench.Replicate,
		"loadhttp":            bench.LoadHTTP, // excluded from `all`: meant for a live server (self-hosts when -serve-addr is empty)
	}
	order := []string{"table2", "table1", "fig1", "table3", "fig3a", "fig3b", "fig4",
		"ablation-encoder", "ablation-decoder", "ablation-cache", "ablation-heuristics",
		"pipeline", "serve", "ingest", "alloc", "kernels", "finetune", "recover", "replicate"}

	run := func(name string) {
		fmt.Printf("=== %s ===\n", name)
		if err := experiments[name](opts); err != nil {
			fmt.Fprintf(os.Stderr, "taser-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	switch {
	case *exp == "all":
		for _, name := range order {
			run(name)
		}
	case experiments[*exp] != nil:
		run(*exp)
	default:
		fmt.Fprintf(os.Stderr, "taser-bench: unknown experiment %q\nknown: %s, all\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
}
