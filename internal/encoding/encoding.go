// Package encoding implements the fixed encodings TASER's neighbor encoder
// concatenates into neighbor embeddings (§III-B):
//
//   - TimeEncoder: GraphMixer's fixed time encoding Φ(Δt) = cos(Δt·ω) with
//     ω_i = α^{-(i-1)/β} (Eq. 8), mapping relative timespans to a
//     d-dimensional vector.
//   - FreqEncoder: the sinusoidal frequency encoding FE (Eq. 12) over the
//     number of times a neighbor reappears in the neighborhood.
//   - Identity: the identity encoding IE (Eq. 13), a per-neighborhood
//     indicator of which earlier-sorted neighbors are the same node.
//
// The learnable time encoding of TGAT (Eq. 3) lives with the model code in
// internal/models because it carries trainable parameters.
package encoding

import (
	"math"
)

// TimeEncoder is the fixed (non-learnable) time encoding of Eq. 8.
type TimeEncoder struct {
	omega []float64
}

// NewTimeEncoder builds a d-dimensional encoder. alpha and beta default to
// √d when ≤ 0, the values used by GraphMixer.
func NewTimeEncoder(d int, alpha, beta float64) *TimeEncoder {
	if alpha <= 0 {
		alpha = math.Sqrt(float64(d))
	}
	if beta <= 0 {
		beta = math.Sqrt(float64(d))
	}
	e := &TimeEncoder{omega: make([]float64, d)}
	for i := 0; i < d; i++ {
		e.omega[i] = math.Pow(alpha, -float64(i)/beta)
	}
	return e
}

// Dim returns the encoding width.
func (e *TimeEncoder) Dim() int { return len(e.omega) }

// Encode writes cos(dt·ω) into dst (len Dim).
func (e *TimeEncoder) Encode(dst []float64, dt float64) {
	for i, w := range e.omega {
		dst[i] = math.Cos(dt * w)
	}
}

// FreqEncoder is the sinusoidal frequency encoding of Eq. 12. Frequencies
// are small discrete integers, so the transformer positional encoding is the
// right inductive bias (§III-B).
type FreqEncoder struct {
	dim int
	inv []float64 // precomputed 1/10000^(2i/d)
}

// NewFreqEncoder builds a d-dimensional encoder (d should be even; an odd
// final dimension is handled by truncation).
func NewFreqEncoder(d int) *FreqEncoder {
	e := &FreqEncoder{dim: d, inv: make([]float64, (d+1)/2)}
	for i := range e.inv {
		e.inv[i] = math.Pow(10000, -2*float64(i)/float64(d))
	}
	return e
}

// Dim returns the encoding width.
func (e *FreqEncoder) Dim() int { return e.dim }

// Encode writes the sin/cos interleaved encoding of freq into dst (len Dim).
func (e *FreqEncoder) Encode(dst []float64, freq int) {
	f := float64(freq)
	for i := 0; i < e.dim; i++ {
		x := f * e.inv[i/2]
		if i%2 == 0 {
			dst[i] = math.Sin(x)
		} else {
			dst[i] = math.Cos(x)
		}
	}
}

// Frequencies counts, for each position j in a neighborhood's node list, how
// many times nodes[j] appears in the whole list. Padding entries (−1) get
// frequency 0. Neighborhoods are tiny (the candidate budget m), so the
// quadratic scan beats a counting map and — being allocation-free — keeps the
// per-root hot loop of the adaptive encoder off the heap.
func Frequencies(nodes []int32, out []int) {
	for j, u := range nodes {
		if u < 0 {
			out[j] = 0
			continue
		}
		n := 0
		for _, v := range nodes {
			if v == u {
				n++
			}
		}
		out[j] = n
	}
}

// Identity writes the identity encoding (Eq. 13) for a neighborhood of
// budget entries sorted most-recent-first: row j gets IE(u_j, i) = 1 iff
// u_j == u_i, for i < budget. dst must have budget·budget elements laid out
// row-major. Padding entries (−1) produce zero rows.
func Identity(nodes []int32, dst []float64, budget int) {
	if len(nodes) != budget || len(dst) != budget*budget {
		panic("encoding: Identity shape")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < budget; j++ {
		if nodes[j] < 0 {
			continue
		}
		row := dst[j*budget : (j+1)*budget]
		for i := 0; i < budget; i++ {
			if nodes[i] == nodes[j] {
				row[i] = 1
			}
		}
	}
}
