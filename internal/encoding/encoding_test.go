package encoding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeEncoderZeroDelta(t *testing.T) {
	e := NewTimeEncoder(8, 0, 0)
	dst := make([]float64, 8)
	e.Encode(dst, 0)
	for _, v := range dst {
		if v != 1 {
			t.Fatal("Φ(0) must be all ones (cos 0)")
		}
	}
}

func TestTimeEncoderRange(t *testing.T) {
	e := NewTimeEncoder(16, 0, 0)
	dst := make([]float64, 16)
	for _, dt := range []float64{0.1, 1, 100, 1e6} {
		e.Encode(dst, dt)
		for i, v := range dst {
			if v < -1 || v > 1 {
				t.Fatalf("encoding[%d]=%v out of [-1,1]", i, v)
			}
		}
	}
}

func TestTimeEncoderFrequencySpectrum(t *testing.T) {
	// ω must be strictly decreasing: early dims oscillate fast (fine time
	// resolution), later dims slowly (coarse resolution).
	e := NewTimeEncoder(10, 0, 0)
	for i := 1; i < len(e.omega); i++ {
		if e.omega[i] >= e.omega[i-1] {
			t.Fatal("omega must decrease")
		}
	}
	if e.omega[0] != 1 {
		t.Fatalf("omega[0]=%v want 1", e.omega[0])
	}
}

func TestTimeEncoderDistinguishesScales(t *testing.T) {
	e := NewTimeEncoder(32, 0, 0)
	a := make([]float64, 32)
	b := make([]float64, 32)
	e.Encode(a, 1)
	e.Encode(b, 1000)
	var dist float64
	for i := range a {
		dist += (a[i] - b[i]) * (a[i] - b[i])
	}
	if math.Sqrt(dist) < 0.5 {
		t.Fatal("very different timespans must encode differently")
	}
}

func TestFreqEncoderDeterministicAndBounded(t *testing.T) {
	e := NewFreqEncoder(8)
	if e.Dim() != 8 {
		t.Fatal("dim")
	}
	a := make([]float64, 8)
	b := make([]float64, 8)
	e.Encode(a, 3)
	e.Encode(b, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("deterministic")
		}
		if a[i] < -1 || a[i] > 1 {
			t.Fatal("bounded")
		}
	}
}

func TestFreqEncoderSeparatesSmallCounts(t *testing.T) {
	e := NewFreqEncoder(16)
	enc := func(f int) []float64 {
		dst := make([]float64, 16)
		e.Encode(dst, f)
		return dst
	}
	// Frequencies 1..10 must be pairwise distinguishable.
	for f1 := 1; f1 <= 10; f1++ {
		for f2 := f1 + 1; f2 <= 10; f2++ {
			a, b := enc(f1), enc(f2)
			var dist float64
			for i := range a {
				dist += math.Abs(a[i] - b[i])
			}
			if dist < 1e-3 {
				t.Fatalf("freq %d and %d encode identically", f1, f2)
			}
		}
	}
}

func TestFreqEncoderZeroFreq(t *testing.T) {
	e := NewFreqEncoder(4)
	dst := make([]float64, 4)
	e.Encode(dst, 0)
	want := []float64{0, 1, 0, 1} // sin 0, cos 0 interleaved
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("zero-frequency encoding %v", dst)
		}
	}
}

func TestFrequenciesCounts(t *testing.T) {
	nodes := []int32{5, 3, 5, 5, -1, 3}
	out := make([]int, 6)
	Frequencies(nodes, out)
	want := []int{3, 2, 3, 3, 0, 2}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("Frequencies=%v", out)
		}
	}
}

func TestFrequenciesProperty(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		nodes := make([]int32, len(raw))
		for i, r := range raw {
			nodes[i] = int32(r%5) - 1 // mix of -1 padding and ids 0..3
		}
		out := make([]int, len(nodes))
		Frequencies(nodes, out)
		for j, u := range nodes {
			if u < 0 {
				if out[j] != 0 {
					return false
				}
				continue
			}
			manual := 0
			for _, v := range nodes {
				if v == u {
					manual++
				}
			}
			if out[j] != manual {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIdentityEncoding(t *testing.T) {
	nodes := []int32{7, 9, 7, -1}
	dst := make([]float64, 16)
	Identity(nodes, dst, 4)
	want := []float64{
		1, 0, 1, 0, // u0=7 matches positions 0 and 2
		0, 1, 0, 0, // u1=9 matches itself only
		1, 0, 1, 0, // u2=7 matches positions 0 and 2
		0, 0, 0, 0, // padding row is zero
	}
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("Identity row %d col %d = %v want %v", i/4, i%4, dst[i], w)
		}
	}
}

func TestIdentitySymmetricProperty(t *testing.T) {
	// IE is symmetric: IE(u_j, i) == IE(u_i, j) for non-padding entries.
	err := quick.Check(func(raw [6]uint8) bool {
		nodes := make([]int32, 6)
		for i, r := range raw {
			nodes[i] = int32(r % 4)
		}
		dst := make([]float64, 36)
		Identity(nodes, dst, 6)
		for i := 0; i < 6; i++ {
			if dst[i*6+i] != 1 {
				return false // diagonal must be 1 for non-padding
			}
			for j := 0; j < 6; j++ {
				if dst[i*6+j] != dst[j*6+i] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIdentityPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Identity([]int32{1, 2}, make([]float64, 4), 3)
}
