package nn

import (
	"math"

	"taser/internal/autograd"
	"taser/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) with optional gradient
// clipping by global norm. The paper trains both the TGNN and the adaptive
// sampler with Adam; the stabilizing effect of its moment estimates is what
// lets TASER's historical cache policy converge (§III-D).
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // 0 disables clipping

	params []*autograd.Var
	m, v   []*tensor.Matrix
	step   int
}

// NewAdam builds an optimizer over params with standard defaults.
func NewAdam(params []*autograd.Var, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([]*tensor.Matrix, len(params))
	a.v = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Val.Rows, p.Val.Cols)
		a.v[i] = tensor.New(p.Val.Rows, p.Val.Cols)
	}
	return a
}

// GradNorm returns the global L2 norm of all parameter gradients.
func (a *Adam) GradNorm() float64 {
	var ss float64
	for _, p := range a.params {
		for _, g := range p.Grad.Data {
			ss += g * g
		}
	}
	return math.Sqrt(ss)
}

// Step applies one Adam update using the currently accumulated gradients.
func (a *Adam) Step() {
	a.step++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / (n + 1e-12)
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			g *= scale
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.Val.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ZeroGrad clears all parameter gradients; call after Step.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.Grad.Zero()
	}
}

// NumParams reports the total scalar parameter count.
func (a *Adam) NumParams() int {
	n := 0
	for _, p := range a.params {
		n += len(p.Val.Data)
	}
	return n
}
