package nn

import (
	"math"
	"testing"

	"taser/internal/autograd"
	"taser/internal/mathx"
	"taser/internal/tensor"
)

func TestLinearShapesAndParams(t *testing.T) {
	rng := mathx.NewRNG(1)
	l := NewLinear(4, 3, rng)
	g := autograd.New()
	x := autograd.NewConst(tensor.Randn(5, 4, 1, rng))
	y := l.Apply(g, x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("linear output %dx%d", y.Rows(), y.Cols())
	}
	if len(l.Params()) != 2 {
		t.Fatal("linear must expose W and B")
	}
}

func TestLinearLearnsIdentity(t *testing.T) {
	// A single linear layer must fit y = 2x + 1 quickly.
	rng := mathx.NewRNG(2)
	l := NewLinear(1, 1, rng)
	opt := NewAdam(l.Params(), 0.05)
	var loss float64
	for iter := 0; iter < 400; iter++ {
		g := autograd.New()
		xs := tensor.Randn(16, 1, 1, rng)
		labels := make([]float64, 16)
		x := autograd.NewConst(xs)
		pred := l.Apply(g, x)
		target := tensor.New(16, 1)
		for i := 0; i < 16; i++ {
			target.Data[i] = 2*xs.Data[i] + 1
		}
		diff := g.Sub(pred, autograd.NewConst(target))
		lossVar := g.MeanAll(g.Mul(diff, diff))
		loss = lossVar.Val.Data[0]
		g.Backward(lossVar)
		opt.Step()
		opt.ZeroGrad()
		_ = labels
	}
	if loss > 1e-3 {
		t.Fatalf("linear failed to fit affine map, loss %v", loss)
	}
	if math.Abs(l.W.Val.Data[0]-2) > 0.1 || math.Abs(l.B.Val.Data[0]-1) > 0.1 {
		t.Fatalf("learned W=%v B=%v want 2, 1", l.W.Val.Data[0], l.B.Val.Data[0])
	}
}

func TestLayerNormOutputStats(t *testing.T) {
	rng := mathx.NewRNG(3)
	ln := NewLayerNorm(8)
	g := autograd.New()
	x := autograd.NewConst(tensor.Randn(4, 8, 5, rng))
	y := ln.Apply(g, x)
	for i := 0; i < 4; i++ {
		var mean float64
		for _, v := range y.Val.Row(i) {
			mean += v
		}
		mean /= 8
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %v", i, mean)
		}
	}
}

func TestMLPShapes(t *testing.T) {
	rng := mathx.NewRNG(4)
	m := NewMLP(6, 12, 3, rng)
	g := autograd.New()
	y := m.Apply(g, autograd.NewConst(tensor.Randn(7, 6, 1, rng)))
	if y.Rows() != 7 || y.Cols() != 3 {
		t.Fatalf("mlp output %dx%d", y.Rows(), y.Cols())
	}
	if len(m.Params()) != 4 {
		t.Fatal("mlp params")
	}
}

func TestMixerBlockShapePreserved(t *testing.T) {
	rng := mathx.NewRNG(5)
	const b, k, c = 3, 5, 8
	mix := NewMixerBlock(k, c, 0, 0, rng)
	g := autograd.New()
	x := autograd.NewConst(tensor.Randn(b*k, c, 1, rng))
	y := mix.Apply(g, x)
	if y.Rows() != b*k || y.Cols() != c {
		t.Fatalf("mixer output %dx%d want %dx%d", y.Rows(), y.Cols(), b*k, c)
	}
}

func TestMixerBlockMixesAcrossTokens(t *testing.T) {
	// Changing one token must influence other tokens of the SAME group and
	// no token of a different group.
	rng := mathx.NewRNG(6)
	const b, k, c = 2, 4, 6
	mix := NewMixerBlock(k, c, 0, 0, rng)
	base := tensor.Randn(b*k, c, 1, rng)
	y0 := mix.Apply(autograd.New(), autograd.NewConst(base.Clone())).Val.Clone()
	perturbed := base.Clone()
	perturbed.Set(0, 0, perturbed.At(0, 0)+1) // token 0 of group 0
	y1 := mix.Apply(autograd.New(), autograd.NewConst(perturbed)).Val

	groupChanged := false
	for j := 0; j < c; j++ {
		if math.Abs(y1.At(1, j)-y0.At(1, j)) > 1e-9 { // token 1 of group 0
			groupChanged = true
		}
	}
	if !groupChanged {
		t.Fatal("mixer must propagate information across tokens in a group")
	}
	for r := k; r < 2*k; r++ { // group 1 untouched
		for j := 0; j < c; j++ {
			if y1.At(r, j) != y0.At(r, j) {
				t.Fatal("mixer must not leak across groups")
			}
		}
	}
}

func TestMixerGradFlowsToAllParams(t *testing.T) {
	rng := mathx.NewRNG(7)
	const b, k, c = 2, 3, 4
	mix := NewMixerBlock(k, c, 0, 0, rng)
	g := autograd.New()
	x := autograd.NewConst(tensor.Randn(b*k, c, 1, rng))
	loss := g.MeanAll(g.Mul(mix.Apply(g, x), mix.Apply(g, x)))
	g.Backward(loss)
	for i, p := range mix.Params() {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("param %d received no gradient", i)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (x-3)² from x=0.
	p := autograd.NewParam(tensor.New(1, 1))
	opt := NewAdam([]*autograd.Var{p}, 0.1)
	for i := 0; i < 500; i++ {
		g := autograd.New()
		diff := g.Sub(p, autograd.NewConst(tensor.FromSlice(1, 1, []float64{3})))
		g.Backward(g.SumAll(g.Mul(diff, diff)))
		opt.Step()
		opt.ZeroGrad()
	}
	if math.Abs(p.Val.Data[0]-3) > 1e-3 {
		t.Fatalf("Adam converged to %v want 3", p.Val.Data[0])
	}
}

func TestAdamClipNorm(t *testing.T) {
	p := autograd.NewParam(tensor.FromSlice(1, 2, []float64{0, 0}))
	opt := NewAdam([]*autograd.Var{p}, 0.1)
	opt.ClipNorm = 1
	p.Grad.Data[0] = 300
	p.Grad.Data[1] = 400 // norm 500 → scaled to 1
	if math.Abs(opt.GradNorm()-500) > 1e-9 {
		t.Fatalf("grad norm %v", opt.GradNorm())
	}
	opt.Step()
	// After clipping the effective gradient is (0.6, 0.8); Adam's first step
	// is lr·g/(sqrt(g²)+eps) ≈ lr·sign(g), so both params move by ~0.1.
	for i := range p.Val.Data {
		if p.Val.Data[i] > -0.09 || p.Val.Data[i] < -0.11 {
			t.Fatalf("clipped step param[%d]=%v", i, p.Val.Data[i])
		}
	}
}

func TestAdamZeroGradAndCount(t *testing.T) {
	rng := mathx.NewRNG(8)
	l := NewLinear(3, 2, rng)
	opt := NewAdam(l.Params(), 0.01)
	if opt.NumParams() != 3*2+2 {
		t.Fatalf("param count %d", opt.NumParams())
	}
	l.W.Grad.Fill(1)
	opt.ZeroGrad()
	if l.W.Grad.MaxAbs() != 0 {
		t.Fatal("ZeroGrad")
	}
}

func TestCollectParams(t *testing.T) {
	rng := mathx.NewRNG(9)
	a := NewLinear(2, 2, rng)
	b := NewLinear(2, 2, rng)
	if len(CollectParams(a, b)) != 4 {
		t.Fatal("CollectParams")
	}
}
