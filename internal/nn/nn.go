// Package nn provides the neural-network building blocks used by the TGNN
// backbones and the adaptive sampler: Linear layers, MLP-Mixer blocks over
// fixed-size neighborhoods, layer normalization, and the Adam optimizer.
package nn

import (
	"math"

	"taser/internal/autograd"
	"taser/internal/mathx"
	"taser/internal/tensor"
)

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*autograd.Var
}

// CollectParams flattens the parameters of several modules.
func CollectParams(mods ...Module) []*autograd.Var {
	var out []*autograd.Var
	for _, m := range mods {
		out = append(out, m.Params()...)
	}
	return out
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W *autograd.Var // In×Out
	B *autograd.Var // 1×Out
}

// NewLinear initializes with Xavier/Glorot uniform-equivalent normal scaling.
func NewLinear(in, out int, rng *mathx.RNG) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: autograd.NewParam(tensor.Randn(in, out, std, rng)),
		B: autograd.NewParam(tensor.New(1, out)),
	}
}

// Apply runs the layer on x (B×In) and returns B×Out.
func (l *Linear) Apply(g *autograd.Graph, x *autograd.Var) *autograd.Var {
	return g.AddBias(g.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*autograd.Var { return []*autograd.Var{l.W, l.B} }

// LayerNorm holds per-feature gain and bias for row normalization.
type LayerNorm struct {
	Gain *autograd.Var
	Bias *autograd.Var
}

// NewLayerNorm initializes gain=1, bias=0.
func NewLayerNorm(dim int) *LayerNorm {
	gain := tensor.New(1, dim)
	gain.Fill(1)
	return &LayerNorm{
		Gain: autograd.NewParam(gain),
		Bias: autograd.NewParam(tensor.New(1, dim)),
	}
}

// Apply normalizes each row of x.
func (l *LayerNorm) Apply(g *autograd.Graph, x *autograd.Var) *autograd.Var {
	return g.LayerNormRows(x, l.Gain, l.Bias)
}

// Params implements Module.
func (l *LayerNorm) Params() []*autograd.Var { return []*autograd.Var{l.Gain, l.Bias} }

// MLP is a two-layer perceptron with a GELU hidden activation.
type MLP struct {
	L1, L2 *Linear
}

// NewMLP builds in→hidden→out.
func NewMLP(in, hidden, out int, rng *mathx.RNG) *MLP {
	return &MLP{L1: NewLinear(in, hidden, rng), L2: NewLinear(hidden, out, rng)}
}

// Apply runs the MLP on x.
func (m *MLP) Apply(g *autograd.Graph, x *autograd.Var) *autograd.Var {
	return m.L2.Apply(g, g.GELU(m.L1.Apply(g, x)))
}

// Params implements Module.
func (m *MLP) Params() []*autograd.Var { return CollectParams(m.L1, m.L2) }

// MixerBlock is a 1-layer MLP-Mixer over a neighborhood of K tokens with C
// channels (Tolstikhin et al.), as used by GraphMixer's aggregator (Eq. 9)
// and the adaptive sampler's decoder (Eq. 16). Input is (B·K)×C with each
// root's K neighbor tokens stored consecutively.
type MixerBlock struct {
	K int // tokens per group

	normToken   *LayerNorm
	tokenUp     *autograd.Var // Kh×K token-mixing weights (shared across groups)
	tokenDown   *autograd.Var // K×Kh
	normChannel *LayerNorm
	channelMLP  *MLP
}

// NewMixerBlock builds a mixer over K-token groups of C channels.
// tokenHidden and channelHidden default to K/2 (min 1) and 4·C when zero,
// matching the ratios in the MLP-Mixer paper at this scale.
func NewMixerBlock(k, c, tokenHidden, channelHidden int, rng *mathx.RNG) *MixerBlock {
	if tokenHidden <= 0 {
		tokenHidden = mathx.MaxInt(1, k/2)
	}
	if channelHidden <= 0 {
		channelHidden = 4 * c
	}
	stdUp := math.Sqrt(2.0 / float64(k+tokenHidden))
	stdDown := math.Sqrt(2.0 / float64(k+tokenHidden))
	return &MixerBlock{
		K:           k,
		normToken:   NewLayerNorm(c),
		tokenUp:     autograd.NewParam(tensor.Randn(tokenHidden, k, stdUp, rng)),
		tokenDown:   autograd.NewParam(tensor.Randn(k, tokenHidden, stdDown, rng)),
		normChannel: NewLayerNorm(c),
		channelMLP:  NewMLP(c, channelHidden, c, rng),
	}
}

// Apply mixes tokens then channels, each with a residual connection.
// x is (B·K)×C; the result has the same shape.
func (m *MixerBlock) Apply(g *autograd.Graph, x *autograd.Var) *autograd.Var {
	// Token mixing: for each group, tokenDown @ GELU(tokenUp @ norm(x)).
	h := m.normToken.Apply(g, x)
	h = g.GroupedMatMulLeft(m.tokenUp, h, m.K)
	h = g.GELU(h)
	h = g.GroupedMatMulLeft(m.tokenDown, h, m.tokenUp.Rows())
	x = g.Add(x, h)
	// Channel mixing: row-wise MLP.
	h2 := m.channelMLP.Apply(g, m.normChannel.Apply(g, x))
	return g.Add(x, h2)
}

// Params implements Module.
func (m *MixerBlock) Params() []*autograd.Var {
	out := []*autograd.Var{m.tokenUp, m.tokenDown}
	out = append(out, m.normToken.Params()...)
	out = append(out, m.normChannel.Params()...)
	out = append(out, m.channelMLP.Params()...)
	return out
}
