package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHandlerEndpoints exercises the HTTP/JSON surface end to end over a
// real loopback listener: ingest (including the 409 stale contract), predict
// and embed (including the served snapshot/weight versions), and stats.
func TestHandlerEndpoints(t *testing.T) {
	e, ds := newWeightTestEngine(t, 64)
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	post := func(path string, body map[string]any) (int, map[string]any) {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, out
	}

	wm, _ := e.Watermark()
	code, out := post("/v1/ingest", map[string]any{"src": 1, "dst": 2, "t": wm + 1})
	if code != http.StatusOK || out["watermark"].(float64) != wm+1 {
		t.Fatalf("ingest: %d %v", code, out)
	}
	// Behind the watermark: 409 with the watermark in the error body.
	code, out = post("/v1/ingest", map[string]any{"src": 1, "dst": 2, "t": wm - 10})
	if code != http.StatusConflict || out["error"] == nil {
		t.Fatalf("stale ingest: %d %v", code, out)
	}

	ev := ds.Graph.Events[0]
	code, out = post("/v1/predict", map[string]any{"src": ev.Src, "dst": ev.Dst, "t": wm + 2})
	if code != http.StatusOK {
		t.Fatalf("predict: %d %v", code, out)
	}
	if out["version"].(float64) < 1 || out["weights"].(float64) != 1 {
		t.Fatalf("predict versions: %v", out)
	}
	code, out = post("/v1/embed", map[string]any{"node": ev.Src, "t": wm + 2})
	if code != http.StatusOK || len(out["embedding"].([]any)) == 0 {
		t.Fatalf("embed: %d %v", code, out)
	}

	// Publish new weights; the HTTP surface reports the swap.
	if err := e.PublishWeights(perturbed(e, 2, 1.2)); err != nil {
		t.Fatal(err)
	}
	code, out = post("/v1/predict", map[string]any{"src": ev.Src, "dst": ev.Dst, "t": wm + 2})
	if code != http.StatusOK || out["weights"].(float64) != 2 {
		t.Fatalf("post-publish predict: %d %v", code, out)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["nodes"].(float64) != float64(ds.Spec.NumNodes) {
		t.Fatalf("stats nodes: %v", st["nodes"])
	}
	if st["weight_version"].(float64) != 2 || st["weight_swaps"].(float64) != 1 {
		t.Fatalf("stats weights: %v / %v", st["weight_version"], st["weight_swaps"])
	}
	// Malformed body: 400.
	r2, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", r2.StatusCode)
	}
}

// TestHandlerReplicaSurface exercises the replication-aware HTTP surface: a
// read-only engine answers ingest with 421 + the leader's URL, /v1/healthz
// reflects role, writability and the injected readiness predicate, and
// /v1/stats carries read_only, checkpoint age and the merged extra fields.
func TestHandlerReplicaSurface(t *testing.T) {
	e, _ := newWeightTestEngine(t, 0)
	var healthErr error
	srv := httptest.NewServer(NewHandlerConfig(e, HandlerConfig{
		LeaderURL:  func() string { return "http://leader.example:8191" },
		StatsExtra: func() map[string]any { return map[string]any{"repl_lag": 7} },
		Health:     func() error { return healthErr },
	}))
	defer srv.Close()

	getJSON := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, out
	}

	// Writable engine: healthy leader, ingest accepted.
	code, out := getJSON("/v1/healthz")
	if code != http.StatusOK || out["role"] != "leader" || out["writable"] != true {
		t.Fatalf("healthz on leader: %d %v", code, out)
	}

	// Flip read-only: the node is a follower now.
	e.SetWritable(false)
	wm, _ := e.Watermark()
	body, _ := json.Marshal(map[string]any{"src": 1, "dst": 2, "t": wm + 1})
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rej map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("read-only ingest: %d, want 421", resp.StatusCode)
	}
	if rej["leader"] != "http://leader.example:8191" ||
		resp.Header.Get("X-Taser-Leader") != "http://leader.example:8191" {
		t.Fatalf("read-only ingest did not point at the leader: %v / %q",
			rej, resp.Header.Get("X-Taser-Leader"))
	}

	code, out = getJSON("/v1/healthz")
	if code != http.StatusOK || out["role"] != "follower" || out["writable"] != false {
		t.Fatalf("healthz on follower: %d %v", code, out)
	}

	// The injected predicate (a follower over its lag bound) flips 503.
	healthErr = errDummyUnhealthy
	code, out = getJSON("/v1/healthz")
	if code != http.StatusServiceUnavailable || out["status"] != "unhealthy" {
		t.Fatalf("unhealthy healthz: %d %v", code, out)
	}
	healthErr = nil

	code, st := getJSON("/v1/stats")
	if code != http.StatusOK || st["read_only"] != true {
		t.Fatalf("stats read_only: %d %v", code, st["read_only"])
	}
	if st["repl_lag"].(float64) != 7 {
		t.Fatalf("stats extra not merged: %v", st["repl_lag"])
	}
	if st["checkpoint_age_ms"].(float64) != -1 {
		t.Fatalf("non-durable engine should report checkpoint age -1, got %v", st["checkpoint_age_ms"])
	}
}

var errDummyUnhealthy = errors.New("lag over threshold")
