package serve

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taser/internal/autograd"
	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/tensor"
	"taser/internal/train"
)

// newTestEngine builds an offline trainer (source of model + predictor) and
// an engine over the same dataset, bootstrapped with every event. The
// trainer uses the deterministic most-recent policy so offline builds are
// comparable with served ones.
func newTestEngine(t testing.TB, ds *datasets.Dataset, mutate func(*Config)) (*Engine, *train.Trainer) {
	t.Helper()
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent,
		MaxBatch: 8, MaxWait: time.Millisecond, SnapshotEvery: 64, Seed: 3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	if err := e.Bootstrap(ds.Graph.Events, ds.EdgeFeat); err != nil {
		t.Fatal(err)
	}
	return e, tr
}

// offlineEmbed computes the reference embedding through the trainer's
// exported build path and a plain forward — the offline eval code path.
func offlineEmbed(tr *train.Trainer, roots []sampler.Target) [][]float64 {
	mb := tr.BuildMiniBatch(roots)
	g := autograd.New()
	emb, _ := tr.Model.Forward(g, mb)
	out := make([][]float64, len(roots))
	for i := range roots {
		out[i] = append([]float64(nil), emb.Val.Row(i)...)
	}
	return out
}

// TestServedEmbeddingMatchesOffline is the acceptance determinism check:
// on a pinned snapshot equal to the offline dataset, a served embedding is
// bitwise-equal to the embedding the offline eval path computes — cold cache,
// warm cache (same key), and inside a padded multi-request batch.
func TestServedEmbeddingMatchesOffline(t *testing.T) {
	ds := datasets.GDELT(0.02, 7) // node and edge features exercise both stores
	e, tr := newTestEngine(t, ds, func(c *Config) { c.CacheSize = 64 })

	snap := e.Pin()
	if snap.NumEvents() != len(ds.Graph.Events) {
		t.Fatalf("snapshot has %d events, want %d", snap.NumEvents(), len(ds.Graph.Events))
	}
	queryT := snap.Watermark + 1

	nodes := []int32{0, 1, 7, 33, 100}
	for _, v := range nodes {
		want := offlineEmbed(tr, []sampler.Target{{Node: v, Time: queryT}})[0]
		got, err := e.Embed(v, queryT)
		if err != nil {
			t.Fatal(err)
		}
		if got.Version != snap.Version {
			t.Fatalf("served on version %d, pinned %d", got.Version, snap.Version)
		}
		for j := range want {
			if got.Embedding[j] != want[j] {
				t.Fatalf("node %d cold emb[%d]: served %v offline %v", v, j, got.Embedding[j], want[j])
			}
		}
		// Warm path: the cache must return the identical vector.
		again, err := e.Embed(v, queryT+5)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Fatalf("node %d second embed not served from cache", v)
		}
		for j := range want {
			if again.Embedding[j] != want[j] {
				t.Fatalf("node %d cached emb[%d] diverged", v, j)
			}
		}
	}
}

// TestServedPredictionMatchesOffline checks the scored path: the served link
// logit equals scoring the offline embeddings with the same predictor.
func TestServedPredictionMatchesOffline(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 9)
	e, tr := newTestEngine(t, ds, nil) // cache off: every root computed fresh

	queryT := e.Pin().Watermark + 1
	ev := ds.Graph.Events[len(ds.Graph.Events)-1]
	src, dst := ev.Src, ev.Dst

	embs := offlineEmbed(tr, []sampler.Target{{Node: src, Time: queryT}, {Node: dst, Time: queryT}})
	g := autograd.New()
	logit := tr.Pred.ScoreGathered(g,
		autograd.NewConst(rowsToMatrix(embs)), []int32{0}, []int32{1})
	want := logit.Val.Data[0]

	got, err := e.PredictLink(src, dst, queryT)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want {
		t.Fatalf("served score %v, offline %v", got.Score, want)
	}
}

// TestIngestWatermarkRejection: stale events are refused with the watermark
// in the error, and the error unwraps to ErrStaleEvent.
func TestIngestWatermarkRejection(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 3)
	e, _ := newTestEngine(t, ds, nil)

	wm, ok := e.Watermark()
	if !ok {
		t.Fatal("bootstrapped engine must report a watermark")
	}
	err := e.Ingest(1, 2, wm-1, nil)
	if err == nil {
		t.Fatal("stale event must be rejected")
	}
	if !errors.Is(err, ErrStaleEvent) {
		t.Fatalf("error must wrap ErrStaleEvent: %v", err)
	}
	if !strings.Contains(err.Error(), "watermark") {
		t.Fatalf("error must name the watermark: %v", err)
	}
	if got, _ := e.Watermark(); got != wm {
		t.Fatal("rejected event must not advance the watermark")
	}
	// At-watermark and ahead-of-watermark events are admitted.
	if err := e.Ingest(1, 2, wm, make([]float64, ds.Spec.EdgeDim)); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(2, 3, wm+4, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Watermark(); got != wm+4 {
		t.Fatalf("watermark = %v, want %v", got, wm+4)
	}
}

// TestIngestNegativeStartStream is the watermark-initialization regression at
// the engine level: a fresh (un-bootstrapped) engine must admit a first event
// before t=0 instead of treating the zero-valued watermark as real, must
// report no watermark until then, and must enforce chronology afterwards.
func TestIngestNegativeStartStream(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 23)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	if _, ok := e.Watermark(); ok {
		t.Fatal("fresh engine must report no watermark")
	}
	if st := e.Stats(); st.HasWatermark {
		t.Fatal("pre-ingest snapshot must report no watermark")
	}
	if err := e.Ingest(0, 1, -7.5, nil); err != nil {
		t.Fatalf("first event at t=-7.5 must be admitted: %v", err)
	}
	if wm, ok := e.Watermark(); !ok || wm != -7.5 {
		t.Fatalf("watermark = %v (ok=%v), want -7.5", wm, ok)
	}
	if err := e.Ingest(1, 2, -9, nil); !errors.Is(err, ErrStaleEvent) {
		t.Fatalf("event behind a negative watermark must be stale: %v", err)
	}
	if err := e.Ingest(1, 2, -7.5, nil); err != nil {
		t.Fatalf("equal negative timestamp must be admitted: %v", err)
	}
	snap := e.PublishSnapshot()
	if !snap.HasWatermark || snap.Watermark != -7.5 {
		t.Fatalf("published watermark = %v (has=%v), want -7.5", snap.Watermark, snap.HasWatermark)
	}
	if st := e.Stats(); !st.HasWatermark || st.Watermark != -7.5 {
		t.Fatalf("stats watermark = %v (has=%v), want -7.5", st.Watermark, st.HasWatermark)
	}
	// The negative-time events are servable.
	if _, err := e.Embed(0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCacheKeyDistinguishesEmptyFromTimeZero: an embedding cached for a node
// with no events must stop being served once the node's first event arrives
// at t=0 — "no events" and "last event at t=0" are different cache keys, the
// same zero-value distinction the watermark makes.
func TestCacheKeyDistinguishesEmptyFromTimeZero(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 31)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent, CacheSize: 32, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	const v = int32(4)
	if _, err := e.Embed(v, 5); err != nil { // cold: caches the empty-neighborhood embedding
		t.Fatal(err)
	}
	warm, err := e.Embed(v, 9) // event-less nodes are cacheable at any query time
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second embed of an event-less node must be a cache hit")
	}

	if err := e.Ingest(v, v+1, 0, nil); err != nil { // first event, at exactly t=0
		t.Fatal(err)
	}
	snap := e.PublishSnapshot()
	after, err := e.Embed(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("embed after the node's first t=0 event must not be served from the pre-event cache entry")
	}
	if after.Version != snap.Version {
		t.Fatalf("served version %d, want %d", after.Version, snap.Version)
	}
	for j := range warm.Embedding {
		if warm.Embedding[j] != after.Embedding[j] {
			return // the new edge visibly changed the embedding, as it must
		}
	}
	t.Fatal("embedding unchanged by the node's first event")
}

// TestCacheInvalidationByIngest: an event touching a node changes its
// (node, last-event-time) key in the next snapshot, so the cached embedding
// stops being served.
func TestCacheInvalidationByIngest(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 5)
	e, _ := newTestEngine(t, ds, func(c *Config) { c.CacheSize = 32 })

	v := ds.Graph.Events[0].Src
	queryT := e.Pin().Watermark + 1
	if _, err := e.Embed(v, queryT); err != nil { // cold: fills the cache
		t.Fatal(err)
	}
	warm, err := e.Embed(v, queryT)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second embed must be a cache hit")
	}

	// Touch v and publish: the key moves, the entry goes stale.
	if err := e.Ingest(v, (v+1)%int32(ds.Spec.NumNodes), queryT+1, nil); err != nil {
		t.Fatal(err)
	}
	snap := e.PublishSnapshot()
	after, err := e.Embed(v, snap.Watermark+1)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("embed after ingest touching the node must not be served from cache")
	}
	if after.Version != snap.Version {
		t.Fatalf("served version %d, want %d", after.Version, snap.Version)
	}
	st := e.Stats()
	if st.CacheStale == 0 {
		t.Fatal("stale lookup must be counted")
	}
}

// TestConcurrentIngestAndServe is the -race acceptance test: writers mutate
// the graph (racing for the watermark) while readers embed and predict, with
// snapshots publishing underneath. Staleness rejections are expected for the
// losing writer; everything else must succeed.
func TestConcurrentIngestAndServe(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 13)
	e, _ := newTestEngine(t, ds, func(c *Config) {
		c.CacheSize = 64
		c.SnapshotEvery = 16
		c.MaxWait = 200 * time.Microsecond
	})

	base, _ := e.Watermark()
	var clock atomic.Int64
	var ingested, rejected atomic.Int64
	n := int32(ds.Spec.NumNodes)

	const writers, readers = 3, 4
	const eventsPerWriter, reqsPerReader = 150, 120
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < eventsPerWriter; i++ {
				tick := float64(clock.Add(1))
				src := int32((w*131 + i*17) % int(n))
				dst := int32((w*37 + i*101 + 1) % int(n))
				err := e.Ingest(src, dst, base+tick, nil)
				switch {
				case err == nil:
					ingested.Add(1)
				case errors.Is(err, ErrStaleEvent):
					rejected.Add(1) // lost the race between clock draw and lock
				default:
					t.Errorf("unexpected ingest error: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < reqsPerReader; i++ {
				v := int32((r*211 + i*13) % int(n))
				qt := base + float64(clock.Load()) + 1e6 // far future: always cacheable
				if i%3 == 0 {
					if _, err := e.Embed(v, qt); err != nil {
						t.Errorf("embed: %v", err)
						return
					}
				} else {
					u := int32((r*97 + i*29 + 1) % int(n))
					if _, err := e.PredictLink(v, u, qt); err != nil {
						t.Errorf("predict: %v", err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if ingested.Load() == 0 {
		t.Fatal("no events ingested")
	}
	st := e.Stats()
	if st.Requests != writers*0+readers*reqsPerReader {
		t.Fatalf("requests = %d, want %d", st.Requests, readers*reqsPerReader)
	}
	if st.Batches == 0 {
		t.Fatal("no micro-batches executed")
	}
	if st.SnapshotVersion < 2 {
		t.Fatalf("snapshots must have published under load (version %d)", st.SnapshotVersion)
	}
	t.Logf("ingested=%d rejected=%d version=%d batches=%d avg-batch=%.1f hit=%.2f p50=%v p99=%v",
		ingested.Load(), rejected.Load(), st.SnapshotVersion, st.Batches,
		st.AvgBatch(), st.CacheHitRate(), st.P50, st.P99)
}

// TestCloseDrainsAndRejects: Close serves accepted requests, later calls
// fail fast with ErrClosed.
func TestCloseDrainsAndRejects(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 17)
	e, _ := newTestEngine(t, ds, func(c *Config) { c.MaxWait = 50 * time.Millisecond })

	qt := e.Pin().Watermark + 1
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Embed(int32(i), qt)
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let requests reach the scheduler
	e.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if _, err := e.Embed(0, qt); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close embed must return ErrClosed, got %v", err)
	}
	if _, err := e.PredictLink(0, 1, qt); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close predict must return ErrClosed, got %v", err)
	}
}

// TestRequestValidation: out-of-range nodes are rejected before enqueue.
func TestRequestValidation(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 19)
	e, _ := newTestEngine(t, ds, nil)
	if _, err := e.Embed(-1, 10); err == nil {
		t.Fatal("negative node must be rejected")
	}
	if _, err := e.Embed(int32(ds.Spec.NumNodes), 10); err == nil {
		t.Fatal("node beyond range must be rejected")
	}
	if _, err := e.PredictLink(0, int32(ds.Spec.NumNodes), 10); err == nil {
		t.Fatal("dst beyond range must be rejected")
	}
	wm, _ := e.Watermark()
	if err := e.Ingest(0, 1, wm+1, make([]float64, ds.Spec.EdgeDim+3)); err == nil {
		t.Fatal("wrong feature width must be rejected")
	}
}

func rowsToMatrix(rows [][]float64) *tensor.Matrix {
	m := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}
