package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/overload"
	"taser/internal/stats"
)

// waitGateQueued polls until the gate reports n queued waiters in lane
// (goroutine enqueue order is not otherwise observable from a test).
func waitGateQueued(t *testing.T, g *overload.Gate, lane overload.Lane, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Lanes[lane].Queued != n {
		if time.Now().After(deadline) {
			t.Fatalf("lane %v never reached %d queued (have %d)", lane, n, g.Stats().Lanes[lane].Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadDisabledAnchor is the bitwise-identity contract: an engine with
// a zero Overload config runs no overload code on any path — no gate, no
// controller, no "overload" key in the stats payload — and an engine with the
// control plane on serves embeddings bitwise-equal to the disabled one (the
// plane shapes admission and scheduling, never computation).
func TestOverloadDisabledAnchor(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 21)
	off, _ := newTestEngine(t, ds, nil)
	on, _ := newTestEngine(t, ds, func(c *Config) {
		c.Overload = overload.Config{TargetP99: 50 * time.Millisecond, MaxQueue: 64}
	})

	if off.gate != nil || off.ctrl != nil {
		t.Fatal("disabled engine constructed overload state")
	}
	if off.Stats().Overload != nil {
		t.Fatal("disabled engine reports overload stats")
	}
	if _, ok := off.statsPayload()["overload"]; ok {
		t.Fatal(`disabled engine's stats payload has an "overload" key`)
	}
	if b, w := off.curMaxBatch(), off.curMaxWait(); b != off.cfg.MaxBatch || w != off.cfg.MaxWait {
		t.Fatalf("disabled effective values %d/%v, want the static config %d/%v", b, w, off.cfg.MaxBatch, off.cfg.MaxWait)
	}

	if on.gate == nil || on.ctrl == nil {
		t.Fatal("enabled engine missing overload state")
	}
	if st := on.Stats(); st.Overload == nil || st.Overload.Gate == nil || st.Overload.Controller == nil {
		t.Fatalf("enabled engine's overload stats incomplete: %+v", st.Overload)
	}

	wm, _ := off.Watermark()
	queryT := wm + 1
	for _, v := range []int32{0, 3, 17, 51} {
		a, err := off.Embed(v, queryT)
		if err != nil {
			t.Fatal(err)
		}
		b, err := on.Embed(v, queryT)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Embedding {
			if a.Embedding[j] != b.Embedding[j] {
				t.Fatalf("node %d emb[%d]: disabled %v enabled %v", v, j, a.Embedding[j], b.Embedding[j])
			}
		}
	}
}

// TestEngineShedsWithRetryAfter drives the admission path to a deterministic
// shed: capacity held, the ingest lane's queue filled, the next Ingest must
// fail fast with a typed rejection carrying a positive Retry-After — and the
// write must not have been admitted (watermark unchanged).
func TestEngineShedsWithRetryAfter(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 22)
	e, _ := newTestEngine(t, ds, func(c *Config) {
		c.Overload = overload.Config{MaxQueue: 1, Capacity: 1}
	})
	wm, _ := e.Watermark()

	// Occupy the single capacity slot, then park one waiter in the ingest
	// lane's only queue seat.
	if err := e.gate.Enter(overload.LanePredict); err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- e.gate.Enter(overload.LaneIngest) }()
	waitGateQueued(t, e.gate, overload.LaneIngest, 1)

	err := e.Ingest(1, 2, wm+1, nil)
	if !errors.Is(err, overload.ErrOverload) {
		t.Fatalf("Ingest over a full queue = %v, want ErrOverload", err)
	}
	var rej *overload.RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("shed error is %T, want *RejectedError", err)
	}
	if rej.Lane != overload.LaneIngest || rej.Depth != 1 || rej.RetryAfter <= 0 {
		t.Fatalf("rejection = %+v, want ingest lane, depth 1, positive Retry-After", rej)
	}
	if got, _ := e.Watermark(); got != wm {
		t.Fatalf("shed ingest moved the watermark: %v → %v", wm, got)
	}
	if shed := e.gate.Stats().Lanes[overload.LaneIngest].Shed; shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}

	// Release: the queued waiter gets the slot, then drains cleanly.
	e.gate.Leave(overload.LanePredict)
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued waiter woke with %v", err)
	}
	e.gate.Leave(overload.LaneIngest)
	if err := e.Ingest(1, 2, wm+1, nil); err != nil {
		t.Fatalf("post-drain Ingest: %v", err)
	}
}

// TestHandlerOverloadSurface checks the HTTP taxonomy and observability: a
// shed POST answers 429 Too Many Requests with a Retry-After header (≥1s,
// whole seconds) and the typed JSON body, and /v1/stats exposes the overload
// block with the shed attributed to the right lane.
func TestHandlerOverloadSurface(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 23)
	e, _ := newTestEngine(t, ds, func(c *Config) {
		c.Overload = overload.Config{MaxQueue: 1, Capacity: 1}
	})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Hold the slot and fill the predict lane's queue so the next predict
	// sheds immediately instead of blocking the HTTP client.
	if err := e.gate.Enter(overload.LaneIngest); err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- e.gate.Enter(overload.LanePredict) }()
	waitGateQueued(t, e.gate, overload.LanePredict, 1)

	resp, err := http.Post(srv.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"src":1,"dst":2,"t":1e9}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error        string `json:"error"`
		Lane         string `json:"lane"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed predict = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want at least 1 second", ra)
	}
	if body.Lane != "predict" || body.Error == "" {
		t.Fatalf("shed body = %+v", body)
	}

	// Drain the held state before reading stats.
	e.gate.Leave(overload.LaneIngest)
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued waiter woke with %v", err)
	}
	e.gate.Leave(overload.LanePredict)

	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	ov, ok := payload["overload"].(map[string]any)
	if !ok {
		t.Fatalf("stats payload has no overload block: %v", payload["overload"])
	}
	gate := ov["gate"].(map[string]any)
	lanes := gate["lanes"].(map[string]any)
	pred := lanes["predict"].(map[string]any)
	if shed := pred["shed"].(float64); shed != 1 {
		t.Fatalf("stats shed[predict] = %v, want 1", shed)
	}
	if eb := ov["effective_max_batch"].(float64); int(eb) != e.cfg.MaxBatch {
		t.Fatalf("effective_max_batch = %v, want the static %d (no controller)", eb, e.cfg.MaxBatch)
	}
	if _, hasCtrl := ov["controller"]; hasCtrl {
		t.Fatal("admission-only engine reports a controller block")
	}
}

// TestControllerRetunesUnderLoad puts a sub-nanosecond SLO on a live engine:
// every real request breaches it, so the control loop must walk the effective
// MaxBatch/MaxWait to their clamps — visible through Stats — while the
// request path keeps serving.
func TestControllerRetunesUnderLoad(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 24)
	e, _ := newTestEngine(t, ds, func(c *Config) {
		c.Overload = overload.Config{TargetP99: time.Nanosecond, Interval: time.Millisecond}
	})
	wm, _ := e.Watermark()
	for i := 0; i < 8; i++ { // populate the latency window
		if _, err := e.Embed(int32(i), wm+1); err != nil {
			t.Fatal(err)
		}
	}
	wantBatch, wantWait := 4*e.cfg.MaxBatch, e.cfg.MaxWait/8
	deadline := time.Now().Add(15 * time.Second)
	for {
		ov := e.Stats().Overload
		if ov.EffectiveMaxBatch == wantBatch && ov.EffectiveMaxWait == wantWait {
			if ov.Controller.Tightened < 3 {
				t.Fatalf("reached the clamps in %d tighten steps, want >= 3", ov.Controller.Tightened)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never reached the clamps: %+v (want batch %d wait %v)", ov, wantBatch, wantWait)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Still serving under the tightened schedule.
	if _, err := e.Embed(1, wm+1); err != nil {
		t.Fatalf("Embed under tightened schedule: %v", err)
	}
}

// TestIngestFloodDoesNotStarvePredict is the lane-priority smoke: with the
// gate at capacity 1 and a deep ingest backlog, a predict request still
// completes promptly — the weighted handoff guarantees it a slot within a
// bounded number of completions, not after the flood drains.
func TestIngestFloodDoesNotStarvePredict(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 25)
	e, _ := newTestEngine(t, ds, func(c *Config) {
		c.Overload = overload.Config{MaxQueue: 64, Capacity: 1}
	})
	wm, _ := e.Watermark()
	var tick atomic.Int64
	tick.Store(int64(wm) + 1)

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Monotone per-call timestamps; concurrent producers may still
			// interleave behind the watermark — stale is fine, starvation isn't.
			err := e.Ingest(1, 2, float64(tick.Add(1)), nil)
			if err != nil && !errors.Is(err, ErrStaleEvent) && !errors.Is(err, overload.ErrOverload) {
				t.Errorf("flood ingest: %v", err)
			}
		}()
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Embed(3, float64(tick.Load()+1000))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("predict under flood: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("predict starved behind the ingest flood")
	}
	wg.Wait()
}

// TestCloseDuringShedBurst closes the engine in the middle of an admission
// storm: every in-flight call must return (admitted ones served, queued ones
// woken with a terminal error — never a hang) and the engine's goroutines
// must all exit.
func TestCloseDuringShedBurst(t *testing.T) {
	before := runtime.NumGoroutine()
	ds := datasets.Wikipedia(0.02, 26)
	e, _ := newTestEngine(t, ds, func(c *Config) {
		c.Overload = overload.Config{TargetP99: 25 * time.Millisecond, MaxQueue: 2, Capacity: 2}
	})
	wm, _ := e.Watermark()
	var tick atomic.Int64
	tick.Store(int64(wm) + 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%2 == 0 {
					_, err = e.Embed(int32(i), float64(tick.Load()+100))
				} else {
					err = e.Ingest(1, 2, float64(tick.Add(1)), nil)
				}
				if errors.Is(err, ErrClosed) {
					return // terminal: the burst raced Close, as intended
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the burst saturate the gate
	e.Close()
	close(stop)

	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(60 * time.Second):
		t.Fatal("requests hung across Close during a shed burst")
	}

	// Every engine goroutine (scheduler, control loop) must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after Close: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetMergedOverloadStats checks the sharded composition: each shard
// runs its own gate, and the fleet's merged stats payload sums capacities and
// lane counters across shards while each per-shard block keeps its own view.
func TestFleetMergedOverloadStats(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 27)
	tr := newMixerTrainer(t, ds)
	fl := newTestFleet(t, tr, ds, 2, func(fc *FleetConfig) {
		fc.Overload = overload.Config{MaxQueue: 16}
	})
	events := ds.Graph.Events
	if err := fl.Bootstrap(events[:64], ds.EdgeFeat.SliceRows(64)); err != nil {
		t.Fatal(err)
	}
	for i := 64; i < 128; i++ {
		ev := events[i]
		if err := fl.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	wm, _ := fl.Watermark()
	for i := 0; i < 8; i++ {
		if _, err := fl.PredictLink(int32(i), int32(i+1), wm+1); err != nil {
			t.Fatal(err)
		}
	}

	// Round-trip through JSON so the assertions see the wire types an HTTP
	// client would.
	raw, err := json.Marshal(fl.statsPayload())
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	ov, ok := payload["overload"].(map[string]any)
	if !ok {
		t.Fatal("fleet stats payload has no overload block")
	}
	gate := ov["gate"].(map[string]any)
	perShard := 2 * fl.cfg.MaxBatch // Normalize's Capacity default per engine
	if got := int(gate["capacity"].(float64)); got != 2*perShard {
		t.Fatalf("merged capacity = %d, want %d (sum of %d shards)", got, 2*perShard, 2)
	}
	lanes := gate["lanes"].(map[string]any)
	var admitted float64
	var shardAdmitted float64
	for _, name := range []string{"predict", "ingest", "low"} {
		admitted += lanes[name].(map[string]any)["admitted"].(float64)
	}
	for _, b := range payload["shards"].([]any) {
		blk := b.(map[string]any)
		sov, ok := blk["overload"].(map[string]any)
		if !ok {
			t.Fatalf("shard block %v has no overload block", blk["shard"])
		}
		for _, name := range []string{"predict", "ingest", "low"} {
			shardAdmitted += sov["gate"].(map[string]any)["lanes"].(map[string]any)[name].(map[string]any)["admitted"].(float64)
		}
	}
	if admitted == 0 || admitted != shardAdmitted {
		t.Fatalf("merged admitted = %v, per-shard sum = %v (want equal and positive)", admitted, shardAdmitted)
	}
}

// TestFleetCloseDuringShedBurst is the drain-ordering check at fleet scope:
// closing mid-storm with tiny per-shard gates, every in-flight routed op —
// teed ingests included — must return rather than hang on a half-closed
// shard.
func TestFleetCloseDuringShedBurst(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 28)
	tr := newMixerTrainer(t, ds)
	fl := newTestFleet(t, tr, ds, 2, func(fc *FleetConfig) {
		fc.Overload = overload.Config{MaxQueue: 2, Capacity: 2}
	})
	if err := fl.Bootstrap(ds.Graph.Events[:64], ds.EdgeFeat.SliceRows(64)); err != nil {
		t.Fatal(err)
	}
	wm, _ := fl.Watermark()
	var tick atomic.Int64
	tick.Store(int64(wm) + 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%2 == 0 {
					_, err = fl.PredictLink(int32(i), int32(i+1), float64(tick.Load()+100))
				} else {
					err = fl.Ingest(int32(i), int32(i+7), float64(tick.Add(1)), nil)
				}
				if errors.Is(err, ErrClosed) {
					return
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	fl.Close()
	close(stop)

	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(60 * time.Second):
		t.Fatal("fleet ops hung across Close during a shed burst")
	}
}

// TestLatencyRingConcurrentSampling hammers the latency ring with writers
// while a sampler continuously snapshots it (the controller's access
// pattern). Under -race this proves sampling never races the request path;
// the value assertions prove quantiles stay within the written value set
// across ring wrap-around.
func TestLatencyRingConcurrentSampling(t *testing.T) {
	var r latencyRing
	r.init(64)
	const lo, hi = time.Millisecond, 16 * time.Millisecond

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := lo + time.Duration(w)*time.Millisecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.add(d)
				d += time.Millisecond
				if d > hi {
					d = lo
				}
			}
		}(w)
	}

	var buf []float64
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		buf = r.sample(buf)
		if len(buf) == 0 {
			continue
		}
		for _, q := range []float64{0.5, 0.99} {
			got := time.Duration(stats.Quantile(buf, q) * float64(time.Second))
			if got < lo || got > hi {
				t.Fatalf("q%.2f = %v outside the written range [%v, %v]", q, got, lo, hi)
			}
		}
		if len(buf) > 64 {
			t.Fatalf("sample window %d exceeds the ring capacity 64", len(buf))
		}
	}
	close(stop)
	wg.Wait()
}
