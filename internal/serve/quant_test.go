package serve

import (
	"math"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/mathx"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/train"
)

// newQuantTestEngine builds an engine like newWeightTestEngine but from a
// shared trainer (so sibling engines serve identical architectures and
// bootstraps) with the given serving quantization.
func newQuantTestEngine(t *testing.T, tr *train.Trainer, ds *datasets.Dataset, q models.Quantization) *Engine {
	t.Helper()
	e, err := New(Config{
		Model: tr.Model.Clone(), Pred: tr.Pred.Clone(),
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: 5, Policy: sampler.MostRecent,
		MaxBatch: 8, MaxWait: 100 * time.Microsecond, Seed: 3,
		Quantize: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	if err := e.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
		t.Fatal(err)
	}
	return e
}

// engineMRR scores the n events after the bootstrap prefix against negs
// sampled negatives each (deterministic in seed) and returns the mean
// reciprocal rank of the true destination.
func engineMRR(t *testing.T, e *Engine, ds *datasets.Dataset, n, negs int, seed uint64) float64 {
	t.Helper()
	rng := mathx.NewRNG(seed)
	var sum float64
	events := ds.Graph.Events[ds.TrainEnd : ds.TrainEnd+n]
	for _, ev := range events {
		pos, err := e.PredictLink(ev.Src, ev.Dst, ev.Time)
		if err != nil {
			t.Fatal(err)
		}
		rank := 1
		for k := 0; k < negs; k++ {
			neg := int32(rng.Intn(ds.Spec.NumNodes))
			r, err := e.PredictLink(ev.Src, neg, ev.Time)
			if err != nil {
				t.Fatal(err)
			}
			if r.Score >= pos.Score {
				rank++
			}
		}
		sum += 1 / float64(rank)
	}
	return sum / float64(len(events))
}

// TestQuantizedPublishStoresRoundedClone pins the ownership rule: the master
// the fine-tuner publishes stays f64 and untouched, while the engine stores
// (and serves) exactly the mode's rounded clone of it.
func TestQuantizedPublishStoresRoundedClone(t *testing.T) {
	ds := datasets.Wikipedia(0.05, 7)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 10, TimeDim: 6, Seed: 5,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e := newQuantTestEngine(t, tr, ds, models.QuantInt8)
	master := perturbed(e, 2, 1.25)
	masterCopy := master.Clone()
	if err := e.PublishWeights(master); err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqualSets(master, masterCopy) {
		t.Fatal("PublishWeights mutated the published master")
	}
	stored := e.PublishedWeights()
	if stored == master {
		t.Fatal("quantized engine stored the f64 master instead of a rounded clone")
	}
	want, err := models.QuantInt8.Clone(master)
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqualSets(stored, want) {
		t.Fatal("stored weights are not the int8 round-trip of the master")
	}
	if stored.Version != master.Version {
		t.Fatalf("stored version %d, want %d", stored.Version, master.Version)
	}
	wm, _ := e.Watermark()
	if _, err := e.Embed(0, wm+1); err != nil {
		t.Fatal(err)
	}
	if got := e.WeightVersion(); got != 2 {
		t.Fatalf("applied version %d, want 2", got)
	}
}

// bitwiseEqualSets compares two weight sets element-bitwise.
func bitwiseEqualSets(a, b *models.WeightSet) bool {
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		x, y := a.Params[i], b.Params[i]
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for j := range x.Data {
			if math.Float64bits(x.Data[j]) != math.Float64bits(y.Data[j]) {
				return false
			}
		}
	}
	return true
}

// TestQuantizedServingMRRDelta is the MRR-delta guard from DESIGN.md §13:
// across a prequential slice of held-out events, f32 serving must match f64
// ranking almost exactly (|ΔMRR| ≤ 0.005) and int8 must stay within the
// documented 0.05 budget. The smoke model here is untrained, which makes
// the int8 delta pessimistic — rankings near chance are maximally sensitive
// to weight rounding — so a trained model sits well inside the budget.
func TestQuantizedServingMRRDelta(t *testing.T) {
	ds := datasets.Wikipedia(0.05, 7)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 10, TimeDim: 6, Seed: 5,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	base := newQuantTestEngine(t, tr, ds, models.QuantNone)
	f32e := newQuantTestEngine(t, tr, ds, models.QuantF32)
	i8e := newQuantTestEngine(t, tr, ds, models.QuantInt8)

	// One shared f64 master, published to all three engines — exactly the
	// fine-tuner fan-out the quantization modes slot into.
	master := models.CaptureWeights(2, tr.Model, tr.Pred)
	for _, e := range []*Engine{base, f32e, i8e} {
		if err := e.PublishWeights(master.Clone()); err != nil {
			t.Fatal(err)
		}
	}

	const n, negs, seed = 40, 10, 17
	mrr := engineMRR(t, base, ds, n, negs, seed)
	mrrF32 := engineMRR(t, f32e, ds, n, negs, seed)
	mrrI8 := engineMRR(t, i8e, ds, n, negs, seed)
	t.Logf("MRR f64=%.4f f32=%.4f (Δ=%+.4f) int8=%.4f (Δ=%+.4f)",
		mrr, mrrF32, mrrF32-mrr, mrrI8, mrrI8-mrr)
	if d := math.Abs(mrrF32 - mrr); d > 0.005 {
		t.Fatalf("f32 serving MRR delta %v exceeds 0.005", d)
	}
	if d := math.Abs(mrrI8 - mrr); d > 0.05 {
		t.Fatalf("int8 serving MRR delta %v exceeds the 0.05 budget", d)
	}
}
