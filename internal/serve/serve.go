// Package serve is TASER's online inference subsystem: it serves link
// prediction and node embeddings while the temporal graph is still growing —
// the deployment shape of the paper's motivating applications (fraud
// detection, recommendation), where events stream in continuously and
// predictions cannot wait for a retraining cycle.
//
// Three mechanisms compose:
//
//   - Concurrent ingest (this file). A guarded tgraph.Builder accepts edge
//     events from any number of writers and periodically publishes immutable
//     (Graph, T-CSR, edge-feature) snapshots through an atomic pointer swap.
//     Readers pin a snapshot for the duration of a request; ingest never
//     blocks inference and inference never blocks ingest — the epoch-style
//     separation of a production feature store, with Go's GC standing in for
//     epoch reclamation.
//
//   - Micro-batched serving (batcher.go). Concurrent requests are coalesced
//     into minibatches (bounded by MaxBatch roots and MaxWait latency) and
//     run through the pooled, allocation-free build path the training loop
//     uses (train.InferenceBuilder over internal/train/pool.go) and one model
//     forward — amortizing neighbor finding and feature slicing across
//     requests exactly as training amortizes them across a batch.
//
//   - An embedding cache (embcache.go). Node embeddings are memoized keyed by
//     (node, last-event-time in the pinned snapshot), layered on
//     internal/cache's LRU; ingesting an event that touches a node changes
//     its key, so hot nodes are served from cache until the stream
//     invalidates them. See DESIGN.md for the staleness bound.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"taser/internal/device"
	"taser/internal/models"
	"taser/internal/overload"
	"taser/internal/sampler"
	"taser/internal/tensor"
	"taser/internal/tgraph"
	"taser/internal/train"
	"taser/internal/wal"
)

// ErrClosed is returned by serving calls after Close.
var ErrClosed = errors.New("serve: engine closed")

// ErrStaleEvent wraps ingest rejections of events behind the watermark.
var ErrStaleEvent = errors.New("serve: event behind ingest watermark")

// ErrReadOnly wraps write rejections of a read-only engine — a replica
// follower, whose stream is owned by the replication loop (internal/replica)
// tailing the leader's WAL. Clients should redirect the write to the leader;
// the HTTP layer maps this to 421 Misdirected Request. Promotion
// (SetWritable(true)) lifts it.
var ErrReadOnly = errors.New("serve: engine is read-only (replica follower)")

// Config wires a trained model into an online engine. Model and Pred are
// typically taken from an offline train.Trainer after pretraining.
//
// Ownership: once any weight set is published (PublishWeights, or an
// attached internal/finetune Tuner), the engine's scheduler writes into
// Model/Pred parameters when it applies a swap — so an engine that will
// receive weight publications must own its Model/Pred exclusively. Hand it
// clones (models.TGNN.Clone, EdgePredictor.Clone) when the originals are
// shared with a trainer, another engine, or a fine-tuner.
type Config struct {
	Model models.TGNN
	Pred  *models.EdgePredictor

	NumNodes int
	NodeFeat *tensor.Matrix // static node features (nil when the graph has none)
	EdgeDim  int            // per-event edge-feature width (0 when absent)

	Budget int              // supporting neighbors per hop (default 10)
	Policy sampler.Policy   // static sampling policy (default MostRecent: deterministic serving)
	Finder train.FinderKind // default FinderGPU (requests arrive in arbitrary time order)

	MaxBatch      int           // max roots coalesced per micro-batch (default 32)
	MaxWait       time.Duration // max time the first request of a batch waits (default 2ms)
	CacheSize     int           // embedding-cache capacity in nodes (0 disables)
	SnapshotEvery int           // publish a snapshot every k ingested events (default 256)
	LatencyWindow int           // request latencies retained for the P50/P99 stats (default 4096)

	// Online fine-tuning hints, consumed by internal/finetune when a Tuner
	// is attached to this engine (the engine itself only stores them; weight
	// publication works with or without a tuner via PublishWeights).
	FinetuneInterval time.Duration // cadence of fine-tune rounds (0 = finetune default)
	ReplayWindow     int           // recent events replayed per round (0 = finetune default)

	// Durability enables the write-ahead log and checkpointing when its Dir
	// is set (durability.go, DESIGN.md §9); the zero value serves purely
	// in-memory.
	Durability Durability

	// Quantize selects the serving-side weight representation (DESIGN.md
	// §13). Fine-tuners keep publishing float64 masters; with QuantF32 or
	// QuantInt8 the engine stores (and checkpoints) a rounded clone of each
	// publication, trading weight precision for footprint under an MRR error
	// budget guarded by the serve tests. The zero value serves f64 unchanged.
	Quantize models.Quantization

	// Overload enables the overload control plane (internal/overload,
	// DESIGN.md §14): TargetP99 attaches an SLO feedback controller to the
	// scheduler's effective MaxBatch/MaxWait, MaxQueue bounds admission with
	// priority lanes (predict over ingest over replication) and typed
	// ErrOverload shedding. The zero value disables it entirely — the engine
	// then runs exactly the static-config path, bit for bit.
	Overload overload.Config

	Seed uint64
	Xfer *device.XferStats // optional transfer accounting shared with offline runs
}

// normalize fills defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.Model == nil {
		return c, fmt.Errorf("serve: Config.Model is required")
	}
	if c.Pred == nil {
		return c, fmt.Errorf("serve: Config.Pred is required")
	}
	if c.NumNodes <= 0 {
		return c, fmt.Errorf("serve: Config.NumNodes must be positive")
	}
	if c.Budget == 0 {
		c.Budget = 10
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 256
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 4096
	}
	if c.Durability.Dir != "" && c.Durability.FS == nil {
		c.Durability.FS = wal.OSFS{}
	}
	var err error
	if c.Overload, err = c.Overload.Normalize(c.MaxBatch, c.MaxWait); err != nil {
		return c, fmt.Errorf("serve: %w", err)
	}
	return c, nil
}

// Snapshot is one immutable published view of the stream: a packed graph,
// its adjacency, and the edge features aligned with its event ids. All
// fields are read-only after publication; any number of readers may share
// one.
//
// Publication is incremental: Graph.Events, the TCSR adjacency (a chunked
// tgraph.AppendableTCSR) and EdgeFeat.Data are immutable prefix views into
// the engine's append-only ingest buffers, shared structurally with earlier
// snapshots rather than copied — publishing costs O(delta since the last
// publish), not O(events). Readers cannot tell: the adjacency-access
// contract (tgraph.Adjacency) is exactly the one a from-scratch BuildTCSR
// satisfies, bitwise.
type Snapshot struct {
	Version      uint64
	Graph        *tgraph.Graph
	TCSR         tgraph.Adjacency
	EdgeFeat     *tensor.Matrix
	Watermark    float64 // ingest watermark at publication (meaningful iff HasWatermark)
	HasWatermark bool    // false only for the empty pre-ingest snapshot
}

// NumEvents reports the snapshot's event count.
func (s *Snapshot) NumEvents() int { return s.Graph.NumEvents() }

// LastEventTime returns the timestamp of node v's most recent event in the
// snapshot, and whether v has any events yet — ok false is distinct from a
// real t=0 last event, exactly like the ingest watermark. Together with the
// node id it forms the embedding-cache key: v's temporal neighborhood
// N(v, t) is identical for every query time t ≥ LastEventTime(v) (and empty
// at every t while ok is false), so one cached embedding serves all of them
// (up to time-encoding drift; see DESIGN.md).
func (s *Snapshot) LastEventTime(v int32) (t float64, ok bool) {
	_, ts, _ := s.TCSR.Adj(v)
	if len(ts) == 0 {
		return 0, false
	}
	return ts[len(ts)-1], true
}

// Engine is the online inference engine. All exported methods are safe for
// concurrent use: ingest methods synchronize on an internal writer lock,
// serving methods funnel through the micro-batching scheduler.
type Engine struct {
	cfg Config

	// Ingest side: the guarded builder plus the growable flat edge-feature
	// rows (row i belongs to event i, the order Snapshot preserves).
	// edgeFeat is append-only: published snapshots hold full (len == cap)
	// prefix views of it, so later appends either land beyond every
	// published length or relocate the array — never inside a view.
	ingestMu  sync.Mutex
	gb        *tgraph.Builder
	edgeFeat  []float64
	zeroRow   []float64
	sinceSnap int
	version   uint64
	snap      atomic.Pointer[Snapshot]

	// Serving side (owned by the scheduler goroutine).
	builder        *train.InferenceBuilder
	builderVersion uint64
	cache          *embCache
	fs             flushScratch // per-flush working set, reused across flushes

	// Weight publication (DESIGN.md §8): a fine-tuner stores immutable
	// versioned WeightSets into weights; the scheduler notices the pointer
	// change at the top of a flush and copies the values into the serving
	// model/predictor parameters — which only the scheduler goroutine ever
	// touches — so a whole micro-batch runs under one pinned weight version
	// and publication never blocks serving (nor serving, publication).
	weights       atomic.Pointer[models.WeightSet]
	weightVersion atomic.Uint64 // version currently applied (scheduler writes)
	weightSwaps   atomic.Uint64 // swaps performed
	swapNanos     atomic.Int64  // cumulative time spent copying weights in

	// Durability (durability.go): the WAL shares the ingest lock — appends
	// happen on the ingest path — while checkpoint writes serialize on their
	// own mutex so they never stall ingest for the duration of an fsync.
	wlog         *wal.Log   // nil = durability off (guarded by ingestMu)
	sinceCkpt    int        // events since the last periodic checkpoint (guarded by ingestMu)
	ckptMu       sync.Mutex // serializes checkpoint capture+write
	walFailures  atomic.Uint64
	ckptWrites   atomic.Uint64
	ckptFailures atomic.Uint64
	ckptEvents   atomic.Uint64 // events covered by the newest checkpoint
	ckptUnix     atomic.Int64  // wall time of the newest checkpoint write (UnixNano; 0 = none yet)

	// Replication (internal/replica): a follower engine is read-only — the
	// public write API (Ingest, Bootstrap, PublishSnapshot is still fine)
	// rejects with ErrReadOnly while the replication loop writes through
	// Apply/ApplyPrefix. Promotion flips it back.
	readOnly atomic.Bool

	// Overload control plane (internal/overload, DESIGN.md §14). Both nil
	// when Config.Overload is zero — the anchor guarantee: the disabled
	// engine runs no overload code on any path. gate bounds admission with
	// priority lanes; ctrl retunes the scheduler's effective MaxBatch/
	// MaxWait (read via curMaxBatch/curMaxWait) from the latency ring.
	gate *overload.Gate
	ctrl *overload.Controller

	reqs      chan *request
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	requests atomic.Uint64
	batches  atomic.Uint64
	roots    atomic.Uint64
	lat      latencyRing
}

// New builds and starts an engine. The initial published snapshot is the
// empty graph (version 1); Bootstrap or Ingest events to grow it.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:  cfg,
		gb:   tgraph.NewBuilder(cfg.NumNodes),
		reqs: make(chan *request),
		quit: make(chan struct{}),
	}
	if cfg.EdgeDim > 0 {
		e.zeroRow = make([]float64, cfg.EdgeDim)
	}
	if cfg.Durability.Dir != "" {
		e.wlog, err = wal.Open(wal.Config{
			Dir: cfg.Durability.Dir, SyncEvery: cfg.Durability.SyncEvery,
			SegmentBytes: cfg.Durability.SegmentBytes, FS: cfg.Durability.FS,
		})
		if err != nil {
			return nil, err
		}
	}
	e.publishLocked() // version 1: empty graph, serving works immediately
	snap := e.snap.Load()
	e.builder, err = train.NewInferenceBuilder(train.InferConfig{
		TCSR: snap.TCSR, NodeFeat: cfg.NodeFeat, EdgeFeat: snap.EdgeFeat,
		Layers: cfg.Model.NumLayers(), Budget: cfg.Budget,
		Policy: cfg.Policy, Finder: cfg.Finder, Seed: cfg.Seed, Xfer: cfg.Xfer,
	})
	if err != nil {
		if e.wlog != nil {
			e.wlog.Close()
		}
		return nil, err
	}
	e.builderVersion = snap.Version
	if cfg.CacheSize > 0 {
		e.cache = newEmbCache(cfg.CacheSize, cfg.Model.HiddenDim())
	}
	e.weightVersion.Store(1) // version 1: the weights the engine was built with
	e.lat.init(cfg.LatencyWindow)
	if cfg.Overload.AdmissionEnabled() {
		e.gate = overload.NewGate(cfg.Overload)
	}
	if cfg.Overload.ControllerEnabled() {
		e.ctrl, err = overload.NewController(overload.ControllerConfig{
			TargetP99: cfg.Overload.TargetP99,
			BaseBatch: cfg.MaxBatch, BatchCap: cfg.Overload.MaxBatchCap,
			BaseWait: cfg.MaxWait, WaitFloor: cfg.Overload.MinWait,
			Sample: e.lat.sample,
		})
		if err != nil {
			if e.wlog != nil {
				e.wlog.Close()
			}
			return nil, err
		}
		e.wg.Add(1)
		go e.controlLoop()
	}
	e.wg.Add(1)
	go e.loop()
	return e, nil
}

// controlLoop ticks the SLO controller on its configured cadence. It runs
// on its own goroutine so a slow quantile computation can never stall the
// scheduler; the Sample hook is a copy under the latency ring's lock, so it
// never stalls the request path either.
func (e *Engine) controlLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.Overload.Interval)
	defer t.Stop()
	for {
		select {
		case <-e.quit:
			return
		case <-t.C:
			e.ctrl.Tick()
		}
	}
}

// curMaxBatch returns the scheduler's effective batch ceiling: the SLO
// controller's when one is attached, the static config otherwise.
func (e *Engine) curMaxBatch() int {
	if e.ctrl != nil {
		return e.ctrl.MaxBatch()
	}
	return e.cfg.MaxBatch
}

// curMaxWait returns the scheduler's effective coalescing wait.
func (e *Engine) curMaxWait() time.Duration {
	if e.ctrl != nil {
		return e.ctrl.MaxWait()
	}
	return e.cfg.MaxWait
}

// gateErr maps a gate failure onto the serving surface: a closed gate is
// the closed engine (the caller raced Close), everything else — the typed
// overload rejection — passes through for the HTTP 429 mapping.
func gateErr(err error) error {
	if errors.Is(err, overload.ErrGateClosed) {
		return ErrClosed
	}
	return err
}

// Close shuts the scheduler down after serving every request it has already
// accepted. Serving calls issued after (or racing with) Close return
// ErrClosed. With durability configured, Close then writes a final
// checkpoint and syncs and closes the WAL, so a clean shutdown loses
// nothing and the next Recover needs no replay; failures in that best-effort
// finalization are counted in Stats (the WAL's synced prefix still protects
// the stream). Ingest after Close fails with ErrDurability on a durable
// engine and is silently unprotected on a non-durable one, as before. Safe
// to call multiple times.
//
// With admission control on, the gate closes first: requests still queued
// at the gate get a terminal ErrClosed instead of hanging, while requests
// already admitted keep their scheduler guarantee — accepted means served —
// before the quit channel stops the loop. Shed-burst shutdown therefore
// drains, never wedges (DESIGN.md §14).
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.gate != nil {
			e.gate.Close()
		}
		close(e.quit)
		e.wg.Wait()
		if e.wlog != nil {
			e.checkpointNow() // also syncs the WAL tail
			e.ingestMu.Lock()
			e.wlog.Close()
			e.ingestMu.Unlock()
		}
	})
}

// Ingest admits one streaming edge event. Events must arrive at or after the
// current watermark (LastTime of the underlying builder); stale events are
// rejected with an error wrapping ErrStaleEvent that reports the watermark,
// so producers can resynchronize. The first event of a fresh engine may
// carry any timestamp, negative included — there is no watermark yet to be
// behind. feat is the event's edge-feature row (nil admits a zero row when
// the graph carries edge features).
//
// Ingest holds only the writer lock: concurrent serving requests keep
// reading their pinned snapshots untouched. Every SnapshotEvery admitted
// events a new snapshot is published incrementally (O(delta) shared-prefix
// views, charged to the writer, never to readers).
//
// With durability configured, the event is appended to the WAL before it is
// admitted; a WAL failure returns an error wrapping ErrDurability and admits
// nothing — graph, feature buffer and log never diverge. The append rides
// the WAL's group commit, so the durable hot path stays allocation-free and
// a crash loses at most the unsynced tail (Durability.SyncEvery events).
func (e *Engine) Ingest(src, dst int32, t float64, feat []float64) error {
	if e.readOnly.Load() {
		return fmt.Errorf("%w: ingest (%d→%d) must go to the leader", ErrReadOnly, src, dst)
	}
	if e.gate != nil {
		if err := e.gate.Enter(overload.LaneIngest); err != nil {
			return gateErr(err)
		}
		defer e.gate.Leave(overload.LaneIngest)
	}
	return e.applyEvent(src, dst, t, feat)
}

// Apply admits one event exactly like Ingest but bypasses the read-only
// gate. It exists for the replication loop (internal/replica), which is the
// sole legitimate writer of a follower engine: replicated records flow
// through the identical validate→WAL→admit path as leader ingest, so a
// follower's state is bitwise-equal to the leader's at every applied
// sequence number. Everything else must call Ingest.
//
// With admission control on, Apply rides the low-priority lane: replication
// catch-up is background work that must never crowd out a follower's read
// traffic — the read-only lanes stay bounded too (DESIGN.md §14).
func (e *Engine) Apply(src, dst int32, t float64, feat []float64) error {
	if e.gate != nil {
		if err := e.gate.Enter(overload.LaneLow); err != nil {
			return gateErr(err)
		}
		defer e.gate.Leave(overload.LaneLow)
	}
	return e.applyEvent(src, dst, t, feat)
}

// applyEvent is the ungated admit path shared by Ingest, Apply and the
// fleet's router (which runs its own admission at the canonical owner so a
// teed event is charged exactly once).
func (e *Engine) applyEvent(src, dst int32, t float64, feat []float64) error {
	if e.cfg.EdgeDim > 0 && feat != nil && len(feat) != e.cfg.EdgeDim {
		return fmt.Errorf("serve: edge feature width %d, want %d", len(feat), e.cfg.EdgeDim)
	}
	ckpt, err := e.ingestOne(src, dst, t, feat)
	if err != nil {
		return err
	}
	if ckpt {
		e.checkpointNow() // periodic cadence crossed; write outside the ingest lock
	}
	return nil
}

// ingestOne admits one event under the ingest lock and reports whether the
// periodic checkpoint cadence was crossed.
func (e *Engine) ingestOne(src, dst int32, t float64, feat []float64) (checkpoint bool, err error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if wm, ok := e.gb.LastTime(); ok && t < wm {
		return false, fmt.Errorf("%w: event (%d→%d) at t=%v arrived behind watermark t=%v",
			ErrStaleEvent, src, dst, t, wm)
	}
	if e.wlog != nil {
		// Validate first (Check is Add without the mutation) so the WAL never
		// logs an event the builder would then reject, then log before
		// admitting so a crash can lose a logged-but-unadmitted suffix but
		// never an admitted-but-unlogged one.
		if err := e.gb.Check(src, dst, t); err != nil {
			return false, fmt.Errorf("serve: ingest rejected: %w", err)
		}
		if err := e.wlog.Append(src, dst, t, e.walRow(feat)); err != nil {
			e.walFailures.Add(1)
			return false, fmt.Errorf("%w: event (%d→%d) not logged: %w", ErrDurability, src, dst, err)
		}
	}
	if err := e.gb.Add(src, dst, t); err != nil {
		return false, fmt.Errorf("serve: ingest rejected: %w", err)
	}
	e.appendFeatLocked(feat)
	e.sinceSnap++
	if e.sinceSnap >= e.cfg.SnapshotEvery {
		e.publishLocked()
	}
	if e.wlog != nil && e.cfg.Durability.CheckpointEvery > 0 {
		e.sinceCkpt++
		if e.sinceCkpt >= e.cfg.Durability.CheckpointEvery {
			e.sinceCkpt = 0
			return true, nil
		}
	}
	return false, nil
}

// Bootstrap bulk-loads a historical event prefix (e.g. the offline training
// split) under one writer lock and publishes a single snapshot at the end,
// avoiding the per-SnapshotEvery repacks of event-by-event Ingest. feats may
// be nil; otherwise row i is event i's edge-feature row.
//
// With durability configured, the prefix is WAL-logged like any other events
// (group commit amortizes the fsyncs) and a checkpoint covering it is
// written, so a restart recovers the bootstrap from the checkpoint instead
// of replaying it event by event.
func (e *Engine) Bootstrap(events []tgraph.Event, feats *tensor.Matrix) error {
	if e.readOnly.Load() {
		return fmt.Errorf("%w: bootstrap must go to the leader", ErrReadOnly)
	}
	if e.gate != nil {
		if err := e.gate.Enter(overload.LaneIngest); err != nil {
			return gateErr(err)
		}
		defer e.gate.Leave(overload.LaneIngest)
	}
	return e.applyPrefixCore(events, feats)
}

// ApplyPrefix bulk-applies an event run exactly like Bootstrap but bypasses
// the read-only gate — the checkpoint catch-up path of internal/replica,
// which extends a follower's stream with the suffix of a leader checkpoint
// under one writer lock and one snapshot publication. Everything else must
// call Bootstrap. Like Apply, it rides the low-priority admission lane.
func (e *Engine) ApplyPrefix(events []tgraph.Event, feats *tensor.Matrix) error {
	if e.gate != nil {
		if err := e.gate.Enter(overload.LaneLow); err != nil {
			return gateErr(err)
		}
		defer e.gate.Leave(overload.LaneLow)
	}
	return e.applyPrefixCore(events, feats)
}

// applyPrefixCore is the ungated bulk-apply path shared by Bootstrap,
// ApplyPrefix and the fleet's router.
func (e *Engine) applyPrefixCore(events []tgraph.Event, feats *tensor.Matrix) error {
	if feats != nil && feats.Cols != e.cfg.EdgeDim {
		return fmt.Errorf("serve: bootstrap feature width %d, want %d", feats.Cols, e.cfg.EdgeDim)
	}
	if err := e.bootstrapLocked(events, feats); err != nil {
		return err
	}
	if e.wlog != nil {
		e.checkpointNow()
	}
	return nil
}

func (e *Engine) bootstrapLocked(events []tgraph.Event, feats *tensor.Matrix) error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	for i, ev := range events {
		var row []float64
		if feats != nil {
			row = feats.Row(i)
		}
		if e.wlog != nil {
			if err := e.gb.Check(ev.Src, ev.Dst, ev.Time); err != nil {
				return fmt.Errorf("serve: bootstrap event %d: %w", i, err)
			}
			if err := e.wlog.Append(ev.Src, ev.Dst, ev.Time, e.walRow(row)); err != nil {
				e.walFailures.Add(1)
				return fmt.Errorf("%w: bootstrap event %d not logged: %w", ErrDurability, i, err)
			}
		}
		if err := e.gb.Add(ev.Src, ev.Dst, ev.Time); err != nil {
			return fmt.Errorf("serve: bootstrap event %d: %w", i, err)
		}
		e.appendFeatLocked(row)
	}
	e.publishLocked()
	return nil
}

// PublishSnapshot forces an immediate snapshot publication (e.g. before a
// consistency check) and returns it.
func (e *Engine) PublishSnapshot() *Snapshot {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.publishLocked()
	return e.snap.Load()
}

// Pin returns the current published snapshot. The result is immutable and
// remains valid indefinitely; holding it is what "pinning" means.
func (e *Engine) Pin() *Snapshot { return e.snap.Load() }

// PublishWeights offers an immutable parameter snapshot to the serving path.
// The scheduler applies it at the start of its next flush, so every
// micro-batch runs under exactly one weight version and in-flight batches
// are never retroactively perturbed. Publication is lock-free on both
// sides: the publisher performs a shape check and an atomic store; the
// scheduler's apply is a plain parameter copy on its own goroutine.
//
// Sets must be captured from the same architecture the engine serves
// (models.CaptureWeights over (Model, Pred) in that order) and must carry a
// version newer than the currently applied one; older or duplicate versions
// are dropped so a slow publisher can never roll serving backwards. The
// caller must not mutate w after publishing.
//
// With durability configured, every accepted publication synchronously
// writes a checkpoint pairing the new weights with the stream prefix they
// serve, so a crash never rolls recovered serving back past a weight
// version a client may have observed. Checkpoint write failures are counted
// in Stats, not returned: the publication itself stands (the engine keeps
// serving the new weights) and the previous checkpoint plus WAL still
// protect the stream.
func (e *Engine) PublishWeights(w *models.WeightSet) error {
	if err := e.publishWeightsCore(w); err != nil {
		return err
	}
	if e.wlog != nil {
		e.checkpointNow()
	}
	return nil
}

// publishWeightsCore validates and stores a weight set without the
// durability side effect (Recover republishes checkpointed weights through
// it — re-checkpointing the state just restored would be a pointless write).
func (e *Engine) publishWeightsCore(w *models.WeightSet) error {
	if w == nil {
		return fmt.Errorf("serve: PublishWeights(nil)")
	}
	if err := w.Matches(e.cfg.Model, e.cfg.Pred); err != nil {
		return fmt.Errorf("serve: published weights do not fit the serving model: %w", err)
	}
	// Quantize before storing, so the applied weights, PublishedWeights and
	// every checkpoint all hold the same rounded clone. Recovery republishes
	// checkpointed (already quantized) sets through this same path;
	// quantization is bitwise-idempotent (models.Quantization.Clone), so a
	// recovered engine serves exactly the weights it crashed with.
	w, err := e.cfg.Quantize.Clone(w)
	if err != nil {
		return fmt.Errorf("serve: quantizing published weights: %w", err)
	}
	// CAS loop against the latest *published* set (which may be ahead of the
	// applied version when no flush has run yet), so a slower publisher can
	// neither clobber a newer pending set nor sneak in behind the applied
	// version — monotonicity holds under concurrent publishers.
	for {
		cur := e.weights.Load()
		latest := e.weightVersion.Load()
		if cur != nil && cur.Version > latest {
			latest = cur.Version
		}
		if w.Version <= latest {
			return fmt.Errorf("serve: weight version %d not newer than version %d", w.Version, latest)
		}
		if e.weights.CompareAndSwap(cur, w) {
			return nil
		}
	}
}

// WeightVersion reports the weight version currently applied to the serving
// model (1 until the first published set is swapped in).
func (e *Engine) WeightVersion() uint64 { return e.weightVersion.Load() }

// PublishedWeights returns the newest weight set offered to the serving path
// (which the scheduler may not have applied yet), or nil while the engine
// still serves its constructor weights. The fleet uses it after per-shard
// recovery to level shards that checkpointed different weight versions
// (a crash can split a publication fan-out); the returned set is immutable.
func (e *Engine) PublishedWeights() *models.WeightSet { return e.weights.Load() }

// FinetuneHints returns the Config's fine-tuning knobs for an attached
// tuner (zero values mean "use the tuner's defaults").
func (e *Engine) FinetuneHints() (interval time.Duration, replayWindow int) {
	return e.cfg.FinetuneInterval, e.cfg.ReplayWindow
}

// SetWritable flips the engine between writable (the default) and read-only.
// A read-only engine rejects Ingest and Bootstrap with ErrReadOnly while
// serving predictions and embeddings normally; the replication loop writes
// through Apply/ApplyPrefix. Promotion of a follower is SetWritable(true).
func (e *Engine) SetWritable(w bool) { e.readOnly.Store(!w) }

// Writable reports whether the public write API is open.
func (e *Engine) Writable() bool { return !e.readOnly.Load() }

// EdgeDim reports the per-event edge-feature width the engine was configured
// with (0 when the graph carries none). A replication pair must agree on it —
// the follower checks the leader's advertised width before applying anything.
func (e *Engine) EdgeDim() int { return e.cfg.EdgeDim }

// Durable exposes the engine's durable store location (and file-op layer)
// for the replication leader, which serves the WAL and checkpoints over
// HTTP. ok is false when durability is off — such an engine cannot lead.
func (e *Engine) Durable() (fsys wal.FS, dir string, ok bool) {
	if e.wlog == nil {
		return nil, "", false
	}
	return e.cfg.Durability.FS, e.cfg.Durability.Dir, true
}

// DurableErr reports the WAL's sticky failure: nil while the log is healthy
// or durability is off. A non-nil value means no further events can be made
// durable until the process restarts over a repaired store — the leader-side
// health check (/v1/healthz) keys on it.
func (e *Engine) DurableErr() error {
	if e.wlog == nil {
		return nil
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.wlog.Err()
}

// Checkpoint forces an immediate durable checkpoint of the current stream,
// watermark and published weights (the same capture PublishWeights and Close
// perform). Promotion uses it to seal the follower's log at the hand-off
// point. Write failures are counted in Stats, not returned — the WAL remains
// the source of truth; the error here only reports a non-durable engine.
func (e *Engine) Checkpoint() error {
	if e.wlog == nil {
		return fmt.Errorf("serve: Checkpoint requires Config.Durability.Dir")
	}
	e.checkpointNow()
	return nil
}

// Watermark reports the ingest watermark (which may be ahead of the latest
// published snapshot's) and whether any event has been ingested. ok is false
// only before the first event: an engine may legitimately sit at a t=0 or
// negative watermark.
func (e *Engine) Watermark() (t float64, ok bool) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.gb.LastTime()
}

// NumEvents reports the live ingested event count (which may be ahead of the
// latest published snapshot's).
func (e *Engine) NumEvents() int {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.gb.NumEvents()
}

func (e *Engine) appendFeatLocked(feat []float64) {
	if e.cfg.EdgeDim == 0 {
		return
	}
	if feat == nil {
		feat = e.zeroRow
	}
	e.edgeFeat = append(e.edgeFeat, feat...)
}

// publishLocked publishes the current stream as a new immutable snapshot.
// Cost is proportional to the delta since the previous publication: the
// builder's Snapshot shares untouched adjacency chunks and the event list
// structurally, and the edge-feature matrix is a capped (len == cap) prefix
// view of the append-only e.edgeFeat — not a copy of NumEvents()×EdgeDim
// floats. Later appends never write inside a published view.
func (e *Engine) publishLocked() {
	g, tcsr := e.gb.Snapshot()
	w := g.NumEvents() * e.cfg.EdgeDim
	ef := tensor.FromSlice(g.NumEvents(), e.cfg.EdgeDim, e.edgeFeat[:w:w])
	wm, hasWM := e.gb.LastTime()
	e.version++
	e.snap.Store(&Snapshot{
		Version: e.version, Graph: g, TCSR: tcsr, EdgeFeat: ef,
		Watermark: wm, HasWatermark: hasWM,
	})
	e.sinceSnap = 0
}
