package serve

import (
	"testing"
	"time"
)

// TestLatencyRingWrapAround pins the ring semantics: once full, new samples
// overwrite the oldest, so quantiles cover exactly the last `capacity`
// samples.
func TestLatencyRingWrapAround(t *testing.T) {
	var r latencyRing
	r.init(4)
	if got := r.quantile(0.5); got != 0 {
		t.Fatalf("empty ring quantile = %v, want 0", got)
	}
	for _, ms := range []int{10, 20, 30, 40} {
		r.add(time.Duration(ms) * time.Millisecond)
	}
	if r.n != 4 || len(r.buf) != 4 {
		t.Fatalf("fill: n=%d len=%d", r.n, len(r.buf))
	}
	if got, want := r.quantile(1), 40*time.Millisecond; !near(got, want) {
		t.Fatalf("max = %v, want %v", got, want)
	}
	// Two more samples evict 10ms and 20ms: the window is {30,40,50,60}.
	r.add(50 * time.Millisecond)
	r.add(60 * time.Millisecond)
	if r.n != 6 || len(r.buf) != 4 {
		t.Fatalf("wrap: n=%d len=%d", r.n, len(r.buf))
	}
	if got := r.quantile(0); !near(got, 30*time.Millisecond) {
		t.Fatalf("min after wrap = %v, want 30ms (oldest samples evicted)", got)
	}
	if got := r.quantile(1); !near(got, 60*time.Millisecond) {
		t.Fatalf("max after wrap = %v, want 60ms", got)
	}
	// The median must fall inside the retained window, not the evicted one.
	if got := r.quantile(0.5); got < 30*time.Millisecond || got > 60*time.Millisecond {
		t.Fatalf("median %v outside retained window", got)
	}
	// Wrap all the way around: only the newest `capacity` samples remain.
	for i := 0; i < 8; i++ {
		r.add(time.Duration(100+i) * time.Millisecond)
	}
	if got := r.quantile(0); !near(got, 104*time.Millisecond) {
		t.Fatalf("min after full wrap = %v, want 104ms", got)
	}
}

// near tolerates the float64-seconds round trip of the ring's storage.
func near(got, want time.Duration) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d < time.Microsecond
}
