package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// HandlerConfig customizes NewHandlerConfig for a replication topology. The
// zero value is a plain standalone engine (what NewHandler mounts).
type HandlerConfig struct {
	// LeaderURL, when non-nil, marks this node a replica: writes rejected
	// with ErrReadOnly are answered 421 Misdirected Request carrying the
	// leader's base URL (in the JSON body and the X-Taser-Leader header) so
	// producers re-aim their stream. The function is consulted per request —
	// the leader can change after a promotion.
	LeaderURL func() string
	// StatsExtra, when non-nil, is merged into the /v1/stats JSON (the
	// replication layer reports role, lag and applied sequence through it).
	StatsExtra func() map[string]any
	// Health, when non-nil, is an extra readiness predicate for /v1/healthz
	// (a follower reports unhealthy while its lag exceeds the threshold).
	// The WAL sticky-failure check always applies.
	Health func() error
}

// NewHandler exposes an engine behind the HTTP/JSON API cmd/taser-serve
// mounts (and the HTTP load generator drives). Endpoints:
//
//	POST /v1/ingest   {"src":1,"dst":2,"t":123.5,"feat":[...]}   → {"events":N,"watermark":T}
//	POST /v1/predict  {"src":1,"dst":2,"t":123.5}                → {"score":S,"version":V,"weights":W,"cached":B}
//	POST /v1/embed    {"node":1,"t":123.5}                       → {"embedding":[...],"version":V,"weights":W,"cached":B}
//	GET  /v1/stats                                               → engine counters and latency percentiles
//	GET  /v1/healthz                                             → 200 when ready, 503 otherwise
//
// Out-of-order events are rejected with HTTP 409 and the current watermark
// in the error body, so producers can resynchronize. On a read-only replica
// ingest is rejected with 421 and the leader's URL (see HandlerConfig).
func NewHandler(e *Engine) http.Handler { return NewHandlerConfig(e, HandlerConfig{}) }

// NewHandlerConfig is NewHandler with replication-aware knobs.
func NewHandlerConfig(e *Engine, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Src, Dst int32
			T        float64
			Feat     []float64
		}
		if !decode(w, r, &req) {
			return
		}
		if err := e.Ingest(req.Src, req.Dst, req.T, req.Feat); err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrStaleEvent):
				code = http.StatusConflict
			case errors.Is(err, ErrDurability):
				// The durable store failed; the event was not admitted and
				// the engine will not admit more until restarted.
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrReadOnly):
				// A replica follower: tell the producer where the leader is.
				leader := ""
				if hc.LeaderURL != nil {
					leader = hc.LeaderURL()
				}
				w.Header().Set("X-Taser-Leader", leader)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusMisdirectedRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": err.Error(), "leader": leader,
				})
				return
			}
			writeErr(w, code, err)
			return
		}
		wm, _ := e.Watermark() // the event just admitted set it
		writeJSON(w, map[string]any{"events": e.NumEvents(), "watermark": wm})
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Src, Dst int32
			T        float64
		}
		if !decode(w, r, &req) {
			return
		}
		res, err := e.PredictLink(req.Src, req.Dst, req.T)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"score": res.Score, "version": res.Version,
			"weights": res.Weights, "cached": res.Cached,
		})
	})
	mux.HandleFunc("POST /v1/embed", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node int32
			T    float64
		}
		if !decode(w, r, &req) {
			return
		}
		res, err := e.Embed(req.Node, req.T)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"embedding": res.Embedding, "version": res.Version,
			"weights": res.Weights, "cached": res.Cached,
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := e.Stats()
		liveWM, hasLiveWM := e.Watermark() // may be ahead of the snapshot's
		ckptAgeMS := int64(-1)             // -1 = no checkpoint yet
		if !st.LastCheckpoint.IsZero() {
			ckptAgeMS = time.Since(st.LastCheckpoint).Milliseconds()
		}
		out := map[string]any{
			"live_watermark": liveWM, "has_live_watermark": hasLiveWM,
			"requests": st.Requests, "batches": st.Batches,
			"avg_batch": st.AvgBatch(), "cache_hit_rate": st.CacheHitRate(),
			"cache_hits": st.CacheHits, "cache_stale": st.CacheStale, "cache_misses": st.CacheMisses,
			"snapshot_version": st.SnapshotVersion,
			"watermark":        st.Watermark, "has_watermark": st.HasWatermark,
			"events": st.Events, "nodes": e.cfg.NumNodes,
			"weight_version": st.WeightVersion, "weight_swaps": st.WeightSwaps,
			"avg_swap_us":  st.AvgSwap.Microseconds(),
			"durable":      st.Durable,
			"read_only":    st.ReadOnly,
			"wal_appended": st.WALAppended, "wal_synced": st.WALSynced,
			"wal_syncs": st.WALSyncs, "wal_segments": st.WALSegments,
			"wal_failures": st.WALFailures,
			"checkpoints":  st.Checkpoints, "checkpoint_fails": st.CheckpointFails,
			"checkpoint_events": st.CheckpointEvents,
			"checkpoint_age_ms": ckptAgeMS,
			"p50_us":            st.P50.Microseconds(), "p99_us": st.P99.Microseconds(),
		}
		if hc.StatsExtra != nil {
			for k, v := range hc.StatsExtra() {
				out[k] = v
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness for a load balancer: the WAL must be healthy (a sticky
		// WAL failure means no write will ever be admitted again) and any
		// topology-specific predicate must pass (a follower's lag bound).
		err := e.DurableErr()
		if err == nil && hc.Health != nil {
			err = hc.Health()
		}
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{"status": "unhealthy", "error": err.Error()})
			return
		}
		role := "leader"
		if !e.Writable() {
			role = "follower"
		}
		writeJSON(w, map[string]any{"status": "ok", "role": role, "writable": e.Writable()})
	})
	return mux
}

// decode parses the JSON body into dst, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing useful left to do.
		_ = err
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
