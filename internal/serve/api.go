package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"taser/internal/overload"
)

// Server is the serving surface the HTTP layer mounts: implemented by both
// the single *Engine and the sharded *Fleet, so every caller of NewHandler
// (cmd/taser-serve, the HTTP load generator, tests) serves either shape
// unchanged. The unexported stats method keeps the set closed: the payload
// schema is this package's contract, not an extension point.
type Server interface {
	Ingest(src, dst int32, t float64, feat []float64) error
	PredictLink(src, dst int32, t float64) (PredictResult, error)
	Embed(node int32, t float64) (EmbedResult, error)
	Watermark() (t float64, ok bool)
	NumEvents() int
	Writable() bool
	DurableErr() error
	statsPayload() map[string]any
}

// HandlerConfig customizes NewHandlerConfig for a replication topology. The
// zero value is a plain standalone engine (what NewHandler mounts).
type HandlerConfig struct {
	// LeaderURL, when non-nil, marks this node a replica: writes rejected
	// with ErrReadOnly are answered 421 Misdirected Request carrying the
	// leader's base URL (in the JSON body and the X-Taser-Leader header) so
	// producers re-aim their stream. The function is consulted per request —
	// the leader can change after a promotion.
	LeaderURL func() string
	// StatsExtra, when non-nil, is merged into the /v1/stats JSON (the
	// replication layer reports role, lag and applied sequence through it).
	StatsExtra func() map[string]any
	// Health, when non-nil, is an extra readiness predicate for /v1/healthz
	// (a follower reports unhealthy while its lag exceeds the threshold).
	// The WAL sticky-failure check always applies.
	Health func() error
}

// NewHandler exposes a serving backend (an Engine, or a sharded Fleet) behind
// the HTTP/JSON API cmd/taser-serve mounts (and the HTTP load generator
// drives). Endpoints:
//
//	POST /v1/ingest   {"src":1,"dst":2,"t":123.5,"feat":[...]}   → {"events":N,"watermark":T}
//	POST /v1/predict  {"src":1,"dst":2,"t":123.5}                → {"score":S,"version":V,"weights":W,"cached":B}
//	POST /v1/embed    {"node":1,"t":123.5}                       → {"embedding":[...],"version":V,"weights":W,"cached":B}
//	GET  /v1/stats                                               → counters and latency percentiles (a fleet adds per-shard blocks under "shards")
//	GET  /v1/healthz                                             → 200 when ready, 503 otherwise (a fleet aggregates every shard's readiness)
//
// Out-of-order events are rejected with HTTP 409 and the current watermark
// in the error body, so producers can resynchronize. On a read-only replica
// ingest is rejected with 421 and the leader's URL (see HandlerConfig).
func NewHandler(s Server) http.Handler { return NewHandlerConfig(s, HandlerConfig{}) }

// NewHandlerConfig is NewHandler with replication-aware knobs.
func NewHandlerConfig(s Server, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Src, Dst int32
			T        float64
			Feat     []float64
		}
		if !decode(w, r, &req) {
			return
		}
		if err := s.Ingest(req.Src, req.Dst, req.T, req.Feat); err != nil {
			if writeShed(w, err) {
				return
			}
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrStaleEvent):
				code = http.StatusConflict
			case errors.Is(err, ErrDurability):
				// The durable store failed; the event was not admitted and
				// the engine will not admit more until restarted.
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrReadOnly):
				// A replica follower: tell the producer where the leader is.
				leader := ""
				if hc.LeaderURL != nil {
					leader = hc.LeaderURL()
				}
				w.Header().Set("X-Taser-Leader", leader)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusMisdirectedRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": err.Error(), "leader": leader,
				})
				return
			}
			writeErr(w, code, err)
			return
		}
		wm, _ := s.Watermark() // the event just admitted set it
		writeJSON(w, map[string]any{"events": s.NumEvents(), "watermark": wm})
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Src, Dst int32
			T        float64
		}
		if !decode(w, r, &req) {
			return
		}
		res, err := s.PredictLink(req.Src, req.Dst, req.T)
		if err != nil {
			if writeShed(w, err) {
				return
			}
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"score": res.Score, "version": res.Version,
			"weights": res.Weights, "cached": res.Cached,
		})
	})
	mux.HandleFunc("POST /v1/embed", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node int32
			T    float64
		}
		if !decode(w, r, &req) {
			return
		}
		res, err := s.Embed(req.Node, req.T)
		if err != nil {
			if writeShed(w, err) {
				return
			}
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"embedding": res.Embedding, "version": res.Version,
			"weights": res.Weights, "cached": res.Cached,
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		out := s.statsPayload()
		if hc.StatsExtra != nil {
			for k, v := range hc.StatsExtra() {
				out[k] = v
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness for a load balancer: the WAL must be healthy (a sticky
		// WAL failure means no write will ever be admitted again — a fleet
		// reports the first failing shard) and any topology-specific
		// predicate must pass (a follower's lag bound).
		err := s.DurableErr()
		if err == nil && hc.Health != nil {
			err = hc.Health()
		}
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{"status": "unhealthy", "error": err.Error()})
			return
		}
		role := "leader"
		if !s.Writable() {
			role = "follower"
		}
		writeJSON(w, map[string]any{"status": "ok", "role": role, "writable": s.Writable()})
	})
	return mux
}

// enginePayload renders one engine's Stats as the /v1/stats JSON object —
// the top-level schema of a standalone engine, and the per-shard block schema
// of a fleet (checkpoint_age_ms and the WAL counters are per-shard by
// construction: every shard runs its own log and checkpoint cadence).
func enginePayload(st Stats, liveWM float64, hasLiveWM bool, numNodes int) map[string]any {
	ckptAgeMS := int64(-1) // -1 = no checkpoint yet
	if !st.LastCheckpoint.IsZero() {
		ckptAgeMS = time.Since(st.LastCheckpoint).Milliseconds()
	}
	out := map[string]any{
		"live_watermark": liveWM, "has_live_watermark": hasLiveWM,
		"requests": st.Requests, "batches": st.Batches,
		"avg_batch": st.AvgBatch(), "cache_hit_rate": st.CacheHitRate(),
		"cache_hits": st.CacheHits, "cache_stale": st.CacheStale, "cache_misses": st.CacheMisses,
		"snapshot_version": st.SnapshotVersion,
		"watermark":        st.Watermark, "has_watermark": st.HasWatermark,
		"events": st.Events, "nodes": numNodes,
		"weight_version": st.WeightVersion, "weight_swaps": st.WeightSwaps,
		"avg_swap_us":  st.AvgSwap.Microseconds(),
		"durable":      st.Durable,
		"read_only":    st.ReadOnly,
		"wal_appended": st.WALAppended, "wal_synced": st.WALSynced,
		"wal_syncs": st.WALSyncs, "wal_segments": st.WALSegments,
		"wal_failures": st.WALFailures,
		"checkpoints":  st.Checkpoints, "checkpoint_fails": st.CheckpointFails,
		"checkpoint_events": st.CheckpointEvents,
		"checkpoint_age_ms": ckptAgeMS,
		"p50_us":            st.P50.Microseconds(), "p99_us": st.P99.Microseconds(),
	}
	if st.Overload != nil {
		// Key absent when the control plane is off — part of the bitwise-
		// identical-when-disabled contract.
		out["overload"] = overloadPayload(st.Overload)
	}
	return out
}

// statsPayload implements Server.
func (e *Engine) statsPayload() map[string]any {
	liveWM, hasLiveWM := e.Watermark() // may be ahead of the snapshot's
	return enginePayload(e.Stats(), liveWM, hasLiveWM, e.cfg.NumNodes)
}

// statsPayload implements Server: the merged fleet view under the same
// top-level keys a standalone engine reports (sums for throughput and WAL
// counters, max for watermarks, min for the weight version — the version
// guaranteed applied everywhere, distinct events for the event count), plus
// one full per-shard block per engine under "shards" and the fleet's routing
// counters. Latency percentiles are fleet-level: they include the router's
// scatter/gather overhead, which no shard sees.
func (f *Fleet) statsPayload() map[string]any {
	st := f.Stats()
	var merged Stats
	minWV := uint64(0)
	var oldestCkpt time.Time
	haveCkpt := false
	snapEvents := 0
	for i, ss := range st.Shards {
		merged.Batches += ss.Batches
		merged.Roots += ss.Roots
		merged.CacheHits += ss.CacheHits
		merged.CacheStale += ss.CacheStale
		merged.CacheMisses += ss.CacheMisses
		merged.WeightSwaps += ss.WeightSwaps
		merged.WALAppended += ss.WALAppended
		merged.WALSynced += ss.WALSynced
		merged.WALSyncs += ss.WALSyncs
		merged.WALSegments += ss.WALSegments
		merged.WALFailures += ss.WALFailures
		merged.Checkpoints += ss.Checkpoints
		merged.CheckpointFails += ss.CheckpointFails
		merged.CheckpointEvents += ss.CheckpointEvents
		snapEvents += ss.Events
		if ss.SnapshotVersion > merged.SnapshotVersion {
			merged.SnapshotVersion = ss.SnapshotVersion
		}
		if ss.HasWatermark && (!merged.HasWatermark || ss.Watermark > merged.Watermark) {
			merged.Watermark, merged.HasWatermark = ss.Watermark, true
		}
		if i == 0 || ss.WeightVersion < minWV {
			minWV = ss.WeightVersion
		}
		if ss.AvgSwap > merged.AvgSwap {
			merged.AvgSwap = ss.AvgSwap
		}
		if i == 0 {
			merged.Durable = ss.Durable
		} else {
			merged.Durable = merged.Durable && ss.Durable
		}
		if ss.Durable && !ss.LastCheckpoint.IsZero() {
			if !haveCkpt || ss.LastCheckpoint.Before(oldestCkpt) {
				oldestCkpt = ss.LastCheckpoint
			}
			haveCkpt = true
		}
		merged.Overload = mergeOverload(merged.Overload, ss.Overload)
	}
	merged.Requests = st.Requests
	merged.WeightVersion = minWV
	merged.Events = int(st.Ingested)
	merged.P50, merged.P99 = st.P50, st.P99
	if haveCkpt {
		// The oldest shard checkpoint bounds the fleet's recovery replay cost.
		merged.LastCheckpoint = oldestCkpt
	}
	liveWM, hasLiveWM := f.Watermark()
	out := enginePayload(merged, liveWM, hasLiveWM, f.cfg.NumNodes)
	out["shard_count"] = len(f.shards)
	out["events_teed"] = st.Teed
	out["cross_shard_predicts"] = st.CrossShard
	out["gather_retries"] = st.GatherRetries
	out["snapshot_events_total"] = snapEvents // distinct + teed copies across shard snapshots
	blocks := make([]map[string]any, 0, len(f.shards))
	for i, s := range f.shards {
		wm, has := s.Watermark()
		b := enginePayload(st.Shards[i], wm, has, f.cfg.NumNodes)
		b["shard"] = i
		blocks = append(blocks, b)
	}
	out["shards"] = blocks
	return out
}

// writeShed answers an overload rejection with 429 Too Many Requests and a
// Retry-After header (whole seconds, rounded up, so clients honoring the
// header never retry early) — distinct from the 503 durability path, which is
// sticky and not retryable. Returns false when err is not a shed.
func writeShed(w http.ResponseWriter, err error) bool {
	var rej *overload.RejectedError
	if !errors.As(err, &rej) {
		return false
	}
	secs := int64((rej.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": err.Error(), "lane": rej.Lane.String(),
		"retry_after_ms": rej.RetryAfter.Milliseconds(),
	})
	return true
}

// overloadPayload renders the overload block of /v1/stats (present only when
// the control plane is on — the disabled payload is bitwise the seed's).
func overloadPayload(ov *OverloadStats) map[string]any {
	out := map[string]any{
		"effective_max_batch":   ov.EffectiveMaxBatch,
		"effective_max_wait_us": ov.EffectiveMaxWait.Microseconds(),
	}
	if c := ov.Controller; c != nil {
		out["controller"] = map[string]any{
			"target_p99_us": c.TargetP99.Microseconds(),
			"tightened":     c.Tightened, "relaxed": c.Relaxed, "held": c.Held,
			"decisions_per_sec": c.DecisionsPerSec,
		}
	}
	if g := ov.Gate; g != nil {
		lanes := make(map[string]any, overload.NumLanes)
		for l := overload.Lane(0); l < overload.NumLanes; l++ {
			ls := g.Lanes[l]
			lanes[l.String()] = map[string]any{
				"queued": ls.Queued, "in_service": ls.InService,
				"admitted": ls.Admitted, "shed": ls.Shed,
			}
		}
		out["gate"] = map[string]any{
			"capacity": g.Capacity, "max_queue": g.MaxQueue,
			"in_service": g.InService, "service_rate": g.ServiceRate,
			"lanes": lanes,
		}
	}
	return out
}

// mergeOverload folds one shard's overload stats into the fleet view: counters
// and capacities sum; the effective batch/wait report the minimum across
// shards (the most-tightened shard — the fleet's weakest link under pressure).
func mergeOverload(dst, src *OverloadStats) *OverloadStats {
	if src == nil {
		return dst
	}
	if dst == nil {
		cp := *src
		if src.Controller != nil {
			c := *src.Controller
			cp.Controller = &c
		}
		if src.Gate != nil {
			g := *src.Gate
			cp.Gate = &g
		}
		return &cp
	}
	if src.EffectiveMaxBatch < dst.EffectiveMaxBatch {
		dst.EffectiveMaxBatch = src.EffectiveMaxBatch
	}
	if src.EffectiveMaxWait < dst.EffectiveMaxWait {
		dst.EffectiveMaxWait = src.EffectiveMaxWait
	}
	if c := src.Controller; c != nil {
		if dst.Controller == nil {
			cp := *c
			dst.Controller = &cp
		} else {
			d := dst.Controller
			d.Tightened += c.Tightened
			d.Relaxed += c.Relaxed
			d.Held += c.Held
			d.DecisionsPerSec += c.DecisionsPerSec
			if c.MaxBatch < d.MaxBatch {
				d.MaxBatch = c.MaxBatch
			}
			if c.MaxWait < d.MaxWait {
				d.MaxWait = c.MaxWait
			}
		}
	}
	if g := src.Gate; g != nil {
		if dst.Gate == nil {
			cp := *g
			dst.Gate = &cp
		} else {
			d := dst.Gate
			d.Capacity += g.Capacity
			d.InService += g.InService
			d.ServiceRate += g.ServiceRate
			for l := range g.Lanes {
				d.Lanes[l].Queued += g.Lanes[l].Queued
				d.Lanes[l].InService += g.Lanes[l].InService
				d.Lanes[l].Admitted += g.Lanes[l].Admitted
				d.Lanes[l].Shed += g.Lanes[l].Shed
			}
		}
	}
	return dst
}

// decode parses the JSON body into dst, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing useful left to do.
		_ = err
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
