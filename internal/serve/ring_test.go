package serve

import "testing"

// TestRingBalance: with the default virtual-point count, the owned-key mass
// per shard stays balanced — max/min within 1.5× over a large sequential id
// space (sequential ids are the realistic worst case: datasets assign node
// ids densely from 0).
func TestRingBalance(t *testing.T) {
	const keys = 200_000
	for _, K := range []int{2, 4, 8} {
		r, err := NewRing(K, 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, K)
		for n := int32(0); n < keys; n++ {
			counts[r.Owner(n)]++
		}
		mn, mx := counts[0], counts[0]
		for _, c := range counts {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		if mn == 0 {
			t.Fatalf("K=%d: a shard owns no keys: %v", K, counts)
		}
		if ratio := float64(mx) / float64(mn); ratio > 1.5 {
			t.Fatalf("K=%d: load ratio %.3f > 1.5 (counts %v)", K, ratio, counts)
		}
	}
}

// TestRingResizeRemap: growing K→K+1 only moves keys, never shuffles them —
// every reassigned key moves to the new shard (the consistent-hashing
// guarantee: surviving shards' virtual points are unchanged), and the moved
// fraction is near the ideal 1/(K+1).
func TestRingResizeRemap(t *testing.T) {
	const keys = 100_000
	for _, K := range []int{2, 4, 8} {
		old, err := NewRing(K, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := NewRing(K+1, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for n := int32(0); n < keys; n++ {
			a, b := old.Owner(n), grown.Owner(n)
			if a == b {
				continue
			}
			if b != K {
				t.Fatalf("K=%d→%d: key %d moved %d→%d, not to the new shard", K, K+1, n, a, b)
			}
			moved++
		}
		frac, ideal := float64(moved)/keys, 1.0/float64(K+1)
		if frac < 0.5*ideal || frac > 1.5*ideal {
			t.Fatalf("K=%d→%d: moved fraction %.4f, want within [%.4f, %.4f] of ideal %.4f",
				K, K+1, frac, 0.5*ideal, 1.5*ideal, ideal)
		}
	}
}

// TestRingSeedStable: the assignment is a pure function of (shards, vnodes,
// seed) — identical across constructions (what lets a restarted fleet reopen
// its per-shard stores) — and a different seed yields a different layout.
func TestRingSeedStable(t *testing.T) {
	a, err := NewRing(4, 0, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4, 0, 123)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRing(4, 0, 124)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for n := int32(0); n < 10_000; n++ {
		if a.Owner(n) != b.Owner(n) {
			t.Fatalf("same (K, vnodes, seed) disagrees on node %d", n)
		}
		if a.Owner(n) != c.Owner(n) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced an identical assignment over 10k keys")
	}
}

// TestRingValidation: degenerate configurations fail loudly.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 0, 1); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewRing(2, -1, 1); err == nil {
		t.Fatal("negative vnodes accepted")
	}
	r, err := NewRing(1, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for n := int32(0); n < 1000; n++ {
		if r.Owner(n) != 0 {
			t.Fatal("K=1 ring must own everything on shard 0")
		}
	}
}
