package serve

import (
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/train"
)

// newWeightTestEngine builds a small bootstrapped engine whose Model/Pred
// are private clones, so weight swaps never touch state shared with other
// tests.
func newWeightTestEngine(t *testing.T, cacheSize int) (*Engine, *datasets.Dataset) {
	t.Helper()
	ds := datasets.Wikipedia(0.05, 7)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 10, TimeDim: 6, Seed: 5,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Model: tr.Model.Clone(), Pred: tr.Pred.Clone(),
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: 5, Policy: sampler.MostRecent, CacheSize: cacheSize,
		MaxBatch: 8, MaxWait: 100 * time.Microsecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	if err := e.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
		t.Fatal(err)
	}
	return e, ds
}

// perturbed captures the engine's current weights as version v with every
// tensor scaled, standing in for a fine-tuner's update.
func perturbed(e *Engine, v uint64, scale float64) *models.WeightSet {
	w := models.CaptureWeights(v, e.cfg.Model, e.cfg.Pred)
	for _, m := range w.Params {
		m.ScaleInPlace(scale)
	}
	return w
}

// TestPublishWeightsSwapsAndInvalidatesCache is the regression test for the
// weight-versioned embedding cache: an embedding cached under the old
// weights must never be served after a publication, with no explicit
// invalidation — the (node, lastTs, weightVersion) key stops matching.
func TestPublishWeightsSwapsAndInvalidatesCache(t *testing.T) {
	e, ds := newWeightTestEngine(t, 64)
	wm, _ := e.Watermark()
	qt := wm + 1
	node := ds.Graph.Events[0].Src

	r1, err := e.Embed(node, qt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Weights != 1 {
		t.Fatalf("initial weight version %d, want 1", r1.Weights)
	}
	r2, err := e.Embed(node, qt)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second embed of an untouched node should hit the cache")
	}

	if err := e.PublishWeights(perturbed(e, 2, 1.25)); err != nil {
		t.Fatal(err)
	}
	r3, err := e.Embed(node, qt)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Weights != 2 {
		t.Fatalf("post-publish weight version %d, want 2", r3.Weights)
	}
	if r3.Cached {
		t.Fatal("embedding computed under v1 weights was served from cache after the v2 swap")
	}
	same := true
	for i, v := range r3.Embedding {
		if v != r1.Embedding[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("v2 embedding is bitwise-identical to v1 — the new weights were not applied")
	}

	// The recomputed embedding is cacheable under the new version…
	r4, err := e.Embed(node, qt)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Cached || r4.Weights != 2 {
		t.Fatalf("re-embed under v2: cached=%v weights=%d, want cached under v2", r4.Cached, r4.Weights)
	}
	st := e.Stats()
	if st.WeightVersion != 2 || st.WeightSwaps != 1 {
		t.Fatalf("stats: version %d swaps %d, want 2 and 1", st.WeightVersion, st.WeightSwaps)
	}
}

// TestPublishWeightsValidation covers the publisher-side guard rails:
// architecture mismatches and non-monotonic versions are rejected without
// disturbing serving.
func TestPublishWeightsValidation(t *testing.T) {
	e, _ := newWeightTestEngine(t, 0)
	if err := e.PublishWeights(nil); err == nil {
		t.Fatal("nil weight set accepted")
	}
	// Model-only capture is missing the predictor tensors.
	if err := e.PublishWeights(models.CaptureWeights(2, e.cfg.Model)); err == nil {
		t.Fatal("short weight set accepted")
	}
	// Version 1 is already applied; an equal-or-older publish must bounce.
	if err := e.PublishWeights(models.CaptureWeights(1, e.cfg.Model, e.cfg.Pred)); err == nil {
		t.Fatal("stale weight version accepted")
	}
	if err := e.PublishWeights(perturbed(e, 2, 1.1)); err != nil {
		t.Fatal(err)
	}
	wm, _ := e.Watermark()
	if _, err := e.Embed(0, wm+1); err != nil {
		t.Fatal(err)
	}
	if got := e.WeightVersion(); got != 2 {
		t.Fatalf("applied version %d, want 2", got)
	}
	if err := e.PublishWeights(perturbed(e, 2, 1.1)); err == nil {
		t.Fatal("duplicate weight version accepted after swap")
	}
	// A pending (published but not yet applied) newer set must not be
	// clobbered by a late older publish: v5 is pending, v4 must bounce even
	// though the applied version is still 2.
	if err := e.PublishWeights(perturbed(e, 5, 1.1)); err != nil {
		t.Fatal(err)
	}
	if err := e.PublishWeights(perturbed(e, 4, 1.1)); err == nil {
		t.Fatal("older publish clobbered a pending newer weight set")
	}
	wm, _ = e.Watermark()
	if _, err := e.Embed(0, wm+1); err != nil {
		t.Fatal(err)
	}
	if got := e.WeightVersion(); got != 5 {
		t.Fatalf("applied version %d, want 5", got)
	}
}

// TestPredictPinsOneWeightVersionPerBatch checks the consistency bound a
// served response advertises: predictions report the weight version they
// were computed under, and scores within one version are reproducible after
// the engine has moved on to a newer version is *not* required — but the
// same version must yield the same score while it is current.
func TestPredictPinsOneWeightVersionPerBatch(t *testing.T) {
	e, ds := newWeightTestEngine(t, 0)
	wm, _ := e.Watermark()
	qt := wm + 1
	ev := ds.Graph.Events[0]

	r1, err := e.PredictLink(ev.Src, ev.Dst, qt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.PredictLink(ev.Src, ev.Dst, qt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Weights != r2.Weights || r1.Score != r2.Score {
		t.Fatalf("same version, different scores: v%d %v vs v%d %v", r1.Weights, r1.Score, r2.Weights, r2.Score)
	}
	if err := e.PublishWeights(perturbed(e, 7, 0.8)); err != nil {
		t.Fatal(err)
	}
	r3, err := e.PredictLink(ev.Src, ev.Dst, qt)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Weights != 7 {
		t.Fatalf("post-publish predict served v%d, want 7", r3.Weights)
	}
	if r3.Score == r1.Score {
		t.Fatal("score unchanged across a weight swap that scaled every parameter")
	}
}
