package serve

import (
	"errors"
	"fmt"
	"time"

	"taser/internal/models"
	"taser/internal/wal"
)

// ErrDurability wraps ingest failures of the durable store: the event was
// NOT admitted — the live graph and feature buffer are exactly as before the
// call, and the engine keeps serving its current state, but no further
// events will be admitted until the engine is restarted over a healthy
// store. The rejected event itself is in the classic indeterminate-commit
// state: it was validated and handed to the WAL before the failure, so a
// later recovery may include it (its bytes may have reached the disk even
// though durability was never confirmed) — like a COMMIT whose
// acknowledgment was lost. Recovery never reorders past it: it appears as
// the recovered stream's tail or not at all.
var ErrDurability = errors.New("serve: durable store failed")

// Durability configures the write-ahead log and checkpointing
// (DESIGN.md §9). The zero value disables durability entirely; setting Dir
// enables it with defaults for the rest.
//
// With durability on, Ingest appends each event to a group-committed WAL
// before admitting it, PublishWeights pairs every accepted weight set with a
// checkpoint of the stream prefix it serves, Close writes a final checkpoint,
// and Recover rebuilds a fresh engine to bitwise equivalence with the
// pre-crash one — up to the unsynced WAL tail, which is bounded by SyncEvery
// events.
type Durability struct {
	Dir             string // WAL + checkpoint directory ("" = durability off)
	SyncEvery       int    // events per WAL group commit (default 64; 1 = fsync every event)
	SegmentBytes    int64  // WAL segment rotation threshold (default 64 MiB)
	CheckpointEvery int    // events between periodic checkpoints (0 = only on weight publication, bootstrap and shutdown)
	FS              wal.FS // file-op layer (default wal.OSFS; tests inject wal.FaultFS)
}

// RecoveryReport summarizes what Recover rebuilt.
type RecoveryReport struct {
	CheckpointEvents int           // events restored from the newest valid checkpoint
	ReplayedEvents   int           // events replayed from the WAL suffix past the checkpoint
	HealedEvents     int           // checkpointed events re-appended to a WAL that lost its unsynced tail
	WeightVersion    uint64        // weight version restored (1 = the pretrained weights the engine was built with)
	Watermark        float64       // ingest watermark after recovery (meaningful iff HasWatermark)
	HasWatermark     bool          // false when the durable store held no events
	Duration         time.Duration // wall time of the whole recovery
}

// Recover rebuilds the engine's stream from the durable store: the newest
// valid checkpoint is bulk-loaded, the WAL suffix past it is replayed, a
// snapshot is published, and the checkpointed weight set (when present) is
// republished so the scheduler applies it before the first micro-batch. The
// result is bitwise-equivalent to the pre-crash engine over the recovered
// prefix: same events, same adjacency, same edge features, same watermark,
// same weights — so the same requests score identically.
//
// Recover must run on a freshly constructed engine (durability configured,
// nothing ingested). An empty store is the fresh-start path: Recover returns
// a zero report and the engine starts from scratch. At most the unsynced WAL
// tail — bounded by Durability.SyncEvery events — is lost relative to the
// crashed process.
func (e *Engine) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	start := time.Now()
	if e.wlog == nil {
		return rep, fmt.Errorf("serve: Recover requires Config.Durability.Dir")
	}
	ckWeights, err := e.recoverLocked(&rep)
	if err != nil {
		return rep, err
	}
	rep.WeightVersion = 1
	if ckWeights != nil {
		// Core publication only: re-checkpointing the state just restored
		// would be a no-op write.
		if err := e.publishWeightsCore(ckWeights); err != nil {
			return rep, fmt.Errorf("serve: republishing checkpointed weights: %w", err)
		}
		rep.WeightVersion = ckWeights.Version
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// recoverLocked performs the stream-rebuilding half of Recover under the
// ingest lock and returns the checkpointed weight set (nil when the store
// held none).
func (e *Engine) recoverLocked(rep *RecoveryReport) (*models.WeightSet, error) {
	fsys, dir := e.cfg.Durability.FS, e.cfg.Durability.Dir
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.gb.NumEvents() != 0 {
		return nil, fmt.Errorf("serve: Recover requires a fresh engine (%d events already ingested)", e.gb.NumEvents())
	}
	ck, err := wal.LatestCheckpoint(fsys, dir)
	if err != nil {
		return nil, err
	}
	var ckWeights *models.WeightSet
	if ck != nil {
		if ck.EdgeDim != e.cfg.EdgeDim {
			return nil, fmt.Errorf("serve: checkpoint edge dim %d, engine configured for %d", ck.EdgeDim, e.cfg.EdgeDim)
		}
		for i, ev := range ck.Events {
			if err := e.gb.Add(ev.Src, ev.Dst, ev.Time); err != nil {
				return nil, fmt.Errorf("serve: checkpoint event %d: %w", i, err)
			}
			e.appendFeatLocked(e.ckptRow(ck, i))
		}
		rep.CheckpointEvents = len(ck.Events)
		ckWeights = ck.Weights
	}

	// Heal a WAL that lags the checkpoint: the checkpoint survived but the
	// log's unsynced tail died with the process. Re-append the checkpointed
	// events the log is missing so record i == event i holds again for every
	// future append.
	from := uint64(rep.CheckpointEvents)
	if onLog := e.wlog.Seq(); onLog < from {
		for i := int(onLog); i < rep.CheckpointEvents; i++ {
			ev := ck.Events[i]
			if err := e.wlog.Append(ev.Src, ev.Dst, ev.Time, e.ckptRow(ck, i)); err != nil {
				return nil, fmt.Errorf("%w: healing WAL record %d: %w", ErrDurability, i, err)
			}
			rep.HealedEvents++
		}
		if err := e.wlog.Sync(); err != nil {
			return nil, fmt.Errorf("%w: healing WAL: %w", ErrDurability, err)
		}
	}

	// Replay the WAL suffix the checkpoint does not cover.
	replayed, err := wal.Replay(fsys, dir, from, func(seq uint64, r wal.Record) error {
		if len(r.Feat) != e.cfg.EdgeDim {
			return fmt.Errorf("serve: WAL record %d has %d feature floats, engine configured for %d", seq, len(r.Feat), e.cfg.EdgeDim)
		}
		if err := e.gb.Add(r.Src, r.Dst, r.T); err != nil {
			return fmt.Errorf("serve: WAL record %d: %w", seq, err)
		}
		e.appendFeatLocked(r.Feat)
		return nil
	})
	rep.ReplayedEvents = int(replayed)
	if err != nil {
		return nil, err
	}
	e.publishLocked()
	rep.Watermark, rep.HasWatermark = e.gb.LastTime()
	return ckWeights, nil
}

// ckptRow returns checkpoint event i's edge-feature row (nil when the graph
// carries none).
func (e *Engine) ckptRow(ck *wal.Checkpoint, i int) []float64 {
	if e.cfg.EdgeDim == 0 {
		return nil
	}
	return ck.Feats[i*e.cfg.EdgeDim : (i+1)*e.cfg.EdgeDim]
}

// walRow returns the feature row Ingest will admit for feat — the row the
// WAL must log so replay reproduces the feature buffer bitwise.
func (e *Engine) walRow(feat []float64) []float64 {
	if e.cfg.EdgeDim == 0 {
		return nil
	}
	if feat == nil {
		return e.zeroRow
	}
	return feat
}

// checkpointNow captures a consistent (events, features, watermark, weights)
// cut under the ingest lock and writes it durably outside it. The WAL is
// synced first so the log always covers at least the checkpointed prefix
// (Recover heals the rare inversion where a sticky-failed WAL could not be).
// Failures are counted in Stats rather than returned: the engine keeps
// serving and the previous checkpoint keeps protecting it — a checkpoint is
// an optimization of recovery time, the WAL is the source of truth.
func (e *Engine) checkpointNow() {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	e.ingestMu.Lock()
	_ = e.wlog.Sync()
	g, _ := e.gb.Snapshot()
	events := g.Events
	w := len(events) * e.cfg.EdgeDim
	feats := e.edgeFeat[:w:w]
	wm, hasWM := e.gb.LastTime()
	e.ingestMu.Unlock()

	ck := &wal.Checkpoint{
		Events: events, Feats: feats, EdgeDim: e.cfg.EdgeDim,
		Watermark: wm, HasWatermark: hasWM,
		Weights: e.weights.Load(), // newest published set (nil = pretrained)
	}
	if err := wal.WriteCheckpoint(e.cfg.Durability.FS, e.cfg.Durability.Dir, ck); err != nil {
		e.ckptFailures.Add(1)
		return
	}
	e.ckptWrites.Add(1)
	e.ckptEvents.Store(uint64(len(events)))
	e.ckptUnix.Store(time.Now().UnixNano())
}
