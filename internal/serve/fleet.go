package serve

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"taser/internal/autograd"
	"taser/internal/models"
	"taser/internal/overload"
	"taser/internal/tensor"
	"taser/internal/tgraph"
)

// Fleet shards the serving plane: K independent Engines, each owning a
// consistent-hash partition of the node id space, behind the Engine-shaped
// surface the HTTP layer and load generators already speak. DESIGN.md §12.
//
// The partition rule is ownership by destination with an endpoint tee: an
// event (src→dst, t) is stored on Owner(dst) and, when the endpoints hash to
// different shards, teed to Owner(src) as well. Every event touching a node v
// therefore lands on Owner(v) in stream order, so v's temporal adjacency,
// edge-feature rows and last-event-time on its owner shard are bitwise
// identical to the single-engine ones. That makes exactly one hop of temporal
// neighborhood shard-locally complete — which is why a K>1 fleet requires a
// one-layer model (GraphMixer): a two-layer backbone like TGAT reads hop-2
// neighborhoods that may live on other shards, and serving it bitwise-correct
// needs recursive scatter/gather (future work, not silent approximation).
//
// Prediction routes by endpoint ownership: (src, dst) on one shard is
// answered locally (one micro-batched engine call, the K=1 fast path);
// endpoints on different shards scatter one Embed to each owner and the
// router scores the gathered pair with its own predictor replica — bitwise
// the same decoder pass the engine's flush runs, just two rows wide. The
// gather retries briefly when the two shards report different weight
// versions, so a prediction is always scored under one version.
//
// Concurrency composes by ownership exactly as §7 promises: each engine's
// scheduler privately owns its builder, graph and arena, so the fleet adds
// routing, not locking — its only synchronization is per-shard ingest
// ordering (tee atomicity) and a close gate that drains in-flight
// scatter/gathers before any shard's scheduler shuts down.
type Fleet struct {
	cfg  Config // normalized template; Model/Pred are the caller's originals (shards hold clones)
	ring *Ring

	shards []*Engine
	// shardMu[i] serializes fleet writes into shard i. A teed event locks both
	// target shards in ascending index order, pre-checks both watermarks, and
	// only then applies — so a tee is atomic: it can never land on one shard
	// and be rejected as stale by the other.
	shardMu []sync.Mutex

	// opMu is the drain gate: every public op holds it for reading, Close
	// takes it for writing. Close therefore waits for every in-flight
	// ingest/predict/embed — scatter/gather included — before any shard
	// scheduler shuts down, and ops arriving after Close fail with ErrClosed
	// at the fleet gate instead of racing a half-closed fleet.
	opMu   sync.RWMutex
	closed bool

	// Router-side scoring state: wModel/wPred are LoadInto sinks (a WeightSet
	// is captured over the full (Model, Pred) module list, so loading just the
	// predictor is impossible), preds holds an immutable predictor replica per
	// published weight version so a cross-shard pair gathered at version v is
	// scored with exactly the v parameters.
	predMu        sync.RWMutex
	wModel        models.TGNN
	wPred         *models.EdgePredictor
	preds         map[uint64]*models.EdgePredictor
	routerVersion uint64

	ingested      atomic.Uint64 // distinct events admitted fleet-wide
	teed          atomic.Uint64 // cross-shard duplicates stored for neighborhood completeness
	requests      atomic.Uint64 // fleet-level serving calls
	crossShard    atomic.Uint64 // predictions that scattered across two shards
	gatherRetries atomic.Uint64 // embed re-requests spent converging weight versions
	lat           latencyRing   // fleet-level latency (includes scatter/gather overhead)

	// testEntered, when non-nil, runs after an op passes the closed gate —
	// the drain-ordering regression test uses it to hold requests in flight
	// while Close runs.
	testEntered func()
}

// FleetConfig wires K engines into a Fleet. The embedded Config is the
// per-shard template: every shard gets clones of Model/Pred (the originals
// stay with the caller) and, when Durability.Dir is set, its own WAL
// directory <Dir>/shard-<i> with fully independent recovery.
type FleetConfig struct {
	Config
	Shards int // engine count K (default 1)
	VNodes int // virtual points per shard on the hash ring (default DefaultVNodes)
}

// ShardError attributes a fleet failure to the shard that raised it; it
// unwraps to the shard's error so errors.Is(err, ErrStaleEvent) etc. keep
// working through the fleet surface.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }
func (e *ShardError) Unwrap() error { return e.Err }

// NewFleet builds and starts a fleet of cfg.Shards engines. A K=1 fleet is
// the degenerate ring — every node owned by shard 0, every call the local
// fast path — and serves bitwise-identically to a bare Engine. K>1 requires a
// one-layer model (see the type comment for why).
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	base, err := cfg.Config.normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("serve: FleetConfig.Shards must be at least 1, got %d", cfg.Shards)
	}
	if cfg.Shards > 1 && base.Model.NumLayers() > 1 {
		return nil, fmt.Errorf("serve: a %d-shard fleet requires a one-layer model (got %d layers): "+
			"the endpoint tee keeps exactly one hop of temporal neighborhood shard-locally complete, "+
			"so multi-hop backbones (TGAT) would silently read incomplete hop-2 neighborhoods",
			cfg.Shards, base.Model.NumLayers())
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes, base.Seed)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:           base,
		ring:          ring,
		shardMu:       make([]sync.Mutex, cfg.Shards),
		wModel:        base.Model.Clone(),
		wPred:         base.Pred.Clone(),
		preds:         map[uint64]*models.EdgePredictor{1: base.Pred.Clone()},
		routerVersion: 1,
	}
	f.lat.init(base.LatencyWindow)
	for i := 0; i < cfg.Shards; i++ {
		sc := base
		sc.Model = base.Model.Clone()
		sc.Pred = base.Pred.Clone()
		if sc.Durability.Dir != "" {
			sc.Durability.Dir = filepath.Join(base.Durability.Dir, fmt.Sprintf("shard-%d", i))
		}
		e, err := New(sc)
		if err != nil {
			for _, s := range f.shards {
				s.Close()
			}
			return nil, fmt.Errorf("serve: fleet shard %d: %w", i, err)
		}
		f.shards = append(f.shards, e)
	}
	return f, nil
}

// enter admits one public op through the drain gate; every return path must
// call leave exactly once after a nil error.
func (f *Fleet) enter() error {
	f.opMu.RLock()
	if f.closed {
		f.opMu.RUnlock()
		return ErrClosed
	}
	if f.testEntered != nil {
		f.testEntered()
	}
	return nil
}

func (f *Fleet) leave() { f.opMu.RUnlock() }

// Close drains and shuts the fleet down: the write lock waits for every
// in-flight op (an op holds the read side for its whole life, scatter legs
// included), the closed flag turns new ops away at the fleet gate, and only
// then do the shard engines close — so no in-flight scatter/gather ever hits
// a closed shard scheduler. Each shard's Close performs its usual final
// checkpoint. Safe to call multiple times.
func (f *Fleet) Close() {
	f.opMu.Lock()
	already := f.closed
	f.closed = true
	f.opMu.Unlock()
	if already {
		return
	}
	for _, s := range f.shards {
		s.Close()
	}
}

// targets returns the owning shard(s) of an event in ascending index order:
// Owner(dst) always, plus Owner(src) when the endpoints hash apart.
func (f *Fleet) targets(src, dst int32) (a, b int, teed bool) {
	od, os := f.ring.Owner(dst), f.ring.Owner(src)
	if od == os {
		return od, od, false
	}
	if os < od {
		return os, od, true
	}
	return od, os, true
}

// Ingest admits one streaming edge event, routed to the shard owning its
// destination node and teed to the source's owner when that differs. The tee
// is atomic: both target shards are locked (ascending index order) and both
// watermarks pre-checked before either shard admits, so an event is either on
// every shard that needs it or on none. The watermark contract is per-shard —
// an event must be at-or-after the watermark of each shard it lands on, which
// for an in-(per-shard-)order stream is exactly the single-engine contract.
//
// Admission control composes by canonical ownership: the event passes the
// ingest lane of exactly one gate — the shard owning dst, the copy the fleet
// counts as canonical — and then applies to both targets ungated. Gating both
// shards of a tee would be hold-and-wait across two bounded gates (deadlock
// under crossed floods); gating one bounds the fleet's ingest admission
// without it, and per-shard shed counters stay attributable to the owner.
func (f *Fleet) Ingest(src, dst int32, t float64, feat []float64) error {
	if err := f.enter(); err != nil {
		return err
	}
	defer f.leave()
	if src < 0 || int(src) >= f.cfg.NumNodes || dst < 0 || int(dst) >= f.cfg.NumNodes {
		return fmt.Errorf("serve: node id out of range [0, %d)", f.cfg.NumNodes)
	}
	if f.cfg.EdgeDim > 0 && feat != nil && len(feat) != f.cfg.EdgeDim {
		return fmt.Errorf("serve: edge feature width %d, want %d", len(feat), f.cfg.EdgeDim)
	}
	owner := f.ring.Owner(dst)
	if g := f.shards[owner].gate; g != nil {
		if err := g.Enter(overload.LaneIngest); err != nil {
			return &ShardError{Shard: owner, Err: gateErr(err)}
		}
		defer g.Leave(overload.LaneIngest)
	}
	a, b, teed := f.targets(src, dst)
	f.shardMu[a].Lock()
	defer f.shardMu[a].Unlock()
	if teed {
		f.shardMu[b].Lock()
		defer f.shardMu[b].Unlock()
	}
	check := func(s int) error {
		if wm, ok := f.shards[s].Watermark(); ok && t < wm {
			return &ShardError{Shard: s, Err: fmt.Errorf(
				"%w: event (%d→%d) at t=%v arrived behind watermark t=%v", ErrStaleEvent, src, dst, t, wm)}
		}
		return nil
	}
	if err := check(a); err != nil {
		return err
	}
	if teed {
		if err := check(b); err != nil {
			return err
		}
	}
	if err := f.shards[a].applyEvent(src, dst, t, feat); err != nil {
		return &ShardError{Shard: a, Err: err}
	}
	if teed {
		if err := f.shards[b].applyEvent(src, dst, t, feat); err != nil {
			return &ShardError{Shard: b, Err: err}
		}
	}
	f.ingested.Add(1)
	if teed {
		f.teed.Add(1)
	}
	return nil
}

// Bootstrap bulk-loads a historical event prefix: the stream is partitioned
// into per-shard subsequences (order preserved, teed events in both) and each
// shard bulk-applies its slice under one writer lock and one snapshot
// publication — the fleet-shaped analogue of Engine.Bootstrap, durable
// checkpoints included.
func (f *Fleet) Bootstrap(events []tgraph.Event, feats *tensor.Matrix) error {
	if err := f.enter(); err != nil {
		return err
	}
	defer f.leave()
	if feats != nil && feats.Cols != f.cfg.EdgeDim {
		return fmt.Errorf("serve: bootstrap feature width %d, want %d", feats.Cols, f.cfg.EdgeDim)
	}
	for i := range f.shardMu {
		f.shardMu[i].Lock()
		defer f.shardMu[i].Unlock()
	}
	perEv := make([][]tgraph.Event, len(f.shards))
	perFeat := make([][]float64, len(f.shards))
	var teed uint64
	add := func(s, i int, ev tgraph.Event) {
		perEv[s] = append(perEv[s], ev)
		if feats != nil && f.cfg.EdgeDim > 0 {
			perFeat[s] = append(perFeat[s], feats.Row(i)...)
		}
	}
	for i, ev := range events {
		if ev.Src < 0 || int(ev.Src) >= f.cfg.NumNodes || ev.Dst < 0 || int(ev.Dst) >= f.cfg.NumNodes {
			return fmt.Errorf("serve: bootstrap event %d: node id out of range [0, %d)", i, f.cfg.NumNodes)
		}
		a, b, t := f.targets(ev.Src, ev.Dst)
		add(a, i, ev)
		if t {
			add(b, i, ev)
			teed++
		}
	}
	for s := range f.shards {
		var fm *tensor.Matrix
		if feats != nil && f.cfg.EdgeDim > 0 {
			fm = tensor.FromSlice(len(perEv[s]), f.cfg.EdgeDim, perFeat[s])
		}
		if err := f.shards[s].Bootstrap(perEv[s], fm); err != nil {
			return &ShardError{Shard: s, Err: err}
		}
	}
	f.ingested.Add(uint64(len(events)))
	f.teed.Add(teed)
	return nil
}

// Embed returns node's embedding at query time t, served by the shard that
// owns the node (whose temporal neighborhood for it is locally complete).
func (f *Fleet) Embed(node int32, t float64) (EmbedResult, error) {
	if err := f.enter(); err != nil {
		return EmbedResult{}, err
	}
	defer f.leave()
	start := time.Now()
	res, err := f.shards[f.ring.Owner(node)].Embed(node, t)
	f.lat.add(time.Since(start))
	f.requests.Add(1)
	return res, err
}

// PredictLink returns the link logit for (src, dst) at query time t. When
// both endpoints hash to one shard the request is answered locally; otherwise
// the fleet scatters one Embed to each owner and scores the gathered pair
// with the router's predictor replica for the served weight version —
// bitwise the engine's own decoder pass over the same two embeddings. The
// result's Version is the src owner's snapshot version; staleness is bounded
// per shard by each owner's watermark (DESIGN.md §12).
func (f *Fleet) PredictLink(src, dst int32, t float64) (PredictResult, error) {
	if err := f.enter(); err != nil {
		return PredictResult{}, err
	}
	defer f.leave()
	start := time.Now()
	res, err := f.predictLink(src, dst, t)
	f.lat.add(time.Since(start))
	f.requests.Add(1)
	return res, err
}

// gatherAttempts bounds the weight-version convergence loop of a cross-shard
// prediction. Each retry is itself a request to the lagging shard, whose
// flush applies the pending weight set before serving it — so one retry
// usually converges; the bound only guards a publisher racing every attempt.
const gatherAttempts = 4

func (f *Fleet) predictLink(src, dst int32, t float64) (PredictResult, error) {
	ss, sd := f.ring.Owner(src), f.ring.Owner(dst)
	if ss == sd {
		return f.shards[ss].PredictLink(src, dst, t)
	}
	f.crossShard.Add(1)
	for attempt := 0; ; attempt++ {
		var (
			ra, rb EmbedResult
			ea, eb error
			wg     sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rb, eb = f.shards[sd].Embed(dst, t)
		}()
		ra, ea = f.shards[ss].Embed(src, t)
		wg.Wait()
		if ea != nil {
			return PredictResult{}, &ShardError{Shard: ss, Err: ea}
		}
		if eb != nil {
			return PredictResult{}, &ShardError{Shard: sd, Err: eb}
		}
		if ra.Weights == rb.Weights {
			score, err := f.scorePair(ra.Embedding, rb.Embedding, ra.Weights)
			if err != nil {
				return PredictResult{}, err
			}
			return PredictResult{
				Score: score, Version: ra.Version, Weights: ra.Weights,
				Cached: ra.Cached && rb.Cached,
			}, nil
		}
		f.gatherRetries.Add(1)
		if attempt >= gatherAttempts {
			return PredictResult{}, fmt.Errorf(
				"serve: cross-shard gather did not converge on one weight version (shard %d at v%d, shard %d at v%d)",
				ss, ra.Weights, sd, rb.Weights)
		}
	}
}

// scorePair runs the router's predictor replica for the given weight version
// over one gathered (src, dst) embedding pair — the same ScoreGathered pass
// the engine's flush uses, so the logit is bitwise what a single engine
// holding both embeddings would serve.
func (f *Fleet) scorePair(srcEmb, dstEmb []float64, version uint64) (float64, error) {
	f.predMu.RLock()
	pred := f.preds[version]
	f.predMu.RUnlock()
	if pred == nil {
		return 0, fmt.Errorf("serve: no router predictor for weight version %d", version)
	}
	d := f.cfg.Model.HiddenDim()
	m := tensor.New(2, d)
	copy(m.Row(0), srcEmb)
	copy(m.Row(1), dstEmb)
	g := autograd.New()
	logit := pred.ScoreGathered(g, autograd.NewConst(m), []int32{0}, []int32{1})
	return logit.Val.Data[0], nil
}

// routerPredHistory bounds how many weight versions the router keeps scoring
// replicas for: enough to cover every version a shard can still report during
// a publication, without growing with the fleet's lifetime.
const routerPredHistory = 4

// PublishWeights offers an immutable parameter snapshot to every shard (each
// applies it at its next flush and, when durable, checkpoints it) after
// installing a router-side predictor replica for the version — the replica
// must exist before any shard can serve embeddings at it, so a cross-shard
// gather never observes a version the router cannot score.
func (f *Fleet) PublishWeights(w *models.WeightSet) error {
	if err := f.enter(); err != nil {
		return err
	}
	defer f.leave()
	if w == nil {
		return fmt.Errorf("serve: PublishWeights(nil)")
	}
	if err := f.installRouterPred(w); err != nil {
		return err
	}
	var firstErr error
	for i, s := range f.shards {
		if err := s.PublishWeights(w); err != nil && firstErr == nil {
			firstErr = &ShardError{Shard: i, Err: err}
		}
	}
	return firstErr
}

// installRouterPred validates w against the fleet's architecture and stores a
// scoring replica for its version, pruning the oldest beyond the history
// bound. WeightSets are immutable, so sharing w across shards is safe.
func (f *Fleet) installRouterPred(w *models.WeightSet) error {
	f.predMu.Lock()
	defer f.predMu.Unlock()
	if w.Version <= f.routerVersion {
		return fmt.Errorf("serve: weight version %d not newer than version %d", w.Version, f.routerVersion)
	}
	if err := w.LoadInto(f.wModel, f.wPred); err != nil {
		return fmt.Errorf("serve: published weights do not fit the serving model: %w", err)
	}
	f.preds[w.Version] = f.wPred.Clone()
	f.routerVersion = w.Version
	for len(f.preds) > routerPredHistory {
		oldest := w.Version
		for v := range f.preds {
			if v < oldest {
				oldest = v
			}
		}
		delete(f.preds, oldest)
	}
	return nil
}

// PublishSnapshots forces an immediate snapshot publication on every shard
// (the fleet analogue of Engine.PublishSnapshot, e.g. after a bulk replay).
func (f *Fleet) PublishSnapshots() {
	if err := f.enter(); err != nil {
		return
	}
	defer f.leave()
	for _, s := range f.shards {
		s.PublishSnapshot()
	}
}

// Watermark reports the fleet-wide ingest watermark: the maximum over the
// shards' (each shard's is the latest event it stored). ok is false until any
// shard has an event.
func (f *Fleet) Watermark() (t float64, ok bool) {
	for _, s := range f.shards {
		if wm, has := s.Watermark(); has && (!ok || wm > t) {
			t, ok = wm, true
		}
	}
	return t, ok
}

// NumEvents reports the distinct events admitted fleet-wide — teed duplicates
// are accounted separately (Stats().Teed), so the count matches what a single
// engine fed the same stream would report.
func (f *Fleet) NumEvents() int { return int(f.ingested.Load()) }

// NumShards reports the partition count K.
func (f *Fleet) NumShards() int { return len(f.shards) }

// Shard exposes shard i's engine — for tests and operators that need the
// per-shard view (e.g. per-shard recovery equivalence checks). Writing to it
// directly bypasses the fleet's routing and tee accounting.
func (f *Fleet) Shard(i int) *Engine { return f.shards[i] }

// Owner reports which shard owns a node id.
func (f *Fleet) Owner(node int32) int { return f.ring.Owner(node) }

// Writable reports whether the public write API is open — always true: fleets
// do not participate in replication (DESIGN.md §12 explains the composition
// order: replication will wrap each shard, not the fleet).
func (f *Fleet) Writable() bool { return true }

// DurableErr reports the first shard's sticky WAL failure, nil while every
// shard's log is healthy (or durability is off). One failed shard makes the
// whole fleet unhealthy for writes — readiness aggregates, it does not mask.
func (f *Fleet) DurableErr() error {
	for i, s := range f.shards {
		if err := s.DurableErr(); err != nil {
			return &ShardError{Shard: i, Err: err}
		}
	}
	return nil
}

// FleetStats is a point-in-time summary of the fleet: per-shard engine stats
// plus the fleet-level routing counters.
type FleetStats struct {
	Shards []Stats

	Ingested uint64 // distinct events admitted
	Teed     uint64 // cross-shard duplicates (dedup accounting: Ingested counts each event once)

	Requests      uint64 // fleet-level serving calls
	CrossShard    uint64 // predictions that scattered across two shards
	GatherRetries uint64 // embeds re-requested to converge weight versions

	P50, P99 time.Duration // fleet-level, scatter/gather overhead included
}

// Stats snapshots the fleet's counters and every shard's.
func (f *Fleet) Stats() FleetStats {
	st := FleetStats{
		Ingested:      f.ingested.Load(),
		Teed:          f.teed.Load(),
		Requests:      f.requests.Load(),
		CrossShard:    f.crossShard.Load(),
		GatherRetries: f.gatherRetries.Load(),
		P50:           f.lat.quantile(0.50),
		P99:           f.lat.quantile(0.99),
	}
	for _, s := range f.shards {
		st.Shards = append(st.Shards, s.Stats())
	}
	return st
}

// FleetRecoveryReport aggregates the shards' recovery reports.
type FleetRecoveryReport struct {
	Shards        []RecoveryReport
	Events        int    // distinct events restored fleet-wide
	Teed          uint64 // cross-shard duplicates restored
	WeightVersion uint64 // weight version every shard serves after leveling
	Duration      time.Duration
}

// Recover restores every shard independently from its own WAL directory
// (each to bitwise equivalence with its pre-crash stream prefix, per the
// Engine.Recover contract), then reconciles the fleet:
//
//   - Weight leveling. A crash between the per-shard checkpoint writes of a
//     PublishWeights fan-out can leave shards on different weight versions;
//     the newest recovered set is re-published to the laggards (and installed
//     in the router) so cross-shard gathers converge again.
//
//   - Layout validation + dedup accounting. Every recovered event must be
//     owned by the shard holding it under the current ring — a mismatch means
//     the store was written with a different -shards K, which is unsupported
//     and fails loudly here instead of serving wrong neighborhoods. The scan
//     also recomputes the distinct/teed counters (an event's canonical copy
//     is the one on Owner(dst)).
//
// Like Engine.Recover, it must run on a freshly built Fleet before any
// traffic.
func (f *Fleet) Recover() (FleetRecoveryReport, error) {
	var rep FleetRecoveryReport
	if err := f.enter(); err != nil {
		return rep, err
	}
	defer f.leave()
	start := time.Now()
	for i, s := range f.shards {
		r, err := s.Recover()
		if err != nil {
			return rep, &ShardError{Shard: i, Err: err}
		}
		rep.Shards = append(rep.Shards, r)
	}

	var maxW *models.WeightSet
	for _, s := range f.shards {
		if w := s.PublishedWeights(); w != nil && (maxW == nil || w.Version > maxW.Version) {
			maxW = w
		}
	}
	rep.WeightVersion = 1
	if maxW != nil {
		for i, s := range f.shards {
			if cur := s.PublishedWeights(); cur == nil || cur.Version < maxW.Version {
				if err := s.PublishWeights(maxW); err != nil {
					return rep, &ShardError{Shard: i, Err: err}
				}
			}
		}
		if err := f.installRouterPred(maxW); err != nil {
			return rep, err
		}
		rep.WeightVersion = maxW.Version
	}

	var distinct, total int
	for i, s := range f.shards {
		for _, ev := range s.Pin().Graph.Events {
			od, os := f.ring.Owner(ev.Dst), f.ring.Owner(ev.Src)
			if od != i && os != i {
				return rep, fmt.Errorf(
					"serve: recovered shard %d holds event (%d→%d) owned by shards (%d, %d) — "+
						"the store at %q was written under a different shard layout "+
						"(changing -shards over an existing store is unsupported)",
					i, ev.Src, ev.Dst, os, od, f.cfg.Durability.Dir)
			}
			if od == i {
				distinct++
			}
			total++
		}
	}
	f.ingested.Store(uint64(distinct))
	f.teed.Store(uint64(total - distinct))
	rep.Events = distinct
	rep.Teed = uint64(total - distinct)
	rep.Duration = time.Since(start)
	return rep, nil
}
