package serve

import (
	"errors"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/tgraph"
	"taser/internal/train"
	"taser/internal/wal"
)

// newRecoveryEngine builds an engine over ds with durability configured and
// nothing ingested — the shape Recover requires. The trainer seed matches
// newTestEngine, so every engine built from the same dataset starts from
// bitwise-identical pretrained weights (train.New only initializes; it is
// deterministic in (config, dataset)).
func newRecoveryEngine(t testing.TB, ds *datasets.Dataset, dur Durability) *Engine {
	t.Helper()
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent,
		MaxBatch: 8, MaxWait: time.Millisecond, SnapshotEvery: 64, Seed: 3,
		Durability: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// assertEngineEquivalent is the crash-equivalence check: rec (a recovered
// engine) and ref (an engine that never crashed, fed the same prefix) must
// agree bitwise — watermark, event count, adjacency, edge features, and the
// scores they serve.
func assertEngineEquivalent(t *testing.T, rec, ref *Engine, probes []tgraph.Event) {
	t.Helper()
	recWM, recOK := rec.Watermark()
	refWM, refOK := ref.Watermark()
	if recWM != refWM || recOK != refOK {
		t.Fatalf("watermark %v (ok=%v), want %v (ok=%v)", recWM, recOK, refWM, refOK)
	}
	if rec.NumEvents() != ref.NumEvents() {
		t.Fatalf("recovered %d events, want %d", rec.NumEvents(), ref.NumEvents())
	}
	sRec, sRef := rec.PublishSnapshot(), ref.PublishSnapshot()
	if d := tgraph.AdjacencyDiff(sRec.TCSR, sRef.TCSR); d != "" {
		t.Fatalf("adjacency diverged: %s", d)
	}
	if len(sRec.EdgeFeat.Data) != len(sRef.EdgeFeat.Data) {
		t.Fatalf("edge features %d floats, want %d", len(sRec.EdgeFeat.Data), len(sRef.EdgeFeat.Data))
	}
	for i, v := range sRef.EdgeFeat.Data {
		if sRec.EdgeFeat.Data[i] != v {
			t.Fatalf("edge feature %d: %v != %v", i, sRec.EdgeFeat.Data[i], v)
		}
	}
	qt := refWM + 1
	for _, ev := range probes {
		got, err := rec.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("probe (%d→%d): recovered score %v, reference %v (weights %d vs %d)",
				ev.Src, ev.Dst, got.Score, want.Score, got.Weights, want.Weights)
		}
	}
}

// TestCrashRecoveryEquivalence is the tentpole property test: a process
// killed at an arbitrary byte offset — mid WAL segment, mid checkpoint
// write, or after a weight publication — restarts, recovers, and serves
// bitwise-identically to an engine that ingested the recovered prefix
// without ever crashing. At most the unsynced WAL tail (< SyncEvery events)
// is lost.
func TestCrashRecoveryEquivalence(t *testing.T) {
	const syncEvery = 8
	ds := datasets.Wikipedia(0.02, 7)
	events := ds.Graph.Events
	publishAt := len(events) / 2

	scenarios := []struct {
		name    string
		pattern string // FaultFS byte-budget pattern ("" = every file)
		budget  int64  // bytes until the kill; <0 = no kill (clean shutdown)
	}{
		{"mid-segment-early", "wal-", 3_000}, // dies before the weight publication
		{"mid-segment-late", "wal-", 40_000}, // dies replaying past the checkpoint
		{"mid-checkpoint", "ckpt", 500},      // dies tearing the checkpoint file itself
		{"post-publish", "wal-", 30_000},     // dies after checkpoint + publication
		{"clean-shutdown", "", -1},           // no crash: Close finalizes, zero loss
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			ff := wal.NewFaultFS(nil)
			dur := Durability{Dir: dir, SyncEvery: syncEvery, SegmentBytes: 4096, FS: ff}
			crash := newRecoveryEngine(t, ds, dur)
			if sc.budget >= 0 {
				ff.KillAfter(sc.budget, sc.pattern)
			}

			admitted := 0
			published := false
			for i, ev := range events {
				if i == publishAt {
					if err := crash.PublishWeights(perturbed(crash, 2, 1.25)); err != nil {
						t.Fatal(err)
					}
					published = true
				}
				err := crash.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i))
				if err != nil {
					if errors.Is(err, ErrDurability) {
						break // the process "died" here
					}
					t.Fatal(err)
				}
				admitted++
			}
			if sc.budget >= 0 && !ff.Killed() {
				ff.Kill() // generous budget: power off at stream end instead
			}
			crash.Close() // finalization against a dead FS must be harmless

			// Restart: same directory, healthy FS.
			rec := newRecoveryEngine(t, ds, Durability{Dir: dir, SyncEvery: syncEvery, SegmentBytes: 4096})
			rep, err := rec.Recover()
			if err != nil {
				t.Fatal(err)
			}
			n := rec.NumEvents()
			if n > admitted {
				t.Fatalf("recovered %d events, only %d were admitted", n, admitted)
			}
			if admitted-n >= syncEvery {
				t.Fatalf("lost %d events (admitted %d, recovered %d); loss bound is SyncEvery=%d",
					admitted-n, admitted, n, syncEvery)
			}
			if sc.budget < 0 && n != admitted {
				t.Fatalf("clean shutdown lost %d events", admitted-n)
			}
			if published && n >= publishAt && rep.WeightVersion != 2 && sc.name == "post-publish" {
				t.Fatalf("published weights not recovered: version %d", rep.WeightVersion)
			}

			// Reference: never-crashed engine over the recovered prefix, at
			// the recovered weight version.
			ref := newRecoveryEngine(t, ds, Durability{})
			if err := ref.Bootstrap(events[:n], ds.EdgeFeat.SliceRows(n)); err != nil {
				t.Fatal(err)
			}
			if rep.WeightVersion == 2 {
				if err := ref.PublishWeights(perturbed(ref, 2, 1.25)); err != nil {
					t.Fatal(err)
				}
			}
			probes := events[:min(8, n)]
			assertEngineEquivalent(t, rec, ref, probes)
			t.Logf("admitted=%d recovered=%d (ckpt=%d replay=%d healed=%d) weights=v%d in %v",
				admitted, n, rep.CheckpointEvents, rep.ReplayedEvents, rep.HealedEvents,
				rep.WeightVersion, rep.Duration)
		})
	}
}

// TestRecoverHealsLaggingWAL: when the checkpoint is ahead of the WAL (the
// log's tail was lost wholesale — here, every segment deleted), Recover
// re-appends the checkpointed events to the log so record i == event i holds
// again, and the engine survives a further ingest + restart cycle.
func TestRecoverHealsLaggingWAL(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 19)
	dir := t.TempDir()
	e := newRecoveryEngine(t, ds, Durability{Dir: dir, SyncEvery: 4})
	for i := 0; i < 40; i++ {
		ev := ds.Graph.Events[i]
		if err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close() // final checkpoint covers all 40 events

	// Lose the log wholesale; only the checkpoint survives.
	fsys := wal.OSFS{}
	segs, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, name := range segs {
		if len(name) > 4 && name[:4] == "wal-" {
			if err := fsys.Remove(dir + "/" + name); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("no WAL segments existed to remove")
	}

	rec := newRecoveryEngine(t, ds, Durability{Dir: dir, SyncEvery: 4})
	rep, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointEvents != 40 || rep.HealedEvents != 40 {
		t.Fatalf("recovered ckpt=%d healed=%d, want 40/40", rep.CheckpointEvents, rep.HealedEvents)
	}
	// The healed log extends: ingest past it, restart, everything is there.
	for i := 40; i < 50; i++ {
		ev := ds.Graph.Events[i]
		if err := rec.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	rec.Close()
	again := newRecoveryEngine(t, ds, Durability{Dir: dir, SyncEvery: 4})
	if _, err := again.Recover(); err != nil {
		t.Fatal(err)
	}
	if again.NumEvents() != 50 {
		t.Fatalf("second recovery has %d events, want 50", again.NumEvents())
	}
}

// TestRecoverEmptyStoreIsFreshStart: recovering from an empty directory is a
// no-op, and the engine then works normally.
func TestRecoverEmptyStoreIsFreshStart(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 3)
	e := newRecoveryEngine(t, ds, Durability{Dir: t.TempDir()})
	rep, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointEvents != 0 || rep.ReplayedEvents != 0 || rep.HasWatermark {
		t.Fatalf("empty store recovered state: %+v", rep)
	}
	if err := e.Ingest(0, 1, 1.5, ds.EdgeFeat.Row(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Embed(0, 2); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRequiresFreshEngine: Recover on an engine that has already
// ingested refuses rather than double-loading the stream.
func TestRecoverRequiresFreshEngine(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 3)
	e := newRecoveryEngine(t, ds, Durability{Dir: t.TempDir()})
	if err := e.Ingest(0, 1, 1, ds.EdgeFeat.Row(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(); err == nil {
		t.Fatal("Recover after ingest must fail")
	}
	// And without durability it fails outright.
	plain := newRecoveryEngine(t, ds, Durability{})
	if _, err := plain.Recover(); err == nil {
		t.Fatal("Recover without durability must fail")
	}
}

// TestIngestDurabilityFailureKeepsStateConsistent is the satellite-1 audit:
// when the WAL cannot make an event durable, the event is not admitted — the
// graph, watermark and feature buffer are exactly as before the call, the
// error wraps ErrDurability, and the failure is counted. A restart over the
// same directory recovers the consistent prefix.
func TestIngestDurabilityFailureKeepsStateConsistent(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 5)
	dir := t.TempDir()
	ff := wal.NewFaultFS(nil)
	// SyncEvery 1: every append syncs, so an injected fsync error surfaces on
	// the very call that carries the event.
	e := newRecoveryEngine(t, ds, Durability{Dir: dir, SyncEvery: 1, FS: ff})

	for i := 0; i < 10; i++ {
		ev := ds.Graph.Events[i]
		if err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	wmBefore, _ := e.Watermark()
	featsBefore := len(e.edgeFeat)

	ff.FailSyncs(true)
	ev := ds.Graph.Events[10]
	err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(10))
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	if e.NumEvents() != 10 {
		t.Fatalf("failed ingest admitted the event: %d events", e.NumEvents())
	}
	if wm, _ := e.Watermark(); wm != wmBefore {
		t.Fatalf("failed ingest moved the watermark: %v != %v", wm, wmBefore)
	}
	if len(e.edgeFeat) != featsBefore {
		t.Fatalf("failed ingest appended a feature row: %d != %d floats", len(e.edgeFeat), featsBefore)
	}
	// The WAL is sticky-failed: healing the fsync does not resurrect it, so
	// the log can never silently hold a gap.
	ff.FailSyncs(false)
	if err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(10)); !errors.Is(err, ErrDurability) {
		t.Fatalf("ingest after a WAL failure must keep failing: %v", err)
	}
	if st := e.Stats(); st.WALFailures != 2 {
		t.Fatalf("WALFailures = %d, want 2", st.WALFailures)
	}
	e.Close()

	// Restart. The 10 synced events must recover. The 11th is the classic
	// indeterminate commit: its bytes were written before the fsync failed,
	// so recovery may legitimately include it — the event was validated and
	// logged, the producer merely never got an acknowledgment (exactly like
	// a COMMIT whose reply was lost). What recovery must never do is skip it
	// and include something later.
	rec := newRecoveryEngine(t, ds, Durability{Dir: dir})
	rep, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	n := rec.NumEvents()
	if n != 10 && n != 11 {
		t.Fatalf("recovered %d events, want 10 or 11 (%+v)", n, rep)
	}
	if n == 11 {
		snap := rec.PublishSnapshot()
		if got := snap.Graph.Events[10]; got.Src != ev.Src || got.Dst != ev.Dst || got.Time != ev.Time {
			t.Fatalf("recovered 11th event %+v, want the unacknowledged %+v", got, ev)
		}
	}
}

// TestPublishWeightsWritesCheckpoint: with durability on, an accepted
// publication durably pairs the weights with the stream, and a restarted
// engine recovers them (the guarantee internal/finetune's background loop
// leans on — a crash never rolls serving back past a published version).
func TestPublishWeightsWritesCheckpoint(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 11)
	dir := t.TempDir()
	e := newRecoveryEngine(t, ds, Durability{Dir: dir, SyncEvery: 4})
	for i := 0; i < 32; i++ {
		ev := ds.Graph.Events[i]
		if err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PublishWeights(perturbed(e, 2, 1.5)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("publication must write a checkpoint")
	}
	if st.CheckpointEvents != 32 {
		t.Fatalf("checkpoint covers %d events, want 32", st.CheckpointEvents)
	}
	// Kill without Close: recovery must still restore the published version.
	rec := newRecoveryEngine(t, ds, Durability{Dir: dir})
	rep, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeightVersion != 2 {
		t.Fatalf("recovered weight version %d, want 2", rep.WeightVersion)
	}
	if rec.NumEvents() != 32 {
		t.Fatalf("recovered %d events, want 32", rec.NumEvents())
	}
}

// TestPeriodicCheckpointCadence: CheckpointEvery writes checkpoints on the
// ingest path without a weight publication in sight.
func TestPeriodicCheckpointCadence(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 13)
	e := newRecoveryEngine(t, ds, Durability{Dir: t.TempDir(), SyncEvery: 4, CheckpointEvery: 16})
	for i := 0; i < 50; i++ {
		ev := ds.Graph.Events[i]
		if err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Checkpoints != 3 { // at events 16, 32, 48
		t.Fatalf("checkpoints = %d, want 3", st.Checkpoints)
	}
	if st.CheckpointEvents != 48 {
		t.Fatalf("newest checkpoint covers %d events, want 48", st.CheckpointEvents)
	}
}

// TestDurableIngestAllocOverhead guards the group-commit hot path: durable
// ingest must stay within 2 heap allocations per event of non-durable
// ingest, like the arena guards in internal/train. Snapshots are pushed out
// of the window so the measurement isolates the WAL tee.
func TestDurableIngestAllocOverhead(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 17)
	plain := newRecoveryEngine(t, ds, Durability{})
	durable := newRecoveryEngine(t, ds, Durability{Dir: t.TempDir(), SyncEvery: 64})
	plain.cfg.SnapshotEvery = 1 << 30
	durable.cfg.SnapshotEvery = 1 << 30

	feat := make([]float64, ds.Spec.EdgeDim)
	warm := 512
	measure := func(e *Engine) float64 {
		clock := 0.0
		ingest := func() {
			clock++
			if err := e.Ingest(3, 4, clock, feat); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < warm; i++ { // steady-state the WAL buffer and feature slab
			ingest()
		}
		return testing.AllocsPerRun(256, ingest)
	}
	p := measure(plain)
	d := measure(durable)
	t.Logf("allocs/event: plain=%.2f durable=%.2f (delta %.2f)", p, d, d-p)
	if d-p > 2 {
		t.Fatalf("durable ingest allocates %.2f/event over non-durable (budget 2)", d-p)
	}
}
