package serve

import (
	"sync"
	"time"

	"taser/internal/overload"
	"taser/internal/stats"
)

// latencyRing keeps the most recent request latencies for percentile
// reporting: a fixed ring so a long-running engine's stats stay O(1) in
// memory and reflect recent behavior rather than the whole history.
type latencyRing struct {
	mu  sync.Mutex
	buf []float64 // seconds
	n   uint64    // total samples ever
	idx int
}

func (r *latencyRing) init(capacity int) {
	r.buf = make([]float64, 0, capacity)
}

func (r *latencyRing) add(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, d.Seconds())
		return
	}
	r.buf[r.idx] = d.Seconds()
	r.idx = (r.idx + 1) % len(r.buf)
}

// sample copies the retained window into dst and returns it — the SLO
// controller's Sample hook. Copy-only under the lock: sorting (and any other
// O(n log n) work) happens in the caller's scratch buffer, so sampling never
// stalls the request path's add().
func (r *latencyRing) sample(dst []float64) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(dst[:0], r.buf...)
}

// quantile returns the q-quantile of the retained window (0 when empty).
func (r *latencyRing) quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return 0
	}
	return time.Duration(stats.Quantile(r.buf, q) * float64(time.Second))
}

// Stats is a point-in-time summary of the engine.
type Stats struct {
	Requests uint64 // serving calls completed
	Batches  uint64 // micro-batches that reached the model forward
	Roots    uint64 // non-cached roots embedded across those batches

	CacheHits   uint64
	CacheStale  uint64 // resident entries invalidated by ingest (subset of misses)
	CacheMisses uint64

	SnapshotVersion uint64
	Watermark       float64 // latest published snapshot's watermark (see HasWatermark)
	HasWatermark    bool    // false until the first event reaches a published snapshot
	Events          int     // events in the latest published snapshot

	WeightVersion uint64        // weight version applied to the serving model
	WeightSwaps   uint64        // published weight sets swapped in so far
	AvgSwap       time.Duration // mean time the scheduler spent applying one set

	// Durability counters (zero when durability is off; see durability.go).
	Durable          bool
	WALAppended      uint64    // events appended to the WAL (buffered tail included)
	WALSynced        uint64    // events known durable
	WALSyncs         uint64    // fsync batches performed
	WALSegments      int       // segment files written across the log's lifetime
	WALFailures      uint64    // ingest attempts rejected by a failing WAL
	Checkpoints      uint64    // checkpoints written
	CheckpointFails  uint64    // checkpoint writes that failed (engine kept serving)
	CheckpointEvents uint64    // events covered by the newest checkpoint
	LastCheckpoint   time.Time // wall time of the newest checkpoint write (zero = none yet)

	// ReadOnly reports a replica follower (the public write API rejects with
	// ErrReadOnly; see internal/replica).
	ReadOnly bool

	// Overload is nil unless the overload control plane is on (DESIGN.md
	// §14) — the disabled engine's stats are bitwise those of the seed.
	Overload *OverloadStats

	P50, P99 time.Duration // over the recent-latency window
}

// OverloadStats reports the overload control plane. The effective values are
// what the scheduler is using right now; with no controller they equal the
// static config. Controller/Gate are nil for whichever half is disabled.
type OverloadStats struct {
	EffectiveMaxBatch int
	EffectiveMaxWait  time.Duration
	Controller        *overload.ControllerStats
	Gate              *overload.GateStats
}

// CacheHitRate returns hits/(hits+misses), 0 when the cache is off or cold.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// AvgBatch returns the mean non-cached roots per model forward.
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Roots) / float64(s.Batches)
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Requests:      e.requests.Load(),
		Batches:       e.batches.Load(),
		Roots:         e.roots.Load(),
		WeightVersion: e.weightVersion.Load(),
		WeightSwaps:   e.weightSwaps.Load(),
		P50:           e.lat.quantile(0.50),
		P99:           e.lat.quantile(0.99),
	}
	if s.WeightSwaps > 0 {
		s.AvgSwap = time.Duration(e.swapNanos.Load() / int64(s.WeightSwaps))
	}
	if e.cache != nil {
		s.CacheHits, s.CacheStale, s.CacheMisses = e.cache.counts()
	}
	if e.wlog != nil {
		s.Durable = true
		e.ingestMu.Lock()
		ws := e.wlog.Stats()
		e.ingestMu.Unlock()
		s.WALAppended, s.WALSynced = ws.Appended, ws.Synced
		s.WALSyncs, s.WALSegments = ws.Syncs, ws.Segments
		s.WALFailures = e.walFailures.Load()
		s.Checkpoints = e.ckptWrites.Load()
		s.CheckpointFails = e.ckptFailures.Load()
		s.CheckpointEvents = e.ckptEvents.Load()
		if ns := e.ckptUnix.Load(); ns != 0 {
			s.LastCheckpoint = time.Unix(0, ns)
		}
	}
	s.ReadOnly = e.readOnly.Load()
	if e.gate != nil || e.ctrl != nil {
		ov := &OverloadStats{EffectiveMaxBatch: e.curMaxBatch(), EffectiveMaxWait: e.curMaxWait()}
		if e.ctrl != nil {
			cs := e.ctrl.Stats()
			ov.Controller = &cs
		}
		if e.gate != nil {
			gs := e.gate.Stats()
			ov.Gate = &gs
		}
		s.Overload = ov
	}
	if snap := e.snap.Load(); snap != nil {
		s.SnapshotVersion = snap.Version
		s.Watermark = snap.Watermark
		s.HasWatermark = snap.HasWatermark
		s.Events = snap.NumEvents()
	}
	return s
}
