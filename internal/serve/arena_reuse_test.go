package serve

import (
	"sync"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/train"
)

// TestPredictionsStableUnderIngestWithArenaReuse is this PR's -race
// acceptance test: with the scheduler serving every micro-batch off one
// reusable arena-backed graph (poisoned, so any use-after-Reset turns NaN)
// while a writer concurrently ingests and publishes snapshots, repeated
// predictions at a fixed query time over a fixed event prefix must stay
// bitwise-identical to a cache-less reference engine bootstrapped with that
// prefix — graph reuse, flush-scratch reuse and request pooling must all be
// invisible to callers.
func TestPredictionsStableUnderIngestWithArenaReuse(t *testing.T) {
	// Poison every arena in the process (the schedulers' graphs included):
	// a use-after-Reset anywhere turns scores NaN and fails the bitwise
	// comparison below.
	t.Setenv("TASER_ARENA_POISON", "1")
	ds := datasets.GDELT(0.02, 31)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 17,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cacheSize int) *Engine {
		e, err := New(Config{
			Model: tr.Model, Pred: tr.Pred,
			NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			Budget: tr.Cfg.N, Policy: sampler.MostRecent, CacheSize: cacheSize,
			MaxBatch: 8, MaxWait: 200 * time.Microsecond, SnapshotEvery: 64, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return e
	}
	e := mk(64) // cache on: exercises hit/miss mixing within flushes

	// Fixed prefix ingested up front: queries against it are reproducible no
	// matter how much more the writer ingests (MostRecent + query time below
	// every later event's timestamp ⇒ identical neighborhoods).
	events := ds.Graph.Events
	prefix := len(events) / 2
	for i := 0; i < prefix; i++ {
		ev := events[i]
		if err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.PublishSnapshot()
	qt := events[prefix-1].Time // at-watermark queries: later events are all ≥ qt

	// Reference scores from a cache-less from-scratch engine over the prefix.
	ref := mk(0)
	if err := ref.Bootstrap(events[:prefix], ds.EdgeFeat.SliceRows(prefix)); err != nil {
		t.Fatal(err)
	}
	const probes = 16
	want := make([]float64, probes)
	probe := func(i int) (int32, int32) {
		ev := events[(i*29)%prefix]
		return ev.Src, ev.Dst
	}
	for i := range want {
		src, dst := probe(i)
		r, err := ref.PredictLink(src, dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Score
	}

	// Concurrent phase: writer streams the rest of the events (publishing
	// snapshots along the way) while predictors hammer the fixed probes.
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := prefix; i < len(events); i++ {
			ev := events[i]
			ts := ev.Time
			if ts < qt {
				ts = qt // keep the stream monotone past the probe time
			}
			if err := e.Ingest(ev.Src, ev.Dst, ts, ds.EdgeFeat.Row(i)); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 3 {
				select {
				case <-done:
					return
				default:
				}
				src, dst := probe(i % probes)
				got, err := e.PredictLink(src, dst, qt)
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				if got.Score != want[i%probes] {
					t.Errorf("probe %d (%d→%d): served %v, reference %v",
						i%probes, src, dst, got.Score, want[i%probes])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced re-check: the same probes once more, post-stream.
	for i := 0; i < probes; i++ {
		src, dst := probe(i)
		got, err := e.PredictLink(src, dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want[i] {
			t.Fatalf("post-stream probe %d: served %v, reference %v", i, got.Score, want[i])
		}
	}
}
