package serve

import (
	"math"
	"sync"

	"taser/internal/cache"
	"taser/internal/tensor"
)

// embCache memoizes node embeddings across micro-batches, layered on
// internal/cache's LRU for slot management and recency-based eviction.
//
// The key is (node, lastTs, weightVersion): lastTs is the node's last event
// time in the snapshot the entry was computed on, and weightVersion is the
// engine's applied model-weight version at computation time. Ingesting an
// event that touches the node advances lastTs in subsequent snapshots, and
// a fine-tuner publishing new weights advances the weight version — either
// way the stale entry stops matching, with no explicit invalidation hook
// between writer/publisher and the cache. An entry served at query time t'
// was computed at some earlier t ≥ lastTs over the *same* neighborhood with
// the *same* parameters; the only divergence is the time-encoding drift
// Δt − Δt', bounded by the interval between the two queries (see DESIGN.md's
// staleness analysis). Without the weight component, an embedding computed
// under old parameters would keep being served after a weight swap for as
// long as the node stayed event-quiet — the bug this key closes.
type embCache struct {
	mu     sync.Mutex
	lru    *cache.LRU
	lastTs []float64      // per-slot key; NaN marks a reserved-but-unfilled slot
	wv     []uint64       // per-slot weight version the entry was computed under
	emb    *tensor.Matrix // capacity×dim embedding rows

	hits, stale, misses uint64
}

func newEmbCache(capacity, dim int) *embCache {
	c := &embCache{
		lru:    cache.NewLRU(capacity),
		lastTs: make([]float64, capacity),
		wv:     make([]uint64, capacity),
		emb:    tensor.New(capacity, dim),
	}
	for i := range c.lastTs {
		c.lastTs[i] = math.NaN() // never equal to any real key
	}
	return c
}

// get copies the cached embedding for (node, lastTs, wv) into dst and
// reports a hit. A miss reserves the node's slot (evicting the LRU victim),
// marking it unfilled so no later lookup can hit garbage; the caller is
// expected to compute the embedding and put it.
func (c *embCache) get(node int32, lastTs float64, wv uint64, dst []float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, resident := c.lru.Access(node)
	if resident && c.lastTs[slot] == lastTs && c.wv[slot] == wv {
		c.hits++
		copy(dst, c.emb.Row(slot))
		return true
	}
	if resident {
		c.stale++ // resident but invalidated by ingest or a weight swap
	}
	c.misses++
	c.lastTs[slot] = math.NaN()
	return false
}

// put fills the slot reserved by a prior get. If the node was evicted in the
// meantime (another miss in the same flush claimed its slot), the value is
// simply dropped.
func (c *embCache) put(node int32, lastTs float64, wv uint64, emb []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.lru.Lookup(node)
	if !ok {
		return
	}
	c.lastTs[slot] = lastTs
	c.wv[slot] = wv
	copy(c.emb.Row(slot), emb)
}

// counts returns (hits, stale, misses); stale lookups are a subset of misses.
func (c *embCache) counts() (hits, stale, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.stale, c.misses
}
