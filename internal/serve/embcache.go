package serve

import (
	"math"
	"sync"

	"taser/internal/cache"
	"taser/internal/tensor"
)

// embCache memoizes node embeddings across micro-batches, layered on
// internal/cache's LRU for slot management and recency-based eviction.
//
// The key is (node, lastTs) where lastTs is the node's last event time in
// the snapshot the entry was computed on. Ingesting an event that touches
// the node advances lastTs in subsequent snapshots, so the stale entry stops
// matching — ingest invalidates by key, with no explicit invalidation hook
// between the writer and the cache. An entry served at query time t' was
// computed at some earlier t ≥ lastTs over the *same* neighborhood; the only
// divergence is the time-encoding drift Δt − Δt', bounded by the interval
// between the two queries (see DESIGN.md's staleness analysis).
type embCache struct {
	mu     sync.Mutex
	lru    *cache.LRU
	lastTs []float64      // per-slot key; NaN marks a reserved-but-unfilled slot
	emb    *tensor.Matrix // capacity×dim embedding rows

	hits, stale, misses uint64
}

func newEmbCache(capacity, dim int) *embCache {
	c := &embCache{
		lru:    cache.NewLRU(capacity),
		lastTs: make([]float64, capacity),
		emb:    tensor.New(capacity, dim),
	}
	for i := range c.lastTs {
		c.lastTs[i] = math.NaN() // never equal to any real key
	}
	return c
}

// get copies the cached embedding for (node, lastTs) into dst and reports a
// hit. A miss reserves the node's slot (evicting the LRU victim), marking it
// unfilled so no later lookup can hit garbage; the caller is expected to
// compute the embedding and put it.
func (c *embCache) get(node int32, lastTs float64, dst []float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, resident := c.lru.Access(node)
	if resident && c.lastTs[slot] == lastTs {
		c.hits++
		copy(dst, c.emb.Row(slot))
		return true
	}
	if resident {
		c.stale++ // resident but computed before the node's latest event
	}
	c.misses++
	c.lastTs[slot] = math.NaN()
	return false
}

// put fills the slot reserved by a prior get. If the node was evicted in the
// meantime (another miss in the same flush claimed its slot), the value is
// simply dropped.
func (c *embCache) put(node int32, lastTs float64, emb []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.lru.Lookup(node)
	if !ok {
		return
	}
	c.lastTs[slot] = lastTs
	copy(c.emb.Row(slot), emb)
}

// counts returns (hits, stale, misses); stale lookups are a subset of misses.
func (c *embCache) counts() (hits, stale, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.stale, c.misses
}

