package serve

import (
	"fmt"
	"math"
	"time"

	"taser/internal/autograd"
	"taser/internal/sampler"
)

// reqKind distinguishes the two serving request types.
type reqKind int

const (
	reqEmbed   reqKind = iota // one root: (src, t)
	reqPredict                // two roots: (src, t) and (dst, t)
)

// request is one in-flight serving call, handed to the scheduler goroutine.
type request struct {
	kind     reqKind
	src, dst int32
	t        float64
	out      chan response // buffered (1): the scheduler never blocks on a reply
}

func (r *request) rootCount() int {
	if r.kind == reqPredict {
		return 2
	}
	return 1
}

// response carries the result back to the caller.
type response struct {
	emb     []float64 // embed requests: caller-owned copy
	score   float64   // predict requests: link logit
	version uint64    // snapshot version served
	cached  bool      // every root was served from the embedding cache
	err     error
}

// EmbedResult is a served node embedding.
type EmbedResult struct {
	Embedding []float64
	Version   uint64 // snapshot version the embedding was computed on
	Cached    bool
}

// PredictResult is a served link-prediction logit.
type PredictResult struct {
	Score   float64
	Version uint64
	Cached  bool // both endpoint embeddings came from the cache
}

// Embed returns node's embedding at query time t, micro-batched with
// concurrent requests against the engine's current snapshot.
func (e *Engine) Embed(node int32, t float64) (EmbedResult, error) {
	resp, err := e.submit(&request{kind: reqEmbed, src: node, t: t})
	if err != nil {
		return EmbedResult{}, err
	}
	return EmbedResult{Embedding: resp.emb, Version: resp.version, Cached: resp.cached}, nil
}

// PredictLink returns the link-prediction logit for (src, dst) at query time
// t: both endpoints are embedded (sharing the micro-batch with concurrent
// requests) and scored by the edge predictor.
func (e *Engine) PredictLink(src, dst int32, t float64) (PredictResult, error) {
	resp, err := e.submit(&request{kind: reqPredict, src: src, dst: dst, t: t})
	if err != nil {
		return PredictResult{}, err
	}
	return PredictResult{Score: resp.score, Version: resp.version, Cached: resp.cached}, nil
}

// submit validates, enqueues, and waits. Once the scheduler has accepted a
// request it is guaranteed a response, even if Close races with the wait.
func (e *Engine) submit(r *request) (response, error) {
	if r.src < 0 || int(r.src) >= e.cfg.NumNodes || (r.kind == reqPredict && (r.dst < 0 || int(r.dst) >= e.cfg.NumNodes)) {
		return response{}, fmt.Errorf("serve: node id out of range [0, %d)", e.cfg.NumNodes)
	}
	r.out = make(chan response, 1)
	start := time.Now()
	select {
	case e.reqs <- r:
	case <-e.quit:
		return response{}, ErrClosed
	}
	resp := <-r.out
	e.lat.add(time.Since(start))
	e.requests.Add(1)
	return resp, resp.err
}

// loop is the micro-batching scheduler: it coalesces requests until MaxBatch
// roots are pending or the oldest pending request has waited MaxWait, then
// flushes the batch through one pooled build + model forward. On Close it
// flushes whatever it has accepted and exits.
func (e *Engine) loop() {
	defer e.wg.Done()
	var pending []*request
	pendingRoots := 0
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	doFlush := func() {
		e.flush(pending)
		for i := range pending {
			pending[i] = nil
		}
		pending = pending[:0]
		pendingRoots = 0
	}
	for {
		select {
		case r := <-e.reqs:
			pending = append(pending, r)
			pendingRoots += r.rootCount()
			if pendingRoots >= e.cfg.MaxBatch {
				stopTimer()
				doFlush()
			} else if len(pending) == 1 {
				timer.Reset(e.cfg.MaxWait)
			}
		case <-timer.C:
			if len(pending) > 0 {
				doFlush()
			}
		case <-e.quit:
			stopTimer()
			if len(pending) > 0 {
				doFlush()
			}
			return
		}
	}
}

// targetState is one deduplicated (node, t) root within a flush.
type targetState struct {
	node      int32
	t         float64
	keyTs     float64 // cache key: the node's last event time, or -Inf for an event-less node
	cacheable bool    // t ≥ last event time (or no events at all) and the cache is enabled
	cached    bool
	emb       []float64
}

// flush serves one micro-batch: pin the latest snapshot, retarget the builder
// if the snapshot advanced, resolve roots through the embedding cache,
// build + forward the misses in one pooled minibatch, then score and respond.
func (e *Engine) flush(pending []*request) {
	snap := e.snap.Load()
	if snap.Version != e.builderVersion {
		if err := e.builder.SwapGraph(snap.TCSR, snap.EdgeFeat); err != nil {
			for _, r := range pending {
				r.out <- response{err: err}
			}
			return
		}
		e.builderVersion = snap.Version
	}

	// Deduplicate roots: identical (node, t) pairs in one batch share a
	// single embedding computation (Zipfian traffic makes this common).
	type tkey struct {
		node int32
		t    float64
	}
	index := make(map[tkey]int, 2*len(pending))
	states := make([]*targetState, 0, 2*len(pending))
	d := e.cfg.Model.HiddenDim()
	resolve := func(node int32, t float64) int {
		k := tkey{node, t}
		if i, ok := index[k]; ok {
			return i
		}
		st := &targetState{node: node, t: t}
		st.emb = make([]float64, d)
		// Cache only queries at-or-after the node's last event: for those,
		// N(node, t) equals the neighborhood the cached entry was computed
		// on, so the entry is exact up to time-encoding drift. A node with
		// no events yet has an empty neighborhood at every t — cacheable
		// under the -Inf key, which no real last event time (a t=0 one
		// included) can collide with; its first event flips the key.
		lastTs, hasLast := snap.LastEventTime(node)
		st.keyTs = lastTs
		if !hasLast {
			st.keyTs = math.Inf(-1)
		}
		st.cacheable = e.cache != nil && (!hasLast || t >= lastTs)
		if st.cacheable && e.cache.get(node, st.keyTs, st.emb) {
			st.cached = true
		}
		index[k] = len(states)
		states = append(states, st)
		return len(states) - 1
	}
	sIdx := make([]int, len(pending))
	dIdx := make([]int, len(pending))
	for i, r := range pending {
		sIdx[i] = resolve(r.src, r.t)
		dIdx[i] = -1
		if r.kind == reqPredict {
			dIdx[i] = resolve(r.dst, r.t)
		}
	}

	// Build + forward the cache misses as one minibatch, padded to the next
	// power of two so the buffer pool sees a handful of shape classes instead
	// of one per distinct batch size. Forward is row-local (attention,
	// normalization and token mixing all stay within a target's rows), so
	// padding with sentinel roots never perturbs real outputs.
	var miss []int
	for i, st := range states {
		if !st.cached {
			miss = append(miss, i)
		}
	}
	if len(miss) > 0 {
		roots := make([]sampler.Target, len(miss), padBatch(len(miss)))
		for i, si := range miss {
			roots[i] = sampler.Target{Node: states[si].node, Time: states[si].t}
		}
		for len(roots) < cap(roots) {
			roots = append(roots, sampler.Target{})
		}
		mb := e.builder.Build(roots)
		g := autograd.New()
		out, _ := e.cfg.Model.Forward(g, mb)
		for i, si := range miss {
			copy(states[si].emb, out.Val.Row(i))
		}
		e.builder.Release(mb)
		for _, si := range miss {
			if st := states[si]; st.cacheable {
				e.cache.put(st.node, st.keyTs, st.emb)
			}
		}
		e.batches.Add(1)
		e.roots.Add(uint64(len(miss)))
	}

	// Score predict requests in one gathered pass over the resolved
	// embeddings — the same decoder path offline evaluation uses.
	scores := e.scorePairs(states, pending, sIdx, dIdx)

	for i, r := range pending {
		resp := response{version: snap.Version}
		switch r.kind {
		case reqEmbed:
			// Copy: deduplicated requests must not share one backing array.
			resp.emb = append([]float64(nil), states[sIdx[i]].emb...)
			resp.cached = states[sIdx[i]].cached
		case reqPredict:
			resp.score = scores[i]
			resp.cached = states[sIdx[i]].cached && states[dIdx[i]].cached
		}
		r.out <- resp
	}
}

// scorePairs runs the edge predictor over every predict request in one
// gathered forward; returns a slice aligned with pending (zero for embeds).
func (e *Engine) scorePairs(states []*targetState, pending []*request, sIdx, dIdx []int) []float64 {
	n := 0
	for _, r := range pending {
		if r.kind == reqPredict {
			n++
		}
	}
	scores := make([]float64, len(pending))
	if n == 0 {
		return scores
	}
	emb := autograd.NewConst(embMatrix(states, e.cfg.Model.HiddenDim()))
	srcRows := make([]int32, 0, n)
	dstRows := make([]int32, 0, n)
	which := make([]int, 0, n)
	for i, r := range pending {
		if r.kind != reqPredict {
			continue
		}
		srcRows = append(srcRows, int32(sIdx[i]))
		dstRows = append(dstRows, int32(dIdx[i]))
		which = append(which, i)
	}
	g := autograd.New()
	logits := e.cfg.Pred.ScoreGathered(g, emb, srcRows, dstRows)
	for j, i := range which {
		scores[i] = logits.Val.Data[j]
	}
	return scores
}

// padBatch rounds n up to the next power of two (the pool shape classes).
func padBatch(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
