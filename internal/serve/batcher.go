package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"taser/internal/overload"
	"taser/internal/sampler"
	"taser/internal/tensor"
)

// reqKind distinguishes the two serving request types.
type reqKind int

const (
	reqEmbed   reqKind = iota // one root: (src, t)
	reqPredict                // two roots: (src, t) and (dst, t)
)

// request is one in-flight serving call, handed to the scheduler goroutine.
type request struct {
	kind     reqKind
	src, dst int32
	t        float64
	out      chan response // buffered (1): the scheduler never blocks on a reply
}

// requestPool recycles request headers and their response channels across
// calls: the scheduler drops its reference once it has sent the (single)
// response, so after the caller receives it the request is free for reuse.
var requestPool = sync.Pool{New: func() any {
	return &request{out: make(chan response, 1)}
}}

func (r *request) rootCount() int {
	if r.kind == reqPredict {
		return 2
	}
	return 1
}

// response carries the result back to the caller.
type response struct {
	emb     []float64 // embed requests: caller-owned copy
	score   float64   // predict requests: link logit
	version uint64    // snapshot version served
	weights uint64    // weight version served
	cached  bool      // every root was served from the embedding cache
	err     error
}

// EmbedResult is a served node embedding.
type EmbedResult struct {
	Embedding []float64
	Version   uint64 // snapshot version the embedding was computed on
	Weights   uint64 // weight version the embedding was computed under
	Cached    bool
}

// PredictResult is a served link-prediction logit.
type PredictResult struct {
	Score   float64
	Version uint64
	Weights uint64 // weight version the logit was computed under
	Cached  bool   // both endpoint embeddings came from the cache
}

// Embed returns node's embedding at query time t, micro-batched with
// concurrent requests against the engine's current snapshot.
func (e *Engine) Embed(node int32, t float64) (EmbedResult, error) {
	resp, err := e.submit(reqEmbed, node, 0, t)
	if err != nil {
		return EmbedResult{}, err
	}
	return EmbedResult{Embedding: resp.emb, Version: resp.version, Weights: resp.weights, Cached: resp.cached}, nil
}

// PredictLink returns the link-prediction logit for (src, dst) at query time
// t: both endpoints are embedded (sharing the micro-batch with concurrent
// requests) and scored by the edge predictor.
func (e *Engine) PredictLink(src, dst int32, t float64) (PredictResult, error) {
	resp, err := e.submit(reqPredict, src, dst, t)
	if err != nil {
		return PredictResult{}, err
	}
	return PredictResult{Score: resp.score, Version: resp.version, Weights: resp.weights, Cached: resp.cached}, nil
}

// submit validates, enqueues a pooled request, and waits. Once the scheduler
// has accepted a request it is guaranteed a response, even if Close races
// with the wait. With admission control on, the request first enters the
// gate's predict lane: a full lane sheds immediately with ErrOverload (the
// HTTP 429 path) instead of queueing without bound, and the measured latency
// includes the gate wait — the queueing delay the SLO controller must see.
func (e *Engine) submit(kind reqKind, src, dst int32, t float64) (response, error) {
	if src < 0 || int(src) >= e.cfg.NumNodes || (kind == reqPredict && (dst < 0 || int(dst) >= e.cfg.NumNodes)) {
		return response{}, fmt.Errorf("serve: node id out of range [0, %d)", e.cfg.NumNodes)
	}
	start := time.Now() // before the gate: measured latency includes admission wait
	if e.gate != nil {
		if err := e.gate.Enter(overload.LanePredict); err != nil {
			return response{}, gateErr(err)
		}
		defer e.gate.Leave(overload.LanePredict)
	}
	r := requestPool.Get().(*request)
	r.kind, r.src, r.dst, r.t = kind, src, dst, t
	select {
	case e.reqs <- r:
	case <-e.quit:
		requestPool.Put(r)
		return response{}, ErrClosed
	}
	resp := <-r.out
	requestPool.Put(r)
	e.lat.add(time.Since(start))
	e.requests.Add(1)
	return resp, resp.err
}

// loop is the micro-batching scheduler: it coalesces requests until MaxBatch
// roots are pending or the oldest pending request has waited MaxWait, then
// flushes the batch through one pooled build + model forward. On Close it
// flushes whatever it has accepted and exits. Both thresholds are read
// through curMaxBatch/curMaxWait — the static config normally, the SLO
// controller's retuned values when one is attached (lock-free atomic reads,
// re-read per request so a control decision takes effect mid-stream).
func (e *Engine) loop() {
	defer e.wg.Done()
	var pending []*request
	pendingRoots := 0
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	doFlush := func() {
		e.flush(pending)
		for i := range pending {
			pending[i] = nil
		}
		pending = pending[:0]
		pendingRoots = 0
	}
	for {
		select {
		case r := <-e.reqs:
			pending = append(pending, r)
			pendingRoots += r.rootCount()
			if pendingRoots >= e.curMaxBatch() {
				stopTimer()
				doFlush()
			} else if len(pending) == 1 {
				timer.Reset(e.curMaxWait())
			}
		case <-timer.C:
			if len(pending) > 0 {
				doFlush()
			}
		case <-e.quit:
			stopTimer()
			if len(pending) > 0 {
				doFlush()
			}
			return
		}
	}
}

// targetState is one deduplicated (node, t) root within a flush.
type targetState struct {
	node      int32
	t         float64
	keyTs     float64 // cache key: the node's last event time, or -Inf for an event-less node
	cacheable bool    // t ≥ last event time (or no events at all) and the cache is enabled
	cached    bool
	emb       []float64 // view into flushScratch.embBuf
}

// tkey deduplicates (node, t) roots within one flush.
type tkey struct {
	node int32
	t    float64
}

// flushScratch is the scheduler's per-flush working set, reused across
// flushes so steady-state serving performs O(1) amortized allocations per
// micro-batch. Owned, like the builder and its graph, by the scheduler
// goroutine.
type flushScratch struct {
	index      map[tkey]int
	states     []targetState
	sIdx, dIdx []int
	miss       []int
	roots      []sampler.Target
	embBuf     []float64 // backing slab for targetState.emb views
	scores     []float64
	srcRows    []int32
	dstRows    []int32
	which      []int
	embMat     *tensor.Matrix // gathered-scoring input, rebuilt per flush
}

// flush serves one micro-batch: pin the latest snapshot, retarget the builder
// if the snapshot advanced, resolve roots through the embedding cache,
// build + forward the misses in one pooled minibatch, then score and respond.
// All model compute runs on the builder's reusable arena-backed graph;
// embeddings are copied out of it (into fs.embBuf, the cache, and per-caller
// response copies) before the next checkout, per the §7 ownership contract —
// arena slabs never alias the pinned snapshot, whose views the builder only
// reads.
func (e *Engine) flush(pending []*request) {
	snap := e.snap.Load()
	if snap.Version != e.builderVersion {
		if err := e.builder.SwapGraph(snap.TCSR, snap.EdgeFeat); err != nil {
			for _, r := range pending {
				r.out <- response{err: err}
			}
			return
		}
		e.builderVersion = snap.Version
	}
	// Pin a weight version for the whole micro-batch: if a fine-tuner
	// published a newer immutable set, copy it into the serving parameters
	// now, before any cache lookup or forward. The copy runs on the
	// scheduler goroutine (the only writer and reader of these Vars), so
	// publication never blocks a request and a request never observes a
	// half-applied update.
	if w := e.weights.Load(); w != nil && w.Version > e.weightVersion.Load() {
		start := time.Now()
		if err := w.LoadInto(e.cfg.Model, e.cfg.Pred); err != nil {
			for _, r := range pending {
				r.out <- response{err: err}
			}
			return
		}
		e.swapNanos.Add(int64(time.Since(start)))
		e.weightVersion.Store(w.Version)
		e.weightSwaps.Add(1)
	}
	wv := e.weightVersion.Load()

	// Deduplicate roots: identical (node, t) pairs in one batch share a
	// single embedding computation (Zipfian traffic makes this common).
	fs := &e.fs
	if fs.index == nil {
		fs.index = make(map[tkey]int)
	}
	clear(fs.index)
	fs.states = fs.states[:0]
	d := e.cfg.Model.HiddenDim()
	// Pre-size the embedding slab: emb views must stay valid for the whole
	// flush, so the slab cannot grow once the first view is taken.
	if need := 2 * len(pending) * d; cap(fs.embBuf) < need {
		fs.embBuf = make([]float64, need)
	}
	resolve := func(node int32, t float64) int {
		k := tkey{node, t}
		if i, ok := fs.index[k]; ok {
			return i
		}
		st := targetState{node: node, t: t}
		off := len(fs.states) * d
		st.emb = fs.embBuf[off : off+d : off+d]
		// Cache only queries at-or-after the node's last event: for those,
		// N(node, t) equals the neighborhood the cached entry was computed
		// on, so the entry is exact up to time-encoding drift. A node with
		// no events yet has an empty neighborhood at every t — cacheable
		// under the -Inf key, which no real last event time (a t=0 one
		// included) can collide with; its first event flips the key.
		lastTs, hasLast := snap.LastEventTime(node)
		st.keyTs = lastTs
		if !hasLast {
			st.keyTs = math.Inf(-1)
		}
		st.cacheable = e.cache != nil && (!hasLast || t >= lastTs)
		if st.cacheable && e.cache.get(node, st.keyTs, wv, st.emb) {
			st.cached = true
		}
		fs.index[k] = len(fs.states)
		fs.states = append(fs.states, st)
		return len(fs.states) - 1
	}
	fs.sIdx = fs.sIdx[:0]
	fs.dIdx = fs.dIdx[:0]
	for _, r := range pending {
		fs.sIdx = append(fs.sIdx, resolve(r.src, r.t))
		di := -1
		if r.kind == reqPredict {
			di = resolve(r.dst, r.t)
		}
		fs.dIdx = append(fs.dIdx, di)
	}

	// Build + forward the cache misses as one minibatch, padded to the next
	// power of two so the buffer pool sees a handful of shape classes instead
	// of one per distinct batch size. Forward is row-local (attention,
	// normalization and token mixing all stay within a target's rows), so
	// padding with sentinel roots never perturbs real outputs.
	fs.miss = fs.miss[:0]
	for i := range fs.states {
		if !fs.states[i].cached {
			fs.miss = append(fs.miss, i)
		}
	}
	if len(fs.miss) > 0 {
		fs.roots = fs.roots[:0]
		for _, si := range fs.miss {
			fs.roots = append(fs.roots, sampler.Target{Node: fs.states[si].node, Time: fs.states[si].t})
		}
		for len(fs.roots) < padBatch(len(fs.miss)) {
			fs.roots = append(fs.roots, sampler.Target{})
		}
		mb := e.builder.Build(fs.roots)
		g := e.builder.Graph()
		out, _ := e.cfg.Model.Forward(g, mb)
		for i, si := range fs.miss {
			copy(fs.states[si].emb, out.Val.Row(i))
		}
		e.builder.Release(mb)
		for _, si := range fs.miss {
			if st := &fs.states[si]; st.cacheable {
				e.cache.put(st.node, st.keyTs, wv, st.emb)
			}
		}
		e.batches.Add(1)
		e.roots.Add(uint64(len(fs.miss)))
	}

	// Score predict requests in one gathered pass over the resolved
	// embeddings — the same decoder path offline evaluation uses.
	scores := e.scorePairs(pending)

	for i, r := range pending {
		resp := response{version: snap.Version, weights: wv}
		switch r.kind {
		case reqEmbed:
			// Copy: the response escapes to the caller, and deduplicated
			// requests must not share one backing array.
			resp.emb = append([]float64(nil), fs.states[fs.sIdx[i]].emb...)
			resp.cached = fs.states[fs.sIdx[i]].cached
		case reqPredict:
			resp.score = scores[i]
			resp.cached = fs.states[fs.sIdx[i]].cached && fs.states[fs.dIdx[i]].cached
		}
		r.out <- resp
	}
}

// scorePairs runs the edge predictor over every predict request in one
// gathered forward; returns a slice (flush-scratch-owned) aligned with
// pending, zero for embeds.
func (e *Engine) scorePairs(pending []*request) []float64 {
	fs := &e.fs
	fs.scores = fs.scores[:0]
	for range pending {
		fs.scores = append(fs.scores, 0)
	}
	n := 0
	for _, r := range pending {
		if r.kind == reqPredict {
			n++
		}
	}
	if n == 0 {
		return fs.scores
	}
	d := e.cfg.Model.HiddenDim()
	if fs.embMat == nil {
		fs.embMat = tensor.New(len(fs.states), d)
	} else {
		fs.embMat.Resize(len(fs.states), d)
	}
	for i := range fs.states {
		copy(fs.embMat.Row(i), fs.states[i].emb)
	}
	fs.srcRows = fs.srcRows[:0]
	fs.dstRows = fs.dstRows[:0]
	fs.which = fs.which[:0]
	for i, r := range pending {
		if r.kind != reqPredict {
			continue
		}
		fs.srcRows = append(fs.srcRows, int32(fs.sIdx[i]))
		fs.dstRows = append(fs.dstRows, int32(fs.dIdx[i]))
		fs.which = append(fs.which, i)
	}
	// Fresh checkout of the builder graph: the forward-pass embeddings were
	// already copied into fs.embBuf, so resetting here is safe.
	g := e.builder.Graph()
	logits := e.cfg.Pred.ScoreGathered(g, g.Const(fs.embMat), fs.srcRows, fs.dstRows)
	for j, i := range fs.which {
		fs.scores[i] = logits.Val.Data[j]
	}
	return fs.scores
}

// padBatch rounds n up to the next power of two (the pool shape classes).
func padBatch(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
