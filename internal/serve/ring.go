package serve

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over the node-id space: each of K shards
// projects VNodes virtual points onto a 64-bit circle, and a node id is owned
// by the shard whose next clockwise point follows the node's hash. Two
// properties make it the fleet's partition function (DESIGN.md §12):
//
//   - Balance. With enough virtual points per shard (default 64) the owned
//     key mass per shard concentrates around 1/K — the max/min load ratio is
//     bounded regardless of how adversarially node ids are assigned, because
//     ownership is decided by a hash, not by the ids themselves.
//
//   - Stable resizing. A shard's points depend only on (seed, shard index,
//     replica index), never on K — growing a ring from K to K+1 shards adds
//     shard K's points and moves exactly the keys that now hash into their
//     arcs (an expected 1/(K+1) fraction). Every other key keeps its owner,
//     so a resize re-streams a bounded slice of the fleet instead of
//     reshuffling everything.
//
// A Ring is immutable after NewRing and safe for concurrent use. The same
// (shards, vnodes, seed) triple always yields the same assignment — shard
// layouts are reproducible across processes and restarts, which is what lets
// a recovered fleet validate that its durable store was written under the
// layout it is about to serve.
type Ring struct {
	points []uint64 // sorted virtual-point hashes
	owner  []int32  // owner[i] = shard owning points[i]
	shards int
	seed   uint64
}

// DefaultVNodes is the virtual-point count per shard NewRing uses when the
// caller passes 0 — enough for a max/min owned-key ratio comfortably under
// 1.5 at any realistic K (the ring tests pin the bound through K=8). Lookup
// is a binary search over K·VNodes points, so doubling this costs one extra
// comparison per Owner call.
const DefaultVNodes = 256

// NewRing builds a ring of shards partitions with vnodes virtual points each
// (0 = DefaultVNodes), deterministically from seed.
func NewRing(shards, vnodes int, seed uint64) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("serve: ring needs at least one shard, got %d", shards)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("serve: ring needs at least one vnode per shard, got %d", vnodes)
	}
	r := &Ring{shards: shards, seed: seed}
	r.points = make([]uint64, 0, shards*vnodes)
	r.owner = make([]int32, 0, shards*vnodes)
	type pt struct {
		h uint64
		s int32
	}
	pts := make([]pt, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			// The point hash depends on (seed, shard, replica) only — never on
			// the shard count — so resizing preserves every surviving shard's
			// points (the stable-remap property the tests pin).
			h := mix64(seed ^ mix64(uint64(s)<<32|uint64(v)+1))
			pts = append(pts, pt{h, int32(s)})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].s < pts[j].s // deterministic tie-break (astronomically rare)
	})
	for _, p := range pts {
		r.points = append(r.points, p.h)
		r.owner = append(r.owner, p.s)
	}
	return r, nil
}

// Shards reports the partition count K.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a node id to the shard that owns it: the shard of the first
// virtual point at or clockwise-after the node's hash.
func (r *Ring) Owner(node int32) int {
	h := mix64(r.seed ^ mix64(uint64(uint32(node))+0x5bf0_3635))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return int(r.owner[i])
}

// mix64 is SplitMix64's finalizer: a cheap, well-distributed 64-bit mixer
// (the same construction the WAL's synthetic-stream tests use for ids).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
