package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/tensor"
	"taser/internal/tgraph"
	"taser/internal/train"
	"taser/internal/wal"
)

// newMixerTrainer pretrains nothing — train.New deterministically initializes
// a 1-layer GraphMixer (the model class a K>1 fleet requires) so every engine
// and fleet built from the same dataset starts from bitwise-identical weights.
func newMixerTrainer(t testing.TB, ds *datasets.Dataset) *train.Trainer {
	t.Helper()
	tr, err := train.New(train.Config{
		Model: train.ModelGraphMixer, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// fleetBaseConfig is the shared per-shard template: NewFleet clones
// Model/Pred out of it, so the same trainer can seed a fleet and a reference
// engine with identical weights.
func fleetBaseConfig(tr *train.Trainer, ds *datasets.Dataset) Config {
	return Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent,
		MaxBatch: 8, MaxWait: time.Millisecond, SnapshotEvery: 64, Seed: 3,
	}
}

func newTestFleet(t testing.TB, tr *train.Trainer, ds *datasets.Dataset, shards int, mutate func(*FleetConfig)) *Fleet {
	t.Helper()
	fc := FleetConfig{Config: fleetBaseConfig(tr, ds), Shards: shards}
	if mutate != nil {
		mutate(&fc)
	}
	f, err := NewFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// newRefEngine builds a single reference engine owning weight clones, so the
// fleet and the reference start bitwise-identical and stay independent.
func newRefEngine(t testing.TB, tr *train.Trainer, ds *datasets.Dataset) *Engine {
	t.Helper()
	cfg := fleetBaseConfig(tr, ds)
	cfg.Model = tr.Model.Clone()
	cfg.Pred = tr.Pred.Clone()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestFleetK1MatchesEngine: the anchor invariant's base case — a K=1 Fleet is
// bitwise-equivalent to a bare Engine on the same stream: watermark, event
// count, every served embedding and every served score, across a weight
// publication.
func TestFleetK1MatchesEngine(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 5)
	tr := newMixerTrainer(t, ds)
	eng := newRefEngine(t, tr, ds)
	fl := newTestFleet(t, tr, ds, 1, nil)

	events := ds.Graph.Events
	half := len(events) / 2
	if err := eng.Bootstrap(events[:half], ds.EdgeFeat.SliceRows(half)); err != nil {
		t.Fatal(err)
	}
	if err := fl.Bootstrap(events[:half], ds.EdgeFeat.SliceRows(half)); err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(events); i++ {
		ev := events[i]
		if err := eng.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
		if err := fl.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := fl.NumEvents(), eng.NumEvents(); got != want {
		t.Fatalf("fleet has %d events, engine %d", got, want)
	}
	fwm, fok := fl.Watermark()
	ewm, eok := eng.Watermark()
	if fwm != ewm || fok != eok {
		t.Fatalf("fleet watermark %v (ok=%v), engine %v (ok=%v)", fwm, fok, ewm, eok)
	}

	// A published weight set must keep the pair in lockstep (identical sets:
	// both sides still hold the same parameter values).
	if err := eng.PublishWeights(perturbed(eng, 2, 1.01)); err != nil {
		t.Fatal(err)
	}
	if err := fl.PublishWeights(perturbed(fl.Shard(0), 2, 1.01)); err != nil {
		t.Fatal(err)
	}

	eng.PublishSnapshot()
	fl.PublishSnapshots()
	qt := ewm + 1
	for i := 0; i < 30; i++ {
		ev := events[i*len(events)/30]
		got, err := fl.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("probe (%d→%d): fleet %v, engine %v", ev.Src, ev.Dst, got.Score, want.Score)
		}
		if got.Weights != want.Weights {
			t.Fatalf("probe (%d→%d): fleet weights v%d, engine v%d", ev.Src, ev.Dst, got.Weights, want.Weights)
		}
		fe, err := fl.Embed(ev.Src, qt)
		if err != nil {
			t.Fatal(err)
		}
		ee, err := eng.Embed(ev.Src, qt)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ee.Embedding {
			if fe.Embedding[j] != ee.Embedding[j] {
				t.Fatalf("node %d emb[%d]: fleet %v, engine %v", ev.Src, j, fe.Embedding[j], ee.Embedding[j])
			}
		}
	}
	if st := fl.Stats(); st.Teed != 0 || st.CrossShard != 0 {
		t.Fatalf("K=1 fleet teed %d events and scattered %d predicts; both must be 0", st.Teed, st.CrossShard)
	}
}

// shardShuffle produces a deterministic reordering of events[lo:hi] that is
// admissible for the fleet: each shard's subsequence (the events that land on
// it, tee included) keeps its original relative order, while the interleaving
// across shards is scrambled. This is exactly the freedom the per-shard
// watermark contract grants a multi-producer deployment.
func shardShuffle(f *Fleet, events []tgraph.Event, lo, hi int, seed uint64) []int {
	K := f.NumShards()
	queues := make([][]int, K)
	for i := lo; i < hi; i++ {
		a, b, teed := f.targets(events[i].Src, events[i].Dst)
		queues[a] = append(queues[a], i)
		if teed {
			queues[b] = append(queues[b], i)
		}
	}
	pos := make([]int, K)
	head := func(s int) (int, bool) {
		if pos[s] >= len(queues[s]) {
			return 0, false
		}
		return queues[s][pos[s]], true
	}
	admissible := func(i int) bool {
		a, b, teed := f.targets(events[i].Src, events[i].Dst)
		if h, ok := head(a); !ok || h != i {
			return false
		}
		if teed {
			if h, ok := head(b); !ok || h != i {
				return false
			}
		}
		return true
	}
	rng := seed
	next := func(n int) int {
		rng = mix64(rng)
		return int(rng % uint64(n))
	}
	order := make([]int, 0, hi-lo)
	for len(order) < hi-lo {
		var cands []int
		for s := 0; s < K; s++ {
			if i, ok := head(s); ok && admissible(i) {
				dup := false
				for _, c := range cands {
					if c == i {
						dup = true
					}
				}
				if !dup {
					cands = append(cands, i)
				}
			}
		}
		// The earliest unemitted event is always admissible, so cands is
		// never empty while work remains.
		pick := cands[next(len(cands))]
		order = append(order, pick)
		a, b, teed := f.targets(events[pick].Src, events[pick].Dst)
		pos[a]++
		if teed {
			pos[b]++
		}
	}
	return order
}

// TestShardedPredictionsMatchSingleEngine: the anchor invariant at K=4 — a
// sharded fleet fed the same stream (ingest order shuffled across shards,
// per-shard order preserved) serves predictions bitwise-equal to a single
// engine's, for same-shard and cross-shard endpoint pairs alike, and its
// embeddings match for every probed node.
func TestShardedPredictionsMatchSingleEngine(t *testing.T) {
	const K = 4
	ds := datasets.Wikipedia(0.02, 5)
	tr := newMixerTrainer(t, ds)
	eng := newRefEngine(t, tr, ds)
	fl := newTestFleet(t, tr, ds, K, nil)

	events := ds.Graph.Events
	half := len(events) / 2
	if err := eng.Bootstrap(events[:half], ds.EdgeFeat.SliceRows(half)); err != nil {
		t.Fatal(err)
	}
	if err := fl.Bootstrap(events[:half], ds.EdgeFeat.SliceRows(half)); err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(events); i++ {
		ev := events[i]
		if err := eng.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	order := shardShuffle(fl, events, half, len(events), 99)
	displaced := 0
	for j, i := range order {
		if half+j != i {
			displaced++
		}
		ev := events[i]
		if err := fl.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if displaced == 0 {
		t.Fatal("shardShuffle left the stream in global order; the test would not exercise reordering")
	}

	if got, want := fl.NumEvents(), eng.NumEvents(); got != want {
		t.Fatalf("fleet has %d distinct events, engine %d", got, want)
	}
	fwm, _ := fl.Watermark()
	ewm, _ := eng.Watermark()
	if fwm != ewm {
		t.Fatalf("fleet watermark %v, engine %v", fwm, ewm)
	}
	st := fl.Stats()
	wantTeed := 0
	for _, ev := range events {
		if fl.Owner(ev.Src) != fl.Owner(ev.Dst) {
			wantTeed++
		}
	}
	if int(st.Teed) != wantTeed {
		t.Fatalf("teed counter %d, want %d", st.Teed, wantTeed)
	}
	if wantTeed == 0 {
		t.Fatal("no cross-shard events at K=4; the dataset/ring combination is degenerate")
	}

	eng.PublishSnapshot()
	fl.PublishSnapshots()
	qt := ewm + 1
	var cross, local int
	for i := 0; i < len(events) && (cross < 15 || local < 15); i++ {
		ev := events[i*7919%len(events)]
		isCross := fl.Owner(ev.Src) != fl.Owner(ev.Dst)
		if isCross && cross >= 15 || !isCross && local >= 15 {
			continue
		}
		got, err := fl.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("probe (%d→%d, cross=%v): fleet %v, engine %v", ev.Src, ev.Dst, isCross, got.Score, want.Score)
		}
		fe, err := fl.Embed(ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		ee, err := eng.Embed(ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ee.Embedding {
			if fe.Embedding[j] != ee.Embedding[j] {
				t.Fatalf("node %d emb[%d]: fleet %v, engine %v", ev.Dst, j, fe.Embedding[j], ee.Embedding[j])
			}
		}
		if isCross {
			cross++
		} else {
			local++
		}
	}
	if cross == 0 {
		t.Fatal("no cross-shard probes exercised the scatter/gather path")
	}
	if fs := fl.Stats(); fs.CrossShard == 0 {
		t.Fatal("cross-shard predict counter did not move")
	}

	// Concurrency smoke for the race detector: concurrent ingest (fresh
	// timestamps) against concurrent mixed-route predicts.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ev := events[(w*131+i*17)%len(events)]
				if _, err := fl.PredictLink(ev.Src, ev.Dst, qt+1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < len(events) && i < 200; i++ {
		ev := events[i]
		if err := fl.Ingest(ev.Src, ev.Dst, fwm+1+float64(i), ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestFleetRejectsMultiHopModel: the tee keeps one hop locally complete, so a
// K>1 fleet must refuse a multi-layer backbone instead of silently serving
// incomplete hop-2 neighborhoods.
func TestFleetRejectsMultiHopModel(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 5)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewFleet(FleetConfig{Config: fleetBaseConfig(tr, ds), Shards: 4})
	if err == nil || !strings.Contains(err.Error(), "one-layer") {
		t.Fatalf("K=4 with a 2-layer model must be rejected, got %v", err)
	}
	// K=1 carries no cross-shard reads: any depth is fine.
	f, err := NewFleet(FleetConfig{Config: fleetBaseConfig(tr, ds), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestFleetDrainOrdering is the regression for the Close/drain small fix: an
// op that passed the fleet's gate must be fully served — its scatter legs
// must never reach a closed shard scheduler — even when Close runs while it
// is in flight. Ops arriving after Close fail with ErrClosed at the gate.
func TestFleetDrainOrdering(t *testing.T) {
	const inflight = 4
	ds := datasets.Wikipedia(0.02, 5)
	tr := newMixerTrainer(t, ds)
	fl := newTestFleet(t, tr, ds, 4, nil)
	if err := fl.Bootstrap(ds.Graph.Events, ds.EdgeFeat); err != nil {
		t.Fatal(err)
	}
	var crossSrc, crossDst int32 = -1, -1
	for _, ev := range ds.Graph.Events {
		if fl.Owner(ev.Src) != fl.Owner(ev.Dst) {
			crossSrc, crossDst = ev.Src, ev.Dst
			break
		}
	}
	if crossSrc < 0 {
		t.Fatal("no cross-shard pair found")
	}
	wm, _ := fl.Watermark()

	entered := make(chan struct{}, inflight)
	release := make(chan struct{})
	fl.testEntered = func() {
		entered <- struct{}{}
		<-release
	}
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := fl.PredictLink(crossSrc, crossDst, wm+1)
			errs <- err
		}()
	}
	for i := 0; i < inflight; i++ {
		<-entered
	}
	closed := make(chan struct{})
	go func() {
		fl.Close() // must block until the in-flight predicts drain
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while ops were still gated in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	for i := 0; i < inflight; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("in-flight predict failed during Close: %v", err)
		}
	}
	<-closed
	if _, err := fl.PredictLink(crossSrc, crossDst, wm+1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close predict: want ErrClosed, got %v", err)
	}
	if err := fl.Ingest(crossSrc, crossDst, wm+2, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close ingest: want ErrClosed, got %v", err)
	}
}

// TestFleetStatsHTTP is the /v1/stats schema regression for the merged view:
// the top level keeps the standalone-engine keys (merged totals: distinct
// events, summed WAL counters, max watermark) and adds one full per-shard
// block per engine — each with its own WAL counters and checkpoint_age_ms —
// plus the tee/scatter accounting. /v1/healthz must aggregate shard
// readiness.
func TestFleetStatsHTTP(t *testing.T) {
	const K = 2
	ds := datasets.Wikipedia(0.02, 5)
	tr := newMixerTrainer(t, ds)
	fl := newTestFleet(t, tr, ds, K, func(fc *FleetConfig) {
		fc.Durability = Durability{Dir: t.TempDir(), SyncEvery: 4}
	})
	half := len(ds.Graph.Events) / 2
	if err := fl.Bootstrap(ds.Graph.Events[:half], ds.EdgeFeat.SliceRows(half)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(fl))
	t.Cleanup(srv.Close)

	post := func(path string, body map[string]any) (int, map[string]any) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	wm, _ := fl.Watermark()
	var crossEv, localEv *tgraph.Event
	for i := range ds.Graph.Events {
		ev := &ds.Graph.Events[i]
		if fl.Owner(ev.Src) != fl.Owner(ev.Dst) {
			crossEv = ev
		} else {
			localEv = ev
		}
		if crossEv != nil && localEv != nil {
			break
		}
	}
	if crossEv == nil || localEv == nil {
		t.Fatal("need one cross-shard and one same-shard event")
	}
	feat := make([]float64, ds.Spec.EdgeDim)
	if code, out := post("/v1/ingest", map[string]any{"src": crossEv.Src, "dst": crossEv.Dst, "t": wm + 1, "feat": feat}); code != http.StatusOK {
		t.Fatalf("cross ingest: %d %v", code, out)
	}
	if code, out := post("/v1/ingest", map[string]any{"src": localEv.Src, "dst": localEv.Dst, "t": wm + 2, "feat": feat}); code != http.StatusOK {
		t.Fatalf("local ingest: %d %v", code, out)
	}
	if code, out := post("/v1/predict", map[string]any{"src": crossEv.Src, "dst": crossEv.Dst, "t": wm + 3}); code != http.StatusOK {
		t.Fatalf("cross predict: %d %v", code, out)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	num := func(m map[string]any, k string) float64 {
		t.Helper()
		v, ok := m[k].(float64)
		if !ok {
			t.Fatalf("stats[%q] = %v (%T), want number", k, m[k], m[k])
		}
		return v
	}
	if got, want := num(st, "events"), float64(half+2); got != want {
		t.Fatalf("merged events %v, want %v distinct", got, want)
	}
	if num(st, "events_teed") < 1 {
		t.Fatalf("events_teed %v, want ≥ 1", st["events_teed"])
	}
	if num(st, "cross_shard_predicts") < 1 {
		t.Fatalf("cross_shard_predicts %v, want ≥ 1", st["cross_shard_predicts"])
	}
	if num(st, "shard_count") != K {
		t.Fatalf("shard_count %v, want %d", st["shard_count"], K)
	}
	if st["durable"] != true {
		t.Fatalf("merged durable %v, want true", st["durable"])
	}
	blocks, ok := st["shards"].([]any)
	if !ok || len(blocks) != K {
		t.Fatalf("shards[] = %v, want %d blocks", st["shards"], K)
	}
	var walSum float64
	for i, b := range blocks {
		blk, ok := b.(map[string]any)
		if !ok {
			t.Fatalf("shard block %d is %T", i, b)
		}
		if num(blk, "shard") != float64(i) {
			t.Fatalf("shard block %d labeled %v", i, blk["shard"])
		}
		// Per-shard durability telemetry: every shard ran a bootstrap
		// checkpoint, so age is a real (non-sentinel) value.
		if num(blk, "checkpoint_age_ms") < 0 {
			t.Fatalf("shard %d checkpoint_age_ms %v, want ≥ 0", i, blk["checkpoint_age_ms"])
		}
		if num(blk, "wal_appended") <= 0 {
			t.Fatalf("shard %d wal_appended %v, want > 0", i, blk["wal_appended"])
		}
		walSum += num(blk, "wal_appended")
	}
	if got := num(st, "wal_appended"); got != walSum {
		t.Fatalf("merged wal_appended %v, want per-shard sum %v", got, walSum)
	}
	// The tee means physical appends exceed distinct events.
	if walSum < float64(half+2)+1 {
		t.Fatalf("wal appends %v do not reflect the tee (distinct %d)", walSum, half+2)
	}

	hresp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", hresp.StatusCode)
	}
}

// TestFleetCrashRecoveryEquivalence: kill the shared filesystem mid-stream
// (wal.FaultFS byte budget across all shard WALs), restart, Recover — every
// shard must come back bitwise-equivalent to a reference engine fed exactly
// the per-shard prefix it durably admitted, with loss bounded by SyncEvery
// per shard.
func TestFleetCrashRecoveryEquivalence(t *testing.T) {
	const (
		K         = 3
		syncEvery = 8
	)
	ds := datasets.Wikipedia(0.02, 7)
	tr := newMixerTrainer(t, ds)
	base := t.TempDir()
	ff := wal.NewFaultFS(nil)
	fl := newTestFleet(t, tr, ds, K, func(fc *FleetConfig) {
		fc.Durability = Durability{Dir: base, SyncEvery: syncEvery, SegmentBytes: 4096, FS: ff}
	})
	ff.KillAfter(60_000, "wal-")

	// Ground truth: the (event index) sequence each shard durably admitted.
	// Apply order inside a tee is ascending shard index, and a ShardError
	// names the failing shard — so on the crashing ingest we know exactly
	// which owners already logged the event. The failing shard's own copy is
	// the classic indeterminate commit (the WAL write was torn, but may have
	// ended exactly on a record boundary): it may reappear as that shard's
	// recovered tail or not at all.
	perShard := make([][]int, K)
	record := func(i int, upto int) { // owners with index < upto admitted event i
		ev := ds.Graph.Events[i]
		a, b, teed := fl.targets(ev.Src, ev.Dst)
		if a < upto {
			perShard[a] = append(perShard[a], i)
		}
		if teed && b < upto {
			perShard[b] = append(perShard[b], i)
		}
	}
	killed := false
	indetShard := -1
	for i, ev := range ds.Graph.Events {
		err := fl.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i))
		if err == nil {
			record(i, K)
			continue
		}
		if !errors.Is(err, ErrDurability) {
			t.Fatalf("event %d: %v", i, err)
		}
		var se *ShardError
		if !errors.As(err, &se) {
			t.Fatalf("durability failure not attributed to a shard: %v", err)
		}
		record(i, se.Shard) // the tee may have half-landed before the crash
		perShard[se.Shard] = append(perShard[se.Shard], i)
		indetShard = se.Shard
		killed = true
		break
	}
	if !killed {
		t.Fatal("fault budget never fired; raise the stream length or lower the budget")
	}
	fl.Close() // post-kill close: checkpoint attempts fail, must not hang

	// Restart over the same directories with a healthy filesystem.
	rec := newTestFleet(t, tr, ds, K, func(fc *FleetConfig) {
		fc.Durability = Durability{Dir: base, SyncEvery: syncEvery, SegmentBytes: 4096}
	})
	rep, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != K {
		t.Fatalf("recovered %d shard reports, want %d", len(rep.Shards), K)
	}
	for s := 0; s < K; s++ {
		shard := rec.Shard(s)
		n := shard.NumEvents()
		admitted := perShard[s]
		definite := len(admitted)
		if s == indetShard {
			definite-- // the torn tail record may or may not have survived
		}
		if n > len(admitted) || definite-n >= syncEvery {
			t.Fatalf("shard %d recovered %d events, admitted %d definite (loss bound %d)", s, n, definite, syncEvery)
		}
		// Reference: a never-crashed engine fed the shard's durable prefix.
		ref := newRefEngine(t, tr, ds)
		evs := make([]tgraph.Event, 0, n)
		feats := make([]float64, 0, n*ds.Spec.EdgeDim)
		for _, i := range admitted[:n] {
			evs = append(evs, ds.Graph.Events[i])
			feats = append(feats, ds.EdgeFeat.Row(i)...)
		}
		if err := ref.Bootstrap(evs, tensor.FromSlice(len(evs), ds.Spec.EdgeDim, feats)); err != nil {
			t.Fatal(err)
		}
		probes := evs
		if len(probes) > 8 {
			probes = probes[len(probes)-8:]
		}
		assertEngineEquivalent(t, shard, ref, probes)
	}
	// The fleet-level dedup counters were recomputed from the recovered
	// shards under the ownership rule.
	wantDistinct := 0
	for s := 0; s < K; s++ {
		for _, i := range perShard[s][:rec.Shard(s).NumEvents()] {
			if fl.Owner(ds.Graph.Events[i].Dst) == s {
				wantDistinct++
			}
		}
	}
	if rec.NumEvents() != wantDistinct {
		t.Fatalf("recovered distinct count %d, want %d", rec.NumEvents(), wantDistinct)
	}
}

// TestFleetRecoverLevelsWeights: a fleet that checkpointed a published weight
// version must serve it again after recovery — on every shard and on the
// router's cross-shard scoring path.
func TestFleetRecoverLevelsWeights(t *testing.T) {
	const K = 2
	ds := datasets.Wikipedia(0.02, 5)
	tr := newMixerTrainer(t, ds)
	base := t.TempDir()
	mk := func() *Fleet {
		return newTestFleet(t, tr, ds, K, func(fc *FleetConfig) {
			fc.Durability = Durability{Dir: base, SyncEvery: 4}
		})
	}
	fl := mk()
	half := len(ds.Graph.Events) / 2
	if err := fl.Bootstrap(ds.Graph.Events[:half], ds.EdgeFeat.SliceRows(half)); err != nil {
		t.Fatal(err)
	}
	if err := fl.PublishWeights(perturbed(fl.Shard(0), 2, 1.02)); err != nil {
		t.Fatal(err)
	}
	var crossEv *tgraph.Event
	for i := range ds.Graph.Events[:half] {
		ev := &ds.Graph.Events[i]
		if fl.Owner(ev.Src) != fl.Owner(ev.Dst) {
			crossEv = ev
			break
		}
	}
	if crossEv == nil {
		t.Fatal("no cross-shard pair in the prefix")
	}
	wm, _ := fl.Watermark()
	want, err := fl.PredictLink(crossEv.Src, crossEv.Dst, wm+1)
	if err != nil {
		t.Fatal(err)
	}
	if want.Weights != 2 {
		t.Fatalf("pre-crash predict at weight v%d, want 2", want.Weights)
	}
	fl.Close()

	rec := mk()
	rep, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeightVersion != 2 {
		t.Fatalf("recovered weight version %d, want 2", rep.WeightVersion)
	}
	got, err := rec.PredictLink(crossEv.Src, crossEv.Dst, wm+1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights != 2 {
		t.Fatalf("post-recovery predict at weight v%d, want 2", got.Weights)
	}
	if got.Score != want.Score {
		t.Fatalf("post-recovery cross-shard score %v, want %v", got.Score, want.Score)
	}
}

// TestFleetIngestStaleAcrossTee: a teed event must be atomic — if it is stale
// for either target shard it lands on neither, and the error names the shard.
func TestFleetIngestStaleAcrossTee(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 5)
	tr := newMixerTrainer(t, ds)
	fl := newTestFleet(t, tr, ds, 4, nil)
	if err := fl.Bootstrap(ds.Graph.Events, ds.EdgeFeat); err != nil {
		t.Fatal(err)
	}
	var crossEv *tgraph.Event
	for i := range ds.Graph.Events {
		ev := &ds.Graph.Events[i]
		if fl.Owner(ev.Src) != fl.Owner(ev.Dst) {
			crossEv = ev
			break
		}
	}
	if crossEv == nil {
		t.Fatal("no cross-shard pair")
	}
	wm, _ := fl.Watermark()
	before := fl.Stats()
	err := fl.Ingest(crossEv.Src, crossEv.Dst, wm-1, nil)
	if !errors.Is(err, ErrStaleEvent) {
		t.Fatalf("want ErrStaleEvent, got %v", err)
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("stale rejection not attributed to a shard: %v", err)
	}
	after := fl.Stats()
	if after.Ingested != before.Ingested || after.Teed != before.Teed {
		t.Fatal("a rejected tee moved the dedup counters")
	}
	total := 0
	for s := 0; s < fl.NumShards(); s++ {
		total += fl.Shard(s).NumEvents()
	}
	if want := len(ds.Graph.Events) + int(before.Teed); total != want {
		t.Fatalf("a rejected tee changed physical shard event counts: %d, want %d", total, want)
	}
}
