package serve

import (
	"sync"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/tgraph"
	"taser/internal/train"
)

// requireSnapshotMatchesRepack asserts that an incrementally published
// snapshot is bitwise-indistinguishable from a from-scratch NewGraph/BuildTCSR
// repack of the same events: adjacency, LastEventTime, and edge features.
func requireSnapshotMatchesRepack(t *testing.T, snap *Snapshot, numNodes int, feats [][]float64) {
	t.Helper()
	events := append([]tgraph.Event(nil), snap.Graph.Events...)
	g, err := tgraph.NewGraph(numNodes, events)
	if err != nil {
		t.Fatal(err)
	}
	want := tgraph.BuildTCSR(g)
	if d := tgraph.AdjacencyDiff(snap.TCSR, want); d != "" {
		t.Fatalf("snapshot adjacency differs from repack: %s", d)
	}
	for v := int32(0); int(v) < numNodes; v++ {
		// LastEventTime through the snapshot equals the repack's last entry,
		// with event-less nodes reported as such rather than as t=0.
		_, wt, _ := want.Adj(v)
		got, ok := snap.LastEventTime(v)
		if ok != (len(wt) > 0) {
			t.Fatalf("node %d LastEventTime ok=%v, repack degree %d", v, ok, len(wt))
		}
		if ok && got != wt[len(wt)-1] {
			t.Fatalf("node %d LastEventTime %v, repack %v", v, got, wt[len(wt)-1])
		}
	}
	if snap.EdgeFeat.Rows != len(events) {
		t.Fatalf("edge-feature rows %d, events %d", snap.EdgeFeat.Rows, len(events))
	}
	for i := 0; i < snap.EdgeFeat.Rows && i < len(feats); i++ {
		row := snap.EdgeFeat.Row(i)
		for j, v := range feats[i] {
			if row[j] != v {
				t.Fatalf("edge feature [%d][%d] = %v, ingested %v", i, j, row[j], v)
			}
		}
	}
}

// TestIncrementalSnapshotServesFullRepack is the tentpole -race acceptance
// test: one writer streams events while a second goroutine forces snapshot
// publications and reads pinned snapshots' adjacency, and readers serve
// requests throughout. Every forced snapshot — built incrementally, sharing
// chunks, the event list and the edge-feature prefix with its predecessors —
// must be bitwise-identical to a from-scratch NewGraph/BuildTCSR repack of
// the same events, and the final served predictions must be bitwise-equal to
// a second engine bootstrapped from scratch with the identical stream.
func TestIncrementalSnapshotServesFullRepack(t *testing.T) {
	ds := datasets.GDELT(0.02, 29) // node and edge features exercise both stores
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *Engine {
		e, err := New(Config{
			Model: tr.Model, Pred: tr.Pred,
			NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			Budget: tr.Cfg.N, Policy: sampler.MostRecent,
			MaxBatch: 8, MaxWait: 200 * time.Microsecond, SnapshotEvery: 48, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return e
	}
	e := newEngine()

	events := ds.Graph.Events
	feats := make([][]float64, len(events))
	for i := range events {
		feats[i] = ds.EdgeFeat.Row(i)
	}

	var wg sync.WaitGroup
	var mid []*Snapshot // forced publications captured mid-stream
	done := make(chan struct{})
	wg.Add(1)
	go func() { // writer: event-by-event ingest (the incremental path)
		defer wg.Done()
		defer close(done)
		for i, ev := range events {
			if err := e.Ingest(ev.Src, ev.Dst, ev.Time, feats[i]); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // publisher: force publications and touch pinned snapshots
		defer wg.Done()
		for {
			snap := e.PublishSnapshot()
			mid = append(mid, snap)
			for v := int32(0); int(v) < ds.Spec.NumNodes; v += 7 {
				_, ts, _ := snap.TCSR.Adj(v) // concurrent reads of shared chunks
				_, _ = snap.LastEventTime(v)
				_ = ts
			}
			select {
			case <-done:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	wg.Add(1)
	go func() { // reader: serve against whatever snapshot is current
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			v := int32(i % ds.Spec.NumNodes)
			if _, err := e.Embed(v, 1e12); err != nil {
				t.Errorf("embed: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every mid-stream publication and the final one must equal its prefix's
	// full repack bitwise.
	final := e.PublishSnapshot()
	for _, snap := range append(mid, final) {
		requireSnapshotMatchesRepack(t, snap, ds.Spec.NumNodes, feats)
	}
	if final.NumEvents() != len(events) {
		t.Fatalf("final snapshot has %d events, want %d", final.NumEvents(), len(events))
	}

	// Served predictions: bitwise-equal to a from-scratch engine bootstrapped
	// with the identical stream in one shot.
	ref := newEngine()
	if err := ref.Bootstrap(events, ds.EdgeFeat); err != nil {
		t.Fatal(err)
	}
	wm, _ := e.Watermark()
	qt := wm + 1
	for i := 0; i < 25; i++ {
		ev := events[(i*37)%len(events)]
		got, err := e.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("prediction %d (%d→%d): incremental %v, from-scratch %v",
				i, ev.Src, ev.Dst, got.Score, want.Score)
		}
	}
}
