package stats

import (
	"math"
	"testing"
	"time"
)

func TestWelfordKnown(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatal("N")
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v", w.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatal("min/max")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty variance must be 0")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatal("single-sample stats")
	}
}

func TestTimerBuckets(t *testing.T) {
	tm := NewTimer()
	tm.Add("a", time.Second)
	tm.Add("b", 2*time.Second)
	tm.Add("a", time.Second)
	if tm.Get("a") != 2*time.Second {
		t.Fatal("accumulation")
	}
	if tm.Total() != 4*time.Second {
		t.Fatal("total")
	}
	names := tm.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("order: %v", names)
	}
	tm.Reset()
	if tm.Total() != 0 {
		t.Fatal("reset")
	}
	if len(tm.Names()) != 2 {
		t.Fatal("reset must keep bucket names")
	}
}

func TestTimerTime(t *testing.T) {
	tm := NewTimer()
	tm.Time("x", func() { time.Sleep(time.Millisecond) })
	if tm.Get("x") <= 0 {
		t.Fatal("Time must record elapsed wall clock")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatal("median")
	}
	if math.Abs(Quantile(xs, 0.25)-2) > 1e-12 {
		t.Fatal("q25")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty input must be NaN")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean must be NaN")
	}
}
