// Package stats provides streaming summaries (Welford mean/variance),
// lightweight timers, and histogram helpers used by the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample into the summary.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty summary).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min and Max return the extrema seen so far.
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// String formats as "mean±std (n)".
func (w *Welford) String() string {
	return fmt.Sprintf("%.4f±%.4f (n=%d)", w.Mean(), w.Std(), w.n)
}

// Timer accumulates named durations; it powers the NF/AS/FS/PP runtime
// breakdowns in Table III and Fig. 1. It is safe for concurrent use: the
// pipelined training loop charges build-phase buckets from the prefetch
// goroutine while the consumer charges PP.
type Timer struct {
	mu      sync.Mutex
	buckets map[string]time.Duration
	order   []string
}

// NewTimer returns an empty timer.
func NewTimer() *Timer {
	return &Timer{buckets: make(map[string]time.Duration)}
}

// Add charges d to bucket name.
func (t *Timer) Add(name string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.buckets[name]; !ok {
		t.order = append(t.order, name)
	}
	t.buckets[name] += d
}

// Time runs f and charges its wall time to bucket name.
func (t *Timer) Time(name string, f func()) {
	start := time.Now()
	f()
	t.Add(name, time.Since(start))
}

// Get returns the accumulated duration for name.
func (t *Timer) Get(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buckets[name]
}

// Total sums every bucket.
func (t *Timer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalLocked()
}

func (t *Timer) totalLocked() time.Duration {
	var total time.Duration
	for _, d := range t.buckets {
		total += d
	}
	return total
}

// Reset zeroes all buckets while keeping their order.
func (t *Timer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.buckets {
		t.buckets[k] = 0
	}
}

// Names returns bucket names in first-use order.
func (t *Timer) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// Breakdown formats each bucket as seconds with its share of the total.
func (t *Timer) Breakdown() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.totalLocked()
	s := ""
	for _, name := range t.order {
		d := t.buckets[name]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		s += fmt.Sprintf("%s=%.3fs(%.0f%%) ", name, d.Seconds(), pct)
	}
	return s + fmt.Sprintf("total=%.3fs", total.Seconds())
}

// Quantile returns the q-quantile (0≤q≤1) of xs by sorting a copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
