package autograd

import (
	"math"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

// Sigmoid applies the logistic function element-wise.
func (g *Graph) Sigmoid(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = mathx.Sigmoid(v)
	}
	if o.NeedsGrad() {
		g.push(func() {
			for i, s := range o.Val.Data {
				a.Grad.Data[i] += o.Grad.Data[i] * s * (1 - s)
			}
		})
	}
	return o
}

// Tanh applies tanh element-wise.
func (g *Graph) Tanh(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = math.Tanh(v)
	}
	if o.NeedsGrad() {
		g.push(func() {
			for i, t := range o.Val.Data {
				a.Grad.Data[i] += o.Grad.Data[i] * (1 - t*t)
			}
		})
	}
	return o
}

// ReLU applies max(0, x) element-wise.
func (g *Graph) ReLU(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		if v > 0 {
			o.Val.Data[i] = v
		}
	}
	if o.NeedsGrad() {
		g.push(func() {
			for i, v := range a.Val.Data {
				if v > 0 {
					a.Grad.Data[i] += o.Grad.Data[i]
				}
			}
		})
	}
	return o
}

// LeakyReLU applies x>=0 ? x : slope·x element-wise (GAT uses slope 0.2).
func (g *Graph) LeakyReLU(a *Var, slope float64) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = mathx.LeakyReLU(v, slope)
	}
	if o.NeedsGrad() {
		g.push(func() {
			for i, v := range a.Val.Data {
				d := o.Grad.Data[i]
				if v < 0 {
					d *= slope
				}
				a.Grad.Data[i] += d
			}
		})
	}
	return o
}

// geluParallelThreshold is the element count above which GELU fans out; the
// tanh evaluation is expensive enough that this is the hottest element-wise
// op in training.
const geluParallelThreshold = 1 << 14

// GELU applies the Gaussian error linear unit element-wise.
func (g *Graph) GELU(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	forEachChunk(len(a.Val.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o.Val.Data[i] = mathx.GELU(a.Val.Data[i])
		}
	})
	if o.NeedsGrad() {
		g.push(func() {
			forEachChunk(len(a.Val.Data), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a.Grad.Data[i] += o.Grad.Data[i] * mathx.GELUGrad(a.Val.Data[i])
				}
			})
		})
	}
	return o
}

// forEachChunk runs body over [0, n) in parallel chunks when n is large.
func forEachChunk(n int, body func(lo, hi int)) {
	if n < geluParallelThreshold {
		body(0, n)
		return
	}
	tensor.ParallelRows(n, body)
}

// Cos applies cos element-wise; used by the learnable time encoding (Eq. 3).
func (g *Graph) Cos(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = math.Cos(v)
	}
	if o.NeedsGrad() {
		g.push(func() {
			for i, v := range a.Val.Data {
				a.Grad.Data[i] -= o.Grad.Data[i] * math.Sin(v)
			}
		})
	}
	return o
}

// SoftmaxRows applies softmax along each row.
func (g *Graph) SoftmaxRows(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	tensor.SoftmaxRowsInto(o.Val, a.Val)
	if o.NeedsGrad() {
		g.push(func() {
			// dx_j = s_j (dy_j - Σ_k dy_k s_k)
			for i := 0; i < a.Rows(); i++ {
				s := o.Val.Row(i)
				dy := o.Grad.Row(i)
				var dot float64
				for k, sv := range s {
					dot += dy[k] * sv
				}
				dx := a.Grad.Row(i)
				for j, sv := range s {
					dx[j] += sv * (dy[j] - dot)
				}
			}
		})
	}
	return o
}

// LogSoftmaxRows returns log(softmax) per row; the numerically preferred
// input to the REINFORCE sample loss.
func (g *Graph) LogSoftmaxRows(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i := 0; i < a.Rows(); i++ {
		row := a.Val.Row(i)
		lse := mathx.LogSumExp(row)
		out := o.Val.Row(i)
		for j, v := range row {
			out[j] = v - lse
		}
	}
	if o.NeedsGrad() {
		g.push(func() {
			// dx_j = dy_j - softmax_j Σ_k dy_k
			for i := 0; i < a.Rows(); i++ {
				dy := o.Grad.Row(i)
				var sum float64
				for _, v := range dy {
					sum += v
				}
				logp := o.Val.Row(i)
				dx := a.Grad.Row(i)
				for j, lp := range logp {
					dx[j] += dy[j] - math.Exp(lp)*sum
				}
			}
		})
	}
	return o
}
