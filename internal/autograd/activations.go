package autograd

import (
	"math"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

// Sigmoid applies the logistic function element-wise.
func (g *Graph) Sigmoid(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = mathx.Sigmoid(v)
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opSigmoid, out: o, a: a})
	}
	return o
}

// Tanh applies tanh element-wise.
func (g *Graph) Tanh(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = math.Tanh(v)
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opTanh, out: o, a: a})
	}
	return o
}

// ReLU applies max(0, x) element-wise.
func (g *Graph) ReLU(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		if v > 0 {
			o.Val.Data[i] = v
		}
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opReLU, out: o, a: a})
	}
	return o
}

// LeakyReLU applies x>=0 ? x : slope·x element-wise (GAT uses slope 0.2).
func (g *Graph) LeakyReLU(a *Var, slope float64) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = mathx.LeakyReLU(v, slope)
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opLeakyReLU, out: o, a: a, scalar: slope})
	}
	return o
}

// geluParallelThreshold is the element count above which GELU fans out; the
// tanh evaluation is expensive enough that this is the hottest element-wise
// op in training.
const geluParallelThreshold = 1 << 14

// GELU applies the Gaussian error linear unit element-wise.
func (g *Graph) GELU(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	// The serial path is written out (not a conditionally-spawned closure) so
	// small activations allocate nothing.
	if n := len(a.Val.Data); n < geluParallelThreshold {
		for i := 0; i < n; i++ {
			o.Val.Data[i] = mathx.GELU(a.Val.Data[i])
		}
	} else {
		tensor.ParallelRows(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				o.Val.Data[i] = mathx.GELU(a.Val.Data[i])
			}
		})
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opGELU, out: o, a: a})
	}
	return o
}

// Cos applies cos element-wise; used by the learnable time encoding (Eq. 3).
func (g *Graph) Cos(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i, v := range a.Val.Data {
		o.Val.Data[i] = math.Cos(v)
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opCos, out: o, a: a})
	}
	return o
}

// SoftmaxRows applies softmax along each row.
func (g *Graph) SoftmaxRows(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	tensor.SoftmaxRowsInto(o.Val, a.Val)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opSoftmaxRows, out: o, a: a})
	}
	return o
}

// LogSoftmaxRows returns log(softmax) per row; the numerically preferred
// input to the REINFORCE sample loss.
func (g *Graph) LogSoftmaxRows(a *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i := 0; i < a.Rows(); i++ {
		row := a.Val.Row(i)
		lse := mathx.LogSumExp(row)
		out := o.Val.Row(i)
		for j, v := range row {
			out[j] = v - lse
		}
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opLogSoftmaxRows, out: o, a: a})
	}
	return o
}
