package autograd

import (
	"testing"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

func TestGradReshape(t *testing.T) {
	rng := mathx.NewRNG(20)
	a := NewParam(tensor.Randn(6, 1, 1, rng))
	coef := tensor.Randn(2, 3, 1, rng)
	gradCheck(t, []*Var{a}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.Reshape(a, 2, 3), coef)
	}, 1e-6)
}

func TestReshapePanicsOnCountMismatch(t *testing.T) {
	g := New()
	a := NewParam(tensor.New(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Reshape(a, 4, 2)
}

func TestGradMulColVec(t *testing.T) {
	rng := mathx.NewRNG(21)
	a := NewParam(tensor.Randn(4, 3, 1, rng))
	col := tensor.FromSlice(4, 1, []float64{1, 0, 0.5, 2})
	coef := tensor.Randn(4, 3, 1, rng)
	gradCheck(t, []*Var{a}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.MulColVec(a, col), coef)
	}, 1e-6)
}

func TestMulColVecMasksRows(t *testing.T) {
	g := New()
	a := NewParam(tensor.FromSlice(2, 2, []float64{1, 2, 3, 4}))
	col := tensor.FromSlice(2, 1, []float64{0, 1})
	o := g.MulColVec(a, col)
	if o.Val.At(0, 0) != 0 || o.Val.At(0, 1) != 0 {
		t.Fatal("masked row must zero")
	}
	if o.Val.At(1, 0) != 3 {
		t.Fatal("unmasked row must pass through")
	}
	// Gradient must not flow into masked rows.
	g.Backward(g.SumAll(o))
	if a.Grad.At(0, 0) != 0 || a.Grad.At(1, 0) != 1 {
		t.Fatalf("mask gradient: %v", a.Grad)
	}
}

func TestMulColVecShapePanic(t *testing.T) {
	g := New()
	a := NewParam(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.MulColVec(a, tensor.New(3, 1))
}

func TestOpsCount(t *testing.T) {
	g := New()
	a := NewParam(tensor.New(2, 2))
	_ = g.Add(a, a)
	_ = g.Sigmoid(a)
	if g.Ops() != 2 {
		t.Fatalf("tape length %d", g.Ops())
	}
}

func TestGELULargeInputParallelPath(t *testing.T) {
	// Exercise the parallel chunked path (> 2^14 elements) and verify it
	// agrees with the scalar definition.
	rng := mathx.NewRNG(22)
	a := NewParam(tensor.Randn(200, 100, 1, rng))
	g := New()
	o := g.GELU(a)
	for i, v := range a.Val.Data {
		if o.Val.Data[i] != mathx.GELU(v) {
			t.Fatal("parallel GELU mismatch")
		}
	}
	g.Backward(g.SumAll(o))
	for i, v := range a.Val.Data {
		if a.Grad.Data[i] != mathx.GELUGrad(v) {
			t.Fatal("parallel GELU backward mismatch")
		}
	}
}
