// Package autograd implements a reverse-mode automatic differentiation tape
// over tensor.Matrix values. It replaces the role PyTorch plays in the
// original TASER implementation.
//
// A Graph records one forward pass; Backward replays the tape in reverse,
// accumulating gradients into each Var's Grad matrix. Parameters are Vars
// created once with NewParam and reused across graphs; their gradients
// persist until the optimizer zeroes them. Intermediate Vars are created by
// the Graph's operator methods and live only as long as the graph.
//
// Graphs are reusable: Reset truncates the tape and recycles every
// intermediate, so one Graph can serve an unbounded stream of
// forward–backward passes with O(1) amortized heap allocations. The tape is a
// slice of value-typed entries dispatched by opcode (not per-op closures, so
// recording allocates nothing once the slice is warm), and a Graph built with
// NewWithArena draws every intermediate Val/Grad — plus caller scratch via
// Scratch and Ints — from an attached tensor.Arena that Reset returns in one
// stroke. The ownership contract is DESIGN.md §7: everything produced by a
// graph op or Scratch call dies at Reset; copy out anything that must
// survive.
//
// Beyond the usual dense primitives, the package provides the fused grouped
// operations TASER's models need: per-neighborhood attention scoring and
// combination (TGAT, Eq. 7) and shared-weight token mixing over fixed-size
// neighborhoods (GraphMixer / the adaptive sampler's MLP-Mixer decoder,
// Eqs. 9 and 16).
package autograd

import (
	"fmt"

	"taser/internal/tensor"
)

// Var is a node in the autograd graph: a value and, if gradients are
// required, an accumulator of the same shape.
type Var struct {
	Val  *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam wraps m as a trainable parameter (gradient allocated). Parameters
// are heap-allocated and never recycled by Graph.Reset — they outlive every
// graph that records them.
func NewParam(m *tensor.Matrix) *Var {
	return &Var{Val: m, Grad: tensor.New(m.Rows, m.Cols)}
}

// NewConst wraps m as a constant (no gradient is ever accumulated). For
// constants created inside a step's forward pass, prefer Graph.Const, which
// recycles the Var header across Resets.
func NewConst(m *tensor.Matrix) *Var {
	return &Var{Val: m}
}

// NeedsGrad reports whether v participates in differentiation.
func (v *Var) NeedsGrad() bool { return v != nil && v.Grad != nil }

// Rows and Cols expose the underlying shape.
func (v *Var) Rows() int { return v.Val.Rows }
func (v *Var) Cols() int { return v.Val.Cols }

// varChunkSize is the Var-header slab granularity.
const varChunkSize = 128

// intChunkSize is the minimum Ints slab length.
const intChunkSize = 4096

// Graph records forward passes. The zero of reuse: after Reset the same Graph
// replays the same op sequence without touching the heap (arena-backed
// matrices, recycled Var headers, a truncated-in-place tape).
type Graph struct {
	tape  []tapeEntry
	arena *tensor.Arena

	// Var headers are handed out sequentially from fixed-size chunks and
	// rewound (not freed) on Reset.
	varChunks [][]Var
	nvars     int

	// varRefs backs the input lists of variadic ops (ConcatCols): tape
	// entries reference sub-slices of it by offset.
	varRefs []*Var

	// ints backs Ints: chunked so earlier checkouts stay valid while later
	// ones grow the slab list. Rewound on Reset.
	ints    [][]int32
	intCur  int
	intOff  int

	// matScratch is transient per-call space for kernels taking []*Matrix.
	matScratch []*tensor.Matrix
}

// New returns an empty graph without an arena: the tape and Var headers are
// still reusable via Reset, but intermediate matrices come from the heap.
// This is the right constructor for one-shot graphs (tests, external tools).
func New() *Graph { return &Graph{} }

// NewWithArena returns an empty graph whose intermediates (op outputs,
// gradients, Scratch matrices) are checked out of arena; Reset both rewinds
// the tape and resets the arena. The arena must not be shared with another
// concurrently used graph.
func NewWithArena(arena *tensor.Arena) *Graph { return &Graph{arena: arena} }

// NewReusable is NewWithArena over a fresh private arena — the standard
// per-execution-context graph (one per training step stream, one per serving
// scheduler).
func NewReusable() *Graph { return NewWithArena(tensor.NewArena()) }

// Arena exposes the attached arena (nil for New graphs); tests use it to
// enable poison debugging and inspect checkout counts.
func (g *Graph) Arena() *tensor.Arena { return g.arena }

// Reset ends the current pass: the tape is truncated in place, Var headers
// and Ints slabs rewind, and every arena checkout (op outputs, gradients,
// Scratch matrices) is recycled. All Vars, matrices and slices obtained from
// this graph since the previous Reset are dead — anything that must survive
// a step has to be copied out first.
func (g *Graph) Reset() {
	clear(g.tape) // drop caller-owned references (idx, labels, coefs)
	g.tape = g.tape[:0]
	clear(g.varRefs)
	g.varRefs = g.varRefs[:0]
	g.nvars = 0
	g.intCur, g.intOff = 0, 0
	if g.arena != nil {
		g.arena.Reset()
	}
}

// Ops reports the number of recorded backward steps (for tests/metrics).
func (g *Graph) Ops() int { return len(g.tape) }

func (g *Graph) push(e tapeEntry) { g.tape = append(g.tape, e) }

// newVar hands out a Var header from the chunk pool.
func (g *Graph) newVar(val, grad *tensor.Matrix) *Var {
	ci, off := g.nvars/varChunkSize, g.nvars%varChunkSize
	if ci == len(g.varChunks) {
		g.varChunks = append(g.varChunks, make([]Var, varChunkSize))
	}
	v := &g.varChunks[ci][off]
	v.Val, v.Grad = val, grad
	g.nvars++
	return v
}

// alloc returns a zeroed r×c matrix from the arena (or the heap without one).
func (g *Graph) alloc(r, c int) *tensor.Matrix {
	if g.arena != nil {
		return g.arena.Get(r, c)
	}
	return tensor.New(r, c)
}

// out allocates a result Var; it carries a gradient buffer iff any input
// requires gradients.
func (g *Graph) out(rows, cols int, needsGrad bool) *Var {
	var grad *tensor.Matrix
	if needsGrad {
		grad = g.alloc(rows, cols)
	}
	return g.newVar(g.alloc(rows, cols), grad)
}

// Const wraps m as a constant whose Var header is recycled on Reset — the
// graph-lifetime counterpart of NewConst for matrices threaded into a forward
// pass (sliced features, masks, time columns). m itself is borrowed, never
// owned: Reset does not touch it.
func (g *Graph) Const(m *tensor.Matrix) *Var { return g.newVar(m, nil) }

// Scratch checks out a zeroed r×c matrix with graph lifetime that is NOT a
// tape node: callers fill it (time encodings, coefficient tables, mask
// columns) and typically wrap it with Const or pass it to a *Const op. It is
// recycled at Reset like every other intermediate.
func (g *Graph) Scratch(r, c int) *tensor.Matrix { return g.alloc(r, c) }

// Ints checks out an int32 slice of length n with graph lifetime (gather
// index vectors live as long as the tape that references them). Contents are
// unspecified — callers must fully overwrite. Recycled at Reset.
func (g *Graph) Ints(n int) []int32 {
	for {
		if g.intCur < len(g.ints) {
			chunk := g.ints[g.intCur]
			if g.intOff+n <= len(chunk) {
				s := chunk[g.intOff : g.intOff+n : g.intOff+n]
				g.intOff += n
				return s
			}
			g.intCur++
			g.intOff = 0
			continue
		}
		size := intChunkSize
		if n > size {
			size = n
		}
		g.ints = append(g.ints, make([]int32, size))
	}
}

// Backward seeds d(loss)/d(loss)=1 and replays the tape in reverse. loss must
// be a 1×1 Var produced by this graph.
func (g *Graph) Backward(loss *Var) {
	if loss.Val.Rows != 1 || loss.Val.Cols != 1 {
		panic(fmt.Sprintf("autograd: Backward on %dx%d, want scalar", loss.Val.Rows, loss.Val.Cols))
	}
	if !loss.NeedsGrad() {
		panic("autograd: Backward on a constant loss")
	}
	loss.Grad.Data[0] = 1
	for i := len(g.tape) - 1; i >= 0; i-- {
		g.backstep(&g.tape[i])
	}
}

// --- dense primitives ---
// Each op computes its result eagerly and, when the output carries gradient,
// records one value-typed tape entry; the matching backward body lives in
// backstep (tape.go).

// MatMul returns a @ b.
func (g *Graph) MatMul(a, b *Var) *Var {
	o := g.out(a.Rows(), b.Cols(), a.NeedsGrad() || b.NeedsGrad())
	tensor.MatMulInto(o.Val, a.Val, b.Val)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opMatMul, out: o, a: a, b: b})
	}
	return o
}

// Add returns a + b (same shape).
func (g *Graph) Add(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.AddInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opAdd, out: o, a: a, b: b})
	}
	return o
}

// Sub returns a - b.
func (g *Graph) Sub(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.SubInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opSub, out: o, a: a, b: b})
	}
	return o
}

// Mul returns the Hadamard product a ⊙ b.
func (g *Graph) Mul(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.MulInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opMul, out: o, a: a, b: b})
	}
	return o
}

// Scale returns s·a for a constant scalar s.
func (g *Graph) Scale(a *Var, s float64) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.ScaleInPlace(s)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opScale, out: o, a: a, scalar: s})
	}
	return o
}

// AddBias broadcasts the 1×C row vector b over every row of a.
func (g *Graph) AddBias(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.AddRowVecInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opAddBias, out: o, a: a, b: b})
	}
	return o
}

// ConcatCols concatenates parts along the column axis.
func (g *Graph) ConcatCols(parts ...*Var) *Var {
	rows := parts[0].Rows()
	cols := 0
	needs := false
	g.matScratch = g.matScratch[:0]
	for _, p := range parts {
		cols += p.Cols()
		needs = needs || p.NeedsGrad()
		g.matScratch = append(g.matScratch, p.Val)
	}
	o := g.out(rows, cols, needs)
	tensor.ConcatColsInto(o.Val, g.matScratch...)
	if o.NeedsGrad() {
		// The variadic slice must not be retained (it may live on the
		// caller's stack); copy the part list into the graph-owned ref table.
		lo := len(g.varRefs)
		g.varRefs = append(g.varRefs, parts...)
		g.push(tapeEntry{op: opConcatCols, out: o, refLo: lo, refHi: len(g.varRefs)})
	}
	return o
}

// Reshape reinterprets a's row-major data as rows×cols (element count must
// match). Used to fold (B·m)×1 score columns into B×m neighborhoods.
func (g *Graph) Reshape(a *Var, rows, cols int) *Var {
	if rows*cols != a.Rows()*a.Cols() {
		panic(fmt.Sprintf("autograd: Reshape %dx%d to %dx%d", a.Rows(), a.Cols(), rows, cols))
	}
	o := g.out(rows, cols, a.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opReshape, out: o, a: a})
	}
	return o
}

// GatherRows selects rows idx from src (src may be a large embedding table).
// idx is borrowed until Backward/Reset; Graph.Ints provides index storage
// with exactly that lifetime.
func (g *Graph) GatherRows(src *Var, idx []int32) *Var {
	o := g.out(len(idx), src.Cols(), src.NeedsGrad())
	tensor.GatherRowsInto(o.Val, src.Val, idx)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opGatherRows, out: o, a: src, idx: idx})
	}
	return o
}
