// Package autograd implements a reverse-mode automatic differentiation tape
// over tensor.Matrix values. It replaces the role PyTorch plays in the
// original TASER implementation.
//
// A Graph records one forward pass; Backward replays the tape in reverse,
// accumulating gradients into each Var's Grad matrix. Parameters are Vars
// created once with NewParam and reused across graphs; their gradients
// persist until the optimizer zeroes them. Intermediate Vars are created by
// the Graph's operator methods and live only as long as the graph.
//
// Beyond the usual dense primitives, the package provides the fused grouped
// operations TASER's models need: per-neighborhood attention scoring and
// combination (TGAT, Eq. 7) and shared-weight token mixing over fixed-size
// neighborhoods (GraphMixer / the adaptive sampler's MLP-Mixer decoder,
// Eqs. 9 and 16).
package autograd

import (
	"fmt"

	"taser/internal/tensor"
)

// Var is a node in the autograd graph: a value and, if gradients are
// required, an accumulator of the same shape.
type Var struct {
	Val  *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam wraps m as a trainable parameter (gradient allocated).
func NewParam(m *tensor.Matrix) *Var {
	return &Var{Val: m, Grad: tensor.New(m.Rows, m.Cols)}
}

// NewConst wraps m as a constant (no gradient is ever accumulated).
func NewConst(m *tensor.Matrix) *Var {
	return &Var{Val: m}
}

// NeedsGrad reports whether v participates in differentiation.
func (v *Var) NeedsGrad() bool { return v != nil && v.Grad != nil }

// Rows and Cols expose the underlying shape.
func (v *Var) Rows() int { return v.Val.Rows }
func (v *Var) Cols() int { return v.Val.Cols }

// Graph records a single forward pass.
type Graph struct {
	tape []func()
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Ops reports the number of recorded backward steps (for tests/metrics).
func (g *Graph) Ops() int { return len(g.tape) }

func (g *Graph) push(backward func()) { g.tape = append(g.tape, backward) }

// out allocates a result Var; it carries a gradient buffer iff any input
// requires gradients.
func (g *Graph) out(rows, cols int, needsGrad bool) *Var {
	v := &Var{Val: tensor.New(rows, cols)}
	if needsGrad {
		v.Grad = tensor.New(rows, cols)
	}
	return v
}

// Backward seeds d(loss)/d(loss)=1 and replays the tape in reverse. loss must
// be a 1×1 Var produced by this graph.
func (g *Graph) Backward(loss *Var) {
	if loss.Val.Rows != 1 || loss.Val.Cols != 1 {
		panic(fmt.Sprintf("autograd: Backward on %dx%d, want scalar", loss.Val.Rows, loss.Val.Cols))
	}
	if !loss.NeedsGrad() {
		panic("autograd: Backward on a constant loss")
	}
	loss.Grad.Data[0] = 1
	for i := len(g.tape) - 1; i >= 0; i-- {
		g.tape[i]()
	}
}

// --- dense primitives ---

// MatMul returns a @ b.
func (g *Graph) MatMul(a, b *Var) *Var {
	o := g.out(a.Rows(), b.Cols(), a.NeedsGrad() || b.NeedsGrad())
	tensor.MatMulInto(o.Val, a.Val, b.Val)
	if o.NeedsGrad() {
		g.push(func() {
			if a.NeedsGrad() {
				// dA += dO @ Bᵀ
				tmp := tensor.MatMulTransB(o.Grad, b.Val)
				a.Grad.AddInPlace(tmp)
			}
			if b.NeedsGrad() {
				// dB += Aᵀ @ dO
				tensor.MatMulTransAInto(b.Grad, a.Val, o.Grad)
			}
		})
	}
	return o
}

// Add returns a + b (same shape).
func (g *Graph) Add(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.AddInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(func() {
			if a.NeedsGrad() {
				a.Grad.AddInPlace(o.Grad)
			}
			if b.NeedsGrad() {
				b.Grad.AddInPlace(o.Grad)
			}
		})
	}
	return o
}

// Sub returns a - b.
func (g *Graph) Sub(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.SubInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(func() {
			if a.NeedsGrad() {
				a.Grad.AddInPlace(o.Grad)
			}
			if b.NeedsGrad() {
				b.Grad.SubInPlace(o.Grad)
			}
		})
	}
	return o
}

// Mul returns the Hadamard product a ⊙ b.
func (g *Graph) Mul(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.MulInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(func() {
			if a.NeedsGrad() {
				for i, gv := range o.Grad.Data {
					a.Grad.Data[i] += gv * b.Val.Data[i]
				}
			}
			if b.NeedsGrad() {
				for i, gv := range o.Grad.Data {
					b.Grad.Data[i] += gv * a.Val.Data[i]
				}
			}
		})
	}
	return o
}

// Scale returns s·a for a constant scalar s.
func (g *Graph) Scale(a *Var, s float64) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.ScaleInPlace(s)
	if o.NeedsGrad() {
		g.push(func() { a.Grad.AxpyInPlace(s, o.Grad) })
	}
	return o
}

// AddBias broadcasts the 1×C row vector b over every row of a.
func (g *Graph) AddBias(a, b *Var) *Var {
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad() || b.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	o.Val.AddRowVecInPlace(b.Val)
	if o.NeedsGrad() {
		g.push(func() {
			if a.NeedsGrad() {
				a.Grad.AddInPlace(o.Grad)
			}
			if b.NeedsGrad() {
				for i := 0; i < o.Grad.Rows; i++ {
					row := o.Grad.Row(i)
					for j, v := range row {
						b.Grad.Data[j] += v
					}
				}
			}
		})
	}
	return o
}

// ConcatCols concatenates parts along the column axis.
func (g *Graph) ConcatCols(parts ...*Var) *Var {
	rows := parts[0].Rows()
	cols := 0
	needs := false
	mats := make([]*tensor.Matrix, len(parts))
	for i, p := range parts {
		cols += p.Cols()
		needs = needs || p.NeedsGrad()
		mats[i] = p.Val
	}
	o := g.out(rows, cols, needs)
	tensor.ConcatColsInto(o.Val, mats...)
	if o.NeedsGrad() {
		g.push(func() {
			off := 0
			for _, p := range parts {
				w := p.Cols()
				if p.NeedsGrad() {
					for i := 0; i < rows; i++ {
						src := o.Grad.Row(i)[off : off+w]
						dst := p.Grad.Row(i)
						for j, v := range src {
							dst[j] += v
						}
					}
				}
				off += w
			}
		})
	}
	return o
}

// Reshape reinterprets a's row-major data as rows×cols (element count must
// match). Used to fold (B·m)×1 score columns into B×m neighborhoods.
func (g *Graph) Reshape(a *Var, rows, cols int) *Var {
	if rows*cols != a.Rows()*a.Cols() {
		panic(fmt.Sprintf("autograd: Reshape %dx%d to %dx%d", a.Rows(), a.Cols(), rows, cols))
	}
	o := g.out(rows, cols, a.NeedsGrad())
	copy(o.Val.Data, a.Val.Data)
	if o.NeedsGrad() {
		g.push(func() {
			for i, v := range o.Grad.Data {
				a.Grad.Data[i] += v
			}
		})
	}
	return o
}

// GatherRows selects rows idx from src (src may be a large embedding table).
func (g *Graph) GatherRows(src *Var, idx []int32) *Var {
	o := g.out(len(idx), src.Cols(), src.NeedsGrad())
	tensor.GatherRowsInto(o.Val, src.Val, idx)
	if o.NeedsGrad() {
		g.push(func() { tensor.ScatterAddRows(src.Grad, o.Grad, idx) })
	}
	return o
}
