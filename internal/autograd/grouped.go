package autograd

import "taser/internal/tensor"

// GroupedScore computes per-neighborhood attention logits: with keys holding
// B groups of `group` consecutive rows, out[g][k] = q.Row(g)·keys.Row(g·group+k).
// This is q·Kᵀ restricted to each root's own neighborhood (TGAT, Eq. 7).
func (g *Graph) GroupedScore(q, keys *Var, group int) *Var {
	b := keys.Rows() / group
	o := g.out(b, group, q.NeedsGrad() || keys.NeedsGrad())
	tensor.GroupedScoreInto(o.Val, q.Val, keys.Val, group)
	if o.NeedsGrad() {
		g.push(func() {
			for gi := 0; gi < b; gi++ {
				dS := o.Grad.Row(gi)
				qrow := q.Val.Row(gi)
				for k := 0; k < group; k++ {
					ds := dS[k]
					if ds == 0 {
						continue
					}
					krow := keys.Val.Row(gi*group + k)
					if q.NeedsGrad() {
						dq := q.Grad.Row(gi)
						for d, kv := range krow {
							dq[d] += ds * kv
						}
					}
					if keys.NeedsGrad() {
						dk := keys.Grad.Row(gi*group + k)
						for d, qv := range qrow {
							dk[d] += ds * qv
						}
					}
				}
			}
		})
	}
	return o
}

// GroupedWeightedSum combines values per neighborhood:
// out.Row(g) = Σ_k w[g][k]·vals.Row(g·group+k). With w = softmax scores this
// completes the attention combiner.
func (g *Graph) GroupedWeightedSum(w, vals *Var, group int) *Var {
	b := vals.Rows() / group
	o := g.out(b, vals.Cols(), w.NeedsGrad() || vals.NeedsGrad())
	tensor.GroupedWeightedSumInto(o.Val, w.Val, vals.Val, group)
	if o.NeedsGrad() {
		g.push(func() {
			for gi := 0; gi < b; gi++ {
				dOut := o.Grad.Row(gi)
				wrow := w.Val.Row(gi)
				for k := 0; k < group; k++ {
					vrow := vals.Val.Row(gi*group + k)
					if w.NeedsGrad() {
						var dot float64
						for j, v := range vrow {
							dot += dOut[j] * v
						}
						w.Grad.Row(gi)[k] += dot
					}
					if vals.NeedsGrad() {
						dv := vals.Grad.Row(gi*group + k)
						wv := wrow[k]
						for j, dv2 := range dOut {
							dv[j] += wv * dv2
						}
					}
				}
			}
		})
	}
	return o
}

// GroupedMatMulLeft applies a shared K2×K weight on the left of every K×C
// group of src: out group g = w @ src group g. This is MLP-Mixer token mixing
// (Eq. 16) batched over neighborhoods.
func (g *Graph) GroupedMatMulLeft(w, src *Var, group int) *Var {
	k2 := w.Rows()
	b := src.Rows() / group
	o := g.out(b*k2, src.Cols(), w.NeedsGrad() || src.NeedsGrad())
	tensor.GroupedMatMulLeftInto(o.Val, w.Val, src.Val, group)
	if o.NeedsGrad() {
		g.push(func() {
			c := src.Cols()
			for gi := 0; gi < b; gi++ {
				for i := 0; i < k2; i++ {
					dOut := o.Grad.Row(gi*k2 + i)
					if w.NeedsGrad() {
						dw := w.Grad.Row(i)
						for k := 0; k < group; k++ {
							srow := src.Val.Row(gi*group + k)
							var dot float64
							for j := 0; j < c; j++ {
								dot += dOut[j] * srow[j]
							}
							dw[k] += dot
						}
					}
					if src.NeedsGrad() {
						wrow := w.Val.Row(i)
						for k := 0; k < group; k++ {
							wv := wrow[k]
							if wv == 0 {
								continue
							}
							ds := src.Grad.Row(gi*group + k)
							for j, d := range dOut {
								ds[j] += wv * d
							}
						}
					}
				}
			}
		})
	}
	return o
}

// MulColVec scales every row i of a by the constant col[i] (an R×1 matrix).
// With a 0/1 column this masks out padded neighborhood rows.
func (g *Graph) MulColVec(a *Var, col *tensor.Matrix) *Var {
	if col.Rows != a.Rows() || col.Cols != 1 {
		panic("autograd: MulColVec wants an R×1 constant column")
	}
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i := 0; i < a.Rows(); i++ {
		s := col.Data[i]
		src := a.Val.Row(i)
		dst := o.Val.Row(i)
		for j, v := range src {
			dst[j] = v * s
		}
	}
	if o.NeedsGrad() {
		g.push(func() {
			for i := 0; i < a.Rows(); i++ {
				s := col.Data[i]
				if s == 0 {
					continue
				}
				src := o.Grad.Row(i)
				dst := a.Grad.Row(i)
				for j, v := range src {
					dst[j] += v * s
				}
			}
		})
	}
	return o
}

// RepeatRows tiles each row of a `times` times consecutively:
// out rows [i·times, (i+1)·times) all equal a.Row(i). It broadcasts per-root
// vectors (e.g. the query's source embedding) across each neighborhood.
func (g *Graph) RepeatRows(a *Var, times int) *Var {
	o := g.out(a.Rows()*times, a.Cols(), a.NeedsGrad())
	for i := 0; i < a.Rows(); i++ {
		src := a.Val.Row(i)
		for t := 0; t < times; t++ {
			copy(o.Val.Row(i*times+t), src)
		}
	}
	if o.NeedsGrad() {
		g.push(func() {
			for i := 0; i < a.Rows(); i++ {
				dst := a.Grad.Row(i)
				for t := 0; t < times; t++ {
					src := o.Grad.Row(i*times + t)
					for j, v := range src {
						dst[j] += v
					}
				}
			}
		})
	}
	return o
}
