package autograd

import "taser/internal/tensor"

// GroupedScore computes per-neighborhood attention logits: with keys holding
// B groups of `group` consecutive rows, out[g][k] = q.Row(g)·keys.Row(g·group+k).
// This is q·Kᵀ restricted to each root's own neighborhood (TGAT, Eq. 7).
func (g *Graph) GroupedScore(q, keys *Var, group int) *Var {
	b := keys.Rows() / group
	o := g.out(b, group, q.NeedsGrad() || keys.NeedsGrad())
	tensor.GroupedScoreInto(o.Val, q.Val, keys.Val, group)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opGroupedScore, out: o, a: q, b: keys, group: group})
	}
	return o
}

// GroupedWeightedSum combines values per neighborhood:
// out.Row(g) = Σ_k w[g][k]·vals.Row(g·group+k). With w = softmax scores this
// completes the attention combiner.
func (g *Graph) GroupedWeightedSum(w, vals *Var, group int) *Var {
	b := vals.Rows() / group
	o := g.out(b, vals.Cols(), w.NeedsGrad() || vals.NeedsGrad())
	tensor.GroupedWeightedSumInto(o.Val, w.Val, vals.Val, group)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opGroupedWeightedSum, out: o, a: w, b: vals, group: group})
	}
	return o
}

// GroupedMatMulLeft applies a shared K2×K weight on the left of every K×C
// group of src: out group g = w @ src group g. This is MLP-Mixer token mixing
// (Eq. 16) batched over neighborhoods.
func (g *Graph) GroupedMatMulLeft(w, src *Var, group int) *Var {
	k2 := w.Rows()
	b := src.Rows() / group
	o := g.out(b*k2, src.Cols(), w.NeedsGrad() || src.NeedsGrad())
	tensor.GroupedMatMulLeftInto(o.Val, w.Val, src.Val, group)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opGroupedMatMulLeft, out: o, a: w, b: src, group: group})
	}
	return o
}

// MulColVec scales every row i of a by the constant col[i] (an R×1 matrix).
// With a 0/1 column this masks out padded neighborhood rows. col is borrowed
// until Backward/Reset.
func (g *Graph) MulColVec(a *Var, col *tensor.Matrix) *Var {
	if col.Rows != a.Rows() || col.Cols != 1 {
		panic("autograd: MulColVec wants an R×1 constant column")
	}
	o := g.out(a.Rows(), a.Cols(), a.NeedsGrad())
	for i := 0; i < a.Rows(); i++ {
		s := col.Data[i]
		src := a.Val.Row(i)
		dst := o.Val.Row(i)
		for j, v := range src {
			dst[j] = v * s
		}
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opMulColVec, out: o, a: a, coef: col})
	}
	return o
}

// RepeatRows tiles each row of a `times` times consecutively:
// out rows [i·times, (i+1)·times) all equal a.Row(i). It broadcasts per-root
// vectors (e.g. the query's source embedding) across each neighborhood.
func (g *Graph) RepeatRows(a *Var, times int) *Var {
	o := g.out(a.Rows()*times, a.Cols(), a.NeedsGrad())
	for i := 0; i < a.Rows(); i++ {
		src := a.Val.Row(i)
		for t := 0; t < times; t++ {
			copy(o.Val.Row(i*times+t), src)
		}
	}
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opRepeatRows, out: o, a: a, group: times})
	}
	return o
}
