package autograd

import (
	"math"
	"testing"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

// gradCheck compares the analytic gradient of params against central finite
// differences of the scalar produced by forward. forward must rebuild the
// whole graph from the current parameter values on every call.
func gradCheck(t *testing.T, params []*Var, forward func(g *Graph) *Var, tol float64) {
	t.Helper()
	// Analytic pass.
	for _, p := range params {
		p.Grad.Zero()
	}
	g := New()
	loss := forward(g)
	g.Backward(loss)

	const h = 1e-6
	for pi, p := range params {
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + h
			up := forward(New()).Val.Data[0]
			p.Val.Data[i] = orig - h
			down := forward(New()).Val.Data[0]
			p.Val.Data[i] = orig
			fd := (up - down) / (2 * h)
			an := p.Grad.Data[i]
			scale := math.Max(1, math.Max(math.Abs(fd), math.Abs(an)))
			if math.Abs(fd-an)/scale > tol {
				t.Fatalf("param %d elem %d: analytic %v, finite-diff %v", pi, i, an, fd)
			}
		}
	}
}

func TestGradMatMul(t *testing.T) {
	rng := mathx.NewRNG(1)
	a := NewParam(tensor.Randn(3, 4, 1, rng))
	b := NewParam(tensor.Randn(4, 2, 1, rng))
	gradCheck(t, []*Var{a, b}, func(g *Graph) *Var {
		return g.MeanAll(g.MatMul(a, b))
	}, 1e-6)
}

func TestGradAddSubMulScale(t *testing.T) {
	rng := mathx.NewRNG(2)
	a := NewParam(tensor.Randn(2, 3, 1, rng))
	b := NewParam(tensor.Randn(2, 3, 1, rng))
	gradCheck(t, []*Var{a, b}, func(g *Graph) *Var {
		x := g.Add(a, b)
		y := g.Sub(x, g.Scale(b, 0.5))
		z := g.Mul(y, a)
		return g.SumAll(z)
	}, 1e-6)
}

func TestGradAddBias(t *testing.T) {
	rng := mathx.NewRNG(3)
	a := NewParam(tensor.Randn(4, 3, 1, rng))
	bias := NewParam(tensor.Randn(1, 3, 1, rng))
	gradCheck(t, []*Var{a, bias}, func(g *Graph) *Var {
		return g.MeanAll(g.Sigmoid(g.AddBias(a, bias)))
	}, 1e-6)
}

func TestGradConcatCols(t *testing.T) {
	rng := mathx.NewRNG(4)
	a := NewParam(tensor.Randn(3, 2, 1, rng))
	b := NewParam(tensor.Randn(3, 4, 1, rng))
	w := NewParam(tensor.Randn(6, 1, 1, rng))
	gradCheck(t, []*Var{a, b, w}, func(g *Graph) *Var {
		return g.MeanAll(g.MatMul(g.ConcatCols(a, b), w))
	}, 1e-6)
}

func TestGradGatherRows(t *testing.T) {
	rng := mathx.NewRNG(5)
	table := NewParam(tensor.Randn(5, 3, 1, rng))
	idx := []int32{4, 0, 0, 2}
	gradCheck(t, []*Var{table}, func(g *Graph) *Var {
		return g.SumAll(g.Tanh(g.GatherRows(table, idx)))
	}, 1e-6)
}

func TestGradActivations(t *testing.T) {
	rng := mathx.NewRNG(6)
	for name, f := range map[string]func(g *Graph, v *Var) *Var{
		"sigmoid":   func(g *Graph, v *Var) *Var { return g.Sigmoid(v) },
		"tanh":      func(g *Graph, v *Var) *Var { return g.Tanh(v) },
		"gelu":      func(g *Graph, v *Var) *Var { return g.GELU(v) },
		"leakyrelu": func(g *Graph, v *Var) *Var { return g.LeakyReLU(v, 0.2) },
		"cos":       func(g *Graph, v *Var) *Var { return g.Cos(v) },
	} {
		a := NewParam(tensor.Randn(3, 4, 1, rng))
		// Nudge values away from ReLU kinks.
		for i := range a.Val.Data {
			if math.Abs(a.Val.Data[i]) < 1e-3 {
				a.Val.Data[i] = 0.1
			}
		}
		act := f
		gradCheck(t, []*Var{a}, func(g *Graph) *Var {
			return g.MeanAll(act(g, a))
		}, 1e-5)
		_ = name
	}
}

func TestGradReLU(t *testing.T) {
	a := NewParam(tensor.FromSlice(1, 4, []float64{-1, 2, -3, 4}))
	gradCheck(t, []*Var{a}, func(g *Graph) *Var {
		return g.SumAll(g.ReLU(a))
	}, 1e-6)
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := mathx.NewRNG(7)
	a := NewParam(tensor.Randn(3, 5, 1, rng))
	coef := tensor.Randn(3, 5, 1, rng)
	gradCheck(t, []*Var{a}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.SoftmaxRows(a), coef)
	}, 1e-6)
}

func TestGradLogSoftmaxRows(t *testing.T) {
	rng := mathx.NewRNG(8)
	a := NewParam(tensor.Randn(2, 6, 1, rng))
	coef := tensor.Randn(2, 6, 1, rng)
	gradCheck(t, []*Var{a}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.LogSoftmaxRows(a), coef)
	}, 1e-6)
}

func TestGradGroupMean(t *testing.T) {
	rng := mathx.NewRNG(9)
	a := NewParam(tensor.Randn(6, 3, 1, rng))
	gradCheck(t, []*Var{a}, func(g *Graph) *Var {
		return g.MeanAll(g.Sigmoid(g.GroupMean(a, 3)))
	}, 1e-6)
}

func TestGradBCEWithLogits(t *testing.T) {
	rng := mathx.NewRNG(10)
	logits := NewParam(tensor.Randn(6, 1, 1, rng))
	labels := []float64{1, 0, 1, 1, 0, 0}
	gradCheck(t, []*Var{logits}, func(g *Graph) *Var {
		return g.BCEWithLogits(logits, labels)
	}, 1e-6)
}

func TestGradLayerNorm(t *testing.T) {
	rng := mathx.NewRNG(11)
	a := NewParam(tensor.Randn(4, 5, 1, rng))
	gain := NewParam(tensor.Randn(1, 5, 0.5, rng))
	gain.Val.AddRowVecInPlace(onesRow(5)) // keep gains near 1
	bias := NewParam(tensor.Randn(1, 5, 0.5, rng))
	coef := tensor.Randn(4, 5, 1, rng)
	gradCheck(t, []*Var{a, gain, bias}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.LayerNormRows(a, gain, bias), coef)
	}, 1e-4)
}

func onesRow(c int) *tensor.Matrix {
	m := tensor.New(1, c)
	m.Fill(1)
	return m
}

func TestGradGroupedScore(t *testing.T) {
	rng := mathx.NewRNG(12)
	const b, k, d = 3, 4, 5
	q := NewParam(tensor.Randn(b, d, 1, rng))
	keys := NewParam(tensor.Randn(b*k, d, 1, rng))
	coef := tensor.Randn(b, k, 1, rng)
	gradCheck(t, []*Var{q, keys}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.GroupedScore(q, keys, k), coef)
	}, 1e-6)
}

func TestGradGroupedWeightedSum(t *testing.T) {
	rng := mathx.NewRNG(13)
	const b, k, d = 2, 3, 4
	w := NewParam(tensor.Randn(b, k, 1, rng))
	vals := NewParam(tensor.Randn(b*k, d, 1, rng))
	coef := tensor.Randn(b, d, 1, rng)
	gradCheck(t, []*Var{w, vals}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.GroupedWeightedSum(w, vals, k), coef)
	}, 1e-6)
}

func TestGradGroupedMatMulLeft(t *testing.T) {
	rng := mathx.NewRNG(14)
	const b, k, k2, c = 2, 3, 4, 5
	w := NewParam(tensor.Randn(k2, k, 1, rng))
	src := NewParam(tensor.Randn(b*k, c, 1, rng))
	coef := tensor.Randn(b*k2, c, 1, rng)
	gradCheck(t, []*Var{w, src}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.GroupedMatMulLeft(w, src, k), coef)
	}, 1e-6)
}

func TestGradRepeatRows(t *testing.T) {
	rng := mathx.NewRNG(15)
	a := NewParam(tensor.Randn(3, 4, 1, rng))
	coef := tensor.Randn(6, 4, 1, rng)
	gradCheck(t, []*Var{a}, func(g *Graph) *Var {
		return g.WeightedSumConst(g.RepeatRows(a, 2), coef)
	}, 1e-6)
}

func TestGradFullAttentionStack(t *testing.T) {
	// End-to-end: a miniature grouped-attention block exactly like TGAT's
	// combiner, checked against finite differences through softmax, scoring
	// and the weighted sum simultaneously.
	rng := mathx.NewRNG(16)
	const b, k, d = 2, 3, 4
	q := NewParam(tensor.Randn(b, d, 0.5, rng))
	keys := NewParam(tensor.Randn(b*k, d, 0.5, rng))
	vals := NewParam(tensor.Randn(b*k, d, 0.5, rng))
	coef := tensor.Randn(b, d, 1, rng)
	gradCheck(t, []*Var{q, keys, vals}, func(g *Graph) *Var {
		scores := g.Scale(g.GroupedScore(q, keys, k), 1/math.Sqrt(d))
		attn := g.SoftmaxRows(scores)
		out := g.GroupedWeightedSum(attn, vals, k)
		return g.WeightedSumConst(out, coef)
	}, 1e-5)
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	g := New()
	a := NewParam(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Backward(a)
}

func TestConstHasNoGrad(t *testing.T) {
	g := New()
	c := NewConst(tensor.FromSlice(1, 2, []float64{1, 2}))
	p := NewParam(tensor.FromSlice(2, 1, []float64{3, 4}))
	loss := g.MeanAll(g.MatMul(c, p))
	g.Backward(loss)
	if c.Grad != nil {
		t.Fatal("const must not accumulate grad")
	}
	if p.Grad.Data[0] == 0 {
		t.Fatal("param grad must be populated")
	}
}

func TestParamReuseAccumulates(t *testing.T) {
	// Using the same parameter twice must sum both contribution paths.
	p := NewParam(tensor.FromSlice(1, 1, []float64{3}))
	g := New()
	// loss = p*p → dp = 2p = 6
	loss := g.SumAll(g.Mul(p, p))
	g.Backward(loss)
	if math.Abs(p.Grad.Data[0]-6) > 1e-12 {
		t.Fatalf("grad %v want 6", p.Grad.Data[0])
	}
}

func TestGradAccumulatesAcrossGraphs(t *testing.T) {
	p := NewParam(tensor.FromSlice(1, 1, []float64{2}))
	for i := 0; i < 3; i++ {
		g := New()
		g.Backward(g.SumAll(g.Scale(p, 1)))
	}
	if p.Grad.Data[0] != 3 {
		t.Fatalf("grads must accumulate across graphs until zeroed: %v", p.Grad.Data[0])
	}
}
