package autograd

import (
	"math"
	"testing"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

// reuseLabels lives at package scope so the warm-pass allocation count
// measures the graph, not the test's own literal (real callers reuse their
// label buffers across steps the same way).
var reuseLabels = []float64{1, 0, 1, 1, 0, 0}

// reuseLoss exercises every op family on one graph: dense primitives, shape
// ops, activations, grouped kernels, reductions and both masked-softmax
// paths. It is deterministic given the params.
func reuseLoss(g *Graph, p map[string]*Var) *Var {
	const groups, k = 3, 4 // p["keys"] is (groups·k)×d
	x := g.AddBias(g.MatMul(p["x"], p["w"]), p["b"])
	x = g.LayerNormRows(x, p["gain"], p["bias"])
	x = g.GELU(x)

	q := g.Tanh(g.MatMul(p["x"], p["w"]))
	scores := g.Scale(g.GroupedScore(q, p["keys"], k), 1/math.Sqrt(k))
	attn := g.SoftmaxRows(scores)
	agg := g.GroupedWeightedSum(attn, p["vals"], k)

	mix := g.GroupedMatMulLeft(p["mix"], p["keys"], k)
	mean := g.GroupMean(mix, p["mix"].Rows())

	idx := g.Ints(2 * groups)
	for i := range idx {
		idx[i] = int32(i % groups)
	}
	gathered := g.GatherRows(g.ConcatCols(x, agg, mean), idx)
	rep := g.RepeatRows(g.Sub(g.Mul(x, x), x), 2)
	rep = g.ConcatCols(rep, rep, rep) // widen to match gathered

	col := g.Scratch(2*groups, 1)
	for i := range col.Data {
		col.Data[i] = float64(i%2) + 0.5
	}
	masked := g.MulColVec(g.Add(gathered, rep), col)

	logits := g.Reshape(g.MatMul(g.LeakyReLU(masked, 0.2), p["head"]), 2*groups, 1)
	bce := g.BCEWithLogits(g.Sigmoid(logits), reuseLabels)

	coef := g.Scratch(2*groups, 1)
	for i := range coef.Data {
		coef.Data[i] = 0.1 * float64(i+1)
	}
	aux := g.WeightedSumConst(g.LogSoftmaxRows(g.Cos(logits)), coef)
	return g.Add(g.MeanAll(g.ReLU(bce)), g.SumAll(aux))
}

func reuseParams(seed uint64) map[string]*Var {
	rng := mathx.NewRNG(seed)
	const groups, k, d = 3, 4, 5
	gain := tensor.Randn(1, d, 0.2, rng)
	gain.AddRowVecInPlace(onesRow(d))
	return map[string]*Var{
		"x":    NewParam(tensor.Randn(groups, d, 1, rng)),
		"w":    NewParam(tensor.Randn(d, d, 1, rng)),
		"b":    NewParam(tensor.Randn(1, d, 1, rng)),
		"gain": NewParam(gain),
		"bias": NewParam(tensor.Randn(1, d, 0.2, rng)),
		"keys": NewParam(tensor.Randn(groups*k, d, 1, rng)),
		"vals": NewParam(tensor.Randn(groups*k, d, 1, rng)),
		"mix":  NewParam(tensor.Randn(2, k, 1, rng)),
		"head": NewParam(tensor.Randn(3*d, 1, 1, rng)),
	}
}

func runPass(g *Graph, p map[string]*Var) (loss float64, grads map[string][]float64) {
	for _, v := range p {
		v.Grad.Zero()
	}
	l := reuseLoss(g, p)
	g.Backward(l)
	grads = make(map[string][]float64)
	for name, v := range p {
		grads[name] = append([]float64(nil), v.Grad.Data...)
	}
	return l.Val.Data[0], grads
}

// TestReusedGraphBitwiseEqualsFresh is the tape-reuse contract: running the
// same forward–backward on one arena-backed graph with Reset between passes
// yields bitwise-identical losses and parameter gradients to a fresh unpooled
// graph per pass — recycled slabs are indistinguishable from fresh matrices.
func TestReusedGraphBitwiseEqualsFresh(t *testing.T) {
	pFresh := reuseParams(42)
	pReuse := reuseParams(42)
	reused := NewReusable()
	reused.Arena().SetPoison(true) // poison must never leak into legit reuse
	for pass := 0; pass < 4; pass++ {
		fl, fg := runPass(New(), pFresh)
		reused.Reset()
		rl, rg := runPass(reused, pReuse)
		if fl != rl {
			t.Fatalf("pass %d: reused loss %v != fresh loss %v", pass, rl, fl)
		}
		for name, fv := range fg {
			for i, v := range fv {
				if rg[name][i] != v {
					t.Fatalf("pass %d: grad %q[%d] reused %v != fresh %v", pass, name, i, rg[name][i], v)
				}
			}
		}
	}
}

// TestReusedGraphGradcheck re-runs a finite-difference check against a graph
// that has already served (and Reset) several passes, pinning that tape reuse
// does not corrupt the backward bodies themselves.
func TestReusedGraphGradcheck(t *testing.T) {
	p := reuseParams(7)
	g := NewReusable()
	for i := 0; i < 3; i++ {
		g.Reset()
		runPass(g, p)
	}
	params := []*Var{p["x"], p["w"], p["gain"], p["keys"], p["mix"], p["head"]}
	// Analytic pass on the reused graph.
	for _, v := range p {
		v.Grad.Zero()
	}
	g.Reset()
	loss := reuseLoss(g, p)
	g.Backward(loss)
	const h = 1e-6
	for pi, prm := range params {
		for i := range prm.Val.Data {
			orig := prm.Val.Data[i]
			prm.Val.Data[i] = orig + h
			g.Reset()
			up := reuseLoss(g, p).Val.Data[0]
			prm.Val.Data[i] = orig - h
			g.Reset()
			down := reuseLoss(g, p).Val.Data[0]
			prm.Val.Data[i] = orig
			fd := (up - down) / (2 * h)
			an := prm.Grad.Data[i]
			scale := math.Max(1, math.Max(math.Abs(fd), math.Abs(an)))
			if math.Abs(fd-an)/scale > 1e-4 {
				t.Fatalf("param %d elem %d: analytic %v, finite-diff %v", pi, i, an, fd)
			}
		}
	}
}

// TestReusedGraphSteadyStateAllocFree asserts the tentpole property at the
// autograd layer: a warm forward–backward pass on an arena-backed graph
// performs zero heap allocations (everything — outputs, gradients, tape,
// scratch, index slabs — is recycled).
func TestReusedGraphSteadyStateAllocFree(t *testing.T) {
	p := reuseParams(11)
	g := NewReusable()
	pass := func() {
		g.Reset()
		l := reuseLoss(g, p)
		g.Backward(l)
	}
	for i := 0; i < 3; i++ {
		pass()
	}
	if allocs := testing.AllocsPerRun(50, pass); allocs > 0 {
		t.Fatalf("warm forward-backward allocates %.1f times, want 0", allocs)
	}
}

// TestPoisonFlagsUseAfterReset demonstrates the debug mode: a Var retained
// across Reset reads NaN instead of the next pass's data.
func TestPoisonFlagsUseAfterReset(t *testing.T) {
	g := NewReusable()
	g.Arena().SetPoison(true)
	a := NewParam(tensor.FromSlice(1, 2, []float64{1, 2}))
	stale := g.Scale(a, 2)
	g.Reset()
	if !math.IsNaN(stale.Val.Data[0]) {
		t.Fatalf("stale intermediate reads %v after Reset, want NaN under poison", stale.Val.Data[0])
	}
	// The graph itself keeps working.
	fresh := g.Scale(a, 2)
	if fresh.Val.Data[0] != 2 {
		t.Fatalf("post-Reset op = %v, want 2", fresh.Val.Data[0])
	}
}
