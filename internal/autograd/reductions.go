package autograd

import (
	"math"

	"taser/internal/tensor"
)

// MeanAll reduces a to its scalar mean.
func (g *Graph) MeanAll(a *Var) *Var {
	o := g.out(1, 1, a.NeedsGrad())
	o.Val.Data[0] = a.Val.Sum() / float64(len(a.Val.Data))
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opMeanAll, out: o, a: a})
	}
	return o
}

// SumAll reduces a to its scalar sum.
func (g *Graph) SumAll(a *Var) *Var {
	o := g.out(1, 1, a.NeedsGrad())
	o.Val.Data[0] = a.Val.Sum()
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opSumAll, out: o, a: a})
	}
	return o
}

// GroupMean averages each consecutive block of `group` rows (GraphMixer's
// neighborhood mean, Eq. 9).
func (g *Graph) GroupMean(a *Var, group int) *Var {
	o := g.out(a.Rows()/group, a.Cols(), a.NeedsGrad())
	tensor.GroupMeanInto(o.Val, a.Val, group)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opGroupMean, out: o, a: a, group: group})
	}
	return o
}

// WeightedSumConst returns the scalar Σ_ij coef[i][j]·a[i][j] where coef is a
// constant. This is the building block of the REINFORCE sample loss
// (Eqs. 25–26): coefficients are frozen, only log-probabilities carry grad.
// coef is borrowed until Backward/Reset; Graph.Scratch provides coefficient
// storage with exactly that lifetime.
func (g *Graph) WeightedSumConst(a *Var, coef *tensor.Matrix) *Var {
	a.Val.SameShapeOrPanic(coef, "WeightedSumConst")
	o := g.out(1, 1, a.NeedsGrad())
	var s float64
	for i, v := range a.Val.Data {
		s += v * coef.Data[i]
	}
	o.Val.Data[0] = s
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opWeightedSumConst, out: o, a: a, coef: coef})
	}
	return o
}

// BCEWithLogits computes the mean binary cross-entropy between logits (B×1)
// and labels (len B), fused with the sigmoid for numerical stability. labels
// is borrowed until Backward/Reset.
func (g *Graph) BCEWithLogits(logits *Var, labels []float64) *Var {
	if logits.Cols() != 1 || logits.Rows() != len(labels) {
		panic("autograd: BCEWithLogits wants B×1 logits matching labels")
	}
	o := g.out(1, 1, logits.NeedsGrad())
	var loss float64
	for i, y := range labels {
		x := logits.Val.Data[i]
		// log(1+e^x) computed stably: max(x,0) + log1p(e^-|x|)
		loss += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	}
	o.Val.Data[0] = loss / float64(len(labels))
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opBCEWithLogits, out: o, a: logits, labels: labels})
	}
	return o
}

// LayerNormRows normalizes each row, then applies gain and bias (both 1×C
// parameters).
func (g *Graph) LayerNormRows(a, gain, bias *Var) *Var {
	const eps = 1e-5
	needs := a.NeedsGrad() || gain.NeedsGrad() || bias.NeedsGrad()
	o := g.out(a.Rows(), a.Cols(), needs)
	// Per-row statistics for the backward pass, with graph lifetime.
	means := g.alloc(1, a.Rows())
	invStds := g.alloc(1, a.Rows())
	tensor.LayerNormRowsInto(o.Val, a.Val, gain.Val, bias.Val, means.Data, invStds.Data, eps)
	if o.NeedsGrad() {
		g.push(tapeEntry{op: opLayerNormRows, out: o, a: a, b: gain, c: bias, aux1: means, aux2: invStds})
	}
	return o
}
