package autograd

import (
	"math"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

// MeanAll reduces a to its scalar mean.
func (g *Graph) MeanAll(a *Var) *Var {
	o := g.out(1, 1, a.NeedsGrad())
	n := float64(len(a.Val.Data))
	o.Val.Data[0] = a.Val.Sum() / n
	if o.NeedsGrad() {
		g.push(func() {
			d := o.Grad.Data[0] / n
			for i := range a.Grad.Data {
				a.Grad.Data[i] += d
			}
		})
	}
	return o
}

// SumAll reduces a to its scalar sum.
func (g *Graph) SumAll(a *Var) *Var {
	o := g.out(1, 1, a.NeedsGrad())
	o.Val.Data[0] = a.Val.Sum()
	if o.NeedsGrad() {
		g.push(func() {
			d := o.Grad.Data[0]
			for i := range a.Grad.Data {
				a.Grad.Data[i] += d
			}
		})
	}
	return o
}

// GroupMean averages each consecutive block of `group` rows (GraphMixer's
// neighborhood mean, Eq. 9).
func (g *Graph) GroupMean(a *Var, group int) *Var {
	o := g.out(a.Rows()/group, a.Cols(), a.NeedsGrad())
	tensor.GroupMeanInto(o.Val, a.Val, group)
	if o.NeedsGrad() {
		g.push(func() {
			inv := 1 / float64(group)
			for gi := 0; gi < o.Rows(); gi++ {
				src := o.Grad.Row(gi)
				for r := gi * group; r < (gi+1)*group; r++ {
					dst := a.Grad.Row(r)
					for j, v := range src {
						dst[j] += v * inv
					}
				}
			}
		})
	}
	return o
}

// WeightedSumConst returns the scalar Σ_ij coef[i][j]·a[i][j] where coef is a
// constant. This is the building block of the REINFORCE sample loss
// (Eqs. 25–26): coefficients are frozen, only log-probabilities carry grad.
func (g *Graph) WeightedSumConst(a *Var, coef *tensor.Matrix) *Var {
	a.Val.SameShapeOrPanic(coef, "WeightedSumConst")
	o := g.out(1, 1, a.NeedsGrad())
	var s float64
	for i, v := range a.Val.Data {
		s += v * coef.Data[i]
	}
	o.Val.Data[0] = s
	if o.NeedsGrad() {
		g.push(func() {
			d := o.Grad.Data[0]
			for i := range a.Grad.Data {
				a.Grad.Data[i] += d * coef.Data[i]
			}
		})
	}
	return o
}

// BCEWithLogits computes the mean binary cross-entropy between logits (B×1)
// and labels (len B), fused with the sigmoid for numerical stability.
func (g *Graph) BCEWithLogits(logits *Var, labels []float64) *Var {
	if logits.Cols() != 1 || logits.Rows() != len(labels) {
		panic("autograd: BCEWithLogits wants B×1 logits matching labels")
	}
	o := g.out(1, 1, logits.NeedsGrad())
	n := float64(len(labels))
	var loss float64
	for i, y := range labels {
		x := logits.Val.Data[i]
		// log(1+e^x) computed stably: max(x,0) + log1p(e^-|x|)
		loss += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	}
	o.Val.Data[0] = loss / n
	if o.NeedsGrad() {
		g.push(func() {
			d := o.Grad.Data[0] / n
			for i, y := range labels {
				logits.Grad.Data[i] += d * (mathx.Sigmoid(logits.Val.Data[i]) - y)
			}
		})
	}
	return o
}

// LayerNormRows normalizes each row, then applies gain and bias (both 1×C
// parameters).
func (g *Graph) LayerNormRows(a, gain, bias *Var) *Var {
	const eps = 1e-5
	needs := a.NeedsGrad() || gain.NeedsGrad() || bias.NeedsGrad()
	o := g.out(a.Rows(), a.Cols(), needs)
	means := make([]float64, a.Rows())
	invStds := make([]float64, a.Rows())
	tensor.LayerNormRowsInto(o.Val, a.Val, gain.Val, bias.Val, means, invStds, eps)
	if o.NeedsGrad() {
		g.push(func() {
			c := float64(a.Cols())
			for i := 0; i < a.Rows(); i++ {
				x := a.Val.Row(i)
				dy := o.Grad.Row(i)
				mean, invStd := means[i], invStds[i]
				// xhat_j = (x_j - mean)·invStd
				var sumDyG, sumDyGXhat float64
				for j, v := range x {
					xhat := (v - mean) * invStd
					dg := dy[j] * gain.Val.Data[j]
					sumDyG += dg
					sumDyGXhat += dg * xhat
					if gain.NeedsGrad() {
						gain.Grad.Data[j] += dy[j] * xhat
					}
					if bias.NeedsGrad() {
						bias.Grad.Data[j] += dy[j]
					}
				}
				if a.NeedsGrad() {
					dx := a.Grad.Row(i)
					for j, v := range x {
						xhat := (v - mean) * invStd
						dg := dy[j] * gain.Val.Data[j]
						dx[j] += invStd * (dg - sumDyG/c - xhat*sumDyGXhat/c)
					}
				}
			}
		})
	}
	return o
}
