package autograd

import (
	"math"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

// opKind identifies a recorded operation on the tape.
type opKind uint8

const (
	opMatMul opKind = iota
	opAdd
	opSub
	opMul
	opScale
	opAddBias
	opConcatCols
	opReshape
	opGatherRows

	opSigmoid
	opTanh
	opReLU
	opLeakyReLU
	opGELU
	opCos
	opSoftmaxRows
	opLogSoftmaxRows

	opMeanAll
	opSumAll
	opGroupMean
	opWeightedSumConst
	opBCEWithLogits
	opLayerNormRows

	opGroupedScore
	opGroupedWeightedSum
	opGroupedMatMulLeft
	opMulColVec
	opRepeatRows
)

// tapeEntry is one recorded operation: a value (not a closure), so the tape
// slice is recycled across Graph.Reset with zero allocation. Fields are a
// union over the ops' needs; unused fields stay zero.
type tapeEntry struct {
	op     opKind
	group  int     // GroupMean/Grouped* group size, RepeatRows times
	scalar float64 // Scale factor, LeakyReLU slope

	out     *Var
	a, b, c *Var // inputs; c is LayerNorm's bias

	coef         *tensor.Matrix // WeightedSumConst coefficients, MulColVec column
	aux1, aux2   *tensor.Matrix // LayerNorm per-row means / inverse stddevs (1×R)
	idx          []int32        // GatherRows indices (borrowed)
	labels       []float64      // BCEWithLogits labels (borrowed)
	refLo, refHi int            // ConcatCols part list: g.varRefs[refLo:refHi]
}

// backstep runs one entry's backward body, accumulating into input Grads.
// Each case mirrors its op's forward definition; guards on NeedsGrad match
// the recording-time semantics (an entry is only pushed when the output
// carries gradient, but individual inputs may still be constants).
func (g *Graph) backstep(e *tapeEntry) {
	switch e.op {
	case opMatMul:
		if e.a.NeedsGrad() {
			// dA += dO @ Bᵀ
			tensor.MatMulTransBAddInto(e.a.Grad, e.out.Grad, e.b.Val)
		}
		if e.b.NeedsGrad() {
			// dB += Aᵀ @ dO
			tensor.MatMulTransAInto(e.b.Grad, e.a.Val, e.out.Grad)
		}

	case opAdd:
		if e.a.NeedsGrad() {
			e.a.Grad.AddInPlace(e.out.Grad)
		}
		if e.b.NeedsGrad() {
			e.b.Grad.AddInPlace(e.out.Grad)
		}

	case opSub:
		if e.a.NeedsGrad() {
			e.a.Grad.AddInPlace(e.out.Grad)
		}
		if e.b.NeedsGrad() {
			e.b.Grad.SubInPlace(e.out.Grad)
		}

	case opMul:
		if e.a.NeedsGrad() {
			for i, gv := range e.out.Grad.Data {
				e.a.Grad.Data[i] += gv * e.b.Val.Data[i]
			}
		}
		if e.b.NeedsGrad() {
			for i, gv := range e.out.Grad.Data {
				e.b.Grad.Data[i] += gv * e.a.Val.Data[i]
			}
		}

	case opScale:
		e.a.Grad.AxpyInPlace(e.scalar, e.out.Grad)

	case opAddBias:
		if e.a.NeedsGrad() {
			e.a.Grad.AddInPlace(e.out.Grad)
		}
		if e.b.NeedsGrad() {
			for i := 0; i < e.out.Grad.Rows; i++ {
				row := e.out.Grad.Row(i)
				for j, v := range row {
					e.b.Grad.Data[j] += v
				}
			}
		}

	case opConcatCols:
		rows := e.out.Rows()
		off := 0
		for _, p := range g.varRefs[e.refLo:e.refHi] {
			w := p.Cols()
			if p.NeedsGrad() {
				for i := 0; i < rows; i++ {
					src := e.out.Grad.Row(i)[off : off+w]
					dst := p.Grad.Row(i)
					for j, v := range src {
						dst[j] += v
					}
				}
			}
			off += w
		}

	case opReshape:
		for i, v := range e.out.Grad.Data {
			e.a.Grad.Data[i] += v
		}

	case opGatherRows:
		tensor.ScatterAddRows(e.a.Grad, e.out.Grad, e.idx)

	case opSigmoid:
		for i, s := range e.out.Val.Data {
			e.a.Grad.Data[i] += e.out.Grad.Data[i] * s * (1 - s)
		}

	case opTanh:
		for i, t := range e.out.Val.Data {
			e.a.Grad.Data[i] += e.out.Grad.Data[i] * (1 - t*t)
		}

	case opReLU:
		for i, v := range e.a.Val.Data {
			if v > 0 {
				e.a.Grad.Data[i] += e.out.Grad.Data[i]
			}
		}

	case opLeakyReLU:
		for i, v := range e.a.Val.Data {
			d := e.out.Grad.Data[i]
			if v < 0 {
				d *= e.scalar
			}
			e.a.Grad.Data[i] += d
		}

	case opGELU:
		a, o := e.a, e.out
		if n := len(a.Val.Data); n < geluParallelThreshold {
			for i := 0; i < n; i++ {
				a.Grad.Data[i] += o.Grad.Data[i] * mathx.GELUGrad(a.Val.Data[i])
			}
		} else {
			tensor.ParallelRows(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a.Grad.Data[i] += o.Grad.Data[i] * mathx.GELUGrad(a.Val.Data[i])
				}
			})
		}

	case opCos:
		for i, v := range e.a.Val.Data {
			e.a.Grad.Data[i] -= e.out.Grad.Data[i] * math.Sin(v)
		}

	case opSoftmaxRows:
		// dx_j = s_j (dy_j - Σ_k dy_k s_k)
		for i := 0; i < e.a.Rows(); i++ {
			s := e.out.Val.Row(i)
			dy := e.out.Grad.Row(i)
			var dot float64
			for k, sv := range s {
				dot += dy[k] * sv
			}
			dx := e.a.Grad.Row(i)
			for j, sv := range s {
				dx[j] += sv * (dy[j] - dot)
			}
		}

	case opLogSoftmaxRows:
		// dx_j = dy_j - softmax_j Σ_k dy_k
		for i := 0; i < e.a.Rows(); i++ {
			dy := e.out.Grad.Row(i)
			var sum float64
			for _, v := range dy {
				sum += v
			}
			logp := e.out.Val.Row(i)
			dx := e.a.Grad.Row(i)
			for j, lp := range logp {
				dx[j] += dy[j] - math.Exp(lp)*sum
			}
		}

	case opMeanAll:
		d := e.out.Grad.Data[0] / float64(len(e.a.Grad.Data))
		for i := range e.a.Grad.Data {
			e.a.Grad.Data[i] += d
		}

	case opSumAll:
		d := e.out.Grad.Data[0]
		for i := range e.a.Grad.Data {
			e.a.Grad.Data[i] += d
		}

	case opGroupMean:
		group := e.group
		inv := 1 / float64(group)
		for gi := 0; gi < e.out.Rows(); gi++ {
			src := e.out.Grad.Row(gi)
			for r := gi * group; r < (gi+1)*group; r++ {
				dst := e.a.Grad.Row(r)
				for j, v := range src {
					dst[j] += v * inv
				}
			}
		}

	case opWeightedSumConst:
		d := e.out.Grad.Data[0]
		for i := range e.a.Grad.Data {
			e.a.Grad.Data[i] += d * e.coef.Data[i]
		}

	case opBCEWithLogits:
		d := e.out.Grad.Data[0] / float64(len(e.labels))
		for i, y := range e.labels {
			e.a.Grad.Data[i] += d * (mathx.Sigmoid(e.a.Val.Data[i]) - y)
		}

	case opLayerNormRows:
		a, gain, bias := e.a, e.b, e.c
		means, invStds := e.aux1.Data, e.aux2.Data
		c := float64(a.Cols())
		for i := 0; i < a.Rows(); i++ {
			x := a.Val.Row(i)
			dy := e.out.Grad.Row(i)
			mean, invStd := means[i], invStds[i]
			// xhat_j = (x_j - mean)·invStd
			var sumDyG, sumDyGXhat float64
			for j, v := range x {
				xhat := (v - mean) * invStd
				dg := dy[j] * gain.Val.Data[j]
				sumDyG += dg
				sumDyGXhat += dg * xhat
				if gain.NeedsGrad() {
					gain.Grad.Data[j] += dy[j] * xhat
				}
				if bias.NeedsGrad() {
					bias.Grad.Data[j] += dy[j]
				}
			}
			if a.NeedsGrad() {
				dx := a.Grad.Row(i)
				for j, v := range x {
					xhat := (v - mean) * invStd
					dg := dy[j] * gain.Val.Data[j]
					dx[j] += invStd * (dg - sumDyG/c - xhat*sumDyGXhat/c)
				}
			}
		}

	case opGroupedScore:
		q, keys, group := e.a, e.b, e.group
		b := keys.Rows() / group
		for gi := 0; gi < b; gi++ {
			dS := e.out.Grad.Row(gi)
			qrow := q.Val.Row(gi)
			for k := 0; k < group; k++ {
				ds := dS[k]
				if ds == 0 {
					continue
				}
				krow := keys.Val.Row(gi*group + k)
				if q.NeedsGrad() {
					dq := q.Grad.Row(gi)
					for d, kv := range krow {
						dq[d] += ds * kv
					}
				}
				if keys.NeedsGrad() {
					dk := keys.Grad.Row(gi*group + k)
					for d, qv := range qrow {
						dk[d] += ds * qv
					}
				}
			}
		}

	case opGroupedWeightedSum:
		w, vals, group := e.a, e.b, e.group
		b := vals.Rows() / group
		for gi := 0; gi < b; gi++ {
			dOut := e.out.Grad.Row(gi)
			wrow := w.Val.Row(gi)
			for k := 0; k < group; k++ {
				vrow := vals.Val.Row(gi*group + k)
				if w.NeedsGrad() {
					var dot float64
					for j, v := range vrow {
						dot += dOut[j] * v
					}
					w.Grad.Row(gi)[k] += dot
				}
				if vals.NeedsGrad() {
					dv := vals.Grad.Row(gi*group + k)
					wv := wrow[k]
					for j, dv2 := range dOut {
						dv[j] += wv * dv2
					}
				}
			}
		}

	case opGroupedMatMulLeft:
		w, src, group := e.a, e.b, e.group
		k2 := w.Rows()
		b := src.Rows() / group
		c := src.Cols()
		for gi := 0; gi < b; gi++ {
			for i := 0; i < k2; i++ {
				dOut := e.out.Grad.Row(gi*k2 + i)
				if w.NeedsGrad() {
					dw := w.Grad.Row(i)
					for k := 0; k < group; k++ {
						srow := src.Val.Row(gi*group + k)
						var dot float64
						for j := 0; j < c; j++ {
							dot += dOut[j] * srow[j]
						}
						dw[k] += dot
					}
				}
				if src.NeedsGrad() {
					wrow := w.Val.Row(i)
					for k := 0; k < group; k++ {
						wv := wrow[k]
						if wv == 0 {
							continue
						}
						ds := src.Grad.Row(gi*group + k)
						for j, d := range dOut {
							ds[j] += wv * d
						}
					}
				}
			}
		}

	case opMulColVec:
		for i := 0; i < e.a.Rows(); i++ {
			s := e.coef.Data[i]
			if s == 0 {
				continue
			}
			src := e.out.Grad.Row(i)
			dst := e.a.Grad.Row(i)
			for j, v := range src {
				dst[j] += v * s
			}
		}

	case opRepeatRows:
		times := e.group
		for i := 0; i < e.a.Rows(); i++ {
			dst := e.a.Grad.Row(i)
			for t := 0; t < times; t++ {
				src := e.out.Grad.Row(i*times + t)
				for j, v := range src {
					dst[j] += v
				}
			}
		}

	default:
		panic("autograd: unknown tape op")
	}
}
