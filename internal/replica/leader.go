// Package replica is TASER's log-shipping replication subsystem: read
// replicas that tail a leader's write-ahead log over HTTP and rebuild the
// leader's serving state bitwise, plus the promotion machinery that turns a
// follower into a writable leader when the old one dies (DESIGN.md §11).
//
// The design leans entirely on the PR 6 durability contract. The leader's
// WAL already is the replication stream — record i is event i — so the
// leader side is just an HTTP face over the log directory: a follower
// bootstraps from the newest shipped checkpoint (the same file recovery
// bulk-loads locally) and then tails the record stream with the exact
// on-disk framing (wal.AppendRecord / wal.StreamReader), CRC32C per record.
// Every replicated event is applied through the identical
// validate→local-WAL→admit path leader ingest uses (serve.Engine.Apply), so
// at every applied sequence number the follower's watermark, adjacency,
// edge-feature bytes and served scores equal the leader's bitwise — the
// crash-recovery equivalence property, held across a lossy network instead
// of a crashed disk.
//
// Torn, duplicated or corrupted transport chunks are absorbed by the same
// machinery that absorbs torn segment tails: a record either passes its
// checksum at the expected sequence and is applied, or the poll is abandoned
// and re-requested from the follower's applied sequence. The follower never
// applies a record out of order, so its state is always a verbatim prefix of
// the leader's log. A node re-joining with local state must prove its stream
// really is such a prefix before tailing: the trailing records of its applied
// stream are byte-compared against the leader's log at the join point, so a
// diverged history (a promoted node's own writes, a leader that lost its
// tail) is refused with ErrDiverged instead of silently grafted onto.
package replica

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"taser/internal/serve"
	"taser/internal/wal"
)

// Header names of the replication wire protocol. Values are decimal
// sequence numbers / versions.
const (
	hdrFrom    = "X-Taser-Repl-From"    // first sequence number in the response body
	hdrSeq     = "X-Taser-Repl-Seq"     // leader's synced sequence at response time
	hdrWeights = "X-Taser-Repl-Weights" // leader's applied weight version
	hdrEvents  = "X-Taser-Repl-Events"  // events covered by a shipped checkpoint
)

// Leader serves an engine's durable log to followers:
//
//	GET /v1/repl/wal?from=N   → framed records [N, synced) (wal.AppendRecord
//	                            framing; at most MaxRecords per response;
//	                            &max=M caps the response further — the join
//	                            verification fetch asks for exactly the
//	                            records it will compare)
//	GET /v1/repl/checkpoint   → the newest valid checkpoint file, verbatim
//	GET /v1/repl/status       → JSON sequence/checkpoint/weight summary
//
// Any durable engine can serve these — a follower mounts them too, so its
// own (prefix) log is shippable to chained replicas and, after promotion,
// to the demoted old leader catching back up.
type Leader struct {
	e *serve.Engine
	// MaxRecords bounds one /wal response (default 16384): a far-behind
	// follower catches up over several polls instead of one giant response.
	MaxRecords int
}

// NewLeader wraps a durable engine. An engine without a WAL cannot ship its
// log and is refused.
func NewLeader(e *serve.Engine) (*Leader, error) {
	if _, _, ok := e.Durable(); !ok {
		return nil, fmt.Errorf("replica: leader requires a durable engine (serve.Durability.Dir)")
	}
	return &Leader{e: e, MaxRecords: 16384}, nil
}

// Handler returns the replication endpoints. Mount it on the serving mux or
// a dedicated replication listener.
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/wal", l.serveWAL)
	mux.HandleFunc("GET /v1/repl/checkpoint", l.serveCheckpoint)
	mux.HandleFunc("GET /v1/repl/status", l.serveStatus)
	return mux
}

// serveWAL streams the synced record suffix past ?from. Only synced records
// are shipped: their bytes are fully on disk before the synced counter
// advances, so a concurrent group commit can never hand a follower a
// half-written record. The response may be empty (the follower is caught
// up) — the follower polls again after its interval.
func (l *Leader) serveWAL(w http.ResponseWriter, r *http.Request) {
	fsys, dir, _ := l.e.Durable()
	var from uint64
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("bad from %q: %w", q, err))
			return
		}
		from = v
	}
	st := l.e.Stats()
	synced := st.WALSynced
	if from > synced {
		// The follower claims records this log never synced: it diverged
		// (e.g. it was promoted, or this leader lost its tail in a crash).
		w.Header().Set(hdrSeq, strconv.FormatUint(synced, 10))
		httpErr(w, http.StatusConflict,
			fmt.Errorf("replica: follower at seq %d is ahead of the log (synced %d): diverged", from, synced))
		return
	}
	until := synced
	if max := uint64(l.MaxRecords); max > 0 && until-from > max {
		until = from + max
	}
	if q := r.URL.Query().Get("max"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("bad max %q: %w", q, err))
			return
		}
		if until-from > v {
			until = from + v
		}
	}
	w.Header().Set(hdrFrom, strconv.FormatUint(from, 10))
	w.Header().Set(hdrSeq, strconv.FormatUint(synced, 10))
	w.Header().Set(hdrWeights, strconv.FormatUint(st.WeightVersion, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if from == until {
		return // caught up: headers only
	}
	tail, err := wal.TailFrom(fsys, dir, from)
	if err != nil {
		// Headers are not yet written (no body bytes): still safe to error.
		httpErr(w, http.StatusInternalServerError, err)
		return
	}
	defer tail.Close()
	buf := make([]byte, 0, 4096)
	for {
		seq, rec, err := tail.Next()
		if err == io.EOF || err != nil || seq >= until {
			// EOF before until should not happen (synced records are on
			// disk); a decode error mid-stream truncates the response — the
			// follower sees a torn chunk and re-polls, which is exactly the
			// fault model it already survives.
			return
		}
		buf = wal.AppendRecord(buf[:0], rec.Src, rec.Dst, rec.T, rec.Feat)
		if _, err := w.Write(buf); err != nil {
			return // follower went away mid-stream
		}
	}
}

// serveCheckpoint ships the newest valid checkpoint file verbatim; 204 when
// the store has none yet (the follower then tails the log from sequence 0).
func (l *Leader) serveCheckpoint(w http.ResponseWriter, r *http.Request) {
	fsys, dir, _ := l.e.Durable()
	data, events, err := wal.NewestCheckpointBytes(fsys, dir)
	if err != nil {
		httpErr(w, http.StatusInternalServerError, err)
		return
	}
	if data == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set(hdrEvents, strconv.Itoa(events))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// serveStatus reports the sequence state a follower needs to plan catch-up
// (and the lag denominator operators read off the leader).
func (l *Leader) serveStatus(w http.ResponseWriter, r *http.Request) {
	st := l.e.Stats()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"seq":%d,"synced":%d,"segments":%d,"checkpoint_events":%d,"weight_version":%d,"edge_dim":%d,"writable":%t}`+"\n",
		st.WALAppended, st.WALSynced, st.WALSegments, st.CheckpointEvents, st.WeightVersion, l.e.EdgeDim(), l.e.Writable())
}

func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
}
