package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"taser/internal/serve"
	"taser/internal/tensor"
	"taser/internal/tgraph"
	"taser/internal/wal"
)

// ErrDiverged reports a follower whose applied stream is not a prefix of the
// leader's log: either it is longer than the leader's synced sequence, or the
// join-point verification found a record whose bytes differ (typically this
// node was promoted and wrote, or the leader restarted from an older store).
// Replication cannot merge histories — the operator must restart the follower
// over a fresh (or leader-prefix) durable directory.
var ErrDiverged = errors.New("replica: follower stream diverged from leader log")

// ErrIncompatible reports a configuration mismatch that makes every record of
// the leader's stream unappliable (today: a different edge-feature width).
// It is permanent — retrying cannot help — so catch-up fails fast instead of
// cycling through its retry budget.
var ErrIncompatible = errors.New("replica: follower engine incompatible with leader stream")

// ErrStalled reports a record the local engine rejected maxApplyFails polls
// in a row. A rejection at the same sequence can never heal by retrying (the
// record's bytes are checksum-verified, so the stream is not at fault);
// treating it as transient would retry forever while lag grows silently.
var ErrStalled = errors.New("replica: replication stalled on a persistently rejected record")

// joinVerifyRecords is how many trailing records of a re-joining node's
// applied stream are byte-compared against the leader's log before tailing
// starts. Length alone cannot prove the prefix property: an ex-leader whose
// divergent tail the new leader has since outgrown passes every length check
// while carrying conflicting records. Divergent histories fork at a point and
// differ from there on, so comparing the trailing records catches any
// realistic fork; a window (rather than just the single join record) also
// covers the pathological case of a fork whose newest record coincides.
const joinVerifyRecords = 16

// maxApplyFails is how many consecutive polls may fail applying the same
// sequence before the follower transitions to StateFailed with ErrStalled.
const maxApplyFails = 5

// State is a follower's lifecycle position.
type State int32

const (
	// StateCatchup: bootstrapping from the shipped checkpoint and the first
	// log polls; not yet serving within the lag bound.
	StateCatchup State = iota
	// StateTailing: steady-state log shipping; read-only serving.
	StateTailing
	// StatePromoted: this node sealed its prefix and became writable; the
	// replication loop has exited.
	StatePromoted
	// StateFailed: an unrecoverable error (divergence, local WAL failure)
	// stopped replication; the node keeps serving its read-only prefix.
	StateFailed
	// StateClosed: Close was called.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateCatchup:
		return "catchup"
	case StateTailing:
		return "tailing"
	case StatePromoted:
		return "promoted"
	case StateFailed:
		return "failed"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// FollowerConfig configures StartFollower.
type FollowerConfig struct {
	Engine *serve.Engine // local engine; made read-only until promotion
	Leader string        // leader base URL, e.g. "http://10.0.0.1:8191"

	Client         *http.Client  // default: http.Client{Timeout: 30s}
	PollInterval   time.Duration // pause between empty polls (default 200ms)
	LagThreshold   uint64        // Healthy() bound on synced-minus-applied (default 4096)
	CatchupRetries int           // attempts for the initial checkpoint catch-up (default 3)
	// FailoverAfter > 0 arms automatic promotion: if every poll fails to
	// reach the leader for this long, the follower seals and takes over.
	// 0 leaves promotion manual (Promote).
	FailoverAfter time.Duration
}

// Follower replicates a leader's stream into a local engine and serves
// reads from it. Writes are rejected (serve.ErrReadOnly → HTTP 421) until
// promotion. The local engine may itself be durable — then every applied
// record also lands in the follower's own WAL, so a promoted follower is
// immediately a first-class leader and a crashed follower recovers locally
// instead of re-shipping the whole stream.
type Follower struct {
	cfg    FollowerConfig
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex // serializes promotion/close finalization
	failErr error      // set once when state becomes StateFailed

	state       atomic.Int32
	applied     atomic.Uint64 // records applied to the local engine
	leaderSeq   atomic.Uint64 // leader's synced seq at last successful poll
	lastContact atomic.Int64  // unix nanos of the last response from the leader
	polls       atomic.Uint64 // /wal polls attempted
	faultPolls  atomic.Uint64 // polls cut short by torn/corrupt/gapped chunks
	dupRecords  atomic.Uint64 // records skipped as duplicates (seq < applied)
	weightsSeen atomic.Uint64 // newest leader weight version already fetched

	// Stuck-apply tracking, touched only by the loop goroutine.
	stalledSeq   uint64 // sequence of the most recent apply rejection
	stalledFails int    // consecutive polls rejected at stalledSeq
}

// StartFollower catches the engine up from the leader's shipped checkpoint,
// then starts the background tail loop. The engine is flipped read-only
// before the first record is applied and stays so until promotion. The
// engine must be fresh or a recovered prefix of this leader's stream: a
// non-empty engine's trailing records are byte-verified against the leader's
// log first, and a stream that is longer than the leader's synced log or
// differs at the join point fails with ErrDiverged.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("replica: FollowerConfig.Engine is required")
	}
	if cfg.Leader == "" {
		return nil, fmt.Errorf("replica: FollowerConfig.Leader is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.LagThreshold == 0 {
		cfg.LagThreshold = 4096
	}
	if cfg.CatchupRetries <= 0 {
		cfg.CatchupRetries = 3
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{cfg: cfg, cancel: cancel, done: make(chan struct{})}
	f.state.Store(int32(StateCatchup))
	wasWritable := cfg.Engine.Writable()
	cfg.Engine.SetWritable(false)
	if err := f.catchUp(ctx); err != nil {
		cancel()
		close(f.done)
		// Hand the engine back with the caller's writability policy intact —
		// a caller that deliberately parked it read-only stays read-only.
		cfg.Engine.SetWritable(wasWritable)
		return nil, err
	}
	go f.loop(ctx)
	return f, nil
}

// catchUp bootstraps from the leader's newest checkpoint: one bulk
// ApplyPrefix replaces what would be thousands of per-record polls, exactly
// as local recovery bulk-loads a checkpoint before replaying the WAL
// suffix. Transient failures (a leader mid-restart, a killed connection)
// are retried; divergence and incompatibility are not.
func (f *Follower) catchUp(ctx context.Context) error {
	var err error
	for attempt := 0; attempt < f.cfg.CatchupRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.cfg.PollInterval):
			}
		}
		if err = f.catchUpOnce(ctx); err == nil ||
			errors.Is(err, ErrDiverged) || errors.Is(err, ErrIncompatible) {
			return err
		}
	}
	return fmt.Errorf("replica: checkpoint catch-up failed after %d attempts: %w", f.cfg.CatchupRetries, err)
}

func (f *Follower) catchUpOnce(ctx context.Context) error {
	e := f.cfg.Engine
	applied := uint64(e.NumEvents())
	st, err := f.fetchStatus(ctx)
	if err != nil {
		return err
	}
	if st.EdgeDim != e.EdgeDim() {
		return fmt.Errorf("%w: leader streams edge-feature width %d, engine is configured for %d",
			ErrIncompatible, st.EdgeDim, e.EdgeDim())
	}
	if applied > st.Synced {
		return fmt.Errorf("%w: %d events applied locally, leader synced %d", ErrDiverged, applied, st.Synced)
	}
	if err := f.verifyJoin(ctx, applied); err != nil {
		return err
	}
	f.leaderSeq.Store(st.Synced)
	f.lastContact.Store(time.Now().UnixNano())
	if uint64(st.CheckpointEvents) <= applied {
		f.applied.Store(applied)
		return nil // the log tail covers the rest; no checkpoint needed
	}
	ck, err := f.fetchCheckpoint(ctx)
	if err != nil {
		return err
	}
	if ck == nil || uint64(len(ck.Events)) <= applied {
		// The checkpoint regressed between /status and /checkpoint (e.g. the
		// newest file was replaced); the log tail will cover the gap.
		f.applied.Store(applied)
		return nil
	}
	var feats *tensor.Matrix
	if ck.EdgeDim > 0 {
		rows := len(ck.Events) - int(applied)
		feats = tensor.FromSlice(rows, ck.EdgeDim, ck.Feats[int(applied)*ck.EdgeDim:])
	}
	if err := e.ApplyPrefix(ck.Events[applied:], feats); err != nil {
		return fmt.Errorf("replica: applying checkpoint suffix: %w", err)
	}
	f.applied.Store(uint64(e.NumEvents()))
	f.publishWeights(ck)
	return nil
}

// verifyJoin proves the locally applied stream joins the leader's log by
// content, not just length: the last min(applied, joinVerifyRecords) records
// are re-fetched from the leader and compared bitwise (endpoints, timestamp
// bits, feature bits) against the local stream. Any mismatch is ErrDiverged —
// the "applied ≤ synced" length check alone would let an ex-leader whose
// conflicting tail the new leader has since outgrown re-join and serve a
// permanently divergent store. A short or torn verification response is
// returned as a transient error (catchUp retries it).
func (f *Follower) verifyJoin(ctx context.Context, applied uint64) error {
	if applied == 0 {
		return nil // an empty stream is trivially a prefix
	}
	n := uint64(joinVerifyRecords)
	if applied < n {
		n = applied
	}
	from := applied - n
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/repl/wal?from=%d&max=%d", f.cfg.Leader, from, n), nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: leader returned %s for join verification", resp.Status)
	}
	snap := f.cfg.Engine.PublishSnapshot()
	if uint64(snap.NumEvents()) < applied {
		return fmt.Errorf("replica: snapshot covers %d events, %d applied", snap.NumEvents(), applied)
	}
	sr := wal.NewStreamReader(resp.Body)
	for i := uint64(0); i < n; i++ {
		rec, rerr := sr.Next()
		if rerr != nil {
			return fmt.Errorf("replica: join verification read %d/%d records: %w", i, n, rerr)
		}
		seq := from + i
		ev := snap.Graph.Events[seq]
		if !recordEqual(rec, ev, snap.EdgeFeat.Row(int(seq))) {
			return fmt.Errorf("%w: record %d differs from the leader's log (local %d→%d t=%v, leader %d→%d t=%v)",
				ErrDiverged, seq, ev.Src, ev.Dst, ev.Time, rec.Src, rec.Dst, rec.T)
		}
	}
	return nil
}

// recordEqual compares a leader log record with a local event bitwise —
// float equality is on the bits, so NaNs and signed zeros compare the way
// the bitwise-equivalence property demands.
func recordEqual(rec wal.Record, ev tgraph.Event, feat []float64) bool {
	if rec.Src != ev.Src || rec.Dst != ev.Dst ||
		math.Float64bits(rec.T) != math.Float64bits(ev.Time) || len(rec.Feat) != len(feat) {
		return false
	}
	for i, v := range feat {
		if math.Float64bits(rec.Feat[i]) != math.Float64bits(v) {
			return false
		}
	}
	return true
}

// loop is the tail loop: poll the leader's log, apply, repeat. It exits on
// Close, on promotion (manual or automatic failover), or on a fatal error.
func (f *Follower) loop(ctx context.Context) {
	defer close(f.done)
	f.state.Store(int32(StateTailing))
	for {
		n, contact, err := f.pollOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		now := time.Now()
		if contact {
			f.lastContact.Store(now.UnixNano())
		}
		switch {
		case err != nil && (errors.Is(err, ErrDiverged) || errors.Is(err, ErrStalled) ||
			errors.Is(err, serve.ErrDurability)):
			// Divergence cannot heal; a sticky local WAL failure means no
			// record will ever be admitted again; a record the engine keeps
			// rejecting will keep being rejected. Stop and keep serving the
			// consistent read-only prefix.
			f.fail(err)
			return
		case err == nil && n > 0:
			continue // records flowed; drain the backlog without sleeping
		}
		if f.cfg.FailoverAfter > 0 && now.Sub(time.Unix(0, f.lastContact.Load())) >= f.cfg.FailoverAfter {
			// Leader declared dead: take over. The sealed prefix is exactly
			// the synced records the leader shipped, so the hand-off loses at
			// most the leader's unsynced tail (< its SyncEvery).
			f.finalizePromotion()
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(f.cfg.PollInterval):
		}
	}
}

// pollOnce requests the log suffix past the follower's applied sequence and
// applies what survives validation. Returns the number of records applied
// and whether the leader was reached at all (fault-injected torn or corrupt
// chunks count as contact — the leader is alive, the transport lied).
//
// Fault handling is positional: record i of a response that started at
// sequence s carries sequence s+i. A record below the applied counter is a
// duplicated chunk — skipped. A record above it is a gap (an earlier record
// was consumed by corruption) — the rest of the response is useless and the
// poll is abandoned. A checksum failure or truncation abandons the poll
// likewise. Every abandoned poll restarts from the applied counter, so
// faults cost retries, never consistency.
//
// Positional sequencing bounds the fault model: frames carry no sequence
// number of their own, so dup-tolerance covers whole-response replays (a
// rewound from cursor, a resent response) — the request-granularity replays
// HTTP intermediaries actually produce. A hypothetical intermediary that
// duplicated or reordered an individual frame *inside* one response body
// would pass the CRC at the wrong position and be applied at the wrong
// sequence; that failure is outside the model (DESIGN.md §11).
func (f *Follower) pollOnce(ctx context.Context) (appliedN int, contact bool, err error) {
	e := f.cfg.Engine
	f.polls.Add(1)
	from := f.applied.Load()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.cfg.Leader+"/v1/repl/wal?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusConflict {
		return 0, true, fmt.Errorf("%w: leader refused seq %d", ErrDiverged, from)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, true, fmt.Errorf("replica: leader returned %s for /v1/repl/wal", resp.Status)
	}
	if v, perr := strconv.ParseUint(resp.Header.Get(hdrSeq), 10, 64); perr == nil {
		if prev := f.leaderSeq.Load(); v < prev {
			// A synced sequence never regresses on one store (recovery keeps
			// every synced record), so the log behind this URL was replaced
			// with a different — potentially conflicting — history.
			return 0, true, fmt.Errorf("%w: leader synced sequence regressed %d → %d", ErrDiverged, prev, v)
		}
		f.leaderSeq.Store(v)
	}
	firstSeq := from
	if v, perr := strconv.ParseUint(resp.Header.Get(hdrFrom), 10, 64); perr == nil {
		firstSeq = v
	}
	sr := wal.NewStreamReader(resp.Body)
	for i := 0; ; i++ {
		rec, rerr := sr.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Torn (truncated mid-record) or corrupt (checksum) chunk: the
			// validated prefix already applied stands; re-poll for the rest.
			f.faultPolls.Add(1)
			break
		}
		seq := firstSeq + uint64(i)
		cur := f.applied.Load()
		if seq < cur {
			f.dupRecords.Add(1)
			continue
		}
		if seq > cur {
			f.faultPolls.Add(1) // gap: an expected record was consumed by a fault
			break
		}
		if aerr := e.Apply(rec.Src, rec.Dst, rec.T, rec.Feat); aerr != nil {
			// Transient by default (a checkpoint write racing the apply), but
			// the same sequence rejected poll after poll can never heal —
			// escalate to ErrStalled so the loop fails instead of spinning.
			if seq == f.stalledSeq {
				f.stalledFails++
			} else {
				f.stalledSeq, f.stalledFails = seq, 1
			}
			if f.stalledFails >= maxApplyFails {
				return appliedN, true, fmt.Errorf("%w: record %d rejected %d polls in a row: %w",
					ErrStalled, seq, f.stalledFails, aerr)
			}
			return appliedN, true, fmt.Errorf("replica: applying record %d: %w", seq, aerr)
		}
		f.stalledFails = 0
		f.applied.Add(1)
		appliedN++
	}
	f.maybeFetchWeights(ctx, resp.Header.Get(hdrWeights))
	return appliedN, true, nil
}

// maybeFetchWeights re-fetches the leader checkpoint when its advertised
// weight version is ahead of anything this follower has published. Weights
// ride checkpoints (every accepted publication writes one, DESIGN.md §9),
// so the newest checkpoint always carries the advertised version or newer.
func (f *Follower) maybeFetchWeights(ctx context.Context, hdr string) {
	v, err := strconv.ParseUint(hdr, 10, 64)
	if err != nil || v <= f.weightsSeen.Load() || v <= f.cfg.Engine.WeightVersion() {
		return
	}
	ck, err := f.fetchCheckpoint(ctx)
	if err != nil || ck == nil {
		return // transient; the next poll's header will trigger a retry
	}
	f.publishWeights(ck)
}

// publishWeights publishes a checkpoint's weight set locally. "Not newer"
// rejections are expected crossings (another path already published it) and
// are not errors.
func (f *Follower) publishWeights(ck *wal.Checkpoint) {
	if ck.Weights == nil {
		return
	}
	if v := ck.Weights.Version; v > f.weightsSeen.Load() {
		f.weightsSeen.Store(v)
	}
	_ = f.cfg.Engine.PublishWeights(ck.Weights)
}

type leaderStatus struct {
	Seq              uint64 `json:"seq"`
	Synced           uint64 `json:"synced"`
	CheckpointEvents int    `json:"checkpoint_events"`
	WeightVersion    uint64 `json:"weight_version"`
	EdgeDim          int    `json:"edge_dim"`
	Writable         bool   `json:"writable"`
}

func (f *Follower) fetchStatus(ctx context.Context) (leaderStatus, error) {
	var st leaderStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Leader+"/v1/repl/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("replica: leader returned %s for /v1/repl/status", resp.Status)
	}
	return st, decodeJSON(resp.Body, &st)
}

// fetchCheckpoint downloads and decodes the leader's newest checkpoint
// (nil when the leader has none yet).
func (f *Follower) fetchCheckpoint(ctx context.Context) (*wal.Checkpoint, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Leader+"/v1/repl/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: leader returned %s for /v1/repl/checkpoint", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica: reading shipped checkpoint: %w", err)
	}
	// DecodeCheckpoint checksums every section, so a torn or corrupted
	// shipment is rejected here, never applied.
	ck, err := wal.DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("replica: shipped checkpoint: %w", err)
	}
	return ck, nil
}

// Promote stops replication and makes the local engine writable: the
// applied prefix is sealed with a checkpoint (when the engine is durable)
// and the read-only gate lifts. Safe to call at any point after
// StartFollower; idempotent.
func (f *Follower) Promote() {
	f.cancel()
	<-f.done
	f.finalizePromotion()
}

// finalizePromotion is the promotion commit point, shared by Promote and
// the loop's automatic failover (which must not wait on its own exit).
func (f *Follower) finalizePromotion() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if State(f.state.Load()) == StatePromoted {
		return
	}
	if _, _, ok := f.cfg.Engine.Durable(); ok {
		// Seal: checkpoint the applied prefix so the new leader's store
		// covers everything it will serve before the first write lands.
		_ = f.cfg.Engine.Checkpoint()
	}
	f.cfg.Engine.SetWritable(true)
	f.state.Store(int32(StatePromoted))
}

// fail records a terminal replication error; the engine keeps serving its
// read-only prefix.
func (f *Follower) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failErr = err
	f.state.Store(int32(StateFailed))
}

// Close stops the replication loop without promoting. The engine is left
// read-only (the caller owns its shutdown).
func (f *Follower) Close() {
	f.cancel()
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := State(f.state.Load()); s != StatePromoted && s != StateFailed {
		f.state.Store(int32(StateClosed))
	}
}

// Status is a point-in-time snapshot of the replication loop.
type Status struct {
	State       State
	Applied     uint64    // records applied to the local engine
	LeaderSeq   uint64    // leader's synced sequence at last contact
	Lag         uint64    // LeaderSeq - Applied (0 when caught up or ahead)
	LastContact time.Time // zero = never reached the leader
	Polls       uint64
	FaultPolls  uint64 // polls cut short by torn/corrupt/gapped chunks
	DupRecords  uint64 // duplicated records skipped
	Err         error  // terminal error when State == StateFailed
}

func (f *Follower) Status() Status {
	st := Status{
		State:      State(f.state.Load()),
		Applied:    f.applied.Load(),
		LeaderSeq:  f.leaderSeq.Load(),
		Polls:      f.polls.Load(),
		FaultPolls: f.faultPolls.Load(),
		DupRecords: f.dupRecords.Load(),
	}
	if st.LeaderSeq > st.Applied {
		st.Lag = st.LeaderSeq - st.Applied
	}
	if ns := f.lastContact.Load(); ns != 0 {
		st.LastContact = time.Unix(0, ns)
	}
	f.mu.Lock()
	st.Err = f.failErr
	f.mu.Unlock()
	return st
}

// Healthy is the /v1/healthz readiness predicate (serve.HandlerConfig.Health):
// nil when this node can serve its role — a tailing follower within the lag
// bound and in recent contact with the leader, or a promoted leader.
func (f *Follower) Healthy() error {
	st := f.Status()
	switch st.State {
	case StatePromoted:
		return nil
	case StateTailing:
		if st.Lag > f.cfg.LagThreshold {
			return fmt.Errorf("replica: lag %d exceeds threshold %d", st.Lag, f.cfg.LagThreshold)
		}
		if stale := time.Since(st.LastContact); stale > f.staleBound() {
			return fmt.Errorf("replica: no leader contact for %v", stale.Round(time.Millisecond))
		}
		return nil
	case StateFailed:
		return fmt.Errorf("replica: replication failed: %w", st.Err)
	default:
		return fmt.Errorf("replica: not ready (%v)", st.State)
	}
}

// staleBound is how long the follower may go without leader contact before
// reporting unhealthy: the failover deadline when armed, else a few polls.
func (f *Follower) staleBound() time.Duration {
	if f.cfg.FailoverAfter > 0 {
		return f.cfg.FailoverAfter
	}
	return 5 * f.cfg.PollInterval
}

// StatsExtra is the serve.HandlerConfig.StatsExtra hook: replication fields
// merged into /v1/stats.
func (f *Follower) StatsExtra() map[string]any {
	st := f.Status()
	role := "follower"
	if st.State == StatePromoted {
		role = "leader"
	}
	return map[string]any{
		"repl_role":        role,
		"repl_state":       st.State.String(),
		"repl_applied":     st.Applied,
		"repl_leader_seq":  st.LeaderSeq,
		"repl_lag":         st.Lag,
		"repl_polls":       st.Polls,
		"repl_fault_polls": st.FaultPolls,
		"repl_dup_records": st.DupRecords,
	}
}

func decodeJSON(r io.Reader, dst any) error {
	return json.NewDecoder(r).Decode(dst)
}
