package replica

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/tgraph"
	"taser/internal/train"
	"taser/internal/wal"
)

// testNode is one replica: an engine with its own durable directory plus the
// trainer it was pretrained by (the weight source for publications). Every
// node built from the same dataset starts from bitwise-identical pretrained
// weights (train.New is deterministic in (config, dataset)), which is half of
// the bitwise-equivalence property; the other half is the shipped stream.
type testNode struct {
	e  *serve.Engine
	tr *train.Trainer
}

func newTestNode(t testing.TB, ds *datasets.Dataset, syncEvery int) testNode {
	t.Helper()
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := serve.New(serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent,
		MaxBatch: 8, MaxWait: time.Millisecond, SnapshotEvery: 64, Seed: 3,
		Durability: serve.Durability{Dir: t.TempDir(), SyncEvery: syncEvery, SegmentBytes: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return testNode{e: e, tr: tr}
}

// feed ingests events[lo:hi] with the dataset's edge-feature rows.
func feed(t testing.TB, n testNode, ds *datasets.Dataset, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		ev := ds.Graph.Events[i]
		var feat []float64
		if ds.Spec.EdgeDim > 0 {
			feat = ds.EdgeFeat.Row(i)
		}
		if err := n.e.Ingest(ev.Src, ev.Dst, ev.Time, feat); err != nil {
			t.Fatalf("ingest event %d: %v", i, err)
		}
	}
}

// assertEquivalent is the replication analogue of the crash-equivalence
// check: at the compared point the follower must agree with the leader
// bitwise — watermark, event count, adjacency, edge-feature bytes, and the
// scores both serve.
func assertEquivalent(t *testing.T, follower, leader *serve.Engine, probes []tgraph.Event) {
	t.Helper()
	fWM, fOK := follower.Watermark()
	lWM, lOK := leader.Watermark()
	if fWM != lWM || fOK != lOK {
		t.Fatalf("watermark %v (ok=%v), want %v (ok=%v)", fWM, fOK, lWM, lOK)
	}
	if follower.NumEvents() != leader.NumEvents() {
		t.Fatalf("follower has %d events, leader %d", follower.NumEvents(), leader.NumEvents())
	}
	sF, sL := follower.PublishSnapshot(), leader.PublishSnapshot()
	if d := tgraph.AdjacencyDiff(sF.TCSR, sL.TCSR); d != "" {
		t.Fatalf("adjacency diverged: %s", d)
	}
	if len(sF.EdgeFeat.Data) != len(sL.EdgeFeat.Data) {
		t.Fatalf("edge features %d floats, want %d", len(sF.EdgeFeat.Data), len(sL.EdgeFeat.Data))
	}
	for i, v := range sL.EdgeFeat.Data {
		if sF.EdgeFeat.Data[i] != v {
			t.Fatalf("edge feature %d: %v != %v", i, sF.EdgeFeat.Data[i], v)
		}
	}
	qt := lWM + 1
	for _, ev := range probes {
		got, err := follower.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := leader.PredictLink(ev.Src, ev.Dst, qt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("probe (%d→%d): follower score %v, leader %v (weights %d vs %d)",
				ev.Src, ev.Dst, got.Score, want.Score, got.Weights, want.Weights)
		}
	}
}

// waitCaughtUp polls until the follower has applied the leader's synced
// sequence (forced current by a leader checkpoint first).
func waitCaughtUp(t *testing.T, f *Follower, leader *serve.Engine) {
	t.Helper()
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	synced := leader.Stats().WALSynced
	deadline := time.Now().Add(10 * time.Second)
	for f.Status().Applied < synced {
		if time.Now().After(deadline) {
			st := f.Status()
			t.Fatalf("follower stuck at %d/%d (state %v, err %v)", st.Applied, synced, st.State, st.Err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitState(t *testing.T, f *Follower, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for f.Status().State != want {
		if time.Now().After(deadline) {
			t.Fatalf("follower state %v, want %v", f.Status().State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func startLeaderServer(t *testing.T, e *serve.Engine) *httptest.Server {
	t.Helper()
	l, err := NewLeader(e)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(l.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func perturbed(n testNode, version uint64, scale float64) *models.WeightSet {
	w := models.CaptureWeights(version, n.tr.Model, n.tr.Pred)
	for _, m := range w.Params {
		m.ScaleInPlace(scale)
	}
	return w
}

// TestFollowerConvergesBitwise is the tentpole property: a follower started
// mid-stream — over a checkpointed prefix plus live tailing, with a weight
// publication racing the stream — converges to the leader's exact state.
func TestFollowerConvergesBitwise(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	n := len(ds.Graph.Events)
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds, 8)

	// Half the stream lands before the follower exists, sealed in a shipped
	// checkpoint; the rest races the tail loop.
	feed(t, leader, ds, 0, n/2)
	if err := leader.e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := startLeaderServer(t, leader.e)

	f, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL, PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if follower.e.Writable() {
		t.Fatal("follower engine still writable after StartFollower")
	}
	if err := follower.e.Ingest(1, 2, 1e12, nil); !errors.Is(err, serve.ErrReadOnly) {
		t.Fatalf("follower ingest: got %v, want ErrReadOnly", err)
	}

	feed(t, leader, ds, n/2, 3*n/4)
	// Publish new weights mid-stream and force the leader to swap them in
	// (the applied version — what the wire header advertises — advances at
	// the next micro-batch flush).
	if err := leader.e.PublishWeights(perturbed(leader, 2, 1.25)); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.e.PredictLink(ds.Graph.Events[0].Src, ds.Graph.Events[0].Dst, 1e15); err != nil {
		t.Fatal(err)
	}
	feed(t, leader, ds, 3*n/4, n)

	waitCaughtUp(t, f, leader.e)
	assertEquivalent(t, follower.e, leader.e, ds.Graph.Events[:8])
	if got := follower.e.WeightVersion(); got != 2 {
		t.Fatalf("follower weight version %d, want 2 (replicated publication)", got)
	}
	st := f.Status()
	if st.State != StateTailing || st.Lag != 0 {
		t.Fatalf("status = %+v, want tailing with zero lag", st)
	}
	if err := f.Healthy(); err != nil {
		t.Fatalf("Healthy() = %v, want nil", err)
	}
}

// faultRT injects transport faults into the follower's /wal polls: torn
// chunks (response truncated mid-record), corrupted chunks (a payload byte
// flipped), and duplicated chunks (the from cursor rewound so records the
// follower already applied arrive again). Only the first `budget` matching
// exchanges are mangled, so every test eventually converges.
type faultRT struct {
	base    http.RoundTripper
	mode    string // "torn" | "corrupt" | "dup"
	recSize int    // exact frame size of one record (fixed EdgeDim)
	budget  int    // exchanges left to mangle
	hits    int    // exchanges actually mangled
}

func (rt *faultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	mangle := rt.budget > 0 && req.URL.Path == "/v1/repl/wal"
	if mangle && rt.mode == "dup" {
		q := req.URL.Query()
		from, _ := strconv.ParseUint(q.Get("from"), 10, 64)
		if from >= 3 {
			q.Set("from", strconv.FormatUint(from-3, 10))
			req.URL.RawQuery = q.Encode()
			rt.budget--
			rt.hits++
		}
		return rt.base.RoundTrip(req)
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil || !mangle || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if nrec := len(body) / rt.recSize; nrec > 0 {
		switch rt.mode {
		case "torn":
			// Cut 5 bytes into the last record: the intact prefix must still
			// apply, the partial record must read as torn, not as corrupt.
			body = body[:(nrec-1)*rt.recSize+5]
			rt.budget--
			rt.hits++
		case "corrupt":
			// Flip a payload byte of the first record: the checksum must
			// reject it and the follower must re-poll, not apply garbage.
			body[rt.recSize/2] ^= 0xFF
			rt.budget--
			rt.hits++
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// TestFollowerSurvivesStreamFaults: torn, corrupted and duplicated stream
// chunks cost retries, never consistency — the follower still converges to
// the leader's exact bytes.
func TestFollowerSurvivesStreamFaults(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	n := len(ds.Graph.Events)
	recSize := 4 + 4 + 4 + 8 + 4 + 8*ds.Spec.EdgeDim + 4 // len|src|dst|t|featLen|feat|crc

	for _, mode := range []string{"torn", "corrupt", "dup"} {
		t.Run(mode, func(t *testing.T) {
			leader := newTestNode(t, ds, 8)
			follower := newTestNode(t, ds, 8)
			feed(t, leader, ds, 0, n)
			ts := startLeaderServer(t, leader.e)

			rt := &faultRT{base: http.DefaultTransport, mode: mode, recSize: recSize, budget: 4}
			f, err := StartFollower(FollowerConfig{
				Engine: follower.e, Leader: ts.URL,
				Client:       &http.Client{Transport: rt, Timeout: 30 * time.Second},
				PollInterval: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			waitCaughtUp(t, f, leader.e)
			assertEquivalent(t, follower.e, leader.e, ds.Graph.Events[:8])
			if rt.hits == 0 {
				t.Fatalf("%s fault was never injected", mode)
			}
			st := f.Status()
			switch mode {
			case "torn", "corrupt":
				if st.FaultPolls == 0 {
					t.Fatalf("%s faults injected (%d) but no fault polls counted: %+v", mode, rt.hits, st)
				}
			case "dup":
				if st.DupRecords == 0 {
					t.Fatalf("duplicated records injected (%d rewinds) but none counted: %+v", rt.hits, st)
				}
			}
		})
	}
}

// killOnceRT fails the first matching exchange outright — the mid-catch-up
// kill: the follower loses its leader connection between /status and the
// checkpoint shipment and must retry from scratch.
type killOnceRT struct {
	base  http.RoundTripper
	path  string
	kills int
}

func (rt *killOnceRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.kills > 0 && req.URL.Path == rt.path {
		rt.kills--
		return nil, errors.New("injected: connection killed mid-catch-up")
	}
	return rt.base.RoundTrip(req)
}

// TestCheckpointCatchupSurvivesKill: the bulk catch-up path retries through
// a killed checkpoint shipment and still lands on the leader's exact state.
func TestCheckpointCatchupSurvivesKill(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	n := len(ds.Graph.Events)
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds, 8)
	feed(t, leader, ds, 0, n)
	if err := leader.e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := startLeaderServer(t, leader.e)

	rt := &killOnceRT{base: http.DefaultTransport, path: "/v1/repl/checkpoint", kills: 1}
	f, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL,
		Client:       &http.Client{Transport: rt, Timeout: 30 * time.Second},
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if rt.kills != 0 {
		t.Fatal("kill was never injected")
	}
	// The checkpoint covered the whole stream, so catch-up alone must have
	// applied it in bulk (not record-by-record polls).
	if got := follower.e.NumEvents(); got != n {
		t.Fatalf("after catch-up follower has %d events, want %d from the shipped checkpoint", got, n)
	}
	waitCaughtUp(t, f, leader.e)
	assertEquivalent(t, follower.e, leader.e, ds.Graph.Events[:8])
}

// TestPromotionHandoff is the leader hand-off drill: kill the leader,
// promote the follower, verify it serves writes on the replicated prefix;
// the dead leader's over-long local stream is refused (ErrDiverged) and a
// fresh replacement converges against the new leader.
func TestPromotionHandoff(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	n := len(ds.Graph.Events)
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds, 8)

	const tail = 5 // unsynced events the dying leader keeps to itself (< SyncEvery)
	feed(t, leader, ds, 0, n/2)
	ts := startLeaderServer(t, leader.e)
	f, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL, PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, leader.e)
	syncedAtKill := leader.e.Stats().WALSynced

	// The leader admits a few more events that never reach a group commit —
	// the tail every hand-off is allowed to lose — then dies. Promote the
	// follower: it seals its applied prefix and starts taking writes exactly
	// where the synced stream ended.
	feed(t, leader, ds, int(syncedAtKill), int(syncedAtKill)+tail)
	ts.Close()
	f.Promote()
	if st := f.Status(); st.State != StatePromoted {
		t.Fatalf("state %v after Promote, want promoted", st.State)
	}
	if !follower.e.Writable() {
		t.Fatal("promoted follower is not writable")
	}
	if err := f.Healthy(); err != nil {
		t.Fatalf("promoted Healthy() = %v, want nil", err)
	}
	if got := uint64(follower.e.NumEvents()); got != syncedAtKill {
		t.Fatalf("promoted with %d events, want the leader's synced %d", got, syncedAtKill)
	}
	if lost := leader.e.NumEvents() - follower.e.NumEvents(); lost >= 8 {
		t.Fatalf("hand-off lost %d events; bound is the leader's SyncEvery=8", lost)
	}

	// The dead leader's engine carries its unsynced tail — a history the new
	// leader never saw. Re-joining with it must be refused, not merged.
	ts2 := startLeaderServer(t, follower.e)
	_, err = StartFollower(FollowerConfig{Engine: leader.e, Leader: ts2.URL})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("stale ex-leader rejoin: got %v, want ErrDiverged", err)
	}

	// Writes land on the new leader; a replacement follower starts over a
	// fresh durable dir and converges.
	feed(t, follower, ds, int(syncedAtKill), 3*n/4)
	f.Promote() // idempotent
	rejoin := newTestNode(t, ds, 8)
	f2, err := StartFollower(FollowerConfig{
		Engine: rejoin.e, Leader: ts2.URL, PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	feed(t, follower, ds, 3*n/4, n)
	waitCaughtUp(t, f2, follower.e)
	assertEquivalent(t, rejoin.e, follower.e, ds.Graph.Events[:8])
}

// TestAutoFailover: with FailoverAfter armed, losing the leader promotes
// the follower without an operator.
func TestAutoFailover(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds, 8)
	feed(t, leader, ds, 0, 64)
	ts := startLeaderServer(t, leader.e)

	f, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL,
		PollInterval: 2 * time.Millisecond, FailoverAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, leader.e)

	ts.Close()
	waitState(t, f, StatePromoted)
	if !follower.e.Writable() {
		t.Fatal("auto-promoted follower is not writable")
	}
	ev := ds.Graph.Events[64]
	if err := follower.e.Ingest(ev.Src, ev.Dst, ev.Time+1, nil); err != nil {
		t.Fatalf("ingest on auto-promoted follower: %v", err)
	}
}

// TestRejoinRefusedAfterNewLeaderOutgrows is the divergence case length
// checks cannot see: the dead leader keeps an unsynced tail the follower
// never received, the promoted leader then takes enough conflicting writes
// to outgrow it, and the stale store tries to re-join with applied ≤ synced.
// The join-point byte verification must refuse it — without it the ex-leader
// would tail from its applied sequence on top of a conflicting prefix and
// serve a permanently divergent store.
func TestRejoinRefusedAfterNewLeaderOutgrows(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	n := len(ds.Graph.Events)
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds, 8)

	feed(t, leader, ds, 0, n/2)
	ts := startLeaderServer(t, leader.e)
	f, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL, PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, leader.e)
	syncedAtKill := leader.e.Stats().WALSynced

	// waitCaughtUp checkpointed (and therefore synced) the leader's log, so
	// these events stay pending in the group-commit buffer (tail < SyncEvery):
	// the follower can never have seen them.
	const tail = 5
	feed(t, leader, ds, int(syncedAtKill), int(syncedAtKill)+tail)
	ts.Close()
	f.Promote()
	if fn, ln := follower.e.NumEvents(), leader.e.NumEvents(); fn+tail != ln {
		t.Fatalf("setup: follower promoted with %d events, ex-leader holds %d; want a %d-event unshipped tail", fn, ln, tail)
	}

	// The new leader takes writes that conflict with the dead leader's tail
	// and outgrows it, so the length check alone would re-admit the stale
	// store.
	wm, _ := follower.e.Watermark()
	feat := make([]float64, ds.Spec.EdgeDim)
	for i := 0; i < 2*tail; i++ {
		for j := range feat {
			feat[j] = float64(i) + 0.25
		}
		if err := follower.e.Ingest(3, 4, wm+float64(i+1), feat); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.e.Checkpoint(); err != nil { // sync the new writes
		t.Fatal(err)
	}
	ts2 := startLeaderServer(t, follower.e)
	if synced, ex := follower.e.Stats().WALSynced, uint64(leader.e.NumEvents()); synced < ex {
		t.Fatalf("setup: new leader synced %d has not outgrown the ex-leader's %d events", synced, ex)
	}

	_, err = StartFollower(FollowerConfig{Engine: leader.e, Leader: ts2.URL})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("stale ex-leader rejoin after outgrowth: got %v, want ErrDiverged", err)
	}
	if !leader.e.Writable() {
		t.Fatal("refused rejoin should restore the engine's prior (writable) state")
	}
}

// TestFollowerRestartResumesCleanly: a follower stopped and restarted over
// the same engine re-joins with applied > 0 — the join verification must
// pass on the genuinely shared prefix and tailing must resume where it left
// off instead of re-shipping the stream.
func TestFollowerRestartResumesCleanly(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	n := len(ds.Graph.Events)
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds, 8)

	feed(t, leader, ds, 0, n/2)
	ts := startLeaderServer(t, leader.e)
	f, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL, PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, leader.e)
	f.Close()
	resumedAt := uint64(follower.e.NumEvents())
	if resumedAt == 0 {
		t.Fatal("setup: follower stopped with an empty stream")
	}

	feed(t, leader, ds, int(resumedAt), n)
	f2, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL, PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart over a valid prefix: %v", err)
	}
	defer f2.Close()
	waitCaughtUp(t, f2, leader.e)
	assertEquivalent(t, follower.e, leader.e, ds.Graph.Events[:8])
}

// TestEdgeDimMismatchFailsFast: a follower engine configured with a
// different edge-feature width can never apply a single record; the status
// handshake must refuse it at StartFollower instead of letting the loop
// retry the first record forever.
func TestEdgeDimMismatchFailsFast(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	ds16 := datasets.Generate(datasets.Spec{
		Name: "wikipedia-16", NumNodes: 900, NumSrc: 720, NumEvents: 400,
		NodeDim: 0, EdgeDim: 16,
		NoiseRate: 0.20, DriftRate: 2.0, RepeatRate: 0.5, Skew: 1.1, Seed: 7,
	})
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds16, 8)
	feed(t, leader, ds, 0, 64)
	ts := startLeaderServer(t, leader.e)

	_, err := StartFollower(FollowerConfig{Engine: follower.e, Leader: ts.URL})
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("edge-dim mismatch: got %v, want ErrIncompatible", err)
	}
	if !follower.e.Writable() {
		t.Fatal("refused follower should get its writable state back")
	}
}

// TestCatchupFailureRestoresWritable: a failed StartFollower must hand the
// engine back with the caller's writability policy intact — not force it
// writable.
func TestCatchupFailureRestoresWritable(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	node := newTestNode(t, ds, 8)
	cfg := FollowerConfig{
		Engine: node.e, Leader: "http://127.0.0.1:1",
		Client:         &http.Client{Timeout: 100 * time.Millisecond},
		PollInterval:   time.Millisecond,
		CatchupRetries: 1,
	}

	if _, err := StartFollower(cfg); err == nil {
		t.Fatal("StartFollower reached an unreachable leader")
	}
	if !node.e.Writable() {
		t.Fatal("failed catch-up flipped a writable engine read-only")
	}

	node.e.SetWritable(false)
	if _, err := StartFollower(cfg); err == nil {
		t.Fatal("StartFollower reached an unreachable leader")
	}
	if node.e.Writable() {
		t.Fatal("failed catch-up flipped a deliberately read-only engine writable")
	}
}

// poisonRT, once armed, answers /wal polls itself with a well-framed record
// the engine can never admit (a timestamp far behind the watermark): every
// checksum passes, every apply is rejected — the persistent-rejection case.
type poisonRT struct {
	base    http.RoundTripper
	edgeDim int
	armed   atomic.Bool
}

func (rt *poisonRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if !rt.armed.Load() || req.URL.Path != "/v1/repl/wal" {
		return rt.base.RoundTrip(req)
	}
	from, _ := strconv.ParseUint(req.URL.Query().Get("from"), 10, 64)
	body := wal.AppendRecord(nil, 7, 8, -1e18, make([]float64, rt.edgeDim))
	h := http.Header{}
	h.Set(hdrFrom, strconv.FormatUint(from, 10))
	h.Set(hdrSeq, strconv.FormatUint(from+1, 10))
	return &http.Response{
		Status: "200 OK", StatusCode: http.StatusOK,
		Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header: h, Body: io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)), Request: req,
	}, nil
}

// TestPersistentApplyRejectionFails: a record the engine rejects poll after
// poll must fail the follower (ErrStalled, StateFailed, unhealthy) instead
// of being retried at the same sequence forever while lag grows.
func TestPersistentApplyRejectionFails(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	leader := newTestNode(t, ds, 8)
	follower := newTestNode(t, ds, 8)
	feed(t, leader, ds, 0, 64)
	ts := startLeaderServer(t, leader.e)

	rt := &poisonRT{base: http.DefaultTransport, edgeDim: ds.Spec.EdgeDim}
	f, err := StartFollower(FollowerConfig{
		Engine: follower.e, Leader: ts.URL,
		Client:       &http.Client{Transport: rt, Timeout: 30 * time.Second},
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitCaughtUp(t, f, leader.e)

	rt.armed.Store(true)
	waitState(t, f, StateFailed)
	st := f.Status()
	if !errors.Is(st.Err, ErrStalled) {
		t.Fatalf("failed follower error = %v, want ErrStalled", st.Err)
	}
	if err := f.Healthy(); err == nil {
		t.Fatal("stalled follower reports healthy")
	}
}

// TestLeaderRequiresDurableEngine: an engine without a WAL has no log to
// ship.
func TestLeaderRequiresDurableEngine(t *testing.T) {
	ds := datasets.Wikipedia(0.02, 7)
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 11,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := serve.New(serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent,
		MaxBatch: 8, MaxWait: time.Millisecond, SnapshotEvery: 64, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := NewLeader(e); err == nil {
		t.Fatal("NewLeader accepted a non-durable engine")
	}
}
