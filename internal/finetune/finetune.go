// Package finetune is TASER's continual-learning subsystem: it closes the
// loop between the online serving engine's ingest stream and the model that
// serves it. A frozen pretrained model drifts away from the distribution an
// unbounded stream feeds it; the Tuner tails the engine's incremental
// snapshots (tgraph.Tailer over the structurally shared event list),
// fine-tunes its own clone of the model on the freshest events through the
// pooled minibatch build path and arena-backed graphs the trainer uses
// (train.FineTuner), and publishes each round's parameters back into serving
// as an immutable versioned models.WeightSet swapped in by atomic pointer
// (serve.Engine.PublishWeights) — so fine-tuning never blocks prediction and
// every served micro-batch runs under exactly one weight version. See
// DESIGN.md §8 for the lifecycle and consistency bounds.
//
// When the engine is durable (serve.Durability, DESIGN.md §9), each accepted
// publication also writes a checkpoint pairing the fine-tuned weights with
// the stream prefix they serve, so a restarted engine recovers straight to
// the latest fine-tuned version instead of the pretrained weights; the Tuner
// needs no changes for this — checkpoint failures are absorbed by the engine
// (counted in serve.Stats) and never surface through PublishWeights.
package finetune

import (
	"fmt"
	"sync"
	"time"

	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/tensor"
	"taser/internal/tgraph"
	"taser/internal/train"
)

// Defaults used when neither Config nor the engine's FinetuneHints set a
// value.
const (
	DefaultInterval     = 250 * time.Millisecond
	DefaultReplayWindow = 2048
	DefaultBatchSize    = 128
)

// Config wires a Tuner to a serving engine. Model and Pred are the
// architecture (and starting weights) the engine serves — they are cloned
// internally and never mutated; publication flows exclusively through
// immutable WeightSets.
type Config struct {
	Engine *serve.Engine
	Model  models.TGNN
	Pred   *models.EdgePredictor

	NodeFeat *tensor.Matrix // static node features (nil when the graph has none)
	EdgeDim  int            // per-event edge-feature width (must match the engine)

	NumNodes int // negative-sampling id space
	NumSrc   int // bipartite: negatives drawn from [NumSrc, NumNodes); 0 = any node

	Budget int              // supporting neighbors per hop (default 10)
	Policy sampler.Policy   // static sampling policy (default MostRecent, as serving)
	Finder train.FinderKind // "" = FinderGPU

	Interval     time.Duration // round cadence (0 = engine hint, then DefaultInterval)
	ReplayWindow int           // freshest events replayed per round (0 = engine hint, then DefaultReplayWindow)
	BatchSize    int           // events per fine-tune step (default 128)
	Passes       int           // optimizer passes over each round's window (default 1; >1 = experience replay)
	LR           float64       // default 1e-4 (train.FineTuner's default)
	ClipNorm     float64       // default 5

	Seed uint64
}

// Report summarizes one fine-tune round.
type Report struct {
	Events    int     // events trained on this round
	Steps     int     // optimizer steps taken
	Skipped   int     // backlog events dropped by the replay-window cap
	Loss      float64 // last step's batch loss
	Published uint64  // weight version published (0 when the round was idle)
}

// Stats is a point-in-time summary of the tuner.
type Stats struct {
	Rounds    uint64  // rounds that ran (idle rounds included)
	Steps     uint64  // total optimizer steps
	Events    uint64  // total events trained on
	Skipped   uint64  // total backlog events dropped
	Published uint64  // latest published weight version (0 before the first)
	LastLoss  float64 // last step's batch loss
	// Failed is non-empty when the background loop stopped on an error
	// (engine/architecture mismatches no later round can repair): continual
	// learning is no longer running and serving is drifting on its last
	// published weights. Callers surfacing Stats should surface this.
	Failed string
}

// Tuner runs the continual-learning loop against one engine. Rounds execute
// on a single goroutine (the background loop started by Start, or the
// caller's via RunOnce — both serialize on an internal mutex), which is what
// the single-owner contracts of the underlying FineTuner/InferenceBuilder
// require.
type Tuner struct {
	cfg  Config
	ft   *train.FineTuner
	tail tgraph.Tailer

	runMu       sync.Mutex // serializes rounds (background loop vs RunOnce)
	snapVersion uint64     // snapshot the builder is currently bound to
	nextVersion uint64     // next weight version to publish

	statMu sync.Mutex
	stats  Stats

	quit      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New validates cfg, clones the model pair and binds the build path to the
// engine's current snapshot. The tuner is idle until Start (background
// cadence) or RunOnce (caller-driven rounds).
func New(cfg Config) (*Tuner, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("finetune: Config.Engine is required")
	}
	if cfg.Model == nil || cfg.Pred == nil {
		return nil, fmt.Errorf("finetune: Config.Model and Config.Pred are required")
	}
	if cfg.NumNodes <= 0 {
		return nil, fmt.Errorf("finetune: Config.NumNodes must be positive")
	}
	hintInterval, hintWindow := cfg.Engine.FinetuneHints()
	if cfg.Interval == 0 {
		cfg.Interval = hintInterval
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.ReplayWindow == 0 {
		cfg.ReplayWindow = hintWindow
	}
	if cfg.ReplayWindow == 0 {
		cfg.ReplayWindow = DefaultReplayWindow
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Passes == 0 {
		cfg.Passes = 1
	}
	if cfg.Budget == 0 {
		cfg.Budget = 10
	}
	snap := cfg.Engine.Pin()
	if snap.EdgeFeat.Cols != cfg.EdgeDim {
		return nil, fmt.Errorf("finetune: EdgeDim %d, engine snapshot carries %d", cfg.EdgeDim, snap.EdgeFeat.Cols)
	}
	ft, err := train.NewFineTuner(train.FineTuneConfig{
		Model: cfg.Model, Pred: cfg.Pred,
		Infer: train.InferConfig{
			TCSR: snap.TCSR, NodeFeat: cfg.NodeFeat, EdgeFeat: snap.EdgeFeat,
			Budget: cfg.Budget, Policy: cfg.Policy, Finder: cfg.Finder, Seed: cfg.Seed,
		},
		LR: cfg.LR, ClipNorm: cfg.ClipNorm,
		NumNodes: cfg.NumNodes, NumSrc: cfg.NumSrc, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Tuner{
		cfg: cfg, ft: ft,
		snapVersion: snap.Version,
		nextVersion: cfg.Engine.WeightVersion() + 1,
		quit:        make(chan struct{}),
	}, nil
}

// Start launches the background loop: one round every Interval until Close.
func (t *Tuner) Start() {
	t.startOnce.Do(func() {
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			tick := time.NewTicker(t.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-t.quit:
					return
				case <-tick.C:
					if _, err := t.RunOnce(); err != nil {
						// A round can only fail on an engine/architecture
						// mismatch, which no later round can repair; flag
						// the stop so Stats readers can see fine-tuning is
						// no longer live.
						t.statMu.Lock()
						t.stats.Failed = err.Error()
						t.statMu.Unlock()
						return
					}
				}
			}
		}()
	})
}

// Close stops the background loop (if running) and waits for the in-flight
// round to finish. Safe to call multiple times; the engine stays up.
func (t *Tuner) Close() {
	t.closeOnce.Do(func() {
		close(t.quit)
		t.wg.Wait()
	})
}

// RunOnce executes one fine-tune round synchronously: pin the engine's
// latest snapshot, tail the events appended since the previous round (capped
// to the freshest ReplayWindow), take one optimizer step per BatchSize
// events on the tuner's cloned parameters, and publish the result as an
// immutable weight set the serving scheduler swaps in between micro-batches.
// An idle round (no new events) publishes nothing. Callers driving rounds
// manually (benchmarks, tests) get deterministic cadence; Start drives the
// same method on a timer.
func (t *Tuner) RunOnce() (Report, error) {
	t.runMu.Lock()
	defer t.runMu.Unlock()

	snap := t.cfg.Engine.Pin()
	events, skipped, err := t.tail.NextWindow(snap.Graph, t.cfg.ReplayWindow)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Events: len(events), Skipped: skipped}
	if len(events) == 0 {
		t.note(rep)
		return rep, nil
	}
	if snap.Version != t.snapVersion {
		if err := t.ft.SwapGraph(snap.TCSR, snap.EdgeFeat); err != nil {
			return Report{}, err
		}
		t.snapVersion = snap.Version
	}
	for pass := 0; pass < t.cfg.Passes; pass++ {
		for lo := 0; lo < len(events); lo += t.cfg.BatchSize {
			hi := lo + t.cfg.BatchSize
			if hi > len(events) {
				hi = len(events)
			}
			rep.Loss = t.ft.Step(events[lo:hi], nil)
			rep.Steps++
		}
	}
	ws := t.ft.Capture(t.nextVersion)
	if err := t.cfg.Engine.PublishWeights(ws); err != nil {
		return Report{}, err
	}
	rep.Published = t.nextVersion
	t.nextVersion++
	t.note(rep)
	return rep, nil
}

// note folds a round's report into the cumulative stats.
func (t *Tuner) note(rep Report) {
	t.statMu.Lock()
	defer t.statMu.Unlock()
	t.stats.Rounds++
	t.stats.Steps += uint64(rep.Steps)
	t.stats.Events += uint64(rep.Events)
	t.stats.Skipped += uint64(rep.Skipped)
	if rep.Published > 0 {
		t.stats.Published = rep.Published
		t.stats.LastLoss = rep.Loss
	}
}

// Stats snapshots the tuner's counters.
func (t *Tuner) Stats() Stats {
	t.statMu.Lock()
	defer t.statMu.Unlock()
	return t.stats
}
