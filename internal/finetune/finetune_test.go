package finetune

import (
	"sync"
	"testing"
	"time"

	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/train"
)

// newStack builds (engine, tuner) over a small dataset, with the engine
// owning private clones of the pretrained pair (required once weights are
// published: the scheduler writes them) and the tuner cloning its own.
func newStack(t *testing.T, ds *datasets.Dataset, cacheSize int) (*serve.Engine, *Tuner) {
	t.Helper()
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: 10, TimeDim: 6, Seed: 17,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := serve.New(serve.Config{
		Model: tr.Model.Clone(), Pred: tr.Pred.Clone(),
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: 5, Policy: sampler.MostRecent, CacheSize: cacheSize,
		MaxBatch: 8, MaxWait: 200 * time.Microsecond, SnapshotEvery: 64,
		FinetuneInterval: 5 * time.Millisecond, ReplayWindow: 256, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	tu, err := New(Config{
		Engine: e, Model: tr.Model, Pred: tr.Pred,
		NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		NumNodes: ds.Spec.NumNodes, NumSrc: ds.Spec.NumSrc,
		Budget: 5, Policy: sampler.MostRecent,
		BatchSize: 32, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tu.Close)
	return e, tu
}

// TestPredictionsStableWithinWeightVersionUnderFinetune is this PR's -race
// acceptance test: while a writer streams ingest (publishing snapshots) and
// the fine-tuner runs rounds and publishes weight sets, concurrent
// predictors record every served score keyed by the (snapshot version,
// weight version) pair the response reports. Within one pair, scores for a
// fixed probe must be bitwise-identical across goroutines and time — weight
// swaps land only between micro-batches, snapshots only at pin points, and
// the version-keyed embedding cache never leaks an embedding across either
// boundary. Arena poison is on, so any use-after-reset in the concurrently
// reused graphs turns scores NaN and breaks the comparison.
func TestPredictionsStableWithinWeightVersionUnderFinetune(t *testing.T) {
	t.Setenv("TASER_ARENA_POISON", "1")
	ds := datasets.Wikipedia(0.06, 31)
	e, tu := newStack(t, ds, 64) // cache on: hit/miss mixing across versions

	events := ds.Graph.Events
	prefix := len(events) / 2
	for i := 0; i < prefix; i++ {
		ev := events[i]
		if err := e.Ingest(ev.Src, ev.Dst, ev.Time, ds.EdgeFeat.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.PublishSnapshot()
	qt := events[prefix-1].Time // at-watermark probes: later events arrive ≥ qt

	const probes = 8
	probe := func(i int) (int32, int32) {
		ev := events[(i*29)%prefix]
		return ev.Src, ev.Dst
	}

	type key struct {
		snap, weights uint64
		probe         int
	}
	var mu sync.Mutex
	seen := make(map[key]float64)

	tu.Start() // fine-tune rounds + weight publications race with everything below

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := prefix; i < len(events); i++ {
			ev := events[i]
			ts := ev.Time
			if ts < qt {
				ts = qt
			}
			if err := e.Ingest(ev.Src, ev.Dst, ts, ds.EdgeFeat.Row(i)); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 3 {
				select {
				case <-done:
					return
				default:
				}
				p := i % probes
				src, dst := probe(p)
				got, err := e.PredictLink(src, dst, qt)
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				if got.Score != got.Score {
					t.Errorf("probe %d: NaN score under (snap %d, weights %d)", p, got.Version, got.Weights)
					return
				}
				k := key{got.Version, got.Weights, p}
				mu.Lock()
				prev, ok := seen[k]
				if !ok {
					seen[k] = got.Score
				}
				mu.Unlock()
				if ok && prev != got.Score {
					t.Errorf("probe %d diverged within (snap %d, weights %d): %v vs %v",
						p, got.Version, got.Weights, got.Score, prev)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// One deterministic round so the test cannot pass vacuously with the
	// timer never firing, then confirm serving advanced past the pretrained
	// weights.
	if _, err := tu.RunOnce(); err != nil {
		t.Fatal(err)
	}
	src, dst := probe(0)
	got, err := e.PredictLink(src, dst, qt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights < 2 {
		t.Fatalf("after the stream and a forced round, serving still at weight version %d", got.Weights)
	}
	st := tu.Stats()
	if st.Steps == 0 || st.Published < 2 {
		t.Fatalf("tuner did no work: %+v", st)
	}
}

// TestTunerRoundsTailAndPublish drives rounds synchronously: each round
// consumes exactly the appended suffix (window-capped), publishes a fresh
// monotonic weight version, and idle rounds publish nothing.
func TestTunerRoundsTailAndPublish(t *testing.T) {
	ds := datasets.Wikipedia(0.05, 9)
	e, tu := newStack(t, ds, 0)

	if err := e.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
		t.Fatal(err)
	}
	rep, err := tu.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.Published != 2 {
		t.Fatalf("bootstrap round: %+v, want events > 0 published v2", rep)
	}
	if rep.Events > 256 || rep.Skipped == 0 {
		// TrainEnd at this scale far exceeds the 256-event window.
		t.Fatalf("window cap not applied: %+v", rep)
	}

	// Idle round: nothing new ingested, nothing published.
	rep, err = tu.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 0 || rep.Published != 0 {
		t.Fatalf("idle round: %+v", rep)
	}

	// Stream a little more, force a snapshot, run a round: only the delta is
	// consumed and the next version goes out.
	wm, _ := e.Watermark()
	for i := 0; i < 40; i++ {
		ev := ds.Graph.Events[ds.TrainEnd+i]
		ts := ev.Time
		if ts < wm {
			ts = wm
		}
		if err := e.Ingest(ev.Src, ev.Dst, ts, ds.EdgeFeat.Row(ds.TrainEnd+i)); err != nil {
			t.Fatal(err)
		}
	}
	e.PublishSnapshot()
	rep, err = tu.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 40 || rep.Skipped != 0 || rep.Published != 3 {
		t.Fatalf("delta round: %+v, want exactly the 40 new events as v3", rep)
	}

	// Serving picks the published weights up on its next flush.
	wm, _ = e.Watermark()
	res, err := e.PredictLink(ds.Graph.Events[0].Src, ds.Graph.Events[0].Dst, wm+1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights != 3 {
		t.Fatalf("serving at weight version %d, want 3", res.Weights)
	}
}
