package device

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestLaunchBlocksCoversAllBlocks(t *testing.T) {
	g := NewWithWorkers(4)
	const blocks = 100
	var hits [blocks]atomic.Int32
	g.LaunchBlocks(blocks, func(b int) { hits[b].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("block %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestLaunchBlocksSingleWorker(t *testing.T) {
	g := NewWithWorkers(1)
	order := []int{}
	g.LaunchBlocks(5, func(b int) { order = append(order, b) })
	for i, b := range order {
		if b != i {
			t.Fatal("single-worker launch must be sequential in-order")
		}
	}
}

func TestLaunchBlocksZeroAndNegative(t *testing.T) {
	g := New()
	ran := false
	g.LaunchBlocks(0, func(int) { ran = true })
	g.LaunchBlocks(-3, func(int) { ran = true })
	if ran {
		t.Fatal("no blocks should run")
	}
}

func TestLaunchBlocksIndexedWorkerBounds(t *testing.T) {
	g := NewWithWorkers(4)
	const blocks = 64
	var hits [blocks]atomic.Int32
	var badWorker atomic.Int32
	g.LaunchBlocksIndexed(blocks, func(worker, b int) {
		if worker < 0 || worker >= 4 {
			badWorker.Store(1)
		}
		hits[b].Add(1)
	})
	if badWorker.Load() != 0 {
		t.Fatal("worker index out of [0, Workers())")
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("block %d executed %d times", i, hits[i].Load())
		}
	}
}

// TestLaunchBlocksIndexedScratchIsolation is the property the finders'
// per-worker fill scratch relies on: two blocks never run concurrently on
// the same worker index.
func TestLaunchBlocksIndexedScratchIsolation(t *testing.T) {
	g := NewWithWorkers(4)
	var inUse [4]atomic.Int32
	var clash atomic.Int32
	g.LaunchBlocksIndexed(256, func(worker, b int) {
		if inUse[worker].Add(1) != 1 {
			clash.Store(1)
		}
		time.Sleep(10 * time.Microsecond)
		inUse[worker].Add(-1)
	})
	if clash.Load() != 0 {
		t.Fatal("two blocks overlapped on one worker index")
	}
}

func TestNewWithWorkersClamps(t *testing.T) {
	if NewWithWorkers(0).Workers() != 1 || NewWithWorkers(-5).Workers() != 1 {
		t.Fatal("workers must clamp to >= 1")
	}
	if New().Workers() < 1 {
		t.Fatal("default workers")
	}
}

func TestLaunchBlocksMoreWorkersThanBlocks(t *testing.T) {
	g := NewWithWorkers(64)
	var count atomic.Int32
	g.LaunchBlocks(3, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatal("all blocks must run exactly once")
	}
}

func TestXferStatsAccounting(t *testing.T) {
	s := NewXferStats()
	s.Record(XferPCIe, 1000)
	s.Record(XferPCIe, 2000)
	s.Record(XferVRAM, 500)
	if s.PCIeBytes() != 3000 || s.PCIeRequests() != 2 {
		t.Fatal("pcie counters")
	}
	if s.VRAMBytes() != 500 || s.VRAMRequests() != 1 {
		t.Fatal("vram counters")
	}
	s.Reset()
	if s.PCIeBytes() != 0 || s.VRAMBytes() != 0 {
		t.Fatal("reset")
	}
}

func TestModeledTimeShape(t *testing.T) {
	s := NewXferStats()
	// 16 GB over PCIe at 16 GB/s ≈ 1s (+2 latencies).
	s.Record(XferPCIe, 16_000_000_000)
	got := s.ModeledTime()
	if got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Fatalf("pcie modeled time %v", got)
	}
	// The same bytes over VRAM must be dramatically cheaper.
	v := NewXferStats()
	v.Record(XferVRAM, 16_000_000_000)
	if v.ModeledTime() >= got/10 {
		t.Fatalf("vram (%v) must be ≫ faster than pcie (%v)", v.ModeledTime(), got)
	}
}

func TestModeledTimeLatencyDominatesSmallTransfers(t *testing.T) {
	s := NewXferStats()
	for i := 0; i < 1000; i++ {
		s.Record(XferPCIe, 4) // 4-byte reads: latency-bound
	}
	// 1000 requests × 1.2µs = 1.2ms ≫ 4KB/16GBps ≈ 0.25µs.
	if s.ModeledTime() < time.Millisecond {
		t.Fatalf("latency should dominate: %v", s.ModeledTime())
	}
}

func TestLaunchBlocksParallelismIsReal(t *testing.T) {
	// With W workers, W blocks sleeping concurrently must finish in ~1 sleep.
	g := NewWithWorkers(8)
	start := time.Now()
	g.LaunchBlocks(8, func(int) { time.Sleep(20 * time.Millisecond) })
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Fatalf("blocks did not run in parallel: %v", elapsed)
	}
}
