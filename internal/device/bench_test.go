package device

import (
	"sync/atomic"
	"testing"
)

// The launch benchmarks measure kernel-dispatch overhead: an empty-ish kernel
// makes goroutine spawn/teardown (or, with the persistent pool, channel
// handoff) the dominant cost. Save the output per commit and compare with
// benchstat (see EXPERIMENTS.md for recorded before/after numbers).

func benchmarkLaunch(b *testing.B, workers, blocks int) {
	g := NewWithWorkers(workers)
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LaunchBlocksIndexed(blocks, func(worker, block int) {
			sink.Add(int64(worker + block))
		})
	}
}

// BenchmarkLaunchTinyGrid is the worst case for per-launch spawning: many
// launches, almost no work per block (the shape of a small neighbor-finder
// call in the serving path).
func BenchmarkLaunchTinyGrid(b *testing.B) { benchmarkLaunch(b, 4, 8) }

// BenchmarkLaunchTrainGrid matches a training-scale finder launch: one block
// per target at batch-600 root counts.
func BenchmarkLaunchTrainGrid(b *testing.B) { benchmarkLaunch(b, 4, 600) }

// BenchmarkLaunchSingleWorker pins the inline fast path (no pool involved).
func BenchmarkLaunchSingleWorker(b *testing.B) { benchmarkLaunch(b, 1, 64) }
