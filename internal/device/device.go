// Package device simulates the GPU execution and memory hierarchy that
// TASER's system optimizations target. It substitutes for CUDA per the
// repro plan in DESIGN.md.
//
// Two aspects of the hardware matter to the paper:
//
//  1. The SIMD execution model. The GPU neighbor finder (Algorithm 2) is
//     block-centric: one thread block per target node, one thread per sampled
//     neighbor. GPU.LaunchBlocks reproduces this schedule by fanning block
//     indices across a fixed worker pool (one worker per host core, standing
//     in for an SM); the kernel body iterates its "threads" as a vectorized
//     inner loop, mirroring how a warp executes in lockstep.
//
//  2. The memory hierarchy. Feature tensors live in host RAM; a VRAM-resident
//     cache serves hot rows at VRAM bandwidth while misses go over PCIe with
//     zero-copy access (unified virtual memory). Transfers perform the real
//     copy and additionally charge a calibrated cost model so the benchmark
//     harness can report Table III-style breakdowns with the same relative
//     shape as the paper's hardware.
package device

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// GPU models a SIMD accelerator with a fixed number of concurrently
// executing blocks (persistent worker goroutines ≈ streaming
// multiprocessors). Workers are spawned once, on the first multi-worker
// launch, and then fed launches over a channel — real accelerators keep
// their SMs powered between kernels, and spawning goroutines per launch
// made dispatch overhead scale with launch frequency, which the serving
// path's many small batches would amplify.
type GPU struct {
	workers int

	poolOnce sync.Once
	work     chan *launch
}

// launch is one kernel grid in flight: workers atomically claim block
// indices until the grid is exhausted, then signal completion.
type launch struct {
	blocks int64
	next   int64
	kernel func(worker, block int)
	wg     sync.WaitGroup
}

// run executes the work-stealing loop on behalf of worker w.
func (l *launch) run(w int) {
	for {
		b := atomic.AddInt64(&l.next, 1) - 1
		if b >= l.blocks {
			break
		}
		l.kernel(w, int(b))
	}
	l.wg.Done()
}

// New returns a GPU using one worker per available host core.
func New() *GPU { return NewWithWorkers(runtime.GOMAXPROCS(0)) }

// NewWithWorkers returns a GPU with an explicit worker count; useful for
// scaling studies and tests.
func NewWithWorkers(workers int) *GPU {
	if workers < 1 {
		workers = 1
	}
	return &GPU{workers: workers}
}

// Workers reports the parallel block capacity.
func (g *GPU) Workers() int { return g.workers }

// LaunchBlocks executes kernel(block) for every block in [0, blocks),
// scheduling blocks across the worker pool. It blocks until the grid
// completes, like a synchronous CUDA kernel launch.
func (g *GPU) LaunchBlocks(blocks int, kernel func(block int)) {
	g.LaunchBlocksIndexed(blocks, func(_, b int) { kernel(b) })
}

// LaunchBlocksIndexed is LaunchBlocks with the executing worker's index
// passed to the kernel (the SM id, in hardware terms). Worker indices lie in
// [0, Workers()); a kernel can therefore keep per-worker scratch — RNG state,
// sampling bitmaps — without any synchronization, which is what makes the
// neighbor-finder kernels allocation-free in steady state. Each worker
// goroutine owns a fixed index for its lifetime and processes one launch at
// a time, so two blocks never run concurrently on the same index even when
// launches overlap.
func (g *GPU) LaunchBlocksIndexed(blocks int, kernel func(worker, block int)) {
	if blocks <= 0 {
		return
	}
	participants := g.workers
	if participants > blocks {
		participants = blocks
	}
	if participants == 1 {
		for b := 0; b < blocks; b++ {
			kernel(0, b)
		}
		return
	}
	work := g.pool()
	l := &launch{blocks: int64(blocks), kernel: kernel}
	// One handoff per participating worker. A worker that drains the grid
	// early may pick up a second handoff of the same launch and complete it
	// immediately; wg counts handoffs, so the accounting stays exact.
	l.wg.Add(participants)
	for i := 0; i < participants; i++ {
		work <- l
	}
	l.wg.Wait()
	// The pool channel must outlive the sends above: keep g (whose finalizer
	// closes the channel) reachable until the launch has fully completed.
	runtime.KeepAlive(g)
}

// pool lazily starts the persistent workers. They capture only the work
// channel, so an unreachable GPU is collectable: its finalizer closes the
// channel and the workers exit instead of leaking.
func (g *GPU) pool() chan *launch {
	g.poolOnce.Do(func() {
		g.work = make(chan *launch)
		for w := 0; w < g.workers; w++ {
			go func(w int, work chan *launch) {
				for l := range work {
					l.run(w)
				}
			}(w, g.work)
		}
		runtime.SetFinalizer(g, func(g *GPU) { close(g.work) })
	})
	return g.work
}

// XferKind distinguishes the two paths features can take to the compute units.
type XferKind int

const (
	// XferPCIe is a zero-copy read from host RAM over the interconnect.
	XferPCIe XferKind = iota
	// XferVRAM is a read served from device-resident memory (cache hit).
	XferVRAM
)

// CostModel holds the bandwidth/latency constants used to convert byte
// counts into modeled transfer time. Defaults approximate the paper's
// RTX 6000 Ada testbed (PCIe 4.0 x16, GDDR6).
type CostModel struct {
	PCIeBytesPerSec float64
	PCIeLatency     time.Duration // per request (kernel-visible page fault cost)
	VRAMBytesPerSec float64
}

// DefaultCostModel returns the calibrated constants documented in DESIGN.md.
func DefaultCostModel() CostModel {
	return CostModel{
		PCIeBytesPerSec: 16e9,
		PCIeLatency:     1200 * time.Nanosecond,
		VRAMBytesPerSec: 768e9,
	}
}

// XferStats accumulates transfer accounting. Safe for concurrent use.
type XferStats struct {
	Model CostModel

	pcieBytes atomic.Int64
	pcieReqs  atomic.Int64
	vramBytes atomic.Int64
	vramReqs  atomic.Int64
}

// NewXferStats returns stats with the default cost model.
func NewXferStats() *XferStats { return &XferStats{Model: DefaultCostModel()} }

// Record charges one request of n bytes to the given path.
func (s *XferStats) Record(kind XferKind, n int64) {
	switch kind {
	case XferPCIe:
		s.pcieBytes.Add(n)
		s.pcieReqs.Add(1)
	case XferVRAM:
		s.vramBytes.Add(n)
		s.vramReqs.Add(1)
	}
}

// PCIeBytes, VRAMBytes, PCIeRequests, VRAMRequests report raw counters.
func (s *XferStats) PCIeBytes() int64    { return s.pcieBytes.Load() }
func (s *XferStats) VRAMBytes() int64    { return s.vramBytes.Load() }
func (s *XferStats) PCIeRequests() int64 { return s.pcieReqs.Load() }
func (s *XferStats) VRAMRequests() int64 { return s.vramReqs.Load() }

// Time converts one batch of transfer counters into simulated transfer time.
func (m CostModel) Time(pcieBytes, pcieReqs, vramBytes int64) time.Duration {
	pcie := float64(pcieBytes)/m.PCIeBytesPerSec*float64(time.Second) +
		float64(pcieReqs)*float64(m.PCIeLatency)
	vram := float64(vramBytes) / m.VRAMBytesPerSec * float64(time.Second)
	return time.Duration(pcie + vram)
}

// ModeledTime converts the accumulated counters into simulated transfer time.
func (s *XferStats) ModeledTime() time.Duration {
	return s.Model.Time(s.pcieBytes.Load(), s.pcieReqs.Load(), s.vramBytes.Load())
}

// Reset zeroes all counters.
func (s *XferStats) Reset() {
	s.pcieBytes.Store(0)
	s.pcieReqs.Store(0)
	s.vramBytes.Store(0)
	s.vramReqs.Store(0)
}
