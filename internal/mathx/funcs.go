package mathx

import "math"

// Sigmoid returns 1/(1+e^-x) computed in a numerically stable way.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// GELU is the Gaussian error linear unit (tanh approximation, as used by
// MLP-Mixer and most transformer stacks).
func GELU(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// GELUGrad is d GELU(x)/dx for the tanh approximation.
func GELUGrad(x float64) float64 {
	const c = 0.7978845608028654
	inner := c * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	sech2 := 1 - t*t
	return 0.5*(1+t) + 0.5*x*sech2*c*(1+3*0.044715*x*x)
}

// LeakyReLU with the conventional 0.2 negative slope used by GAT.
func LeakyReLU(x, slope float64) float64 {
	if x >= 0 {
		return x
	}
	return slope * x
}

// LogSumExp returns log(sum(exp(xs))) stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MinInt and MaxInt avoid importing cmp for two call sites.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
