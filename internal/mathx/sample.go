package mathx

import (
	"math"
	"sort"
)

// WeightedChoice draws one index from the unnormalized non-negative weights.
// It panics if the weights sum to zero or are empty.
func WeightedChoice(r *RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 || len(weights) == 0 {
		panic("mathx: WeightedChoice with non-positive total weight")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// WeightedSampleNoReplace draws k distinct indices from the unnormalized
// non-negative weights using the Efraimidis–Spirakis exponential-key method:
// each item i receives key u_i^(1/w_i) and the k largest keys win. Items with
// zero weight are never selected unless fewer than k positive-weight items
// exist, in which case the result is truncated. The returned indices are in
// descending key order (effectively random order).
func WeightedSampleNoReplace(r *RNG, weights []float64, k int) []int {
	var ws WeightedSampler
	return ws.SampleInto(r, weights, k, nil)
}

// WeightedSampler holds the key/index scratch of WeightedSampleNoReplace so
// repeated draws are allocation-free once warm. Not safe for concurrent use;
// keep one per worker.
type WeightedSampler struct {
	keys []float64
	idx  []int
}

// Len, Less, Swap implement sort.Interface (descending key order).
func (ws *WeightedSampler) Len() int           { return len(ws.keys) }
func (ws *WeightedSampler) Less(a, b int) bool { return ws.keys[a] > ws.keys[b] }
func (ws *WeightedSampler) Swap(a, b int) {
	ws.keys[a], ws.keys[b] = ws.keys[b], ws.keys[a]
	ws.idx[a], ws.idx[b] = ws.idx[b], ws.idx[a]
}

// SampleInto is WeightedSampleNoReplace drawing into out's backing array
// (grown as needed). It consumes one uniform variate per positive weight, in
// index order, so it is stream-compatible with WeightedSampleNoReplace.
func (ws *WeightedSampler) SampleInto(r *RNG, weights []float64, k int, out []int) []int {
	ws.keys = ws.keys[:0]
	ws.idx = ws.idx[:0]
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		// log(u)/w is a monotone transform of u^(1/w); avoids pow.
		ws.keys = append(ws.keys, math.Log(r.Float64())/w)
		ws.idx = append(ws.idx, i)
	}
	if k > len(ws.idx) {
		k = len(ws.idx)
	}
	sort.Sort(ws)
	out = out[:0]
	return append(out, ws.idx[:k]...)
}

// Alias is Walker's alias method for O(1) draws from a fixed discrete
// distribution. Build cost is O(n).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from unnormalized non-negative weights.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("mathx: NewAlias with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("mathx: NewAlias with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("mathx: NewAlias with zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw samples one index.
func (a *Alias) Draw(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len reports the table size.
func (a *Alias) Len() int { return len(a.prob) }
