package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatal("adjacent seeds must not collide")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(4)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Fatalf("bucket %d count %d far from %d", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal moments mean=%v var=%v", mean, variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(6)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams should differ")
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0)")
	}
	if Sigmoid(1000) != 1 || Sigmoid(-1000) != 0 {
		t.Fatal("sigmoid must saturate without NaN")
	}
	// Symmetry property.
	err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return math.Abs(Sigmoid(x)+Sigmoid(-x)-1) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGELUGradMatchesFiniteDiff(t *testing.T) {
	for _, x := range []float64{-3, -1, -0.1, 0, 0.1, 1, 3} {
		const h = 1e-6
		fd := (GELU(x+h) - GELU(x-h)) / (2 * h)
		if math.Abs(fd-GELUGrad(x)) > 1e-5 {
			t.Fatalf("GELUGrad(%v)=%v finite diff %v", x, GELUGrad(x), fd)
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	if LeakyReLU(2, 0.2) != 2 || LeakyReLU(-2, 0.2) != -0.4 {
		t.Fatal("LeakyReLU")
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp got %v", got)
	}
	// Large inputs must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp overflow handling: %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp")
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := NewRNG(7)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[WeightedChoice(r, weights)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 0.05*draws {
			t.Fatalf("weight %d: count %d want ~%v", i, counts[i], want)
		}
	}
}

func TestWeightedSampleNoReplaceDistinct(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + int(seed%20)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() + 0.01
		}
		k := 1 + int(seed>>8)%n
		got := WeightedSampleNoReplace(r, weights, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSampleNoReplaceSkipsZeros(t *testing.T) {
	r := NewRNG(8)
	weights := []float64{0, 1, 0, 1, 0}
	for trial := 0; trial < 100; trial++ {
		got := WeightedSampleNoReplace(r, weights, 2)
		for _, i := range got {
			if i != 1 && i != 3 {
				t.Fatalf("selected zero-weight index %d", i)
			}
		}
	}
	// Asking for more than available truncates.
	if got := WeightedSampleNoReplace(r, weights, 4); len(got) != 2 {
		t.Fatalf("want truncation to 2, got %d", len(got))
	}
}

func TestWeightedSampleBiasTowardHeavy(t *testing.T) {
	r := NewRNG(9)
	weights := []float64{1, 1, 1, 1, 16}
	heavy := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, idx := range WeightedSampleNoReplace(r, weights, 1) {
			if idx == 4 {
				heavy++
			}
		}
	}
	frac := float64(heavy) / trials
	if frac < 0.75 || frac > 0.85 { // expect 16/20 = 0.8
		t.Fatalf("heavy item frequency %v, want ~0.8", frac)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := NewRNG(10)
	weights := []float64{5, 1, 3, 1}
	a := NewAlias(weights)
	counts := make([]int, len(weights))
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[a.Draw(r)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 0.05*draws {
			t.Fatalf("alias bucket %d: %d want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", weights)
				}
			}()
			NewAlias(weights)
		}()
	}
}

func TestMinMaxInt(t *testing.T) {
	if MinInt(1, 2) != 1 || MaxInt(1, 2) != 2 {
		t.Fatal("MinInt/MaxInt")
	}
}
