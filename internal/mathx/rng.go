// Package mathx provides deterministic random number generation and small
// numeric helpers shared by every other package in the repository.
//
// All randomness in the project flows through RNG so that experiments are
// reproducible bit-for-bit given a seed. The generator is splitmix64-seeded
// xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
package mathx

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is NOT safe for concurrent use; use Split to derive independent
// per-worker generators.
type RNG struct {
	s [4]uint64

	haveSpare bool // Box–Muller cache for NormFloat64
	spare     float64
}

// NewRNG returns a generator seeded from seed via splitmix64 so that nearby
// seeds produce uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes r in place so its stream is identical to a fresh
// NewRNG(seed), without allocating. It lets hot loops that need one stream
// per (call, block) pair — e.g. the GPU finder's per-block RNGs — reuse one
// generator per worker instead of heap-allocating one per block.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.haveSpare = false
}

// Split derives a new independent generator from r. The derived stream is
// seeded from two outputs of r, so successive Split calls yield distinct
// generators.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ (r.Uint64() << 1))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; the spare value
// is cached between calls).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
