// Package featstore serves node/edge feature rows to the training loop
// through the simulated GPU memory hierarchy: a VRAM-resident cache front-end
// (managed by a cache.Policy) backed by host RAM reached over PCIe zero-copy
// (§III-D). Slicing both performs the real copy and charges the transfer cost
// model, so benchmark breakdowns reflect cache behavior.
package featstore

import (
	"fmt"
	"sync"
	"time"

	"taser/internal/cache"
	"taser/internal/device"
	"taser/internal/tensor"
)

// Store is one feature matrix (e.g. all edge features) behind a cache.
// Slicing is safe for concurrent use: the pipelined training loop slices
// features for upcoming batches from the prefetch goroutine while the
// consumer slices adaptively chosen edges, and both funnel through the same
// (stateful, non-thread-safe) cache policy, so Slice serializes on a mutex.
type Store struct {
	mu     sync.Mutex
	host   *tensor.Matrix // numRows×dim, lives in "RAM"
	vram   *tensor.Matrix // capacity×dim, lives in "VRAM"
	policy cache.Policy   // nil means uncached: every read goes over PCIe
	stats  *device.XferStats
}

// New builds a store over host features. policy may be nil for the uncached
// baseline. stats may be nil to disable accounting.
func New(host *tensor.Matrix, policy cache.Policy, stats *device.XferStats) *Store {
	s := &Store{host: host, policy: policy, stats: stats}
	if policy != nil && policy.Capacity() > 0 {
		s.vram = tensor.New(policy.Capacity(), host.Cols)
	}
	return s
}

// Dim returns the feature width.
func (s *Store) Dim() int { return s.host.Cols }

// NumRows returns the backing row count.
func (s *Store) NumRows() int { return s.host.Rows }

// rowBytes is the transfer size of one feature row.
func (s *Store) rowBytes() int64 { return int64(s.host.Cols) * 8 }

// Slice copies feature rows ids[i] into dst row i and returns the modeled
// transfer time of exactly this call's traffic (0 when accounting is off).
// Negative ids produce zero rows (neighborhood padding). Rows resident in
// the cache are served from VRAM; the rest are fetched over PCIe and the
// access is reported to the cache policy so it can learn the pattern.
//
// The per-call return value — rather than diffing the shared XferStats
// counters around the call — is what keeps the FS timing bucket exact when
// the pipelined loop slices from two goroutines at once.
func (s *Store) Slice(ids []int32, dst *tensor.Matrix) time.Duration {
	if dst.Rows != len(ids) || dst.Cols != s.host.Cols {
		panic(fmt.Sprintf("featstore: Slice dst %dx%d want %dx%d",
			dst.Rows, dst.Cols, len(ids), s.host.Cols))
	}
	var pcieBytes, pcieReqs, vramBytes int64
	if s.policy == nil {
		// Uncached store (e.g. the node features): host is read-only, dst is
		// caller-owned and accounting is atomic, so concurrent slices need no
		// lock — the pipeline overlaps these on both sides.
		for i, id := range ids {
			out := dst.Row(i)
			if id < 0 {
				for j := range out {
					out[j] = 0
				}
				continue
			}
			copy(out, s.host.Row(int(id)))
			if s.stats != nil {
				s.stats.Record(device.XferPCIe, s.rowBytes())
			}
			pcieBytes += s.rowBytes()
			pcieReqs++
		}
		if s.stats == nil {
			return 0
		}
		return s.stats.Model.Time(pcieBytes, pcieReqs, 0)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		out := dst.Row(i)
		if id < 0 {
			for j := range out {
				out[j] = 0
			}
			continue
		}
		if slot, hit := s.policy.Access(id); hit {
			copy(out, s.vram.Row(slot))
			if s.stats != nil {
				s.stats.Record(device.XferVRAM, s.rowBytes())
			}
			vramBytes += s.rowBytes()
			// LRU-style policies may have rotated residency on a miss;
			// Frequency never does mid-epoch, so a hit is always valid.
			continue
		} else if slot, ok := s.policy.Lookup(id); ok {
			// Per-access policy (LRU) inserted id on the miss: load the
			// row into its new slot. Maintenance traffic is PCIe.
			copy(s.vram.Row(slot), s.host.Row(int(id)))
		}
		copy(out, s.host.Row(int(id)))
		if s.stats != nil {
			s.stats.Record(device.XferPCIe, s.rowBytes())
		}
		pcieBytes += s.rowBytes()
		pcieReqs++
	}
	if s.stats == nil {
		return 0
	}
	return s.stats.Model.Time(pcieBytes, pcieReqs, vramBytes)
}

// EndEpoch advances the cache policy and loads newly resident rows into
// VRAM. The refill is charged as PCIe maintenance traffic. The policy swap
// and the refill happen under one lock, so a concurrent Slice can never
// cache-hit a newly resident row whose VRAM slot is still unfilled.
func (s *Store) EndEpoch() {
	if s.policy == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refillLocked(s.policy.EndEpoch())
}

// Refill loads rows (already marked resident by the policy) into their VRAM
// slots. Exposed for the Oracle policy, whose residency changes via Reveal.
func (s *Store) Refill(inserted []int32) {
	if s.policy == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refillLocked(inserted)
}

func (s *Store) refillLocked(inserted []int32) {
	if s.vram == nil {
		return
	}
	for _, id := range inserted {
		slot, ok := s.policy.Lookup(id)
		if !ok {
			panic(fmt.Sprintf("featstore: refill id %d not resident", id))
		}
		copy(s.vram.Row(slot), s.host.Row(int(id)))
		if s.stats != nil {
			s.stats.Record(device.XferPCIe, s.rowBytes())
		}
	}
}

// Policy exposes the cache policy (nil when uncached).
func (s *Store) Policy() cache.Policy { return s.policy }

// Host exposes the backing matrix (read-only by convention).
func (s *Store) Host() *tensor.Matrix { return s.host }
