package featstore

import (
	"testing"

	"taser/internal/cache"
	"taser/internal/device"
	"taser/internal/mathx"
	"taser/internal/tensor"
)

func hostMatrix(rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, float64(i*100+j))
		}
	}
	return m
}

func TestSliceUncached(t *testing.T) {
	host := hostMatrix(5, 3)
	stats := device.NewXferStats()
	s := New(host, nil, stats)
	dst := tensor.New(3, 3)
	s.Slice([]int32{4, 0, 2}, dst)
	if dst.At(0, 1) != 401 || dst.At(1, 0) != 0 || dst.At(2, 2) != 202 {
		t.Fatalf("sliced values wrong: %v", dst)
	}
	if stats.PCIeRequests() != 3 || stats.VRAMRequests() != 0 {
		t.Fatal("uncached slicing must be all PCIe")
	}
	if stats.PCIeBytes() != 3*3*8 {
		t.Fatalf("pcie bytes %d", stats.PCIeBytes())
	}
}

func TestSlicePaddingRows(t *testing.T) {
	host := hostMatrix(3, 2)
	s := New(host, nil, nil)
	dst := tensor.New(2, 2)
	dst.Fill(9)
	s.Slice([]int32{-1, 1}, dst)
	if dst.At(0, 0) != 0 || dst.At(0, 1) != 0 {
		t.Fatal("padding id must produce a zero row")
	}
	if dst.At(1, 0) != 100 {
		t.Fatal("valid row after padding")
	}
}

func TestSliceShapePanics(t *testing.T) {
	s := New(hostMatrix(3, 2), nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Slice([]int32{0}, tensor.New(2, 2))
}

func TestFrequencyCacheServesFromVRAM(t *testing.T) {
	host := hostMatrix(10, 2)
	pol := cache.NewFrequency(10, 2, 0.5)
	stats := device.NewXferStats()
	s := New(host, pol, stats)
	dst := tensor.New(2, 2)

	// Epoch 1: rows 3 and 7 hot; everything misses.
	for i := 0; i < 5; i++ {
		s.Slice([]int32{3, 7}, dst)
	}
	if stats.VRAMRequests() != 0 {
		t.Fatal("cold cache must not serve from VRAM")
	}
	s.EndEpoch()
	refill := stats.PCIeRequests()
	stats.Reset()

	// Epoch 2: the same rows hit, with correct values from VRAM.
	s.Slice([]int32{3, 7}, dst)
	if dst.At(0, 1) != 301 || dst.At(1, 0) != 700 {
		t.Fatalf("cached values wrong: %v", dst)
	}
	if stats.VRAMRequests() != 2 || stats.PCIeRequests() != 0 {
		t.Fatalf("warm slice: vram=%d pcie=%d", stats.VRAMRequests(), stats.PCIeRequests())
	}
	if refill < 2 {
		t.Fatal("refill must have charged PCIe maintenance")
	}
}

func TestLRUCacheLoadsOnMiss(t *testing.T) {
	host := hostMatrix(10, 2)
	pol := cache.NewLRU(2)
	s := New(host, pol, nil)
	dst := tensor.New(1, 2)
	s.Slice([]int32{5}, dst) // miss, inserted
	s.Slice([]int32{5}, dst) // hit from VRAM
	if dst.At(0, 0) != 500 || dst.At(0, 1) != 501 {
		t.Fatalf("LRU-cached row wrong: %v", dst)
	}
	if pol.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", pol.HitRate())
	}
}

func TestOracleRefillFlow(t *testing.T) {
	host := hostMatrix(6, 2)
	pol := cache.NewOracle(2)
	stats := device.NewXferStats()
	s := New(host, pol, stats)
	future := make([]int64, 6)
	future[2], future[4] = 10, 5
	s.Refill(pol.Reveal(future))
	dst := tensor.New(2, 2)
	stats.Reset()
	s.Slice([]int32{2, 4}, dst)
	if stats.VRAMRequests() != 2 {
		t.Fatal("revealed rows must be VRAM hits")
	}
	if dst.At(0, 0) != 200 || dst.At(1, 1) != 401 {
		t.Fatal("oracle-cached values wrong")
	}
}

func TestCacheReducesModeledTime(t *testing.T) {
	// The headline effect behind Table III: a warm cache cuts the modeled
	// feature-slicing time dramatically versus the uncached baseline.
	host := hostMatrix(1000, 128)
	rng := mathx.NewRNG(1)
	ids := make([]int32, 5000)
	for i := range ids {
		ids[i] = int32(rng.Intn(50)) // heavily skewed: 50 hot rows
	}
	dst := tensor.New(len(ids), 128)

	noCacheStats := device.NewXferStats()
	noCache := New(host, nil, noCacheStats)
	noCache.Slice(ids, dst)

	cachedStats := device.NewXferStats()
	pol := cache.NewFrequency(1000, 100, 0.7)
	cached := New(host, pol, cachedStats)
	cached.Slice(ids, dst) // warm-up epoch
	cached.EndEpoch()
	pol.ResetStats()
	cachedStats.Reset()
	cached.Slice(ids, dst) // measured epoch

	if pol.HitRate() < 0.99 {
		t.Fatalf("all hot rows should be cached, hit rate %v", pol.HitRate())
	}
	if cachedStats.ModeledTime()*5 > noCacheStats.ModeledTime() {
		t.Fatalf("cache should cut modeled slicing time ≥5×: cached=%v uncached=%v",
			cachedStats.ModeledTime(), noCacheStats.ModeledTime())
	}
}
