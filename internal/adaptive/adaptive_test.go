package adaptive

import (
	"math"
	"testing"

	"taser/internal/autograd"
	"taser/internal/mathx"
	"taser/internal/nn"
)

func TestSelectorInitUniform(t *testing.T) {
	s := NewMiniBatchSelector(100, 0.1, mathx.NewRNG(1))
	if s.Len() != 100 {
		t.Fatal("Len")
	}
	for i := 0; i < 100; i++ {
		if s.Score(i) != 1 {
			t.Fatal("scores must initialize uniformly")
		}
	}
}

func TestSelectorBatchDistinct(t *testing.T) {
	s := NewMiniBatchSelector(50, 0.1, mathx.NewRNG(2))
	batch := s.SampleBatch(20)
	if len(batch) != 20 {
		t.Fatal("batch size")
	}
	seen := map[int]bool{}
	for _, e := range batch {
		if e < 0 || e >= 50 || seen[e] {
			t.Fatal("batch must hold distinct in-range indices")
		}
		seen[e] = true
	}
}

func TestSelectorUpdateShiftsDistribution(t *testing.T) {
	rng := mathx.NewRNG(3)
	s := NewMiniBatchSelector(100, 0.1, rng)
	// Edge 0 gets a confident positive logit, edges 1..9 confident negatives.
	edges := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	logits := []float64{8, -8, -8, -8, -8, -8, -8, -8, -8, -8}
	s.Update(edges, logits)
	if math.Abs(s.Score(0)-1.1) > 1e-3 {
		t.Fatalf("P(confident)≈1.1, got %v", s.Score(0))
	}
	if math.Abs(s.Score(1)-0.1) > 1e-3 {
		t.Fatalf("P(noisy)≈γ, got %v", s.Score(1))
	}
	// Sampling must now visit edge 0 ~11× more often than edge 1.
	c0, c1 := 0, 0
	for trial := 0; trial < 30000; trial++ {
		for _, e := range s.SampleBatch(1) {
			if e == 0 {
				c0++
			}
			if e == 1 {
				c1++
			}
		}
	}
	ratio := float64(c0) / float64(c1+1)
	if ratio < 5 {
		t.Fatalf("confident sample should dominate noisy one, ratio %v", ratio)
	}
}

func TestSelectorGammaFloorKeepsExploration(t *testing.T) {
	// Even an edge scored with a −∞-ish logit keeps probability ∝ γ.
	s := NewMiniBatchSelector(10, 0.5, mathx.NewRNG(4))
	s.Update([]int{0}, []float64{-50})
	if s.Score(0) != 0.5 {
		t.Fatalf("γ floor: %v", s.Score(0))
	}
}

func TestSelectorUpdatePanicsOnMismatch(t *testing.T) {
	s := NewMiniBatchSelector(5, 0.1, mathx.NewRNG(5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Update([]int{1, 2}, []float64{0})
}

// fillCandidates builds a candidate set with `valid` valid slots per root
// and random features.
func fillCandidates(rng *mathx.RNG, b, m, nodeDim, edgeDim, valid int) *CandidateSet {
	c := NewCandidateSet(b, m, nodeDim, edgeDim)
	for i := 0; i < b; i++ {
		for j := 0; j < valid; j++ {
			c.SetEntry(i, j, int32(rng.Intn(20)), rng.Float64()*5)
			for _, mat := range []struct {
				w   int
				row int
			}{{nodeDim, i*m + j}, {edgeDim, i*m + j}} {
				_ = mat
			}
			if nodeDim > 0 {
				row := c.NodeFeat.Row(i*m + j)
				for k := range row {
					row[k] = rng.NormFloat64()
				}
			}
			if edgeDim > 0 {
				row := c.EdgeFeat.Row(i*m + j)
				for k := range row {
					row[k] = rng.NormFloat64()
				}
			}
		}
	}
	if nodeDim > 0 {
		for i := 0; i < b; i++ {
			row := c.TargetFeat.Row(i)
			for k := range row {
				row[k] = rng.NormFloat64()
			}
		}
	}
	c.FinishMask()
	return c
}

func defaultConfig(nodeDim, edgeDim, m int, dec Decoder) SamplerConfig {
	return SamplerConfig{
		NodeDim: nodeDim, EdgeDim: edgeDim,
		FeatDim: 6, TimeDim: 6, FreqDim: 6, M: m,
		Decoder: dec, UseTE: true, UseFE: true, UseIE: true,
		Alpha: 2, Beta: 1,
	}
}

func TestSamplerScoresShapesAllDecoders(t *testing.T) {
	for _, dec := range []Decoder{DecoderLinear, DecoderGAT, DecoderGATv2, DecoderTrans} {
		rng := mathx.NewRNG(6)
		s := NewSampler(defaultConfig(4, 3, 5, dec), rng)
		c := fillCandidates(rng, 3, 5, 4, 3, 5)
		scores := s.Scores(autograd.New(), c)
		if scores.Rows() != 3 || scores.Cols() != 5 {
			t.Fatalf("%s: scores %dx%d", dec, scores.Rows(), scores.Cols())
		}
		for _, v := range scores.Val.Data {
			if math.IsNaN(v) {
				t.Fatalf("%s: NaN score", dec)
			}
		}
	}
}

func TestSamplerMaskedScoresAreTiny(t *testing.T) {
	rng := mathx.NewRNG(7)
	s := NewSampler(defaultConfig(0, 2, 6, DecoderLinear), rng)
	c := fillCandidates(rng, 2, 6, 0, 2, 3) // half the slots padded
	scores := s.Scores(autograd.New(), c)
	for b := 0; b < 2; b++ {
		for j := 3; j < 6; j++ {
			if scores.Val.At(b, j) > -1e8 {
				t.Fatal("padded candidates must carry −1e9 bias")
			}
		}
	}
}

func TestSamplerSelectRespectsMaskAndBudget(t *testing.T) {
	rng := mathx.NewRNG(8)
	s := NewSampler(defaultConfig(2, 2, 8, DecoderGATv2), rng)
	c := fillCandidates(rng, 4, 8, 2, 2, 5)
	sel := s.Select(autograd.New(), c, 3)
	for b := 0; b < 4; b++ {
		if len(sel.Chosen[b]) != 3 {
			t.Fatalf("root %d selected %d", b, len(sel.Chosen[b]))
		}
		seen := map[int]bool{}
		for _, slot := range sel.Chosen[b] {
			if slot < 0 || slot >= 5 {
				t.Fatal("selected a padded slot")
			}
			if seen[slot] {
				t.Fatal("selection must be without replacement")
			}
			seen[slot] = true
		}
		// Probabilities over valid slots sum to ~1.
		var sum float64
		for j := 0; j < 8; j++ {
			sum += sel.Probs.At(b, j)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("q must normalize over valid slots: %v", sum)
		}
	}
}

func TestSamplerSelectFewerValidThanBudget(t *testing.T) {
	rng := mathx.NewRNG(9)
	s := NewSampler(defaultConfig(0, 2, 6, DecoderTrans), rng)
	c := fillCandidates(rng, 2, 6, 0, 2, 2)
	sel := s.Select(autograd.New(), c, 5)
	for b := 0; b < 2; b++ {
		if len(sel.Chosen[b]) != 2 {
			t.Fatalf("must truncate to valid count, got %d", len(sel.Chosen[b]))
		}
	}
}

func TestSamplerSelectEmptyNeighborhood(t *testing.T) {
	rng := mathx.NewRNG(10)
	s := NewSampler(defaultConfig(0, 2, 4, DecoderLinear), rng)
	c := fillCandidates(rng, 2, 4, 0, 2, 0)
	sel := s.Select(autograd.New(), c, 3)
	if len(sel.Chosen[0]) != 0 || len(sel.Chosen[1]) != 0 {
		t.Fatal("empty neighborhoods select nothing")
	}
}

func TestSamplerEncoderAblations(t *testing.T) {
	rng := mathx.NewRNG(11)
	base := defaultConfig(3, 3, 4, DecoderLinear)
	for _, mod := range []func(*SamplerConfig){
		func(c *SamplerConfig) { c.UseTE = false },
		func(c *SamplerConfig) { c.UseFE = false },
		func(c *SamplerConfig) { c.UseIE = false },
		func(c *SamplerConfig) { c.UseTE, c.UseFE, c.UseIE = false, false, false },
	} {
		cfg := base
		mod(&cfg)
		s := NewSampler(cfg, rng)
		c := fillCandidates(rng, 2, 4, 3, 3, 4)
		scores := s.Scores(autograd.New(), c)
		if scores.Rows() != 2 || scores.Cols() != 4 {
			t.Fatal("ablated encoder must still score")
		}
	}
}

func TestSamplerPanicsAllComponentsDisabled(t *testing.T) {
	cfg := defaultConfig(0, 0, 4, DecoderLinear)
	cfg.UseTE, cfg.UseFE, cfg.UseIE = false, false, false
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(cfg, mathx.NewRNG(12))
}

func TestSamplerGradFlowsThroughAllDecoders(t *testing.T) {
	for _, dec := range []Decoder{DecoderLinear, DecoderGAT, DecoderGATv2, DecoderTrans} {
		rng := mathx.NewRNG(13)
		s := NewSampler(defaultConfig(3, 2, 4, dec), rng)
		c := fillCandidates(rng, 3, 4, 3, 2, 4)
		g := autograd.New()
		scores := s.Scores(g, c)
		g.Backward(g.MeanAll(g.SoftmaxRows(scores)))
		any := false
		for _, p := range s.Params() {
			if p.Grad.MaxAbs() > 0 {
				any = true
			}
		}
		if !any {
			t.Fatalf("%s: no gradient reached sampler params", dec)
		}
	}
}

func TestSamplerLearnsToPreferInformativeNeighbors(t *testing.T) {
	// Synthetic REINFORCE loop without a TGNN: candidates with positive
	// first edge feature are "good" (reward +1 when selected), others are
	// "bad" (reward −1). Minimizing Σ(−reward)·logq must teach the sampler
	// to put most probability mass on good candidates.
	rng := mathx.NewRNG(14)
	cfg := defaultConfig(0, 2, 6, DecoderLinear)
	s := NewSampler(cfg, rng)
	opt := nn.NewAdam(s.Params(), 0.01)
	coefRNG := mathx.NewRNG(15)
	for iter := 0; iter < 300; iter++ {
		c := fillCandidates(coefRNG, 4, 6, 0, 2, 6)
		g := autograd.New()
		sel := s.Select(g, c, 3)
		coef := make([]float64, 4*6)
		for b := 0; b < 4; b++ {
			for _, slot := range sel.Chosen[b] {
				reward := -1.0
				if c.EdgeFeat.At(b*6+slot, 0) > 0 {
					reward = 1.0
				}
				coef[b*6+slot] = -reward // minimize −reward·logq
			}
		}
		lv := coefMatVar(g, sel, coef)
		g.Backward(lv)
		opt.Step()
		opt.ZeroGrad()
	}
	// Evaluate: probability mass on good candidates should dominate.
	c := fillCandidates(mathx.NewRNG(16), 50, 6, 0, 2, 6)
	sel := s.Select(autograd.New(), c, 3)
	var goodMass, totalMass float64
	for b := 0; b < 50; b++ {
		for j := 0; j < 6; j++ {
			p := sel.Probs.At(b, j)
			totalMass += p
			if c.EdgeFeat.At(b*6+j, 0) > 0 {
				goodMass += p
			}
		}
	}
	frac := goodMass / totalMass
	if frac < 0.7 {
		t.Fatalf("sampler failed to learn preference: good mass %v (chance ≈ 0.5)", frac)
	}
}

// coefMatVar builds Σ coef·logq on g.
func coefMatVar(g *autograd.Graph, sel *Selection, coef []float64) *autograd.Var {
	m := sel.LogQ
	cm := m.Val.Clone()
	copy(cm.Data, coef)
	return g.WeightedSumConst(sel.LogQ, cm)
}

func TestDecoderString(t *testing.T) {
	if DecoderLinear.String() != "linear" || DecoderGATv2.String() != "gatv2" ||
		DecoderGAT.String() != "gat" || DecoderTrans.String() != "trans" {
		t.Fatal("decoder names")
	}
	if Decoder(9).String() == "" {
		t.Fatal("unknown decoder must format")
	}
}

func TestCandidateSetHelpers(t *testing.T) {
	c := NewCandidateSet(2, 3, 0, 2)
	c.SetEntry(0, 0, 5, 1)
	c.SetEntry(1, 1, 6, 2)
	c.FinishMask()
	if c.ValidCount(0) != 1 || c.ValidCount(1) != 1 {
		t.Fatal("ValidCount")
	}
	if c.Nodes[1] != -1 || c.MaskBias.Data[1] != -1e9 {
		t.Fatal("padding")
	}
	if c.MaskBias.Data[0] != 0 {
		t.Fatal("valid slot bias")
	}
}
