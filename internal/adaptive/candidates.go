package adaptive

import (
	"taser/internal/tensor"
)

// CandidateSet is the pre-sampled neighborhood the adaptive sampler scores:
// for each of B roots, M candidate neighbors drawn by the (static) neighbor
// finder, in the same flat padded layout the samplers emit. Feature matrices
// are sliced by the training loop (this is the extra feature traffic that
// makes the GPU cache matter, §III-D).
type CandidateSet struct {
	B, M int

	Nodes    []int32        // (B·M) candidate node ids, −1 padding
	DeltaT   []float64      // (B·M) timespan to the root's timestamp
	NodeFeat *tensor.Matrix // (B·M)×dN (dN may be 0)
	EdgeFeat *tensor.Matrix // (B·M)×dE (dE may be 0)
	Mask     *tensor.Matrix // B×M validity mask
	MaskBias *tensor.Matrix // B×M, (mask−1)·1e9 for masked softmax

	// TargetFeat holds the roots' own node features, B×dN (Eq. 21).
	TargetFeat *tensor.Matrix
}

// NewCandidateSet allocates a set for b roots with m candidates each.
func NewCandidateSet(b, m, nodeDim, edgeDim int) *CandidateSet {
	return &CandidateSet{
		B:          b,
		M:          m,
		Nodes:      make([]int32, b*m),
		DeltaT:     make([]float64, b*m),
		NodeFeat:   tensor.New(b*m, nodeDim),
		EdgeFeat:   tensor.New(b*m, edgeDim),
		Mask:       tensor.New(b, m),
		MaskBias:   tensor.New(b, m),
		TargetFeat: tensor.New(b, nodeDim),
	}
}

// Reset reshapes the set in place for reuse, zeroing all content so the
// result is indistinguishable from a fresh NewCandidateSet(b, m, nodeDim,
// edgeDim). Backing storage is reused when capacity allows.
func (c *CandidateSet) Reset(b, m, nodeDim, edgeDim int) {
	c.B, c.M = b, m
	n := b * m
	if cap(c.Nodes) < n {
		c.Nodes = make([]int32, n)
		c.DeltaT = make([]float64, n)
	} else {
		c.Nodes = c.Nodes[:n]
		c.DeltaT = c.DeltaT[:n]
		for i := range c.Nodes {
			c.Nodes[i] = 0
			c.DeltaT[i] = 0
		}
	}
	c.NodeFeat.Resize(n, nodeDim)
	c.EdgeFeat.Resize(n, edgeDim)
	c.Mask.Resize(b, m)
	c.MaskBias.Resize(b, m)
	c.TargetFeat.Resize(b, nodeDim)
}

// SetEntry marks candidate slot (i, j) valid.
func (c *CandidateSet) SetEntry(i, j int, node int32, deltaT float64) {
	s := i*c.M + j
	c.Nodes[s] = node
	c.DeltaT[s] = deltaT
	c.Mask.Data[s] = 1
}

// FinishMask writes padding markers for untouched slots.
func (c *CandidateSet) FinishMask() {
	for s, v := range c.Mask.Data {
		if v == 0 {
			c.Nodes[s] = -1
			c.MaskBias.Data[s] = -1e9
		} else {
			c.MaskBias.Data[s] = 0
		}
	}
}

// ValidCount returns the number of valid candidates of root i.
func (c *CandidateSet) ValidCount(i int) int {
	n := 0
	for j := 0; j < c.M; j++ {
		if c.Mask.Data[i*c.M+j] == 1 {
			n++
		}
	}
	return n
}
