// Package adaptive implements TASER's two-fold temporal adaptive sampling:
// mini-batch selection driven by training dynamics (§III-A) and neighbor
// sampling via a parameterized encoder–decoder co-trained with the TGNN
// through a REINFORCE-style sample loss (§III-B, Eqs. 14–26).
package adaptive

import (
	"fmt"
	"sync"

	"taser/internal/mathx"
)

// MiniBatchSelector maintains the per-training-edge importance scores P
// (Eq. 11) and draws batches with probability proportional to P. Scores are
// initialized uniformly; after each forward pass, the positive samples in
// the batch are re-scored with sigmoid(logit) + γ, so confidently predicted
// (low-noise) interactions are revisited more while a γ-weighted uniform
// floor preserves exploration.
//
// The selector is safe for concurrent use: in the pipelined training loop the
// prefetch goroutine draws upcoming batches while the consumer posts score
// updates, so a prefetched batch may have been drawn from scores that are up
// to PrefetchDepth+1 steps stale (see DESIGN.md on bounded staleness).
type MiniBatchSelector struct {
	// Gamma is the uniform-mixture magnitude γ (paper default 0.1).
	Gamma float64

	mu     sync.Mutex
	scores []float64
	rng    *mathx.RNG
	ws     mathx.WeightedSampler // draw scratch (guarded by mu)
}

// NewMiniBatchSelector builds a selector over numTrain training edges.
func NewMiniBatchSelector(numTrain int, gamma float64, rng *mathx.RNG) *MiniBatchSelector {
	if numTrain <= 0 {
		panic(fmt.Sprintf("adaptive: selector over %d edges", numTrain))
	}
	s := &MiniBatchSelector{Gamma: gamma, scores: make([]float64, numTrain), rng: rng}
	for i := range s.scores {
		s.scores[i] = 1 // uniform initialization
	}
	return s
}

// Len returns the training-set size.
func (s *MiniBatchSelector) Len() int { return len(s.scores) }

// Score returns P(e) for a training edge (exported for tests/diagnostics).
func (s *MiniBatchSelector) Score(e int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scores[e]
}

// SampleBatch draws batchSize distinct training-edge indices with
// probability proportional to the importance scores.
func (s *MiniBatchSelector) SampleBatch(batchSize int) []int {
	return s.SampleBatchInto(batchSize, nil)
}

// SampleBatchInto is SampleBatch drawing into out's backing array, keeping
// the per-step selection path allocation-free: the O(numTrain) key/index
// scratch is reused across calls and only the result occupies out.
func (s *MiniBatchSelector) SampleBatchInto(batchSize int, out []int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ws.SampleInto(s.rng, s.scores, batchSize, out)
}

// Update re-scores the positive samples of a batch with their fresh logits
// (Eq. 11): P(e) = sigmoid(ŷ_e) + γ.
func (s *MiniBatchSelector) Update(edges []int, logits []float64) {
	if len(edges) != len(logits) {
		panic("adaptive: Update length mismatch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range edges {
		s.scores[e] = mathx.Sigmoid(logits[i]) + s.Gamma
	}
}
