// Package adaptive implements TASER's two-fold temporal adaptive sampling:
// mini-batch selection driven by training dynamics (§III-A) and neighbor
// sampling via a parameterized encoder–decoder co-trained with the TGNN
// through a REINFORCE-style sample loss (§III-B, Eqs. 14–26).
package adaptive

import (
	"fmt"

	"taser/internal/mathx"
)

// MiniBatchSelector maintains the per-training-edge importance scores P
// (Eq. 11) and draws batches with probability proportional to P. Scores are
// initialized uniformly; after each forward pass, the positive samples in
// the batch are re-scored with sigmoid(logit) + γ, so confidently predicted
// (low-noise) interactions are revisited more while a γ-weighted uniform
// floor preserves exploration.
type MiniBatchSelector struct {
	// Gamma is the uniform-mixture magnitude γ (paper default 0.1).
	Gamma float64

	scores []float64
	rng    *mathx.RNG
}

// NewMiniBatchSelector builds a selector over numTrain training edges.
func NewMiniBatchSelector(numTrain int, gamma float64, rng *mathx.RNG) *MiniBatchSelector {
	if numTrain <= 0 {
		panic(fmt.Sprintf("adaptive: selector over %d edges", numTrain))
	}
	s := &MiniBatchSelector{Gamma: gamma, scores: make([]float64, numTrain), rng: rng}
	for i := range s.scores {
		s.scores[i] = 1 // uniform initialization
	}
	return s
}

// Len returns the training-set size.
func (s *MiniBatchSelector) Len() int { return len(s.scores) }

// Score returns P(e) for a training edge (exported for tests/diagnostics).
func (s *MiniBatchSelector) Score(e int) float64 { return s.scores[e] }

// SampleBatch draws batchSize distinct training-edge indices with
// probability proportional to the importance scores.
func (s *MiniBatchSelector) SampleBatch(batchSize int) []int {
	return mathx.WeightedSampleNoReplace(s.rng, s.scores, batchSize)
}

// Update re-scores the positive samples of a batch with their fresh logits
// (Eq. 11): P(e) = sigmoid(ŷ_e) + γ.
func (s *MiniBatchSelector) Update(edges []int, logits []float64) {
	if len(edges) != len(logits) {
		panic("adaptive: Update length mismatch")
	}
	for i, e := range edges {
		s.scores[e] = mathx.Sigmoid(logits[i]) + s.Gamma
	}
}
