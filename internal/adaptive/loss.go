package adaptive

import (
	"math"

	"taser/internal/autograd"
	"taser/internal/models"
	"taser/internal/tensor"
)

// SampleLoss constructs L_sample (Algorithm 1 line 12) on the sampler's
// graph, after the model loss has been back-propagated so that
// info.Out.Grad = dL_model/dh. The coefficients are frozen constants; only
// the log-probabilities carry gradient, exactly as prescribed by the
// log-derivative trick (Eq. 23).
//
// For TGAT the coefficient of root b's p-th selected neighbor follows
// Eq. 25:
//
//	c_bp = (1/(λ_b·α)) · â_bp · ⟨ V_bp + β·h_b , dL/dh_b ⟩
//
// with λ_b the Monte-Carlo estimate of E_q[e^a] computed with a max-shift
// for numerical stability (the shift rescales all of root b's coefficients
// equally, which α absorbs). For GraphMixer the folded form of Eq. 26 is
// used: c_bp = (1/n)·⟨ token_bp , dL/dh_b ⟩ (see DESIGN.md, substitution 5).
//
// The returned scalar is Σ c_bp · log q_θ(u_bp); minimizing it moves θ along
// the REINFORCE estimate of ∇_θ L_model.
func (s *NeighborSampler) SampleLoss(g *autograd.Graph, info *models.CoTrainInfo, sel *Selection, c *CandidateSet) *autograd.Var {
	coef := g.Scratch(c.B, c.M) // graph-lifetime: the tape borrows it until Reset
	n := info.Budget
	d := info.Out.Cols()
	switch {
	case info.Attn != nil: // TGAT (Eq. 25)
		for b := 0; b < c.B; b++ {
			chosen := sel.Chosen[b]
			if len(chosen) == 0 {
				continue
			}
			dh := info.Out.Grad.Row(b)
			h := info.Out.Val.Row(b)
			// λ_b = mean_p e^{a_bp − max_p a_bp} over selected positions.
			maxA := math.Inf(-1)
			for p := range chosen {
				if a := info.Scores.Val.At(b, p); a > maxA {
					maxA = a
				}
			}
			var lambda float64
			for p := range chosen {
				lambda += math.Exp(info.Scores.Val.At(b, p) - maxA)
			}
			lambda /= float64(len(chosen))
			if lambda <= 0 {
				continue
			}
			for p, slot := range chosen {
				attn := info.Attn.Val.At(b, p)
				vrow := info.Vals.Val.Row(b*n + p)
				var dot float64
				for j := 0; j < d; j++ {
					dot += (vrow[j] + s.cfg.Beta*h[j]) * dh[j]
				}
				coef.Set(b, slot, attn*dot/(lambda*s.cfg.Alpha))
			}
		}
	case info.Tokens != nil: // GraphMixer (Eq. 26, folded)
		for b := 0; b < c.B; b++ {
			dh := info.Out.Grad.Row(b)
			for p, slot := range sel.Chosen[b] {
				trow := info.Tokens.Val.Row(b*n + p)
				var dot float64
				for j := 0; j < d; j++ {
					dot += trow[j] * dh[j]
				}
				coef.Set(b, slot, dot/float64(n))
			}
		}
	default:
		panic("adaptive: co-train info carries neither attention nor tokens")
	}
	clampCoef(coef)
	return g.WeightedSumConst(sel.LogQ, coef)
}

// clampCoef bounds coefficient magnitudes; REINFORCE estimates are heavy-
// tailed and a single outlier batch can destabilize the sampler.
func clampCoef(m *tensor.Matrix) {
	const lim = 10
	for i, v := range m.Data {
		if v > lim {
			m.Data[i] = lim
		} else if v < -lim {
			m.Data[i] = -lim
		}
	}
}
