package adaptive

import (
	"fmt"
	"math"
	"sync"

	"taser/internal/autograd"
	"taser/internal/encoding"
	"taser/internal/mathx"
	"taser/internal/nn"
	"taser/internal/tensor"
)

// Decoder selects the predictor family that turns neighbor embeddings into
// sampling scores (Eqs. 17–20). The paper finds TGAT pairs best with GATv2
// and GraphMixer with the Mixer-style/linear head.
type Decoder int

const (
	// DecoderLinear is q_linear (Eq. 17).
	DecoderLinear Decoder = iota
	// DecoderGAT is q_gat (Eq. 18).
	DecoderGAT
	// DecoderGATv2 is q_gatv2 (Eq. 19).
	DecoderGATv2
	// DecoderTrans is q_trans (Eq. 20).
	DecoderTrans
)

// String implements fmt.Stringer.
func (d Decoder) String() string {
	switch d {
	case DecoderLinear:
		return "linear"
	case DecoderGAT:
		return "gat"
	case DecoderGATv2:
		return "gatv2"
	case DecoderTrans:
		return "trans"
	}
	return fmt.Sprintf("Decoder(%d)", int(d))
}

// SamplerConfig configures the temporal adaptive neighbor sampler.
type SamplerConfig struct {
	NodeDim int // raw node-feature width (0 if absent)
	EdgeDim int // raw edge-feature width (0 if absent)
	FeatDim int // d_feat: projected width of node/edge features (Eq. 14)
	TimeDim int // d_time: fixed time-encoding width (Eq. 8)
	FreqDim int // d_freq: frequency-encoding width (Eq. 12)
	M       int // candidate-set size (neighbor finder budget m)
	Decoder Decoder
	Hidden  int // decoder head width (defaults to FeatDim when 0)

	// Encoder ablation switches (§IV-B's encoder study): all true by default
	// via NewSampler.
	UseTE, UseFE, UseIE bool

	// REINFORCE hyperparameters of Eq. 25 (paper: α=2, β=1).
	Alpha, Beta float64
}

// NeighborSampler is the parameterized encoder–decoder q_θ(u|v) (§III-B).
// It encodes each candidate's contextual (node/edge features), temporal
// (TE), structural-recurrence (FE) and identity (IE) signals, mixes the
// neighborhood with a 1-layer MLP-Mixer (Eq. 16), and decodes a per-root
// score distribution with one of four predictor heads.
type NeighborSampler struct {
	cfg SamplerConfig

	timeEnc *encoding.TimeEncoder
	freqEnc *encoding.FreqEncoder

	nodeProj *nn.Linear // x_u → d_feat (Eq. 14)
	edgeProj *nn.Linear // x_uvt → d_feat
	mixer    *nn.MixerBlock

	// Decoder heads; only the configured one is used.
	linHead *nn.Linear // Z → 1 (Eq. 17)
	gatU    *nn.Linear // W_g z_u (Eq. 18)
	gatV    *nn.Linear // W_g z_v
	gatA    *nn.Linear // a^T [·‖·] (Eq. 18)
	gatv2W  *nn.Linear // W_g2 [z_u‖z_v] (Eq. 19)
	gatv2A  *nn.Linear
	transQ  *nn.Linear // W_t z_v (Eq. 20)
	transK  *nn.Linear // W'_t Z

	rng *mathx.RNG
	ws  mathx.WeightedSampler // per-root draw scratch (Select is serialized)
	wts []float64             // per-root weight scratch

	parts, tparts []*autograd.Var // encode/encodeTarget part-list scratch
	freqs         []int           // frequency-encoder scratch

	// selFree recycles Selection headers (with their Chosen/Probs backing
	// storage) between Select and Recycle; a mutex because release may happen
	// on a different goroutine than the next Select (pipeline shutdown).
	selMu   sync.Mutex
	selFree []*Selection
}

// NewSampler builds the sampler with all encoder components enabled.
func NewSampler(cfg SamplerConfig, rng *mathx.RNG) *NeighborSampler {
	if cfg.FeatDim <= 0 || cfg.TimeDim <= 0 || cfg.FreqDim <= 0 || cfg.M <= 0 {
		panic("adaptive: sampler dims must be positive")
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = cfg.FeatDim
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 2
	}
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	s := &NeighborSampler{
		cfg:     cfg,
		timeEnc: encoding.NewTimeEncoder(cfg.TimeDim, 0, 0),
		freqEnc: encoding.NewFreqEncoder(cfg.FreqDim),
		rng:     rng.Split(),
	}
	if cfg.NodeDim > 0 {
		s.nodeProj = nn.NewLinear(cfg.NodeDim, cfg.FeatDim, rng)
	}
	if cfg.EdgeDim > 0 {
		s.edgeProj = nn.NewLinear(cfg.EdgeDim, cfg.FeatDim, rng)
	}
	enc := s.encDim()
	// Channel hidden = d_enc (1×) keeps the sampler an order of magnitude
	// cheaper than the TGNN it serves, matching Table III's small AS share.
	s.mixer = nn.NewMixerBlock(cfg.M, enc, 0, enc, rng)
	dv := s.targetDim()
	h := cfg.Hidden
	switch cfg.Decoder {
	case DecoderLinear:
		s.linHead = nn.NewLinear(enc, 1, rng)
	case DecoderGAT:
		s.gatU = nn.NewLinear(enc, h, rng)
		s.gatV = nn.NewLinear(dv, h, rng)
		s.gatA = nn.NewLinear(2*h, 1, rng)
	case DecoderGATv2:
		s.gatv2W = nn.NewLinear(enc+dv, h, rng)
		s.gatv2A = nn.NewLinear(h, 1, rng)
	case DecoderTrans:
		s.transQ = nn.NewLinear(dv, h, rng)
		s.transK = nn.NewLinear(enc, h, rng)
	default:
		panic("adaptive: unknown decoder")
	}
	return s
}

// encDim is the neighbor embedding width d_enc (Eq. 15), depending on which
// encoder components are enabled.
func (s *NeighborSampler) encDim() int {
	d := 0
	if s.cfg.NodeDim > 0 {
		d += s.cfg.FeatDim
	}
	if s.cfg.EdgeDim > 0 {
		d += s.cfg.FeatDim
	}
	if s.cfg.UseTE {
		d += s.cfg.TimeDim
	}
	if s.cfg.UseFE {
		d += s.cfg.FreqDim
	}
	if s.cfg.UseIE {
		d += s.cfg.M
	}
	if d == 0 {
		panic("adaptive: all encoder components disabled")
	}
	return d
}

// targetDim is the width of the target embedding z_v (Eq. 21).
func (s *NeighborSampler) targetDim() int {
	d := s.cfg.TimeDim + s.cfg.FreqDim
	if s.cfg.NodeDim > 0 {
		d += s.cfg.FeatDim
	}
	return d
}

// Params exposes all trainable parameters.
func (s *NeighborSampler) Params() []*autograd.Var {
	mods := []nn.Module{s.mixer}
	for _, m := range []*nn.Linear{s.nodeProj, s.edgeProj, s.linHead, s.gatU, s.gatV,
		s.gatA, s.gatv2W, s.gatv2A, s.transQ, s.transK} {
		if m != nil {
			mods = append(mods, m)
		}
	}
	return nn.CollectParams(mods...)
}

// encode builds the neighbor embeddings z_(u,t) (Eq. 15) for a candidate set.
// Encoder feature tables (TE/FE/IE) are graph-lifetime arena scratch; the
// part list reuses the sampler's own slice (Select calls are serialized).
func (s *NeighborSampler) encode(g *autograd.Graph, c *CandidateSet) *autograd.Var {
	parts := s.parts[:0]
	if s.nodeProj != nil {
		parts = append(parts, g.GELU(s.nodeProj.Apply(g, g.Const(c.NodeFeat))))
	}
	if s.edgeProj != nil {
		parts = append(parts, g.GELU(s.edgeProj.Apply(g, g.Const(c.EdgeFeat))))
	}
	rows := c.B * c.M
	if s.cfg.UseTE {
		te := g.Scratch(rows, s.cfg.TimeDim)
		for i := 0; i < rows; i++ {
			s.timeEnc.Encode(te.Row(i), c.DeltaT[i])
		}
		parts = append(parts, g.Const(te))
	}
	if s.cfg.UseFE {
		fe := g.Scratch(rows, s.cfg.FreqDim)
		if cap(s.freqs) < c.M {
			s.freqs = make([]int, c.M)
		}
		freqs := s.freqs[:c.M]
		for b := 0; b < c.B; b++ {
			encoding.Frequencies(c.Nodes[b*c.M:(b+1)*c.M], freqs)
			for j, f := range freqs {
				s.freqEnc.Encode(fe.Row(b*c.M+j), f)
			}
		}
		parts = append(parts, g.Const(fe))
	}
	if s.cfg.UseIE {
		ie := g.Scratch(rows, c.M)
		for b := 0; b < c.B; b++ {
			encoding.Identity(c.Nodes[b*c.M:(b+1)*c.M], ie.Data[b*c.M*c.M:(b+1)*c.M*c.M], c.M)
		}
		parts = append(parts, g.Const(ie))
	}
	s.parts = parts[:0]
	return g.ConcatCols(parts...)
}

// encodeTarget builds z_v = {h(v) ‖ TE(0) ‖ FE(1)} (Eq. 21).
func (s *NeighborSampler) encodeTarget(g *autograd.Graph, c *CandidateSet) *autograd.Var {
	parts := s.tparts[:0]
	if s.nodeProj != nil {
		parts = append(parts, g.GELU(s.nodeProj.Apply(g, g.Const(c.TargetFeat))))
	}
	te := g.Scratch(c.B, s.cfg.TimeDim)
	fe := g.Scratch(c.B, s.cfg.FreqDim)
	for i := 0; i < c.B; i++ {
		s.timeEnc.Encode(te.Row(i), 0)
		s.freqEnc.Encode(fe.Row(i), 1)
	}
	parts = append(parts, g.Const(te), g.Const(fe))
	s.tparts = parts[:0]
	return g.ConcatCols(parts...)
}

// Scores computes the unnormalized per-root candidate scores (before the
// softmax σ of Eqs. 17–20), with padding already masked to −1e9.
func (s *NeighborSampler) Scores(g *autograd.Graph, c *CandidateSet) *autograd.Var {
	if c.M != s.cfg.M {
		panic(fmt.Sprintf("adaptive: candidate set has m=%d, sampler built for m=%d", c.M, s.cfg.M))
	}
	z := s.encode(g, c)
	z = g.MulColVec(z, maskCol(g, c)) // zero padding tokens before mixing
	z = s.mixer.Apply(g, z)        // Z_Ns(v) (Eq. 16)

	var scores *autograd.Var
	switch s.cfg.Decoder {
	case DecoderLinear:
		scores = g.Reshape(s.linHead.Apply(g, z), c.B, c.M)
	case DecoderGAT:
		u := s.gatU.Apply(g, z)
		v := g.RepeatRows(s.gatV.Apply(g, s.encodeTarget(g, c)), c.M)
		e := s.gatA.Apply(g, g.ConcatCols(u, v))
		scores = g.Reshape(g.LeakyReLU(e, 0.2), c.B, c.M)
	case DecoderGATv2:
		v := g.RepeatRows(s.encodeTarget(g, c), c.M)
		e := s.gatv2A.Apply(g, g.LeakyReLU(s.gatv2W.Apply(g, g.ConcatCols(z, v)), 0.2))
		scores = g.Reshape(e, c.B, c.M)
	case DecoderTrans:
		q := s.transQ.Apply(g, s.encodeTarget(g, c))
		k := s.transK.Apply(g, z)
		scores = g.Scale(g.GroupedScore(q, k, c.M), 1/math.Sqrt(float64(c.M)))
	}
	return g.Add(scores, g.Const(c.MaskBias))
}

func maskCol(g *autograd.Graph, c *CandidateSet) *tensor.Matrix {
	col := g.Scratch(c.B*c.M, 1)
	copy(col.Data, c.Mask.Data)
	return col
}

// Selection is the result of adaptive neighbor sampling for one batch.
type Selection struct {
	// Chosen[i] lists root i's selected candidate slots (indices in [0, M)),
	// at most n of them.
	Chosen [][]int
	// LogQ is the (differentiable) log-probability matrix B×M used by the
	// sample loss; only entries at chosen slots receive coefficients.
	LogQ *autograd.Var
	// Probs is the materialized q_θ(u|v) distribution (B×M), for tests.
	Probs *tensor.Matrix
}

// getSelection checks a Selection out of the free list (or allocates one),
// shaped for b roots with m candidates. Per-root Chosen slices keep their
// capacity across recycles, so warm draws are allocation-free.
func (s *NeighborSampler) getSelection(b, m int) *Selection {
	s.selMu.Lock()
	var sel *Selection
	if n := len(s.selFree); n > 0 {
		sel = s.selFree[n-1]
		s.selFree[n-1] = nil
		s.selFree = s.selFree[:n-1]
	}
	s.selMu.Unlock()
	if sel == nil {
		return &Selection{Chosen: make([][]int, b), Probs: tensor.New(b, m)}
	}
	if cap(sel.Chosen) < b {
		chosen := make([][]int, b)
		copy(chosen, sel.Chosen[:cap(sel.Chosen)])
		sel.Chosen = chosen
	} else {
		sel.Chosen = sel.Chosen[:b]
	}
	sel.Probs.Resize(b, m)
	return sel
}

// Recycle returns a Selection obtained from Select to the sampler's free
// list. The caller must be done with it (and with the graph pass that
// produced LogQ); the training loop recycles at batch release.
func (s *NeighborSampler) Recycle(sel *Selection) {
	if sel == nil {
		return
	}
	sel.LogQ = nil // graph-owned; dead at the producing graph's Reset
	s.selMu.Lock()
	s.selFree = append(s.selFree, sel)
	s.selMu.Unlock()
}

// Select draws n supporting neighbors per root without replacement from
// q_θ(·|v) = softmax(scores) (Algorithm 1 line 6). The returned Selection is
// pooled: hand it back with Recycle when the batch that produced it is
// released (callers that never Recycle simply fall back to fresh
// allocations).
func (s *NeighborSampler) Select(g *autograd.Graph, c *CandidateSet, n int) *Selection {
	scores := s.Scores(g, c)
	logq := g.LogSoftmaxRows(scores)
	sel := s.getSelection(c.B, c.M)
	sel.LogQ = logq
	if cap(s.wts) < c.M {
		s.wts = make([]float64, c.M)
	}
	weights := s.wts[:c.M]
	for b := 0; b < c.B; b++ {
		row := logq.Val.Row(b)
		for j := range weights {
			p := math.Exp(row[j]) * c.Mask.Data[b*c.M+j]
			weights[j] = p
			sel.Probs.Set(b, j, p)
		}
		valid := c.ValidCount(b)
		if valid == 0 {
			sel.Chosen[b] = sel.Chosen[b][:0]
			continue
		}
		k := mathx.MinInt(n, valid)
		sel.Chosen[b] = s.ws.SampleInto(s.rng, weights, k, sel.Chosen[b])
	}
	return sel
}
