package bench

import (
	"fmt"

	"taser/internal/adaptive"
	"taser/internal/train"
)

// AblationEncoder measures the contribution of each neighbor-encoder
// component (TE, FE, IE — §III-B / §IV-B): TASER on the Wikipedia-style
// dataset with one component removed at a time.
func AblationEncoder(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Ablation — neighbor-encoder components (TGAT, wikipedia) | scale=%.2f epochs=%d\n",
		o.Scale, o.Epochs)
	fmt.Fprintf(o.Out, "%-16s %10s\n", "config", "test MRR")
	for _, row := range []struct {
		name       string
		te, fe, ie bool // disabled flags
	}{
		{"full (TE+FE+IE)", false, false, false},
		{"w/o TE", true, false, false},
		{"w/o FE", false, true, false},
		{"w/o IE", false, false, true},
		{"features only", true, true, true},
	} {
		ds := o.loadDatasets([]string{"wikipedia"})[0]
		cfg := o.baseConfig(train.ModelTGAT)
		cfg.AdaBatch, cfg.AdaNeighbor = true, true
		cfg.Decoder = adaptive.DecoderGATv2
		cfg.DisableTE, cfg.DisableFE, cfg.DisableIE = row.te, row.fe, row.ie
		tr, err := train.New(cfg, ds)
		if err != nil {
			return err
		}
		_, _, test := tr.Run()
		fmt.Fprintf(o.Out, "%-16s %10.4f\n", row.name, test)
	}
	return nil
}

// AblationDecoder compares the four predictor heads (Eqs. 17–20) on both
// backbones; the paper reports TGAT pairing best with GATv2 and GraphMixer
// with the linear/Mixer head.
func AblationDecoder(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Ablation — neighbor-decoder heads (wikipedia) | scale=%.2f epochs=%d\n",
		o.Scale, o.Epochs)
	fmt.Fprintf(o.Out, "%-10s %12s %12s\n", "decoder", "TGAT", "GraphMixer")
	for _, dec := range []adaptive.Decoder{
		adaptive.DecoderLinear, adaptive.DecoderGAT, adaptive.DecoderGATv2, adaptive.DecoderTrans,
	} {
		fmt.Fprintf(o.Out, "%-10s", dec)
		for _, model := range []train.ModelKind{train.ModelTGAT, train.ModelGraphMixer} {
			ds := o.loadDatasets([]string{"wikipedia"})[0]
			cfg := o.baseConfig(model)
			cfg.AdaBatch, cfg.AdaNeighbor = true, true
			cfg.Decoder = dec
			tr, err := train.New(cfg, ds)
			if err != nil {
				return err
			}
			_, _, test := tr.Run()
			fmt.Fprintf(o.Out, " %12.4f", test)
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// AblationHeuristics contrasts human-defined static denoising policies
// (uniform, most-recent, inverse-timespan — §I/§II-A) against TASER's
// learned sampler on the same backbone. The paper's claim to reproduce: the
// inverse-timespan heuristic does NOT reliably beat uniform, while the
// adaptive sampler encompasses and outperforms the heuristics.
func AblationHeuristics(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Ablation — static heuristics vs adaptive sampling (TGAT, wikipedia) | scale=%.2f epochs=%d\n",
		o.Scale, o.Epochs)
	fmt.Fprintf(o.Out, "%-24s %10s\n", "sampling", "test MRR")
	for _, row := range []struct {
		name     string
		policy   string
		adaptive bool
	}{
		{"uniform (baseline)", "uniform", false},
		{"most-recent", "recent", false},
		{"inverse-timespan", "invts", false},
		{"adaptive (TASER)", "uniform", true},
	} {
		ds := o.loadDatasets([]string{"wikipedia"})[0]
		cfg := o.baseConfig(train.ModelTGAT)
		cfg.FinderPolicy = row.policy
		cfg.AdaBatch, cfg.AdaNeighbor = row.adaptive, row.adaptive
		cfg.Decoder = adaptive.DecoderGATv2
		tr, err := train.New(cfg, ds)
		if err != nil {
			return err
		}
		_, _, test := tr.Run()
		fmt.Fprintf(o.Out, "%-24s %10.4f\n", row.name, test)
	}
	return nil
}

// AblationCache compares cache replacement policies (Algorithm 3's
// frequency policy vs. LRU) at a 20% ratio under the TASER access pattern:
// hit rate after warm-up and the resulting FS time.
func AblationCache(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Ablation — cache replacement policy (TGAT+TASER, 20%% ratio) | scale=%.2f\n", o.Scale)
	fmt.Fprintf(o.Out, "%-10s %-8s %10s %10s\n", "dataset", "policy", "hit rate", "FS (s)")
	for _, name := range []string{"wikipedia", "reddit"} {
		for _, policy := range []string{"freq", "lru"} {
			ds := o.loadDatasets([]string{name})[0]
			cfg := o.baseConfig(train.ModelTGAT)
			cfg.AdaBatch, cfg.AdaNeighbor = true, true
			cfg.Decoder = adaptive.DecoderGATv2
			cfg.CacheRatio = 0.2
			cfg.CachePolicy = policy
			tr, err := train.New(cfg, ds)
			if err != nil {
				return err
			}
			tr.TrainEpoch() // warm-up
			tr.EdgeStore.Policy().ResetStats()
			tr.Timer.Reset()
			tr.TrainEpoch()
			fmt.Fprintf(o.Out, "%-10s %-8s %9.1f%% %10.3f\n",
				name, policy, 100*tr.EdgeStore.Policy().HitRate(), tr.Timer.Get("FS").Seconds())
		}
	}
	return nil
}
