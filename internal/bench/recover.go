package bench

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"taser/internal/mathx"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/train"
	"taser/internal/wal"
)

// Recover measures the durability subsystem (DESIGN.md §9) along both axes
// the design trades between:
//
// Table A — recovery time vs stream length, for the two recovery shapes. The
// crash path loses the process without a final checkpoint (fault injection
// kills the store after the last group commit), so Recover replays the whole
// WAL; the clean path shuts down through Close, so Recover bulk-loads the
// final checkpoint and replays nothing. The gap between the rows is what a
// checkpoint buys; the crash rows' growth with stream length is the cost of
// relying on the log alone.
//
// Table B — durable ingest overhead: events/sec and allocations per event
// with durability off, with the configured group-commit interval, and with
// fsync-per-event (SyncEvery=1). Group commit is the row that must sit within
// a couple of allocations of the non-durable baseline; SyncEvery=1 shows the
// fsync floor a caller opts into for zero-loss ingest.
func Recover(o Options) error {
	o = o.Normalize()
	ds := o.loadDatasets([]string{"wikipedia"})[0]

	// Weights are irrelevant to recovery timing; take the model from a fresh
	// trainer (same shortcut as the serve load test).
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: o.Hidden, TimeDim: o.TimeDim, Seed: o.Seed,
	}, ds)
	if err != nil {
		return err
	}

	syncEvery := o.RecoverSyncEvery
	if syncEvery == 0 {
		syncEvery = 64
	}
	lengths := o.RecoverEvents
	if len(lengths) == 0 {
		lengths = []int{1024, 4096, 16384}
	}

	fmt.Fprintf(o.Out, "Recovery time vs stream length (%s graph, edge dim %d, sync every %d)\n",
		ds.Spec.Name, ds.Spec.EdgeDim, syncEvery)
	fmt.Fprintf(o.Out, "%-8s %-7s | %9s %9s %9s | %12s %12s\n",
		"events", "path", "recovered", "ckpt", "replayed", "recover(ms)", "µs/event")
	for _, n := range lengths {
		for _, crash := range []bool{true, false} {
			row, err := recoverRow(o, ds.Spec.NumNodes, tr, n, syncEvery, crash)
			if err != nil {
				return err
			}
			fmt.Fprint(o.Out, row)
		}
	}

	fmt.Fprintf(o.Out, "\nDurable ingest overhead (%d events, group commit vs fsync-per-event)\n",
		overheadEvents)
	fmt.Fprintf(o.Out, "%-16s | %10s %10s %12s\n", "durability", "ev/s", "µs/event", "allocs/event")
	for _, mode := range []struct {
		label     string
		syncEvery int // 0 = durability off
	}{
		{"off", 0},
		{fmt.Sprintf("sync-every=%d", syncEvery), syncEvery},
		{"sync-every=1", 1},
	} {
		row, err := overheadRow(o, ds.Spec.NumNodes, tr, mode.label, mode.syncEvery)
		if err != nil {
			return err
		}
		fmt.Fprint(o.Out, row)
	}
	return nil
}

// overheadEvents is the fixed stream length of Table B: long enough to
// amortize warmup, short enough that the fsync-per-event row stays tolerable
// on slow filesystems.
const overheadEvents = 1024

// recoverEngine builds a serving engine for the recovery experiment; dur.Dir
// empty means durability off.
func recoverEngine(o Options, numNodes int, tr *train.Trainer, dur serve.Durability) (*serve.Engine, error) {
	return serve.New(serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: numNodes, NodeFeat: tr.DS.NodeFeat, EdgeDim: tr.DS.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent,
		MaxBatch: 32, MaxWait: 500 * time.Microsecond,
		SnapshotEvery: 128, Seed: o.Seed,
		Durability: dur,
	})
}

// feedSynthetic streams n synthetic chronological events (uniform endpoints,
// zero-filled edge features) into the engine, stopping at the first
// durability rejection (the fault-injected runs hit one at the kill point).
func feedSynthetic(e *serve.Engine, seed uint64, numNodes, n int) (int, error) {
	rng := mathx.NewRNG(seed ^ 0x5ec0fe4)
	tm := 0.0
	for i := 0; i < n; i++ {
		tm += rng.Float64()
		err := e.Ingest(int32(rng.Intn(numNodes)), int32(rng.Intn(numNodes)), tm, nil)
		if err != nil {
			return i, err
		}
	}
	return n, nil
}

// recoverRow ingests n events into a durable engine, ends the process's life
// either by fault-injected kill (crash: the final checkpoint and any unsynced
// tail are lost) or by clean Close (final checkpoint covers everything), then
// times Recover on a fresh engine over the surviving store.
func recoverRow(o Options, numNodes int, tr *train.Trainer, n, syncEvery int, crash bool) (string, error) {
	dir, err := os.MkdirTemp("", "taser-recover-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	ff := wal.NewFaultFS(wal.OSFS{})
	dur := serve.Durability{Dir: dir, SyncEvery: syncEvery, FS: ff}
	e, err := recoverEngine(o, numNodes, tr, dur)
	if err != nil {
		return "", err
	}
	if _, err := feedSynthetic(e, o.Seed, numNodes, n); err != nil {
		e.Close()
		return "", err
	}
	if crash {
		// Kill the store first: Close's final checkpoint and WAL sync fail,
		// leaving exactly what the group commits already made durable — the
		// state a real crash leaves behind.
		ff.Kill()
	}
	e.Close()

	rec, err := recoverEngine(o, numNodes, tr, serve.Durability{Dir: dir, SyncEvery: syncEvery})
	if err != nil {
		return "", err
	}
	defer rec.Close()
	rep, err := rec.Recover()
	if err != nil {
		return "", err
	}
	recovered := rep.CheckpointEvents + rep.ReplayedEvents
	perEvent := 0.0
	if recovered > 0 {
		perEvent = float64(rep.Duration.Microseconds()) / float64(recovered)
	}
	path := "clean"
	if crash {
		path = "crash"
	}
	return fmt.Sprintf("%-8d %-7s | %9d %9d %9d | %12.2f %12.2f\n",
		n, path, recovered, rep.CheckpointEvents, rep.ReplayedEvents,
		float64(rep.Duration.Microseconds())/1000, perEvent), nil
}

// overheadRow times overheadEvents ingests and counts heap allocations per
// event (runtime.MemStats.Mallocs delta — unaffected by GC timing) for one
// durability mode.
func overheadRow(o Options, numNodes int, tr *train.Trainer, label string, syncEvery int) (string, error) {
	var dur serve.Durability
	var dir string
	if syncEvery > 0 {
		d, err := os.MkdirTemp("", "taser-recover-*")
		if err != nil {
			return "", err
		}
		dir = d
		defer os.RemoveAll(dir)
		dur = serve.Durability{Dir: dir, SyncEvery: syncEvery}
	}
	e, err := recoverEngine(o, numNodes, tr, dur)
	if err != nil {
		return "", err
	}
	defer e.Close()

	// Warm the append paths so slice growth doesn't bill the measured window.
	if _, err := feedSynthetic(e, o.Seed, numNodes, 256); err != nil {
		return "", err
	}

	rng := mathx.NewRNG(o.Seed ^ 0xbadc0de)
	tm, _ := e.Watermark()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < overheadEvents; i++ {
		tm += rng.Float64()
		if err := e.Ingest(int32(rng.Intn(numNodes)), int32(rng.Intn(numNodes)), tm, nil); err != nil {
			return "", err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	perEventUS := float64(elapsed.Microseconds()) / overheadEvents
	allocs := float64(after.Mallocs-before.Mallocs) / overheadEvents
	evPerSec := float64(overheadEvents) / elapsed.Seconds()
	return fmt.Sprintf("%-16s | %10.0f %10.2f %12.2f\n", label, evPerSec, perEventUS, allocs), nil
}
