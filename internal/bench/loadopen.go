package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"taser/internal/mathx"
	"taser/internal/overload"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/stats"
	"taser/internal/train"
)

// loadOpen is the open-loop overload experiment (-exp loadhttp -open): unlike
// the closed-loop rows — where clients wait for each response, so a slow
// server throttles its own offered load — arrivals here come at a constant
// rate regardless of completions, which is how real overload behaves.
//
// The timeline is continuous (no drain between phases, so a backlog built in
// the burst is visible in recovery):
//
//	baseline  rate/4 for one phase duration
//	burst     the full offered rate (2× the calibrated sustainable rate)
//	recovery  rate/4 again
//
// It runs twice over self-hosted engines: "static" (today's fixed
// MaxBatch/MaxWait, unbounded admission — the burst builds an unbounded
// queue and recovery-phase latency shows it) and "adaptive" (SLO controller
// + bounded admission — excess load is shed with 429 + Retry-After and the
// completed requests' p99 stays near the target). Per-second
// offered/completed/shed accounting and a machine-greppable OPENLOOP summary
// line per variant close the loop for scripts/overload_smoke.sh.
func loadOpen(o Options) error {
	if o.ServeAddr != "" {
		return fmt.Errorf("bench: the open-loop experiment self-hosts its static/adaptive engine pair; it cannot target -serve-addr")
	}
	if len(o.ServeShards) > 0 {
		return fmt.Errorf("bench: the open-loop experiment is single-engine; it cannot combine with -shards")
	}
	dur := o.OpenDuration
	if dur == 0 {
		dur = 3 * time.Second
	}
	slo := o.OpenSLO
	if slo == 0 {
		slo = 25 * time.Millisecond
	}
	queue := o.OpenQueue
	if queue == 0 {
		queue = 64
	}
	ds := o.loadDatasets([]string{"wikipedia"})[0]
	numNodes := ds.Spec.NumNodes
	weights := make([]float64, numNodes)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -1.1)
	}
	zipf := mathx.NewAlias(weights)

	variants := []struct {
		name string
		ov   overload.Config
	}{
		{"static", overload.Config{}},
		{"adaptive", overload.Config{TargetP99: slo, Interval: 50 * time.Millisecond, MaxQueue: queue}},
	}
	offered := o.OpenRate
	for _, v := range variants {
		tr, err := train.New(train.Config{
			Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
			Hidden: o.Hidden, TimeDim: o.TimeDim, Seed: o.Seed,
		}, ds)
		if err != nil {
			return err
		}
		e, err := serve.New(serve.Config{
			Model: tr.Model, Pred: tr.Pred,
			NumNodes: numNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			Budget: tr.Cfg.N, Policy: sampler.MostRecent,
			MaxBatch: 32, MaxWait: 500 * time.Microsecond,
			CacheSize: 2048, SnapshotEvery: 128, Seed: o.Seed,
			Overload: v.ov,
		})
		if err != nil {
			return err
		}
		runErr := func() error {
			defer e.Close()
			if err := e.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
				return err
			}
			srv := httptest.NewServer(serve.NewHandler(e))
			defer srv.Close()
			wm, _ := e.Watermark()
			qt := wm + 1e9

			// Calibrate (and warm) every variant with the same closed-loop
			// traffic; the static run's measured rate fixes the offered burst
			// for both, so the comparison is at identical offered load.
			sus, err := calibrateRate(o, srv.URL, zipf, qt)
			if err != nil {
				return err
			}
			if offered == 0 {
				offered = 2 * sus
			}
			fmt.Fprintf(o.Out, "\n%s engine: sustainable ~%.0f req/s closed-loop, offered burst %.0f req/s (open-loop)\n",
				v.name, sus, offered)
			return runOpenTimeline(o, srv.URL, v.name, zipf, qt, offered, dur, slo)
		}()
		if runErr != nil {
			return runErr
		}
	}
	return nil
}

// calibrateRate measures the closed-loop saturation throughput: 4 clients
// back-to-back, no think time — the rate the engine sustains when clients
// self-throttle. The open-loop burst offers a multiple of this.
func calibrateRate(o Options, base string, zipf *mathx.Alias, qt float64) (float64, error) {
	const clients, reqs = 4, 100
	client := openHTTPClient()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := mathx.NewRNG(o.Seed + uint64(c)*104729)
			for i := 0; i < reqs; i++ {
				status, _, err := postJSONStatus(client, base+"/v1/predict",
					map[string]any{"src": zipf.Draw(rng), "dst": zipf.Draw(rng), "t": qt})
				if err != nil {
					errs[c] = err
					return
				}
				if status/100 != 2 {
					errs[c] = fmt.Errorf("bench: calibration predict: HTTP %d", status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(clients*reqs) / time.Since(start).Seconds(), nil
}

// openSecond is one second of the open-loop timeline's accounting, keyed by
// arrival time (a request that arrives in second 3 and completes in second 7
// counts against second 3 — that tail is exactly the congestion signal).
type openSecond struct {
	phase     string
	offered   int
	completed int
	shed      int
	errs      int
	lats      []float64 // seconds, completed requests only
}

// runOpenTimeline drives the three-phase constant-arrival-rate timeline and
// prints the per-second table plus the OPENLOOP summary line.
func runOpenTimeline(o Options, base, label string, zipf *mathx.Alias, qt, rate float64, dur time.Duration, slo time.Duration) error {
	phases := []struct {
		name string
		rate float64
	}{
		{"baseline", rate / 4},
		{"burst", rate},
		{"recovery", rate / 4},
	}
	totalSecs := int(3*dur/time.Second) + 2
	secs := make([]openSecond, totalSecs)
	var mu sync.Mutex // guards secs[i] mutation from completion goroutines
	var wg sync.WaitGroup
	var launched int
	var shedMissingRA int
	client := openHTTPClient()
	rng := mathx.NewRNG(o.Seed ^ 0x09e2)

	start := time.Now()
	for _, ph := range phases {
		interval := time.Duration(float64(time.Second) / ph.rate)
		phEnd := time.Now().Add(dur)
		next := time.Now()
		for {
			now := time.Now()
			if !now.Before(phEnd) {
				break
			}
			if now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(interval)
			sec := int(time.Since(start) / time.Second)
			if sec >= totalSecs {
				sec = totalSecs - 1
			}
			mu.Lock()
			secs[sec].phase = ph.name
			secs[sec].offered++
			mu.Unlock()
			launched++

			var url string
			var body map[string]any
			if rng.Float64() < 0.8 {
				url, body = base+"/v1/predict", map[string]any{"src": zipf.Draw(rng), "dst": zipf.Draw(rng), "t": qt}
			} else {
				url, body = base+"/v1/embed", map[string]any{"node": zipf.Draw(rng), "t": qt}
			}
			wg.Add(1)
			go func(sec int) {
				defer wg.Done()
				t0 := time.Now()
				status, retryAfter, err := postJSONStatus(client, url, body)
				lat := time.Since(t0).Seconds()
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil:
					secs[sec].errs++
				case status == http.StatusTooManyRequests:
					secs[sec].shed++
					if ra, err := strconv.Atoi(retryAfter); err != nil || ra < 1 {
						shedMissingRA++
					}
				case status/100 == 2:
					secs[sec].completed++
					secs[sec].lats = append(secs[sec].lats, lat)
				default:
					secs[sec].errs++
				}
			}(sec)
		}
	}

	// Bounded drain: an open-loop run must not hang on a wedged server —
	// whatever has not completed well past the timeline is counted lost.
	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	drainBudget := 2*dur + 30*time.Second
	select {
	case <-joined:
	case <-time.After(drainBudget):
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(o.Out, "%-4s %-9s %8s %9s %6s %5s %9s %9s\n",
		"sec", "phase", "offered", "completed", "shed", "errs", "p50(ms)", "p99(ms)")
	var done, shed, errCount int
	phaseLats := map[string][]float64{}
	for i, s := range secs {
		if s.offered == 0 {
			continue
		}
		done += s.completed
		shed += s.shed
		errCount += s.errs
		phaseLats[s.phase] = append(phaseLats[s.phase], s.lats...)
		p50, p99 := math.NaN(), math.NaN()
		if len(s.lats) > 0 {
			p50 = stats.Quantile(s.lats, 0.50) * 1e3
			p99 = stats.Quantile(s.lats, 0.99) * 1e3
		}
		fmt.Fprintf(o.Out, "%-4d %-9s %8d %9d %6d %5d %9.2f %9.2f\n",
			i, s.phase, s.offered, s.completed, s.shed, s.errs, p50, p99)
	}
	lost := launched - done - shed - errCount
	quant := func(phase string, q float64) float64 {
		l := phaseLats[phase]
		if len(l) == 0 {
			return math.NaN()
		}
		return stats.Quantile(l, q) * 1e3
	}
	// retry_after_ok: every shed response carried a usable Retry-After
	// (vacuously true when nothing shed — the static engine never sheds).
	retryOK := shedMissingRA == 0
	fmt.Fprintf(o.Out, "OPENLOOP %s burst_p99_ms=%.2f recovery_p99_ms=%.2f shed=%d retry_after_ok=%v lost=%d slo_ms=%.0f\n",
		label, quant("burst", 0.99), quant("recovery", 0.99), shed, retryOK, lost,
		float64(slo.Milliseconds()))

	// Surface the control plane's own account of the run when it has one.
	if st, err := fetchStats(base); err == nil {
		if ov, ok := st["overload"].(map[string]any); ok {
			eb, _ := statNum(ov, "effective_max_batch")
			ew, _ := statNum(ov, "effective_max_wait_us")
			fmt.Fprintf(o.Out, "overload plane: effective_max_batch=%.0f effective_max_wait_us=%.0f\n", eb, ew)
		}
	}
	return nil
}

// openHTTPClient builds the open-loop driver's client: enough idle
// connections that a burst does not spend its budget on TCP churn, and a hard
// timeout so a wedged server turns into counted losses, not a hung bench.
func openHTTPClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}
}

// postJSONStatus POSTs body and reports the response status and Retry-After
// header instead of folding non-2xx into an error — the open-loop driver
// accounts 429s, it does not abort on them.
func postJSONStatus(client *http.Client, url string, body any) (status int, retryAfter string, err error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}
