package bench

import (
	"fmt"
	"time"

	"taser/internal/finetune"
	"taser/internal/mathx"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/stats"
	"taser/internal/train"
)

// Finetune measures what online fine-tuning buys on a drifted stream: a
// model is pretrained on the training split, then the evaluation split is
// replayed with every destination remapped through a fixed permutation — the
// (src, dst) affinities the model learned stop holding, which is the
// distribution shift continual learning exists for. Two engines serve the
// drifted stream prequentially (each event is scored against FinetuneNegs
// negatives *before* it is ingested, DistTGL-style MRR): one frozen, one
// with the internal/finetune Tuner running a round every FinetuneEvery
// events. Both engines see identical events, query times and negative sets.
//
// Reported per engine: MRR over the first and second half of the drifted
// stream (adaptation shows as the fine-tuned second half pulling away),
// predict latency p50/p99 — the fine-tuned column includes every weight
// swap, which is the non-blocking-publication claim — and the weight
// versions published/applied plus the mean in-scheduler swap cost.
func Finetune(o Options) error {
	o = o.Normalize()
	every := o.FinetuneEvery
	if every == 0 {
		every = 96
	}
	negs := o.FinetuneNegs
	if negs == 0 {
		negs = 19
	}
	lr := o.FinetuneLR
	if lr == 0 {
		lr = 3e-4
	}
	passes := o.FinetunePasses
	if passes == 0 {
		passes = 4
	}
	ds := o.loadDatasets([]string{"wikipedia"})[0]

	cfg := o.baseConfig(train.ModelTGAT)
	cfg.FinderPolicy = "recent" // deterministic serving-parity sampling
	cfg.CacheRatio = 0
	tr, err := train.New(cfg, ds)
	if err != nil {
		return err
	}
	for e := 0; e < o.Epochs; e++ {
		tr.TrainEpoch()
	}

	// Drifted tail: permute the destination partition so pretrained pair
	// affinities break while the marginal node/degree statistics survive,
	// and flip the sign of every edge-feature row. The permutation is the
	// kind of shift structural ingest partially absorbs (new neighborhoods
	// accumulate in the graph either way); the feature sign flip is pure
	// semantic drift — only parameter adaptation can re-learn what the
	// features now mean, which is exactly the gap between the two arms.
	rng := mathx.NewRNG(o.Seed ^ 0xd41f7)
	lo := ds.Spec.NumSrc // 0 for general graphs: permute everything
	perm := rng.Perm(ds.Spec.NumNodes - lo)
	remap := func(v int32) int32 {
		if int(v) < lo {
			return v
		}
		return int32(lo + perm[int(v)-lo])
	}
	driftFeat := ds.EdgeFeat.Clone()
	driftFeat.ScaleInPlace(-1)
	drift := make([]event, 0, len(ds.Graph.Events)-ds.TrainEnd)
	for i := ds.TrainEnd; i < len(ds.Graph.Events); i++ {
		ev := ds.Graph.Events[i]
		drift = append(drift, event{src: ev.Src, dst: remap(ev.Dst), t: ev.Time, row: i})
	}
	// Per-event negative candidates, shared by both engines.
	negSets := make([][]int32, len(drift))
	for i := range negSets {
		ns := make([]int32, negs)
		for j := range ns {
			ns[j] = int32(lo + rng.Intn(ds.Spec.NumNodes-lo))
		}
		negSets[i] = ns
	}

	mkEngine := func() (*serve.Engine, error) {
		e, err := serve.New(serve.Config{
			Model: tr.Model.Clone(), Pred: tr.Pred.Clone(),
			NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			Budget: tr.Cfg.N, Policy: sampler.MostRecent,
			MaxBatch: 2 * (1 + negs), MaxWait: 50 * time.Microsecond,
			SnapshotEvery: every, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		if err := e.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}

	fmt.Fprintf(o.Out, "Online fine-tuning on a drifted stream (%s, %d drifted events, round every %d, %d negatives, lr %g, passes %d)\n",
		ds.Spec.Name, len(drift), every, negs, lr, passes)
	fmt.Fprintf(o.Out, "%-11s %9s %9s %9s %9s %7s %9s\n",
		"model", "MRR(1st)", "MRR(2nd)", "p50(ms)", "p99(ms)", "swaps", "swap(us)")

	var frozen2nd, tuned2nd float64
	for _, arm := range []string{"frozen", "fine-tuned"} {
		e, err := mkEngine()
		if err != nil {
			return err
		}
		var tu *finetune.Tuner
		if arm == "fine-tuned" {
			tu, err = finetune.New(finetune.Config{
				Engine: e, Model: tr.Model, Pred: tr.Pred,
				NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
				NumNodes: ds.Spec.NumNodes, NumSrc: ds.Spec.NumSrc,
				Budget: tr.Cfg.N, Policy: sampler.MostRecent,
				ReplayWindow: 4 * every, BatchSize: 64, Passes: passes, LR: lr,
				Seed: o.Seed ^ 0xf1e,
			})
			if err != nil {
				e.Close()
				return err
			}
			// The tuner's seed round runs on the bootstrap split so its Adam
			// state is warm before drift begins (the frozen arm's pretraining
			// already saw those events; this keeps the arms comparable).
			if _, err := tu.RunOnce(); err != nil {
				e.Close()
				return err
			}
		}

		var sum1, sum2 float64
		var n1, n2 int
		var lats []float64
		for i, ev := range drift {
			// Test: prequential rank of the true destination among the
			// negatives, scored strictly before the event is ingested.
			pos, lat, err := timedPredict(e, ev.src, ev.dst, ev.t)
			if err != nil {
				e.Close()
				return err
			}
			lats = append(lats, lat)
			rank := 1
			for _, nd := range negSets[i] {
				s, lat, err := timedPredict(e, ev.src, nd, ev.t)
				if err != nil {
					e.Close()
					return err
				}
				lats = append(lats, lat)
				if s >= pos {
					rank++
				}
			}
			if i < len(drift)/2 {
				sum1 += 1.0 / float64(rank)
				n1++
			} else {
				sum2 += 1.0 / float64(rank)
				n2++
			}
			// Then train: ingest the event; round the tuner at cadence.
			if err := e.Ingest(ev.src, ev.dst, ev.t, driftFeat.Row(ev.row)); err != nil {
				e.Close()
				return err
			}
			if tu != nil && (i+1)%every == 0 {
				e.PublishSnapshot()
				if _, err := tu.RunOnce(); err != nil {
					e.Close()
					return err
				}
			}
		}
		st := e.Stats()
		mrr1, mrr2 := sum1/float64(mathx.MaxInt(n1, 1)), sum2/float64(mathx.MaxInt(n2, 1))
		fmt.Fprintf(o.Out, "%-11s %9.4f %9.4f %9.2f %9.2f %7d %9.1f\n",
			arm, mrr1, mrr2,
			stats.Quantile(lats, 0.50)*1e3, stats.Quantile(lats, 0.99)*1e3,
			st.WeightSwaps, float64(st.AvgSwap.Microseconds()))
		if arm == "frozen" {
			frozen2nd = mrr2
		} else {
			tuned2nd = mrr2
		}
		if tu != nil {
			tu.Close()
		}
		e.Close()
	}
	if tuned2nd > frozen2nd {
		fmt.Fprintf(o.Out, "fine-tuned beats frozen by %+.4f MRR on the drifted second half\n", tuned2nd-frozen2nd)
	} else {
		fmt.Fprintf(o.Out, "WARNING: fine-tuned did not beat frozen (%.4f vs %.4f) — try more rounds or a higher lr\n",
			tuned2nd, frozen2nd)
	}
	return nil
}

// event is one drifted stream entry (row indexes the original edge-feature
// row, reused unchanged).
type event struct {
	src, dst int32
	t        float64
	row      int
}

// timedPredict scores one pair and returns (score, seconds).
func timedPredict(e *serve.Engine, src, dst int32, t float64) (float64, float64, error) {
	start := time.Now()
	res, err := e.PredictLink(src, dst, t)
	if err != nil {
		return 0, 0, err
	}
	return res.Score, time.Since(start).Seconds(), nil
}
