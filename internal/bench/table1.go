package bench

import (
	"fmt"

	"taser/internal/adaptive"
	"taser/internal/train"
)

// Table1 reproduces Table I: test MRR of the four sampling variants on every
// dataset for both backbones. The paper's finding to reproduce is the
// *ordering* — each adaptive component alone beats the baseline, and TASER
// (both combined) is at least as good — not the absolute numbers (our
// datasets are synthetic and ~100× smaller).
func Table1(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Table I — accuracy (test MRR, %d negatives) | scale=%.2f epochs=%d seed=%d\n",
		49, o.Scale, o.Epochs, o.Seed)
	for _, ds := range o.loadDatasets(allNames) {
		fmt.Fprintf(o.Out, "\n%s\n", ds)
		fmt.Fprintf(o.Out, "%-20s %12s %12s\n", "variant", "TGAT", "GraphMixer")
		type cell struct{ tgat, mixer float64 }
		rows := make([]cell, len(Variants()))
		for vi, v := range Variants() {
			for _, model := range []train.ModelKind{train.ModelTGAT, train.ModelGraphMixer} {
				cfg := o.baseConfig(model)
				cfg.AdaBatch, cfg.AdaNeighbor = v.AdaBatch, v.AdaNeighbor
				// The paper pairs TGAT with the GATv2 head and GraphMixer
				// with the linear/Mixer head (§IV-B).
				if model == train.ModelTGAT {
					cfg.Decoder = adaptive.DecoderGATv2
				} else {
					cfg.Decoder = adaptive.DecoderLinear
				}
				tr, err := train.New(cfg, ds)
				if err != nil {
					return err
				}
				_, _, test := tr.Run()
				if model == train.ModelTGAT {
					rows[vi].tgat = test
				} else {
					rows[vi].mixer = test
				}
			}
		}
		for vi, v := range Variants() {
			fmt.Fprintf(o.Out, "%-20s %12.4f %12.4f\n", v.Name, rows[vi].tgat, rows[vi].mixer)
		}
		fmt.Fprintf(o.Out, "%-20s %+12.4f %+12.4f\n", "(Improvement)",
			rows[3].tgat-rows[0].tgat, rows[3].mixer-rows[0].mixer)
	}
	return nil
}

// Table2 reproduces Table II: the dataset statistics.
func Table2(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Table II — dataset statistics (scale=%.2f, ~100× below the paper)\n", o.Scale)
	for _, ds := range o.loadDatasets(allNames) {
		fmt.Fprintln(o.Out, ds)
	}
	return nil
}
