package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"taser/internal/mathx"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/stats"
	"taser/internal/train"
)

// LoadHTTP is the HTTP-mode load generator: the same closed-loop Zipfian
// request mix as Serve, but driven over real HTTP — JSON bodies, connection
// reuse, one ingest producer POSTing /v1/ingest while client goroutines POST
// /v1/predict and /v1/embed — so the measured latency includes the full
// serving stack a deployment pays, not just the in-process engine.
//
// With Options.ServeAddr set it targets a live taser-serve at that base URL
// (polling /v1/stats until the server finishes pretraining, up to
// Options.ServeWait); `make loadtest-http` wires that up end to end. With an
// empty ServeAddr it self-hosts an engine behind serve.NewHandler on a
// loopback listener, which keeps the experiment (and its smoke test)
// self-contained.
func LoadHTTP(o Options) error {
	o = o.Normalize()
	if o.OpenLoop {
		return loadOpen(o)
	}
	if len(o.ServeShards) > 0 {
		return loadHTTPShardSweep(o)
	}
	base := o.ServeAddr
	if base == "" {
		ds := o.loadDatasets([]string{"wikipedia"})[0]
		tr, err := train.New(train.Config{
			Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
			Hidden: o.Hidden, TimeDim: o.TimeDim, Seed: o.Seed,
		}, ds)
		if err != nil {
			return err
		}
		e, err := serve.New(serve.Config{
			Model: tr.Model, Pred: tr.Pred,
			NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			Budget: tr.Cfg.N, Policy: sampler.MostRecent,
			MaxBatch: 32, MaxWait: 500 * time.Microsecond,
			CacheSize: 2048, SnapshotEvery: 128, Seed: o.Seed,
		})
		if err != nil {
			return err
		}
		defer e.Close()
		if err := e.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
			return err
		}
		srv := httptest.NewServer(serve.NewHandler(e))
		defer srv.Close()
		base = srv.URL
		fmt.Fprintf(o.Out, "self-hosted %s on %s\n", ds.Spec.Name, base)
	}

	wait := o.ServeWait
	if wait == 0 {
		wait = 120 * time.Second
	}
	st, err := pollStats(base, wait)
	if err != nil {
		return err
	}
	nodesF, err := statNum(st, "nodes")
	if err != nil {
		return err
	}
	watermark, err := statNum(st, "watermark")
	if err != nil {
		return err
	}
	numNodes := int(nodesF)
	fmt.Fprintf(o.Out, "server ready: %d nodes, %v events, watermark t=%v, weights v%v\n",
		numNodes, st["events"], watermark, st["weight_version"])

	clientsList := o.ServeClients
	if len(clientsList) == 0 {
		clientsList = []int{1, 4, 16}
	}
	reqs := o.ServeRequests
	if reqs == 0 {
		reqs = 200
	}
	rate := o.ServeIngestRate
	if rate == 0 {
		rate = 500 // events/sec over HTTP
	}

	// Zipfian node popularity, as the in-process generator uses.
	weights := make([]float64, numNodes)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -1.1)
	}
	zipf := mathx.NewAlias(weights)
	qt := watermark + 1e9 // at-or-past every event, like the in-process loadgen

	fmt.Fprintf(o.Out, "HTTP load test (%d reqs/client, ingest %.0f ev/s, Zipf s=1.1, 80%% predict / 20%% embed)\n",
		reqs, rate)
	fmt.Fprintf(o.Out, "%-8s %8s %9s %9s %9s %7s %8s %8s\n",
		"clients", "qps", "p50(ms)", "p99(ms)", "batch", "hit%", "ingested", "weights")

	for _, clients := range clientsList {
		if err := loadHTTPRow(o, base, zipf, qt, clients, reqs, rate, numNodes); err != nil {
			return err
		}
	}
	return nil
}

// loadHTTPShardSweep runs the HTTP load test once per requested shard count:
// each K self-hosts a K-shard GraphMixer fleet (a K>1 fleet requires a
// one-layer model) bootstrapped with the same training split, drives the same
// closed-loop client rows against it, and then reports per-shard throughput
// from the merged /v1/stats shards[] blocks — events and requests per shard,
// plus the fleet's tee and scatter/gather counters. On a single core the
// sweep measures routing overhead and balance, not wall-clock speedup; see
// EXPERIMENTS.md.
func loadHTTPShardSweep(o Options) error {
	if o.ServeAddr != "" {
		return fmt.Errorf("bench: the -shards sweep self-hosts one fleet per shard count; it cannot target -serve-addr")
	}
	ds := o.loadDatasets([]string{"wikipedia"})[0]
	clientsList := o.ServeClients
	if len(clientsList) == 0 {
		clientsList = []int{8}
	}
	reqs := o.ServeRequests
	if reqs == 0 {
		reqs = 200
	}
	rate := o.ServeIngestRate
	if rate == 0 {
		rate = 500
	}
	for _, K := range o.ServeShards {
		tr, err := train.New(train.Config{
			Model: train.ModelGraphMixer, Finder: train.FinderGPU, FinderPolicy: "recent",
			Hidden: o.Hidden, TimeDim: o.TimeDim, Seed: o.Seed,
		}, ds)
		if err != nil {
			return err
		}
		fleet, err := serve.NewFleet(serve.FleetConfig{
			Config: serve.Config{
				Model: tr.Model, Pred: tr.Pred,
				NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
				Budget: tr.Cfg.N, Policy: sampler.MostRecent,
				MaxBatch: 32, MaxWait: 500 * time.Microsecond,
				CacheSize: 2048, SnapshotEvery: 128, Seed: o.Seed,
			},
			Shards: K,
		})
		if err != nil {
			return err
		}
		if err := fleet.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
			fleet.Close()
			return err
		}
		srv := httptest.NewServer(serve.NewHandler(fleet))
		st, err := fetchStats(srv.URL)
		if err == nil {
			var nodesF, watermark float64
			if nodesF, err = statNum(st, "nodes"); err == nil {
				if watermark, err = statNum(st, "watermark"); err == nil {
					err = shardSweepRows(o, srv.URL, K, int(nodesF), watermark, clientsList, reqs, rate)
				}
			}
		}
		srv.Close()
		fleet.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// shardSweepRows drives the closed-loop rows for one shard count and prints
// the per-shard breakdown afterwards.
func shardSweepRows(o Options, base string, K, numNodes int, watermark float64, clientsList []int, reqs int, rate float64) error {
	weights := make([]float64, numNodes)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -1.1)
	}
	zipf := mathx.NewAlias(weights)
	qt := watermark + 1e9

	fmt.Fprintf(o.Out, "shards=%d (graphmixer fleet, %d reqs/client, ingest %.0f ev/s)\n", K, reqs, rate)
	fmt.Fprintf(o.Out, "%-8s %8s %9s %9s %9s %7s %8s %8s\n",
		"clients", "qps", "p50(ms)", "p99(ms)", "batch", "hit%", "ingested", "weights")
	before, err := fetchStats(base)
	if err != nil {
		return err
	}
	for _, clients := range clientsList {
		if err := loadHTTPRow(o, base, zipf, qt, clients, reqs, rate, numNodes); err != nil {
			return err
		}
	}
	after, err := fetchStats(base)
	if err != nil {
		return err
	}
	teed, _ := statNum(after, "events_teed")
	crossPred, _ := statNum(after, "cross_shard_predicts")
	retries, _ := statNum(after, "gather_retries")
	fmt.Fprintf(o.Out, "fleet: teed=%0.f cross_shard_predicts=%.0f gather_retries=%.0f\n", teed, crossPred, retries)
	blocks, ok := after["shards"].([]any)
	if !ok {
		return fmt.Errorf("bench: /v1/stats has no shards[] — is the server a sharded taser-serve?")
	}
	var totalReq float64
	deltas := make([]map[string]float64, len(blocks))
	beforeBlocks, _ := before["shards"].([]any)
	for i, b := range blocks {
		blk, _ := b.(map[string]any)
		d := map[string]float64{}
		for _, key := range []string{"requests", "events", "batches"} {
			v, err := statNum(blk, key)
			if err != nil {
				return err
			}
			if i < len(beforeBlocks) {
				if bb, ok := beforeBlocks[i].(map[string]any); ok {
					if pv, err := statNum(bb, key); err == nil && key == "requests" {
						v -= pv // throughput share is about this sweep's traffic
					}
				}
			}
			d[key] = v
		}
		deltas[i] = d
		totalReq += d["requests"]
	}
	for i, d := range deltas {
		share := 0.0
		if totalReq > 0 {
			share = 100 * d["requests"] / totalReq
		}
		fmt.Fprintf(o.Out, "  shard %d: events=%.0f requests=%.0f (%.0f%% of fleet) batches=%.0f\n",
			i, d["events"], d["requests"], share, d["batches"])
	}
	fmt.Fprintln(o.Out)
	return nil
}

// loadHTTPRow runs one closed-loop row against the server and prints it.
func loadHTTPRow(o Options, base string, zipf *mathx.Alias, qt float64, clients, reqs int, rate float64, numNodes int) error {
	before, err := fetchStats(base)
	if err != nil {
		return err
	}
	// Resume from the live watermark so every row's events are admitted
	// (the snapshot watermark lags by up to SnapshotEvery events and a
	// fixed base would land behind the previous row's stream). qt sits
	// 1e9 past the bootstrap watermark, far above any tick reached here,
	// so probe queries stay at-or-after every ingested event.
	tick, err := statNum(before, "live_watermark")
	if err != nil {
		return err
	}
	// One ingest producer: the watermark contract serializes writers, so a
	// single monotone HTTP producer avoids artificial 409 churn.
	stop := make(chan struct{})
	var ingested atomic.Int64
	var ingestErr error // producer-owned until ingestWG.Wait
	var ingestWG sync.WaitGroup
	ingestWG.Add(1)
	go func() {
		defer ingestWG.Done()
		rng := mathx.NewRNG(o.Seed ^ 0xfeed)
		interval := time.Duration(float64(time.Second) / rate)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tick++
			body := map[string]any{"src": zipf.Draw(rng), "dst": rng.Intn(numNodes), "t": tick}
			switch err := postJSON(base+"/v1/ingest", body, nil); {
			case err == nil:
				ingested.Add(1)
			case errors.Is(err, errStale):
				// Raced another producer past the watermark: skip the event.
			default:
				ingestErr = err // a real failure (5xx, connection reset): stop and report
				return
			}
			time.Sleep(interval)
		}
	}()

	lats := make([][]float64, clients)
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := mathx.NewRNG(o.Seed + uint64(c)*7919)
			for i := 0; i < reqs; i++ {
				v := zipf.Draw(rng)
				var err error
				t0 := time.Now()
				if rng.Float64() < 0.8 {
					err = postJSON(base+"/v1/predict",
						map[string]any{"src": v, "dst": zipf.Draw(rng), "t": qt}, nil)
				} else {
					err = postJSON(base+"/v1/embed",
						map[string]any{"node": v, "t": qt}, nil)
				}
				if err != nil {
					errs[c] = err
					return
				}
				lats[c] = append(lats[c], time.Since(t0).Seconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	ingestWG.Wait()
	if ingestErr != nil {
		return fmt.Errorf("bench: ingest producer failed: %w", ingestErr)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	after, err := fetchStats(base)
	if err != nil {
		return err
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	// Server-side deltas for this row (the server is long-lived; absolute
	// counters span every row and any prior traffic).
	delta := func(key string) (float64, error) {
		a, err := statNum(after, key)
		if err != nil {
			return 0, err
		}
		b, err := statNum(before, key)
		return a - b, err
	}
	hits, err := delta("cache_hits")
	if err != nil {
		return err
	}
	misses, err := delta("cache_misses")
	if err != nil {
		return err
	}
	batches, err := delta("batches")
	if err != nil {
		return err
	}
	roots := hits + misses // resolved roots this row ≈ hits + misses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * hits / (hits + misses)
	}
	avgBatch := 0.0
	if batches > 0 {
		avgBatch = (roots - hits) / batches
	}
	fmt.Fprintf(o.Out, "%-8d %8.0f %9.2f %9.2f %9.1f %6.1f%% %8d %8v\n",
		clients, float64(len(all))/elapsed.Seconds(),
		stats.Quantile(all, 0.50)*1e3, stats.Quantile(all, 0.99)*1e3,
		avgBatch, hitRate, ingested.Load(), after["weight_version"])
	return nil
}

// pollStats waits for the server to come up (it may still be pretraining)
// and returns its first stats payload.
func pollStats(base string, wait time.Duration) (map[string]any, error) {
	deadline := time.Now().Add(wait)
	for {
		st, err := fetchStats(base)
		if err == nil {
			return st, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: server at %s not ready after %v: %w", base, wait, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// fetchStats GETs /v1/stats.
func fetchStats(base string) (map[string]any, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bench: GET /v1/stats: %s", resp.Status)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return st, nil
}

// errStale marks an ingest rejected with HTTP 409 (behind the watermark);
// the producer skips the event, any other failure aborts the row.
var errStale = errors.New("bench: stale event (409)")

// statNum extracts a numeric /v1/stats field, erroring (instead of
// panicking on a type assertion) when the target server's schema lacks it —
// e.g. -serve-addr pointed at something other than a current taser-serve.
func statNum(st map[string]any, key string) (float64, error) {
	v, ok := st[key].(float64)
	if !ok {
		return 0, fmt.Errorf("bench: /v1/stats has no numeric %q — is the server a current taser-serve?", key)
	}
	return v, nil
}

// postJSON POSTs body and decodes into out when non-nil; non-2xx is an
// error, with 409 (stale ingest) distinguished as errStale.
func postJSON(url string, body any, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return errStale
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("bench: POST %s: %s", url, resp.Status)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
