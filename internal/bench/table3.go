package bench

import (
	"fmt"
	"time"

	"taser/internal/adaptive"
	"taser/internal/train"
)

// table3Row is one optimization level of Table III.
type table3Row struct {
	name       string
	finder     train.FinderKind
	cacheRatio float64
}

func table3Rows() []table3Row {
	return []table3Row{
		{"Baseline", train.FinderOrigin, 0},
		{"+GPU NF", train.FinderGPU, 0},
		{"+10% Cache", train.FinderGPU, 0.10},
		{"+20% Cache", train.FinderGPU, 0.20},
		{"+30% Cache", train.FinderGPU, 0.30},
	}
}

// Table3 reproduces Table III: the per-epoch runtime breakdown (NF, AS, FS,
// PP) of the full TASER pipeline as the system optimizations are stacked:
// original neighbor finder → GPU finder → GPU finder + 10/20/30% feature
// cache. The shape to reproduce: NF dominant in the baseline, reduced to ~0
// by the GPU finder; FS reduced severalfold by the cache; total speedups
// larger for TGAT (2 hops) than GraphMixer (1 hop).
//
// Timing protocol: one warm-up epoch (trains the cache, Algorithm 3), then
// one measured epoch. Both adaptive components are on, as in the paper.
func Table3(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Table III — per-epoch runtime breakdown (sec) | scale=%.2f seed=%d\n", o.Scale, o.Seed)
	// The paper omits Flights (no edge features to cache).
	def := []string{"wikipedia", "reddit", "movielens", "gdelt"}
	for _, ds := range o.loadDatasets(def) {
		for _, model := range []train.ModelKind{train.ModelTGAT, train.ModelGraphMixer} {
			fmt.Fprintf(o.Out, "\n%s / %s\n", ds.Spec.Name, model)
			fmt.Fprintf(o.Out, "%-12s %8s %8s %8s %8s %9s %9s\n",
				"config", "NF", "AS", "FS", "PP", "total", "speedup")
			var baseTotal time.Duration
			for _, row := range table3Rows() {
				cfg := o.baseConfig(model)
				cfg.Finder = row.finder
				cfg.CacheRatio = row.cacheRatio
				cfg.AdaBatch, cfg.AdaNeighbor = true, true
				cfg.Decoder = adaptive.DecoderGATv2
				if model == train.ModelGraphMixer {
					cfg.Decoder = adaptive.DecoderLinear
				}
				cfg.Epochs = 1
				tr, err := train.New(cfg, ds)
				if err != nil {
					return err
				}
				tr.TrainEpoch() // warm-up epoch (cache training)
				tr.Timer.Reset()
				tr.Xfer.Reset()
				tr.TrainEpoch() // measured epoch
				nf, as := tr.Timer.Get("NF"), tr.Timer.Get("AS")
				fs, pp := tr.Timer.Get("FS"), tr.Timer.Get("PP")
				total := nf + as + fs + pp
				if row.name == "Baseline" {
					baseTotal = total
				}
				speedup := float64(baseTotal) / float64(total)
				fmt.Fprintf(o.Out, "%-12s %8.3f %8.3f %8.3f %8.3f %9.3f %8.2fx\n",
					row.name, nf.Seconds(), as.Seconds(), fs.Seconds(), pp.Seconds(),
					total.Seconds(), speedup)
			}
		}
	}
	return nil
}

// Fig1 reproduces Figure 1: the per-epoch runtime of baseline TGAT split
// into mini-batch generation (Prep = NF + FS) and propagation (Prop = PP) as
// the number of neighbors per layer grows. The shape to reproduce: Prep
// grows much faster than Prop and dominates the epoch time.
func Fig1(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Fig. 1 — TGAT per-epoch runtime breakdown vs #neighbors | scale=%.2f\n", o.Scale)
	for _, ds := range o.loadDatasets([]string{"wikipedia", "reddit"}) {
		fmt.Fprintf(o.Out, "\n%s\n%-12s %10s %10s %8s\n", ds.Spec.Name, "#neighbors", "Prep(s)", "Prop(s)", "Prep%")
		for _, n := range []int{5, 10, 15, 20} {
			cfg := o.baseConfig(train.ModelTGAT)
			cfg.Finder = train.FinderOrigin // the original pipeline
			cfg.CacheRatio = 0
			cfg.N = n
			cfg.Epochs = 1
			tr, err := train.New(cfg, ds)
			if err != nil {
				return err
			}
			tr.TrainEpoch()
			prep := tr.Timer.Get("NF") + tr.Timer.Get("FS")
			prop := tr.Timer.Get("PP")
			fmt.Fprintf(o.Out, "%-12d %10.3f %10.3f %7.0f%%\n",
				n, prep.Seconds(), prop.Seconds(),
				100*float64(prep)/float64(prep+prop))
		}
	}
	return nil
}
