package bench

import (
	"fmt"
	"runtime"

	"taser/internal/train"
)

// Pipeline compares the synchronous training loop against the pipelined,
// double-buffered loop (internal/train.Pipeline) at several prefetch depths:
// per-epoch wall time, speedup over synchronous, and the NF/AS/FS/PP
// breakdown. The pipelined loop overlaps batch construction (NF + FS) with
// model propagation (PP), so the expected speedup on k ≥ 2 cores is
// (build + PP) / max(build, PP); on a single core the loop degenerates to
// time-slicing and the speedup is ≈ 1 (see EXPERIMENTS.md).
func Pipeline(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Pipelined vs synchronous training loop (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(o.Out, "%-12s %-14s %10s %8s  %s\n", "dataset", "loop", "ms/epoch", "speedup", "breakdown")
	for _, ds := range o.loadDatasets([]string{"wikipedia", "reddit"}) {
		cfg := o.baseConfig(train.ModelTGAT)
		runEpochs := func(depth int) (float64, string, error) {
			cfg.PrefetchDepth = depth
			tr, err := train.New(cfg, ds)
			if err != nil {
				return 0, "", err
			}
			// One warm-up epoch trains the cache and the buffer pools, then
			// measure the steady state (timer reset so the breakdown covers
			// only the measured epoch).
			var ms float64
			for e := 0; e < 2; e++ {
				if e == 1 {
					tr.Timer.Reset()
				}
				var res train.EpochResult
				if depth == 0 {
					res = tr.TrainEpoch()
				} else {
					res = tr.TrainEpochPipelined()
				}
				ms = float64(res.Duration.Microseconds()) / 1000
			}
			return ms, tr.Timer.Breakdown(), nil
		}

		syncMS, syncBD, err := runEpochs(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-12s %-14s %10.1f %8s  %s\n", ds.Spec.Name, "synchronous", syncMS, "1.00x", syncBD)
		for _, depth := range []int{1, 2, 4} {
			ms, bd, err := runEpochs(depth)
			if err != nil {
				return err
			}
			fmt.Fprintf(o.Out, "%-12s %-14s %10.1f %7.2fx  %s\n",
				ds.Spec.Name, fmt.Sprintf("pipelined(d=%d)", depth), ms, syncMS/ms, bd)
		}
	}
	return nil
}
