package bench

import (
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"taser/internal/mathx"
	"taser/internal/replica"
	"taser/internal/serve"
	"taser/internal/train"
)

// Replicate measures the log-shipping replication subsystem (DESIGN.md §11)
// along the two axes operators size replicas by:
//
// Table A — catch-up time vs stream length, for the two catch-up shapes. The
// stream row joins a leader that never checkpointed, so the follower tails
// the whole WAL over HTTP record by record; the ckpt row joins after a
// leader checkpoint, so one bulk shipment covers the stream and the tail
// loop only confirms. Both should grow linearly in stream length — the
// stream row is the network sibling of the crash row in -exp recover, the
// ckpt row of its clean row — and the gap between them is what checkpoint
// shipping buys a fresh replica.
//
// Table B — steady-state follower lag vs leader ingest rate: the leader
// ingests paced synthetic events while the follower tails; lag (leader
// synced minus follower applied) is sampled throughout. Lag that holds
// steady means the follower absorbs the rate; lag that climbs means the
// rate exceeds one replica's apply throughput.
func Replicate(o Options) error {
	o = o.Normalize()
	ds := o.loadDatasets([]string{"wikipedia"})[0]

	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: o.Hidden, TimeDim: o.TimeDim, Seed: o.Seed,
	}, ds)
	if err != nil {
		return err
	}

	lengths := o.ReplicateEvents
	if len(lengths) == 0 {
		lengths = []int{1024, 4096, 16384}
	}
	fmt.Fprintf(o.Out, "Catch-up time vs stream length (%s graph, sync every 64, poll 1ms)\n", ds.Spec.Name)
	fmt.Fprintf(o.Out, "%-8s %-7s | %9s %9s | %12s %12s\n",
		"events", "path", "applied", "polls", "catchup(ms)", "µs/event")
	for _, n := range lengths {
		for _, ckpt := range []bool{false, true} {
			row, err := replicateCatchupRow(o, ds.Spec.NumNodes, tr, n, ckpt)
			if err != nil {
				return err
			}
			fmt.Fprint(o.Out, row)
		}
	}

	rates := o.ReplicateRates
	if len(rates) == 0 {
		rates = []int{1000, 4000, 16000}
	}
	fmt.Fprintf(o.Out, "\nSteady-state follower lag vs ingest rate (%.1fs window per rate)\n",
		lagWindow.Seconds())
	fmt.Fprintf(o.Out, "%-10s | %10s %10s %10s %10s\n",
		"target ev/s", "actual", "mean lag", "max lag", "final lag")
	for _, rate := range rates {
		row, err := replicateLagRow(o, ds.Spec.NumNodes, tr, rate)
		if err != nil {
			return err
		}
		fmt.Fprint(o.Out, row)
	}
	return nil
}

// replLag reads follower-applied before leader-synced, so the later synced
// value can only be larger and the subtraction cannot wrap.
func replLag(e *serve.Engine, f *replica.Follower) uint64 {
	applied := f.Status().Applied
	if synced := e.Stats().WALSynced; synced > applied {
		return synced - applied
	}
	return 0
}

// lagWindow is how long Table B feeds each rate: long enough for the lag to
// reach its steady shape, short enough to keep the experiment CI-sized.
const lagWindow = 1500 * time.Millisecond

// replicatePair builds a durable leader engine over its own store plus an
// httptest server shipping its log; cleanup closes everything.
func replicatePair(o Options, numNodes int, tr *train.Trainer) (*serve.Engine, *httptest.Server, func(), error) {
	dir, err := os.MkdirTemp("", "taser-repl-*")
	if err != nil {
		return nil, nil, nil, err
	}
	e, err := recoverEngine(o, numNodes, tr, serve.Durability{Dir: dir, SyncEvery: 64})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	l, err := replica.NewLeader(e)
	if err != nil {
		e.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	ts := httptest.NewServer(l.Handler())
	cleanup := func() {
		ts.Close()
		e.Close()
		os.RemoveAll(dir)
	}
	return e, ts, cleanup, nil
}

// startBenchFollower builds a durable follower engine and attaches it to the
// leader's server with a tight poll interval.
func startBenchFollower(o Options, numNodes int, tr *train.Trainer, leaderURL string) (*serve.Engine, *replica.Follower, func(), error) {
	dir, err := os.MkdirTemp("", "taser-repl-f-*")
	if err != nil {
		return nil, nil, nil, err
	}
	fe, err := recoverEngine(o, numNodes, tr, serve.Durability{Dir: dir, SyncEvery: 64})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	f, err := replica.StartFollower(replica.FollowerConfig{
		Engine: fe, Leader: leaderURL, PollInterval: time.Millisecond,
	})
	if err != nil {
		fe.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	cleanup := func() {
		f.Close()
		fe.Close()
		os.RemoveAll(dir)
	}
	return fe, f, cleanup, nil
}

// replicateCatchupRow ingests n events into a leader, optionally seals them
// in a checkpoint, then times a fresh follower from StartFollower to parity
// with the leader's synced sequence.
func replicateCatchupRow(o Options, numNodes int, tr *train.Trainer, n int, ckpt bool) (string, error) {
	e, ts, cleanup, err := replicatePair(o, numNodes, tr)
	if err != nil {
		return "", err
	}
	defer cleanup()
	if _, err := feedSynthetic(e, o.Seed, numNodes, n); err != nil {
		return "", err
	}
	if ckpt {
		if err := e.Checkpoint(); err != nil {
			return "", err
		}
	}
	synced := e.Stats().WALSynced

	start := time.Now()
	_, f, fCleanup, err := startBenchFollower(o, numNodes, tr, ts.URL)
	if err != nil {
		return "", err
	}
	defer fCleanup()
	for f.Status().Applied < synced {
		if st := f.Status(); st.State == replica.StateFailed {
			return "", fmt.Errorf("bench: follower failed mid-catch-up: %v", st.Err)
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)

	st := f.Status()
	path := "stream"
	if ckpt {
		path = "ckpt"
	}
	perEvent := 0.0
	if st.Applied > 0 {
		perEvent = float64(elapsed.Microseconds()) / float64(st.Applied)
	}
	return fmt.Sprintf("%-8d %-7s | %9d %9d | %12.2f %12.2f\n",
		n, path, st.Applied, st.Polls, float64(elapsed.Microseconds())/1000, perEvent), nil
}

// replicateLagRow feeds the leader at the target rate for lagWindow while
// sampling the follower's lag every 10ms, then reports the achieved rate and
// the lag profile.
func replicateLagRow(o Options, numNodes int, tr *train.Trainer, rate int) (string, error) {
	e, ts, cleanup, err := replicatePair(o, numNodes, tr)
	if err != nil {
		return "", err
	}
	defer cleanup()
	// A warm prefix so neither side measures cold-start slice growth.
	if _, err := feedSynthetic(e, o.Seed, numNodes, 256); err != nil {
		return "", err
	}
	_, f, fCleanup, err := startBenchFollower(o, numNodes, tr, ts.URL)
	if err != nil {
		return "", err
	}
	defer fCleanup()

	// Pace the leader: a batch every 5ms sized to the target rate.
	const tick = 5 * time.Millisecond
	batch := rate * int(tick) / int(time.Second)
	if batch < 1 {
		batch = 1
	}
	rng := mathx.NewRNG(o.Seed ^ 0x1a9)
	tm, _ := e.Watermark()
	var fed int
	var sumLag, maxLag, samples uint64
	start := time.Now()
	nextSample := start
	for time.Since(start) < lagWindow {
		for i := 0; i < batch; i++ {
			tm += rng.Float64()
			if err := e.Ingest(int32(rng.Intn(numNodes)), int32(rng.Intn(numNodes)), tm, nil); err != nil {
				return "", err
			}
			fed++
		}
		if now := time.Now(); now.After(nextSample) {
			lag := replLag(e, f)
			sumLag += lag
			if lag > maxLag {
				maxLag = lag
			}
			samples++
			nextSample = now.Add(10 * time.Millisecond)
		}
		time.Sleep(tick)
	}
	elapsed := time.Since(start)
	finalLag := replLag(e, f)
	actual := float64(fed) / elapsed.Seconds()
	meanLag := 0.0
	if samples > 0 {
		meanLag = float64(sumLag) / float64(samples)
	}
	return fmt.Sprintf("%-10d | %10.0f %10.1f %10d %10d\n",
		rate, actual, meanLag, maxLag, finalLag), nil
}
