package bench

import (
	"fmt"

	"taser/internal/adaptive"
	"taser/internal/train"
)

// Fig4 reproduces Figure 4: test MRR of TASER on the Wikipedia-style dataset
// over the (m, n) grid — m candidates pre-sampled by the neighbor finder, n
// supporting neighbors selected adaptively. The shape to reproduce: MRR
// improves along both axes, i.e. a larger candidate pool lets the adaptive
// sampler find more informative neighbors, and more supporting neighbors
// help when the pool is large enough.
func Fig4(o Options) error {
	o = o.Normalize()
	ms := []int{10, 15, 20, 25}
	ns := []int{5, 10, 15, 20}
	for _, spec := range []struct {
		model   train.ModelKind
		decoder adaptive.Decoder
	}{
		{train.ModelTGAT, adaptive.DecoderGATv2},
		{train.ModelGraphMixer, adaptive.DecoderLinear},
	} {
		fmt.Fprintf(o.Out, "Fig. 4 — %s test MRR on wikipedia over (m, n) | scale=%.2f epochs=%d\n",
			spec.model, o.Scale, o.Epochs)
		fmt.Fprintf(o.Out, "%-6s", "")
		for _, m := range ms {
			fmt.Fprintf(o.Out, "  m=%-8d", m)
		}
		fmt.Fprintln(o.Out)
		for _, n := range ns {
			fmt.Fprintf(o.Out, "n=%-4d", n)
			for _, m := range ms {
				if n > m {
					fmt.Fprintf(o.Out, "  %-10s", "-")
					continue
				}
				ds := o.loadDatasets([]string{"wikipedia"})[0]
				cfg := o.baseConfig(spec.model)
				cfg.AdaBatch, cfg.AdaNeighbor = true, true
				cfg.Decoder = spec.decoder
				cfg.M, cfg.N = m, n
				tr, err := train.New(cfg, ds)
				if err != nil {
					return err
				}
				_, _, test := tr.Run()
				fmt.Fprintf(o.Out, "  %-10.4f", test)
			}
			fmt.Fprintln(o.Out)
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}
