package bench

import (
	"fmt"
	"time"

	"taser/internal/adaptive"
	"taser/internal/cache"
	"taser/internal/datasets"
	"taser/internal/device"
	"taser/internal/featstore"
	"taser/internal/mathx"
	"taser/internal/sampler"
	"taser/internal/train"
)

// Fig3a reproduces Figure 3(a): total sampling time per epoch of a 2-layer
// TGAT fanout under the three neighbor finders as the per-layer budget
// grows. All finders receive identical chronological batches (the only order
// the TGL finder is built for). The shape to reproduce: Origin is orders of
// magnitude slower than both parallel finders, and the TASER GPU finder
// beats the TGL pointer-array finder. (The paper's 37–56× GPU-vs-TGL gap
// comes from thousands of CUDA threads vs 192 CPU threads; on a host-only
// simulator both finders share the same cores, so expect the same ordering
// with a smaller ratio.)
func Fig3a(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Fig. 3(a) — 2-hop sampling time per epoch (sec) | scale=%.2f batch=%d\n",
		o.Scale, o.BatchSize)
	budgets := []int{5, 10, 15, 20, 25}
	for _, ds := range o.loadDatasets(allNames) {
		fmt.Fprintf(o.Out, "\n%s\n%-10s", ds.Spec.Name, "#nbrs")
		fmt.Fprintf(o.Out, "%12s %12s %12s %10s\n", "origin-cpu", "tgl-cpu", "taser-gpu", "gpu-vs-tgl")
		for _, budget := range budgets {
			rng := mathx.NewRNG(o.Seed)
			finders := []sampler.Finder{
				sampler.NewOriginFinder(ds.TCSR, rng.Split()),
				sampler.NewTGLFinder(ds.TCSR, rng.Split()),
				sampler.NewGPUFinder(ds.TCSR, device.New(), o.Seed),
			}
			times := make([]time.Duration, len(finders))
			for fi, f := range finders {
				times[fi] = sampleEpoch(ds, f, budget, o.BatchSize)
			}
			fmt.Fprintf(o.Out, "%-10d %12.4f %12.4f %12.4f %9.1fx\n",
				budget, times[0].Seconds(), times[1].Seconds(), times[2].Seconds(),
				float64(times[1])/float64(times[2]))
		}
	}
	return nil
}

// sampleEpoch drives one chronological epoch of 2-hop TGAT fanout through a
// finder and returns the total sampling wall time.
func sampleEpoch(ds *datasets.Dataset, f sampler.Finder, budget, batchSize int) time.Duration {
	var out sampler.Result
	var total time.Duration
	for lo := 0; lo < ds.TrainEnd; lo += batchSize {
		hi := mathx.MinInt(lo+batchSize, ds.TrainEnd)
		roots := make([]sampler.Target, 0, 2*(hi-lo))
		for e := lo; e < hi; e++ {
			ev := ds.Graph.Events[e]
			roots = append(roots,
				sampler.Target{Node: ev.Src, Time: ev.Time},
				sampler.Target{Node: ev.Dst, Time: ev.Time})
		}
		start := time.Now()
		if err := f.Sample(roots, budget, sampler.Uniform, &out); err != nil {
			panic(err)
		}
		// Hop 2: expand every sampled neighbor at its interaction time.
		next := make([]sampler.Target, 0, len(roots)*budget)
		for i := range roots {
			for j := 0; j < int(out.Counts[i]); j++ {
				s := out.Slot(i, j)
				next = append(next, sampler.Target{Node: out.Nodes[s], Time: out.Times[s]})
			}
		}
		if len(next) > 0 {
			if err := f.Sample(next, budget, sampler.Uniform, &out); err != nil {
				panic(err)
			}
		}
		total += time.Since(start)
	}
	if tgl, ok := f.(*sampler.TGLFinder); ok {
		tgl.Reset()
	}
	return total
}

// Fig3b reproduces Figure 3(b): cache hit rate per epoch of TASER's
// frequency cache vs. the Oracle cache at 10/20/30% capacity. The access
// stream is recorded from a real TASER training run (it is independent of
// cache contents), then each policy's epoch-granular hit rate is simulated
// from the per-epoch access counts. The shape to reproduce: TASER's curve
// hugs the oracle's within a few percent after the first epochs.
func Fig3b(o Options) error {
	o = o.Normalize()
	fmt.Fprintf(o.Out, "Fig. 3(b) — edge-feature cache hit rate per epoch | scale=%.2f epochs=%d\n",
		o.Scale, o.Epochs)
	ratios := []float64{0.10, 0.20, 0.30}
	def := []string{"wikipedia", "reddit", "movielens", "gdelt"}
	for _, ds := range o.loadDatasets(def) {
		counts, err := recordAccessCounts(o, ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "\n%s\n%-7s", ds.Spec.Name, "epoch")
		for _, r := range ratios {
			fmt.Fprintf(o.Out, "  taser%2.0f%%  oracle%2.0f%%", 100*r, 100*r)
		}
		fmt.Fprintln(o.Out)
		freq := make([]*cache.Frequency, len(ratios))
		oracle := make([]*cache.Oracle, len(ratios))
		for ri, r := range ratios {
			k := int(r * float64(ds.EdgeFeat.Rows))
			freq[ri] = cache.NewFrequency(ds.EdgeFeat.Rows, k, 0.7)
			oracle[ri] = cache.NewOracle(k)
		}
		for e, epochCounts := range counts {
			fmt.Fprintf(o.Out, "%-7d", e+1)
			for ri := range ratios {
				oracle[ri].Reveal(epochCounts)
				fh, ft := freq[ri].ObserveCounts(epochCounts)
				oh, ot := oracle[ri].ObserveCounts(epochCounts)
				freq[ri].EndEpoch()
				fmt.Fprintf(o.Out, "  %7.1f%%  %8.1f%%",
					100*float64(fh)/float64(ft), 100*float64(oh)/float64(ot))
			}
			fmt.Fprintln(o.Out)
		}
	}
	return nil
}

// recordingPolicy counts edge-feature accesses without caching anything.
type recordingPolicy struct {
	counts []int64
}

func (r *recordingPolicy) Access(id int32) (int, bool) { r.counts[id]++; return 0, false }
func (r *recordingPolicy) Lookup(int32) (int, bool)    { return 0, false }
func (r *recordingPolicy) EndEpoch() []int32           { return nil }
func (r *recordingPolicy) Capacity() int               { return 0 }
func (r *recordingPolicy) HitRate() float64            { return 0 }
func (r *recordingPolicy) ResetStats()                 {}

// recordAccessCounts runs o.Epochs epochs of the full TASER pipeline and
// returns the per-epoch edge-feature access counts.
func recordAccessCounts(o Options, ds *datasets.Dataset) ([][]int64, error) {
	cfg := o.baseConfig(train.ModelTGAT)
	cfg.AdaBatch, cfg.AdaNeighbor = true, true
	cfg.Decoder = adaptive.DecoderGATv2
	cfg.CacheRatio = 0
	tr, err := train.New(cfg, ds)
	if err != nil {
		return nil, err
	}
	rec := &recordingPolicy{counts: make([]int64, ds.EdgeFeat.Rows)}
	tr.EdgeStore = featstore.New(ds.EdgeFeat, rec, nil)
	var perEpoch [][]int64
	for e := 0; e < o.Epochs; e++ {
		tr.TrainEpoch()
		snapshot := make([]int64, len(rec.counts))
		copy(snapshot, rec.counts)
		perEpoch = append(perEpoch, snapshot)
		for i := range rec.counts {
			rec.counts[i] = 0
		}
	}
	return perEpoch, nil
}
