package bench

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"taser/internal/mathx"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/train"
)

// Serve load-tests the online inference subsystem: a closed-loop Zipfian
// request mix (80% link prediction, 20% embedding) from C concurrent clients
// against internal/serve, while one ingest writer streams synthetic events at
// a configured rate and snapshots publish underneath. Each row reports
// throughput, p50/p99 request latency, the mean micro-batch size, the
// embedding-cache hit rate, and how many snapshots were published.
//
// The single-core caveat of EXPERIMENTS.md applies doubly here: clients,
// the scheduler and the ingest writer time-slice one core, so latency is
// dominated by compute queueing rather than batching waits; the batching
// and cache columns are the hardware-independent signal.
func Serve(o Options) error {
	o = o.Normalize()
	ds := o.loadDatasets([]string{"wikipedia"})[0]

	// Weights are irrelevant to serving *performance*; skip pretraining and
	// take the model/predictor from a fresh trainer.
	tr, err := train.New(train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, FinderPolicy: "recent",
		Hidden: o.Hidden, TimeDim: o.TimeDim, Seed: o.Seed,
	}, ds)
	if err != nil {
		return err
	}

	clientsList := o.ServeClients
	if len(clientsList) == 0 {
		clientsList = []int{1, 4, 16}
	}
	reqs := o.ServeRequests
	if reqs == 0 {
		reqs = 200
	}
	rate := o.ServeIngestRate
	if rate == 0 {
		rate = 2000 // events/sec
	}

	fmt.Fprintf(o.Out, "Online serving load test (%s, ingest %.0f ev/s, %d reqs/client, Zipf s=1.1)\n",
		ds.Spec.Name, rate, reqs)
	fmt.Fprintf(o.Out, "%-8s %-7s %8s %9s %9s %9s %7s %6s %6s\n",
		"clients", "cache", "qps", "p50(ms)", "p99(ms)", "batch", "hit%", "snaps", "ingest")
	for _, cacheSize := range []int{0, 2048} {
		for _, clients := range clientsList {
			row, err := serveRow(o, ds.Spec.NumNodes, ds.Spec.EdgeDim, tr, clients, cacheSize, reqs, rate)
			if err != nil {
				return err
			}
			fmt.Fprint(o.Out, row)
		}
	}
	return nil
}

func serveRow(o Options, numNodes, edgeDim int, tr *train.Trainer, clients, cacheSize, reqsPerClient int, rate float64) (string, error) {
	ds := tr.DS
	e, err := serve.New(serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: numNodes, NodeFeat: ds.NodeFeat, EdgeDim: edgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent,
		MaxBatch: 32, MaxWait: 500 * time.Microsecond,
		CacheSize: cacheSize, SnapshotEvery: 128, Seed: o.Seed,
	})
	if err != nil {
		return "", err
	}
	defer e.Close()
	if err := e.Bootstrap(ds.Graph.Events[:ds.TrainEnd],
		ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
		return "", err
	}

	// Zipfian node popularity (exponent 1.1), fixed across rows so cache
	// columns are comparable.
	weights := make([]float64, numNodes)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -1.1)
	}
	zipf := mathx.NewAlias(weights)

	stop := make(chan struct{})
	var ingested atomic.Int64
	var ingestWG sync.WaitGroup
	ingestWG.Add(1)
	go func() {
		defer ingestWG.Done()
		rng := mathx.NewRNG(o.Seed ^ 0xfeed)
		interval := time.Duration(float64(time.Second) / rate)
		tick, _ := e.Watermark()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tick++
			src := int32(zipf.Draw(rng))
			dst := int32(rng.Intn(numNodes))
			if err := e.Ingest(src, dst, tick, nil); err == nil {
				ingested.Add(1)
			}
			time.Sleep(interval)
		}
	}()

	start := time.Now()
	var clientWG sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			rng := mathx.NewRNG(o.Seed + uint64(c)*7919)
			for i := 0; i < reqsPerClient; i++ {
				// Query "now": at or past every event in the pinned snapshot.
				qt := e.Pin().Watermark + 1e9
				v := int32(zipf.Draw(rng))
				if rng.Float64() < 0.8 {
					u := int32(zipf.Draw(rng))
					if _, err := e.PredictLink(v, u, qt); err != nil {
						errs[c] = err
						return
					}
				} else if _, err := e.Embed(v, qt); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	clientWG.Wait()
	elapsed := time.Since(start)
	close(stop)
	ingestWG.Wait()
	for _, err := range errs {
		if err != nil {
			return "", err
		}
	}

	st := e.Stats()
	qps := float64(st.Requests) / elapsed.Seconds()
	cacheLabel := "off"
	if cacheSize > 0 {
		cacheLabel = fmt.Sprintf("%d", cacheSize)
	}
	return fmt.Sprintf("%-8d %-7s %8.0f %9.2f %9.2f %9.1f %6.1f%% %6d %6d\n",
		clients, cacheLabel, qps,
		float64(st.P50.Microseconds())/1000, float64(st.P99.Microseconds())/1000,
		st.AvgBatch(), 100*st.CacheHitRate(), st.SnapshotVersion, ingested.Load()), nil
}
