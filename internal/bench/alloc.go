package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"taser/internal/adaptive"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/train"
)

// Alloc measures heap-allocation behavior on the two execution hot paths the
// arena-backed autograd stack serves (DESIGN.md §7): the full TASER training
// step (adaptive mini-batch + adaptive neighbor sampling + forward/backward +
// both optimizer steps) and micro-batched online predicts. Each path reports
// a cold phase — the first iterations, while the arena, tape and buffer pools
// fill — and the steady state after warmup, as allocs and µs per
// step/request. Allocation counts are scheduler-independent and therefore
// the stable signal on this repo's 1-CPU dev container (EXPERIMENTS.md);
// timings carry the usual ±25% noise.
func Alloc(o Options) error {
	o = o.Normalize()
	ds := o.loadDatasets([]string{"wikipedia"})[0]

	fmt.Fprintf(o.Out, "Arena-backed execution: allocations before/after warmup (%s)\n", ds.Spec.Name)
	fmt.Fprintf(o.Out, "%-14s %-12s %12s %12s\n", "path", "phase", "allocs/op", "us/op")

	// --- training step (the BenchmarkStepTASER configuration) ---
	cfg := o.baseConfig(train.ModelTGAT)
	cfg.AdaBatch, cfg.AdaNeighbor, cfg.Decoder = true, true, adaptive.DecoderGATv2
	tr, err := train.New(cfg, ds)
	if err != nil {
		return err
	}
	measure := func(iters int, op func()) (allocs, usPer float64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		dur := time.Since(start)
		runtime.ReadMemStats(&after)
		n := float64(iters)
		return float64(after.Mallocs-before.Mallocs) / n,
			float64(dur.Microseconds()) / n
	}
	step := func() { tr.TrainStep() }
	coldA, coldT := measure(3, step)
	for i := 0; i < 7; i++ { // finish warming pools, tape and arena classes
		tr.TrainStep()
	}
	warmA, warmT := measure(30, step)
	fmt.Fprintf(o.Out, "%-14s %-12s %12.1f %12.1f\n", "train-step", "cold", coldA, coldT)
	fmt.Fprintf(o.Out, "%-14s %-12s %12.1f %12.1f\n", "train-step", "warm", warmA, warmT)

	// --- online fine-tune step (pooled build + arena graph + Adam on clones) ---
	ds2 := tr.DS
	ft, err := train.NewFineTuner(train.FineTuneConfig{
		Model: tr.Model, Pred: tr.Pred,
		Infer: train.InferConfig{
			TCSR: ds2.TCSR, NodeFeat: ds2.NodeFeat, EdgeFeat: ds2.EdgeFeat,
			Budget: tr.Cfg.N, Policy: sampler.MostRecent, Seed: o.Seed,
		},
		NumNodes: ds2.Spec.NumNodes, NumSrc: ds2.Spec.NumSrc, Seed: o.Seed,
	})
	if err != nil {
		return err
	}
	ftEvents := ds2.Graph.Events[:64]
	ftStep := func() { ft.Step(ftEvents, nil) }
	coldA, coldT = measure(3, ftStep)
	for i := 0; i < 7; i++ {
		ftStep()
	}
	warmA, warmT = measure(30, ftStep)
	fmt.Fprintf(o.Out, "%-14s %-12s %12.1f %12.1f\n", "finetune-step", "cold", coldA, coldT)
	fmt.Fprintf(o.Out, "%-14s %-12s %12.1f %12.1f\n", "finetune-step", "warm", warmA, warmT)

	// --- serve predict (micro-batched, embedding cache on) ---
	eng, err := serve.New(serve.Config{
		Model: tr.Model, Pred: tr.Pred,
		NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
		Budget: tr.Cfg.N, Policy: sampler.MostRecent, CacheSize: 2048,
		MaxBatch: 16, MaxWait: 200 * time.Microsecond, Seed: o.Seed,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	events := ds.Graph.Events[:ds.TrainEnd]
	if err := eng.Bootstrap(events, ds.EdgeFeat.SliceRows(len(events))); err != nil {
		return err
	}
	wm, _ := eng.Watermark()
	qt := wm + 1
	// Closed-loop predicts from a few concurrent clients so flushes batch the
	// way production traffic does; per-op numbers divide by total requests.
	const clients = 4
	predictRound := func(reqsPerClient int) func() {
		return func() {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < reqsPerClient; i++ {
						ev := events[(c*7919+i*131)%len(events)]
						if _, err := eng.PredictLink(ev.Src, ev.Dst, qt); err != nil {
							panic(err)
						}
					}
				}(c)
			}
			wg.Wait()
		}
	}
	perOp := func(a, t float64, reqs int) (float64, float64) {
		return a / float64(reqs), t / float64(reqs)
	}
	coldA, coldT = measure(1, predictRound(8))
	coldA, coldT = perOp(coldA, coldT, clients*8)
	for i := 0; i < 3; i++ {
		predictRound(50)()
	}
	warmA, warmT = measure(1, predictRound(400))
	warmA, warmT = perOp(warmA, warmT, clients*400)
	fmt.Fprintf(o.Out, "%-14s %-12s %12.1f %12.1f\n", "serve-predict", "cold", coldA, coldT)
	fmt.Fprintf(o.Out, "%-14s %-12s %12.1f %12.1f\n", "serve-predict", "warm", warmA, warmT)
	return nil
}
