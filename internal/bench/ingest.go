package bench

import (
	"fmt"
	"time"

	"taser/internal/mathx"
	"taser/internal/tgraph"
)

// Ingest measures what incremental T-CSR snapshots buy the streaming ingest
// path: publish latency and total ingest cost versus stream length, for the
// incremental publisher (tgraph.Builder.Snapshot: shared event list, chunked
// adjacency re-freezing only touched node ranges) against the full repack
// the serving engine used before (copy every event, NewGraph, BuildTCSR —
// O(events) per publication, O(N²/SnapshotEvery) over a stream of N events).
//
// The signal is in the last-publish column: the full repack's per-publish
// latency grows linearly with the stream while the incremental publisher's
// stays near-flat (it tracks the delta and the chunk-table size, not N).
// Wall-clock noise on the 1-CPU dev container is high (±25%); the *shape*
// across stream lengths is the hardware-independent claim — see
// EXPERIMENTS.md.
func Ingest(o Options) error {
	o = o.Normalize()
	numNodes := o.IngestNodes
	every := o.IngestEvery
	lengths := o.IngestEvents
	if len(lengths) == 0 {
		lengths = []int{8192, 16384, 32768, 65536}
	}

	fmt.Fprintf(o.Out, "Incremental vs full-repack snapshot publication (nodes=%d, publish every %d events)\n",
		numNodes, every)
	fmt.Fprintf(o.Out, "%-8s %-9s | %12s %12s %8s | %13s %13s %8s\n",
		"events", "publishes",
		"full(ms)", "incr(ms)", "speedup",
		"full-last(µs)", "incr-last(µs)", "ratio")
	for _, n := range lengths {
		full := runFullRepack(o.Seed, numNodes, n, every)
		incr := runIncremental(o.Seed, numNodes, n, every)
		fmt.Fprintf(o.Out, "%-8d %-9d | %12.1f %12.1f %7.1fx | %13.0f %13.0f %7.1fx\n",
			n, n/every,
			ms(full.total), ms(incr.total), ratio(full.total, incr.total),
			us(full.last), us(incr.last), ratio(full.last, incr.last))
	}
	return nil
}

type ingestRun struct {
	total time.Duration // whole stream: every Add plus every publication
	last  time.Duration // latency of the final publication alone
}

// streamEvent deterministically generates event i of the synthetic stream;
// both strategies see the identical sequence.
func streamEvent(rng *mathx.RNG, numNodes int, tm *float64) tgraph.Event {
	*tm += rng.Float64()
	return tgraph.Event{Src: int32(rng.Intn(numNodes)), Dst: int32(rng.Intn(numNodes)), Time: *tm}
}

// runIncremental streams n events through a Builder, publishing an
// incremental snapshot every `every` events (the serve.Engine ingest path).
func runIncremental(seed uint64, numNodes, n, every int) ingestRun {
	rng := mathx.NewRNG(seed ^ 0x1239e57)
	b := tgraph.NewBuilder(numNodes)
	var r ingestRun
	tm := 0.0
	start := time.Now()
	for i := 0; i < n; i++ {
		ev := streamEvent(rng, numNodes, &tm)
		if err := b.Add(ev.Src, ev.Dst, ev.Time); err != nil {
			panic(err) // synthetic stream is chronological by construction
		}
		if (i+1)%every == 0 {
			p := time.Now()
			b.Snapshot()
			r.last = time.Since(p)
		}
	}
	r.total = time.Since(start)
	return r
}

// runFullRepack streams the same n events into a plain event list and
// publishes by repacking from scratch — the pre-incremental engine behavior:
// copy all events, NewGraph, BuildTCSR.
func runFullRepack(seed uint64, numNodes, n, every int) ingestRun {
	rng := mathx.NewRNG(seed ^ 0x1239e57)
	events := make([]tgraph.Event, 0, n)
	var r ingestRun
	tm := 0.0
	start := time.Now()
	for i := 0; i < n; i++ {
		events = append(events, streamEvent(rng, numNodes, &tm))
		if (i+1)%every == 0 {
			p := time.Now()
			g, err := tgraph.NewGraph(numNodes, append([]tgraph.Event(nil), events...))
			if err != nil {
				panic(err)
			}
			tgraph.BuildTCSR(g)
			r.last = time.Since(p)
		}
	}
	r.total = time.Since(start)
	return r
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
