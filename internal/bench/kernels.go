package bench

import (
	"fmt"
	"math"
	"time"

	"taser/internal/datasets"
	"taser/internal/mathx"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/serve"
	"taser/internal/tensor"
	"taser/internal/train"
)

// Kernels measures the raw-speed floor (DESIGN.md §13): the blocked,
// bounds-check-free MatMul kernels against the seed's skip-based ikj loop on
// the shapes the models actually push through them, the density crossover
// between the dense path and the explicit MatMulSparseAInto entry point, and
// the quantized serving path (f32/int8 weight clones at PublishWeights) as
// predict latency, weight footprint and MRR delta against f64.
//
// On the 1-CPU dev container the GFLOP rates are scalar-SSE2 single-core
// numbers; speedups are the stable signal (EXPERIMENTS.md).
func Kernels(o Options) error {
	o = o.Normalize()

	// --- dense MatMul: seed reference loop vs dispatching kernel ---------
	// The first three shapes are the per-batch projections a bench-profile
	// TGAT/GraphMixer forward issues (batch·(budget+1) = 1504 and 304 token
	// rows at Hidden=24, TimeDim=12, feat 38/48); the squares exercise the
	// unpacked 4-row regime and the packed 2×4 blocked regime.
	shapes := []struct {
		label   string
		m, k, n int
	}{
		{"proj feat→hidden", 1504, 38, 24},
		{"ffn hidden→2h", 1504, 24, 48},
		{"ffn 2h→hidden", 304, 48, 24},
		{"square dense-path", 256, 256, 256},
		{"square blocked", 512, 512, 512},
	}
	rng := mathx.NewRNG(o.Seed)
	fmt.Fprintf(o.Out, "Dense MatMul: seed skip-loop vs dispatching kernel\n")
	fmt.Fprintf(o.Out, "%-20s %-16s %12s %12s %9s %9s %8s\n",
		"shape", "m×k×n", "ref ns/op", "new ns/op", "ref GF/s", "new GF/s", "speedup")
	for _, s := range shapes {
		a := tensor.Randn(s.m, s.k, 1, rng)
		b := tensor.Randn(s.k, s.n, 1, rng)
		dst := tensor.New(s.m, s.n)
		refNs := timeOp(func() { matMulSeedRef(dst, a, b) })
		newNs := timeOp(func() { tensor.MatMulInto(dst, a, b) })
		flop := 2 * float64(s.m) * float64(s.k) * float64(s.n)
		fmt.Fprintf(o.Out, "%-20s %-16s %12.0f %12.0f %9.2f %9.2f %7.2fx\n",
			s.label, fmt.Sprintf("%d×%d×%d", s.m, s.k, s.n),
			refNs, newNs, flop/refNs, flop/newNs, refNs/newNs)
	}

	// --- MatMulTransB (attention scores / weight gradients) --------------
	fmt.Fprintf(o.Out, "\nMatMulTransB (a @ bᵀ): seed dot-loop vs 2×4-tiled kernel\n")
	fmt.Fprintf(o.Out, "%-20s %-16s %12s %12s %8s\n",
		"shape", "m×k×n", "ref ns/op", "new ns/op", "speedup")
	for _, s := range []struct {
		label   string
		m, k, n int
	}{
		{"scores q@kᵀ", 1504, 24, 38},
		{"grad w@xᵀ", 304, 24, 48},
	} {
		a := tensor.Randn(s.m, s.k, 1, rng)
		b := tensor.Randn(s.n, s.k, 1, rng)
		dst := tensor.New(s.m, s.n)
		refNs := timeOp(func() { matMulTransBSeedRef(dst, a, b) })
		newNs := timeOp(func() { tensor.MatMulTransBInto(dst, a, b) })
		fmt.Fprintf(o.Out, "%-20s %-16s %12.0f %12.0f %7.2fx\n",
			s.label, fmt.Sprintf("%d×%d×%d", s.m, s.k, s.n), refNs, newNs, refNs/newNs)
	}

	// --- sparsity crossover: dense path vs MatMulSparseAInto -------------
	// The dense kernels dropped the seed's per-element zero test; callers
	// with mask-zeroed left operands use the explicit sparse entry point.
	// This table records where the branchy skip loop starts winning.
	fmt.Fprintf(o.Out, "\nSparsity crossover on 1504×38×24 (zeros in a)\n")
	fmt.Fprintf(o.Out, "%-10s %12s %12s %10s\n", "zero frac", "dense ns/op", "sparse ns/op", "winner")
	for _, zf := range []float64{0, 0.5, 0.75, 0.9, 0.97} {
		a := tensor.Randn(1504, 38, 1, rng)
		for i := range a.Data {
			if rng.Float64() < zf {
				a.Data[i] = 0
			}
		}
		b := tensor.Randn(38, 24, 1, rng)
		dst := tensor.New(1504, 24)
		denseNs := timeOp(func() { tensor.MatMulInto(dst, a, b) })
		sparseNs := timeOp(func() { tensor.MatMulSparseAInto(dst, a, b) })
		winner := "dense"
		if sparseNs < denseNs {
			winner = "sparse"
		}
		fmt.Fprintf(o.Out, "%-10.2f %12.0f %12.0f %10s\n", zf, denseNs, sparseNs, winner)
	}

	// --- quantized serving path ------------------------------------------
	// Three sibling engines serve one published f64 master in none/f32/int8
	// mode: weight footprint, per-request predict latency, and prequential
	// MRR delta against the f64 baseline (budget: f32 ≤0.005, int8 ≤0.05).
	ds := o.loadDatasets([]string{"wikipedia"})[0]
	fmt.Fprintf(o.Out, "\nQuantized serving (%s): f64 master, quantized clones at publish\n", ds.Spec.Name)
	tr, err := train.New(o.baseConfig(train.ModelTGAT), ds)
	if err != nil {
		return err
	}
	master := models.CaptureWeights(2, tr.Model, tr.Pred)
	f64Bytes := 0
	for _, p := range master.Params {
		f64Bytes += 8 * len(p.Data)
	}

	heldOut := ds.Graph.Events[ds.TrainEnd:]
	n := 40
	if n > len(heldOut) {
		n = len(heldOut)
	}
	const negs = 10

	fmt.Fprintf(o.Out, "%-8s %12s %12s %10s %10s\n", "mode", "weights B", "predict us", "MRR", "ΔMRR")
	var baseMRR float64
	for _, mode := range []models.Quantization{models.QuantNone, models.QuantF32, models.QuantInt8} {
		eng, err := serve.New(serve.Config{
			Model: tr.Model.Clone(), Pred: tr.Pred.Clone(),
			NumNodes: ds.Spec.NumNodes, NodeFeat: ds.NodeFeat, EdgeDim: ds.Spec.EdgeDim,
			Budget: tr.Cfg.N, Policy: sampler.MostRecent,
			MaxBatch: 8, MaxWait: 100 * time.Microsecond, Seed: o.Seed,
			Quantize: mode,
		})
		if err != nil {
			return err
		}
		if err := eng.Bootstrap(ds.Graph.Events[:ds.TrainEnd], ds.EdgeFeat.SliceRows(ds.TrainEnd)); err != nil {
			eng.Close()
			return err
		}
		if err := eng.PublishWeights(master.Clone()); err != nil {
			eng.Close()
			return err
		}
		bytes := f64Bytes
		if mode != models.QuantNone {
			q, err := models.QuantizeWeights(master, mode)
			if err != nil {
				eng.Close()
				return err
			}
			bytes = q.Bytes()
		}

		// Warm the batch scheduler and caches, then time serial predicts.
		for i := 0; i < 32; i++ {
			ev := heldOut[i%n]
			if _, err := eng.PredictLink(ev.Src, ev.Dst, ev.Time); err != nil {
				eng.Close()
				return err
			}
		}
		const reqs = 256
		start := time.Now()
		for i := 0; i < reqs; i++ {
			ev := heldOut[i%n]
			if _, err := eng.PredictLink(ev.Src, ev.Dst, ev.Time); err != nil {
				eng.Close()
				return err
			}
		}
		usPerOp := float64(time.Since(start).Microseconds()) / reqs

		mrr, err := engineMRRBench(eng, ds, n, negs, 17)
		if err != nil {
			eng.Close()
			return err
		}
		eng.Close()
		if mode == models.QuantNone {
			baseMRR = mrr
		}
		fmt.Fprintf(o.Out, "%-8s %12d %12.1f %10.4f %+10.4f\n",
			mode, bytes, usPerOp, mrr, mrr-baseMRR)
	}
	return nil
}

// Timing knobs, lowered by the package smoke test so `go test` doesn't pay
// full measurement quality.
var (
	kernelTimeBudget = 100 * time.Millisecond // per timing round
	kernelTimeRounds = 3                      // best-of rounds
)

// timeOp reports the best-of-rounds ns/op for op, each round running until
// ≥kernelTimeBudget (min 2 timed iters) after one warmup call. Best-of
// filters the scheduling noise a shared 1-CPU container injects into any
// single round.
func timeOp(op func()) float64 {
	op()
	best := math.Inf(1)
	for round := 0; round < kernelTimeRounds; round++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				op()
			}
			d := time.Since(start)
			if (d >= kernelTimeBudget && iters >= 2) || iters >= 1<<22 {
				if ns := float64(d.Nanoseconds()) / float64(iters); ns < best {
					best = ns
				}
				break
			}
			iters *= 2
		}
	}
	return best
}

// matMulSeedRef is the seed repo's MatMul kernel — skip-based ikj with a
// per-element zero test — kept verbatim as the "before" baseline.
func matMulSeedRef(dst, a, b *tensor.Matrix) {
	n, p := a.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulTransBSeedRef is the seed's a @ bᵀ kernel: one dot product per
// output element.
func matMulTransBSeedRef(dst, a, b *tensor.Matrix) {
	n := a.Cols
	m2 := b.Rows
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*m2 : (i+1)*m2]
		for j := 0; j < m2; j++ {
			brow := b.Data[j*n : (j+1)*n]
			var s float64
			for k, bv := range brow {
				s += arow[k] * bv
			}
			drow[j] = s
		}
	}
}

// engineMRRBench scores the n events after the bootstrap prefix against negs
// sampled negatives each and returns the mean reciprocal rank of the true
// destination (deterministic in seed, so every mode ranks the same
// candidate sets).
func engineMRRBench(e *serve.Engine, ds *datasets.Dataset, n, negs int, seed uint64) (float64, error) {
	rng := mathx.NewRNG(seed)
	events := ds.Graph.Events[ds.TrainEnd : ds.TrainEnd+n]
	var sum float64
	for _, ev := range events {
		pos, err := e.PredictLink(ev.Src, ev.Dst, ev.Time)
		if err != nil {
			return 0, err
		}
		rank := 1
		for k := 0; k < negs; k++ {
			neg := int32(rng.Intn(ds.Spec.NumNodes))
			r, err := e.PredictLink(ev.Src, neg, ev.Time)
			if err != nil {
				return 0, err
			}
			if r.Score >= pos.Score {
				rank++
			}
		}
		sum += 1 / float64(rank)
	}
	return sum / float64(len(events)), nil
}
