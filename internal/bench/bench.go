// Package bench regenerates every table and figure of the paper's evaluation
// (§IV) against the synthetic datasets: Table I (accuracy), Table II
// (dataset statistics), Table III (runtime breakdown), Fig. 1 (mini-batch
// generation bottleneck), Fig. 3a (neighbor-finder comparison), Fig. 3b
// (cache hit rates vs. the oracle), Fig. 4 (m×n ablation) and the encoder/
// decoder/cache-policy ablations DESIGN.md calls out.
//
// Each experiment takes Options and writes a plain-text table to Out; the
// cmd/taser-bench binary exposes them behind -exp flags and bench_test.go
// wires them into `go test -bench`.
package bench

import (
	"fmt"
	"io"
	"time"

	"taser/internal/datasets"
	"taser/internal/train"
)

// Options scales every experiment. The zero value is filled with the quick
// profile; see Normalize.
type Options struct {
	Out io.Writer

	Scale        float64 // dataset scale multiplier (1.0 = DESIGN.md default)
	Epochs       int     // training epochs for accuracy experiments
	Hidden       int
	TimeDim      int
	BatchSize    int
	LR           float64
	MaxEvalEdges int
	Seed         uint64

	// Datasets restricts experiments to these names (nil = experiment's
	// default set).
	Datasets []string

	// Serving load-test knobs (-exp serve); zero values pick the defaults
	// documented in Serve.
	ServeClients    []int   // concurrent closed-loop clients per row
	ServeRequests   int     // requests per client
	ServeIngestRate float64 // ingest writer rate, events/sec

	// Ingest experiment knobs (-exp ingest); zero values pick the defaults
	// documented in Ingest.
	IngestEvents []int // stream lengths per row (default 8192..65536)
	IngestEvery  int   // events per snapshot publication (default 256)
	IngestNodes  int   // node-id space of the synthetic stream (default 2000)

	// Fine-tuning experiment knobs (-exp finetune); zero values pick the
	// defaults documented in Finetune.
	FinetuneEvery  int     // drifted events ingested per fine-tune round (default 96)
	FinetuneNegs   int     // negatives per prequential MRR evaluation (default 19)
	FinetuneLR     float64 // fine-tuning learning rate (default 3e-4)
	FinetunePasses int     // replay passes per round (default 4)

	// Recovery experiment knobs (-exp recover); zero values pick the
	// defaults documented in Recover.
	RecoverEvents    []int // stream lengths per Table A row (default 1024,4096,16384)
	RecoverSyncEvery int   // WAL group-commit interval (default 64)

	// Replication experiment knobs (-exp replicate); zero values pick the
	// defaults documented in Replicate.
	ReplicateEvents []int // catch-up stream lengths (default 1024,4096,16384)
	ReplicateRates  []int // leader ingest rates, events/sec (default 1000,4000,16000)

	// HTTP load-generator knobs (-exp loadhttp). Empty ServeAddr self-hosts
	// an in-process HTTP server; otherwise the generator drives a live
	// taser-serve at that base URL (e.g. http://127.0.0.1:8080).
	ServeAddr string
	ServeWait time.Duration // readiness-poll budget for an external server (default 120s)

	// ServeShards switches loadhttp into a shard-count sweep: for each K it
	// self-hosts a K-shard GraphMixer fleet (the model class a K>1 fleet
	// requires), runs the same closed-loop rows, and reports per-shard
	// throughput from the merged /v1/stats shards[] blocks. Incompatible
	// with ServeAddr.
	ServeShards []int

	// OpenLoop switches loadhttp into the open-loop overload experiment: a
	// constant-arrival-rate timeline (baseline → 2×-sustainable burst →
	// recovery) driven against a static engine and an engine with the
	// overload control plane, with per-second offered/completed/shed
	// accounting (see loadopen.go). Incompatible with ServeAddr/ServeShards.
	OpenLoop     bool
	OpenRate     float64       // offered burst rate, req/sec (0 = 2× the calibrated sustainable rate)
	OpenDuration time.Duration // per-phase duration (default 3s)
	OpenSLO      time.Duration // adaptive engine's p99 target (default 25ms)
	OpenQueue    int           // adaptive engine's per-lane admission bound (default 64)
}

// Normalize fills defaults.
func (o Options) Normalize() Options {
	if o.Out == nil {
		panic("bench: Options.Out is required")
	}
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.Epochs == 0 {
		o.Epochs = 6
	}
	if o.Hidden == 0 {
		o.Hidden = 24
	}
	if o.TimeDim == 0 {
		o.TimeDim = 12
	}
	if o.BatchSize == 0 {
		o.BatchSize = 150
	}
	if o.LR == 0 {
		o.LR = 3e-3
	}
	if o.MaxEvalEdges == 0 {
		o.MaxEvalEdges = 300
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.IngestEvery == 0 {
		o.IngestEvery = 256
	}
	if o.IngestNodes == 0 {
		o.IngestNodes = 2000
	}
	return o
}

// baseConfig builds the shared training config for accuracy experiments.
func (o Options) baseConfig(model train.ModelKind) train.Config {
	return train.Config{
		Model: model, Finder: train.FinderGPU,
		Hidden: o.Hidden, TimeDim: o.TimeDim,
		BatchSize: o.BatchSize, Epochs: o.Epochs, LR: o.LR,
		CacheRatio: 0.2, MaxEvalEdges: o.MaxEvalEdges, Seed: o.Seed,
	}
}

// loadDatasets resolves the requested dataset list (or def when nil).
func (o Options) loadDatasets(def []string) []*datasets.Dataset {
	names := o.Datasets
	if len(names) == 0 {
		names = def
	}
	out := make([]*datasets.Dataset, 0, len(names))
	for _, n := range names {
		d, ok := datasets.ByName(n, o.Scale, o.Seed)
		if !ok {
			panic(fmt.Sprintf("bench: unknown dataset %q", n))
		}
		out = append(out, d)
	}
	return out
}

var allNames = []string{"wikipedia", "reddit", "flights", "movielens", "gdelt"}

// Variant labels the four rows of Table I.
type Variant struct {
	Name        string
	AdaBatch    bool
	AdaNeighbor bool
}

// Variants returns Table I's rows in paper order.
func Variants() []Variant {
	return []Variant{
		{"Baseline", false, false},
		{"w/ Ada. Mini-Batch", true, false},
		{"w/ Ada. Neighbor", false, true},
		{"TASER", true, true},
	}
}
