package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps package tests fast: minuscule datasets, one epoch.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{
		Out: buf, Scale: 0.02, Epochs: 1, Hidden: 8, TimeDim: 6,
		BatchSize: 64, MaxEvalEdges: 20, Seed: 9,
		Datasets: []string{"wikipedia"},
	}
}

func TestNormalizeRequiresOut(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Out")
		}
	}()
	Options{}.Normalize()
}

func TestVariantsOrder(t *testing.T) {
	v := Variants()
	if len(v) != 4 || v[0].Name != "Baseline" || v[3].Name != "TASER" {
		t.Fatalf("variants: %+v", v)
	}
	if !v[3].AdaBatch || !v[3].AdaNeighbor {
		t.Fatal("TASER must enable both components")
	}
}

func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Datasets = nil // Table II always lists all five
	if err := Table2(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"wikipedia", "reddit", "flights", "movielens", "gdelt"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table II missing %s:\n%s", name, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Baseline", "TASER", "Improvement", "TGAT", "GraphMixer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Baseline", "+GPU NF", "+20% Cache", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	if err := Fig1(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Prep") {
		t.Fatalf("Fig 1 output:\n%s", buf.String())
	}
}

func TestFig3aSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3a(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"origin-cpu", "tgl-cpu", "taser-gpu"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig 3a missing %q:\n%s", want, out)
		}
	}
}

func TestFig3bSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Epochs = 2
	if err := Fig3b(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "oracle") {
		t.Fatalf("Fig 3b output:\n%s", buf.String())
	}
}

func TestFig4Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	// Shrink the grid cost: tiny dataset already set; run as-is.
	if err := Fig4(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "m=10") || !strings.Contains(out, "n=5") {
		t.Fatalf("Fig 4 output:\n%s", out)
	}
	// n > m cells must be dashes.
	if !strings.Contains(out, "-") {
		t.Fatal("triangular grid expected")
	}
}

func TestAblationsSmoke(t *testing.T) {
	for name, fn := range map[string]func(Options) error{
		"encoder":    AblationEncoder,
		"decoder":    AblationDecoder,
		"cache":      AblationCache,
		"heuristics": AblationHeuristics,
	} {
		var buf bytes.Buffer
		if err := fn(tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", name)
		}
	}
}

func TestAllocSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Alloc(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"train-step", "serve-predict", "cold", "warm"} {
		if !strings.Contains(out, want) {
			t.Fatalf("alloc output missing %q:\n%s", want, out)
		}
	}
}

func TestKernelsSmoke(t *testing.T) {
	// Gut the timing loops: the smoke test checks wiring and the quantized
	// path end to end, not measurement quality.
	oldBudget, oldRounds := kernelTimeBudget, kernelTimeRounds
	kernelTimeBudget, kernelTimeRounds = time.Millisecond, 1
	defer func() { kernelTimeBudget, kernelTimeRounds = oldBudget, oldRounds }()
	var buf bytes.Buffer
	if err := Kernels(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Dense MatMul", "MatMulTransB", "Sparsity crossover", "Quantized serving", "int8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kernels output missing %q:\n%s", want, out)
		}
	}
}

func TestIngestSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.IngestEvents = []int{1024, 2048}
	o.IngestEvery = 128
	o.IngestNodes = 300
	if err := Ingest(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Incremental vs full-repack", "1024", "2048", "publishes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ingest output missing %q:\n%s", want, out)
		}
	}
}

func TestFinetuneSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.FinetuneEvery = 16
	o.FinetuneNegs = 5
	if err := Finetune(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"frozen", "fine-tuned", "MRR", "swap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("finetune output missing %q:\n%s", want, out)
		}
	}
}

func TestRecoverSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.RecoverEvents = []int{192}
	o.RecoverSyncEvery = 16
	if err := Recover(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Recovery time", "crash", "clean", "Durable ingest overhead", "sync-every=1", "allocs/event"} {
		if !strings.Contains(out, want) {
			t.Fatalf("recover output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadHTTPSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	// Empty ServeAddr self-hosts an engine behind serve.NewHandler on a
	// loopback httptest listener — the same HTTP surface `make loadtest-http`
	// drives against a live taser-serve process.
	o.ServeClients = []int{2}
	o.ServeRequests = 12
	o.ServeIngestRate = 2000
	if err := LoadHTTP(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"server ready", "clients", "qps", "ingested"} {
		if !strings.Contains(out, want) {
			t.Fatalf("loadhttp output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadOpenSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	// A sub-second timeline at a modest fixed rate: the smoke checks the
	// open-loop machinery (calibration, per-second accounting, both variant
	// summary lines), not the overload physics — scripts/overload_smoke.sh
	// covers those at realistic pressure.
	o.OpenLoop = true
	o.OpenRate = 400
	o.OpenDuration = 300 * time.Millisecond
	if err := LoadHTTP(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sustainable", "offered burst 400",
		"OPENLOOP static", "OPENLOOP adaptive",
		"retry_after_ok=true", "lost=0", "overload plane",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("open-loop output missing %q:\n%s", want, out)
		}
	}
}
