package datasets

// Scale multiplies the default event counts of every spec; 1.0 is the
// laptop-friendly default documented in DESIGN.md (~100× below the paper).
//
// The five specs mirror Table II's qualitative profile:
//
//	Wikipedia  — small bipartite, edge features only, moderate noise
//	Reddit     — larger bipartite, edge features only, strong recurrence
//	Flights    — general graph, node features only, dense repeated routes
//	MovieLens  — large sparse bipartite, edge features only
//	GDELT      — general knowledge graph, node AND edge features
func Wikipedia(scale float64, seed uint64) *Dataset {
	return Generate(Spec{
		Name: "wikipedia", NumNodes: 900, NumSrc: 720, NumEvents: sc(9000, scale),
		NodeDim: 0, EdgeDim: 32,
		NoiseRate: 0.20, DriftRate: 2.0, RepeatRate: 0.5, Skew: 1.1,
		Seed: seed,
	})
}

// Reddit mirrors the Reddit user–subreddit graph: heavier recurrence (users
// post repeatedly in the same communities) and more events.
func Reddit(scale float64, seed uint64) *Dataset {
	return Generate(Spec{
		Name: "reddit", NumNodes: 1100, NumSrc: 1000, NumEvents: sc(14000, scale),
		NodeDim: 0, EdgeDim: 32,
		NoiseRate: 0.15, DriftRate: 1.5, RepeatRate: 0.65, Skew: 1.2,
		Seed: seed,
	})
}

// Flights mirrors the flight-traffic graph: general topology, node features
// only, very high route recurrence.
func Flights(scale float64, seed uint64) *Dataset {
	return Generate(Spec{
		Name: "flights", NumNodes: 800, NumSrc: 0, NumEvents: sc(12000, scale),
		NodeDim: 32, EdgeDim: 0,
		NoiseRate: 0.12, DriftRate: 1.0, RepeatRate: 0.75, Skew: 1.0,
		Seed: seed,
	})
}

// MovieLens mirrors the user–movie tagging graph: the sparsest bipartite
// setting with many cold-start users.
func MovieLens(scale float64, seed uint64) *Dataset {
	return Generate(Spec{
		Name: "movielens", NumNodes: 3200, NumSrc: 2900, NumEvents: sc(16000, scale),
		NodeDim: 0, EdgeDim: 40,
		NoiseRate: 0.25, DriftRate: 2.5, RepeatRate: 0.35, Skew: 1.3,
		Seed: seed,
	})
}

// GDELT mirrors the event knowledge graph: both feature kinds, strong drift
// (global news topics shift quickly).
func GDELT(scale float64, seed uint64) *Dataset {
	return Generate(Spec{
		Name: "gdelt", NumNodes: 1200, NumSrc: 0, NumEvents: sc(16000, scale),
		NodeDim: 48, EdgeDim: 32,
		NoiseRate: 0.18, DriftRate: 3.0, RepeatRate: 0.45, Skew: 1.1,
		Seed: seed,
	})
}

func sc(base int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(base) * scale)
	if n < 100 {
		n = 100
	}
	return n
}

// All returns every generator keyed by name, in the paper's column order.
func All(scale float64, seed uint64) []*Dataset {
	return []*Dataset{
		Wikipedia(scale, seed),
		Reddit(scale, seed),
		Flights(scale, seed),
		MovieLens(scale, seed),
		GDELT(scale, seed),
	}
}

// ByName generates a single dataset by its Table II name.
func ByName(name string, scale float64, seed uint64) (*Dataset, bool) {
	switch name {
	case "wikipedia":
		return Wikipedia(scale, seed), true
	case "reddit":
		return Reddit(scale, seed), true
	case "flights":
		return Flights(scale, seed), true
	case "movielens":
		return MovieLens(scale, seed), true
	case "gdelt":
		return GDELT(scale, seed), true
	}
	return nil, false
}
