package datasets

import (
	"math"
	"testing"

	"taser/internal/mathx"
)

func tinySpec(seed uint64) Spec {
	return Spec{
		Name: "tiny", NumNodes: 50, NumSrc: 40, NumEvents: 2000,
		NodeDim: 4, EdgeDim: 6,
		NoiseRate: 0.2, DriftRate: 1, RepeatRate: 0.5, Skew: 1.1,
		Seed: seed,
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	d := Generate(tinySpec(1))
	if len(d.Graph.Events) != 2000 {
		t.Fatal("event count")
	}
	if d.NodeFeat.Rows != 50 || d.NodeFeat.Cols != 4 {
		t.Fatal("node feature shape")
	}
	if d.EdgeFeat.Rows != 2000 || d.EdgeFeat.Cols != 6 {
		t.Fatal("edge feature shape")
	}
	if d.TCSR == nil || d.TCSR.NumNodes() != 50 {
		t.Fatal("T-CSR")
	}
	// Chronological 60/20/20 split.
	if d.TrainEnd != 1200 || d.ValEnd != 1600 {
		t.Fatalf("splits %d/%d", d.TrainEnd, d.ValEnd)
	}
	if d.TrainEvents()+d.ValEvents()+d.TestEvents() != 2000 {
		t.Fatal("split accounting")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(tinySpec(7))
	b := Generate(tinySpec(7))
	for i := range a.Graph.Events {
		if a.Graph.Events[i] != b.Graph.Events[i] {
			t.Fatal("same seed must generate identical events")
		}
	}
	if !a.EdgeFeat.Equal(b.EdgeFeat, 0) {
		t.Fatal("same seed must generate identical features")
	}
	c := Generate(tinySpec(8))
	same := true
	for i := range a.Graph.Events {
		if a.Graph.Events[i] != c.Graph.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestBipartiteConstraint(t *testing.T) {
	d := Generate(tinySpec(2))
	for _, e := range d.Graph.Events {
		if e.Src >= 40 {
			t.Fatalf("source %d outside source partition", e.Src)
		}
		if e.Dst < 40 {
			t.Fatalf("destination %d inside source partition", e.Dst)
		}
	}
}

func TestGeneralGraphAllowsAnyEndpoints(t *testing.T) {
	spec := tinySpec(3)
	spec.NumSrc = 0
	d := Generate(spec)
	sawHighSrc := false
	for _, e := range d.Graph.Events {
		if e.Src == e.Dst {
			t.Fatal("self loops must be avoided")
		}
		if e.Src >= 40 {
			sawHighSrc = true
		}
	}
	if !sawHighSrc {
		t.Fatal("general graph should use the whole node range as sources")
	}
}

func TestTimestampsStrictlyIncreasing(t *testing.T) {
	d := Generate(tinySpec(4))
	for i := 1; i < len(d.Graph.Events); i++ {
		if d.Graph.Events[i].Time <= d.Graph.Events[i-1].Time {
			t.Fatal("timestamps must increase")
		}
	}
}

func TestNoiseRateApproximate(t *testing.T) {
	d := Generate(tinySpec(5))
	noisy := 0
	for _, b := range d.Noise {
		if b {
			noisy++
		}
	}
	frac := float64(noisy) / float64(len(d.Noise))
	if math.Abs(frac-0.2) > 0.04 {
		t.Fatalf("noise fraction %v want ~0.2", frac)
	}
}

func TestSkewedActivity(t *testing.T) {
	// Power-law activity: the busiest source should dwarf the median.
	d := Generate(tinySpec(6))
	counts := make([]int, 50)
	for _, e := range d.Graph.Events {
		counts[e.Src]++
	}
	maxC, total := 0, 0
	for _, c := range counts[:40] {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(total) / 40
	if float64(maxC) < 3*mean {
		t.Fatalf("activity not skewed: max %d vs mean %v", maxC, mean)
	}
}

func TestRepeatedPartnersExist(t *testing.T) {
	// RepeatRate creates repeated (src, dst) pairs at different times — the
	// recurrence pattern the FE/IE encodings target.
	d := Generate(tinySpec(7))
	type pair struct{ s, d int32 }
	seen := map[pair]int{}
	for _, e := range d.Graph.Events {
		seen[pair{e.Src, e.Dst}]++
	}
	repeats := 0
	for _, c := range seen {
		if c > 1 {
			repeats++
		}
	}
	if repeats < 100 {
		t.Fatalf("expected many repeated pairs, got %d", repeats)
	}
}

func TestNoiseEdgesHaveUninformativeFeatures(t *testing.T) {
	// Genuine edge features are low-rank projections of endpoint latents and
	// must correlate more strongly with a same-source second edge than noise
	// features do. We use a crude proxy: genuine features have higher
	// average pairwise |cosine| within a source's edges than noise features
	// have with anything.
	d := Generate(tinySpec(8))
	cos := func(a, b []float64) float64 {
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 0
		}
		return dot / math.Sqrt(na*nb)
	}
	// Collect per-source genuine edges.
	bySrc := map[int32][]int{}
	for i, e := range d.Graph.Events {
		if !d.Noise[i] {
			bySrc[e.Src] = append(bySrc[e.Src], i)
		}
	}
	var genuine, cross mathxWelford
	rng := mathx.NewRNG(9)
	for src, idxs := range bySrc {
		if len(idxs) < 2 {
			continue
		}
		a, b := idxs[0], idxs[1]
		genuine.add(math.Abs(cos(d.EdgeFeat.Row(a), d.EdgeFeat.Row(b))))
		other := rng.Intn(len(d.Graph.Events))
		cross.add(math.Abs(cos(d.EdgeFeat.Row(a), d.EdgeFeat.Row(other))))
		_ = src
	}
	if genuine.mean() <= cross.mean() {
		t.Fatalf("genuine same-source edges should correlate: %v vs %v",
			genuine.mean(), cross.mean())
	}
}

type mathxWelford struct {
	n   int
	sum float64
}

func (w *mathxWelford) add(x float64) { w.n++; w.sum += x }
func (w *mathxWelford) mean() float64 { return w.sum / math.Max(1, float64(w.n)) }

func TestAllFiveSpecs(t *testing.T) {
	for _, d := range All(0.1, 42) {
		if len(d.Graph.Events) == 0 {
			t.Fatalf("%s: empty", d.Spec.Name)
		}
		if d.Spec.NodeDim > 0 && d.NodeFeat.MaxAbs() == 0 {
			t.Fatalf("%s: node features all zero", d.Spec.Name)
		}
		if d.Spec.EdgeDim > 0 && d.EdgeFeat.MaxAbs() == 0 {
			t.Fatalf("%s: edge features all zero", d.Spec.Name)
		}
		if d.String() == "" {
			t.Fatal("String")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"wikipedia", "reddit", "flights", "movielens", "gdelt"} {
		d, ok := ByName(name, 0.05, 1)
		if !ok || d.Spec.Name != name {
			t.Fatalf("ByName(%s)", name)
		}
	}
	if _, ok := ByName("nope", 1, 1); ok {
		t.Fatal("unknown name must fail")
	}
}

func TestScaleFloor(t *testing.T) {
	d := Wikipedia(0.0001, 1)
	if len(d.Graph.Events) < 100 {
		t.Fatal("scale floor")
	}
}
