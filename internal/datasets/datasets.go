// Package datasets generates the five synthetic dynamic graphs that stand in
// for the paper's evaluation datasets (§IV-A, Table II). Real downloads are
// gated (MovieLens/GDELT are multi-GB; Wikipedia/Reddit/Flights require
// external hosting), so each generator reproduces the structural properties
// TASER's mechanisms interact with, at ~100× reduced scale:
//
//   - bipartiteness (Wikipedia, Reddit, MovieLens) vs. general topology
//     (Flights, GDELT);
//   - feature availability: edge-only (Wikipedia/Reddit/MovieLens),
//     node-only (Flights), both (GDELT);
//   - power-law activity→ skewed neighborhood distributions and repeated
//     edges between the same pair (the paper's "skewed neighborhood" noise);
//   - deprecated links: each node's latent interest vector drifts over
//     time, so old interactions carry stale or contradictory signal;
//   - noise edges: a fraction ρ of interactions connect unrelated nodes.
//
// Ground-truth noise labels are retained per event so tests can verify that
// adaptive sampling preferentially avoids noise.
package datasets

import (
	"fmt"
	"math"

	"taser/internal/mathx"
	"taser/internal/tensor"
	"taser/internal/tgraph"
)

// Spec parameterizes a generator.
type Spec struct {
	Name      string
	NumNodes  int
	NumSrc    int // bipartite: sources are [0, NumSrc); 0 means general graph
	NumEvents int
	NodeDim   int
	EdgeDim   int

	LatentDim  int     // latent interest-vector width
	NoiseRate  float64 // fraction ρ of uniformly random (noise) interactions
	DriftRate  float64 // latent drift magnitude per unit time (deprecated links)
	RepeatRate float64 // probability of repeating a past partner (skew/recurrence)
	Skew       float64 // zipf exponent of per-node activity
	CandPool   int     // affinity candidate pool size per event

	TrainFrac float64
	ValFrac   float64
	Seed      uint64
}

// Dataset is a fully materialized synthetic CTDG with chronological splits.
type Dataset struct {
	Spec     Spec
	Graph    *tgraph.Graph
	TCSR     *tgraph.TCSR
	NodeFeat *tensor.Matrix // NumNodes×NodeDim (zero-width if NodeDim==0)
	EdgeFeat *tensor.Matrix // NumEvents×EdgeDim (zero-width if EdgeDim==0)
	// Noise[i] marks event i as ground-truth noise.
	Noise []bool
	// TrainEnd/ValEnd are event-index split boundaries:
	// train = [0, TrainEnd), val = [TrainEnd, ValEnd), test = [ValEnd, |E|).
	TrainEnd, ValEnd int
}

// TrainEvents, ValEvents, TestEvents return the split sizes.
func (d *Dataset) TrainEvents() int { return d.TrainEnd }
func (d *Dataset) ValEvents() int   { return d.ValEnd - d.TrainEnd }
func (d *Dataset) TestEvents() int  { return len(d.Graph.Events) - d.ValEnd }

// String summarizes the dataset for Table II output.
func (d *Dataset) String() string {
	return fmt.Sprintf("%-10s |V|=%-6d |E|=%-7d dv=%-3d de=%-3d train/val/test=%d/%d/%d",
		d.Spec.Name, d.Spec.NumNodes, len(d.Graph.Events), d.Spec.NodeDim, d.Spec.EdgeDim,
		d.TrainEvents(), d.ValEvents(), d.TestEvents())
}

// Generate materializes a dataset from its spec.
func Generate(spec Spec) *Dataset {
	if spec.LatentDim <= 0 {
		spec.LatentDim = 8
	}
	if spec.CandPool <= 0 {
		spec.CandPool = 24
	}
	if spec.TrainFrac <= 0 {
		spec.TrainFrac = 0.6
	}
	if spec.ValFrac <= 0 {
		spec.ValFrac = 0.2
	}
	rng := mathx.NewRNG(spec.Seed)
	n := spec.NumNodes

	// Latent interests: base vector plus a drift direction per node.
	base := tensor.Randn(n, spec.LatentDim, 1, rng)
	drift := tensor.Randn(n, spec.LatentDim, 1, rng)
	horizon := float64(spec.NumEvents)
	latentAt := func(v int32, t float64, dst []float64) {
		// Normalized time in [0,1] scales the drift so DriftRate is
		// comparable across dataset sizes.
		u := t / horizon * spec.DriftRate
		b := base.Row(int(v))
		g := drift.Row(int(v))
		for i := range dst {
			dst[i] = b[i] + u*g[i]
		}
	}

	// Power-law activity per source node.
	srcRange := n
	if spec.NumSrc > 0 {
		srcRange = spec.NumSrc
	}
	weights := make([]float64, srcRange)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -spec.Skew)
	}
	rng.Shuffle(srcRange, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	srcAlias := mathx.NewAlias(weights)

	dstLo, dstHi := 0, n
	if spec.NumSrc > 0 {
		dstLo = spec.NumSrc
	}

	events := make([]tgraph.Event, 0, spec.NumEvents)
	noise := make([]bool, spec.NumEvents)
	history := make([][]int32, n) // past partners per source, for repetition
	zs := make([]float64, spec.LatentDim)
	zd := make([]float64, spec.LatentDim)

	for i := 0; i < spec.NumEvents; i++ {
		t := float64(i + 1)
		src := int32(srcAlias.Draw(rng))
		var dst int32
		switch {
		case rng.Float64() < spec.NoiseRate:
			// Noise interaction: unrelated destination.
			dst = int32(dstLo + rng.Intn(dstHi-dstLo))
			noise[i] = true
		case len(history[src]) > 0 && rng.Float64() < spec.RepeatRate:
			// Recurrence: revisit a past partner (skewed neighborhoods).
			dst = history[src][rng.Intn(len(history[src]))]
		default:
			// Affinity-driven: softmax over a random candidate pool.
			latentAt(src, t, zs)
			bestScore := math.Inf(-1)
			var pick int32
			for c := 0; c < spec.CandPool; c++ {
				cand := int32(dstLo + rng.Intn(dstHi-dstLo))
				if cand == src {
					continue
				}
				latentAt(cand, t, zd)
				var dot float64
				for k := range zs {
					dot += zs[k] * zd[k]
				}
				// Gumbel-max = softmax sampling over the pool.
				score := dot + gumbel(rng)
				if score > bestScore {
					bestScore = score
					pick = cand
				}
			}
			dst = pick
		}
		if dst == src { // avoid degenerate self loops in synthetic data
			dst = int32(dstLo + (int(src)+1-dstLo+rng.Intn(dstHi-dstLo-1))%(dstHi-dstLo))
		}
		history[src] = append(history[src], dst)
		events = append(events, tgraph.Event{Src: src, Dst: dst, Time: t})
	}

	g, err := tgraph.NewGraph(n, events)
	if err != nil {
		panic(err) // generator bug, not user error
	}

	d := &Dataset{Spec: spec, Graph: g, Noise: noise}
	d.TCSR = tgraph.BuildTCSR(g)
	d.buildFeatures(base, rng)
	total := len(g.Events)
	d.TrainEnd = int(spec.TrainFrac * float64(total))
	d.ValEnd = d.TrainEnd + int(spec.ValFrac*float64(total))
	return d
}

// gumbel draws a standard Gumbel variate.
func gumbel(rng *mathx.RNG) float64 {
	return -math.Log(-math.Log(rng.Float64() + 1e-12))
}

// buildFeatures projects latents into observable node/edge features.
// Genuine edges carry a (noisy) projection of both endpoints' latents at the
// interaction time; noise edges carry pure noise — this is the contextual
// signal the adaptive sampler can exploit to discriminate neighbors.
func (d *Dataset) buildFeatures(base *tensor.Matrix, rng *mathx.RNG) {
	spec := d.Spec
	d.NodeFeat = tensor.New(spec.NumNodes, spec.NodeDim)
	if spec.NodeDim > 0 {
		proj := tensor.Randn(spec.LatentDim, spec.NodeDim, 1/math.Sqrt(float64(spec.LatentDim)), rng)
		tensor.MatMulInto(d.NodeFeat, base, proj)
		for i := range d.NodeFeat.Data {
			d.NodeFeat.Data[i] += 0.1 * rng.NormFloat64()
		}
	}
	d.EdgeFeat = tensor.New(len(d.Graph.Events), spec.EdgeDim)
	if spec.EdgeDim > 0 {
		projS := tensor.Randn(spec.LatentDim, spec.EdgeDim, 1/math.Sqrt(float64(spec.LatentDim)), rng)
		projD := tensor.Randn(spec.LatentDim, spec.EdgeDim, 1/math.Sqrt(float64(spec.LatentDim)), rng)
		for i, e := range d.Graph.Events {
			row := d.EdgeFeat.Row(i)
			if d.Noise[i] {
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				continue
			}
			zs := base.Row(int(e.Src))
			zd := base.Row(int(e.Dst))
			for j := range row {
				var s float64
				for k := 0; k < spec.LatentDim; k++ {
					s += zs[k]*projS.Data[k*spec.EdgeDim+j] + zd[k]*projD.Data[k*spec.EdgeDim+j]
				}
				row[j] = s + 0.2*rng.NormFloat64()
			}
		}
	}
}
