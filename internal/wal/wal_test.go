package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"taser/internal/mathx"
)

// collect replays the whole log into a slice (copying feature rows).
func collect(t *testing.T, fsys FS, dir string, from uint64) []Record {
	t.Helper()
	var out []Record
	_, err := Replay(fsys, dir, from, func(seq uint64, rec Record) error {
		r := rec
		r.Feat = append([]float64(nil), rec.Feat...)
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// synthRecords builds a deterministic chronological record stream.
func synthRecords(n, featDim int, seed uint64) []Record {
	rng := mathx.NewRNG(seed)
	recs := make([]Record, n)
	tm := 0.0
	for i := range recs {
		tm += rng.Float64()
		var feat []float64
		if featDim > 0 {
			feat = make([]float64, featDim)
			for j := range feat {
				feat[j] = rng.NormFloat64()
			}
		}
		recs[i] = Record{Src: int32(rng.Intn(100)), Dst: int32(rng.Intn(100)), T: tm, Feat: feat}
	}
	return recs
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r.Src, r.Dst, r.T, r.Feat); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Src != w.Src || g.Dst != w.Dst || g.T != w.T || len(g.Feat) != len(w.Feat) {
			t.Fatalf("record %d: got %+v want %+v", i, g, w)
		}
		for j := range w.Feat {
			if g.Feat[j] != w.Feat[j] {
				t.Fatalf("record %d feat %d: got %v want %v", i, j, g.Feat[j], w.Feat[j])
			}
		}
	}
}

// TestAppendReplayRoundTrip: every appended record comes back bitwise, across
// segment rotations, with and without feature rows.
func TestAppendReplayRoundTrip(t *testing.T) {
	for _, featDim := range []int{0, 5} {
		dir := t.TempDir()
		recs := synthRecords(300, featDim, 7)
		l, err := Open(Config{Dir: dir, SyncEvery: 16, SegmentBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, recs)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.Appended != 300 || st.Synced != 300 {
			t.Fatalf("stats after close: %+v", st)
		}
		if l.Stats().Segments < 2 {
			t.Fatalf("expected rotation across segments, got %d", l.Stats().Segments)
		}
		sameRecords(t, collect(t, OSFS{}, dir, 0), recs)
	}
}

// TestReopenContinuesSequence: closing and reopening appends after the
// existing records, and a suffix replay sees only the new ones.
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(100, 3, 11)
	l, err := Open(Config{Dir: dir, SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs[:60])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Config{Dir: dir, SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 60 {
		t.Fatalf("reopened at seq %d, want 60", l2.Seq())
	}
	appendAll(t, l2, recs[60:])
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, collect(t, OSFS{}, dir, 0), recs)
	sameRecords(t, collect(t, OSFS{}, dir, 60), recs[60:])
}

// TestGroupCommitLossBound: records beyond the last sync are buffered in
// memory only — a crash (abandoning the log without Close) loses at most
// SyncEvery-1 records, and repair recovers the synced prefix exactly.
func TestGroupCommitLossBound(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(100, 0, 3)
	l, err := Open(Config{Dir: dir, SyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs) // 100 appends → 6 syncs at 96; 4 records buffered
	// Crash: no Close, no Sync. The buffered tail never reached the FS.
	rep, err := Repair(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 96 {
		t.Fatalf("recovered %d records, want the 96 synced ones", rep.Records)
	}
	if lost := 100 - int(rep.Records); lost >= 16 {
		t.Fatalf("lost %d records, bound is SyncEvery-1 = 15", lost)
	}
	sameRecords(t, collect(t, OSFS{}, dir, 0), recs[:96])
}

// TestRepairTruncatesTornTail: a torn final record (simulated by truncating
// the file mid-record) is cut back to the last whole record.
func TestRepairTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(50, 2, 5)
	l, err := Open(Config{Dir: dir, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(0))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil { // mid-record cut
		t.Fatal(err)
	}
	rep, err := Verify(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || rep.Records != 49 {
		t.Fatalf("verify: %+v, want torn with 49 whole records", rep)
	}
	if _, err := Repair(OSFS{}, dir); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, collect(t, OSFS{}, dir, 0), recs[:49])
	// Reopening appends cleanly after the repaired prefix.
	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 49 {
		t.Fatalf("reopened at %d, want 49", l2.Seq())
	}
	l2.Close()
}

// TestRepairStopsAtCorruption: a flipped byte mid-log fails that record's
// CRC; repair truncates from the corrupt record onward, including every
// later segment.
func TestRepairStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(200, 1, 9)
	l, err := Open(Config{Dir: dir, SyncEvery: 4, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the first segment.
	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Repair(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || rep.Records >= 200 {
		t.Fatalf("repair: %+v, want a truncated prefix", rep)
	}
	got := collect(t, OSFS{}, dir, 0)
	sameRecords(t, got, recs[:rep.Records])
	// Later segments must be gone: a fresh Open counts the same prefix.
	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != rep.Records {
		t.Fatalf("reopen sees %d records, repair reported %d", l2.Seq(), rep.Records)
	}
	l2.Close()
}

// TestReplayUnderShortReads: the decoder never assumes one Read fills its
// buffer — replay under a 3-byte read limit returns every record bitwise.
func TestReplayUnderShortReads(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(40, 4, 13)
	l, err := Open(Config{Dir: dir, SyncEvery: 8, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFS(OSFS{})
	ff.LimitReads(3)
	sameRecords(t, collect(t, ff, dir, 0), recs)
}

// TestKillAtOffsetTearsWrite: the write crossing the byte budget persists
// only its in-budget prefix, every later operation fails with ErrKilled, and
// the surviving log repairs to a clean record prefix.
func TestKillAtOffsetTearsWrite(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(100, 2, 17)
	ff := NewFaultFS(OSFS{})
	l, err := Open(Config{Dir: dir, SyncEvery: 4, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	ff.KillAfter(700, "wal-")
	var appendErr error
	appended := 0
	for _, r := range recs {
		if appendErr = l.Append(r.Src, r.Dst, r.T, r.Feat); appendErr != nil {
			break
		}
		appended++
	}
	if appendErr == nil {
		t.Fatal("expected the kill to surface as an append error")
	}
	if !errors.Is(appendErr, ErrKilled) {
		t.Fatalf("append error %v, want ErrKilled", appendErr)
	}
	if !ff.Killed() {
		t.Fatal("fault did not fire")
	}
	// The sticky error holds: later appends and syncs fail identically.
	if err := l.Append(1, 2, 1e9, nil); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill append: %v", err)
	}
	// Restart with a healthy FS: repair truncates the torn tail and replay
	// yields a strict prefix of what was appended.
	rep, err := Repair(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if int(rep.Records) > appended {
		t.Fatalf("recovered %d records but only %d were appended", rep.Records, appended)
	}
	sameRecords(t, collect(t, OSFS{}, dir, 0), recs[:rep.Records])
}

// TestFsyncErrorIsSticky: an injected fsync failure poisons the log without
// killing the FS; the durable prefix stays replayable.
func TestFsyncErrorIsSticky(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(20, 0, 19)
	ff := NewFaultFS(OSFS{})
	l, err := Open(Config{Dir: dir, SyncEvery: 4, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs[:8])
	ff.FailSyncs(true)
	var failed error
	for _, r := range recs[8:] {
		if failed = l.Append(r.Src, r.Dst, r.T, r.Feat); failed != nil {
			break
		}
	}
	if failed == nil {
		t.Fatal("expected a sync failure to surface")
	}
	if err := l.Append(5, 6, 1e9, nil); err == nil {
		t.Fatal("log accepted an append after a failed sync")
	}
	ff.FailSyncs(false)
	rep, err := Repair(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, collect(t, OSFS{}, dir, 0), recs[:rep.Records])
}

// TestVerifyCleanLog reports no faults on a cleanly closed log.
func TestVerifyCleanLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, synthRecords(10, 1, 23))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn || rep.Records != 10 {
		t.Fatalf("verify clean log: %+v", rep)
	}
}
