package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strings"

	"taser/internal/models"
	"taser/internal/tgraph"
)

// Checkpoint is one durable cut of the serving state: the event prefix it
// covers (with edge-feature rows), the ingest watermark, and the weight set
// serving that prefix. Recovery bootstraps an engine from the newest valid
// checkpoint and replays only the WAL records past Events — the WAL suffix —
// so recovery cost is bounded by the checkpoint cadence, not the stream
// length. A checkpoint with nil Weights restores the engine's configured
// (pretrained) parameters.
//
// File format: magic + format version, then four checksummed sections
// (manifest, events, features, weights), each framed as
// [uint64 length][payload][uint32 CRC32C]. Any truncation or bit flip fails
// a section's checksum and the whole file is rejected — recovery then falls
// back to the previous checkpoint (two are retained) or to pure WAL replay.
type Checkpoint struct {
	Events       []tgraph.Event
	Feats        []float64 // row i of the EdgeDim-wide feature matrix is event i's
	EdgeDim      int
	Watermark    float64
	HasWatermark bool
	Weights      *models.WeightSet // nil = no weights published at capture time
}

const (
	ckptMagic   = 0x504B4354 // "TCKP"
	ckptVersion = 1
)

func checkpointName(events int, weightVersion uint64) string {
	return fmt.Sprintf("ckpt-%016d-%08d.ck", events, weightVersion)
}

// appendSection frames payload (already appended at buf[start:]) in place:
// the caller reserves the length slot by calling beginSection first.
func beginSection(buf []byte) ([]byte, int) {
	buf = binary.LittleEndian.AppendUint64(buf, 0) // patched by endSection
	return buf, len(buf)
}

func endSection(buf []byte, start int) []byte {
	binary.LittleEndian.PutUint64(buf[start-8:], uint64(len(buf)-start))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// encode marshals the checkpoint.
func (c *Checkpoint) encode() ([]byte, error) {
	if len(c.Feats) != len(c.Events)*c.EdgeDim {
		return nil, fmt.Errorf("wal: checkpoint has %d feature floats for %d events × %d dims",
			len(c.Feats), len(c.Events), c.EdgeDim)
	}
	n := len(c.Events)
	buf := make([]byte, 0, 8+3*12+16*n+8*len(c.Feats)+64)
	buf = binary.LittleEndian.AppendUint32(buf, ckptMagic)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)

	// Manifest.
	buf, start := beginSection(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Watermark))
	if c.HasWatermark {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.EdgeDim))
	var wv uint64
	if c.Weights != nil {
		wv = c.Weights.Version
	}
	buf = binary.LittleEndian.AppendUint64(buf, wv)
	buf = endSection(buf, start)

	// Events.
	buf, start = beginSection(buf)
	for _, ev := range c.Events {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Src))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Time))
	}
	buf = endSection(buf, start)

	// Features.
	buf, start = beginSection(buf)
	for _, v := range c.Feats {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = endSection(buf, start)

	// Weights (present iff the manifest's weight version is non-zero).
	if c.Weights != nil {
		buf, start = beginSection(buf)
		buf = c.Weights.AppendBinary(buf)
		buf = endSection(buf, start)
	}
	return buf, nil
}

// readSection verifies and returns the next section's payload.
func readSection(data []byte, off int) (payload []byte, next int, err error) {
	if off+8 > len(data) {
		return nil, 0, fmt.Errorf("wal: checkpoint truncated at section header")
	}
	n := binary.LittleEndian.Uint64(data[off:])
	off += 8
	if uint64(len(data)-off) < n+4 {
		return nil, 0, fmt.Errorf("wal: checkpoint truncated inside section")
	}
	payload = data[off : off+int(n)]
	off += int(n)
	want := binary.LittleEndian.Uint32(data[off:])
	if crc32.Checksum(payload, crcTable) != want {
		return nil, 0, fmt.Errorf("wal: checkpoint section checksum mismatch")
	}
	return payload, off + 4, nil
}

// DecodeCheckpoint parses and validates a checkpoint file's bytes — the
// follower side of checkpoint shipping (internal/replica): the leader sends
// the newest checkpoint file verbatim and the receiver validates every
// section checksum before trusting any of it, exactly as local recovery
// does.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return decodeCheckpoint(data) }

// decodeCheckpoint parses and validates a checkpoint file's bytes.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 8 || binary.LittleEndian.Uint32(data) != ckptMagic {
		return nil, fmt.Errorf("wal: not a checkpoint file")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != ckptVersion {
		return nil, fmt.Errorf("wal: unsupported checkpoint version %d", v)
	}
	man, off, err := readSection(data, 8)
	if err != nil {
		return nil, err
	}
	if len(man) != 29 {
		return nil, fmt.Errorf("wal: checkpoint manifest is %d bytes, want 29", len(man))
	}
	c := &Checkpoint{
		Watermark:    math.Float64frombits(binary.LittleEndian.Uint64(man[8:])),
		HasWatermark: man[16] == 1,
		EdgeDim:      int(binary.LittleEndian.Uint32(man[17:])),
	}
	n := int(binary.LittleEndian.Uint64(man[0:]))
	wv := binary.LittleEndian.Uint64(man[21:])

	evs, off, err := readSection(data, off)
	if err != nil {
		return nil, err
	}
	if len(evs) != 16*n {
		return nil, fmt.Errorf("wal: checkpoint event section is %d bytes for %d events", len(evs), n)
	}
	c.Events = make([]tgraph.Event, n)
	for i := range c.Events {
		c.Events[i] = tgraph.Event{
			Src:  int32(binary.LittleEndian.Uint32(evs[16*i:])),
			Dst:  int32(binary.LittleEndian.Uint32(evs[16*i+4:])),
			Time: math.Float64frombits(binary.LittleEndian.Uint64(evs[16*i+8:])),
		}
	}

	feats, off, err := readSection(data, off)
	if err != nil {
		return nil, err
	}
	if len(feats) != 8*n*c.EdgeDim {
		return nil, fmt.Errorf("wal: checkpoint feature section is %d bytes for %d×%d", len(feats), n, c.EdgeDim)
	}
	c.Feats = make([]float64, n*c.EdgeDim)
	for i := range c.Feats {
		c.Feats[i] = math.Float64frombits(binary.LittleEndian.Uint64(feats[8*i:]))
	}

	if wv != 0 {
		wsec, _, err := readSection(data, off)
		if err != nil {
			return nil, err
		}
		w, _, err := models.DecodeWeightSet(wsec)
		if err != nil {
			return nil, err
		}
		if w.Version != wv {
			return nil, fmt.Errorf("wal: checkpoint weight version %d disagrees with manifest %d", w.Version, wv)
		}
		c.Weights = w
	}
	return c, nil
}

// WriteCheckpoint durably publishes ck into dir: the encoding is written to
// a temporary file, fsynced, atomically renamed into place, and the
// directory fsynced — a crash at any point leaves either the old checkpoint
// set or the new one, never a half-written file that recovery could trust.
// The two newest checkpoints are retained (the newest could be torn by a
// crash mid-write; the one before it is the fallback) and older ones
// removed.
func WriteCheckpoint(fsys FS, dir string, ck *Checkpoint) error {
	if fsys == nil {
		fsys = OSFS{}
	}
	data, err := ck.encode()
	if err != nil {
		return err
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	final := checkpointName(len(ck.Events), manifestWeightVersion(ck))
	tmp := final + ".tmp"
	f, err := fsys.Create(filepath.Join(dir, tmp))
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := fsys.Rename(filepath.Join(dir, tmp), filepath.Join(dir, final)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	// Prune: keep the two newest, and sweep any stale .tmp leftovers.
	names, err := listCheckpoints(fsys, dir)
	if err != nil {
		return nil // the checkpoint itself is durable; pruning is advisory
	}
	for i, name := range names {
		if i >= 2 {
			_ = fsys.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

func manifestWeightVersion(ck *Checkpoint) uint64 {
	if ck.Weights == nil {
		return 0
	}
	return ck.Weights.Version
}

// listCheckpoints returns checkpoint file names, newest first.
func listCheckpoints(fsys FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	cks := names[:0]
	for _, n := range names {
		if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ck") {
			cks = append(cks, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(cks))) // zero-padded: lexical == (events, weight version)
	return cks, nil
}

// NewestCheckpointBytes returns the raw bytes of the newest checkpoint in
// dir that validates, for shipping to a catching-up follower (which
// re-validates with DecodeCheckpoint). events is the event count the
// checkpoint covers. Returns (nil, 0, nil) when the directory holds no
// usable checkpoint.
func NewestCheckpointBytes(fsys FS, dir string) (data []byte, events int, err error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	names, err := listCheckpoints(fsys, dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	for _, name := range names {
		f, err := fsys.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		raw, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			continue
		}
		ck, err := decodeCheckpoint(raw)
		if err != nil {
			continue // torn or corrupt; fall back to the previous one
		}
		return raw, len(ck.Events), nil
	}
	return nil, 0, nil
}

// LatestCheckpoint loads the newest checkpoint in dir that validates,
// skipping torn or corrupt files (a crash mid-WriteCheckpoint leaves at
// worst an ignorable .tmp). Returns (nil, nil) when the directory holds no
// usable checkpoint — recovery then replays the WAL from the beginning.
func LatestCheckpoint(fsys FS, dir string) (*Checkpoint, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	names, err := listCheckpoints(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, name := range names {
		f, err := fsys.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			continue
		}
		ck, err := decodeCheckpoint(data)
		if err != nil {
			continue // torn or corrupt; fall back to the previous one
		}
		return ck, nil
	}
	return nil, nil
}
