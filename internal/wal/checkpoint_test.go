package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taser/internal/mathx"
	"taser/internal/models"
	"taser/internal/tgraph"
)

// testCheckpoint builds a checkpoint with events, features and a weight set.
func testCheckpoint(n, edgeDim int, weightVersion uint64) *Checkpoint {
	rng := mathx.NewRNG(31)
	ck := &Checkpoint{EdgeDim: edgeDim, HasWatermark: n > 0}
	tm := 0.0
	for i := 0; i < n; i++ {
		tm += rng.Float64()
		ck.Events = append(ck.Events, tgraph.Event{Src: int32(rng.Intn(50)), Dst: int32(rng.Intn(50)), Time: tm})
		for j := 0; j < edgeDim; j++ {
			ck.Feats = append(ck.Feats, rng.NormFloat64())
		}
	}
	ck.Watermark = tm
	if weightVersion > 0 {
		m := models.NewTGAT(models.TGATConfig{NodeDim: 4, EdgeDim: edgeDim, HiddenDim: 6, TimeDim: 4, Layers: 1, Budget: 3}, rng)
		p := models.NewEdgePredictor(6, rng)
		ck.Weights = models.CaptureWeights(weightVersion, m, p)
	}
	return ck
}

func sameCheckpoint(t *testing.T, got, want *Checkpoint) {
	t.Helper()
	if got == nil {
		t.Fatal("no checkpoint loaded")
	}
	if len(got.Events) != len(want.Events) || got.EdgeDim != want.EdgeDim ||
		got.Watermark != want.Watermark || got.HasWatermark != want.HasWatermark {
		t.Fatalf("manifest mismatch: got %d events dim %d wm %v, want %d/%d/%v",
			len(got.Events), got.EdgeDim, got.Watermark, len(want.Events), want.EdgeDim, want.Watermark)
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], want.Events[i])
		}
	}
	for i := range want.Feats {
		if got.Feats[i] != want.Feats[i] {
			t.Fatalf("feat %d: got %v want %v", i, got.Feats[i], want.Feats[i])
		}
	}
	switch {
	case want.Weights == nil:
		if got.Weights != nil {
			t.Fatal("decoded weights where none were stored")
		}
	case got.Weights == nil:
		t.Fatal("stored weights were dropped")
	default:
		if got.Weights.Version != want.Weights.Version || len(got.Weights.Params) != len(want.Weights.Params) {
			t.Fatalf("weights v%d/%d tensors, want v%d/%d",
				got.Weights.Version, len(got.Weights.Params), want.Weights.Version, len(want.Weights.Params))
		}
		for i, p := range want.Weights.Params {
			g := got.Weights.Params[i]
			if g.Rows != p.Rows || g.Cols != p.Cols {
				t.Fatalf("weight tensor %d shape %dx%d, want %dx%d", i, g.Rows, g.Cols, p.Rows, p.Cols)
			}
			for j := range p.Data {
				if g.Data[j] != p.Data[j] {
					t.Fatalf("weight tensor %d elem %d: %v != %v", i, j, g.Data[j], p.Data[j])
				}
			}
		}
	}
}

// TestCheckpointRoundTrip: write + load restores events, features, watermark
// and weights bitwise; a weightless checkpoint round-trips nil weights.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n, edgeDim int
		wv         uint64
	}{{0, 0, 0}, {64, 0, 0}, {64, 3, 2}, {1, 4, 9}} {
		dir := t.TempDir()
		ck := testCheckpoint(tc.n, tc.edgeDim, tc.wv)
		if err := WriteCheckpoint(OSFS{}, dir, ck); err != nil {
			t.Fatal(err)
		}
		got, err := LatestCheckpoint(OSFS{}, dir)
		if err != nil {
			t.Fatal(err)
		}
		sameCheckpoint(t, got, ck)
	}
}

// TestLatestCheckpointPrefersNewestAndPrunes: successive writes are ordered
// by (events, weight version); only the two newest files survive.
func TestLatestCheckpointPrefersNewestAndPrunes(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []int{10, 20, 30} {
		if err := WriteCheckpoint(OSFS{}, dir, testCheckpoint(n, 2, uint64(n))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestCheckpoint(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 30 || got.Weights.Version != 30 {
		t.Fatalf("latest has %d events v%d, want 30/v30", len(got.Events), got.Weights.Version)
	}
	names, err := listCheckpoints(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("retained %d checkpoints, want 2: %v", len(names), names)
	}
}

// TestCorruptCheckpointFallsBack: a flipped byte in the newest checkpoint
// fails its section checksum; loading falls back to the previous one, and
// with no valid file at all returns nil without error.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	old := testCheckpoint(10, 2, 1)
	if err := WriteCheckpoint(OSFS{}, dir, old); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(OSFS{}, dir, testCheckpoint(20, 2, 2)); err != nil {
		t.Fatal(err)
	}
	names, _ := listCheckpoints(OSFS{}, dir)
	newest := filepath.Join(dir, names[0])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	sameCheckpoint(t, got, old)

	// Corrupt the fallback too: recovery degrades to nil (pure WAL replay).
	older := filepath.Join(dir, names[1])
	data, err = os.ReadFile(older)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0x80
	if err := os.WriteFile(older, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LatestCheckpoint(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("corrupted checkpoints still loaded")
	}
}

// TestKilledCheckpointWriteLeavesTmpOnly: a kill during the checkpoint write
// never produces a trusted .ck file — only an ignorable .tmp.
func TestKilledCheckpointWriteLeavesTmpOnly(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OSFS{})
	ff.KillAfter(100, "ckpt")
	if err := WriteCheckpoint(ff, dir, testCheckpoint(40, 2, 3)); err == nil {
		t.Fatal("expected the kill to fail the write")
	}
	names, err := OSFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".ck") {
			t.Fatalf("torn checkpoint was renamed into place: %v", names)
		}
	}
	got, err := LatestCheckpoint(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("loaded a checkpoint from a torn write")
	}
}

// TestShortReadCheckpointLoad: loading tolerates an FS that returns short
// reads.
func TestShortReadCheckpointLoad(t *testing.T) {
	dir := t.TempDir()
	ck := testCheckpoint(25, 3, 4)
	if err := WriteCheckpoint(OSFS{}, dir, ck); err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFS(OSFS{})
	ff.LimitReads(5)
	got, err := LatestCheckpoint(ff, dir)
	if err != nil {
		t.Fatal(err)
	}
	sameCheckpoint(t, got, ck)
}
