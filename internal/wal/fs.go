package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the narrow filesystem surface the WAL and checkpoint writers run on.
// Production code uses the process filesystem (OSFS); recovery tests inject a
// FaultFS that wraps it with torn writes, short reads, fsync errors and
// kill-at-offset crashes — the failure modes a write-ahead log exists to
// survive. Keeping the surface this small is what makes the fault matrix
// exhaustively testable.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the base names of dir's entries in lexical order.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname (POSIX rename).
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes (the torn-tail repair primitive).
	Truncate(name string, size int64) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making renames and creations
	// durable (without it a crash can roll back a committed rename).
	SyncDir(dir string) error
}

// File is the per-file surface: sequential reads and writes plus fsync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// OSFS is the process filesystem.
type OSFS struct{}

var _ FS = OSFS{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
