package wal

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
)

// ErrKilled is returned by every FaultFS operation after the injected crash
// point: as far as the code under test can tell, the process died.
var ErrKilled = errors.New("wal: faultfs killed")

// FaultFS wraps an FS with the failure modes durable storage actually
// exhibits, for driving recovery tests:
//
//   - kill-at-offset: after a byte budget of writes (optionally restricted to
//     files whose base name contains a pattern), the write that crosses the
//     budget is torn — only the bytes within budget reach the inner FS — and
//     every later operation fails with ErrKilled, exactly like a process
//     killed mid-write;
//   - fsync errors: Sync fails without killing the process;
//   - short reads: Read returns at most ShortRead bytes per call, flushing
//     out callers that assume one Read fills the buffer.
//
// Bytes written before the kill persist in the inner FS, so a test "restarts"
// by reopening the same directory with a healthy FS and asserting recovery.
// All methods are safe for concurrent use.
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	budget    int64  // bytes writable before the kill; <0 = unlimited
	pattern   string // only writes to matching base names consume the budget
	killed    bool
	failSync  bool
	shortRead int
	written   int64 // bytes that reached the inner FS
}

var _ FS = (*FaultFS)(nil)

// NewFaultFS wraps inner (OSFS when nil) with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, budget: -1}
}

// KillAfter arms the crash: after n more bytes are written to files whose
// base name contains pattern ("" = every file), the crossing write is torn
// and the FS dies. n = 0 kills on the next matching write.
func (f *FaultFS) KillAfter(n int64, pattern string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
	f.pattern = pattern
}

// Kill makes every subsequent operation fail immediately (a clean poweroff
// with nothing torn).
func (f *FaultFS) Kill() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killed = true
}

// FailSyncs makes Sync (and SyncDir) fail without killing the process.
func (f *FaultFS) FailSyncs(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync = on
}

// LimitReads caps each Read call at n bytes (0 restores full reads).
func (f *FaultFS) LimitReads(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortRead = n
}

// Killed reports whether the injected crash has fired.
func (f *FaultFS) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// BytesWritten reports the bytes that reached the inner FS.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// admitWrite decides how much of an n-byte write to name proceeds; it tears
// the crossing write and kills the FS when the budget runs out.
func (f *FaultFS) admitWrite(name string, n int) (allowed int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return 0, ErrKilled
	}
	if f.budget < 0 || (f.pattern != "" && !strings.Contains(filepath.Base(name), f.pattern)) {
		f.written += int64(n)
		return n, nil
	}
	if int64(n) <= f.budget {
		f.budget -= int64(n)
		f.written += int64(n)
		return n, nil
	}
	allowed = int(f.budget)
	f.budget = 0
	f.killed = true
	f.written += int64(allowed)
	return allowed, ErrKilled
}

func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return ErrKilled
	}
	return nil
}

func (f *FaultFS) checkSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return ErrKilled
	}
	if f.failSync {
		return errors.New("wal: faultfs injected fsync error")
	}
	return nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, f: inner}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, f: inner}, nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.checkSync(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads a file's reads, writes and syncs through the fault state.
type faultFile struct {
	fs   *FaultFS
	name string
	f    File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allowed, err := ff.fs.admitWrite(ff.name, len(p))
	if allowed > 0 {
		n, werr := ff.f.Write(p[:allowed])
		if werr != nil {
			return n, werr
		}
		if err != nil {
			// Torn write: the prefix reached the disk, then the process died.
			// Make the surviving bytes visible to the post-restart reader.
			ff.f.Sync()
			return n, err
		}
		return n, nil
	}
	return 0, err
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.check(); err != nil {
		return 0, err
	}
	ff.fs.mu.Lock()
	limit := ff.fs.shortRead
	ff.fs.mu.Unlock()
	if limit > 0 && len(p) > limit {
		p = p[:limit]
	}
	return ff.f.Read(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.checkSync(); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	// Close always reaches the inner file so descriptors are not leaked,
	// even after the kill.
	return ff.f.Close()
}
