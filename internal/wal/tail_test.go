package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// multiSegmentLog writes n records across several small segments and returns
// the records plus the per-segment first sequences (from the segment
// headers), so tests can aim `from` precisely at boundaries.
func multiSegmentLog(t *testing.T, dir string, n int) (recs []Record, segFirsts []uint64) {
	t.Helper()
	l, err := Open(Config{Dir: dir, SyncEvery: 4, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	recs = synthRecords(n, 2, 77)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range segs {
		r, err := openSegment(OSFS{}, dir+"/"+name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		segFirsts = append(segFirsts, r.firstSeq)
		r.close()
	}
	if len(segFirsts) < 3 {
		t.Fatalf("want ≥3 segments for boundary tests, got %d", len(segFirsts))
	}
	return recs, segFirsts
}

// TestReplaySkipAhead pins the skip-ahead contract of Replay(from): a start
// landing mid-segment, exactly on a segment boundary, one past a boundary,
// at the log's exact end, and past the end — the last two must replay zero
// records without error.
func TestReplaySkipAhead(t *testing.T) {
	dir := t.TempDir()
	recs, segFirsts := multiSegmentLog(t, dir, 60)

	mid := segFirsts[1] + (segFirsts[2]-segFirsts[1])/2 // strictly inside segment 1
	if mid == segFirsts[1] {
		mid++
	}
	cases := []struct {
		name string
		from uint64
	}{
		{"start", 0},
		{"mid-segment", mid},
		{"segment-boundary", segFirsts[2]},
		{"boundary-plus-one", segFirsts[2] + 1},
		{"exact-end", uint64(len(recs))},
		{"past-end", uint64(len(recs)) + 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seqs []uint64
			replayed, err := Replay(OSFS{}, dir, tc.from, func(seq uint64, rec Record) error {
				seqs = append(seqs, seq)
				want := recs[seq]
				if rec.Src != want.Src || rec.Dst != want.Dst || rec.T != want.T {
					t.Fatalf("seq %d: got %+v want %+v", seq, rec, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("replay from %d: %v", tc.from, err)
			}
			wantN := uint64(0)
			if tc.from < uint64(len(recs)) {
				wantN = uint64(len(recs)) - tc.from
			}
			if replayed != wantN {
				t.Fatalf("replayed %d records from %d, want %d", replayed, tc.from, wantN)
			}
			for i, seq := range seqs {
				if seq != tc.from+uint64(i) {
					t.Fatalf("out-of-order replay: position %d got seq %d", i, seq)
				}
			}
		})
	}
}

// TestTailFromMatchesReplay: the pull iterator yields exactly the records
// Replay pushes, from every starting offset.
func TestTailFromMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	recs, segFirsts := multiSegmentLog(t, dir, 40)
	for _, from := range []uint64{0, 7, segFirsts[1], segFirsts[1] + 1, uint64(len(recs)) - 1, uint64(len(recs))} {
		tail, err := TailFrom(OSFS{}, dir, from)
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		for {
			seq, rec, err := tail.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("tail from %d: %v", from, err)
			}
			if seq != from+uint64(len(got)) {
				t.Fatalf("tail from %d: seq %d at position %d", from, seq, len(got))
			}
			r := rec
			r.Feat = append([]float64(nil), rec.Feat...)
			got = append(got, r)
		}
		tail.Close()
		sameRecords(t, got, recs[from:])
	}
}

// TestStreamCodecRoundTrip: AppendRecord frames decode back bitwise through
// StreamReader — the wire format of log shipping is the disk format.
func TestStreamCodecRoundTrip(t *testing.T) {
	recs := synthRecords(32, 3, 5)
	recs = append(recs, Record{Src: 1, Dst: 2, T: -7.25}) // nil-feat record
	var wire []byte
	for _, r := range recs {
		wire = AppendRecord(wire, r.Src, r.Dst, r.T, r.Feat)
	}
	sr := NewStreamReader(bytes.NewReader(wire))
	var got []Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		r := rec
		r.Feat = append([]float64(nil), rec.Feat...)
		got = append(got, r)
	}
	sameRecords(t, got, recs)
}

// TestStreamReaderFaults: a truncated stream reports ErrTorn after yielding
// the intact prefix; a corrupted byte reports a checksum error without
// yielding the bad record. Both are the retry signals the follower loop
// keys on.
func TestStreamReaderFaults(t *testing.T) {
	recs := synthRecords(8, 2, 13)
	var wire []byte
	var bounds []int // frame end offsets
	for _, r := range recs {
		wire = AppendRecord(wire, r.Src, r.Dst, r.T, r.Feat)
		bounds = append(bounds, len(wire))
	}

	// Torn mid-record: cut inside frame 5.
	cut := bounds[4] + (bounds[5]-bounds[4])/2
	sr := NewStreamReader(bytes.NewReader(wire[:cut]))
	n := 0
	for {
		_, err := sr.Next()
		if err == nil {
			n++
			continue
		}
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("want ErrTorn after %d records, got %v", n, err)
		}
		break
	}
	if n != 5 {
		t.Fatalf("torn stream yielded %d records, want 5", n)
	}

	// Corruption: flip a payload byte inside frame 3 (past its length
	// prefix); frames 0–2 decode, frame 3 fails its checksum.
	bad := append([]byte(nil), wire...)
	bad[bounds[2]+10] ^= 0xff
	sr = NewStreamReader(bytes.NewReader(bad))
	n = 0
	for {
		_, err := sr.Next()
		if err == nil {
			n++
			continue
		}
		if errors.Is(err, ErrTorn) || errors.Is(err, io.EOF) {
			t.Fatalf("corruption must not read as torn/EOF: %v", err)
		}
		break
	}
	if n != 3 {
		t.Fatalf("corrupt stream yielded %d records, want 3", n)
	}
}
