// Package wal gives the serving engine a durable spine: a segmented,
// checksummed write-ahead log for ingest events plus checkpoint files pairing
// a stream prefix with the fine-tuned model weights serving it. The
// append-only tgraph.Builder already gives the ingest stream the shape of a
// replay log — record i of the WAL is event i of the stream — so crash
// recovery is: load the latest valid checkpoint, replay the WAL suffix, and
// the rebuilt engine is bitwise-equivalent to one that never crashed (see
// DESIGN.md §9 and the fault-injection tests in internal/serve).
//
// Record format (little-endian, CRC32C per record so corruption is localized):
//
//	uint32  payload length
//	payload: int32 src · int32 dst · float64 t · uint32 featLen · featLen×float64
//	uint32  CRC32C(payload)
//
// Segments carry a 16-byte header (magic, format version, sequence number of
// their first record) so replay can seek past whole files, and rotate at
// Config.SegmentBytes. Appends are group-committed: records accumulate in a
// bounded in-memory buffer that is written and fsynced every
// Config.SyncEvery records (and on Sync/rotation/Close), keeping the ingest
// hot path allocation-free and the crash-loss bound explicit — at most the
// unsynced tail, never more than SyncEvery events.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strings"
)

// Config sizes a log. The zero value of every field picks the default.
type Config struct {
	Dir          string // segment + checkpoint directory (required)
	SyncEvery    int    // records per group commit (default 64; 1 = fsync every append)
	SegmentBytes int64  // rotation threshold (default 64 MiB)
	FS           FS     // file-op layer (default OSFS; tests inject FaultFS)
}

func (c Config) normalize() (Config, error) {
	if c.Dir == "" {
		return c, fmt.Errorf("wal: Config.Dir is required")
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 64
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.FS == nil {
		c.FS = OSFS{}
	}
	return c, nil
}

// Record is one logged ingest event. Feat is a view into the decoder's
// scratch during replay — copy it if it must outlive the callback.
type Record struct {
	Src, Dst int32
	T        float64
	Feat     []float64
}

const (
	segMagic      = 0x4C415754 // "TWAL"
	segVersion    = 1
	segHeaderSize = 16
	recOverhead   = 8        // length prefix + trailing CRC
	maxPayload    = 16 << 20 // sanity bound rejecting absurd lengths in torn tails
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a record cut short by a crash (as opposed to checksum
// corruption); both are repaired identically by truncation.
var ErrTorn = errors.New("wal: torn record")

// Log is an open write-ahead log positioned for appending. It is not safe
// for concurrent use; the serving engine serializes appends under its ingest
// lock. After any append or sync error the log is sticky-failed: the caller
// cannot know how much of the buffered tail reached the disk, so every later
// call returns the same error rather than silently dropping a gap into the
// record sequence.
type Log struct {
	cfg       Config
	seq       uint64 // records appended (durable ones plus the buffered tail)
	syncedSeq uint64 // records known durable

	segIdx   int   // current segment number
	segBytes int64 // bytes committed to the current segment (header included)
	f        File

	buf     []byte // group-commit buffer: encoded records awaiting fsync
	pending int    // records in buf

	syncs    uint64
	segments int
	err      error // sticky failure
}

// Open repairs and opens the log in cfg.Dir: existing segments are verified,
// any torn tail is truncated away (Repair), and a fresh segment is started
// for appends. The returned Stats report how many records survived — the
// caller replays them before appending. Opening an empty or missing
// directory is the fresh-start path.
func Open(cfg Config) (*Log, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	rep, err := Repair(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		cfg:       cfg,
		seq:       rep.Records,
		syncedSeq: rep.Records,
		segIdx:    rep.LastSegment + 1,
		segments:  rep.Segments,
	}
	if err := l.startSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// startSegment creates the next segment file and makes its header durable.
func (l *Log) startSegment() error {
	name := filepath.Join(l.cfg.Dir, segmentName(l.segIdx))
	f, err := l.cfg.FS.Create(name)
	if err != nil {
		return l.fail(fmt.Errorf("wal: create segment: %w", err))
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:], l.seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return l.fail(fmt.Errorf("wal: segment header: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return l.fail(fmt.Errorf("wal: segment header sync: %w", err))
	}
	if err := l.cfg.FS.SyncDir(l.cfg.Dir); err != nil {
		f.Close()
		return l.fail(fmt.Errorf("wal: dir sync: %w", err))
	}
	l.f = f
	l.segBytes = segHeaderSize
	l.segments++
	return nil
}

func segmentName(idx int) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// fail records a sticky error.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return l.err
}

// Append logs one ingest event. The record lands in the group-commit buffer
// and becomes durable at the next sync point (every SyncEvery records, or an
// explicit Sync); until then a crash may lose it — the bounded tail the
// recovery contract documents. The hot path performs no heap allocations
// once the buffer has grown to its steady-state size.
func (l *Log) Append(src, dst int32, t float64, feat []float64) error {
	if l.err != nil {
		return l.err
	}
	payload := 20 + 8*len(feat)
	if payload > maxPayload {
		return fmt.Errorf("wal: record payload %d exceeds %d bytes", payload, maxPayload)
	}
	rec := int64(payload + recOverhead)
	// Rotate first if this record would push the current segment past the
	// cap (never splitting a record across segments).
	if l.segBytes+int64(len(l.buf))+rec > l.cfg.SegmentBytes && l.segBytes+int64(len(l.buf)) > segHeaderSize {
		if err := l.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return l.fail(fmt.Errorf("wal: close segment: %w", err))
		}
		l.segIdx++
		if err := l.startSegment(); err != nil {
			return err
		}
	}
	l.buf = AppendRecord(l.buf, src, dst, t, feat)
	l.pending++
	l.seq++
	if l.pending >= l.cfg.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Sync flushes the group-commit buffer and fsyncs the segment, making every
// appended record durable. A no-op when nothing is pending.
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if l.pending == 0 {
		return nil
	}
	n, err := l.f.Write(l.buf)
	if err != nil {
		return l.fail(fmt.Errorf("wal: write: %w", err))
	}
	if n != len(l.buf) {
		return l.fail(fmt.Errorf("wal: short write: %d of %d bytes", n, len(l.buf)))
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.segBytes += int64(len(l.buf))
	l.buf = l.buf[:0]
	l.pending = 0
	l.syncedSeq = l.seq
	l.syncs++
	return nil
}

// Seq reports the total records appended to the log across its lifetime
// (event i of the stream is record i).
func (l *Log) Seq() uint64 { return l.seq }

// Err reports the sticky failure, nil while the log is healthy.
func (l *Log) Err() error { return l.err }

// Stats is a point-in-time summary of the log.
type Stats struct {
	Appended uint64 // records appended (buffered tail included)
	Synced   uint64 // records known durable
	Syncs    uint64 // fsync batches performed
	Segments int    // segment files written across the log's lifetime
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{Appended: l.seq, Synced: l.syncedSeq, Syncs: l.syncs, Segments: l.segments}
}

// Close syncs and closes the current segment. The log is unusable after.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		if l.f != nil {
			l.f.Close()
		}
		return err
	}
	err := l.f.Close()
	l.fail(errors.New("wal: log closed"))
	return err
}

// listSegments returns the dir's segment file names in index order.
func listSegments(fsys FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs := names[:0]
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			segs = append(segs, n)
		}
	}
	return segs, nil // ReadDir sorts; zero-padded indices keep lexical == numeric order
}

// segReader decodes one segment sequentially, tolerating short reads from
// the underlying file (it always reads via io.ReadFull). The record decoding
// itself is the shared recordDecoder (tail.go), which network stream
// shipping reuses byte-for-byte.
type segReader struct {
	f        File
	firstSeq uint64
	dec      recordDecoder
}

// openSegment validates the header. A header that cannot be fully read or
// fails validation reports ErrTorn at offset 0 — repair removes the file.
func openSegment(fsys FS, path string) (*segReader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, ErrTorn
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic {
		f.Close()
		return nil, fmt.Errorf("wal: %s: bad magic", filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != segVersion {
		f.Close()
		return nil, fmt.Errorf("wal: %s: unsupported format version %d", filepath.Base(path), v)
	}
	return &segReader{
		f:        f,
		firstSeq: binary.LittleEndian.Uint64(hdr[8:]),
		dec:      recordDecoder{r: f, off: segHeaderSize},
	}, nil
}

// next decodes the next record. io.EOF means a clean end; ErrTorn means the
// file ends mid-record; any other error means checksum or framing corruption.
// The returned Record's Feat is valid until the next call.
func (r *segReader) next() (Record, error) { return r.dec.next() }

// off reports the byte offset of the next undecoded record.
func (r *segReader) off() int64 { return r.dec.off }

func (r *segReader) close() { r.f.Close() }

// Replay streams records [from, end) in sequence order to fn, riding the
// TailFrom iterator (segment headers skip whole files below from). It
// expects a repaired log (Open runs Repair first); corruption mid-replay is
// an error, not a silent stop. A from past the log's end replays nothing and
// is not an error. fn's Record.Feat is only valid during the call.
func Replay(fsys FS, dir string, from uint64, fn func(seq uint64, rec Record) error) (replayed uint64, err error) {
	t, err := TailFrom(fsys, dir, from)
	if err != nil {
		return 0, err
	}
	defer t.Close()
	for {
		seq, rec, err := t.Next()
		if err == io.EOF {
			return replayed, nil
		}
		if err != nil {
			return replayed, fmt.Errorf("wal: replay: %w", err)
		}
		if err := fn(seq, rec); err != nil {
			return replayed, err
		}
		replayed++
	}
}

// VerifyReport describes a scan of the log.
type VerifyReport struct {
	Records     uint64 // valid records across all segments
	Segments    int    // segment files seen
	LastSegment int    // highest segment index seen (-1 when none)
	Torn        bool   // a torn or corrupt tail was found (or repaired)
	TornSegment string // segment holding the bad record
	TornOffset  int64  // byte offset of the first bad record in that segment
	Detail      string // human-readable description of the fault
}

// Verify scans every segment in order and reports the first invalid record
// without modifying anything. A log written by a crashed process typically
// verifies as Torn with a valid prefix; Repair truncates to exactly that
// prefix.
func Verify(fsys FS, dir string) (VerifyReport, error) {
	rep := VerifyReport{LastSegment: -1}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return rep, err
	}
	for _, name := range segs {
		rep.Segments++
		var idx int
		if _, err := fmt.Sscanf(name, "wal-%d.seg", &idx); err == nil && idx > rep.LastSegment {
			rep.LastSegment = idx
		}
		if rep.Torn {
			continue // everything after the first fault is unreachable
		}
		r, err := openSegment(fsys, filepath.Join(dir, name))
		if err != nil {
			rep.Torn = true
			rep.TornSegment = name
			rep.TornOffset = 0
			rep.Detail = err.Error()
			continue
		}
		if r.firstSeq != rep.Records {
			// A gap means records were lost wholesale (manual deletion); the
			// prefix up to the gap is still coherent.
			rep.Torn = true
			rep.TornSegment = name
			rep.TornOffset = 0
			rep.Detail = fmt.Sprintf("segment starts at seq %d, expected %d", r.firstSeq, rep.Records)
			r.close()
			continue
		}
		for {
			start := r.off()
			_, err := r.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rep.Torn = true
				rep.TornSegment = name
				rep.TornOffset = start
				rep.Detail = err.Error()
				break
			}
			rep.Records++
		}
		r.close()
	}
	return rep, nil
}

// Repair makes the log replayable after a crash: it truncates the first
// torn or corrupt record (and removes every later segment, which can hold
// nothing reachable) instead of failing recovery outright. The surviving
// prefix is exactly the records Verify counts valid.
func Repair(fsys FS, dir string) (VerifyReport, error) {
	rep, err := Verify(fsys, dir)
	if err != nil || !rep.Torn {
		return rep, err
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return rep, err
	}
	drop := false
	for _, name := range segs {
		path := filepath.Join(dir, name)
		switch {
		case name == rep.TornSegment && rep.TornOffset > 0:
			if err := fsys.Truncate(path, rep.TornOffset); err != nil {
				return rep, fmt.Errorf("wal: repair truncate %s: %w", name, err)
			}
			drop = true
		case name == rep.TornSegment || drop:
			// Torn at offset 0 (unreadable header) or beyond the fault:
			// nothing in the file is reachable.
			if err := fsys.Remove(path); err != nil {
				return rep, fmt.Errorf("wal: repair remove %s: %w", name, err)
			}
			if name == rep.TornSegment {
				drop = true
			}
		}
	}
	if err := fsys.SyncDir(dir); err != nil {
		return rep, fmt.Errorf("wal: repair dir sync: %w", err)
	}
	return rep, nil
}
