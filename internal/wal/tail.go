package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
)

// This file is the log's streaming surface: the record framing exported as a
// byte codec (AppendRecord / StreamReader) and a pull iterator over a log
// directory (TailFrom). internal/replica ships records over HTTP with exactly
// the on-disk framing — a follower decodes the wire with the same CRC32C
// checks recovery uses on the disk, so a torn or corrupted transport chunk is
// caught by the same machinery as a torn segment tail.

// AppendRecord appends one record to dst using the log's framing
// (length prefix · payload · CRC32C) and returns the extended slice. The
// bytes are identical to what Log.Append commits to a segment, so a stream
// of AppendRecord frames is replayable by StreamReader and byte-comparable
// to the log itself.
func AppendRecord(dst []byte, src, dstNode int32, t float64, feat []float64) []byte {
	payload := 20 + 8*len(feat)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dstNode))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(feat)))
	for _, v := range feat {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// recordDecoder decodes a sequence of framed records from an io.Reader,
// tolerating short reads (it always reads via io.ReadFull). It is the shared
// core of segment replay and network stream decoding.
type recordDecoder struct {
	r       io.Reader
	scratch []byte
	feat    []float64
	off     int64 // bytes consumed so far
}

// next decodes the next record. io.EOF means a clean end on a frame
// boundary; ErrTorn means the stream ends mid-record; any other error means
// checksum or framing corruption. The returned Record's Feat views d.feat
// and is valid until the next call.
func (d *recordDecoder) next() (Record, error) {
	var lenBuf [4]byte
	n, err := io.ReadFull(d.r, lenBuf[:])
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil || n < 4 {
		return Record{}, ErrTorn
	}
	payload := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if payload < 20 || payload > maxPayload || (payload-20)%8 != 0 {
		// An absurd length is indistinguishable from garbage written over the
		// tail; treat it as torn so repair truncates here.
		return Record{}, ErrTorn
	}
	need := payload + 4
	if cap(d.scratch) < need {
		d.scratch = make([]byte, need)
	}
	body := d.scratch[:need]
	if _, err := io.ReadFull(d.r, body); err != nil {
		return Record{}, ErrTorn
	}
	want := binary.LittleEndian.Uint32(body[payload:])
	if crc32.Checksum(body[:payload], crcTable) != want {
		return Record{}, fmt.Errorf("wal: record checksum mismatch at offset %d", d.off)
	}
	rec := Record{
		Src: int32(binary.LittleEndian.Uint32(body[0:])),
		Dst: int32(binary.LittleEndian.Uint32(body[4:])),
		T:   math.Float64frombits(binary.LittleEndian.Uint64(body[8:])),
	}
	featLen := int(binary.LittleEndian.Uint32(body[16:]))
	if featLen != (payload-20)/8 {
		return Record{}, fmt.Errorf("wal: record feature length %d disagrees with payload at offset %d", featLen, d.off)
	}
	if cap(d.feat) < featLen {
		d.feat = make([]float64, featLen)
	}
	rec.Feat = d.feat[:featLen]
	for i := range rec.Feat {
		rec.Feat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[20+8*i:]))
	}
	d.off += int64(need + 4)
	return rec, nil
}

// StreamReader decodes AppendRecord-framed records from an arbitrary byte
// stream — the follower side of log shipping. Next returns io.EOF when the
// stream ends exactly on a frame boundary, ErrTorn when it ends mid-record
// (a truncated transport chunk), and a checksum error on corruption; in the
// latter two cases every record already returned is still valid, so a caller
// applying records one at a time keeps a consistent prefix and simply
// re-requests the rest.
type StreamReader struct {
	dec recordDecoder
}

// NewStreamReader wraps r for record decoding.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{dec: recordDecoder{r: r}}
}

// Next returns the next record. The Record's Feat is only valid until the
// following call — copy it if it must outlive the iteration step.
func (s *StreamReader) Next() (Record, error) { return s.dec.next() }

// Tail iterates a log directory's records in sequence order starting at a
// given sequence number, using segment headers to skip whole files below it.
// It expects a repaired log (Open runs Repair first). Tailing a live log is
// safe as long as the caller stops at the log's synced sequence — the bytes
// of every synced record are fully on disk before the synced counter
// advances, while the group-commit tail past it may be mid-write.
type Tail struct {
	fsys FS
	dir  string
	from uint64
	segs []string
	idx  int
	r    *segReader
	name string // base name of the open segment, for error context
	seq  uint64 // sequence number of the next record r will yield
}

// TailFrom opens a tail over dir positioned at sequence from. The segment
// list is captured once: records synced before the call are all reachable;
// a tail that should observe later appends is reopened (the iterator is
// cheap — one open per segment actually read).
func TailFrom(fsys FS, dir string, from uint64) (*Tail, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	return &Tail{fsys: fsys, dir: dir, from: from, segs: segs}, nil
}

// Next returns the next record at or past the tail's start sequence. io.EOF
// means the log end was reached cleanly; any other error is corruption (the
// caller decides whether that is fatal, as in Replay, or a retry, as in a
// live follower). The Record's Feat is only valid until the following call.
func (t *Tail) Next() (uint64, Record, error) {
	for {
		for t.r == nil {
			if t.idx >= len(t.segs) {
				return 0, Record{}, io.EOF
			}
			// Peek the next segment's first sequence: if it starts at or
			// below from, nothing in the current one is needed.
			if t.idx+1 < len(t.segs) {
				if nr, err := openSegment(t.fsys, filepath.Join(t.dir, t.segs[t.idx+1])); err == nil {
					skip := nr.firstSeq <= t.from
					nr.close()
					if skip {
						t.idx++
						continue
					}
				}
			}
			name := t.segs[t.idx]
			r, err := openSegment(t.fsys, filepath.Join(t.dir, name))
			if err != nil {
				return 0, Record{}, fmt.Errorf("wal: tail %s: %w", name, err)
			}
			t.r, t.name, t.seq = r, name, r.firstSeq
		}
		rec, err := t.r.next()
		if err == io.EOF {
			t.r.close()
			t.r = nil
			t.idx++
			continue
		}
		if err != nil {
			return 0, Record{}, fmt.Errorf("wal: tail %s: %w", t.name, err)
		}
		seq := t.seq
		t.seq++
		if seq < t.from {
			continue
		}
		return seq, rec, nil
	}
}

// Close releases the open segment, if any. The tail is reusable only up to
// Close.
func (t *Tail) Close() {
	if t.r != nil {
		t.r.close()
		t.r = nil
	}
	t.idx = len(t.segs)
}
