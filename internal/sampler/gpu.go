package sampler

import (
	"taser/internal/device"
	"taser/internal/mathx"
	"taser/internal/tgraph"
)

// GPUFinder is TASER's pure-GPU temporal neighbor finder (Algorithm 2),
// executed on the device simulator. The block-centric design maps one block
// per target node: the block binary-searches the temporal pivot (line 5),
// then its threads draw neighbors — most-recent by direct indexing (line 9)
// or uniform without replacement via a bitmap with collision detection
// (lines 11–14). Unlike the TGL pointer-array finder it supports arbitrary
// training order, which adaptive mini-batch selection requires.
//
// Per-block RNG streams are derived deterministically from (seed, block), so
// results are reproducible regardless of how the scheduler interleaves
// blocks.
type GPUFinder struct {
	tcsr tgraph.Adjacency
	gpu  *device.GPU
	seed uint64
	call uint64

	// Per-worker kernel state: the block RNG stream is still derived from
	// (seed, call, block), but the generator object and the fill scratch are
	// reused per worker so a launch performs no heap allocation.
	rngs    []mathx.RNG
	scratch []fillScratch
}

// NewGPUFinder builds the finder on the given device. The adjacency may be
// any packed layout (flat TCSR or an incrementally published AppendableTCSR);
// the kernel only reads per-node views.
func NewGPUFinder(t tgraph.Adjacency, gpu *device.GPU, seed uint64) *GPUFinder {
	return &GPUFinder{
		tcsr: t, gpu: gpu, seed: seed,
		rngs:    make([]mathx.RNG, gpu.Workers()),
		scratch: make([]fillScratch, gpu.Workers()),
	}
}

// Name implements Finder.
func (f *GPUFinder) Name() string { return "taser-gpu" }

// ArbitraryOrder implements Finder.
func (f *GPUFinder) ArbitraryOrder() bool { return true }

// Sample implements Finder. Each target is one simulated thread block.
func (f *GPUFinder) Sample(targets []Target, budget int, policy Policy, out *Result) error {
	if err := validate(targets, budget, out); err != nil {
		return err
	}
	f.call++
	call := f.call
	f.gpu.LaunchBlocksIndexed(len(targets), func(worker, block int) {
		tgt := targets[block]
		nbr, ts, eid := f.tcsr.Adj(tgt.Node)
		// Line 5: single-thread binary search for the pivot.
		pivot := f.tcsr.Pivot(tgt.Node, tgt.Time)
		if pivot == 0 {
			return
		}
		if policy == MostRecent {
			fillMostRecent(out, block, nbr, ts, eid, pivot, budget)
			return
		}
		rng := &f.rngs[worker]
		rng.Reseed(f.seed ^ call*0x9e3779b97f4a7c15 ^ uint64(block)*0xbf58476d1ce4e5b9)
		fill(policy, out, block, nbr, ts, eid, pivot, budget, tgt.Time, rng, &f.scratch[worker])
	})
	return nil
}
