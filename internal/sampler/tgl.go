package sampler

import (
	"runtime"
	"sync"

	"taser/internal/mathx"
	"taser/internal/tgraph"
)

// TGLFinder reproduces TGL's high-performance parallel CPU neighbor finder.
// Its key data structure is a per-node pointer array: because TGL schedules
// mini-batches chronologically, each node's temporal pivot only ever moves
// forward, so root pivots are maintained in amortized O(1) instead of a
// search. Queries at older timestamps (multi-hop expansions, or roots of a
// randomly ordered batch) are still answered correctly by scanning backward
// from the pointer — but the amortization is lost, which is exactly the
// limitation that disqualifies this finder for TASER's randomly ordered
// adaptive mini-batches (§III-C): ArbitraryOrder reports false and the
// training harness refuses the combination.
type TGLFinder struct {
	tcsr    tgraph.Adjacency
	ptr     []int // per-node pivot pointer (monotone until Reset)
	workers int
	rngs    []*mathx.RNG // one per worker
	scratch []fillScratch
}

// NewTGLFinder builds the finder with one worker per host core.
func NewTGLFinder(t tgraph.Adjacency, rng *mathx.RNG) *TGLFinder {
	workers := runtime.GOMAXPROCS(0)
	f := &TGLFinder{
		tcsr:    t,
		ptr:     make([]int, t.NumNodes()),
		workers: workers,
		rngs:    make([]*mathx.RNG, workers),
		scratch: make([]fillScratch, workers),
	}
	for i := range f.rngs {
		f.rngs[i] = rng.Split()
	}
	return f
}

// Name implements Finder.
func (f *TGLFinder) Name() string { return "tgl-cpu" }

// ArbitraryOrder implements Finder: chronological order only.
func (f *TGLFinder) ArbitraryOrder() bool { return false }

// Reset rewinds all pointers for a new epoch.
func (f *TGLFinder) Reset() {
	for i := range f.ptr {
		f.ptr[i] = 0
	}
}

// Sample implements Finder.
func (f *TGLFinder) Sample(targets []Target, budget int, policy Policy, out *Result) error {
	if err := validate(targets, budget, out); err != nil {
		return err
	}
	// Phase 1 (sequential): advance the pointer arrays. Monotone per node,
	// amortized O(E) over a chronological epoch.
	for _, tgt := range targets {
		_, ts, _ := f.tcsr.Adj(tgt.Node)
		p := f.ptr[tgt.Node]
		for p < len(ts) && ts[p] < tgt.Time {
			p++
		}
		f.ptr[tgt.Node] = p
	}
	// Phase 2 (parallel): sample from the pointer-located pivots. Queries at
	// times older than a node's pointer (multi-hop targets, shared nodes in
	// one batch) scan backward — correct, but no longer amortized O(1).
	f.parallelTargets(len(targets), func(worker, i int) {
		tgt := targets[i]
		nbr, ts, eid := f.tcsr.Adj(tgt.Node)
		pivot := f.ptr[tgt.Node]
		for pivot > 0 && ts[pivot-1] >= tgt.Time {
			pivot--
		}
		if pivot == 0 {
			return
		}
		fill(policy, out, i, nbr, ts, eid, pivot, budget, tgt.Time, f.rngs[worker], &f.scratch[worker])
	})
	return nil
}

// parallelTargets fans i ∈ [0, n) across the worker pool in contiguous chunks.
func (f *TGLFinder) parallelTargets(n int, body func(worker, i int)) {
	workers := f.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := mathx.MinInt(lo+chunk, n)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}
