// Package sampler implements the temporal neighbor finders compared in the
// paper (§II-A, §III-C, Fig. 3a):
//
//   - Origin: the sequential per-node finder shipped with TGAT/GraphMixer,
//     which locates the temporal pivot with a linear scan. It is the
//     baseline in Fig. 1 and Fig. 3(a).
//   - TGL: the parallel CPU finder from TGL, which keeps a per-node pointer
//     array so the pivot is found in amortized O(1) — but only when
//     mini-batches arrive in chronological order, which is exactly why it
//     cannot serve TASER's randomly ordered adaptive mini-batches.
//   - GPU: TASER's block-centric finder (Algorithm 2): one block per target
//     node, binary search for the pivot, and a bitmap for collision
//     detection in uniform sampling without replacement. It supports
//     arbitrary training order.
//
// All finders sample from N(v, t) = {(u, t_u) : t_u < t} under one of two
// static policies: uniform without replacement, or most-recent.
package sampler

import (
	"fmt"

	"taser/internal/mathx"
)

// Policy selects the static sampling distribution.
type Policy int

const (
	// Uniform samples without replacement from the whole temporal neighborhood.
	Uniform Policy = iota
	// MostRecent takes the latest interactions before t.
	MostRecent
	// InverseTimespan samples with probability ∝ 1/Δt — the human-defined
	// denoising heuristic TGAT proposed for deprecated links, which the
	// paper reports performing *worse* than uniform (§I). Included as the
	// heuristics baseline for the adaptive-vs-heuristic ablation.
	InverseTimespan
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case MostRecent:
		return "recent"
	case InverseTimespan:
		return "inverse-timespan"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Target is a (node, time) pair whose temporal neighborhood is sampled.
type Target struct {
	Node int32
	Time float64
}

// Result holds sampled neighborhoods in flat, padded layout: target i owns
// entries [i·Budget, (i+1)·Budget). Entries beyond Counts[i] are padding with
// Node −1 and Eid −1. Reusing a Result across calls avoids allocation.
type Result struct {
	Budget int
	Nodes  []int32
	Times  []float64
	Eids   []int32
	Counts []int32
}

// Reset shapes the result for n targets with the given budget.
func (r *Result) Reset(n, budget int) {
	size := n * budget
	if cap(r.Nodes) < size {
		r.Nodes = make([]int32, size)
		r.Times = make([]float64, size)
		r.Eids = make([]int32, size)
	}
	r.Nodes = r.Nodes[:size]
	r.Times = r.Times[:size]
	r.Eids = r.Eids[:size]
	if cap(r.Counts) < n {
		r.Counts = make([]int32, n)
	}
	r.Counts = r.Counts[:n]
	r.Budget = budget
	for i := range r.Nodes {
		r.Nodes[i] = -1
		r.Eids[i] = -1
		r.Times[i] = 0
	}
	for i := range r.Counts {
		r.Counts[i] = 0
	}
}

// NumTargets reports how many targets the result currently holds.
func (r *Result) NumTargets() int {
	if r.Budget == 0 {
		return 0
	}
	return len(r.Nodes) / r.Budget
}

// Slot returns the flat index of target i's j-th neighbor entry.
func (r *Result) Slot(i, j int) int { return i*r.Budget + j }

// Finder samples fixed-size temporal neighborhoods for a batch of targets.
type Finder interface {
	// Sample fills out with up to budget neighbors per target drawn from
	// each target's temporal neighborhood under policy.
	Sample(targets []Target, budget int, policy Policy, out *Result) error
	// Name identifies the finder in benchmark output.
	Name() string
	// ArbitraryOrder reports whether targets may arrive in any time order.
	ArbitraryOrder() bool
}

// fillScratch holds the per-call working buffers of the fill kernels (index
// arrays, rejection bitmaps, heuristic weights) so steady-state sampling does
// not touch the heap. It mirrors a CUDA kernel's shared-memory workspace: one
// instance per concurrently executing worker, never shared.
type fillScratch struct {
	idx     []int32
	bitmap  []uint64
	weights []float64
	chosen  []int
	ws      mathx.WeightedSampler
}

// int32s returns a zero-length int32 slice with capacity ≥ n backed by buf.
func (sc *fillScratch) int32s(n int) []int32 {
	if cap(sc.idx) < n {
		sc.idx = make([]int32, n)
	}
	return sc.idx[:n]
}

// words returns a zeroed uint64 slice of length n.
func (sc *fillScratch) words(n int) []uint64 {
	if cap(sc.bitmap) < n {
		sc.bitmap = make([]uint64, n)
		return sc.bitmap[:n]
	}
	w := sc.bitmap[:n]
	for i := range w {
		w[i] = 0
	}
	return w
}

// floats returns an uninitialized float64 slice of length n.
func (sc *fillScratch) floats(n int) []float64 {
	if cap(sc.weights) < n {
		sc.weights = make([]float64, n)
	}
	return sc.weights[:n]
}

// fillMostRecent writes the newest min(budget, pivot) entries, newest first.
func fillMostRecent(out *Result, i int, nbr []int32, ts []float64, eid []int32, pivot, budget int) {
	k := mathx.MinInt(budget, pivot)
	for j := 0; j < k; j++ {
		s := out.Slot(i, j)
		idx := pivot - 1 - j
		out.Nodes[s] = nbr[idx]
		out.Times[s] = ts[idx]
		out.Eids[s] = eid[idx]
	}
	out.Counts[i] = int32(k)
}

// fillUniform samples min(budget, pivot) distinct candidate indices from
// [0, pivot) and writes them. It uses bitmap rejection when the budget is
// small relative to the neighborhood (the GPU kernel's strategy, Algorithm 2
// line 13) and a partial Fisher–Yates when it is not, so the cost stays
// bounded near k ≈ pivot.
func fillUniform(out *Result, i int, nbr []int32, ts []float64, eid []int32, pivot, budget int, rng *mathx.RNG, sc *fillScratch) {
	k := mathx.MinInt(budget, pivot)
	switch {
	case k == pivot:
		for j := 0; j < k; j++ {
			s := out.Slot(i, j)
			out.Nodes[s] = nbr[j]
			out.Times[s] = ts[j]
			out.Eids[s] = eid[j]
		}
	case k > pivot/2:
		// Partial Fisher–Yates over an explicit index array.
		idx := sc.int32s(pivot)
		for j := range idx {
			idx[j] = int32(j)
		}
		for j := 0; j < k; j++ {
			swap := j + rng.Intn(pivot-j)
			idx[j], idx[swap] = idx[swap], idx[j]
			s := out.Slot(i, j)
			out.Nodes[s] = nbr[idx[j]]
			out.Times[s] = ts[idx[j]]
			out.Eids[s] = eid[idx[j]]
		}
	default:
		// Shared-memory bitmap with atomic-free rejection (single goroutine
		// per block, so plain writes suffice).
		words := (pivot + 63) / 64
		bitmap := sc.words(words)
		for j := 0; j < k; j++ {
			for {
				r := rng.Intn(pivot)
				w, b := r/64, uint(r%64)
				if bitmap[w]&(1<<b) != 0 {
					continue
				}
				bitmap[w] |= 1 << b
				s := out.Slot(i, j)
				out.Nodes[s] = nbr[r]
				out.Times[s] = ts[r]
				out.Eids[s] = eid[r]
				break
			}
		}
	}
	out.Counts[i] = int32(k)
}

// fillInverseTimespan draws min(budget, pivot) distinct entries with
// probability ∝ 1/(Δt + 1), the TGAT heuristic for deprecated links.
func fillInverseTimespan(out *Result, i int, nbr []int32, ts []float64, eid []int32, pivot, budget int, tTarget float64, rng *mathx.RNG, sc *fillScratch) {
	k := mathx.MinInt(budget, pivot)
	weights := sc.floats(pivot)
	for j := 0; j < pivot; j++ {
		weights[j] = 1 / (tTarget - ts[j] + 1)
	}
	sc.chosen = sc.ws.SampleInto(rng, weights, k, sc.chosen)
	for j, idx := range sc.chosen {
		s := out.Slot(i, j)
		out.Nodes[s] = nbr[idx]
		out.Times[s] = ts[idx]
		out.Eids[s] = eid[idx]
	}
	out.Counts[i] = int32(k)
}

// fill dispatches on policy; every finder shares this kernel body.
func fill(policy Policy, out *Result, i int, nbr []int32, ts []float64, eid []int32, pivot, budget int, tTarget float64, rng *mathx.RNG, sc *fillScratch) {
	switch policy {
	case MostRecent:
		fillMostRecent(out, i, nbr, ts, eid, pivot, budget)
	case InverseTimespan:
		fillInverseTimespan(out, i, nbr, ts, eid, pivot, budget, tTarget, rng, sc)
	default:
		fillUniform(out, i, nbr, ts, eid, pivot, budget, rng, sc)
	}
}

// validate shapes the output and checks common preconditions.
func validate(targets []Target, budget int, out *Result) error {
	if budget <= 0 {
		return fmt.Errorf("sampler: non-positive budget %d", budget)
	}
	out.Reset(len(targets), budget)
	return nil
}
