package sampler

import (
	"taser/internal/mathx"
	"taser/internal/tgraph"
)

// OriginFinder reproduces the reference neighbor finder shipped with the
// TGAT/GraphMixer codebases: single-threaded, with the temporal pivot found
// by a forward linear scan over each node's (time-sorted) adjacency. This is
// the "Origin Neigh Finder" baseline of Fig. 3(a) and the Prep. bottleneck
// of Fig. 1.
//
// The reference implementation is pure Python; its cost per visited
// adjacency element is dominated by CPython bytecode dispatch, which is what
// makes it three orders of magnitude slower than TASER's GPU finder in the
// paper. Since this reproduction is compiled Go, the finder emulates that
// dispatch cost with Overhead synthetic operations per element visited
// (default 60, the measured CPython-vs-Go ratio for an index-and-compare
// loop). Set Overhead to 0 to benchmark the compiled scan itself; DESIGN.md
// documents the substitution.
type OriginFinder struct {
	// Overhead is the number of emulated interpreter operations charged per
	// adjacency element visited.
	Overhead int

	tcsr    tgraph.Adjacency
	rng     *mathx.RNG
	scratch fillScratch
}

// NewOriginFinder builds the finder over the given packed adjacency with the
// default interpreter-emulation overhead.
func NewOriginFinder(t tgraph.Adjacency, rng *mathx.RNG) *OriginFinder {
	return &OriginFinder{Overhead: 60, tcsr: t, rng: rng}
}

// Name implements Finder.
func (f *OriginFinder) Name() string { return "origin-cpu" }

// ArbitraryOrder implements Finder: the linear scan restarts per query, so
// any order works (slowly).
func (f *OriginFinder) ArbitraryOrder() bool { return true }

// Sample implements Finder sequentially, one target at a time.
func (f *OriginFinder) Sample(targets []Target, budget int, policy Policy, out *Result) error {
	if err := validate(targets, budget, out); err != nil {
		return err
	}
	for i, tgt := range targets {
		nbr, ts, eid := f.tcsr.Adj(tgt.Node)
		pivot := f.tcsr.PivotLinear(tgt.Node, tgt.Time)
		f.interpret(pivot + budget)
		if pivot == 0 {
			continue
		}
		fill(policy, out, i, nbr, ts, eid, pivot, budget, tgt.Time, f.rng, &f.scratch)
	}
	return nil
}

// interpret burns Overhead synthetic operations per element, emulating
// CPython dispatch for `elements` adjacency entries. The LCG chain defeats
// dead-code elimination.
func (f *OriginFinder) interpret(elements int) {
	if f.Overhead <= 0 {
		return
	}
	x := uint64(elements) | 1
	for i := 0; i < elements*f.Overhead; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	if x == 42 { // never true; keeps the loop observable
		panic("sampler: interpreter emulation sentinel")
	}
}
