package sampler

import (
	"math"
	"testing"
	"testing/quick"

	"taser/internal/device"
	"taser/internal/mathx"
	"taser/internal/tgraph"
)

// chainGraph builds a graph where node 0 interacts with node i at time i,
// for i in 1..n-1. Node 0's neighborhood at time t is {1..ceil(t)-1}.
func chainGraph(t *testing.T, n int) *tgraph.TCSR {
	t.Helper()
	events := make([]tgraph.Event, 0, n-1)
	for i := 1; i < n; i++ {
		events = append(events, tgraph.Event{Src: 0, Dst: int32(i), Time: float64(i)})
	}
	g, err := tgraph.NewGraph(n, events)
	if err != nil {
		t.Fatal(err)
	}
	return tgraph.BuildTCSR(g)
}

func randomTCSR(seed uint64, n, m int) *tgraph.TCSR {
	rng := mathx.NewRNG(seed)
	events := make([]tgraph.Event, m)
	for i := range events {
		events[i] = tgraph.Event{
			Src:  int32(rng.Intn(n)),
			Dst:  int32(rng.Intn(n)),
			Time: rng.Float64() * 100,
		}
	}
	g, _ := tgraph.NewGraph(n, events)
	return tgraph.BuildTCSR(g)
}

func allFinders(t *testing.T, tc tgraph.Adjacency) []Finder {
	t.Helper()
	rng := mathx.NewRNG(7)
	return []Finder{
		NewOriginFinder(tc, rng.Split()),
		NewTGLFinder(tc, rng.Split()),
		NewGPUFinder(tc, device.New(), 99),
	}
}

func TestResultResetPads(t *testing.T) {
	var r Result
	r.Reset(3, 4)
	if len(r.Nodes) != 12 || len(r.Counts) != 3 || r.Budget != 4 {
		t.Fatal("reset shape")
	}
	for _, v := range r.Nodes {
		if v != -1 {
			t.Fatal("padding must be -1")
		}
	}
	if r.NumTargets() != 3 {
		t.Fatal("NumTargets")
	}
	// Reuse with smaller shape keeps capacity.
	r.Nodes[0] = 5
	r.Reset(1, 2)
	if len(r.Nodes) != 2 || r.Nodes[0] != -1 {
		t.Fatal("reset must re-pad")
	}
}

func TestMostRecentOrdering(t *testing.T) {
	tc := chainGraph(t, 20)
	for _, f := range allFinders(t, tc) {
		var out Result
		err := f.Sample([]Target{{Node: 0, Time: 10.5}}, 5, MostRecent, &out)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		// Neighborhood is nodes 1..10; most recent 5 are 10, 9, 8, 7, 6.
		want := []int32{10, 9, 8, 7, 6}
		for j, w := range want {
			if out.Nodes[out.Slot(0, j)] != w {
				t.Fatalf("%s: slot %d = %d want %d", f.Name(), j, out.Nodes[out.Slot(0, j)], w)
			}
		}
		if out.Counts[0] != 5 {
			t.Fatalf("%s: count %d", f.Name(), out.Counts[0])
		}
	}
}

func TestTemporalConstraintRespected(t *testing.T) {
	tc := randomTCSR(1, 30, 500)
	for _, f := range allFinders(t, tc) {
		var out Result
		targets := []Target{{Node: 3, Time: 50}, {Node: 7, Time: 60}, {Node: 3, Time: 70}}
		if err := f.Sample(targets, 8, Uniform, &out); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		for i, tgt := range targets {
			for j := 0; j < int(out.Counts[i]); j++ {
				s := out.Slot(i, j)
				if out.Times[s] >= tgt.Time {
					t.Fatalf("%s: sampled future neighbor t=%v for target t=%v",
						f.Name(), out.Times[s], tgt.Time)
				}
				if out.Nodes[s] < 0 {
					t.Fatalf("%s: padding inside counted region", f.Name())
				}
			}
			for j := int(out.Counts[i]); j < out.Budget; j++ {
				if out.Nodes[out.Slot(i, j)] != -1 {
					t.Fatalf("%s: non-padding outside counted region", f.Name())
				}
			}
		}
	}
}

func TestUniformNoReplacement(t *testing.T) {
	tc := chainGraph(t, 40)
	for _, f := range allFinders(t, tc) {
		for trial := 0; trial < 20; trial++ {
			var out Result
			if err := f.Sample([]Target{{Node: 0, Time: 35.5}}, 10, Uniform, &out); err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			seen := map[int32]bool{}
			for j := 0; j < int(out.Counts[0]); j++ {
				v := out.Eids[out.Slot(0, j)]
				if seen[v] {
					t.Fatalf("%s: duplicate eid %d in uniform sample", f.Name(), v)
				}
				seen[v] = true
			}
		}
	}
}

func TestBudgetExceedsNeighborhood(t *testing.T) {
	tc := chainGraph(t, 5) // node 0 has ≤4 neighbors
	for _, f := range allFinders(t, tc) {
		for _, pol := range []Policy{Uniform, MostRecent} {
			var out Result
			if err := f.Sample([]Target{{Node: 0, Time: 100}}, 10, pol, &out); err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			if out.Counts[0] != 4 {
				t.Fatalf("%s/%s: count %d want 4", f.Name(), pol, out.Counts[0])
			}
			got := map[int32]bool{}
			for j := 0; j < 4; j++ {
				got[out.Nodes[out.Slot(0, j)]] = true
			}
			for v := int32(1); v <= 4; v++ {
				if !got[v] {
					t.Fatalf("%s/%s: full neighborhood must be returned", f.Name(), pol)
				}
			}
		}
	}
}

func TestEmptyNeighborhood(t *testing.T) {
	tc := chainGraph(t, 5)
	for _, f := range allFinders(t, tc) {
		var out Result
		// Node 2 has a single event at time 2; at t=1 its neighborhood is empty.
		if err := f.Sample([]Target{{Node: 2, Time: 1}}, 3, Uniform, &out); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if out.Counts[0] != 0 || out.Nodes[0] != -1 {
			t.Fatalf("%s: empty neighborhood handling", f.Name())
		}
	}
}

func TestUniformIsApproximatelyUniform(t *testing.T) {
	tc := chainGraph(t, 101) // neighborhood of node 0 at t=101 is 100 nodes
	rng := mathx.NewRNG(3)
	finders := []Finder{
		NewOriginFinder(tc, rng.Split()),
		NewGPUFinder(tc, device.New(), 5),
	}
	for _, f := range finders {
		counts := make([]int, 101)
		const trials = 4000
		var out Result
		for trial := 0; trial < trials; trial++ {
			if err := f.Sample([]Target{{Node: 0, Time: 1000}}, 5, Uniform, &out); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < int(out.Counts[0]); j++ {
				counts[out.Nodes[out.Slot(0, j)]]++
			}
		}
		// Each of the 100 neighbors should appear ~trials·5/100 = 200 times.
		for v := 1; v <= 100; v++ {
			if math.Abs(float64(counts[v])-200) > 80 {
				t.Fatalf("%s: node %d sampled %d times, want ~200", f.Name(), v, counts[v])
			}
		}
	}
}

func TestTGLOutOfOrderStillCorrect(t *testing.T) {
	// The pointer array is built for chronological order; out-of-order
	// queries lose the O(1) amortization but must remain CORRECT via the
	// backward scan (this is how multi-hop targets are served).
	tc := chainGraph(t, 20)
	f := NewTGLFinder(tc, mathx.NewRNG(1))
	if f.ArbitraryOrder() {
		t.Fatal("TGL must advertise chronological-order preference")
	}
	var out Result
	if err := f.Sample([]Target{{Node: 0, Time: 10}}, 3, Uniform, &out); err != nil {
		t.Fatal(err)
	}
	// Now query an earlier time: only neighbors before t=5 may appear.
	if err := f.Sample([]Target{{Node: 0, Time: 5}}, 10, Uniform, &out); err != nil {
		t.Fatal(err)
	}
	if out.Counts[0] != 4 {
		t.Fatalf("backward query count %d want 4", out.Counts[0])
	}
	for j := 0; j < int(out.Counts[0]); j++ {
		if out.Times[out.Slot(0, j)] >= 5 {
			t.Fatal("backward query leaked future neighbors")
		}
	}
	f.Reset()
	if err := f.Sample([]Target{{Node: 0, Time: 5}}, 3, Uniform, &out); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestTGLSharedNodeInBatch(t *testing.T) {
	// Two targets on the same node with different times in one batch: the
	// earlier target must not see neighbors between its time and the later's.
	tc := chainGraph(t, 30)
	f := NewTGLFinder(tc, mathx.NewRNG(2))
	var out Result
	targets := []Target{{Node: 0, Time: 5.5}, {Node: 0, Time: 25.5}}
	if err := f.Sample(targets, 25, Uniform, &out); err != nil {
		t.Fatal(err)
	}
	if out.Counts[0] != 5 {
		t.Fatalf("earlier target count %d want 5", out.Counts[0])
	}
	if out.Counts[1] != 25 {
		t.Fatalf("later target count %d want 25", out.Counts[1])
	}
}

func TestGPUFinderDeterministicAcrossSchedules(t *testing.T) {
	tc := randomTCSR(4, 50, 2000)
	targets := make([]Target, 64)
	rng := mathx.NewRNG(5)
	for i := range targets {
		targets[i] = Target{Node: int32(rng.Intn(50)), Time: 50 + rng.Float64()*50}
	}
	// Same seed, different worker counts → identical samples.
	f1 := NewGPUFinder(tc, device.NewWithWorkers(1), 42)
	f8 := NewGPUFinder(tc, device.NewWithWorkers(8), 42)
	var o1, o8 Result
	if err := f1.Sample(targets, 7, Uniform, &o1); err != nil {
		t.Fatal(err)
	}
	if err := f8.Sample(targets, 7, Uniform, &o8); err != nil {
		t.Fatal(err)
	}
	for i := range o1.Nodes {
		if o1.Nodes[i] != o8.Nodes[i] || o1.Eids[i] != o8.Eids[i] {
			t.Fatal("GPU finder must be schedule-independent for a fixed seed")
		}
	}
}

func TestGPUFinderArbitraryOrder(t *testing.T) {
	tc := chainGraph(t, 20)
	f := NewGPUFinder(tc, device.New(), 1)
	if !f.ArbitraryOrder() {
		t.Fatal("GPU finder must support arbitrary order")
	}
	var out Result
	// Descending times — the case TGL rejects.
	targets := []Target{{Node: 0, Time: 15}, {Node: 0, Time: 5}}
	if err := f.Sample(targets, 3, Uniform, &out); err != nil {
		t.Fatal(err)
	}
	if out.Counts[0] != 3 || out.Counts[1] != 3 {
		t.Fatalf("counts %v", out.Counts)
	}
}

func TestFindersAgreeOnNeighborhoodProperty(t *testing.T) {
	// Property: for MostRecent (deterministic) all three finders must return
	// exactly the same neighbors for identical chronological queries.
	err := quick.Check(func(seed uint64) bool {
		tc := randomTCSR(seed, 15, 300)
		rng := mathx.NewRNG(seed)
		targets := make([]Target, 10)
		for i := range targets {
			targets[i] = Target{Node: int32(rng.Intn(15)), Time: float64(i*10) + rng.Float64()}
		}
		origin := NewOriginFinder(tc, rng.Split())
		tgl := NewTGLFinder(tc, rng.Split())
		gpu := NewGPUFinder(tc, device.New(), seed)
		var a, b, c Result
		if origin.Sample(targets, 6, MostRecent, &a) != nil ||
			tgl.Sample(targets, 6, MostRecent, &b) != nil ||
			gpu.Sample(targets, 6, MostRecent, &c) != nil {
			return false
		}
		for i := range a.Nodes {
			if a.Nodes[i] != b.Nodes[i] || b.Nodes[i] != c.Nodes[i] {
				return false
			}
			if a.Eids[i] != b.Eids[i] || b.Eids[i] != c.Eids[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInverseTimespanBiasesRecent(t *testing.T) {
	// With neighbors at times 1..100 and a query at t=101, 1/Δt sampling
	// must pick recent neighbors far more often than old ones.
	tc := chainGraph(t, 101)
	for _, f := range allFinders(t, tc) {
		recent, old := 0, 0
		var out Result
		for trial := 0; trial < 2000; trial++ {
			if err := f.Sample([]Target{{Node: 0, Time: 101}}, 5, InverseTimespan, &out); err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			for j := 0; j < int(out.Counts[0]); j++ {
				node := out.Nodes[out.Slot(0, j)]
				if node > 80 {
					recent++
				}
				if node <= 20 {
					old++
				}
			}
		}
		if recent < 3*old {
			t.Fatalf("%s: inverse-timespan not recency-biased (recent=%d old=%d)",
				f.Name(), recent, old)
		}
	}
}

func TestInverseTimespanNoReplacement(t *testing.T) {
	tc := chainGraph(t, 30)
	f := NewGPUFinder(tc, device.New(), 3)
	var out Result
	for trial := 0; trial < 50; trial++ {
		if err := f.Sample([]Target{{Node: 0, Time: 25.5}}, 8, InverseTimespan, &out); err != nil {
			t.Fatal(err)
		}
		seen := map[int32]bool{}
		for j := 0; j < int(out.Counts[0]); j++ {
			id := out.Eids[out.Slot(0, j)]
			if seen[id] {
				t.Fatal("duplicate in inverse-timespan sample")
			}
			seen[id] = true
		}
	}
}

func TestInvalidBudget(t *testing.T) {
	tc := chainGraph(t, 5)
	for _, f := range allFinders(t, tc) {
		var out Result
		if err := f.Sample([]Target{{Node: 0, Time: 3}}, 0, Uniform, &out); err == nil {
			t.Fatalf("%s: zero budget must error", f.Name())
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Uniform.String() != "uniform" || MostRecent.String() != "recent" {
		t.Fatal("policy names")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must still format")
	}
}

// TestFindersObliviousToAdjacencyLayout: every finder must return
// bitwise-identical samples over the flat batch-built TCSR and over the
// chunked AppendableTCSR a Builder publishes incrementally for the same
// event stream — the reader-side contract of incremental snapshots.
func TestFindersObliviousToAdjacencyLayout(t *testing.T) {
	const n, m = 40, 800
	flat := randomTCSR(21, n, m)
	// Rebuild the identical stream through the streaming path, snapshotting
	// twice mid-stream so the final layout genuinely shares frozen chunks.
	rng := mathx.NewRNG(21)
	events := make([]tgraph.Event, m)
	for i := range events {
		events[i] = tgraph.Event{
			Src:  int32(rng.Intn(n)),
			Dst:  int32(rng.Intn(n)),
			Time: rng.Float64() * 100,
		}
	}
	g, err := tgraph.NewGraph(n, events)
	if err != nil {
		t.Fatal(err)
	}
	b := tgraph.NewBuilder(n)
	var chunked *tgraph.AppendableTCSR
	for i, ev := range g.Events {
		if err := b.Add(ev.Src, ev.Dst, ev.Time); err != nil {
			t.Fatal(err)
		}
		if i == m/3 || i == 2*m/3 {
			_, chunked = b.Snapshot()
		}
	}
	_, chunked = b.Snapshot()

	targets := []Target{{Node: 0, Time: 90}, {Node: 7, Time: 55}, {Node: 33, Time: 10}, {Node: 12, Time: 101}}
	for _, policy := range []Policy{MostRecent, Uniform, InverseTimespan} {
		flatFinders := allFinders(t, flat)
		chunkFinders := allFinders(t, chunked)
		for k := range flatFinders {
			var fo, co Result
			if err := flatFinders[k].Sample(targets, 6, policy, &fo); err != nil {
				t.Fatal(err)
			}
			if err := chunkFinders[k].Sample(targets, 6, policy, &co); err != nil {
				t.Fatal(err)
			}
			for s := range fo.Nodes {
				if fo.Nodes[s] != co.Nodes[s] || fo.Times[s] != co.Times[s] || fo.Eids[s] != co.Eids[s] {
					t.Fatalf("%s/%v slot %d: flat (%d,%v,%d) vs chunked (%d,%v,%d)",
						flatFinders[k].Name(), policy, s,
						fo.Nodes[s], fo.Times[s], fo.Eids[s],
						co.Nodes[s], co.Times[s], co.Eids[s])
				}
			}
			for i := range fo.Counts {
				if fo.Counts[i] != co.Counts[i] {
					t.Fatalf("%s/%v count %d differs", flatFinders[k].Name(), policy, i)
				}
			}
		}
	}
}
