package models

import (
	"testing"

	"taser/internal/mathx"
	"taser/internal/nn"
)

// TestCloneIsIndependent checks that Clone copies values but shares no
// storage: stepping one copy's parameters leaves the other untouched, for
// both backbones and the decoder.
func TestCloneIsIndependent(t *testing.T) {
	rng := mathx.NewRNG(7)
	tgat := NewTGAT(TGATConfig{NodeDim: 4, EdgeDim: 3, HiddenDim: 8, TimeDim: 4, Layers: 2, Budget: 5}, rng)
	mixer := NewGraphMixer(GraphMixerConfig{NodeDim: 4, EdgeDim: 3, HiddenDim: 8, TimeDim: 4, Budget: 5}, rng)
	pred := NewEdgePredictor(8, rng)

	cases := []struct {
		name string
		src  nn.Module
		cp   nn.Module
	}{
		{"tgat", tgat, tgat.Clone()},
		{"graphmixer", mixer, mixer.Clone()},
		{"predictor", pred, pred.Clone()},
	}
	for _, c := range cases {
		sp, cpp := c.src.Params(), c.cp.Params()
		if len(sp) != len(cpp) {
			t.Fatalf("%s: clone has %d params, source %d", c.name, len(cpp), len(sp))
		}
		for i := range sp {
			if &sp[i].Val.Data[0] == &cpp[i].Val.Data[0] {
				t.Fatalf("%s: param %d shares storage with its clone", c.name, i)
			}
			for j, v := range sp[i].Val.Data {
				if cpp[i].Val.Data[j] != v {
					t.Fatalf("%s: param %d elem %d differs after clone", c.name, i, j)
				}
			}
		}
		// Mutate the clone; the source must not move.
		before := sp[0].Val.Data[0]
		cpp[0].Val.Data[0]++
		if sp[0].Val.Data[0] != before {
			t.Fatalf("%s: mutating the clone moved the source", c.name)
		}
	}
}

// TestWeightSetRoundTrip captures, perturbs the live model, reloads, and
// checks the snapshot restored every value; Matches and LoadInto reject
// mismatched architectures.
func TestWeightSetRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(3)
	m := NewTGAT(TGATConfig{NodeDim: 4, EdgeDim: 0, HiddenDim: 6, TimeDim: 4, Layers: 1, Budget: 3}, rng)
	p := NewEdgePredictor(6, rng)

	w := CaptureWeights(5, m, p)
	if w.Version != 5 {
		t.Fatalf("version %d", w.Version)
	}
	if err := w.Matches(m, p); err != nil {
		t.Fatal(err)
	}
	// Captured tensors are copies: scribbling on the model must not reach w.
	orig := m.Params()[0].Val.Data[0]
	for _, pr := range m.Params() {
		pr.Val.Fill(42)
	}
	if w.Params[0].Data[0] == 42 && orig != 42 {
		t.Fatal("capture aliases the live parameters")
	}
	if err := w.LoadInto(m, p); err != nil {
		t.Fatal(err)
	}
	if got := m.Params()[0].Val.Data[0]; got != orig {
		t.Fatalf("restored %v, want %v", got, orig)
	}
	// Architecture mismatches are rejected.
	if err := w.Matches(m); err == nil {
		t.Fatal("short module list accepted")
	}
	other := NewEdgePredictor(12, rng)
	if err := w.LoadInto(m, other); err == nil {
		t.Fatal("mismatched predictor accepted")
	}
}
