package models

import (
	"math"
	"testing"

	"taser/internal/mathx"
	"taser/internal/nn"
)

// TestCloneIsIndependent checks that Clone copies values but shares no
// storage: stepping one copy's parameters leaves the other untouched, for
// both backbones and the decoder.
func TestCloneIsIndependent(t *testing.T) {
	rng := mathx.NewRNG(7)
	tgat := NewTGAT(TGATConfig{NodeDim: 4, EdgeDim: 3, HiddenDim: 8, TimeDim: 4, Layers: 2, Budget: 5}, rng)
	mixer := NewGraphMixer(GraphMixerConfig{NodeDim: 4, EdgeDim: 3, HiddenDim: 8, TimeDim: 4, Budget: 5}, rng)
	pred := NewEdgePredictor(8, rng)

	cases := []struct {
		name string
		src  nn.Module
		cp   nn.Module
	}{
		{"tgat", tgat, tgat.Clone()},
		{"graphmixer", mixer, mixer.Clone()},
		{"predictor", pred, pred.Clone()},
	}
	for _, c := range cases {
		sp, cpp := c.src.Params(), c.cp.Params()
		if len(sp) != len(cpp) {
			t.Fatalf("%s: clone has %d params, source %d", c.name, len(cpp), len(sp))
		}
		for i := range sp {
			if &sp[i].Val.Data[0] == &cpp[i].Val.Data[0] {
				t.Fatalf("%s: param %d shares storage with its clone", c.name, i)
			}
			for j, v := range sp[i].Val.Data {
				if cpp[i].Val.Data[j] != v {
					t.Fatalf("%s: param %d elem %d differs after clone", c.name, i, j)
				}
			}
		}
		// Mutate the clone; the source must not move.
		before := sp[0].Val.Data[0]
		cpp[0].Val.Data[0]++
		if sp[0].Val.Data[0] != before {
			t.Fatalf("%s: mutating the clone moved the source", c.name)
		}
	}
}

// TestWeightSetRoundTrip captures, perturbs the live model, reloads, and
// checks the snapshot restored every value; Matches and LoadInto reject
// mismatched architectures.
func TestWeightSetRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(3)
	m := NewTGAT(TGATConfig{NodeDim: 4, EdgeDim: 0, HiddenDim: 6, TimeDim: 4, Layers: 1, Budget: 3}, rng)
	p := NewEdgePredictor(6, rng)

	w := CaptureWeights(5, m, p)
	if w.Version != 5 {
		t.Fatalf("version %d", w.Version)
	}
	if err := w.Matches(m, p); err != nil {
		t.Fatal(err)
	}
	// Captured tensors are copies: scribbling on the model must not reach w.
	orig := m.Params()[0].Val.Data[0]
	for _, pr := range m.Params() {
		pr.Val.Fill(42)
	}
	if w.Params[0].Data[0] == 42 && orig != 42 {
		t.Fatal("capture aliases the live parameters")
	}
	if err := w.LoadInto(m, p); err != nil {
		t.Fatal(err)
	}
	if got := m.Params()[0].Val.Data[0]; got != orig {
		t.Fatalf("restored %v, want %v", got, orig)
	}
	// Architecture mismatches are rejected.
	if err := w.Matches(m); err == nil {
		t.Fatal("short module list accepted")
	}
	other := NewEdgePredictor(12, rng)
	if err := w.LoadInto(m, other); err == nil {
		t.Fatal("mismatched predictor accepted")
	}
}

// TestWeightSetBinaryRoundTrip encodes a captured set and decodes it back:
// every parameter must be bitwise-equal, the version preserved, and the
// decoder must report exactly the bytes it consumed even with trailing data.
func TestWeightSetBinaryRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(11)
	m := NewTGAT(TGATConfig{NodeDim: 4, EdgeDim: 2, HiddenDim: 6, TimeDim: 4, Layers: 2, Budget: 3}, rng)
	p := NewEdgePredictor(6, rng)
	w := CaptureWeights(7, m, p)

	enc := w.AppendBinary(nil)
	got, consumed, err := DecodeWeightSet(append(enc, 0xAB, 0xCD)) // trailing junk ignored
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(enc) {
		t.Fatalf("consumed %d bytes, want %d", consumed, len(enc))
	}
	if got.Version != 7 {
		t.Fatalf("version %d, want 7", got.Version)
	}
	if len(got.Params) != len(w.Params) {
		t.Fatalf("%d tensors, want %d", len(got.Params), len(w.Params))
	}
	for i, src := range w.Params {
		dec := got.Params[i]
		if dec.Rows != src.Rows || dec.Cols != src.Cols {
			t.Fatalf("tensor %d shape %dx%d, want %dx%d", i, dec.Rows, dec.Cols, src.Rows, src.Cols)
		}
		for j, v := range src.Data {
			if math.Float64bits(dec.Data[j]) != math.Float64bits(v) {
				t.Fatalf("tensor %d elem %d: %v != %v (not bitwise equal)", i, j, dec.Data[j], v)
			}
		}
	}
	// The decoded set must load into a matching architecture.
	if err := got.LoadInto(m, p); err != nil {
		t.Fatal(err)
	}

	// AppendBinary composes: two sets in one buffer decode back to back.
	w2 := CaptureWeights(8, m, p)
	both := w2.AppendBinary(w.AppendBinary(nil))
	first, n, err := DecodeWeightSet(both)
	if err != nil || first.Version != 7 {
		t.Fatalf("first set: v%d err %v", first.Version, err)
	}
	second, _, err := DecodeWeightSet(both[n:])
	if err != nil || second.Version != 8 {
		t.Fatalf("second set: err %v", err)
	}
}

// TestWeightSetBinaryRejectsCorruption flips every byte position in turn and
// checks the checksum (or a structural bound) rejects the payload — no bit
// flip may yield a silently different weight set.
func TestWeightSetBinaryRejectsCorruption(t *testing.T) {
	rng := mathx.NewRNG(13)
	m := NewTGAT(TGATConfig{NodeDim: 3, EdgeDim: 0, HiddenDim: 4, TimeDim: 2, Layers: 1, Budget: 2}, rng)
	w := CaptureWeights(3, m, NewEdgePredictor(4, rng))
	enc := w.AppendBinary(nil)

	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, _, err := DecodeWeightSet(bad); err == nil {
			t.Fatalf("flipped byte %d of %d accepted", i, len(enc))
		}
	}
	// Truncation at any boundary is rejected too.
	for _, cut := range []int{0, 3, 15, len(enc) / 2, len(enc) - 1} {
		if _, _, err := DecodeWeightSet(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}
