package models

import (
	"math"

	"taser/internal/autograd"
	"taser/internal/mathx"
	"taser/internal/nn"
	"taser/internal/tensor"
)

// LearnableTimeEnc is TGAT's trainable time encoding Φ(Δt) = cos(Δt·w + b)
// (Eq. 3), with w, b ∈ R^d learned jointly with the aggregator.
type LearnableTimeEnc struct {
	W *autograd.Var // 1×d frequencies
	B *autograd.Var // 1×d phases
}

// NewLearnableTimeEnc initializes frequencies on a log-spaced grid (the
// standard TGAT initialization) so the encoder starts with a useful
// multi-scale spectrum instead of random noise.
func NewLearnableTimeEnc(d int, rng *mathx.RNG) *LearnableTimeEnc {
	w := tensor.New(1, d)
	for i := 0; i < d; i++ {
		// 10^(−2i/d): spans unit to ~1/100 frequency.
		w.Data[i] = math.Pow(10, -2*float64(i)/float64(d))
	}
	b := tensor.Randn(1, d, 0.1, rng)
	return &LearnableTimeEnc{W: autograd.NewParam(w), B: autograd.NewParam(b)}
}

// Encode maps a (R×1) constant Δt column to R×d time features.
func (t *LearnableTimeEnc) Encode(g *autograd.Graph, deltaT *tensor.Matrix) *autograd.Var {
	dt := g.Const(deltaT)
	// (R×1)@(1×d) broadcasts Δt across frequencies.
	return g.Cos(g.AddBias(g.MatMul(dt, t.W), t.B))
}

// EncodeZeros returns Φ(0) = cos(b) tiled over rows (used for the target's
// own query, Eq. 4). The zero column comes from the graph's arena.
func (t *LearnableTimeEnc) EncodeZeros(g *autograd.Graph, rows int) *autograd.Var {
	return t.Encode(g, g.Scratch(rows, 1))
}

// Params implements nn.Module.
func (t *LearnableTimeEnc) Params() []*autograd.Var { return []*autograd.Var{t.W, t.B} }

var _ nn.Module = (*LearnableTimeEnc)(nil)
