package models

import (
	"math"
	"testing"

	"taser/internal/mathx"
	"taser/internal/tensor"
)

func testMaster(seed uint64) *WeightSet {
	rng := mathx.NewRNG(seed)
	return &WeightSet{Version: 7, Params: []*tensor.Matrix{
		tensor.Randn(10, 24, 0.3, rng),
		tensor.Randn(1, 24, 0.01, rng),
		tensor.Randn(48, 10, 1.5, rng),
	}}
}

func bitwiseEqualSets(a, b *WeightSet) bool {
	if len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		x, y := a.Params[i], b.Params[i]
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for j := range x.Data {
			if math.Float64bits(x.Data[j]) != math.Float64bits(y.Data[j]) {
				return false
			}
		}
	}
	return true
}

func TestQuantizeRoundTripError(t *testing.T) {
	ws := testMaster(1)
	f32, err := QuantF32.Clone(ws)
	if err != nil {
		t.Fatal(err)
	}
	i8, err := QuantInt8.Clone(ws)
	if err != nil {
		t.Fatal(err)
	}
	if f32.Version != ws.Version || i8.Version != ws.Version {
		t.Fatal("quantized clones must carry the master's version")
	}
	for i, p := range ws.Params {
		maxAbs := p.MaxAbs()
		scaleBound := math.Ldexp(1, int(math.Ceil(math.Log2(maxAbs/127)))) / 2
		for j, v := range p.Data {
			if d := math.Abs(f32.Params[i].Data[j] - v); d > 1e-6*(1+math.Abs(v)) {
				t.Fatalf("f32 param %d[%d]: error %v", i, j, d)
			}
			if d := math.Abs(i8.Params[i].Data[j] - v); d > scaleBound+1e-15 {
				t.Fatalf("int8 param %d[%d]: error %v exceeds scale/2 = %v", i, j, d, scaleBound)
			}
		}
	}
}

// TestQuantizeIdempotent pins the recovery invariant: republishing an
// already-quantized set through the same mode must reproduce it bitwise
// (crash recovery re-runs the PublishWeights quantization hook on
// checkpointed weights).
func TestQuantizeIdempotent(t *testing.T) {
	ws := testMaster(2)
	for _, mode := range []Quantization{QuantF32, QuantInt8} {
		once, err := mode.Clone(ws)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := mode.Clone(once)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqualSets(once, twice) {
			t.Fatalf("%v: re-quantizing a quantized set changed it", mode)
		}
	}
}

func TestQuantNoneIsIdentity(t *testing.T) {
	ws := testMaster(3)
	got, err := QuantNone.Clone(ws)
	if err != nil {
		t.Fatal(err)
	}
	if got != ws {
		t.Fatal("QuantNone must return the master unchanged")
	}
}

func TestQuantZeroTensor(t *testing.T) {
	ws := &WeightSet{Version: 1, Params: []*tensor.Matrix{tensor.New(3, 4)}}
	for _, mode := range []Quantization{QuantF32, QuantInt8} {
		got, err := mode.Clone(ws)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got.Params[0].Data {
			if v != 0 {
				t.Fatalf("%v: zero tensor must quantize to zero", mode)
			}
		}
	}
}

func TestQuantizedWeightSetBytes(t *testing.T) {
	ws := testMaster(4)
	n := 0
	for _, p := range ws.Params {
		n += len(p.Data)
	}
	qf, err := QuantizeWeights(ws, QuantF32)
	if err != nil {
		t.Fatal(err)
	}
	qi, err := QuantizeWeights(ws, QuantInt8)
	if err != nil {
		t.Fatal(err)
	}
	if qf.Bytes() != 4*n || qi.Bytes() != n {
		t.Fatalf("Bytes: f32 %d want %d, int8 %d want %d", qf.Bytes(), 4*n, qi.Bytes(), n)
	}
}

func TestParseQuantization(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Quantization
	}{{"none", QuantNone}, {"", QuantNone}, {"f32", QuantF32}, {"int8", QuantInt8}} {
		got, err := ParseQuantization(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseQuantization(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseQuantization("fp4"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
	if QuantInt8.String() != "int8" || QuantF32.String() != "f32" || QuantNone.String() != "none" {
		t.Fatal("String spellings drive flag round-trips")
	}
}
