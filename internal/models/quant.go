package models

import (
	"fmt"
	"math"

	"taser/internal/tensor"
)

// Quantization selects the numeric representation the serving path stores
// published weights in. Fine-tuning always publishes float64 masters; a
// serving engine configured with a quantization mode clones each published
// set through the compact representation before storing it (DESIGN.md §13).
// The f64 master is never mutated — ownership of precision stays with the
// tuner, and disabling quantization is a pure config change.
type Quantization int

const (
	// QuantNone serves the published float64 masters unchanged.
	QuantNone Quantization = iota
	// QuantF32 rounds every parameter to float32 precision (~1e-7 relative).
	QuantF32
	// QuantInt8 rounds every parameter to 8-bit fixed point with one
	// power-of-two scale per tensor (~0.4% of the tensor's max magnitude).
	QuantInt8
)

func (q Quantization) String() string {
	switch q {
	case QuantNone:
		return "none"
	case QuantF32:
		return "f32"
	case QuantInt8:
		return "int8"
	}
	return fmt.Sprintf("Quantization(%d)", int(q))
}

// ParseQuantization maps the flag spellings to a mode.
func ParseQuantization(s string) (Quantization, error) {
	switch s {
	case "", "none", "f64":
		return QuantNone, nil
	case "f32", "float32":
		return QuantF32, nil
	case "int8", "i8":
		return QuantInt8, nil
	}
	return QuantNone, fmt.Errorf("models: unknown quantization %q (want none, f32 or int8)", s)
}

// QuantTensor is one parameter tensor in compact form: exactly one of F32 or
// I8 is populated. I8 values decode as float64(v) * Scale.
type QuantTensor struct {
	Rows, Cols int
	F32        []float32
	I8         []int8
	Scale      float64
}

// QuantizedWeightSet is the compact clone of a WeightSet. It exists as a
// storage/transport form — serving dequantizes it back to float64 once per
// publication (the hot kernels stay f64-only) — and to make the quantization
// footprint measurable: Bytes() vs the 8-byte-per-parameter master.
type QuantizedWeightSet struct {
	Version uint64
	Mode    Quantization
	Tensors []QuantTensor
}

// int8Scale returns the power-of-two scale for a tensor with the given max
// magnitude. A power of two makes quantize → dequantize → quantize exact:
// v/Scale and q*Scale only shift the exponent, so re-quantizing a quantized
// tensor reproduces it bitwise. That idempotence is load-bearing — crash
// recovery republishes checkpointed (already quantized) weights through the
// same PublishWeights quantization hook, and serving state must not drift
// across recoveries (DESIGN.md §9).
func int8Scale(maxAbs float64) float64 {
	if maxAbs == 0 {
		return 1
	}
	return math.Ldexp(1, int(math.Ceil(math.Log2(maxAbs/127))))
}

// QuantizeWeights clones ws into the compact representation of the given
// mode. QuantNone is rejected — callers should keep the master instead of
// paying for a lossless copy.
func QuantizeWeights(ws *WeightSet, mode Quantization) (*QuantizedWeightSet, error) {
	if mode != QuantF32 && mode != QuantInt8 {
		return nil, fmt.Errorf("models: QuantizeWeights mode %v", mode)
	}
	q := &QuantizedWeightSet{Version: ws.Version, Mode: mode, Tensors: make([]QuantTensor, len(ws.Params))}
	for i, p := range ws.Params {
		qt := QuantTensor{Rows: p.Rows, Cols: p.Cols}
		switch mode {
		case QuantF32:
			qt.F32 = make([]float32, len(p.Data))
			for j, v := range p.Data {
				qt.F32[j] = float32(v)
			}
		case QuantInt8:
			qt.Scale = int8Scale(p.MaxAbs())
			qt.I8 = make([]int8, len(p.Data))
			inv := 1 / qt.Scale
			for j, v := range p.Data {
				r := math.Round(v * inv)
				if r > 127 {
					r = 127
				} else if r < -127 {
					r = -127
				}
				qt.I8[j] = int8(r)
			}
		}
		q.Tensors[i] = qt
	}
	return q, nil
}

// Dequantize expands the compact set back to a float64 WeightSet for the
// serving kernels. The result carries the source version.
func (q *QuantizedWeightSet) Dequantize() *WeightSet {
	ws := &WeightSet{Version: q.Version, Params: make([]*tensor.Matrix, len(q.Tensors))}
	for i, qt := range q.Tensors {
		m := tensor.New(qt.Rows, qt.Cols)
		if qt.F32 != nil {
			for j, v := range qt.F32 {
				m.Data[j] = float64(v)
			}
		} else {
			for j, v := range qt.I8 {
				m.Data[j] = float64(v) * qt.Scale
			}
		}
		ws.Params[i] = m
	}
	return ws
}

// Bytes reports the compact set's parameter payload size.
func (q *QuantizedWeightSet) Bytes() int {
	n := 0
	for _, qt := range q.Tensors {
		n += 4*len(qt.F32) + len(qt.I8)
	}
	return n
}

// Clone applies the quantization mode to a published float64 master:
// QuantNone returns ws itself; the other modes return a fresh WeightSet
// whose values have been rounded through the compact representation (the
// stored set is exactly what a QuantizedWeightSet would decode to).
// Re-applying any mode to its own output is bitwise-idempotent.
func (q Quantization) Clone(ws *WeightSet) (*WeightSet, error) {
	if q == QuantNone {
		return ws, nil
	}
	qs, err := QuantizeWeights(ws, q)
	if err != nil {
		return nil, err
	}
	return qs.Dequantize(), nil
}
