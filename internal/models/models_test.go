package models

import (
	"math"
	"testing"

	"taser/internal/autograd"
	"taser/internal/mathx"
	"taser/internal/nn"
	"taser/internal/tensor"
)

// buildMiniBatch constructs a random but structurally valid minibatch with
// the given root count, layer count, budget and feature widths. fillRatio
// controls how many neighbor slots are valid.
func buildMiniBatch(rng *mathx.RNG, roots, layers, budget, nodeDim, edgeDim int, fillRatio float64) *MiniBatch {
	mb := &MiniBatch{}
	mb.Layers = make([]*LayerBlock, layers)
	t := roots
	// Outermost first, then grow inward.
	for k := layers - 1; k >= 0; k-- {
		block := NewLayerBlock(t, budget, edgeDim)
		for i := 0; i < t; i++ {
			for j := 0; j < budget; j++ {
				if rng.Float64() < fillRatio {
					block.SetEntry(i, j, int32(rng.Intn(100)), rng.Float64()*10)
					if edgeDim > 0 {
						row := block.EdgeFeat.Row(i*budget + j)
						for c := range row {
							row[c] = rng.NormFloat64()
						}
					}
				}
			}
		}
		block.FinishMask()
		mb.Layers[k] = block
		t = t * (1 + budget)
	}
	mb.LeafFeat = tensor.Randn(t, nodeDim, 1, rng)
	return mb
}

func TestMiniBatchValidate(t *testing.T) {
	rng := mathx.NewRNG(1)
	mb := buildMiniBatch(rng, 3, 2, 4, 5, 6, 1.0)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	if mb.Roots() != 3 {
		t.Fatal("Roots")
	}
	// Break the invariant.
	mb.Layers[0].NumTargets--
	if err := mb.Validate(); err == nil {
		t.Fatal("broken layout must fail validation")
	}
	empty := &MiniBatch{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty minibatch must fail validation")
	}
}

func TestLayerBlockMasking(t *testing.T) {
	b := NewLayerBlock(2, 3, 0)
	b.SetEntry(0, 0, 7, 1.5)
	b.SetEntry(1, 2, 9, 0.5)
	b.FinishMask()
	if b.Mask.At(0, 0) != 1 || b.Mask.At(0, 1) != 0 {
		t.Fatal("mask")
	}
	if b.MaskBias.At(0, 0) != 0 || b.MaskBias.At(0, 1) != -1e9 {
		t.Fatal("mask bias")
	}
	if b.NbrNodes[0] != 7 || b.NbrNodes[1] != -1 {
		t.Fatal("padding node ids must be -1")
	}
	if b.MaskCol.Data[5] != 1 || b.MaskCol.Data[4] != 0 {
		t.Fatal("mask col")
	}
}

func TestTGATForwardShapes(t *testing.T) {
	rng := mathx.NewRNG(2)
	cfg := TGATConfig{NodeDim: 4, EdgeDim: 3, HiddenDim: 8, TimeDim: 5, Layers: 2, Budget: 3}
	m := NewTGAT(cfg, rng)
	mb := buildMiniBatch(rng, 6, 2, 3, 4, 3, 0.8)
	g := autograd.New()
	out, info := m.Forward(g, mb)
	if out.Rows() != 6 || out.Cols() != 8 {
		t.Fatalf("output %dx%d", out.Rows(), out.Cols())
	}
	if info.Attn == nil || info.Vals == nil || info.Scores == nil || info.Out != out {
		t.Fatal("co-train info must capture attention internals")
	}
	if info.Attn.Rows() != 6 || info.Attn.Cols() != 3 {
		t.Fatal("attention shape")
	}
	if m.NumLayers() != 2 || m.HiddenDim() != 8 {
		t.Fatal("accessors")
	}
}

func TestTGATZeroWidthFeatures(t *testing.T) {
	// Wikipedia-style datasets have no node features; Flights has no edge
	// features. Both degenerate widths must work.
	rng := mathx.NewRNG(3)
	for _, dims := range [][2]int{{0, 3}, {4, 0}, {0, 0}} {
		cfg := TGATConfig{NodeDim: dims[0], EdgeDim: dims[1], HiddenDim: 6, TimeDim: 4, Layers: 2, Budget: 2}
		m := NewTGAT(cfg, rng)
		mb := buildMiniBatch(rng, 4, 2, 2, dims[0], dims[1], 0.9)
		out, _ := m.Forward(autograd.New(), mb)
		if out.Rows() != 4 || out.Cols() != 6 {
			t.Fatalf("dims %v: output %dx%d", dims, out.Rows(), out.Cols())
		}
		for _, v := range out.Val.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("dims %v: non-finite output", dims)
			}
		}
	}
}

func TestTGATPaddingDoesNotAffectOutput(t *testing.T) {
	// Changing the edge features / Δt of a PADDED slot must not change the
	// output at all (mask correctness).
	rng := mathx.NewRNG(4)
	cfg := TGATConfig{NodeDim: 2, EdgeDim: 2, HiddenDim: 6, TimeDim: 4, Layers: 1, Budget: 3}
	m := NewTGAT(cfg, rng)
	mb := buildMiniBatch(rng, 2, 1, 3, 2, 2, 1.0)
	// Manually pad slot (0, 2).
	block := mb.Layers[0]
	s := 0*3 + 2
	block.Mask.Data[s] = 0
	block.MaskCol.Data[s] = 0
	block.MaskBias.Data[s] = -1e9
	out1, _ := m.Forward(autograd.New(), mb)
	// Perturb the padded slot's inputs.
	block.EdgeFeat.Set(s, 0, 999)
	block.DeltaT.Data[s] = 777
	out2, _ := m.Forward(autograd.New(), mb)
	if !out1.Val.Equal(out2.Val, 1e-9) {
		t.Fatal("padded slots must be inert")
	}
}

func TestTGATAllPaddedNeighborhood(t *testing.T) {
	// A root with zero sampled neighbors must still produce finite output.
	rng := mathx.NewRNG(5)
	cfg := TGATConfig{NodeDim: 2, EdgeDim: 2, HiddenDim: 4, TimeDim: 3, Layers: 1, Budget: 2}
	m := NewTGAT(cfg, rng)
	mb := buildMiniBatch(rng, 2, 1, 2, 2, 2, 0.0) // nothing valid
	out, _ := m.Forward(autograd.New(), mb)
	for _, v := range out.Val.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("all-padded neighborhood must stay finite")
		}
	}
}

func TestTGATGradientsFlowToAllParams(t *testing.T) {
	rng := mathx.NewRNG(6)
	cfg := TGATConfig{NodeDim: 3, EdgeDim: 2, HiddenDim: 5, TimeDim: 4, Layers: 2, Budget: 2}
	m := NewTGAT(cfg, rng)
	mb := buildMiniBatch(rng, 4, 2, 2, 3, 2, 1.0)
	g := autograd.New()
	out, _ := m.Forward(g, mb)
	g.Backward(g.MeanAll(g.Mul(out, out)))
	for i, p := range m.Params() {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("TGAT param %d got no gradient", i)
		}
	}
}

func TestTGATDeterministic(t *testing.T) {
	cfg := TGATConfig{NodeDim: 2, EdgeDim: 2, HiddenDim: 4, TimeDim: 3, Layers: 2, Budget: 2}
	m1 := NewTGAT(cfg, mathx.NewRNG(7))
	m2 := NewTGAT(cfg, mathx.NewRNG(7))
	mb := buildMiniBatch(mathx.NewRNG(8), 3, 2, 2, 2, 2, 0.7)
	o1, _ := m1.Forward(autograd.New(), mb)
	o2, _ := m2.Forward(autograd.New(), mb)
	if !o1.Val.Equal(o2.Val, 0) {
		t.Fatal("same seed must give identical models")
	}
}

func TestGraphMixerForwardShapes(t *testing.T) {
	rng := mathx.NewRNG(9)
	cfg := GraphMixerConfig{NodeDim: 3, EdgeDim: 4, HiddenDim: 8, TimeDim: 6, Budget: 5}
	m := NewGraphMixer(cfg, rng)
	mb := buildMiniBatch(rng, 7, 1, 5, 3, 4, 0.8)
	out, info := m.Forward(autograd.New(), mb)
	if out.Rows() != 7 || out.Cols() != 8 {
		t.Fatalf("output %dx%d", out.Rows(), out.Cols())
	}
	if info.Tokens == nil || info.Tokens.Rows() != 35 {
		t.Fatal("co-train tokens missing")
	}
	if m.NumLayers() != 1 {
		t.Fatal("GraphMixer is single layer")
	}
}

func TestGraphMixerPaddingInert(t *testing.T) {
	rng := mathx.NewRNG(10)
	cfg := GraphMixerConfig{NodeDim: 0, EdgeDim: 3, HiddenDim: 6, TimeDim: 4, Budget: 3}
	m := NewGraphMixer(cfg, rng)
	mb := buildMiniBatch(rng, 2, 1, 3, 0, 3, 1.0)
	block := mb.Layers[0]
	s := 1*3 + 1
	block.Mask.Data[s] = 0
	block.MaskCol.Data[s] = 0
	block.MaskBias.Data[s] = -1e9
	out1, _ := m.Forward(autograd.New(), mb)
	block.EdgeFeat.Set(s, 1, -555)
	block.DeltaT.Data[s] = 123
	out2, _ := m.Forward(autograd.New(), mb)
	if !out1.Val.Equal(out2.Val, 1e-9) {
		t.Fatal("padded GraphMixer tokens must be inert")
	}
}

func TestGraphMixerGradientsFlow(t *testing.T) {
	rng := mathx.NewRNG(11)
	cfg := GraphMixerConfig{NodeDim: 2, EdgeDim: 2, HiddenDim: 4, TimeDim: 3, Budget: 4}
	m := NewGraphMixer(cfg, rng)
	mb := buildMiniBatch(rng, 3, 1, 4, 2, 2, 1.0)
	g := autograd.New()
	out, _ := m.Forward(g, mb)
	g.Backward(g.MeanAll(g.Mul(out, out)))
	for i, p := range m.Params() {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("GraphMixer param %d got no gradient", i)
		}
	}
}

func TestEdgePredictorShapesAndGrad(t *testing.T) {
	rng := mathx.NewRNG(12)
	p := NewEdgePredictor(6, rng)
	g := autograd.New()
	emb := autograd.NewParam(tensor.Randn(9, 6, 1, rng)) // 3 roots × (u, v, v')
	logits := p.ScoreGathered(g, emb, []int32{0, 0}, []int32{1, 2})
	if logits.Rows() != 2 || logits.Cols() != 1 {
		t.Fatalf("logits %dx%d", logits.Rows(), logits.Cols())
	}
	g.Backward(g.BCEWithLogits(logits, []float64{1, 0}))
	for i, prm := range p.Params() {
		if prm.Grad.MaxAbs() == 0 {
			t.Fatalf("predictor param %d got no gradient", i)
		}
	}
	if emb.Grad.MaxAbs() == 0 {
		t.Fatal("gradients must flow back into embeddings")
	}
}

func TestLearnableTimeEncZero(t *testing.T) {
	rng := mathx.NewRNG(13)
	enc := NewLearnableTimeEnc(4, rng)
	g := autograd.New()
	z := enc.EncodeZeros(g, 3)
	if z.Rows() != 3 || z.Cols() != 4 {
		t.Fatal("shape")
	}
	// Φ(0) = cos(b): all rows identical.
	for j := 0; j < 4; j++ {
		want := math.Cos(enc.B.Val.Data[j])
		for i := 0; i < 3; i++ {
			if math.Abs(z.Val.At(i, j)-want) > 1e-12 {
				t.Fatal("Φ(0) must equal cos(b)")
			}
		}
	}
}

func TestLearnableTimeEncGradCheck(t *testing.T) {
	rng := mathx.NewRNG(14)
	enc := NewLearnableTimeEnc(3, rng)
	dt := tensor.FromSlice(4, 1, []float64{0.5, 1.5, 3, 0})
	coef := tensor.Randn(4, 3, 1, rng)
	// Finite-difference check through the cos encoding.
	forward := func(g *autograd.Graph) *autograd.Var {
		return g.WeightedSumConst(enc.Encode(g, dt), coef)
	}
	for _, p := range enc.Params() {
		p.Grad.Zero()
	}
	g := autograd.New()
	g.Backward(forward(g))
	const h = 1e-6
	for _, p := range enc.Params() {
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + h
			up := forward(autograd.New()).Val.Data[0]
			p.Val.Data[i] = orig - h
			down := forward(autograd.New()).Val.Data[0]
			p.Val.Data[i] = orig
			fd := (up - down) / (2 * h)
			if math.Abs(fd-p.Grad.Data[i]) > 1e-5 {
				t.Fatalf("time enc grad %v vs fd %v", p.Grad.Data[i], fd)
			}
		}
	}
}

func TestTGATLearnsAttentionSignal(t *testing.T) {
	// A smoke-level learning test: labels depend on a permutation-invariant
	// statistic of the root's neighborhood (the mean edge feature). TGAT +
	// predictor must beat chance comfortably after a few hundred steps.
	rng := mathx.NewRNG(15)
	cfg := TGATConfig{NodeDim: 0, EdgeDim: 1, HiddenDim: 8, TimeDim: 4, Layers: 1, Budget: 2}
	m := NewTGAT(cfg, rng)
	pred := NewEdgePredictor(8, rng)
	params := append(m.Params(), pred.Params()...)
	opt := nn.NewAdam(params, 0.01)
	correct, total := 0, 0
	const iters = 700
	for iter := 0; iter < iters; iter++ {
		mb := buildMiniBatch(rng, 8, 1, 2, 0, 1, 1.0)
		labels := make([]float64, 4)
		for i := 0; i < 4; i++ {
			if mb.Layers[0].EdgeFeat.At(i*2, 0)+mb.Layers[0].EdgeFeat.At(i*2+1, 0) > 0 {
				labels[i] = 1
			}
		}
		g := autograd.New()
		emb, _ := m.Forward(g, mb)
		logits := pred.ScoreGathered(g, emb, []int32{0, 1, 2, 3}, []int32{4, 5, 6, 7})
		loss := g.BCEWithLogits(logits, labels)
		g.Backward(loss)
		opt.Step()
		opt.ZeroGrad()
		if iter >= iters-100 {
			for i, y := range labels {
				if (logits.Val.Data[i] > 0) == (y == 1) {
					correct++
				}
				total++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Fatalf("TGAT failed to learn separable signal: accuracy %v", acc)
	}
}
