// Package models implements the two backbone TGNNs TASER is evaluated on
// (§II-B): TGAT's self-attention temporal aggregator with a learnable time
// encoding (Eqs. 3–7) and GraphMixer's MLP-Mixer aggregator with a fixed
// time encoding (Eqs. 8–9), plus the link-prediction edge decoder. Both
// models consume the same MiniBatch layout so the training loop, neighbor
// finders and adaptive sampler compose with either.
package models

import (
	"fmt"

	"taser/internal/autograd"
	"taser/internal/tensor"
)

// LayerBlock holds one hop of sampled neighborhoods in the flat layout
// produced by the samplers: target i's neighbors occupy rows
// [i·Budget, (i+1)·Budget) of every per-neighbor array.
type LayerBlock struct {
	NumTargets int
	Budget     int

	// NbrNodes are the flattened neighbor node ids (−1 for padding). The
	// model itself only needs them for diagnostics; the adaptive sampler's
	// encoder consumes them for frequency/identity encodings.
	NbrNodes []int32
	// EdgeFeat holds sliced edge features, (T·Budget)×dE (dE may be 0).
	EdgeFeat *tensor.Matrix
	// DeltaT is the per-entry timespan t_target − t_edge, (T·Budget)×1.
	DeltaT *tensor.Matrix
	// Mask is 1 for valid entries, 0 for padding, T×Budget.
	Mask *tensor.Matrix
	// MaskCol is the same mask flattened to (T·Budget)×1.
	MaskCol *tensor.Matrix
	// MaskBias is (Mask−1)·1e9, added to attention logits so padded entries
	// vanish under softmax.
	MaskBias *tensor.Matrix
}

// NewLayerBlock allocates a block for t targets with the given budget and
// edge-feature width.
func NewLayerBlock(t, budget, edgeDim int) *LayerBlock {
	return &LayerBlock{
		NumTargets: t,
		Budget:     budget,
		NbrNodes:   make([]int32, t*budget),
		EdgeFeat:   tensor.New(t*budget, edgeDim),
		DeltaT:     tensor.New(t*budget, 1),
		Mask:       tensor.New(t, budget),
		MaskCol:    tensor.New(t*budget, 1),
		MaskBias:   tensor.New(t, budget),
	}
}

// Reset reshapes the block in place for reuse, zeroing all content so the
// result is indistinguishable from a fresh NewLayerBlock(t, budget, edgeDim).
// Backing storage is reused when capacity allows; buffer pools call this to
// make the steady-state minibatch build path allocation-free.
func (b *LayerBlock) Reset(t, budget, edgeDim int) {
	b.NumTargets, b.Budget = t, budget
	n := t * budget
	if cap(b.NbrNodes) < n {
		b.NbrNodes = make([]int32, n)
	} else {
		b.NbrNodes = b.NbrNodes[:n]
		for i := range b.NbrNodes {
			b.NbrNodes[i] = 0
		}
	}
	b.EdgeFeat.Resize(n, edgeDim)
	b.DeltaT.Resize(n, 1)
	b.Mask.Resize(t, budget)
	b.MaskCol.Resize(n, 1)
	b.MaskBias.Resize(t, budget)
}

// SetEntry fills neighbor slot (i, j) as valid with the given timespan.
func (b *LayerBlock) SetEntry(i, j int, node int32, deltaT float64) {
	s := i*b.Budget + j
	b.NbrNodes[s] = node
	b.DeltaT.Data[s] = deltaT
	b.Mask.Data[s] = 1
	b.MaskCol.Data[s] = 1
	b.MaskBias.Data[s] = 0
}

// FinishMask must be called after all SetEntry calls: it writes the −1e9
// bias for every slot that remained padding.
func (b *LayerBlock) FinishMask() {
	for s, v := range b.Mask.Data {
		if v == 0 {
			b.MaskBias.Data[s] = -1e9
			b.NbrNodes[s] = -1
		}
	}
}

// MiniBatch is the fully materialized input of one TGNN forward pass.
// Layers[0] is the innermost aggregation (operating on raw features);
// Layers[L−1] is the outermost, whose targets are the batch roots.
//
// Layout invariant: the targets of Layers[k−1] are Layers[k]'s targets
// followed by Layers[k]'s flattened neighbors, so the embeddings produced by
// aggregation k−1 line up as [target rows | neighbor rows] for aggregation k.
// LeafFeat holds h⁰ (raw node features, width may be 0) for Layers[0]'s
// targets followed by their neighbors.
type MiniBatch struct {
	Layers   []*LayerBlock
	LeafFeat *tensor.Matrix
}

// Validate checks the layout invariant; models call it before forward.
func (mb *MiniBatch) Validate() error {
	if len(mb.Layers) == 0 {
		return fmt.Errorf("models: minibatch has no layers")
	}
	for k := 1; k < len(mb.Layers); k++ {
		inner, outer := mb.Layers[k-1], mb.Layers[k]
		want := outer.NumTargets * (1 + outer.Budget)
		if inner.NumTargets != want {
			return fmt.Errorf("models: layer %d has %d targets, want %d (outer targets+neighbors)",
				k-1, inner.NumTargets, want)
		}
	}
	leaf := mb.Layers[0]
	if mb.LeafFeat.Rows != leaf.NumTargets*(1+leaf.Budget) {
		return fmt.Errorf("models: leaf features have %d rows, want %d",
			mb.LeafFeat.Rows, leaf.NumTargets*(1+leaf.Budget))
	}
	return nil
}

// Roots returns the number of root targets (outermost layer).
func (mb *MiniBatch) Roots() int { return mb.Layers[len(mb.Layers)-1].NumTargets }

// CoTrainInfo exposes the internals of the outermost aggregation that the
// REINFORCE sample loss needs (Eqs. 25–26): it is captured during Forward
// and consumed by the adaptive package after Backward has populated
// Out.Grad = dL/dh.
type CoTrainInfo struct {
	Budget int
	Out    *autograd.Var // roots×d final embeddings

	// TGAT (Eq. 25): normalized attention, raw scores, and value rows.
	Attn   *autograd.Var // roots×n
	Scores *autograd.Var // roots×n (unnormalized a_ij)
	Vals   *autograd.Var // (roots·n)×d

	// GraphMixer (Eq. 26, folded form): masked output tokens.
	Tokens *autograd.Var // (roots·n)×d
}

// TGNN is the interface shared by both backbones.
type TGNN interface {
	// Forward computes root embeddings; info captures co-training internals
	// for the outermost layer.
	Forward(g *autograd.Graph, mb *MiniBatch) (out *autograd.Var, info *CoTrainInfo)
	// NumLayers reports the hop depth (TGAT: 2, GraphMixer: 1).
	NumLayers() int
	// HiddenDim reports the embedding width.
	HiddenDim() int
	// Params exposes all trainable parameters.
	Params() []*autograd.Var
	// Clone returns an independent deep copy (same architecture, same
	// current parameter values, fresh gradients) — what the online
	// fine-tuner trains so the serving copy stays immutable between
	// weight publications.
	Clone() TGNN
}
