package models

import (
	"taser/internal/autograd"
	"taser/internal/encoding"
	"taser/internal/mathx"
	"taser/internal/nn"
)

// GraphMixerConfig configures the GraphMixer backbone.
type GraphMixerConfig struct {
	NodeDim   int
	EdgeDim   int
	HiddenDim int
	TimeDim   int
	Budget    int // supporting neighbors (single hop)
}

// GraphMixer is the technically simple one-layer backbone of Cong et al.
// (ICLR 2023): most-recent neighbors, a fixed time encoding (Eq. 8), one
// MLP-Mixer block over the neighborhood tokens, and a mean readout (Eq. 9).
type GraphMixer struct {
	cfg     GraphMixerConfig
	timeEnc *encoding.TimeEncoder
	tokenIn *nn.Linear // (dN+dE+dT) → d token projection
	mixer   *nn.MixerBlock
	readout *nn.Linear // (d+dN) → d combining neighborhood mean with self
}

// NewGraphMixer builds the model.
func NewGraphMixer(cfg GraphMixerConfig, rng *mathx.RNG) *GraphMixer {
	return &GraphMixer{
		cfg:     cfg,
		timeEnc: encoding.NewTimeEncoder(cfg.TimeDim, 0, 0),
		tokenIn: nn.NewLinear(cfg.NodeDim+cfg.EdgeDim+cfg.TimeDim, cfg.HiddenDim, rng),
		mixer:   nn.NewMixerBlock(cfg.Budget, cfg.HiddenDim, 0, 2*cfg.HiddenDim, rng),
		readout: nn.NewLinear(cfg.HiddenDim+cfg.NodeDim, cfg.HiddenDim, rng),
	}
}

// NumLayers implements TGNN.
func (m *GraphMixer) NumLayers() int { return 1 }

// HiddenDim implements TGNN.
func (m *GraphMixer) HiddenDim() int { return m.cfg.HiddenDim }

// Params implements TGNN.
func (m *GraphMixer) Params() []*autograd.Var {
	return nn.CollectParams(m.tokenIn, m.mixer, m.readout)
}

// Forward implements TGNN (Eqs. 8–9).
func (m *GraphMixer) Forward(g *autograd.Graph, mb *MiniBatch) (*autograd.Var, *CoTrainInfo) {
	if err := mb.Validate(); err != nil {
		panic(err)
	}
	if len(mb.Layers) != 1 {
		panic("models: GraphMixer is single-layer")
	}
	block := mb.Layers[0]
	t, n := block.NumTargets, block.Budget
	h := g.Const(mb.LeafFeat)
	hT, hN := splitTargetsNbrs(g, h, t, n)

	// Fixed time encoding of each neighbor's Δt (Eq. 8), computed outside
	// the graph since it carries no parameters; the buffer is graph-lifetime
	// arena scratch.
	phi := g.Scratch(t*n, m.cfg.TimeDim)
	for i := 0; i < t*n; i++ {
		m.timeEnc.Encode(phi.Row(i), block.DeltaT.Data[i])
	}

	tokens := g.ConcatCols(hN, g.Const(block.EdgeFeat), g.Const(phi))
	tokens = g.MulColVec(m.tokenIn.Apply(g, tokens), block.MaskCol) // zero padding
	mixed := m.mixer.Apply(g, tokens)
	mixed = g.MulColVec(mixed, block.MaskCol)
	mean := g.GroupMean(mixed, n)
	out := g.GELU(m.readout.Apply(g, g.ConcatCols(mean, hT)))

	info := &CoTrainInfo{Budget: n, Out: out, Tokens: mixed}
	return out, info
}

var _ TGNN = (*GraphMixer)(nil)
