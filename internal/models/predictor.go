package models

import (
	"taser/internal/autograd"
	"taser/internal/mathx"
	"taser/internal/nn"
)

// EdgePredictor scores a (source, destination) embedding pair for dynamic
// link prediction: logit = MLP([h_u ‖ h_v]). Positive and negative edges
// flow through the same decoder; BCE over the logits trains it (§II, §III-A).
type EdgePredictor struct {
	dim int // embedding width d (retained so Clone can rebuild the MLP)
	mlp *nn.MLP
}

// NewEdgePredictor builds the decoder over embeddings of width d.
func NewEdgePredictor(d int, rng *mathx.RNG) *EdgePredictor {
	return &EdgePredictor{dim: d, mlp: nn.NewMLP(2*d, d, 1, rng)}
}

// Score returns B×1 logits for B (src, dst) embedding row pairs.
func (p *EdgePredictor) Score(g *autograd.Graph, src, dst *autograd.Var) *autograd.Var {
	return p.mlp.Apply(g, g.ConcatCols(src, dst))
}

// ScoreGathered scores pairs taken from one embedding matrix by row index:
// pair i is (emb[srcIdx[i]], emb[dstIdx[i]]). This is how the training loop
// scores positives (root u vs root v) and negatives (root u vs root v′)
// from a single forward pass.
func (p *EdgePredictor) ScoreGathered(g *autograd.Graph, emb *autograd.Var, srcIdx, dstIdx []int32) *autograd.Var {
	return p.Score(g, g.GatherRows(emb, srcIdx), g.GatherRows(emb, dstIdx))
}

// Params implements nn.Module.
func (p *EdgePredictor) Params() []*autograd.Var { return p.mlp.Params() }

var _ nn.Module = (*EdgePredictor)(nil)
