package models

import (
	"math"

	"taser/internal/autograd"
	"taser/internal/mathx"
	"taser/internal/nn"
)

// TGATConfig configures the TGAT backbone.
type TGATConfig struct {
	NodeDim   int // raw node-feature width (0 when the dataset has none)
	EdgeDim   int // raw edge-feature width (0 when the dataset has none)
	HiddenDim int // embedding width d
	TimeDim   int // time-encoding width dT
	Layers    int // hop count (paper default: 2)
	Budget    int // supporting neighbors per hop (paper default: 10)
}

// tgatLayer holds one hop's attention parameters (Eqs. 4–7).
type tgatLayer struct {
	timeEnc *LearnableTimeEnc
	wq      *nn.Linear // (inDim+dT) → d
	wk      *nn.Linear // (inDim+dE+dT) → d
	wv      *nn.Linear // (inDim+dE+dT) → d
	out     *nn.Linear // (d+inDim) → d, the post-attention FFN
}

// TGAT is the 2-layer attention TGNN of Xu et al. (ICLR 2020), the stronger
// of the paper's two backbones for multi-hop aggregation.
type TGAT struct {
	cfg    TGATConfig
	layers []*tgatLayer
}

// NewTGAT builds the model.
func NewTGAT(cfg TGATConfig, rng *mathx.RNG) *TGAT {
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	m := &TGAT{cfg: cfg}
	inDim := cfg.NodeDim
	for l := 0; l < cfg.Layers; l++ {
		m.layers = append(m.layers, &tgatLayer{
			timeEnc: NewLearnableTimeEnc(cfg.TimeDim, rng),
			wq:      nn.NewLinear(inDim+cfg.TimeDim, cfg.HiddenDim, rng),
			wk:      nn.NewLinear(inDim+cfg.EdgeDim+cfg.TimeDim, cfg.HiddenDim, rng),
			wv:      nn.NewLinear(inDim+cfg.EdgeDim+cfg.TimeDim, cfg.HiddenDim, rng),
			out:     nn.NewLinear(cfg.HiddenDim+inDim, cfg.HiddenDim, rng),
		})
		inDim = cfg.HiddenDim
	}
	return m
}

// NumLayers implements TGNN.
func (m *TGAT) NumLayers() int { return m.cfg.Layers }

// HiddenDim implements TGNN.
func (m *TGAT) HiddenDim() int { return m.cfg.HiddenDim }

// Params implements TGNN.
func (m *TGAT) Params() []*autograd.Var {
	var out []*autograd.Var
	for _, l := range m.layers {
		out = append(out, nn.CollectParams(l.timeEnc, l.wq, l.wk, l.wv, l.out)...)
	}
	return out
}

// splitTargetsNbrs gathers the first t rows (targets) and remaining t·n rows
// (flattened neighbors) of h as two Vars. Index storage comes from the
// graph's arena (the tape borrows it until Reset).
func splitTargetsNbrs(g *autograd.Graph, h *autograd.Var, t, n int) (*autograd.Var, *autograd.Var) {
	idxT := g.Ints(t)
	for i := range idxT {
		idxT[i] = int32(i)
	}
	idxN := g.Ints(t * n)
	for i := range idxN {
		idxN[i] = int32(t + i)
	}
	return g.GatherRows(h, idxT), g.GatherRows(h, idxN)
}

// Forward implements TGNN (Algorithm: Eqs. 1–2 with the combiner of Eq. 7).
func (m *TGAT) Forward(g *autograd.Graph, mb *MiniBatch) (*autograd.Var, *CoTrainInfo) {
	if err := mb.Validate(); err != nil {
		panic(err)
	}
	if len(mb.Layers) != m.cfg.Layers {
		panic("models: TGAT minibatch layer count mismatch")
	}
	h := g.Const(mb.LeafFeat)
	info := &CoTrainInfo{Budget: mb.Layers[len(mb.Layers)-1].Budget}
	for k, block := range mb.Layers {
		layer := m.layers[k]
		t, n := block.NumTargets, block.Budget
		hT, hN := splitTargetsNbrs(g, h, t, n)

		// Messages m_u = { h_u ‖ x_uvt ‖ Φ(Δt) } (Eq. 1).
		phi := layer.timeEnc.Encode(g, block.DeltaT)
		msg := g.ConcatCols(hN, g.Const(block.EdgeFeat), phi)

		// Query from the target itself with Φ(0) (Eq. 4).
		q := layer.wq.Apply(g, g.ConcatCols(hT, layer.timeEnc.EncodeZeros(g, t)))
		keys := layer.wk.Apply(g, msg)
		vals := layer.wv.Apply(g, msg)

		// Scaled dot-product attention within each neighborhood (Eq. 7),
		// with padding masked out before and after the softmax.
		scores := g.Scale(g.GroupedScore(q, keys, n), 1/math.Sqrt(float64(n)))
		scores = g.Add(scores, g.Const(block.MaskBias))
		attn := g.SoftmaxRows(scores)
		attn = g.Mul(attn, g.Const(block.Mask))
		agg := g.GroupedWeightedSum(attn, vals, n)

		// Post-attention FFN combining with the target's own state.
		h = g.GELU(layer.out.Apply(g, g.ConcatCols(agg, hT)))

		if k == len(mb.Layers)-1 {
			info.Attn, info.Scores, info.Vals = attn, scores, vals
		}
	}
	info.Out = h
	return h, info
}

var _ TGNN = (*TGAT)(nil)
