package models

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"taser/internal/tensor"
)

// Binary weight-set format (little-endian), the payload checkpoint files
// carry so a recovered engine serves exactly the weight version it crashed
// with (internal/wal, DESIGN.md §9):
//
//	uint32  magic "TWST"
//	uint64  version
//	uint32  tensor count
//	per tensor: uint32 rows · uint32 cols · rows×cols float64 (IEEE bits)
//	uint32  CRC32C over everything above
//
// Encoding float64 bit patterns verbatim is what makes the crash-equivalence
// guarantee bitwise rather than approximate: a decoded set scores requests
// identically to the set that was captured.
const weightsMagic = 0x54535754 // "TWST"

var weightsCRCTable = crc32.MakeTable(crc32.Castagnoli)

// AppendBinary appends the set's checksummed binary encoding to buf and
// returns the extended slice.
func (w *WeightSet) AppendBinary(buf []byte) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, weightsMagic)
	buf = binary.LittleEndian.AppendUint64(buf, w.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.Params)))
	for _, p := range w.Params {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Cols))
		for _, v := range p.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], weightsCRCTable))
}

// DecodeWeightSet parses exactly one encoded set from data, verifying the
// trailing checksum before trusting any field; a corrupted payload is
// rejected, never partially loaded. Returns the set and the bytes consumed.
func DecodeWeightSet(data []byte) (*WeightSet, int, error) {
	const headerLen = 16 // magic + version + count
	if len(data) < headerLen+4 {
		return nil, 0, fmt.Errorf("models: weight payload truncated (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != weightsMagic {
		return nil, 0, fmt.Errorf("models: weight payload has bad magic")
	}
	count := int(binary.LittleEndian.Uint32(data[12:]))
	// First pass: walk the tensor headers to find the payload extent, then
	// checksum before decoding values.
	off := headerLen
	for i := 0; i < count; i++ {
		if off+8 > len(data) {
			return nil, 0, fmt.Errorf("models: weight payload truncated at tensor %d header", i)
		}
		rows := int64(binary.LittleEndian.Uint32(data[off:]))
		cols := int64(binary.LittleEndian.Uint32(data[off+4:]))
		// Bound each dimension before multiplying: corrupted dimensions must
		// not overflow the product (even int64 can wrap for two uint32s) and
		// slip a negative offset past the bounds check.
		max := int64(len(data)-off) / 8
		if rows > max || cols > max || rows*cols > max {
			return nil, 0, fmt.Errorf("models: weight payload tensor %d shape %dx%d exceeds payload", i, rows, cols)
		}
		off += 8 + 8*int(rows*cols)
	}
	if off+4 > len(data) {
		return nil, 0, fmt.Errorf("models: weight payload truncated before checksum")
	}
	want := binary.LittleEndian.Uint32(data[off:])
	if crc32.Checksum(data[:off], weightsCRCTable) != want {
		return nil, 0, fmt.Errorf("models: weight payload checksum mismatch")
	}
	w := &WeightSet{
		Version: binary.LittleEndian.Uint64(data[4:]),
		Params:  make([]*tensor.Matrix, 0, count),
	}
	p := headerLen
	for i := 0; i < count; i++ {
		rows := int(binary.LittleEndian.Uint32(data[p:]))
		cols := int(binary.LittleEndian.Uint32(data[p+4:]))
		p += 8
		m := tensor.New(rows, cols)
		for j := range m.Data {
			m.Data[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[p:]))
			p += 8
		}
		w.Params = append(w.Params, m)
	}
	return w, off + 4, nil
}
