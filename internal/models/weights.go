package models

import (
	"fmt"

	"taser/internal/mathx"
	"taser/internal/nn"
	"taser/internal/tensor"
)

// WeightSet is one immutable, versioned snapshot of a model's parameters:
// the flat Params() tensors of a (TGNN, EdgePredictor) pair — or any other
// module list — deep-copied at capture time. A WeightSet is never mutated
// after CaptureWeights returns, so any number of goroutines may share one;
// the online fine-tuner publishes them into the serving engine through an
// atomic pointer, and the serving scheduler applies them between
// micro-batches (serve.Engine.PublishWeights, DESIGN.md §8).
type WeightSet struct {
	Version uint64
	Params  []*tensor.Matrix
}

// CaptureWeights deep-copies the current parameter values of mods into a
// fresh WeightSet tagged with version. Capture order follows the modules'
// Params() order, which is deterministic per architecture — LoadInto relies
// on the same ordering on the receiving side.
func CaptureWeights(version uint64, mods ...nn.Module) *WeightSet {
	w := &WeightSet{Version: version}
	for _, m := range mods {
		for _, p := range m.Params() {
			w.Params = append(w.Params, p.Val.Clone())
		}
	}
	return w
}

// Clone returns an independent deep copy of the set, same version. Used
// when one captured master fans out to engines that may each quantize (and
// therefore must not share) their stored copy.
func (w *WeightSet) Clone() *WeightSet {
	c := &WeightSet{Version: w.Version, Params: make([]*tensor.Matrix, len(w.Params))}
	for i, p := range w.Params {
		c.Params[i] = p.Clone()
	}
	return c
}

// LoadInto copies the snapshot's values into the parameters of mods
// (gradients are untouched). The module list must present the same
// parameter count and shapes the set was captured from.
func (w *WeightSet) LoadInto(mods ...nn.Module) error {
	i := 0
	for _, m := range mods {
		for _, p := range m.Params() {
			if i >= len(w.Params) {
				return fmt.Errorf("models: weight set v%d has %d tensors, modules expect more", w.Version, len(w.Params))
			}
			src := p.Val
			if !src.SameShape(w.Params[i]) {
				return fmt.Errorf("models: weight set v%d tensor %d is %dx%d, parameter is %dx%d",
					w.Version, i, w.Params[i].Rows, w.Params[i].Cols, src.Rows, src.Cols)
			}
			copy(src.Data, w.Params[i].Data)
			i++
		}
	}
	if i != len(w.Params) {
		return fmt.Errorf("models: weight set v%d has %d tensors, modules consumed %d", w.Version, len(w.Params), i)
	}
	return nil
}

// Matches reports whether the snapshot is shape-compatible with mods,
// without writing anything — the cheap validation an engine runs at
// publication time before accepting a set for a later swap.
func (w *WeightSet) Matches(mods ...nn.Module) error {
	i := 0
	for _, m := range mods {
		for _, p := range m.Params() {
			if i >= len(w.Params) || !p.Val.SameShape(w.Params[i]) {
				return fmt.Errorf("models: weight set v%d does not match module parameters at tensor %d", w.Version, i)
			}
			i++
		}
	}
	if i != len(w.Params) {
		return fmt.Errorf("models: weight set v%d carries %d extra tensors", w.Version, len(w.Params)-i)
	}
	return nil
}

// copyParams copies src's parameter values into dst's, panicking on any
// architecture mismatch (clones of the same config can never mismatch).
func copyParams(dst, src nn.Module) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic(fmt.Sprintf("models: clone has %d params, source %d", len(dp), len(sp)))
	}
	for i := range dp {
		dp[i].Val.SameShapeOrPanic(sp[i].Val, "clone")
		copy(dp[i].Val.Data, sp[i].Val.Data)
	}
}

// Clone returns an independent deep copy of the model: same architecture,
// same current parameter values, fresh gradient storage. Implements TGNN.
func (m *TGAT) Clone() TGNN {
	c := NewTGAT(m.cfg, mathx.NewRNG(1))
	copyParams(c, m)
	return c
}

// Clone returns an independent deep copy of the model. Implements TGNN.
func (m *GraphMixer) Clone() TGNN {
	c := NewGraphMixer(m.cfg, mathx.NewRNG(1))
	copyParams(c, m)
	return c
}

// Clone returns an independent deep copy of the decoder.
func (p *EdgePredictor) Clone() *EdgePredictor {
	c := NewEdgePredictor(p.dim, mathx.NewRNG(1))
	copyParams(c, p)
	return c
}
