package overload

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func testGate(t *testing.T, capacity, maxQueue int) *Gate {
	t.Helper()
	cfg, err := Config{MaxQueue: maxQueue, Capacity: capacity}.Normalize(8, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return NewGate(cfg)
}

// waitForQueued polls until lane has n queued waiters (goroutine enqueue
// order is not otherwise observable).
func waitForQueued(t *testing.T, g *Gate, lane Lane, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g.Stats().Lanes[lane].Queued == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lane %v never reached %d queued (have %d)", lane, n, g.Stats().Lanes[lane].Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGateFastPathWithinCapacity(t *testing.T) {
	g := testGate(t, 2, 4)
	if err := g.Enter(LanePredict); err != nil {
		t.Fatalf("Enter 1: %v", err)
	}
	if err := g.Enter(LaneIngest); err != nil {
		t.Fatalf("Enter 2: %v", err)
	}
	st := g.Stats()
	if st.InService != 2 || st.Lanes[LanePredict].InService != 1 || st.Lanes[LaneIngest].InService != 1 {
		t.Fatalf("in-service accounting off: %+v", st)
	}
	g.Leave(LanePredict)
	g.Leave(LaneIngest)
	if st := g.Stats(); st.InService != 0 {
		t.Fatalf("slots not released: %+v", st)
	}
	if st := g.Stats(); st.Lanes[LanePredict].Admitted != 1 || st.Lanes[LaneIngest].Admitted != 1 {
		t.Fatalf("admission counters off: %+v", g.Stats())
	}
}

func TestGateShedsBeyondQueue(t *testing.T) {
	g := testGate(t, 1, 2)
	if err := g.Enter(LanePredict); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Enter(LanePredict); err != nil {
				t.Errorf("queued Enter: %v", err)
				return
			}
			g.Leave(LanePredict)
		}()
	}
	waitForQueued(t, g, LanePredict, 2)

	err := g.Enter(LanePredict)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("full-queue Enter = %v, want ErrOverload", err)
	}
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("shed error is %T, want *RejectedError", err)
	}
	if rej.Lane != LanePredict || rej.Depth != 2 {
		t.Fatalf("rejection = %+v, want lane predict depth 2", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want positive", rej.RetryAfter)
	}
	if got := g.Stats().Lanes[LanePredict].Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	g.Leave(LanePredict) // cascade: both waiters get the slot in turn
	wg.Wait()
	if st := g.Stats(); st.InService != 0 || st.Lanes[LanePredict].Queued != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestGateWeightedHandoffStarvationFreedom floods the predict lane while a
// few low-lane waiters queue behind it, then drains the gate one handoff at
// a time and checks the smooth-WRR guarantee: with weights {predict 8,
// low 1} active (total 9), the low lane is served at least once per 9
// consecutive handoffs — it cannot be starved by the flood.
func TestGateWeightedHandoffStarvationFreedom(t *testing.T) {
	cfg, err := Config{MaxQueue: 64, Capacity: 1}.Normalize(8, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	g := NewGate(cfg)
	if err := g.Enter(LanePredict); err != nil {
		t.Fatalf("holder Enter: %v", err)
	}

	const preds, lows = 40, 4
	var mu sync.Mutex
	var order []Lane
	var wg sync.WaitGroup
	spawn := func(lane Lane, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := g.Enter(lane); err != nil {
					t.Errorf("Enter(%v): %v", lane, err)
					return
				}
				mu.Lock()
				order = append(order, lane)
				mu.Unlock()
				g.Leave(lane)
			}()
		}
	}
	spawn(LanePredict, preds)
	waitForQueued(t, g, LanePredict, preds)
	spawn(LaneLow, lows)
	waitForQueued(t, g, LaneLow, lows)

	g.Leave(LanePredict) // start the handoff cascade
	wg.Wait()

	if len(order) != preds+lows {
		t.Fatalf("served %d waiters, want %d", len(order), preds+lows)
	}
	// Starvation bound: while both lanes are backlogged, the gap between
	// consecutive low-lane services is at most totalWeight/lowWeight = 9.
	const bound = 9
	sinceLow := 0
	lowsSeen := 0
	for i, l := range order {
		if l == LaneLow {
			lowsSeen++
			sinceLow = 0
			continue
		}
		sinceLow++
		if lowsSeen < lows && sinceLow > bound {
			t.Fatalf("low lane starved: %d consecutive predict services at position %d (order %v)", sinceLow, i, order)
		}
	}
	if lowsSeen != lows {
		t.Fatalf("low lane served %d times, want %d", lowsSeen, lows)
	}
}

func TestGateCloseWakesWaiters(t *testing.T) {
	g := testGate(t, 1, 8)
	if err := g.Enter(LanePredict); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- g.Enter(LaneIngest) }()
	}
	waitForQueued(t, g, LaneIngest, 3)
	g.Close()
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, ErrGateClosed) {
			t.Fatalf("woken waiter got %v, want ErrGateClosed", err)
		}
	}
	// The pre-Close admission still leaves cleanly, and new entries bounce.
	g.Leave(LanePredict)
	if err := g.Enter(LanePredict); !errors.Is(err, ErrGateClosed) {
		t.Fatalf("post-Close Enter = %v, want ErrGateClosed", err)
	}
	g.Close() // idempotent
}

func TestGateRetryAfterScalesWithDepthAndServiceRate(t *testing.T) {
	g := testGate(t, 1, 8)
	g.mu.Lock()
	if got := g.retryAfterLocked(3); got != time.Second {
		t.Errorf("cold retryAfter = %v, want the 1s default", got)
	}
	g.svcEWMA = 0.05 // 20 completions/sec
	ra1 := g.retryAfterLocked(1)
	ra4 := g.retryAfterLocked(4)
	raHuge := g.retryAfterLocked(100000)
	g.mu.Unlock()
	if want := 100 * time.Millisecond; ra1 != want { // (1+1) × 50ms
		t.Errorf("retryAfter(depth 1) = %v, want %v", ra1, want)
	}
	if want := 250 * time.Millisecond; ra4 != want { // (4+1) × 50ms
		t.Errorf("retryAfter(depth 4) = %v, want %v", ra4, want)
	}
	if want := 30 * time.Second; raHuge != want {
		t.Errorf("retryAfter clamp = %v, want %v", raHuge, want)
	}
}

func TestConfigNormalize(t *testing.T) {
	base, baseWait := 32, 2*time.Millisecond
	t.Run("zero stays disabled", func(t *testing.T) {
		c, err := Config{}.Normalize(base, baseWait)
		if err != nil || c.Enabled() {
			t.Fatalf("zero config: err=%v enabled=%v", err, c.Enabled())
		}
	})
	t.Run("controller defaults", func(t *testing.T) {
		c, err := Config{TargetP99: 25 * time.Millisecond}.Normalize(base, baseWait)
		if err != nil {
			t.Fatal(err)
		}
		if c.Interval != 250*time.Millisecond || c.MaxBatchCap != 4*base || c.MinWait != baseWait/8 {
			t.Fatalf("controller defaults = %+v", c)
		}
		if c.AdmissionEnabled() {
			t.Fatal("TargetP99 alone must not enable admission")
		}
	})
	t.Run("admission defaults", func(t *testing.T) {
		c, err := Config{MaxQueue: 64}.Normalize(base, baseWait)
		if err != nil {
			t.Fatal(err)
		}
		if c.Capacity != 2*base || c.Weights != DefaultWeights {
			t.Fatalf("admission defaults = %+v", c)
		}
		if c.ControllerEnabled() {
			t.Fatal("MaxQueue alone must not enable the controller")
		}
	})
	bad := []Config{
		{TargetP99: -time.Second},
		{MaxQueue: -1},
		{Capacity: 16},                                       // admission knob without MaxQueue
		{Interval: time.Second},                              // controller knob without TargetP99
		{MaxQueue: 4, Interval: time.Second},                 // controller knob without TargetP99
		{TargetP99: time.Millisecond, MaxBatchCap: base / 2}, // cap below base
		{TargetP99: time.Millisecond, MinWait: 2 * baseWait}, // floor above base
		{MaxQueue: 4, Weights: [NumLanes]int{0, -1, 0}},      // negative weight
	}
	for i, c := range bad {
		if _, err := c.Normalize(base, baseWait); err == nil {
			t.Errorf("bad config %d (%+v) normalized without error", i, c)
		}
	}
}
