package overload

import (
	"fmt"
	"sync/atomic"
	"time"

	"taser/internal/stats"
)

// Decision is one controller step's outcome.
type Decision int

const (
	// DecisionHold left the effective values unchanged (p99 in the
	// comfort band, an empty sample window, or already pinned at a clamp).
	DecisionHold Decision = iota
	// DecisionTighten reacted to p99 above target: coalescing wait halved,
	// batch ceiling doubled (both clamped).
	DecisionTighten
	// DecisionRelax stepped additively back toward the configured base
	// after p99 dropped comfortably under target.
	DecisionRelax
)

// ControllerConfig parameterizes the AIMD law. Base values are the
// operator's static MaxBatch/MaxWait — where the controller starts and what
// it relaxes back to; BatchCap/WaitFloor are how far tightening may go.
type ControllerConfig struct {
	TargetP99 time.Duration
	BaseBatch int
	BatchCap  int // >= BaseBatch
	BaseWait  time.Duration
	WaitFloor time.Duration // in (0, BaseWait]

	// Sample copies the recent request-latency window (seconds) into dst and
	// returns it — the engine wires latencyRing.sample here. It must never
	// block the request path: a copy under the ring's lock, no sorting.
	Sample func(dst []float64) []float64
}

// Controller retunes the scheduler's effective MaxBatch/MaxWait against a
// p99 target with an AIMD law. The physics: under overload the batch is
// always full, so MaxWait no longer pays for coalescing — cutting it
// removes pure queueing delay — while a larger MaxBatch amortizes the
// per-flush fixed cost over more roots, raising throughput to drain the
// backlog. Both revert additively toward the operator's base once p99 is
// comfortably under target, so the steady state is the configured behavior,
// not the emergency one.
//
// MaxBatch/MaxWait are lock-free atomic reads — the scheduler loop reads
// them per request with no coordination. Tick is called by a single owner
// goroutine (the engine's control loop).
type Controller struct {
	cfg    ControllerConfig
	start  time.Time
	batch  atomic.Int64
	waitNs atomic.Int64

	tightened atomic.Uint64
	relaxed   atomic.Uint64
	held      atomic.Uint64

	buf []float64 // sample scratch, owned by the ticking goroutine
}

// NewController validates the config and starts at the base values.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.TargetP99 <= 0 {
		return nil, fmt.Errorf("overload: controller TargetP99 must be positive, got %v", cfg.TargetP99)
	}
	if cfg.BaseBatch <= 0 || cfg.BatchCap < cfg.BaseBatch {
		return nil, fmt.Errorf("overload: controller needs 0 < BaseBatch <= BatchCap, got %d/%d", cfg.BaseBatch, cfg.BatchCap)
	}
	if cfg.BaseWait <= 0 || cfg.WaitFloor <= 0 || cfg.WaitFloor > cfg.BaseWait {
		return nil, fmt.Errorf("overload: controller needs 0 < WaitFloor <= BaseWait, got %v/%v", cfg.WaitFloor, cfg.BaseWait)
	}
	if cfg.Sample == nil {
		return nil, fmt.Errorf("overload: controller Sample is required")
	}
	c := &Controller{cfg: cfg, start: time.Now()}
	c.batch.Store(int64(cfg.BaseBatch))
	c.waitNs.Store(int64(cfg.BaseWait))
	return c, nil
}

// MaxBatch returns the effective batch ceiling (lock-free).
func (c *Controller) MaxBatch() int { return int(c.batch.Load()) }

// MaxWait returns the effective coalescing wait (lock-free).
func (c *Controller) MaxWait() time.Duration { return time.Duration(c.waitNs.Load()) }

// Tick runs one control step: sample the latency window, compute p99, apply
// the AIMD law. An empty window holds — no evidence, no move.
func (c *Controller) Tick() Decision {
	c.buf = c.cfg.Sample(c.buf[:0])
	if len(c.buf) == 0 {
		c.held.Add(1)
		return DecisionHold
	}
	p99 := time.Duration(stats.Quantile(c.buf, 0.99) * float64(time.Second))
	return c.observe(p99)
}

// observe applies the law to one p99 observation (split from Tick so tests
// can drive synthetic trajectories).
func (c *Controller) observe(p99 time.Duration) Decision {
	b, w := c.batch.Load(), c.waitNs.Load()
	switch {
	case p99 > c.cfg.TargetP99:
		// Multiplicative tighten: halve the wait, double the batch ceiling.
		nb := min64(b*2, int64(c.cfg.BatchCap))
		nw := max64(w/2, int64(c.cfg.WaitFloor))
		if nb == b && nw == w {
			c.held.Add(1) // pinned at the clamps; nothing left to give
			return DecisionHold
		}
		c.batch.Store(nb)
		c.waitNs.Store(nw)
		c.tightened.Add(1)
		return DecisionTighten
	case p99 < c.cfg.TargetP99*3/4:
		// Additive relax toward the operator's base (never past it).
		nb := max64(b-max64(1, int64(c.cfg.BaseBatch/4)), int64(c.cfg.BaseBatch))
		nw := min64(w+max64(1, int64(c.cfg.BaseWait/8)), int64(c.cfg.BaseWait))
		if nb == b && nw == w {
			c.held.Add(1) // already at base
			return DecisionHold
		}
		c.batch.Store(nb)
		c.waitNs.Store(nw)
		c.relaxed.Add(1)
		return DecisionRelax
	default:
		// Comfort band [0.75×target, target]: close enough, don't oscillate.
		c.held.Add(1)
		return DecisionHold
	}
}

// ControllerStats is the controller's point-in-time summary.
type ControllerStats struct {
	TargetP99       time.Duration
	MaxBatch        int           // current effective batch ceiling
	MaxWait         time.Duration // current effective coalescing wait
	Tightened       uint64
	Relaxed         uint64
	Held            uint64
	DecisionsPerSec float64 // decision rate since the controller started
}

// Stats snapshots the controller.
func (c *Controller) Stats() ControllerStats {
	st := ControllerStats{
		TargetP99: c.cfg.TargetP99,
		MaxBatch:  c.MaxBatch(),
		MaxWait:   c.MaxWait(),
		Tightened: c.tightened.Load(),
		Relaxed:   c.relaxed.Load(),
		Held:      c.held.Load(),
	}
	if el := time.Since(c.start).Seconds(); el > 0 {
		st.DecisionsPerSec = float64(st.Tightened+st.Relaxed+st.Held) / el
	}
	return st
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
