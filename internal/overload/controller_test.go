package overload

import (
	"testing"
	"time"
)

func testController(t *testing.T, sample func([]float64) []float64) *Controller {
	t.Helper()
	if sample == nil {
		sample = func(dst []float64) []float64 { return dst }
	}
	c, err := NewController(ControllerConfig{
		TargetP99: 10 * time.Millisecond,
		BaseBatch: 8, BatchCap: 32,
		BaseWait: 2 * time.Millisecond, WaitFloor: 250 * time.Microsecond,
		Sample: sample,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return c
}

func TestControllerTightensMultiplicativelyAndClamps(t *testing.T) {
	c := testController(t, nil)
	over := 20 * time.Millisecond

	if d := c.observe(over); d != DecisionTighten {
		t.Fatalf("step 1 = %v, want tighten", d)
	}
	if c.MaxBatch() != 16 || c.MaxWait() != time.Millisecond {
		t.Fatalf("after step 1: batch=%d wait=%v", c.MaxBatch(), c.MaxWait())
	}
	if d := c.observe(over); d != DecisionTighten {
		t.Fatalf("step 2 = %v, want tighten", d)
	}
	if c.MaxBatch() != 32 || c.MaxWait() != 500*time.Microsecond {
		t.Fatalf("after step 2: batch=%d wait=%v", c.MaxBatch(), c.MaxWait())
	}
	// Batch is pinned at the cap; the wait still has room.
	if d := c.observe(over); d != DecisionTighten {
		t.Fatalf("step 3 = %v, want tighten", d)
	}
	if c.MaxBatch() != 32 || c.MaxWait() != 250*time.Microsecond {
		t.Fatalf("after step 3: batch=%d wait=%v", c.MaxBatch(), c.MaxWait())
	}
	// Fully pinned: further pressure is a hold, not counter churn.
	if d := c.observe(over); d != DecisionHold {
		t.Fatalf("pinned step = %v, want hold", d)
	}
	st := c.Stats()
	if st.Tightened != 3 || st.Held != 1 {
		t.Fatalf("decision counters = %+v", st)
	}
}

func TestControllerRelaxesAdditivelyToBase(t *testing.T) {
	c := testController(t, nil)
	for i := 0; i < 3; i++ {
		c.observe(time.Second) // drive to the clamps: batch 32, wait 250µs
	}
	calm := time.Millisecond // < 0.75 × target
	// Additive steps: batch −2 (base/4) per step, wait +250µs (base/8) per
	// step — the wait reaches base after 7 steps, the batch after 12.
	for i := 0; i < 12; i++ {
		if d := c.observe(calm); d != DecisionRelax {
			t.Fatalf("relax step %d = %v (batch=%d wait=%v)", i, d, c.MaxBatch(), c.MaxWait())
		}
	}
	if c.MaxBatch() != 8 || c.MaxWait() != 2*time.Millisecond {
		t.Fatalf("after relaxing: batch=%d wait=%v, want base 8/2ms", c.MaxBatch(), c.MaxWait())
	}
	// At base, calm traffic holds — the controller never undershoots the
	// operator's configuration.
	if d := c.observe(calm); d != DecisionHold {
		t.Fatalf("at-base step = %v, want hold", d)
	}
}

func TestControllerComfortBandHolds(t *testing.T) {
	c := testController(t, nil)
	// p99 in [0.75×target, target] neither tightens nor relaxes.
	for _, p99 := range []time.Duration{8 * time.Millisecond, 9 * time.Millisecond, 10 * time.Millisecond} {
		if d := c.observe(p99); d != DecisionHold {
			t.Fatalf("observe(%v) = %v, want hold", p99, d)
		}
	}
	if c.MaxBatch() != 8 || c.MaxWait() != 2*time.Millisecond {
		t.Fatalf("comfort band moved the values: batch=%d wait=%v", c.MaxBatch(), c.MaxWait())
	}
}

func TestControllerTickSamplesWindow(t *testing.T) {
	window := []float64{} // seconds
	c := testController(t, func(dst []float64) []float64 {
		return append(dst[:0], window...)
	})
	// Empty window: no evidence, no move.
	if d := c.Tick(); d != DecisionHold {
		t.Fatalf("empty-window Tick = %v, want hold", d)
	}
	// A window whose p99 breaches the 10ms target tightens.
	for i := 0; i < 100; i++ {
		window = append(window, 0.02)
	}
	if d := c.Tick(); d != DecisionTighten {
		t.Fatalf("hot-window Tick = %v, want tighten", d)
	}
	// A calm window relaxes back.
	window = window[:0]
	for i := 0; i < 100; i++ {
		window = append(window, 0.001)
	}
	if d := c.Tick(); d != DecisionRelax {
		t.Fatalf("calm-window Tick = %v, want relax", d)
	}
}

func TestNewControllerValidates(t *testing.T) {
	sample := func(dst []float64) []float64 { return dst }
	bad := []ControllerConfig{
		{BaseBatch: 8, BatchCap: 32, BaseWait: time.Millisecond, WaitFloor: time.Microsecond, Sample: sample},                                  // no target
		{TargetP99: time.Millisecond, BaseBatch: 8, BatchCap: 4, BaseWait: time.Millisecond, WaitFloor: time.Microsecond, Sample: sample},      // cap < base
		{TargetP99: time.Millisecond, BaseBatch: 8, BatchCap: 32, BaseWait: time.Millisecond, WaitFloor: 2 * time.Millisecond, Sample: sample}, // floor > base
		{TargetP99: time.Millisecond, BaseBatch: 8, BatchCap: 32, BaseWait: time.Millisecond, WaitFloor: time.Microsecond},                     // no sample
	}
	for i, cfg := range bad {
		if _, err := NewController(cfg); err == nil {
			t.Errorf("bad controller config %d accepted", i)
		}
	}
}
