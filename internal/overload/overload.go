// Package overload is the serving plane's overload control plane
// (DESIGN.md §14): it decides what happens when offered load exceeds what
// the engine can serve within its latency SLO. Instead of queueing without
// bound (closed-loop collapse: every request eventually served, none of
// them on time), the engine degrades deliberately, with two independent
// mechanisms that compose:
//
//   - A Gate (gate.go) bounds admission. Requests enter a shared in-service
//     capacity through per-lane bounded FIFO queues; when a lane's queue is
//     full the request is shed immediately with ErrOverload and a
//     Retry-After estimate, so clients back off instead of piling on.
//     Freed slots are handed off between lanes by smooth weighted
//     round-robin, which gives prediction priority over ingest (and both
//     priority over replication catch-up) while guaranteeing
//     starvation-freedom for every lane.
//
//   - A Controller (controller.go) retunes the micro-batching scheduler's
//     effective MaxBatch/MaxWait against a p99 target using the live
//     request-latency window: AIMD — tighten multiplicatively when p99
//     exceeds the target (halve the coalescing wait, double the batch
//     ceiling, both clamped), relax additively back toward the operator's
//     configured base when p99 is comfortably under it.
//
// Both are opt-in per serve.Config; the zero Config disables the subsystem
// entirely and the engine runs exactly its static-config path.
package overload

import (
	"errors"
	"fmt"
	"time"
)

// Lane is a priority class of admitted work. Lower-numbered lanes carry
// higher weight in the gate's weighted dequeue.
type Lane int

const (
	// LanePredict carries interactive serving requests (PredictLink, Embed)
	// — the latency-SLO'd traffic the other lanes must never starve.
	LanePredict Lane = iota
	// LaneIngest carries public stream writes (Ingest, Bootstrap).
	LaneIngest
	// LaneLow carries background work: replication apply/catch-up and any
	// fine-tune-driven writes. It yields to both foreground lanes but is
	// still guaranteed service (weighted round-robin, not strict priority).
	LaneLow
	// NumLanes sizes per-lane arrays.
	NumLanes
)

// String names the lane as it appears in /v1/stats.
func (l Lane) String() string {
	switch l {
	case LanePredict:
		return "predict"
	case LaneIngest:
		return "ingest"
	case LaneLow:
		return "low"
	default:
		return fmt.Sprintf("lane(%d)", int(l))
	}
}

// ErrOverload marks a request shed at admission: its lane's queue was full.
// The HTTP layer maps it to 429 Too Many Requests with a Retry-After header
// — retryable by construction, unlike the sticky 503 durability path.
var ErrOverload = errors.New("overload: admission queue full")

// ErrGateClosed marks an Enter (or a queued wait) terminated because the
// gate shut down; callers map it to their own closed-engine error.
var ErrGateClosed = errors.New("overload: gate closed")

// RejectedError is the concrete shed error: it unwraps to ErrOverload and
// carries the backoff estimate the HTTP layer serializes as Retry-After.
type RejectedError struct {
	Lane       Lane
	Depth      int           // waiters already queued in the lane when shed
	RetryAfter time.Duration // estimated time until the lane likely admits
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("overload: %s lane queue full (%d waiting); retry after %v",
		e.Lane, e.Depth, e.RetryAfter)
}

func (e *RejectedError) Unwrap() error { return ErrOverload }

// Config is the user-facing overload surface serve.Config embeds. The zero
// value disables the subsystem. TargetP99 > 0 enables the SLO controller;
// MaxQueue > 0 enables admission control — each works alone, together they
// are the full control plane.
type Config struct {
	// TargetP99 is the latency SLO the controller steers the scheduler's
	// effective MaxBatch/MaxWait toward (0 = no controller: static config).
	TargetP99 time.Duration
	// Interval is the controller's decision cadence (default 250ms).
	Interval time.Duration
	// MaxBatchCap bounds how far the controller may raise the effective
	// MaxBatch above the configured base (default 4× base).
	MaxBatchCap int
	// MinWait bounds how far the controller may cut the effective MaxWait
	// below the configured base (default base/8, floor 1µs).
	MinWait time.Duration

	// MaxQueue bounds each lane's admission queue; a request arriving at a
	// full lane is shed with ErrOverload (0 = no admission control).
	MaxQueue int
	// Capacity is the shared in-service concurrency the gate admits across
	// all lanes (default 2× the scheduler's base MaxBatch).
	Capacity int
	// Weights sets the lanes' shares in the weighted dequeue (zero value =
	// DefaultWeights). A lane with weight w is guaranteed a slot within
	// ceil(totalWeight/w) consecutive handoffs — starvation-free.
	Weights [NumLanes]int
}

// DefaultWeights is the lane share used when Config.Weights is zero:
// prediction 8, ingest 4, background 1.
var DefaultWeights = [NumLanes]int{8, 4, 1}

// ControllerEnabled reports whether the SLO feedback controller is on.
func (c Config) ControllerEnabled() bool { return c.TargetP99 > 0 }

// AdmissionEnabled reports whether bounded admission (the gate) is on.
func (c Config) AdmissionEnabled() bool { return c.MaxQueue > 0 }

// Enabled reports whether any part of the control plane is on.
func (c Config) Enabled() bool { return c.ControllerEnabled() || c.AdmissionEnabled() }

// Normalize validates and fills defaults against the scheduler's static
// base MaxBatch/MaxWait (the values the controller relaxes back to and the
// gate sizes its capacity from).
func (c Config) Normalize(baseBatch int, baseWait time.Duration) (Config, error) {
	if c.TargetP99 < 0 {
		return c, fmt.Errorf("overload: TargetP99 must not be negative, got %v", c.TargetP99)
	}
	if c.MaxQueue < 0 {
		return c, fmt.Errorf("overload: MaxQueue must not be negative, got %d", c.MaxQueue)
	}
	if c.Interval < 0 || c.MaxBatchCap < 0 || c.MinWait < 0 || c.Capacity < 0 {
		return c, fmt.Errorf("overload: Interval, MaxBatchCap, MinWait and Capacity must not be negative")
	}
	for l, w := range c.Weights {
		if w < 0 {
			return c, fmt.Errorf("overload: Weights[%v] must not be negative, got %d", Lane(l), w)
		}
	}
	if !c.Enabled() {
		if c.Interval != 0 || c.MaxBatchCap != 0 || c.MinWait != 0 || c.Capacity != 0 {
			return c, fmt.Errorf("overload: Interval/MaxBatchCap/MinWait/Capacity require TargetP99 or MaxQueue")
		}
		return c, nil
	}
	if c.ControllerEnabled() {
		if c.Interval == 0 {
			c.Interval = 250 * time.Millisecond
		}
		if c.MaxBatchCap == 0 {
			c.MaxBatchCap = 4 * baseBatch
		}
		if c.MaxBatchCap < baseBatch {
			return c, fmt.Errorf("overload: MaxBatchCap %d below the base MaxBatch %d", c.MaxBatchCap, baseBatch)
		}
		if c.MinWait == 0 {
			c.MinWait = baseWait / 8
			if c.MinWait < time.Microsecond {
				c.MinWait = time.Microsecond
			}
		}
		if c.MinWait > baseWait {
			return c, fmt.Errorf("overload: MinWait %v above the base MaxWait %v", c.MinWait, baseWait)
		}
	} else if c.Interval != 0 || c.MaxBatchCap != 0 || c.MinWait != 0 {
		return c, fmt.Errorf("overload: Interval/MaxBatchCap/MinWait require TargetP99")
	}
	if c.AdmissionEnabled() {
		if c.Capacity == 0 {
			c.Capacity = 2 * baseBatch
		}
		if c.Weights == ([NumLanes]int{}) {
			c.Weights = DefaultWeights
		}
		total := 0
		for _, w := range c.Weights {
			total += w
		}
		if total == 0 {
			return c, fmt.Errorf("overload: at least one lane weight must be positive")
		}
	} else if c.Capacity != 0 || c.Weights != ([NumLanes]int{}) {
		return c, fmt.Errorf("overload: Capacity/Weights require MaxQueue")
	}
	return c, nil
}
