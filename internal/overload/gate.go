package overload

import (
	"sync"
	"time"
)

// Gate is the bounded admission gate: a shared in-service capacity fed by
// per-lane bounded FIFO queues, with freed slots handed off between lanes by
// smooth weighted round-robin.
//
// Admission protocol: Enter blocks until a slot is granted, returns nil, and
// the caller must Leave(lane) exactly once when its work completes. When the
// lane's queue is full Enter fails immediately with a *RejectedError
// (unwrapping to ErrOverload) carrying a Retry-After estimate — shedding is
// O(1) and never blocks, so a flooded gate stays cheap exactly when it is
// busiest.
//
// Invariant: waiters exist only while every capacity slot is in service.
// Leave hands its slot directly to the chosen waiter (in-service count
// unchanged) rather than releasing and re-admitting, so a freed slot can
// never race past the queue to a newly arriving request.
//
// Fairness: each handoff runs one step of smooth weighted round-robin over
// the lanes with waiters (credit[l] += weight[l]; pick the max; subtract the
// active total from the winner). A continuously backlogged lane of weight w
// is therefore selected at least once in every ceil(totalWeight/w)
// consecutive handoffs — starvation-freedom, not just priority.
type Gate struct {
	mu     sync.Mutex
	cfg    Config // normalized: Capacity > 0, MaxQueue > 0
	closed bool

	inService [NumLanes]int
	totalIn   int
	queues    [NumLanes][]*waiter
	credit    [NumLanes]int // smooth-WRR state

	admitted [NumLanes]uint64
	shed     [NumLanes]uint64

	// Service-rate estimate for Retry-After: EWMA of the interval between
	// consecutive Leaves (completions), alpha 0.1.
	svcEWMA     float64 // seconds per completion; 0 until the second Leave
	lastLeave   time.Time
	completions uint64
}

// waiter is one queued Enter; ch (capacity 1) delivers nil on admission or a
// terminal error on Close.
type waiter struct {
	lane Lane
	ch   chan error
}

// NewGate builds a gate from a normalized Config (AdmissionEnabled must
// hold; Normalize fills Capacity and Weights).
func NewGate(cfg Config) *Gate {
	return &Gate{cfg: cfg}
}

// Enter admits the caller into lane, blocking while the gate is at capacity
// and the lane's queue has room. It returns nil on admission (the caller
// must Leave(lane) exactly once), a *RejectedError when the lane's queue is
// full, or ErrGateClosed when the gate shut down before or during the wait.
func (g *Gate) Enter(lane Lane) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrGateClosed
	}
	if g.totalIn < g.cfg.Capacity {
		// Fast path. The invariant guarantees no lane has waiters here, so
		// admitting directly cannot jump the queue.
		g.totalIn++
		g.inService[lane]++
		g.admitted[lane]++
		g.mu.Unlock()
		return nil
	}
	if len(g.queues[lane]) >= g.cfg.MaxQueue {
		depth := len(g.queues[lane])
		g.shed[lane]++
		ra := g.retryAfterLocked(depth)
		g.mu.Unlock()
		return &RejectedError{Lane: lane, Depth: depth, RetryAfter: ra}
	}
	w := &waiter{lane: lane, ch: make(chan error, 1)}
	g.queues[lane] = append(g.queues[lane], w)
	g.mu.Unlock()
	return <-w.ch
}

// Leave releases the caller's slot: the slot is handed to the next waiter
// chosen by weighted round-robin, or returned to the free pool when no lane
// has one. Safe after Close (requests admitted before shutdown still call
// it on their way out).
func (g *Gate) Leave(lane Lane) {
	g.mu.Lock()
	now := time.Now()
	if !g.lastLeave.IsZero() {
		iv := now.Sub(g.lastLeave).Seconds()
		if g.svcEWMA == 0 {
			g.svcEWMA = iv
		} else {
			g.svcEWMA += 0.1 * (iv - g.svcEWMA)
		}
	}
	g.lastLeave = now
	g.completions++
	g.inService[lane]--
	if w := g.dequeueLocked(); w != nil {
		g.inService[w.lane]++
		g.admitted[w.lane]++
		g.mu.Unlock()
		w.ch <- nil
		return
	}
	g.totalIn--
	g.mu.Unlock()
}

// dequeueLocked picks the next waiter by one smooth-WRR step over the lanes
// that have one (nil when none do).
func (g *Gate) dequeueLocked() *waiter {
	total := 0
	for l := Lane(0); l < NumLanes; l++ {
		if len(g.queues[l]) > 0 {
			total += g.cfg.Weights[l]
		}
	}
	if total == 0 {
		// No waiters — or only zero-weight lanes have them; drain those FIFO
		// so even a weightless lane cannot wedge.
		for l := Lane(0); l < NumLanes; l++ {
			if len(g.queues[l]) > 0 {
				return g.popLocked(l)
			}
		}
		return nil
	}
	best := Lane(-1)
	for l := Lane(0); l < NumLanes; l++ {
		if len(g.queues[l]) == 0 {
			continue
		}
		g.credit[l] += g.cfg.Weights[l]
		if best < 0 || g.credit[l] > g.credit[best] {
			best = l
		}
	}
	g.credit[best] -= total
	return g.popLocked(best)
}

func (g *Gate) popLocked(l Lane) *waiter {
	q := g.queues[l]
	w := q[0]
	q[0] = nil // do not retain the dequeued waiter through the backing array
	g.queues[l] = q[1:]
	return w
}

// retryAfterLocked estimates when the lane will likely admit again: the
// requests ahead of this one (depth, plus itself) times the observed
// inter-completion interval, clamped to a sane HTTP Retry-After range.
func (g *Gate) retryAfterLocked(depth int) time.Duration {
	if g.svcEWMA == 0 {
		return time.Second // nothing completed yet: generic backoff
	}
	ra := time.Duration(float64(depth+1) * g.svcEWMA * float64(time.Second))
	if ra < 10*time.Millisecond {
		ra = 10 * time.Millisecond
	}
	if ra > 30*time.Second {
		ra = 30 * time.Second
	}
	return ra
}

// Close shuts the gate down: every queued waiter is woken with
// ErrGateClosed and later Enters fail with it immediately. Requests already
// admitted are unaffected — they finish and Leave as usual. Safe to call
// multiple times.
func (g *Gate) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	var woken []*waiter
	for l := range g.queues {
		woken = append(woken, g.queues[l]...)
		g.queues[l] = nil
	}
	g.mu.Unlock()
	for _, w := range woken {
		w.ch <- ErrGateClosed
	}
}

// LaneStats is one lane's point-in-time admission summary.
type LaneStats struct {
	Queued    int    // waiters blocked in the lane right now
	InService int    // admitted through the lane and still in service
	Admitted  uint64 // total admissions
	Shed      uint64 // total rejections (ErrOverload)
}

// GateStats is the gate's point-in-time summary.
type GateStats struct {
	Capacity    int
	MaxQueue    int     // per-lane queue bound
	InService   int     // slots in use across all lanes
	ServiceRate float64 // completions/sec from the Retry-After EWMA (0 until measured)
	Lanes       [NumLanes]LaneStats
}

// Stats snapshots the gate.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GateStats{Capacity: g.cfg.Capacity, MaxQueue: g.cfg.MaxQueue, InService: g.totalIn}
	if g.svcEWMA > 0 {
		st.ServiceRate = 1 / g.svcEWMA
	}
	for l := Lane(0); l < NumLanes; l++ {
		st.Lanes[l] = LaneStats{
			Queued:    len(g.queues[l]),
			InService: g.inService[l],
			Admitted:  g.admitted[l],
			Shed:      g.shed[l],
		}
	}
	return st
}
