package cache

import "testing"

func TestFrequencyObserveCountsEquivalentToAccess(t *testing.T) {
	// Bulk observation must produce the same residency evolution and hit
	// statistics as per-access replay.
	countsE1 := []int64{5, 0, 3, 0, 9}
	countsE2 := []int64{0, 7, 3, 0, 9}

	replay := NewFrequency(5, 2, 0.7)
	bulk := NewFrequency(5, 2, 0.7)
	for epoch, counts := range [][]int64{countsE1, countsE2} {
		for id, c := range counts {
			for i := int64(0); i < c; i++ {
				replay.Access(int32(id))
			}
		}
		bulk.ObserveCounts(counts)
		replay.EndEpoch()
		bulk.EndEpoch()
		_ = epoch
	}
	if replay.HitRate() != bulk.HitRate() {
		t.Fatalf("hit rates diverge: replay %v bulk %v", replay.HitRate(), bulk.HitRate())
	}
	for id := int32(0); id < 5; id++ {
		_, a := replay.Lookup(id)
		_, b := bulk.Lookup(id)
		if a != b {
			t.Fatalf("residency diverges at id %d", id)
		}
	}
}

func TestOracleObserveCounts(t *testing.T) {
	o := NewOracle(1)
	counts := []int64{10, 5}
	o.Reveal(counts)
	hits, total := o.ObserveCounts(counts)
	if total != 15 || hits != 10 {
		t.Fatalf("hits=%d total=%d", hits, total)
	}
	if o.HitRate() != 10.0/15 {
		t.Fatalf("hit rate %v", o.HitRate())
	}
}

func TestOracleDominatesFrequencyOnCounts(t *testing.T) {
	// Property: for any per-epoch counts, the oracle's epoch hit count is ≥
	// the frequency policy's (it caches this epoch's true top-k).
	countSets := [][]int64{
		{9, 1, 0, 4, 4},
		{0, 8, 8, 0, 1},
		{3, 3, 3, 3, 3},
		{0, 0, 0, 0, 20},
	}
	freq := NewFrequency(5, 2, 0.7)
	oracle := NewOracle(2)
	for _, counts := range countSets {
		oracle.Reveal(counts)
		fh, _ := freq.ObserveCounts(counts)
		oh, _ := oracle.ObserveCounts(counts)
		if oh < fh {
			t.Fatalf("oracle (%d) must dominate frequency (%d) on %v", oh, fh, counts)
		}
		freq.EndEpoch()
	}
}
