package cache

// LRU is a per-access least-recently-used cache, the conventional baseline
// for the replacement-policy ablation. Unlike Frequency it mutates residency
// on every miss, which models the per-access maintenance cost TASER's
// epoch-granularity policy avoids (§III-D).
type LRU struct {
	counters
	capacity int
	slots    map[int32]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent
}

type lruNode struct {
	id         int32
	slot       int
	prev, next *lruNode
}

// NewLRU builds an LRU cache with the given capacity.
func NewLRU(capacity int) *LRU {
	return &LRU{capacity: capacity, slots: make(map[int32]*lruNode, capacity)}
}

// Capacity implements Policy.
func (l *LRU) Capacity() int { return l.capacity }

// Lookup implements Policy.
func (l *LRU) Lookup(id int32) (int, bool) {
	n, ok := l.slots[id]
	if !ok {
		return 0, false
	}
	return n.slot, true
}

// Access implements Policy. On a hit the row moves to the front; on a miss
// the least-recently-used row is evicted and its slot is immediately reused
// for id (the caller is expected to load the row, which is why LRU's
// maintenance traffic is charged per access).
func (l *LRU) Access(id int32) (int, bool) {
	if n, ok := l.slots[id]; ok {
		l.count(true)
		l.moveToFront(n)
		return n.slot, true
	}
	l.count(false)
	if l.capacity == 0 {
		return 0, false
	}
	var n *lruNode
	if len(l.slots) < l.capacity {
		n = &lruNode{id: id, slot: len(l.slots)}
	} else {
		n = l.tail
		l.unlink(n)
		delete(l.slots, n.id)
		n.id = id
	}
	l.slots[id] = n
	l.pushFront(n)
	return n.slot, false
}

// EndEpoch implements Policy; LRU has no epoch-boundary behavior.
func (l *LRU) EndEpoch() []int32 { return nil }

// Len reports the resident row count.
func (l *LRU) Len() int { return len(l.slots) }

func (l *LRU) moveToFront(n *lruNode) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

func (l *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if l.head == n {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if l.tail == n {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU) pushFront(n *lruNode) {
	n.next = l.head
	n.prev = nil
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}
