package cache

// Oracle is the clairvoyant cache of Fig. 3(b): before each epoch it is told
// the exact access counts the epoch will produce and caches the top-k. It
// upper-bounds any epoch-granularity replacement policy and is used to show
// the Frequency policy is near-optimal.
type Oracle struct {
	counters
	capacity int
	slots    map[int32]int
	free     []int
}

// NewOracle builds an oracle cache with the given capacity.
func NewOracle(capacity int) *Oracle {
	o := &Oracle{capacity: capacity, slots: make(map[int32]int, capacity)}
	for s := capacity - 1; s >= 0; s-- {
		o.free = append(o.free, s)
	}
	return o
}

// Capacity implements Policy.
func (o *Oracle) Capacity() int { return o.capacity }

// Lookup implements Policy.
func (o *Oracle) Lookup(id int32) (int, bool) {
	s, ok := o.slots[id]
	return s, ok
}

// Access implements Policy. The oracle learns nothing from accesses; it only
// tallies hits.
func (o *Oracle) Access(id int32) (int, bool) {
	s, ok := o.slots[id]
	o.count(ok)
	return s, ok
}

// EndEpoch implements Policy; the oracle changes residency only via Reveal.
func (o *Oracle) EndEpoch() []int32 { return nil }

// ObserveCounts tallies one epoch's access counts against the current
// residency in bulk (see Frequency.ObserveCounts).
func (o *Oracle) ObserveCounts(counts []int64) (hits, total int64) {
	for id, c := range counts {
		if c == 0 {
			continue
		}
		total += c
		if _, ok := o.slots[int32(id)]; ok {
			hits += c
		}
	}
	o.hits += hits
	o.misses += total - hits
	return hits, total
}

// Reveal installs the top-k of the upcoming epoch's access counts and
// returns the newly inserted ids (whose rows must be loaded).
func (o *Oracle) Reveal(futureCounts []int64) []int32 {
	if o.capacity == 0 {
		return nil
	}
	top := topK(futureCounts, o.capacity)
	inTop := make(map[int32]bool, len(top))
	for _, id := range top {
		inTop[id] = true
	}
	for id, slot := range o.slots {
		if !inTop[id] {
			delete(o.slots, id)
			o.free = append(o.free, slot)
		}
	}
	var inserted []int32
	for _, id := range top {
		if _, ok := o.slots[id]; ok {
			continue
		}
		if len(o.free) == 0 {
			break
		}
		slot := o.free[len(o.free)-1]
		o.free = o.free[:len(o.free)-1]
		o.slots[id] = slot
		inserted = append(inserted, id)
	}
	return inserted
}
