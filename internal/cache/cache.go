// Package cache implements the GPU feature-cache policies evaluated in the
// paper (§III-D, Algorithm 3, Fig. 3b):
//
//   - Frequency: TASER's dynamic cache. During an epoch it counts accesses
//     per feature row; at the epoch boundary, if the overlap between the
//     cached set and the top-k most frequently accessed rows falls below a
//     threshold ε, the cache contents are swapped for the top-k. The policy
//     costs O(|E|) per epoch — far cheaper than per-access probability
//     maintenance — and converges because Adam stabilizes the access
//     pattern.
//   - Oracle: the upper bound that knows next epoch's access frequencies in
//     advance (Fig. 3b's "Oracle Cache").
//   - LRU: a classic per-access recency policy, included as the ablation
//     baseline for the replacement-strategy design choice.
//
// A policy only decides *which* row ids are resident and in which slot; the
// actual feature bytes live in featstore.
package cache

import (
	"fmt"
	"sort"
)

// Policy is the interface feature stores use to consult and train a cache.
type Policy interface {
	// Access records a read of row id and reports whether it is resident,
	// along with its slot when it is.
	Access(id int32) (slot int, hit bool)
	// Lookup is Access without recording (used when refilling slots).
	Lookup(id int32) (slot int, hit bool)
	// EndEpoch applies the replacement policy. It returns the ids inserted
	// into the cache this round; their feature rows must be (re)loaded into
	// the slots reported by Lookup.
	EndEpoch() (inserted []int32)
	// Capacity is the number of resident rows.
	Capacity() int
	// HitRate reports hits/(hits+misses) since the last ResetStats.
	HitRate() float64
	// ResetStats zeroes the hit/miss counters (typically per epoch).
	ResetStats()
}

// counters implements shared hit/miss accounting.
type counters struct {
	hits, misses int64
}

func (c *counters) count(hit bool) {
	if hit {
		c.hits++
	} else {
		c.misses++
	}
}

// HitRate implements Policy.
func (c *counters) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// ResetStats implements Policy.
func (c *counters) ResetStats() { c.hits, c.misses = 0, 0 }

// topK returns the ids of the k largest counts (ties broken by lower id for
// determinism). It runs in O(n log n); n = |E| once per epoch is cheap
// relative to training (§III-D).
func topK(counts []int64, k int) []int32 {
	type pair struct {
		id int32
		c  int64
	}
	pairs := make([]pair, 0, len(counts))
	for id, c := range counts {
		if c > 0 {
			pairs = append(pairs, pair{int32(id), c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].c != pairs[j].c {
			return pairs[i].c > pairs[j].c
		}
		return pairs[i].id < pairs[j].id
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = pairs[i].id
	}
	return out
}

// Frequency is TASER's historical-frequency cache (Algorithm 3).
type Frequency struct {
	counters
	capacity int
	// Epsilon is the swap threshold as a fraction of capacity: the cache is
	// rebuilt when |cached ∩ topk| < ε·k.
	Epsilon float64
	// Decay scales the access counts at each epoch boundary: 0 keeps only
	// the previous epoch's pattern (Algorithm 3), 1 accumulates history.
	Decay float64

	counts []int64
	slots  map[int32]int
	free   []int
}

// NewFrequency builds a frequency cache over numRows feature rows with the
// given resident capacity. The cache starts empty (the paper seeds it with
// random rows; starting cold only delays warm-up by one epoch and keeps the
// policy deterministic).
func NewFrequency(numRows, capacity int, epsilon float64) *Frequency {
	if capacity < 0 || capacity > numRows {
		panic(fmt.Sprintf("cache: capacity %d out of range [0, %d]", capacity, numRows))
	}
	f := &Frequency{
		capacity: capacity,
		Epsilon:  epsilon,
		counts:   make([]int64, numRows),
		slots:    make(map[int32]int, capacity),
	}
	for s := capacity - 1; s >= 0; s-- {
		f.free = append(f.free, s)
	}
	return f
}

// Capacity implements Policy.
func (f *Frequency) Capacity() int { return f.capacity }

// Lookup implements Policy.
func (f *Frequency) Lookup(id int32) (int, bool) {
	s, ok := f.slots[id]
	return s, ok
}

// Access implements Policy: frequency is updated on every read (Algorithm 3
// line 6), residency is only changed at epoch boundaries.
func (f *Frequency) Access(id int32) (int, bool) {
	f.counts[id]++
	s, ok := f.slots[id]
	f.count(ok)
	return s, ok
}

// EndEpoch implements Policy (Algorithm 3 lines 8–10).
func (f *Frequency) EndEpoch() []int32 {
	if f.capacity == 0 {
		f.decayCounts()
		return nil
	}
	top := topK(f.counts, f.capacity)
	overlap := 0
	inTop := make(map[int32]bool, len(top))
	for _, id := range top {
		inTop[id] = true
		if _, ok := f.slots[id]; ok {
			overlap++
		}
	}
	defer f.decayCounts()
	if float64(overlap) >= f.Epsilon*float64(len(top)) && len(f.slots) > 0 {
		return nil // cached set is still fresh enough; skip the swap
	}
	// Swap: evict rows not in the top-k, then fill freed slots with the rest.
	var inserted []int32
	for id, slot := range f.slots {
		if !inTop[id] {
			delete(f.slots, id)
			f.free = append(f.free, slot)
		}
	}
	for _, id := range top {
		if _, ok := f.slots[id]; ok {
			continue
		}
		if len(f.free) == 0 {
			break
		}
		slot := f.free[len(f.free)-1]
		f.free = f.free[:len(f.free)-1]
		f.slots[id] = slot
		inserted = append(inserted, id)
	}
	return inserted
}

// ObserveCounts folds one epoch's access counts into the policy in bulk and
// reports how many of those accesses hit the current residency. Because
// residency is constant within an epoch, this is exactly equivalent to
// replaying the accesses one by one — the Fig. 3(b) harness uses it to
// simulate hit-rate curves from recorded per-epoch counts.
func (f *Frequency) ObserveCounts(counts []int64) (hits, total int64) {
	for id, c := range counts {
		if c == 0 {
			continue
		}
		f.counts[id] += c
		total += c
		if _, ok := f.slots[int32(id)]; ok {
			hits += c
		}
	}
	f.hits += hits
	f.misses += total - hits
	return hits, total
}

func (f *Frequency) decayCounts() {
	if f.Decay == 1 {
		return
	}
	if f.Decay == 0 {
		for i := range f.counts {
			f.counts[i] = 0
		}
		return
	}
	for i := range f.counts {
		f.counts[i] = int64(float64(f.counts[i]) * f.Decay)
	}
}
