package cache_test

import (
	"fmt"

	"taser/internal/cache"
)

// ExampleFrequency walks Algorithm 3: accesses train the policy during an
// epoch; the epoch boundary installs the top-k rows.
func ExampleFrequency() {
	pol := cache.NewFrequency(100, 2, 0.7)
	for i := 0; i < 5; i++ {
		pol.Access(7) // hot row
		pol.Access(9) // hot row
		pol.Access(int32(20 + i))
	}
	inserted := pol.EndEpoch()
	fmt.Println("resident after epoch:", inserted)
	_, hit := pol.Access(7)
	fmt.Println("hot row hits now:", hit)
	// Output:
	// resident after epoch: [7 9]
	// hot row hits now: true
}
