package cache

import (
	"testing"
	"testing/quick"

	"taser/internal/mathx"
)

func TestTopK(t *testing.T) {
	counts := []int64{5, 0, 9, 9, 1}
	got := topK(counts, 3)
	// 9s first (lower id wins ties), then 5.
	want := []int32{2, 3, 0}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("topK = %v", got)
		}
	}
	// Zero-count rows never enter the top-k.
	if len(topK([]int64{0, 0, 1}, 3)) != 1 {
		t.Fatal("topK must skip zero counts")
	}
}

func TestFrequencyColdStartThenWarm(t *testing.T) {
	f := NewFrequency(10, 3, 0.8)
	// Epoch 1: rows 1, 2, 3 hot. All misses (cache is cold).
	for i := 0; i < 5; i++ {
		for _, id := range []int32{1, 2, 3} {
			if _, hit := f.Access(id); hit {
				t.Fatal("cold cache cannot hit")
			}
		}
	}
	if f.HitRate() != 0 {
		t.Fatal("cold epoch hit rate must be 0")
	}
	inserted := f.EndEpoch()
	if len(inserted) != 3 {
		t.Fatalf("first EndEpoch must fill the cache, inserted %v", inserted)
	}
	f.ResetStats()
	// Epoch 2: same pattern → all hits.
	for _, id := range []int32{1, 2, 3} {
		if _, hit := f.Access(id); !hit {
			t.Fatalf("row %d should be resident", id)
		}
	}
	if f.HitRate() != 1 {
		t.Fatalf("warm hit rate %v", f.HitRate())
	}
}

func TestFrequencySwapOnlyBelowThreshold(t *testing.T) {
	f := NewFrequency(10, 2, 0.5) // swap when overlap < 1 of 2
	f.Access(1)
	f.Access(2)
	f.EndEpoch() // cache = {1, 2}
	// Epoch 2: rows 1 and 5 hot → overlap 1 ≥ ε·k = 1 → NO swap.
	f.Access(1)
	f.Access(5)
	if ins := f.EndEpoch(); ins != nil {
		t.Fatalf("overlap at threshold must not swap, inserted %v", ins)
	}
	// Epoch 3: rows 7, 8 hot → overlap 0 < 1 → swap.
	f.Access(7)
	f.Access(8)
	ins := f.EndEpoch()
	if len(ins) != 2 {
		t.Fatalf("swap expected, inserted %v", ins)
	}
	if _, hit := f.Lookup(7); !hit {
		t.Fatal("7 must be resident after swap")
	}
	if _, hit := f.Lookup(1); hit {
		t.Fatal("1 must be evicted")
	}
}

func TestFrequencySlotsAreStableAndDisjoint(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		f := NewFrequency(50, 8, 0.6)
		for epoch := 0; epoch < 5; epoch++ {
			for i := 0; i < 200; i++ {
				f.Access(int32(rng.Intn(50)))
			}
			f.EndEpoch()
			// Invariant: resident slots are unique and within capacity.
			seen := map[int]bool{}
			for id := int32(0); id < 50; id++ {
				if slot, ok := f.Lookup(id); ok {
					if slot < 0 || slot >= 8 || seen[slot] {
						return false
					}
					seen[slot] = true
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyDecayModes(t *testing.T) {
	// Decay 0 (default): only last epoch counts matter.
	f := NewFrequency(4, 1, 1.0)
	for i := 0; i < 100; i++ {
		f.Access(0)
	}
	f.EndEpoch() // cache = {0}
	f.Access(1)
	f.Access(1)
	ins := f.EndEpoch()
	if len(ins) != 1 || ins[0] != 1 {
		t.Fatalf("with zero decay the new epoch winner must replace: %v", ins)
	}
	// Decay 1: history accumulates, so 0 stays despite a quiet epoch.
	g := NewFrequency(4, 1, 1.0)
	g.Decay = 1
	for i := 0; i < 100; i++ {
		g.Access(0)
	}
	g.EndEpoch()
	g.Access(1)
	g.Access(1)
	if ins := g.EndEpoch(); ins != nil {
		t.Fatalf("with full history row 0 must stay resident: %v", ins)
	}
}

func TestFrequencyZeroCapacity(t *testing.T) {
	f := NewFrequency(5, 0, 0.5)
	if _, hit := f.Access(1); hit {
		t.Fatal("zero-capacity cache cannot hit")
	}
	if f.EndEpoch() != nil {
		t.Fatal("zero-capacity cache cannot insert")
	}
}

func TestFrequencyPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrequency(5, 6, 0.5)
}

func TestOracleKnowsFuture(t *testing.T) {
	o := NewOracle(2)
	future := make([]int64, 10)
	future[3] = 100
	future[7] = 50
	ins := o.Reveal(future)
	if len(ins) != 2 {
		t.Fatalf("inserted %v", ins)
	}
	for _, id := range []int32{3, 7} {
		if _, hit := o.Access(id); !hit {
			t.Fatalf("oracle must hit on predicted row %d", id)
		}
	}
	if _, hit := o.Access(1); hit {
		t.Fatal("unpredicted row must miss")
	}
	if o.HitRate() != 2.0/3 {
		t.Fatalf("hit rate %v", o.HitRate())
	}
}

func TestOracleRevealKeepsOverlap(t *testing.T) {
	o := NewOracle(2)
	f1 := []int64{9, 8, 0, 0}
	o.Reveal(f1) // cache {0, 1}
	f2 := []int64{9, 0, 7, 0}
	ins := o.Reveal(f2) // keep 0, swap 1→2
	if len(ins) != 1 || ins[0] != 2 {
		t.Fatalf("incremental reveal inserted %v", ins)
	}
	if _, ok := o.Lookup(0); !ok {
		t.Fatal("overlapping row must remain resident")
	}
}

func TestOracleBeatsFrequencyOnShiftingPattern(t *testing.T) {
	// When the hot set shifts every epoch, the oracle (which sees the future)
	// must achieve a hit rate at least as high as the historical policy.
	rng := mathx.NewRNG(9)
	const rows, cap = 100, 10
	freq := NewFrequency(rows, cap, 0.7)
	oracle := NewOracle(cap)
	var freqHits, oracleHits float64
	for epoch := 0; epoch < 10; epoch++ {
		hotBase := epoch * 7 % rows
		counts := make([]int64, rows)
		var accesses []int32
		for i := 0; i < 500; i++ {
			var id int32
			if rng.Float64() < 0.8 {
				id = int32((hotBase + rng.Intn(cap)) % rows)
			} else {
				id = int32(rng.Intn(rows))
			}
			accesses = append(accesses, id)
			counts[id]++
		}
		oracle.Reveal(counts)
		for _, id := range accesses {
			freq.Access(id)
			oracle.Access(id)
		}
		freq.EndEpoch()
	}
	freqHits = freq.HitRate()
	oracleHits = oracle.HitRate()
	if oracleHits < freqHits {
		t.Fatalf("oracle (%v) must dominate frequency (%v)", oracleHits, freqHits)
	}
	if oracleHits < 0.5 {
		t.Fatalf("oracle hit rate %v implausibly low", oracleHits)
	}
}

func TestFrequencyNearOracleOnStablePattern(t *testing.T) {
	// Fig. 3(b)'s claim: with a stable access pattern the historical policy
	// approaches the oracle. Skewed static distribution, several epochs.
	rng := mathx.NewRNG(10)
	const rows, cap = 200, 40
	weights := make([]float64, rows)
	for i := range weights {
		weights[i] = 1.0 / float64(i+1) // zipf-ish
	}
	alias := mathx.NewAlias(weights)
	freq := NewFrequency(rows, cap, 0.7)
	oracle := NewOracle(cap)
	var freqRate, oracleRate float64
	for epoch := 0; epoch < 6; epoch++ {
		counts := make([]int64, rows)
		var accesses []int32
		for i := 0; i < 3000; i++ {
			id := int32(alias.Draw(rng))
			accesses = append(accesses, id)
			counts[id]++
		}
		oracle.Reveal(counts)
		freq.ResetStats()
		oracle.ResetStats()
		for _, id := range accesses {
			freq.Access(id)
			oracle.Access(id)
		}
		freq.EndEpoch()
		freqRate = freq.HitRate()
		oracleRate = oracle.HitRate()
	}
	if oracleRate-freqRate > 0.05 {
		t.Fatalf("frequency policy (%v) should be within 5%% of oracle (%v) on stable patterns",
			freqRate, oracleRate)
	}
}

func TestLRUBasics(t *testing.T) {
	l := NewLRU(2)
	if _, hit := l.Access(1); hit {
		t.Fatal("first access must miss")
	}
	if _, hit := l.Access(1); !hit {
		t.Fatal("second access must hit")
	}
	l.Access(2)
	l.Access(3) // evicts 1 (LRU)
	if _, ok := l.Lookup(1); ok {
		t.Fatal("1 must be evicted")
	}
	if _, ok := l.Lookup(2); !ok {
		t.Fatal("2 must remain")
	}
	if l.Len() != 2 {
		t.Fatal("len")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	l := NewLRU(2)
	l.Access(1)
	l.Access(2)
	l.Access(1) // 1 becomes most recent
	l.Access(3) // evicts 2
	if _, ok := l.Lookup(2); ok {
		t.Fatal("2 must be evicted (1 was touched)")
	}
	if _, ok := l.Lookup(1); !ok {
		t.Fatal("1 must remain")
	}
}

func TestLRUSlotReuse(t *testing.T) {
	l := NewLRU(2)
	s1, _ := l.Access(1)
	s2, _ := l.Access(2)
	if s1 == s2 {
		t.Fatal("distinct rows need distinct slots")
	}
	l.Access(3) // evicts 1, reusing its slot
	s3, _ := l.Lookup(3)
	if s3 != s1 {
		t.Fatal("evicted slot must be reused")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	l := NewLRU(0)
	if _, hit := l.Access(1); hit {
		t.Fatal("zero-capacity LRU cannot hit")
	}
	if l.Len() != 0 {
		t.Fatal("zero-capacity LRU must stay empty")
	}
}

func TestLRUPropertyNeverExceedsCapacity(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		cap := 1 + int(seed%8)
		l := NewLRU(cap)
		for i := 0; i < 500; i++ {
			l.Access(int32(rng.Intn(30)))
		}
		return l.Len() <= cap
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyBeatsLRUOnScans(t *testing.T) {
	// A frequency policy resists one-off scan pollution; LRU does not.
	// Hot set of `cap` rows, plus a full scan of all rows each epoch.
	rng := mathx.NewRNG(11)
	const rows, cap = 300, 20
	freq := NewFrequency(rows, cap, 0.7)
	lru := NewLRU(cap)
	for epoch := 0; epoch < 5; epoch++ {
		if epoch == 1 { // measure after one warm-up epoch
			freq.ResetStats()
			lru.ResetStats()
		}
		for i := 0; i < 2000; i++ {
			id := int32(rng.Intn(cap)) // hot rows = 0..cap-1
			freq.Access(id)
			lru.Access(id)
			if i%4 == 0 { // interleaved scan traffic
				scan := int32((epoch*2000 + i) % rows)
				freq.Access(scan)
				lru.Access(scan)
			}
		}
		freq.EndEpoch()
	}
	if freq.HitRate() <= lru.HitRate() {
		t.Fatalf("frequency (%v) should beat LRU (%v) under scan pollution",
			freq.HitRate(), lru.HitRate())
	}
}

func TestHitRateEmpty(t *testing.T) {
	if NewLRU(2).HitRate() != 0 {
		t.Fatal("empty hit rate must be 0")
	}
}
