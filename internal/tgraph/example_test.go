package tgraph_test

import (
	"fmt"

	"taser/internal/tgraph"
)

// ExampleBuildTCSR shows the batch path: materialize a graph, build the
// T-CSR, and query a temporal neighborhood.
func ExampleBuildTCSR() {
	g, err := tgraph.NewGraph(3, []tgraph.Event{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 2},
		{Src: 1, Dst: 2, Time: 3},
	})
	if err != nil {
		panic(err)
	}
	tc := tgraph.BuildTCSR(g)
	nbr, ts, _ := tc.Neighborhood(0, 2.5)
	fmt.Println("neighbors of 0 before t=2.5:", nbr, "at times", ts)
	// Output: neighbors of 0 before t=2.5: [1 2] at times [1 2]
}

// ExampleBuilder shows the streaming path: ingest events one at a time and
// query the live neighborhood mid-stream.
func ExampleBuilder() {
	b := tgraph.NewBuilder(3)
	_ = b.Add(0, 1, 1)
	_ = b.Add(0, 2, 2)
	nbr, _, _ := b.Neighborhood(0, 10)
	fmt.Println("live neighborhood:", nbr)
	_, tc := b.Snapshot()
	fmt.Println("snapshot degree of 0:", tc.Degree(0))
	// Output:
	// live neighborhood: [1 2]
	// snapshot degree of 0: 2
}
