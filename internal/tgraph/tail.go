package tgraph

import "fmt"

// Tailer consumes a growing event stream exposed through successive Graph
// snapshots. Incremental snapshots (Builder.Snapshot) share the event list
// structurally — each publication's Events is a longer prefix view of the
// same append-only array — so tailing is O(1): the Tailer just remembers how
// far it has read and returns a view of the suffix.
//
// A Tailer is single-consumer state (the online fine-tuner owns one); it is
// not safe for concurrent use.
type Tailer struct {
	next int // index of the first unconsumed event
}

// Consumed reports how many events the tailer has read so far.
func (t *Tailer) Consumed() int { return t.next }

// Next returns the events appended since the previous call as an immutable
// capped view into g's event list, and marks them consumed. Successive
// snapshots must be prefixes of one another (the Builder contract); a
// shorter graph than already consumed is a stream restart and an error.
func (t *Tailer) Next(g *Graph) ([]Event, error) {
	n := len(g.Events)
	if n < t.next {
		return nil, fmt.Errorf("tgraph: tailer consumed %d events but snapshot has %d (stream restarted?)", t.next, n)
	}
	ev := g.Events[t.next:n:n]
	t.next = n
	return ev, nil
}

// NextWindow is Next with a recency cap: if more than window events arrived
// since the last call, the oldest are skipped and only the most recent
// window events are returned (skipped reports how many were dropped). This
// is the fine-tuner's replay policy — when the tuner falls behind the
// stream, it trains on the freshest window instead of replaying an
// unbounded backlog. window <= 0 means no cap.
func (t *Tailer) NextWindow(g *Graph, window int) (events []Event, skipped int, err error) {
	n := len(g.Events)
	if n < t.next {
		return nil, 0, fmt.Errorf("tgraph: tailer consumed %d events but snapshot has %d (stream restarted?)", t.next, n)
	}
	lo := t.next
	if window > 0 && n-lo > window {
		skipped = n - window - lo
		lo = n - window
	}
	ev := g.Events[lo:n:n]
	t.next = n
	return ev, skipped, nil
}
