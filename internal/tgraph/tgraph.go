// Package tgraph implements continuous-time dynamic graphs (CTDGs) as
// chronological event streams and the T-CSR storage layout from TGL
// (Zhou et al., VLDB 2022) that TASER's neighbor finders are built on.
//
// An event is one timestamped interaction (u, v, t) with an optional edge
// feature row identified by the event's index. The temporal neighborhood
// N(v, t) is the set of (u, t_u) with an event between v and u at t_u < t;
// T-CSR stores every node's incident events sorted by timestamp so that the
// neighborhood is a prefix of the node's adjacency slice, locatable with a
// single binary search.
package tgraph

import (
	"fmt"
	"sort"
)

// Event is one timestamped interaction. Idx doubles as the edge-feature row.
type Event struct {
	Src, Dst int32
	Time     float64
}

// Graph is a CTDG: a node count plus chronologically sorted events.
type Graph struct {
	NumNodes int
	Events   []Event // sorted by Time, ties broken by original order
}

// NewGraph validates and wraps events; they are sorted in place by time
// (stable, so simultaneous events keep their input order).
func NewGraph(numNodes int, events []Event) (*Graph, error) {
	for i, e := range events {
		if e.Src < 0 || int(e.Src) >= numNodes || e.Dst < 0 || int(e.Dst) >= numNodes {
			return nil, fmt.Errorf("tgraph: event %d endpoints (%d, %d) out of range [0, %d)",
				i, e.Src, e.Dst, numNodes)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return &Graph{NumNodes: numNodes, Events: events}, nil
}

// NumEvents returns the interaction count.
func (g *Graph) NumEvents() int { return len(g.Events) }

// Adjacency is the read contract every packed temporal-adjacency layout
// satisfies: the flat TCSR built in one batch pass, and the chunked
// AppendableTCSR that Builder.Snapshot publishes incrementally. Neighbor
// finders, serving snapshots and evaluation access packed graphs exclusively
// through this interface, so they are oblivious to how a snapshot was built —
// the correctness bar for incremental publication is that both layouts return
// bitwise-identical slices for the same event stream.
type Adjacency interface {
	// NumNodes returns the node count.
	NumNodes() int
	// Degree returns the total (lifetime) number of adjacency entries of v.
	Degree(v int32) int
	// Adj returns node v's full adjacency as three parallel slices (views),
	// sorted by timestamp. Callers must not mutate them.
	Adj(v int32) (nbr []int32, ts []float64, eid []int32)
	// Pivot returns |N(v, t)| via binary search.
	Pivot(v int32, tm float64) int
	// PivotLinear returns |N(v, t)| via a forward linear scan.
	PivotLinear(v int32, tm float64) int
}

// TCSR is the temporal CSR layout: for each node, its incident events
// (both directions of every interaction) sorted by timestamp.
type TCSR struct {
	Indptr []int64   // len NumNodes+1; node v owns entries [Indptr[v], Indptr[v+1])
	Nbr    []int32   // neighbor node id per entry
	Ts     []float64 // event timestamp per entry
	Eid    []int32   // originating event index (edge-feature row) per entry
}

var _ Adjacency = (*TCSR)(nil)

// searchPivot counts the entries of ts with timestamp strictly before tm by
// binary search — the per-block step of the GPU neighbor finder (Algorithm 2,
// line 5). Shared by every Adjacency implementation.
func searchPivot(ts []float64, tm float64) int {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < tm {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// scanPivot counts the entries of ts before tm by forward linear scan — the
// access pattern of the original Python neighbor finder in TGAT.
func scanPivot(ts []float64, tm float64) int {
	p := 0
	for p < len(ts) && ts[p] < tm {
		p++
	}
	return p
}

// BuildTCSR constructs the T-CSR from a graph. Every event (u, v, t)
// contributes an entry to both u's and v's adjacency (interactions are
// symmetric for neighborhood aggregation, as in TGL). Self-loops contribute
// a single entry.
func BuildTCSR(g *Graph) *TCSR {
	n := g.NumNodes
	deg := make([]int64, n)
	for _, e := range g.Events {
		deg[e.Src]++
		if e.Src != e.Dst {
			deg[e.Dst]++
		}
	}
	t := &TCSR{Indptr: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		t.Indptr[v+1] = t.Indptr[v] + deg[v]
	}
	total := t.Indptr[n]
	t.Nbr = make([]int32, total)
	t.Ts = make([]float64, total)
	t.Eid = make([]int32, total)
	cursor := make([]int64, n)
	copy(cursor, t.Indptr[:n])
	// Events are chronologically sorted, so appending in order keeps each
	// node's slice sorted by time with no extra sort pass.
	for i, e := range g.Events {
		c := cursor[e.Src]
		t.Nbr[c], t.Ts[c], t.Eid[c] = e.Dst, e.Time, int32(i)
		cursor[e.Src]++
		if e.Src != e.Dst {
			c = cursor[e.Dst]
			t.Nbr[c], t.Ts[c], t.Eid[c] = e.Src, e.Time, int32(i)
			cursor[e.Dst]++
		}
	}
	return t
}

// Degree returns the total (lifetime) number of adjacency entries of v.
func (t *TCSR) Degree(v int32) int {
	return int(t.Indptr[v+1] - t.Indptr[v])
}

// NumNodes returns the node count.
func (t *TCSR) NumNodes() int { return len(t.Indptr) - 1 }

// Adj returns node v's full adjacency as three parallel slices (views).
func (t *TCSR) Adj(v int32) (nbr []int32, ts []float64, eid []int32) {
	lo, hi := t.Indptr[v], t.Indptr[v+1]
	return t.Nbr[lo:hi], t.Ts[lo:hi], t.Eid[lo:hi]
}

// PivotLinear returns |N(v, t)|: the number of adjacency entries of v with
// timestamp strictly less than t, found by a forward linear scan. This is the
// access pattern of the original Python neighbor finder in TGAT.
func (t *TCSR) PivotLinear(v int32, tm float64) int {
	_, ts, _ := t.Adj(v)
	return scanPivot(ts, tm)
}

// Pivot returns |N(v, t)| via binary search — the per-block step of the GPU
// neighbor finder (Algorithm 2, line 5).
func (t *TCSR) Pivot(v int32, tm float64) int {
	_, ts, _ := t.Adj(v)
	return searchPivot(ts, tm)
}

// Neighborhood materializes N(v, t) (copies). Intended for tests and small
// tools; the samplers use Adj+Pivot views to stay allocation-free.
func (t *TCSR) Neighborhood(v int32, tm float64) (nbr []int32, ts []float64, eid []int32) {
	n, s, e := t.Adj(v)
	p := t.Pivot(v, tm)
	return append([]int32(nil), n[:p]...), append([]float64(nil), s[:p]...), append([]int32(nil), e[:p]...)
}
