package tgraph

import "fmt"

// Builder ingests a chronological event stream incrementally — the way
// dynamic graphs arrive in production (the paper's motivating deployments
// are streaming systems: fraud detection, recommendation). It maintains
// per-node growable adjacency so temporal neighborhoods are queryable while
// the stream is still open, and can snapshot into the packed T-CSR layout
// the high-throughput finders use.
type Builder struct {
	numNodes int
	events   []Event
	lastT    float64

	nbr [][]int32
	ts  [][]float64
	eid [][]int32
}

// NewBuilder creates a builder over a fixed node-id space.
func NewBuilder(numNodes int) *Builder {
	return &Builder{
		numNodes: numNodes,
		nbr:      make([][]int32, numNodes),
		ts:       make([][]float64, numNodes),
		eid:      make([][]int32, numNodes),
	}
}

// Add appends one interaction. Events must arrive in non-decreasing time
// order (the defining property of an event stream); violations error.
func (b *Builder) Add(src, dst int32, t float64) error {
	if src < 0 || int(src) >= b.numNodes || dst < 0 || int(dst) >= b.numNodes {
		return fmt.Errorf("tgraph: endpoints (%d, %d) out of range [0, %d)", src, dst, b.numNodes)
	}
	if t < b.lastT {
		return fmt.Errorf("tgraph: event at t=%v arrived after t=%v (stream must be chronological)", t, b.lastT)
	}
	b.lastT = t
	id := int32(len(b.events))
	b.events = append(b.events, Event{Src: src, Dst: dst, Time: t})
	b.nbr[src] = append(b.nbr[src], dst)
	b.ts[src] = append(b.ts[src], t)
	b.eid[src] = append(b.eid[src], id)
	if src != dst {
		b.nbr[dst] = append(b.nbr[dst], src)
		b.ts[dst] = append(b.ts[dst], t)
		b.eid[dst] = append(b.eid[dst], id)
	}
	return nil
}

// NumEvents reports the events ingested so far.
func (b *Builder) NumEvents() int { return len(b.events) }

// LastTime reports the stream watermark: the timestamp of the most recently
// ingested event (0 for an empty builder). Add accepts only events at or
// after this time, so callers that own the builder can surface the watermark
// in admission errors and staleness decisions.
func (b *Builder) LastTime() float64 { return b.lastT }

// Neighborhood returns N(v, t) views over the live adjacency (valid until
// the next Add touching v).
func (b *Builder) Neighborhood(v int32, t float64) (nbr []int32, ts []float64, eid []int32) {
	all := b.ts[v]
	lo, hi := 0, len(all)
	for lo < hi {
		mid := (lo + hi) / 2
		if all[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return b.nbr[v][:lo], b.ts[v][:lo], b.eid[v][:lo]
}

// Snapshot packs the current stream into an immutable Graph + T-CSR pair.
// The builder remains usable afterwards.
func (b *Builder) Snapshot() (*Graph, *TCSR) {
	events := append([]Event(nil), b.events...)
	g, err := NewGraph(b.numNodes, events)
	if err != nil {
		panic(err) // Add() validated every event
	}
	return g, BuildTCSR(g)
}
