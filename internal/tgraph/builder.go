package tgraph

import (
	"fmt"
	"math"
)

// Builder ingests a chronological event stream incrementally — the way
// dynamic graphs arrive in production (the paper's motivating deployments
// are streaming systems: fraud detection, recommendation). It maintains
// per-node growable adjacency so temporal neighborhoods are queryable while
// the stream is still open, and snapshots into the packed layout the
// high-throughput finders use.
//
// Snapshot publication is incremental: the per-node adjacency arrays are
// append-only, so each publication freezes fresh headers only for the node
// chunks touched since the previous one and shares every other chunk with
// the previous snapshot structurally (see AppendableTCSR). Publishing costs
// O(chunk table + touched chunks) instead of O(events), which is what keeps
// a long-running ingest path's total cost linear in the stream length rather
// than quadratic.
type Builder struct {
	numNodes int
	events   []Event
	lastT    float64 // meaningful only when len(events) > 0

	nbr [][]int32
	ts  [][]float64
	eid [][]int32

	// Incremental snapshot state: the previous publication's chunk table
	// (shared into the next one) and the chunks dirtied since.
	entries   int64
	snapped   [][]nodeAdj
	dirty     []bool  // per chunk
	dirtyList []int32 // dirty chunk ids, for O(touched) iteration
}

// NewBuilder creates a builder over a fixed node-id space.
func NewBuilder(numNodes int) *Builder {
	numChunks := (numNodes + adjChunkSize - 1) >> adjChunkBits
	b := &Builder{
		numNodes:  numNodes,
		nbr:       make([][]int32, numNodes),
		ts:        make([][]float64, numNodes),
		eid:       make([][]int32, numNodes),
		dirty:     make([]bool, numChunks),
		dirtyList: make([]int32, numChunks),
	}
	// Every chunk starts dirty so the first Snapshot freezes the full table.
	for c := range b.dirty {
		b.dirty[c] = true
		b.dirtyList[c] = int32(c)
	}
	return b
}

// Add appends one interaction. Events must arrive in non-decreasing time
// order (the defining property of an event stream); violations error. The
// first event establishes the watermark at any finite timestamp, including
// t ≤ 0; non-finite timestamps are rejected — NaN would slip past the
// chronology check (NaN < t is always false) and corrupt the sorted-ts
// invariant the pivot searches rely on, and ±Inf would collide with
// sentinel values downstream consumers reserve for "no events".
func (b *Builder) Add(src, dst int32, t float64) error {
	if err := b.Check(src, dst, t); err != nil {
		return err
	}
	b.lastT = t
	id := int32(len(b.events))
	b.events = append(b.events, Event{Src: src, Dst: dst, Time: t})
	b.nbr[src] = append(b.nbr[src], dst)
	b.ts[src] = append(b.ts[src], t)
	b.eid[src] = append(b.eid[src], id)
	b.entries++
	b.markDirty(src)
	if src != dst {
		b.nbr[dst] = append(b.nbr[dst], src)
		b.ts[dst] = append(b.ts[dst], t)
		b.eid[dst] = append(b.eid[dst], id)
		b.entries++
		b.markDirty(dst)
	}
	return nil
}

// Check reports whether Add would admit the event, without mutating the
// builder: endpoints in range, finite timestamp, chronological order. Callers
// that must perform a side effect between validation and admission (the
// serving engine WAL-logs an event before admitting it) use Check first so
// the side effect never fires for an event Add would then reject.
func (b *Builder) Check(src, dst int32, t float64) error {
	if src < 0 || int(src) >= b.numNodes || dst < 0 || int(dst) >= b.numNodes {
		return fmt.Errorf("tgraph: endpoints (%d, %d) out of range [0, %d)", src, dst, b.numNodes)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("tgraph: event timestamp %v is not finite", t)
	}
	if len(b.events) > 0 && t < b.lastT {
		return fmt.Errorf("tgraph: event at t=%v arrived after t=%v (stream must be chronological)", t, b.lastT)
	}
	return nil
}

// markDirty records that v's chunk must be re-frozen at the next Snapshot.
func (b *Builder) markDirty(v int32) {
	c := v >> adjChunkBits
	if !b.dirty[c] {
		b.dirty[c] = true
		b.dirtyList = append(b.dirtyList, c)
	}
}

// NumEvents reports the events ingested so far.
func (b *Builder) NumEvents() int { return len(b.events) }

// LastTime reports the stream watermark — the timestamp of the most recently
// ingested event — and whether one exists. ok is false for an empty builder,
// which is distinct from a real t=0 watermark: Add accepts any first
// timestamp (negative included), and only enforces chronology afterwards.
// Callers that own the builder surface the watermark in admission errors and
// staleness decisions.
func (b *Builder) LastTime() (t float64, ok bool) {
	return b.lastT, len(b.events) > 0
}

// Neighborhood returns N(v, t) views over the live adjacency (valid until
// the next Add touching v).
func (b *Builder) Neighborhood(v int32, t float64) (nbr []int32, ts []float64, eid []int32) {
	lo := searchPivot(b.ts[v], t)
	return b.nbr[v][:lo], b.ts[v][:lo], b.eid[v][:lo]
}

// Snapshot publishes the current stream as an immutable Graph + packed
// adjacency pair; the builder remains usable afterwards. The cost is
// proportional to the delta since the previous Snapshot, not the stream
// length: the event list and every untouched node's adjacency are shared
// structurally (Add only ever appends, so published prefixes are write-free
// — see AppendableTCSR for the immutability argument), and only the node
// chunks dirtied since the last publication are re-frozen.
func (b *Builder) Snapshot() (*Graph, *AppendableTCSR) {
	numChunks := len(b.dirty)
	chunks := make([][]nodeAdj, numChunks)
	copy(chunks, b.snapped)
	for _, c := range b.dirtyList {
		chunks[c] = b.freezeChunk(int(c))
		b.dirty[c] = false
	}
	b.dirtyList = b.dirtyList[:0]
	b.snapped = chunks

	// Add validated and ordered every event, so the stream prefix is exactly
	// what NewGraph's stable sort would produce — share it, don't copy it.
	// The full slice expression caps the view so a (misbehaving) reader
	// appending to Events cannot reach the builder's backing array.
	g := &Graph{NumNodes: b.numNodes, Events: b.events[:len(b.events):len(b.events)]}
	return g, &AppendableTCSR{numNodes: b.numNodes, numEntries: b.entries, chunks: chunks}
}

// freezeChunk packs the current adjacency headers of chunk c's nodes into a
// fresh immutable chunk.
func (b *Builder) freezeChunk(c int) []nodeAdj {
	lo := c << adjChunkBits
	hi := lo + adjChunkSize
	if hi > b.numNodes {
		hi = b.numNodes
	}
	out := make([]nodeAdj, hi-lo)
	for i := range out {
		v := lo + i
		n, s, e := b.nbr[v], b.ts[v], b.eid[v]
		// Full (len == cap) views: a later in-place append by the builder
		// writes only beyond len, a capacity-exceeding append relocates —
		// either way the frozen prefix is never written again.
		out[i] = nodeAdj{nbr: n[:len(n):len(n)], ts: s[:len(s):len(s)], eid: e[:len(e):len(e)]}
	}
	return out
}
