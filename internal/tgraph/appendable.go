package tgraph

import "fmt"

// AppendableTCSR is the incrementally published counterpart of TCSR: node
// adjacency is reached through a two-level chunked index instead of one flat
// Indptr/Nbr/Ts/Eid block, so consecutive snapshots of a growing stream can
// share every chunk whose nodes were untouched between publications.
//
// Layout: nodes are grouped into fixed-size chunks of adjChunkSize ids; chunk
// c holds the frozen per-node adjacency headers of nodes
// [c·adjChunkSize, (c+1)·adjChunkSize). A published snapshot is immutable:
//
//   - The chunk table and every chunk it points to are never mutated after
//     Snapshot returns — the next publication allocates fresh chunks for the
//     node ranges touched since, and shares the rest structurally.
//   - Each nodeAdj header is a full (len == cap) slice of the builder's
//     per-node adjacency at publication time. The builder only ever appends
//     to those arrays: later writes land strictly beyond every published
//     header's length (or in a freshly grown array), so the frozen prefix a
//     reader sees is write-free for the snapshot's lifetime.
//
// Readers therefore need no synchronization beyond receiving the snapshot
// pointer (serve.Engine publishes it through an atomic pointer swap), and the
// writer's per-publication cost is O(chunk table + touched chunks), not
// O(events) — see DESIGN.md §6 for the full argument.
type AppendableTCSR struct {
	numNodes   int
	numEntries int64       // total adjacency entries across all nodes
	chunks     [][]nodeAdj // chunk c covers nodes [c<<adjChunkBits, ...)
}

// adjChunkBits sets the chunk granularity: 256 nodes per chunk balances the
// cost of re-freezing a touched chunk (256 header copies) against the size of
// the per-publication chunk-table copy (numNodes/256 pointers).
const (
	adjChunkBits = 8
	adjChunkSize = 1 << adjChunkBits
	adjChunkMask = adjChunkSize - 1
)

// nodeAdj freezes one node's adjacency prefix: three parallel full slices
// (len == cap) into the builder's append-only per-node arrays.
type nodeAdj struct {
	nbr []int32
	ts  []float64
	eid []int32
}

var _ Adjacency = (*AppendableTCSR)(nil)

// NumNodes implements Adjacency.
func (t *AppendableTCSR) NumNodes() int { return t.numNodes }

// NumEntries returns the total adjacency entry count (the analogue of
// len(TCSR.Nbr): every event contributes two entries, self-loops one).
func (t *AppendableTCSR) NumEntries() int64 { return t.numEntries }

// Adj implements Adjacency: node v's full adjacency as immutable views.
func (t *AppendableTCSR) Adj(v int32) (nbr []int32, ts []float64, eid []int32) {
	na := &t.chunks[v>>adjChunkBits][v&adjChunkMask]
	return na.nbr, na.ts, na.eid
}

// Degree implements Adjacency.
func (t *AppendableTCSR) Degree(v int32) int {
	return len(t.chunks[v>>adjChunkBits][v&adjChunkMask].nbr)
}

// Pivot implements Adjacency (binary search).
func (t *AppendableTCSR) Pivot(v int32, tm float64) int {
	_, ts, _ := t.Adj(v)
	return searchPivot(ts, tm)
}

// PivotLinear implements Adjacency (forward scan).
func (t *AppendableTCSR) PivotLinear(v int32, tm float64) int {
	_, ts, _ := t.Adj(v)
	return scanPivot(ts, tm)
}

// Neighborhood materializes N(v, t) (copies), mirroring TCSR.Neighborhood.
func (t *AppendableTCSR) Neighborhood(v int32, tm float64) (nbr []int32, ts []float64, eid []int32) {
	n, s, e := t.Adj(v)
	p := t.Pivot(v, tm)
	return append([]int32(nil), n[:p]...), append([]float64(nil), s[:p]...), append([]int32(nil), e[:p]...)
}

// AdjacencyDiff compares two packed layouts entry-by-entry and describes the
// first difference, or returns "" when they are bitwise-identical for every
// node. It is the equivalence check behind the incremental-vs-full-repack
// guarantee (used by the tgraph, serve and integration tests; cheap enough
// for consistency assertions in tools).
func AdjacencyDiff(a, b Adjacency) string {
	if a.NumNodes() != b.NumNodes() {
		return fmt.Sprintf("NumNodes %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for v := int32(0); int(v) < a.NumNodes(); v++ {
		an, at, ae := a.Adj(v)
		bn, bt, be := b.Adj(v)
		if len(an) != len(bn) {
			return fmt.Sprintf("node %d degree %d vs %d", v, len(an), len(bn))
		}
		for i := range an {
			if an[i] != bn[i] || at[i] != bt[i] || ae[i] != be[i] {
				return fmt.Sprintf("node %d entry %d: (%d,%v,%d) vs (%d,%v,%d)",
					v, i, an[i], at[i], ae[i], bn[i], bt[i], be[i])
			}
		}
	}
	return ""
}
