package tgraph

import "testing"

// TestTailerFollowsIncrementalSnapshots drives a Tailer over successive
// Builder snapshots and checks it returns exactly the appended suffix each
// time, as views that alias the shared event array (no copying).
func TestTailerFollowsIncrementalSnapshots(t *testing.T) {
	b := NewBuilder(16)
	var tl Tailer
	total := 0
	for round := 0; round < 5; round++ {
		add := 3 + round
		for i := 0; i < add; i++ {
			if err := b.Add(int32(i%16), int32((i+1)%16), float64(total+i)); err != nil {
				t.Fatal(err)
			}
		}
		total += add
		g, _ := b.Snapshot()
		ev, err := tl.Next(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(ev) != add {
			t.Fatalf("round %d: got %d events, want %d", round, len(ev), add)
		}
		if ev[0].Time != float64(total-add) || ev[len(ev)-1].Time != float64(total-1) {
			t.Fatalf("round %d: wrong suffix [%v, %v]", round, ev[0].Time, ev[len(ev)-1].Time)
		}
		if tl.Consumed() != total {
			t.Fatalf("round %d: consumed %d, want %d", round, tl.Consumed(), total)
		}
	}
	// Idle round: nothing new.
	g, _ := b.Snapshot()
	if ev, err := tl.Next(g); err != nil || len(ev) != 0 {
		t.Fatalf("idle round returned %d events, err %v", len(ev), err)
	}
}

// TestTailerWindowSkipsBacklog checks the recency cap: a tailer far behind
// the stream gets only the freshest window and reports the skipped count.
func TestTailerWindowSkipsBacklog(t *testing.T) {
	b := NewBuilder(8)
	for i := 0; i < 100; i++ {
		if err := b.Add(int32(i%8), int32((i+3)%8), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := b.Snapshot()
	var tl Tailer
	ev, skipped, err := tl.NextWindow(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 16 || skipped != 84 {
		t.Fatalf("got %d events, %d skipped; want 16, 84", len(ev), skipped)
	}
	if ev[0].Time != 84 || ev[15].Time != 99 {
		t.Fatalf("window is [%v, %v], want [84, 99]", ev[0].Time, ev[15].Time)
	}
	if tl.Consumed() != 100 {
		t.Fatalf("consumed %d, want 100", tl.Consumed())
	}
	// A shrunken stream is an error, not silent corruption.
	if _, err := tl.Next(&Graph{NumNodes: 8}); err == nil {
		t.Fatal("expected error on shrunken stream")
	}
}
