package tgraph

import (
	"testing"

	"taser/internal/mathx"
)

func TestBuilderBasicFlow(t *testing.T) {
	b := NewBuilder(4)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.Add(0, 1, 1))
	must(b.Add(1, 2, 2))
	must(b.Add(0, 1, 3))
	if b.NumEvents() != 3 {
		t.Fatal("NumEvents")
	}
	nbr, ts, eid := b.Neighborhood(1, 2.5)
	if len(nbr) != 2 || nbr[0] != 0 || nbr[1] != 2 {
		t.Fatalf("live neighborhood: %v", nbr)
	}
	if ts[1] != 2 || eid[1] != 1 {
		t.Fatal("live neighborhood metadata")
	}
}

func TestBuilderLastTimeTracksWatermark(t *testing.T) {
	b := NewBuilder(3)
	if b.LastTime() != 0 {
		t.Fatal("empty builder watermark must be 0")
	}
	if err := b.Add(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if b.LastTime() != 2.5 {
		t.Fatalf("watermark = %v, want 2.5", b.LastTime())
	}
	// A rejected (stale) event must not move the watermark.
	if err := b.Add(1, 2, 1.0); err == nil {
		t.Fatal("stale event must error")
	}
	if b.LastTime() != 2.5 {
		t.Fatalf("watermark moved on rejected event: %v", b.LastTime())
	}
	// Simultaneous events keep it in place; later events advance it.
	if err := b.Add(1, 2, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(2, 0, 4); err != nil {
		t.Fatal(err)
	}
	if b.LastTime() != 4 {
		t.Fatalf("watermark = %v, want 4", b.LastTime())
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	b := NewBuilder(2)
	if err := b.Add(0, 5, 1); err == nil {
		t.Fatal("out-of-range endpoint must error")
	}
	if err := b.Add(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(0, 1, 4); err == nil {
		t.Fatal("time regression must error")
	}
	// Equal timestamps are allowed (simultaneous events).
	if err := b.Add(1, 0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSnapshotMatchesBatchBuild(t *testing.T) {
	rng := mathx.NewRNG(5)
	b := NewBuilder(20)
	var events []Event
	tm := 0.0
	for i := 0; i < 500; i++ {
		tm += rng.Float64()
		e := Event{Src: int32(rng.Intn(20)), Dst: int32(rng.Intn(20)), Time: tm}
		events = append(events, e)
		if err := b.Add(e.Src, e.Dst, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	_, streamed := b.Snapshot()
	g, err := NewGraph(20, append([]Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	batch := BuildTCSR(g)
	if len(streamed.Nbr) != len(batch.Nbr) {
		t.Fatal("entry counts differ")
	}
	for v := int32(0); v < 20; v++ {
		sn, st, se := streamed.Adj(v)
		bn, bt, be := batch.Adj(v)
		for i := range sn {
			if sn[i] != bn[i] || st[i] != bt[i] || se[i] != be[i] {
				t.Fatalf("node %d entry %d differs", v, i)
			}
		}
	}
}

func TestBuilderLiveMatchesSnapshotNeighborhood(t *testing.T) {
	rng := mathx.NewRNG(6)
	b := NewBuilder(10)
	tm := 0.0
	for i := 0; i < 200; i++ {
		tm += rng.Float64()
		if err := b.Add(int32(rng.Intn(10)), int32(rng.Intn(10)), tm); err != nil {
			t.Fatal(err)
		}
	}
	_, tc := b.Snapshot()
	for v := int32(0); v < 10; v++ {
		for _, q := range []float64{0, tm / 2, tm + 1} {
			ln, _, _ := b.Neighborhood(v, q)
			if len(ln) != tc.Pivot(v, q) {
				t.Fatalf("live vs snapshot pivot mismatch node %d t=%v", v, q)
			}
		}
	}
	// Builder stays usable after snapshotting.
	if err := b.Add(0, 1, tm+2); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	if err := b.Add(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	nbr, _, _ := b.Neighborhood(1, 2)
	if len(nbr) != 1 || nbr[0] != 1 {
		t.Fatal("self loop must appear once")
	}
}
