package tgraph

import (
	"math"
	"testing"

	"taser/internal/mathx"
)

func TestBuilderBasicFlow(t *testing.T) {
	b := NewBuilder(4)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.Add(0, 1, 1))
	must(b.Add(1, 2, 2))
	must(b.Add(0, 1, 3))
	if b.NumEvents() != 3 {
		t.Fatal("NumEvents")
	}
	nbr, ts, eid := b.Neighborhood(1, 2.5)
	if len(nbr) != 2 || nbr[0] != 0 || nbr[1] != 2 {
		t.Fatalf("live neighborhood: %v", nbr)
	}
	if ts[1] != 2 || eid[1] != 1 {
		t.Fatal("live neighborhood metadata")
	}
}

func TestBuilderLastTimeTracksWatermark(t *testing.T) {
	b := NewBuilder(3)
	if _, ok := b.LastTime(); ok {
		t.Fatal("empty builder must report no watermark")
	}
	if err := b.Add(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if wm, ok := b.LastTime(); !ok || wm != 2.5 {
		t.Fatalf("watermark = %v (ok=%v), want 2.5", wm, ok)
	}
	// A rejected (stale) event must not move the watermark.
	if err := b.Add(1, 2, 1.0); err == nil {
		t.Fatal("stale event must error")
	}
	if wm, ok := b.LastTime(); !ok || wm != 2.5 {
		t.Fatalf("watermark moved on rejected event: %v (ok=%v)", wm, ok)
	}
	// Simultaneous events keep it in place; later events advance it.
	if err := b.Add(1, 2, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(2, 0, 4); err != nil {
		t.Fatal(err)
	}
	if wm, _ := b.LastTime(); wm != 4 {
		t.Fatalf("watermark = %v, want 4", wm)
	}
}

// TestBuilderNegativeStartStream is the watermark-initialization regression:
// a chronological stream whose first event is before t=0 must be admitted
// (the zero-valued lastT used to reject it), and chronology must still be
// enforced afterwards.
func TestBuilderNegativeStartStream(t *testing.T) {
	b := NewBuilder(3)
	if err := b.Add(0, 1, -5); err != nil {
		t.Fatalf("first event at t=-5 must be admitted: %v", err)
	}
	if wm, ok := b.LastTime(); !ok || wm != -5 {
		t.Fatalf("watermark = %v (ok=%v), want -5", wm, ok)
	}
	if err := b.Add(1, 2, -6); err == nil {
		t.Fatal("regression behind a negative watermark must error")
	}
	if err := b.Add(1, 2, -5); err != nil {
		t.Fatalf("equal negative timestamp must be admitted: %v", err)
	}
	if err := b.Add(2, 0, 0); err != nil {
		t.Fatalf("advance to t=0 must be admitted: %v", err)
	}
	if wm, ok := b.LastTime(); !ok || wm != 0 {
		t.Fatalf("a real t=0 watermark must be reported: %v (ok=%v)", wm, ok)
	}
}

// TestBuilderEqualTimestampStream: a stream of identical timestamps (t=0
// included) is chronological and must be fully admitted, in input order.
func TestBuilderEqualTimestampStream(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 6; i++ {
		if err := b.Add(int32(i%3), int32((i+1)%3), 0); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	g, tc := b.Snapshot()
	for i, ev := range g.Events {
		if ev.Time != 0 {
			t.Fatalf("event %d time %v", i, ev.Time)
		}
	}
	_, _, eid := tc.Adj(0)
	for i := 1; i < len(eid); i++ {
		if eid[i] < eid[i-1] {
			t.Fatalf("equal-timestamp entries must keep input order: %v", eid)
		}
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	b := NewBuilder(2)
	if err := b.Add(0, 5, 1); err == nil {
		t.Fatal("out-of-range endpoint must error")
	}
	// Non-finite timestamps: NaN would pass the chronology check (NaN < t is
	// false) and ±Inf would collide with "no events" sentinels downstream.
	if err := b.Add(0, 1, math.NaN()); err == nil {
		t.Fatal("NaN timestamp must error")
	}
	if err := b.Add(0, 1, math.Inf(-1)); err == nil {
		t.Fatal("-Inf timestamp must error")
	}
	if err := b.Add(0, 1, math.Inf(1)); err == nil {
		t.Fatal("+Inf timestamp must error")
	}
	if err := b.Add(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(0, 1, 4); err == nil {
		t.Fatal("time regression must error")
	}
	// Equal timestamps are allowed (simultaneous events).
	if err := b.Add(1, 0, 5); err != nil {
		t.Fatal(err)
	}
}

// requireAdjEqual asserts that two packed layouts expose bitwise-identical
// adjacency for every node.
func requireAdjEqual(t *testing.T, got, want Adjacency) {
	t.Helper()
	if d := AdjacencyDiff(got, want); d != "" {
		t.Fatal(d)
	}
}

func TestBuilderSnapshotMatchesBatchBuild(t *testing.T) {
	rng := mathx.NewRNG(5)
	b := NewBuilder(20)
	var events []Event
	tm := 0.0
	for i := 0; i < 500; i++ {
		tm += rng.Float64()
		e := Event{Src: int32(rng.Intn(20)), Dst: int32(rng.Intn(20)), Time: tm}
		events = append(events, e)
		if err := b.Add(e.Src, e.Dst, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	_, streamed := b.Snapshot()
	g, err := NewGraph(20, append([]Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	batch := BuildTCSR(g)
	if streamed.NumEntries() != int64(len(batch.Nbr)) {
		t.Fatalf("entry counts differ: %d vs %d", streamed.NumEntries(), len(batch.Nbr))
	}
	requireAdjEqual(t, streamed, batch)
}

// TestIncrementalSnapshotMatchesFullRepack is the tentpole equivalence test:
// snapshots taken mid-stream (sharing chunks with their predecessors) must be
// bitwise-identical to a from-scratch NewGraph/BuildTCSR repack of the same
// prefix — and earlier snapshots must stay intact while ingest continues,
// including across chunk boundaries (numNodes > one chunk).
func TestIncrementalSnapshotMatchesFullRepack(t *testing.T) {
	const numNodes = adjChunkSize*2 + 37 // three chunks, last one partial
	rng := mathx.NewRNG(11)
	b := NewBuilder(numNodes)
	var events []Event
	type taken struct {
		at   int
		tc   *AppendableTCSR
		g    *Graph
		want *TCSR
	}
	var snaps []taken
	tm := -3.0 // negative-start stream exercises the watermark fix end to end
	for i := 0; i < 4000; i++ {
		if rng.Float64() < 0.7 {
			tm += rng.Float64()
		} // else: simultaneous event
		// Zipf-ish skew so some chunks go untouched between snapshots.
		src := int32(rng.Intn(numNodes))
		if rng.Float64() < 0.5 {
			src = int32(rng.Intn(adjChunkSize / 4))
		}
		dst := int32(rng.Intn(numNodes))
		events = append(events, Event{Src: src, Dst: dst, Time: tm})
		if err := b.Add(src, dst, tm); err != nil {
			t.Fatal(err)
		}
		if (i+1)%613 == 0 {
			g, tc := b.Snapshot()
			ref, err := NewGraph(numNodes, append([]Event(nil), events...))
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, taken{at: i + 1, tc: tc, g: g, want: BuildTCSR(ref)})
		}
	}
	g, tc := b.Snapshot()
	ref, err := NewGraph(numNodes, append([]Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	snaps = append(snaps, taken{at: len(events), tc: tc, g: g, want: BuildTCSR(ref)})

	// Every snapshot — including the ones taken long before ingest finished —
	// must still match its own prefix's full repack bitwise.
	for _, s := range snaps {
		if s.g.NumEvents() != s.at {
			t.Fatalf("snapshot at %d holds %d events", s.at, s.g.NumEvents())
		}
		for i, ev := range s.g.Events {
			if ev != events[i] {
				t.Fatalf("snapshot at %d event %d: %+v vs %+v", s.at, i, ev, events[i])
			}
		}
		if s.tc.NumEntries() != int64(len(s.want.Nbr)) {
			t.Fatalf("snapshot at %d entries %d vs %d", s.at, s.tc.NumEntries(), len(s.want.Nbr))
		}
		requireAdjEqual(t, s.tc, s.want)
		// Pivots agree between the layouts at a few probe times.
		for _, v := range []int32{0, adjChunkSize - 1, adjChunkSize, numNodes - 1} {
			for _, q := range []float64{-10, -2.5, 0, tm / 2, tm + 1} {
				if s.tc.Pivot(v, q) != s.want.Pivot(v, q) ||
					s.tc.PivotLinear(v, q) != s.want.PivotLinear(v, q) {
					t.Fatalf("snapshot at %d: pivot mismatch node %d t=%v", s.at, v, q)
				}
			}
		}
	}
}

// TestSnapshotSharesUntouchedChunks pins the incremental contract: a publish
// after touching a single node re-freezes only that node's chunk and shares
// every other chunk pointer with the previous snapshot.
func TestSnapshotSharesUntouchedChunks(t *testing.T) {
	const numNodes = adjChunkSize * 3
	b := NewBuilder(numNodes)
	for v := 0; v < numNodes; v += 3 {
		if err := b.Add(int32(v), int32((v+1)%numNodes), float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	_, first := b.Snapshot()
	// Touch two nodes inside chunk 1 only.
	if err := b.Add(adjChunkSize+1, adjChunkSize+2, float64(numNodes)); err != nil {
		t.Fatal(err)
	}
	_, second := b.Snapshot()
	if &first.chunks[0][0] != &second.chunks[0][0] || &first.chunks[2][0] != &second.chunks[2][0] {
		t.Fatal("untouched chunks must be shared structurally")
	}
	if &first.chunks[1][0] == &second.chunks[1][0] {
		t.Fatal("the touched chunk must be re-frozen")
	}
	// The old snapshot still reads the pre-touch degree.
	if first.Degree(adjChunkSize+1) >= second.Degree(adjChunkSize+1) {
		t.Fatalf("old snapshot leaked new events: %d vs %d",
			first.Degree(adjChunkSize+1), second.Degree(adjChunkSize+1))
	}
}

func TestBuilderLiveMatchesSnapshotNeighborhood(t *testing.T) {
	rng := mathx.NewRNG(6)
	b := NewBuilder(10)
	tm := 0.0
	for i := 0; i < 200; i++ {
		tm += rng.Float64()
		if err := b.Add(int32(rng.Intn(10)), int32(rng.Intn(10)), tm); err != nil {
			t.Fatal(err)
		}
	}
	_, tc := b.Snapshot()
	for v := int32(0); v < 10; v++ {
		for _, q := range []float64{0, tm / 2, tm + 1} {
			ln, _, _ := b.Neighborhood(v, q)
			if len(ln) != tc.Pivot(v, q) {
				t.Fatalf("live vs snapshot pivot mismatch node %d t=%v", v, q)
			}
		}
	}
	// Builder stays usable after snapshotting.
	if err := b.Add(0, 1, tm+2); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	if err := b.Add(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	nbr, _, _ := b.Neighborhood(1, 2)
	if len(nbr) != 1 || nbr[0] != 1 {
		t.Fatal("self loop must appear once")
	}
}

// BenchmarkSnapshotPublish contrasts the incremental publish against the
// from-scratch repack at a fixed stream position: the incremental path's cost
// tracks the delta (SnapshotEvery events), the repack's tracks the stream.
func BenchmarkSnapshotPublish(b *testing.B) {
	const numNodes, stream, delta = 2000, 60000, 256
	build := func() (*Builder, []Event) {
		rng := mathx.NewRNG(3)
		bl := NewBuilder(numNodes)
		events := make([]Event, 0, stream)
		tm := 0.0
		for i := 0; i < stream; i++ {
			tm += rng.Float64()
			ev := Event{Src: int32(rng.Intn(numNodes)), Dst: int32(rng.Intn(numNodes)), Time: tm}
			events = append(events, ev)
			if err := bl.Add(ev.Src, ev.Dst, ev.Time); err != nil {
				b.Fatal(err)
			}
		}
		return bl, events
	}
	b.Run("incremental", func(b *testing.B) {
		bl, events := build()
		bl.Snapshot()
		rng := mathx.NewRNG(4)
		tm := events[len(events)-1].Time
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < delta; j++ {
				tm += rng.Float64()
				if err := bl.Add(int32(rng.Intn(numNodes)), int32(rng.Intn(numNodes)), tm); err != nil {
					b.Fatal(err)
				}
			}
			bl.Snapshot()
		}
	})
	b.Run("full-repack", func(b *testing.B) {
		_, events := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := NewGraph(numNodes, append([]Event(nil), events...))
			if err != nil {
				b.Fatal(err)
			}
			BuildTCSR(g)
		}
	})
}
