package tgraph

import (
	"testing"
	"testing/quick"

	"taser/internal/mathx"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	events := []Event{
		{0, 1, 1.0},
		{0, 2, 2.0},
		{1, 2, 3.0},
		{0, 1, 4.0}, // repeated pair at a later time
		{2, 2, 5.0}, // self loop
	}
	g, err := NewGraph(3, events)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphValidates(t *testing.T) {
	if _, err := NewGraph(2, []Event{{0, 5, 1}}); err == nil {
		t.Fatal("out-of-range endpoint must error")
	}
	if _, err := NewGraph(2, []Event{{-1, 0, 1}}); err == nil {
		t.Fatal("negative endpoint must error")
	}
}

func TestNewGraphSortsByTime(t *testing.T) {
	g, err := NewGraph(3, []Event{{0, 1, 5}, {1, 2, 1}, {0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(g.Events); i++ {
		if g.Events[i].Time < g.Events[i-1].Time {
			t.Fatal("events must be sorted")
		}
	}
}

func TestTCSRDegreesAndSymmetry(t *testing.T) {
	g := smallGraph(t)
	tc := BuildTCSR(g)
	// Node 0: events (0,1), (0,2), (0,1) → degree 3.
	if tc.Degree(0) != 3 {
		t.Fatalf("deg(0)=%d", tc.Degree(0))
	}
	// Node 1: (0,1), (1,2), (0,1) → 3.
	if tc.Degree(1) != 3 {
		t.Fatalf("deg(1)=%d", tc.Degree(1))
	}
	// Node 2: (0,2), (1,2), (2,2 self once) → 3.
	if tc.Degree(2) != 3 {
		t.Fatalf("deg(2)=%d", tc.Degree(2))
	}
	if tc.NumNodes() != 3 {
		t.Fatal("NumNodes")
	}
}

func TestTCSRTimesSortedPerNode(t *testing.T) {
	g := smallGraph(t)
	tc := BuildTCSR(g)
	for v := int32(0); v < 3; v++ {
		_, ts, _ := tc.Adj(v)
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Fatalf("node %d timestamps unsorted: %v", v, ts)
			}
		}
	}
}

func TestPivotMatchesLinear(t *testing.T) {
	g := smallGraph(t)
	tc := BuildTCSR(g)
	for v := int32(0); v < 3; v++ {
		for _, tm := range []float64{0, 0.5, 1.0, 2.5, 4.0, 99} {
			if tc.Pivot(v, tm) != tc.PivotLinear(v, tm) {
				t.Fatalf("pivot mismatch node %d t=%v", v, tm)
			}
		}
	}
}

func TestPivotStrictness(t *testing.T) {
	// N(v, t) uses t_u < t strictly: an event AT time t is excluded.
	g := smallGraph(t)
	tc := BuildTCSR(g)
	if p := tc.Pivot(0, 1.0); p != 0 {
		t.Fatalf("event at exactly t must be excluded, pivot=%d", p)
	}
	if p := tc.Pivot(0, 1.0001); p != 1 {
		t.Fatalf("pivot=%d", p)
	}
}

func TestNeighborhoodContents(t *testing.T) {
	g := smallGraph(t)
	tc := BuildTCSR(g)
	nbr, ts, eid := tc.Neighborhood(0, 3.5)
	if len(nbr) != 2 || nbr[0] != 1 || nbr[1] != 2 {
		t.Fatalf("nbr=%v", nbr)
	}
	if ts[0] != 1.0 || ts[1] != 2.0 {
		t.Fatalf("ts=%v", ts)
	}
	if eid[0] != 0 || eid[1] != 1 {
		t.Fatalf("eid=%v", eid)
	}
}

func TestEidMapsBackToEvent(t *testing.T) {
	g := smallGraph(t)
	tc := BuildTCSR(g)
	for v := int32(0); v < 3; v++ {
		nbr, ts, eid := tc.Adj(v)
		for i := range nbr {
			e := g.Events[eid[i]]
			if e.Time != ts[i] {
				t.Fatal("eid timestamp mismatch")
			}
			if e.Src != v && e.Dst != v {
				t.Fatal("eid must reference an event incident to v")
			}
			other := e.Src
			if e.Src == v {
				other = e.Dst
			}
			if other != nbr[i] && !(e.Src == e.Dst && nbr[i] == v) {
				t.Fatal("eid neighbor mismatch")
			}
		}
	}
}

func TestSelfLoopSingleEntry(t *testing.T) {
	g, _ := NewGraph(1, []Event{{0, 0, 1}})
	tc := BuildTCSR(g)
	if tc.Degree(0) != 1 {
		t.Fatalf("self loop must contribute one entry, got %d", tc.Degree(0))
	}
}

// randomGraph builds a random CTDG for property tests.
func randomGraph(seed uint64) *Graph {
	rng := mathx.NewRNG(seed)
	n := 2 + rng.Intn(20)
	m := rng.Intn(200)
	events := make([]Event, m)
	for i := range events {
		events[i] = Event{
			Src:  int32(rng.Intn(n)),
			Dst:  int32(rng.Intn(n)),
			Time: rng.Float64() * 100,
		}
	}
	g, _ := NewGraph(n, events)
	return g
}

func TestTCSRInvariantsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed)
		tc := BuildTCSR(g)
		// Invariant 1: total entries = 2·|E| − selfloops.
		self := 0
		for _, e := range g.Events {
			if e.Src == e.Dst {
				self++
			}
		}
		if len(tc.Nbr) != 2*len(g.Events)-self {
			return false
		}
		// Invariant 2: per-node times sorted; binary pivot == linear pivot.
		for v := int32(0); int(v) < g.NumNodes; v++ {
			_, ts, _ := tc.Adj(v)
			for i := 1; i < len(ts); i++ {
				if ts[i] < ts[i-1] {
					return false
				}
			}
			for trial := 0; trial < 5; trial++ {
				tm := float64(trial) * 25
				if tc.Pivot(v, tm) != tc.PivotLinear(v, tm) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewGraph(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := BuildTCSR(g)
	if tc.Degree(3) != 0 || len(tc.Nbr) != 0 {
		t.Fatal("empty graph")
	}
	if tc.Pivot(0, 100) != 0 {
		t.Fatal("pivot on empty adjacency")
	}
}
