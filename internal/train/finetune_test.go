package train

import (
	"runtime"
	"testing"

	"taser/internal/datasets"
	"taser/internal/sampler"
	"taser/internal/tgraph"
)

// TestFinetuneStepMatchesOfflineTrainStep pins the continual-learning
// contract: one online FineTuner.Step — pooled InferenceBuilder build,
// reusable arena graph, Adam on cloned parameters — is bitwise-equal to the
// offline Trainer's TrainStep on the same events, graph, starting weights
// and negative draws, for both backbones. This is what makes the online
// fine-tuner a faithful extension of Algorithm 1's model update to the
// serving stream rather than a lookalike.
func TestFinetuneStepMatchesOfflineTrainStep(t *testing.T) {
	for _, model := range []ModelKind{ModelTGAT, ModelGraphMixer} {
		ds := datasets.Wikipedia(0.08, 4)
		cfg := Config{
			Model: model, Finder: FinderGPU, FinderPolicy: "recent",
			Hidden: 12, TimeDim: 6, BatchSize: 40, Seed: 11,
		}
		offline, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		// An identical twin predicts the negative destinations the offline
		// step will draw (both trainers consume the same seeded RNG stream).
		oracle, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		b := offline.Cfg.BatchSize
		negs := make([]int32, b)
		for i := range negs {
			negs[i] = oracle.negativeDst()
		}

		// The fine-tuner clones the offline trainer's pre-step weights and
		// binds the same adjacency and feature stores.
		ft, err := NewFineTuner(FineTuneConfig{
			Model: offline.Model, Pred: offline.Pred,
			Infer: InferConfig{
				TCSR: ds.TCSR, NodeFeat: ds.NodeFeat, EdgeFeat: ds.EdgeFeat,
				Budget: offline.Cfg.N, Policy: sampler.MostRecent, Finder: FinderGPU, Seed: 1,
			},
			LR: offline.Cfg.LR, ClipNorm: 5,
			NumNodes: ds.Spec.NumNodes, NumSrc: ds.Spec.NumSrc, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}

		events := make([]tgraph.Event, b)
		copy(events, ds.Graph.Events[:b]) // the offline step's first chronological batch
		lossOff := offline.TrainStep()
		lossOn := ft.Step(events, negs)
		if lossOff != lossOn {
			t.Fatalf("%s: online loss %v != offline loss %v", model, lossOn, lossOff)
		}

		offP := append(offline.Model.Params(), offline.Pred.Params()...)
		onP := append(ft.Model().Params(), ft.Pred().Params()...)
		if len(offP) != len(onP) {
			t.Fatalf("%s: param count %d != %d", model, len(onP), len(offP))
		}
		for i := range offP {
			for j, v := range offP[i].Val.Data {
				if onP[i].Val.Data[j] != v {
					t.Fatalf("%s: param %d elem %d diverged: online %v offline %v",
						model, i, j, onP[i].Val.Data[j], v)
				}
			}
		}
	}
}

// TestFinetuneStepSwapGraphKeepsStepping checks the retarget path the online
// loop uses: steps keep working (finite losses, no panics) after swapping to
// an incrementally published snapshot, with the pool and arena surviving.
func TestFinetuneStepSwapGraphKeepsStepping(t *testing.T) {
	ds := datasets.Wikipedia(0.08, 4)
	tr, err := New(Config{
		Model: ModelTGAT, Finder: FinderGPU, FinderPolicy: "recent",
		Hidden: 10, TimeDim: 6, Seed: 3,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFineTuner(FineTuneConfig{
		Model: tr.Model, Pred: tr.Pred,
		Infer: InferConfig{
			TCSR: ds.TCSR, NodeFeat: ds.NodeFeat, EdgeFeat: ds.EdgeFeat,
			Budget: 5, Policy: sampler.MostRecent, Seed: 1,
		},
		NumNodes: ds.Spec.NumNodes, NumSrc: ds.Spec.NumSrc, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	loss := ft.Step(ds.Graph.Events[:32], nil)
	if loss != loss || loss == 0 { // NaN or trivially zero
		t.Fatalf("pre-swap loss %v", loss)
	}
	// Rebuild the same stream through the incremental builder and swap.
	gb := tgraph.NewBuilder(ds.Spec.NumNodes)
	for _, ev := range ds.Graph.Events {
		if err := gb.Add(ev.Src, ev.Dst, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	_, tcsr := gb.Snapshot()
	if err := ft.SwapGraph(tcsr, ds.EdgeFeat); err != nil {
		t.Fatal(err)
	}
	loss = ft.Step(ds.Graph.Events[32:64], nil)
	if loss != loss || loss == 0 {
		t.Fatalf("post-swap loss %v", loss)
	}
}

// TestFinetuneStepAllocBudget extends the allocation-regression guard to the
// continual-learning hot path: a warm online fine-tune step (pooled build +
// arena forward–backward + Adam) must stay within its allocation budget, so
// a long-running fine-tuner generates O(1) amortized garbage per step just
// like the offline loop. CI runs it with GOMAXPROCS=1 next to
// TestStepAllocBudget.
func TestFinetuneStepAllocBudget(t *testing.T) {
	const stepAllocBudget = 100
	ds := datasets.Wikipedia(0.1, 3)
	tr, err := New(Config{
		Model: ModelTGAT, Finder: FinderGPU, FinderPolicy: "recent",
		Hidden: 16, TimeDim: 8, Seed: 3,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFineTuner(FineTuneConfig{
		Model: tr.Model, Pred: tr.Pred,
		Infer: InferConfig{
			TCSR: ds.TCSR, NodeFeat: ds.NodeFeat, EdgeFeat: ds.EdgeFeat,
			Budget: 10, Policy: sampler.MostRecent, Seed: 1,
		},
		NumNodes: ds.Spec.NumNodes, NumSrc: ds.Spec.NumSrc, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := ds.Graph.Events[:64]
	for i := 0; i < 8; i++ { // warm the pool, tape and arena classes
		ft.Step(events, nil)
	}
	allocs := testing.AllocsPerRun(20, func() { ft.Step(events, nil) })
	budget := float64(stepAllocBudget)
	if runtime.GOMAXPROCS(0) > 1 {
		budget = 600 // goroutine fan-out in the parallel kernels
	}
	t.Logf("allocs/finetune-step = %.1f (budget %.0f, GOMAXPROCS=%d)", allocs, budget, runtime.GOMAXPROCS(0))
	if allocs > budget {
		t.Fatalf("FineTuner.Step allocates %.1f times/step, budget %.0f", allocs, budget)
	}
}
