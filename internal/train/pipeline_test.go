package train

import (
	"math"
	"testing"

	"taser/internal/adaptive"
)

// stepLossesSync collects per-step losses over epochs full synchronous epochs.
func stepLossesSync(t *testing.T, cfg Config, seed uint64, epochs int) []float64 {
	t.Helper()
	ds := tinyDS(seed)
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	steps := (ds.TrainEnd + tr.Cfg.BatchSize - 1) / tr.Cfg.BatchSize
	var losses []float64
	for e := 0; e < epochs; e++ {
		for s := 0; s < steps; s++ {
			losses = append(losses, tr.TrainStep())
		}
		tr.endEpoch()
	}
	return losses
}

// stepLossesPipelined collects per-step losses through the pipeline.
func stepLossesPipelined(t *testing.T, cfg Config, seed uint64, epochs int) []float64 {
	t.Helper()
	ds := tinyDS(seed)
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	steps := (ds.TrainEnd + tr.Cfg.BatchSize - 1) / tr.Cfg.BatchSize
	var losses []float64
	for e := 0; e < epochs; e++ {
		p := tr.NewPipeline(steps)
		for {
			loss, ok := p.Step()
			if !ok {
				break
			}
			losses = append(losses, loss)
		}
		p.Close()
		tr.endEpoch()
	}
	return losses
}

// TestPipelinedMatchesSynchronous is the seeded equivalence property the
// pipeline is designed around: with AdaBatch off, every random draw happens
// in the same order as the synchronous loop, so per-step losses must be
// bitwise identical — at any prefetch depth, across epoch boundaries, for
// every finder and both backbones.
func TestPipelinedMatchesSynchronous(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"tgat-gpu", func(c *Config) {}},
		{"tgat-gpu-cache", func(c *Config) { c.CacheRatio = 0.3 }},
		{"tgat-origin", func(c *Config) { c.Finder = FinderOrigin }},
		{"tgat-tgl", func(c *Config) { c.Finder = FinderTGL }},
		{"graphmixer", func(c *Config) { c.Model = ModelGraphMixer }},
	}
	for _, tc := range cases {
		for _, depth := range []int{1, 2} {
			cfg := tinyCfg()
			cfg.PrefetchDepth = depth
			tc.mut(&cfg)
			want := stepLossesSync(t, cfg, 30, 2)
			got := stepLossesPipelined(t, cfg, 30, 2)
			if len(got) != len(want) {
				t.Fatalf("%s depth %d: %d pipelined steps, want %d", tc.name, depth, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s depth %d: step %d loss %v != synchronous %v",
						tc.name, depth, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPipelinedAdaNeighborMatchesSynchronous extends the equivalence to
// adaptive neighbor sampling: the producer's finder (outer-hop candidates)
// and the consumer's finder (hops below the Selection) are independent
// instances, so each side's sampling stream depends only on its own call
// order — which is training order in both loops, however the goroutines
// interleave.
func TestPipelinedAdaNeighborMatchesSynchronous(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"graphmixer-1layer", func(c *Config) {
			c.Model = ModelGraphMixer
			c.Decoder = adaptive.DecoderLinear
		}},
		{"tgat-2layer", func(c *Config) {
			c.Decoder = adaptive.DecoderGATv2
		}},
		{"tgat-all-layers", func(c *Config) {
			c.Decoder = adaptive.DecoderTrans
			c.AdaAllLayers = true
		}},
	}
	for _, tc := range cases {
		cfg := tinyCfg()
		cfg.AdaNeighbor = true
		cfg.PrefetchDepth = 2
		tc.mut(&cfg)
		want := stepLossesSync(t, cfg, 31, 2)
		got := stepLossesPipelined(t, cfg, 31, 2)
		if len(got) != len(want) {
			t.Fatalf("%s: %d pipelined steps, want %d", tc.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: step %d loss %v != synchronous %v", tc.name, i, got[i], want[i])
			}
		}
	}
}

// TestPipelinedRunsAreReproducible: two pipelined runs with the same seed
// must produce identical losses even with adaptive sampling on — the repo's
// bit-for-bit reproducibility contract must survive the concurrency.
func TestPipelinedRunsAreReproducible(t *testing.T) {
	cfg := tinyCfg()
	cfg.AdaNeighbor = true
	cfg.Decoder = adaptive.DecoderGATv2
	a := stepLossesPipelined(t, cfg, 37, 2)
	b := stepLossesPipelined(t, cfg, 37, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %v vs %v across identically seeded pipelined runs", i, a[i], b[i])
		}
	}
}

// TestTrainEpochPipelined checks the epoch wrapper end to end: same step
// count and mean loss as the synchronous epoch, twice in a row (cache epoch
// advance, TGL-style bookkeeping, cursor reset).
func TestTrainEpochPipelined(t *testing.T) {
	ds := tinyDS(32)
	cfg := tinyCfg()
	sync_, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		a := sync_.TrainEpoch()
		b := pipe.TrainEpochPipelined()
		if a.Steps != b.Steps {
			t.Fatalf("epoch %d: %d pipelined steps, want %d", e, b.Steps, a.Steps)
		}
		if a.MeanLoss != b.MeanLoss {
			t.Fatalf("epoch %d: mean loss %v != synchronous %v", e, b.MeanLoss, a.MeanLoss)
		}
	}
}

// TestPipelineEarlyShutdown closes pipelines mid-epoch — immediately, after a
// partial drain, and with prefetched batches still queued — and checks the
// trainer remains usable synchronously afterwards. Run under -race this also
// proves the producer/consumer handoff and buffer recycling are clean.
func TestPipelineEarlyShutdown(t *testing.T) {
	ds := tinyDS(33)
	for _, variant := range []struct {
		name string
		mut  func(*Config)
	}{
		{"baseline", func(c *Config) {}},
		{"taser", func(c *Config) {
			c.AdaBatch, c.AdaNeighbor = true, true
			c.Decoder = adaptive.DecoderGATv2
		}},
	} {
		cfg := tinyCfg()
		variant.mut(&cfg)
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		for _, consumed := range []int{0, 3} {
			p := tr.NewPipeline(0) // unbounded
			for i := 0; i < consumed; i++ {
				if loss, ok := p.Step(); !ok || math.IsNaN(loss) {
					t.Fatalf("%s: pipelined step %d failed", variant.name, i)
				}
			}
			p.Close()
			p.Close() // idempotent
		}
		if loss := tr.TrainStep(); math.IsNaN(loss) || loss <= 0 {
			t.Fatalf("%s: synchronous step after shutdown: %v", variant.name, loss)
		}
	}
}

// TestPipelinedAdaptiveVariants drives every adaptive combination through
// full pipelined epochs: losses must stay finite and the loop race-clean even
// when the importance selector sees bounded-stale updates.
func TestPipelinedAdaptiveVariants(t *testing.T) {
	ds := tinyDS(34)
	for _, v := range []struct {
		name   string
		ab, an bool
	}{
		{"adabatch", true, false},
		{"adaneighbor", false, true},
		{"taser", true, true},
	} {
		cfg := tinyCfg()
		cfg.AdaBatch, cfg.AdaNeighbor = v.ab, v.an
		cfg.Decoder = adaptive.DecoderGATv2
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		for e := 0; e < 2; e++ {
			res := tr.TrainEpochPipelined()
			if res.Steps == 0 || math.IsNaN(res.MeanLoss) {
				t.Fatalf("%s: epoch %d: %+v", v.name, e, res)
			}
		}
	}
}

// TestPipelinedAllLayersAdaptive covers Algorithm 1's every-hop adaptive
// sampling through the pipeline (consumer-side inner-hop NF under finderMu).
func TestPipelinedAllLayersAdaptive(t *testing.T) {
	ds := tinyDS(35)
	cfg := tinyCfg()
	cfg.AdaNeighbor = true
	cfg.AdaAllLayers = true
	cfg.Decoder = adaptive.DecoderTrans
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res := tr.TrainEpochPipelined(); math.IsNaN(res.MeanLoss) {
		t.Fatalf("all-layers pipelined epoch: %+v", res)
	}
}

// TestPipelinedLossDecreases: the pipelined loop must actually train.
func TestPipelinedLossDecreases(t *testing.T) {
	ds := tinyDS(36)
	cfg := tinyCfg()
	cfg.Epochs = 4
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	losses, _, _ := tr.RunPipelined()
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("pipelined loss should fall: %v", losses)
	}
}

// TestPoolRoundTrip checks that recycled buffers come back indistinguishable
// from fresh ones (the property the equivalence test relies on).
func TestPoolRoundTrip(t *testing.T) {
	p := newBuildPool()
	blk := p.getBlock(3, 2, 4)
	blk.SetEntry(1, 1, 7, 0.5)
	blk.FinishMask()
	p.putBlock(blk)
	blk2 := p.getBlock(3, 2, 4)
	if blk2 != blk {
		t.Fatal("expected the pooled block back")
	}
	for s, v := range blk2.Mask.Data {
		if v != 0 {
			t.Fatalf("recycled mask slot %d not zeroed: %v", s, v)
		}
	}
	for s, v := range blk2.MaskBias.Data {
		if v != 0 {
			t.Fatalf("recycled mask bias slot %d not zeroed: %v", s, v)
		}
	}
	for s, v := range blk2.NbrNodes {
		if v != 0 {
			t.Fatalf("recycled NbrNodes slot %d not zeroed: %v", s, v)
		}
	}
	// Shape change reuses the block only when capacity allows; either way the
	// result must be zeroed and correctly shaped.
	p.putBlock(blk2)
	blk3 := p.getBlock(2, 2, 4)
	if blk3.NumTargets != 2 || blk3.EdgeFeat.Rows != 4 || blk3.EdgeFeat.Cols != 4 {
		t.Fatalf("reshaped block: %+v", blk3)
	}
	cs := p.getSet(2, 3, 4, 5)
	cs.SetEntry(0, 1, 9, 1.5)
	cs.FinishMask()
	p.putSet(cs)
	cs2 := p.getSet(2, 3, 4, 5)
	if cs2 != cs {
		t.Fatal("expected the pooled candidate set back")
	}
	for s, v := range cs2.Mask.Data {
		if v != 0 {
			t.Fatalf("recycled candidate mask slot %d not zeroed: %v", s, v)
		}
	}
}
