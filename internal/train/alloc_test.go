package train

import (
	"runtime"
	"testing"

	"taser/internal/adaptive"
	"taser/internal/datasets"
)

// allocBudgetConfig is the full-pipeline configuration BenchmarkStepTASER
// measures: both adaptive components on, GPU finder, frequency cache.
func allocBudgetConfig() Config {
	return Config{
		Model: ModelTGAT, Finder: FinderGPU, CacheRatio: 0.2,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderGATv2,
		Hidden: 16, TimeDim: 8, BatchSize: 64, MaxEvalEdges: 10,
	}
}

// TestStepAllocBudget is the allocation-regression guard: after arena warmup
// a full TASER training step (build + adaptive selection + forward/backward +
// both optimizer steps) must stay within stepAllocBudget heap allocations.
// The budget is far below the ~1,430 allocs/step of the pre-arena execution
// stack, so any reintroduced per-op allocation trips it immediately.
//
// With GOMAXPROCS > 1 the parallel kernels (MatMul row fan-out, large GELU)
// legitimately allocate goroutine closures per call, so the budget is only
// tight on a single-proc run — CI pins GOMAXPROCS=1 for this test.
func TestStepAllocBudget(t *testing.T) {
	const stepAllocBudget = 100
	ds := datasets.Wikipedia(0.1, 3)
	tr, err := New(allocBudgetConfig(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // warm the arena, pools and tape
		tr.TrainStep()
	}
	allocs := testing.AllocsPerRun(20, func() { tr.TrainStep() })
	budget := float64(stepAllocBudget)
	if runtime.GOMAXPROCS(0) > 1 {
		// Goroutine fan-out in the parallel kernels; bound it loosely so the
		// test still catches per-op regressions on developer machines.
		budget = 600
	}
	t.Logf("allocs/step = %.1f (budget %.0f, GOMAXPROCS=%d)", allocs, budget, runtime.GOMAXPROCS(0))
	if allocs > budget {
		t.Fatalf("TrainStep allocates %.1f times/step, budget %.0f", allocs, budget)
	}
}

// TestTrainStepGraphReuseMatchesFresh pins the §7 equivalence contract at the
// training level: a trainer running on reused arena-backed graphs produces
// bitwise-identical losses, evaluation metrics and parameters to one that
// builds a fresh unpooled graph every step.
func TestTrainStepGraphReuseMatchesFresh(t *testing.T) {
	for _, cfg := range []Config{
		{Model: ModelTGAT, Finder: FinderGPU, Hidden: 12, TimeDim: 6, BatchSize: 32, MaxEvalEdges: 8},
		allocBudgetConfig(),
		{Model: ModelGraphMixer, Finder: FinderGPU, AdaBatch: true, AdaNeighbor: true,
			Decoder: adaptive.DecoderLinear, Hidden: 12, TimeDim: 6, BatchSize: 32, MaxEvalEdges: 8},
	} {
		cfg.Seed = 9
		ds := datasets.Wikipedia(0.08, 4)
		reused, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		fresh.freshGraphs = true
		// Poison the reused trainer's arenas: if any step consumed a stale
		// checkout the losses would go NaN and diverge.
		reused.modelGraph().Arena().SetPoison(true)
		reused.samplerGraph().Arena().SetPoison(true)

		for step := 0; step < 6; step++ {
			lr, lf := reused.TrainStep(), fresh.TrainStep()
			if lr != lf {
				t.Fatalf("%s/ada=%v step %d: reused loss %v != fresh loss %v",
					cfg.Model, cfg.AdaNeighbor, step, lr, lf)
			}
		}
		if mr, mf := reused.EvalMRR(SplitVal), fresh.EvalMRR(SplitVal); mr != mf {
			t.Fatalf("%s: reused MRR %v != fresh MRR %v", cfg.Model, mr, mf)
		}
		pr, pf := reused.Model.Params(), fresh.Model.Params()
		for i := range pr {
			for j, v := range pr[i].Val.Data {
				if pf[i].Val.Data[j] != v {
					t.Fatalf("%s: param %d elem %d diverged: reused %v fresh %v",
						cfg.Model, i, j, v, pf[i].Val.Data[j])
				}
			}
		}
	}
}

// TestPipelinedGraphReuseMatchesFresh runs the same equivalence through the
// asynchronous prefetch loop (finishBatch on the consumer, adaptive hops on
// the dedicated finder) — graph reuse must stay invisible there too.
func TestPipelinedGraphReuseMatchesFresh(t *testing.T) {
	cfg := Config{
		Model: ModelTGAT, Finder: FinderGPU, AdaNeighbor: true,
		Decoder: adaptive.DecoderGATv2, Hidden: 12, TimeDim: 6,
		BatchSize: 32, MaxEvalEdges: 8, Seed: 5,
	}
	ds := datasets.Wikipedia(0.08, 4)
	reused, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	fresh.freshGraphs = true
	const steps = 6
	pr := reused.NewPipeline(steps)
	defer pr.Close()
	pf := fresh.NewPipeline(steps)
	defer pf.Close()
	for s := 0; s < steps; s++ {
		lr, okr := pr.Step()
		lf, okf := pf.Step()
		if !okr || !okf {
			t.Fatalf("pipeline exhausted at step %d", s)
		}
		if lr != lf {
			t.Fatalf("step %d: reused loss %v != fresh loss %v", s, lr, lf)
		}
	}
}
