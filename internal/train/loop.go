package train

import (
	"time"

	"taser/internal/models"
	"taser/internal/sampler"
)

// nextBatchEdges picks the training-edge indices of the next mini-batch:
// chronologically for the baseline (as TGL schedules them), or from the
// importance distribution P when adaptive mini-batch selection is on.
func (t *Trainer) nextBatchEdges() []int {
	b := t.Cfg.BatchSize
	if t.Selector != nil {
		return t.Selector.SampleBatchInto(b, t.pool.getInts(b))
	}
	if t.cursor >= t.DS.TrainEnd {
		t.cursor = 0
	}
	hi := t.cursor + b
	if hi > t.DS.TrainEnd {
		hi = t.DS.TrainEnd
	}
	edges := t.pool.getInts(hi - t.cursor)
	for e := t.cursor; e < hi; e++ {
		edges = append(edges, e)
	}
	t.cursor = hi
	return edges
}

// rootsForEdges builds the root target list [srcs | dsts | negs] for a set
// of training edges, all at their interaction timestamps.
func (t *Trainer) rootsForEdges(edges []int) []sampler.Target {
	b := len(edges)
	roots := t.pool.getTargets(3 * b)[:3*b]
	for i, e := range edges {
		ev := t.DS.Graph.Events[e]
		roots[i] = sampler.Target{Node: ev.Src, Time: ev.Time}
		roots[b+i] = sampler.Target{Node: ev.Dst, Time: ev.Time}
		roots[2*b+i] = sampler.Target{Node: t.negativeDst(), Time: ev.Time}
	}
	return roots
}

// TrainStep runs one iteration of Algorithm 1 and returns the model loss.
// It is the synchronous path: prepare and consume back to back on the
// calling goroutine. See Pipeline for the overlapped variant.
func (t *Trainer) TrainStep() float64 {
	edges := t.nextBatchEdges()
	if len(edges) == 0 {
		return 0
	}
	return t.consume(t.prepareBatch(edges))
}

// grow returns s resized to length n, reusing capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// consume runs the parameter-dependent half of one training step on a
// prepared batch: finish construction (resolving the adaptive Selection, if
// any), forward/backward/step (the PP bucket), adaptive-sampler co-training,
// and the importance-score update — then recycles the batch's buffers.
func (t *Trainer) consume(pb *prepared) float64 {
	built := t.finishBatch(pb)
	b := len(pb.edges)

	// Forward + model loss (Eq. 10) + backward + step: the PP bucket.
	var loss float64
	var info *models.CoTrainInfo
	t.time("PP", func() {
		// Reusable arena-backed graph: checkout ends the previous step's
		// pass. Everything read after Backward (posLogits, importance
		// scores) is copied out below, per the §7 ownership contract.
		gM := t.modelGraph()
		emb, fwdInfo := t.Model.Forward(gM, built.mb)
		info = fwdInfo
		t.srcIdx = grow(t.srcIdx, 2*b)
		t.dstIdx = grow(t.dstIdx, 2*b)
		t.labels = grow(t.labels, 2*b)
		for i := 0; i < b; i++ {
			t.srcIdx[i], t.dstIdx[i], t.labels[i] = int32(i), int32(b+i), 1 // positive
			t.srcIdx[b+i], t.dstIdx[b+i], t.labels[b+i] = int32(i), int32(2*b+i), 0
		}
		logits := t.Pred.ScoreGathered(gM, emb, t.srcIdx, t.dstIdx)
		lossVar := gM.BCEWithLogits(logits, t.labels)
		loss = lossVar.Val.Data[0]
		gM.Backward(lossVar)
		t.OptModel.Step()
		t.OptModel.ZeroGrad()

		t.posLogits = grow(t.posLogits, b)
		copy(t.posLogits, logits.Val.Data[:b])
	})

	// Co-train the adaptive sampler (Algorithm 1 lines 12–13) while
	// info.Out.Grad still holds dL/dh. Charged to AS.
	if built.sel != nil {
		t.time("AS", func() {
			ls := t.Sampler.SampleLoss(built.gS, info, built.sel, built.cs)
			built.gS.Backward(ls)
			t.OptSampler.Step()
			t.OptSampler.ZeroGrad()
		})
	}

	// Update importance scores with fresh positive logits (Eq. 11). In the
	// pipelined loop, batches already in flight were drawn before this update
	// lands — the bounded staleness documented in DESIGN.md.
	if t.Selector != nil {
		t.Selector.Update(pb.edges, t.posLogits[:b])
	}
	t.releasePrepared(pb)
	return loss
}

// EpochResult summarizes one training epoch.
type EpochResult struct {
	MeanLoss float64
	Steps    int
	Duration time.Duration
}

// TrainEpoch runs one pass over the training set (⌈train/batch⌉ steps) and
// advances the feature cache epoch (Algorithm 3 lines 8–10).
func (t *Trainer) TrainEpoch() EpochResult {
	steps := (t.DS.TrainEnd + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
	start := time.Now()
	var total float64
	for s := 0; s < steps; s++ {
		total += t.TrainStep()
	}
	t.endEpoch()
	return EpochResult{MeanLoss: total / float64(steps), Steps: steps, Duration: time.Since(start)}
}

// endEpoch advances the cache epoch and rewinds chronological state.
func (t *Trainer) endEpoch() {
	t.EdgeStore.EndEpoch()
	for _, f := range []sampler.Finder{t.Finder, t.finderC} {
		if tgl, ok := f.(*sampler.TGLFinder); ok {
			tgl.Reset() // new epoch restarts chronological order
		}
	}
	t.cursor = 0
}
