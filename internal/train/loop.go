package train

import (
	"time"

	"taser/internal/autograd"
	"taser/internal/models"
	"taser/internal/sampler"
)

// nextBatchEdges picks the training-edge indices of the next mini-batch:
// chronologically for the baseline (as TGL schedules them), or from the
// importance distribution P when adaptive mini-batch selection is on.
func (t *Trainer) nextBatchEdges() []int {
	b := t.Cfg.BatchSize
	if t.Selector != nil {
		return t.Selector.SampleBatch(b)
	}
	if t.cursor >= t.DS.TrainEnd {
		t.cursor = 0
	}
	hi := t.cursor + b
	if hi > t.DS.TrainEnd {
		hi = t.DS.TrainEnd
	}
	edges := make([]int, 0, hi-t.cursor)
	for e := t.cursor; e < hi; e++ {
		edges = append(edges, e)
	}
	t.cursor = hi
	return edges
}

// rootsForEdges builds the root target list [srcs | dsts | negs] for a set
// of training edges, all at their interaction timestamps.
func (t *Trainer) rootsForEdges(edges []int) []sampler.Target {
	b := len(edges)
	roots := make([]sampler.Target, 3*b)
	for i, e := range edges {
		ev := t.DS.Graph.Events[e]
		roots[i] = sampler.Target{Node: ev.Src, Time: ev.Time}
		roots[b+i] = sampler.Target{Node: ev.Dst, Time: ev.Time}
		roots[2*b+i] = sampler.Target{Node: t.negativeDst(), Time: ev.Time}
	}
	return roots
}

// TrainStep runs one iteration of Algorithm 1 and returns the model loss.
func (t *Trainer) TrainStep() float64 {
	edges := t.nextBatchEdges()
	if len(edges) == 0 {
		return 0
	}
	b := len(edges)
	roots := t.rootsForEdges(edges)
	built := t.buildMiniBatch(roots)

	// Forward + model loss (Eq. 10) + backward + step: the PP bucket.
	var loss float64
	var posLogits []float64
	var info *models.CoTrainInfo
	t.time("PP", func() {
		gM := autograd.New()
		emb, fwdInfo := t.Model.Forward(gM, built.mb)
		info = fwdInfo
		srcIdx := make([]int32, 2*b)
		dstIdx := make([]int32, 2*b)
		labels := make([]float64, 2*b)
		for i := 0; i < b; i++ {
			srcIdx[i], dstIdx[i], labels[i] = int32(i), int32(b+i), 1 // positive
			srcIdx[b+i], dstIdx[b+i], labels[b+i] = int32(i), int32(2*b+i), 0
		}
		logits := t.Pred.ScoreGathered(gM, emb, srcIdx, dstIdx)
		lossVar := gM.BCEWithLogits(logits, labels)
		loss = lossVar.Val.Data[0]
		gM.Backward(lossVar)
		t.OptModel.Step()
		t.OptModel.ZeroGrad()

		posLogits = make([]float64, b)
		copy(posLogits, logits.Val.Data[:b])
	})

	// Co-train the adaptive sampler (Algorithm 1 lines 12–13) while
	// info.Out.Grad still holds dL/dh. Charged to AS.
	if built.sel != nil {
		t.time("AS", func() {
			ls := t.Sampler.SampleLoss(built.gS, info, built.sel, built.cs)
			built.gS.Backward(ls)
			t.OptSampler.Step()
			t.OptSampler.ZeroGrad()
		})
	}

	// Update importance scores with fresh positive logits (Eq. 11).
	if t.Selector != nil {
		t.Selector.Update(edges, posLogits)
	}
	return loss
}

// EpochResult summarizes one training epoch.
type EpochResult struct {
	MeanLoss float64
	Steps    int
	Duration time.Duration
}

// TrainEpoch runs one pass over the training set (⌈train/batch⌉ steps) and
// advances the feature cache epoch (Algorithm 3 lines 8–10).
func (t *Trainer) TrainEpoch() EpochResult {
	steps := (t.DS.TrainEnd + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
	start := time.Now()
	var total float64
	for s := 0; s < steps; s++ {
		total += t.TrainStep()
	}
	t.EdgeStore.EndEpoch()
	if f, ok := t.Finder.(*sampler.TGLFinder); ok {
		f.Reset() // new epoch restarts chronological order
	}
	t.cursor = 0
	return EpochResult{MeanLoss: total / float64(steps), Steps: steps, Duration: time.Since(start)}
}
