package train

import (
	"sort"

	"taser/internal/sampler"
)

// Split selects which chronological slice of events to evaluate.
type Split int

const (
	// SplitVal is [TrainEnd, ValEnd).
	SplitVal Split = iota
	// SplitTest is [ValEnd, |E|).
	SplitTest
)

// EvalMRR computes the transductive dynamic-link-prediction Mean Reciprocal
// Rank following DistTGL's protocol (§IV-A): for each evaluated edge
// (u, v, t), the positive destination v is ranked against
// Cfg.EvalNegatives randomly sampled destinations by predictor logit, and
// the reciprocal ranks are averaged. Ties are broken pessimistically
// (the positive ranks below equal-scoring negatives), so random embeddings
// score near chance rather than near 1.
func (t *Trainer) EvalMRR(split Split) float64 {
	lo, hi := t.DS.TrainEnd, t.DS.ValEnd
	if split == SplitTest {
		lo, hi = t.DS.ValEnd, len(t.DS.Graph.Events)
	}
	edges := make([]int, 0, hi-lo)
	for e := lo; e < hi; e++ {
		edges = append(edges, e)
	}
	if t.Cfg.MaxEvalEdges > 0 && len(edges) > t.Cfg.MaxEvalEdges {
		// Deterministic stride subsample keeps the temporal spread.
		stride := float64(len(edges)) / float64(t.Cfg.MaxEvalEdges)
		sub := make([]int, 0, t.Cfg.MaxEvalEdges)
		for i := 0; i < t.Cfg.MaxEvalEdges; i++ {
			sub = append(sub, edges[int(float64(i)*stride)])
		}
		edges = sub
	}

	const chunk = 50
	var sumRR float64
	var count int
	for start := 0; start < len(edges); start += chunk {
		end := start + chunk
		if end > len(edges) {
			end = len(edges)
		}
		sumRR += t.evalChunk(edges[start:end])
		count += end - start
	}
	if count == 0 {
		return 0
	}
	return sumRR / float64(count)
}

// evalChunk embeds a chunk of edges' sources, positives and K negatives in
// one forward pass and returns the summed reciprocal ranks.
func (t *Trainer) evalChunk(edges []int) float64 {
	b := len(edges)
	k := t.Cfg.EvalNegatives
	// Roots: [srcs(b) | positives(b) | negatives(b·k)].
	roots := t.pool.getTargets(b * (2 + k))
	for _, e := range edges {
		ev := t.DS.Graph.Events[e]
		roots = append(roots, sampler.Target{Node: ev.Src, Time: ev.Time})
	}
	for _, e := range edges {
		ev := t.DS.Graph.Events[e]
		roots = append(roots, sampler.Target{Node: ev.Dst, Time: ev.Time})
	}
	for _, e := range edges {
		ev := t.DS.Graph.Events[e]
		for j := 0; j < k; j++ {
			roots = append(roots, sampler.Target{Node: t.negativeDst(), Time: ev.Time})
		}
	}
	pb := t.prepareRoots(roots)
	built := t.finishBatch(pb)
	defer t.releasePrepared(pb)
	// Same reusable graph and pooled index scratch as a training step: the
	// eval path shares the build pool and the arena, so steady-state
	// evaluation allocates like a step instead of rebuilding from scratch.
	g := t.modelGraph()
	emb, _ := t.Model.Forward(g, built.mb)

	// Score all (src, candidate) pairs in one shot.
	srcIdx := t.pool.getIDs(b * (1 + k))[:b*(1+k)]
	dstIdx := t.pool.getIDs(b * (1 + k))[:b*(1+k)]
	defer t.pool.putIDs(srcIdx)
	defer t.pool.putIDs(dstIdx)
	for i := 0; i < b; i++ {
		srcIdx[i] = int32(i)
		dstIdx[i] = int32(b + i) // positive
		for j := 0; j < k; j++ {
			p := b + i*k + j
			srcIdx[p] = int32(i)
			dstIdx[p] = int32(2*b + i*k + j)
		}
	}
	logits := t.Pred.ScoreGathered(g, emb, srcIdx, dstIdx)

	var sumRR float64
	for i := 0; i < b; i++ {
		pos := logits.Val.Data[i]
		rank := 1
		for j := 0; j < k; j++ {
			if logits.Val.Data[b+i*k+j] >= pos {
				rank++
			}
		}
		sumRR += 1.0 / float64(rank)
	}
	return sumRR
}

// EvalAP computes link-prediction Average Precision: each evaluated edge
// contributes one positive (u, v) and one random negative (u, v′) pair; AP
// is the area under the precision–recall curve of the logit ranking. This
// is the metric TGAT/TGN report; the paper's tables use MRR, but both are
// exposed for downstream use.
func (t *Trainer) EvalAP(split Split) float64 {
	lo, hi := t.DS.TrainEnd, t.DS.ValEnd
	if split == SplitTest {
		lo, hi = t.DS.ValEnd, len(t.DS.Graph.Events)
	}
	edges := make([]int, 0, hi-lo)
	for e := lo; e < hi; e++ {
		edges = append(edges, e)
	}
	if t.Cfg.MaxEvalEdges > 0 && len(edges) > t.Cfg.MaxEvalEdges {
		stride := float64(len(edges)) / float64(t.Cfg.MaxEvalEdges)
		sub := make([]int, 0, t.Cfg.MaxEvalEdges)
		for i := 0; i < t.Cfg.MaxEvalEdges; i++ {
			sub = append(sub, edges[int(float64(i)*stride)])
		}
		edges = sub
	}
	type scored struct {
		logit float64
		pos   bool
	}
	var all []scored
	const chunk = 50
	for start := 0; start < len(edges); start += chunk {
		end := start + chunk
		if end > len(edges) {
			end = len(edges)
		}
		batch := edges[start:end]
		b := len(batch)
		pb := t.prepareRoots(t.rootsForEdges(batch)) // [srcs | dsts | negs]
		built := t.finishBatch(pb)
		g := t.modelGraph()
		emb, _ := t.Model.Forward(g, built.mb)
		srcIdx := t.pool.getIDs(2 * b)[:2*b]
		dstIdx := t.pool.getIDs(2 * b)[:2*b]
		for i := 0; i < b; i++ {
			srcIdx[i], dstIdx[i] = int32(i), int32(b+i)
			srcIdx[b+i], dstIdx[b+i] = int32(i), int32(2*b+i)
		}
		logits := t.Pred.ScoreGathered(g, emb, srcIdx, dstIdx)
		for i := 0; i < b; i++ {
			all = append(all,
				scored{logits.Val.Data[i], true},
				scored{logits.Val.Data[b+i], false})
		}
		t.pool.putIDs(srcIdx)
		t.pool.putIDs(dstIdx)
		t.releasePrepared(pb)
	}
	if len(all) == 0 {
		return 0
	}
	// AP = Σ_k precision@k over positive hits / #positives, descending logit
	// (ties broken pessimistically: negatives first).
	sort.Slice(all, func(i, j int) bool {
		if all[i].logit != all[j].logit {
			return all[i].logit > all[j].logit
		}
		return !all[i].pos && all[j].pos
	})
	var ap float64
	positives, seen := 0, 0
	for _, s := range all {
		seen++
		if s.pos {
			positives++
			ap += float64(positives) / float64(seen)
		}
	}
	return ap / float64(positives)
}

// Run trains for Cfg.Epochs epochs and returns the per-epoch losses plus the
// final validation and test MRR.
func (t *Trainer) Run() (losses []float64, valMRR, testMRR float64) {
	for e := 0; e < t.Cfg.Epochs; e++ {
		res := t.TrainEpoch()
		losses = append(losses, res.MeanLoss)
	}
	return losses, t.EvalMRR(SplitVal), t.EvalMRR(SplitTest)
}

// RankOf is a test helper: the 1-based pessimistic rank of x within scores.
func RankOf(x float64, scores []float64) int {
	cp := append([]float64(nil), scores...)
	sort.Float64s(cp)
	rank := 1
	for _, s := range cp {
		if s >= x {
			rank++
		}
	}
	return rank
}
