package train

import (
	"testing"

	"taser/internal/datasets"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/tgraph"
)

// inferRoots picks a handful of root targets from late events (so their
// temporal neighborhoods are non-trivial).
func inferRoots(ds *datasets.Dataset, n int) []sampler.Target {
	roots := make([]sampler.Target, 0, n)
	events := ds.Graph.Events
	for i := 0; i < n; i++ {
		ev := events[len(events)-1-i*7]
		roots = append(roots, sampler.Target{Node: ev.Src, Time: ev.Time})
	}
	return roots
}

// requireBlocksEqual asserts bitwise equality of two layer blocks.
func requireBlocksEqual(t *testing.T, got, want *models.LayerBlock, layer int) {
	t.Helper()
	if got.NumTargets != want.NumTargets || got.Budget != want.Budget {
		t.Fatalf("layer %d shape (%d,%d) vs (%d,%d)", layer,
			got.NumTargets, got.Budget, want.NumTargets, want.Budget)
	}
	for s := range want.NbrNodes {
		if got.NbrNodes[s] != want.NbrNodes[s] {
			t.Fatalf("layer %d NbrNodes[%d]: %d vs %d", layer, s, got.NbrNodes[s], want.NbrNodes[s])
		}
	}
	for name, pair := range map[string][2][]float64{
		"DeltaT":   {got.DeltaT.Data, want.DeltaT.Data},
		"Mask":     {got.Mask.Data, want.Mask.Data},
		"MaskCol":  {got.MaskCol.Data, want.MaskCol.Data},
		"MaskBias": {got.MaskBias.Data, want.MaskBias.Data},
		"EdgeFeat": {got.EdgeFeat.Data, want.EdgeFeat.Data},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("layer %d %s length %d vs %d", layer, name, len(pair[0]), len(pair[1]))
		}
		for i := range pair[1] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("layer %d %s[%d]: %v vs %v", layer, name, i, pair[0][i], pair[1][i])
			}
		}
	}
}

func requireMiniBatchesEqual(t *testing.T, got, want *models.MiniBatch) {
	t.Helper()
	if len(got.Layers) != len(want.Layers) {
		t.Fatalf("layer count %d vs %d", len(got.Layers), len(want.Layers))
	}
	for l := range want.Layers {
		requireBlocksEqual(t, got.Layers[l], want.Layers[l], l)
	}
	if got.LeafFeat.Rows != want.LeafFeat.Rows || got.LeafFeat.Cols != want.LeafFeat.Cols {
		t.Fatalf("leaf shape %dx%d vs %dx%d",
			got.LeafFeat.Rows, got.LeafFeat.Cols, want.LeafFeat.Rows, want.LeafFeat.Cols)
	}
	for i := range want.LeafFeat.Data {
		if got.LeafFeat.Data[i] != want.LeafFeat.Data[i] {
			t.Fatalf("LeafFeat[%d]: %v vs %v", i, got.LeafFeat.Data[i], want.LeafFeat.Data[i])
		}
	}
}

// TestInferenceBuilderMatchesTrainerBuild is the reuse contract: a detached
// InferenceBuilder over the dataset's own T-CSR builds bitwise-identical
// minibatches to the trainer's exported build path under the deterministic
// most-recent policy, for both backbones' hop depths — including after the
// buffers have been through the pool.
func TestInferenceBuilderMatchesTrainerBuild(t *testing.T) {
	for _, model := range []ModelKind{ModelTGAT, ModelGraphMixer} {
		ds := datasets.GDELT(0.03, 3) // node AND edge features
		cfg := Config{
			Model: model, Finder: FinderGPU, FinderPolicy: "recent",
			Hidden: 12, TimeDim: 6, BatchSize: 32, Seed: 9,
		}
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := NewInferenceBuilder(InferConfig{
			TCSR: ds.TCSR, NodeFeat: ds.NodeFeat, EdgeFeat: ds.EdgeFeat,
			Layers: tr.Model.NumLayers(), Budget: tr.Cfg.N,
			Policy: sampler.MostRecent, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		roots := inferRoots(ds, 6)
		want := tr.BuildMiniBatch(append([]sampler.Target(nil), roots...))
		got := ib.Build(roots)
		requireMiniBatchesEqual(t, got, want)

		// Recycle and rebuild: pooled buffers must be indistinguishable.
		ib.Release(got)
		got2 := ib.Build(roots)
		requireMiniBatchesEqual(t, got2, want)
		ib.Release(got2)
	}
}

// TestInferenceBuilderSwapGraph verifies that retargeting at a grown snapshot
// changes what is sampled (new events become visible) while keeping the pool,
// and that a width-mismatched edge matrix is rejected.
func TestInferenceBuilderSwapGraph(t *testing.T) {
	ds := datasets.Wikipedia(0.03, 5)
	half := len(ds.Graph.Events) / 2

	gb := tgraph.NewBuilder(ds.Spec.NumNodes)
	for _, ev := range ds.Graph.Events[:half] {
		if err := gb.Add(ev.Src, ev.Dst, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	_, tcsrHalf := gb.Snapshot()

	ib, err := NewInferenceBuilder(InferConfig{
		TCSR: tcsrHalf, NodeFeat: ds.NodeFeat, EdgeFeat: ds.EdgeFeat,
		Layers: 1, Budget: 5, Policy: sampler.MostRecent, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A root whose neighborhood only exists in the second half.
	var late tgraph.Event
	found := false
	for _, ev := range ds.Graph.Events[half:] {
		deg := 0
		for _, e2 := range ds.Graph.Events[:half] {
			if e2.Src == ev.Src || e2.Dst == ev.Src {
				deg++
			}
		}
		if deg == 0 {
			late, found = ev, true
			break
		}
	}
	if !found {
		t.Skip("no node active only in the second half")
	}
	roots := []sampler.Target{{Node: late.Src, Time: late.Time + 1}}
	mb := ib.Build(roots)
	if mb.Layers[0].Mask.Data[0] != 0 {
		t.Fatal("node must have an empty neighborhood in the half snapshot")
	}
	ib.Release(mb)

	for _, ev := range ds.Graph.Events[half:] {
		if err := gb.Add(ev.Src, ev.Dst, ev.Time); err != nil {
			t.Fatal(err)
		}
	}
	_, tcsrFull := gb.Snapshot()
	if err := ib.SwapGraph(tcsrFull, ds.EdgeFeat); err != nil {
		t.Fatal(err)
	}
	mb = ib.Build(roots)
	if mb.Layers[0].Mask.Data[0] != 1 {
		t.Fatal("after SwapGraph the new events must be sampleable")
	}
	ib.Release(mb)

	if err := ib.SwapGraph(tcsrFull, ds.NodeFeat); err == nil && ds.NodeFeat.Cols != ds.EdgeFeat.Cols {
		t.Fatal("width-mismatched edge features must be rejected")
	}
}

// BenchmarkInferBuild measures the pooled serving-side build path (compare
// with the BenchmarkBuild* trainer-side numbers in build_bench_test.go).
func BenchmarkInferBuild(b *testing.B) {
	ds := datasets.Wikipedia(0.1, 3)
	ib, err := NewInferenceBuilder(InferConfig{
		TCSR: ds.TCSR, NodeFeat: ds.NodeFeat, EdgeFeat: ds.EdgeFeat,
		Layers: 2, Budget: 10, Policy: sampler.MostRecent, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	roots := inferRoots(ds, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ib.Release(ib.Build(roots))
	}
}
