package train

import (
	"testing"

	"taser/internal/adaptive"
)

// benchmarkBuild measures the minibatch build path in isolation — edge
// choice, root assembly, prepare + finish, buffer release — the part of a
// training step the pipeline overlaps with PP and the buffer pool makes
// (near-)allocation-free. allocs/op is the regression guard: the seed's
// unpooled path allocated ~350 objects per step on this configuration.
func benchmarkBuild(b *testing.B, mut func(*Config)) {
	ds := tinyDS(40)
	cfg := tinyCfg()
	mut(&cfg)
	tr, err := New(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edges := tr.nextBatchEdges()
		pb := tr.prepareBatch(edges)
		tr.finishBatch(pb)
		tr.releasePrepared(pb)
	}
}

func BenchmarkBuildMiniBatch(b *testing.B) {
	benchmarkBuild(b, func(c *Config) {})
}

func BenchmarkBuildMiniBatchAdaptive(b *testing.B) {
	benchmarkBuild(b, func(c *Config) {
		c.AdaNeighbor = true
		c.Decoder = adaptive.DecoderGATv2
	})
}
