package train

import (
	"sync"

	"taser/internal/adaptive"
	"taser/internal/autograd"
	"taser/internal/models"
	"taser/internal/sampler"
)

// builtBatch bundles a materialized minibatch with the adaptive-sampler
// state needed for co-training (nil when adaptive neighbor sampling is off).
type builtBatch struct {
	mb  *models.MiniBatch
	sel *adaptive.Selection
	cs  *adaptive.CandidateSet
	gS  *autograd.Graph // sampler graph (separate from the model graph)

	// innerCS holds the candidate sets of hops below the outermost when
	// AdaAllLayers is on. gS's tape references their matrices (Select wraps
	// them via autograd.NewConst), so they must stay out of the pool until
	// after gS.Backward — i.e. until releasePrepared.
	innerCS []*adaptive.CandidateSet
}

// prepared carries one mini-batch through the two-stage construction split
// the pipelined loop relies on. The prepare stage (producer side) runs
// everything that does not read current model/sampler parameters: batch-edge
// choice, root assembly, neighbor finding and feature slicing — the NF and FS
// columns of Table III. The finish stage (consumer side) resolves whatever
// depends on live parameters: the adaptive Selection and the hops below it.
// When adaptive neighbor sampling is off the prepare stage completes the
// whole build and the finish stage is a no-op.
//
// All referenced buffers are owned by the trainer's buildPool; after the
// batch is consumed (or discarded on pipeline shutdown) releasePrepared
// returns them.
type prepared struct {
	edges []int            // training-edge indices (nil for eval batches)
	roots []sampler.Target // [srcs | dsts | negs] root targets

	built *builtBatch // non-nil once construction has finished

	// Adaptive staging: the outermost hop's m-budget finder result and its
	// sliced candidate set, produced ahead of time; the Selection itself is
	// resolved on the consumer so its gradient path sees current parameters.
	outer *sampler.Result
	cs    *adaptive.CandidateSet
}

// BuildMiniBatch materializes an inference minibatch for arbitrary roots
// through the full sampling pipeline (including the adaptive sampler when
// enabled). Exported for downstream applications that embed nodes outside
// the training loop, e.g. recommendation scoring. The returned minibatch is
// owned by the caller (it is never recycled into the trainer's buffer pool).
func (t *Trainer) BuildMiniBatch(roots []sampler.Target) *models.MiniBatch {
	return t.buildMiniBatch(roots).mb
}

// buildMiniBatch runs both construction stages back to back (the synchronous
// path). Callers that want the buffers recycled must releasePrepared the
// enclosing prepared; this helper intentionally does not.
func (t *Trainer) buildMiniBatch(roots []sampler.Target) *builtBatch {
	return t.finishBatch(t.prepareRoots(roots))
}

// prepareBatch is the producer stage for a training batch: assemble roots
// (consuming the trainer RNG's negative draws in batch order) and stage the
// build.
func (t *Trainer) prepareBatch(edges []int) *prepared {
	pb := t.prepareRoots(t.rootsForEdges(edges))
	pb.edges = edges
	return pb
}

// prepareRoots stages construction for arbitrary roots: the full build when
// adaptive neighbor sampling is off, or the outermost hop's candidates
// (NF at budget m + candidate feature slicing) when it is on.
func (t *Trainer) prepareRoots(roots []sampler.Target) *prepared {
	pb := &prepared{roots: roots}
	if t.Sampler == nil {
		t.finishBatch(pb) // parameter-independent: complete it producer-side
		return pb
	}
	pb.outer = t.pool.getResult()
	t.time("NF", func() { t.sampleLocked(t.Finder, &t.finderMuP, roots, t.Cfg.M, pb.outer) })
	pb.cs = t.buildCandidateSet(roots, pb.outer)
	return pb
}

// finishBatch completes construction. For the adaptive path this resolves the
// Selection against current sampler parameters and descends the remaining
// hops; it must therefore run on the consumer, serialized with optimizer
// steps.
func (t *Trainer) finishBatch(pb *prepared) *builtBatch {
	if pb.built != nil {
		return pb.built
	}
	out := &builtBatch{}
	if t.Sampler != nil {
		// Checking the reusable sampler graph out here ends the previous
		// step's pass; finishBatch always runs consumer-side when the
		// adaptive sampler is on, serialized with SampleLoss/Backward.
		out.gS = t.samplerGraph()
	}

	layers := t.Model.NumLayers()
	blocks := make([]*models.LayerBlock, layers) // [0] = innermost
	targets := pb.roots
	// With adaptive sampling on, this stage runs consumer-side while the
	// producer prepares future batches: use the dedicated consumer finder so
	// both sampling streams stay deterministic. Otherwise the whole build
	// runs producer-side on the primary finder.
	finder, finderMu := t.Finder, &t.finderMuP
	if t.Sampler != nil {
		finder, finderMu = t.finderC, &t.finderMuC
	}
	var spent []sampler.Target // pooled intermediate target list to recycle
	for l := layers - 1; l >= 0; l-- {
		isOuter := l == layers-1
		useAda := t.Sampler != nil && (isOuter || t.Cfg.AdaAllLayers)
		var block *models.LayerBlock
		if useAda {
			res, cs := pb.outer, pb.cs
			if res == nil {
				res = t.pool.getResult()
				t.time("NF", func() { t.sampleLocked(finder, finderMu, targets, t.Cfg.M, res) })
				cs = t.buildCandidateSet(targets, res)
			}
			var sel *adaptive.Selection
			t.time("AS", func() { sel = t.Sampler.Select(out.gS, cs, t.Cfg.N) })
			block = t.blockFromSelection(targets, res, sel)
			if isOuter {
				out.sel, out.cs = sel, cs // retained for co-training
			} else {
				out.innerCS = append(out.innerCS, cs) // gS still references it
				t.Sampler.Recycle(sel)                // inner selections end here
			}
			t.pool.putResult(res)
			pb.outer, pb.cs = nil, nil
		} else {
			res := t.pool.getResult()
			t.time("NF", func() { t.sampleLocked(finder, finderMu, targets, t.Cfg.N, res) })
			block = t.blockFromResult(targets, res)
			t.sliceBlockEdges(block, res.Eids)
			t.pool.putResult(res)
		}
		blocks[l] = block
		next := t.pool.getTargets(len(targets) + len(block.NbrNodes))
		next = appendExtendedTargets(next, targets, block)
		t.pool.putTargets(spent)
		spent, targets = next, next
	}

	// Leaf features: h⁰ for the innermost targets followed by their
	// neighbors — which is exactly the final extended target list.
	leaf := t.pool.getMat(len(targets), t.DS.Spec.NodeDim)
	ids := t.pool.getIDs(len(targets))
	for _, tg := range targets {
		ids = append(ids, tg.Node)
	}
	t.sliceNodes(ids, leaf)
	t.pool.putIDs(ids)
	t.pool.putTargets(spent)

	out.mb = &models.MiniBatch{Layers: blocks, LeafFeat: leaf}
	pb.built = out
	return out
}

// releasePrepared returns a batch's pooled buffers, whether or not it was
// finished (the pipeline discards unfinished batches on early shutdown).
func (t *Trainer) releasePrepared(pb *prepared) {
	if pb.built != nil {
		for _, blk := range pb.built.mb.Layers {
			t.pool.putBlock(blk)
		}
		t.pool.putMat(pb.built.mb.LeafFeat)
		t.pool.putSet(pb.built.cs)
		for _, cs := range pb.built.innerCS {
			t.pool.putSet(cs)
		}
		if pb.built.sel != nil {
			t.Sampler.Recycle(pb.built.sel)
			pb.built.sel = nil
		}
	}
	t.pool.putResult(pb.outer)
	t.pool.putSet(pb.cs)
	t.pool.putTargets(pb.roots)
	t.pool.putInts(pb.edges)
	pb.built, pb.outer, pb.cs, pb.roots, pb.edges = nil, nil, nil, nil, nil
}

// sampleLocked runs a neighbor finder under that instance's mutex. Each
// pipeline side owns a dedicated finder instance (Finder for the producer,
// finderC for consumer-side adaptive hops) with its own lock, so the two
// sides' NF phases overlap while each instance's sampling stream stays a
// function of its own call order.
func (t *Trainer) sampleLocked(f sampler.Finder, mu *sync.Mutex, targets []sampler.Target, budget int, out *sampler.Result) {
	mu.Lock()
	defer mu.Unlock()
	if err := f.Sample(targets, budget, t.policy, out); err != nil {
		panic(err)
	}
}

// extendTargets appends the block's selected neighbors as next-hop targets.
// A neighbor (u, t_u) is embedded at its interaction time t_u. Padded slots
// become the sentinel target (node 0, time 0), whose temporal neighborhood
// is empty; its (meaningless) embedding is excluded by the outer layer mask.
func extendTargets(targets []sampler.Target, block *models.LayerBlock) []sampler.Target {
	next := make([]sampler.Target, 0, len(targets)+len(block.NbrNodes))
	return appendExtendedTargets(next, targets, block)
}

// appendExtendedTargets is extendTargets into a caller-owned slice.
func appendExtendedTargets(next, targets []sampler.Target, block *models.LayerBlock) []sampler.Target {
	next = append(next, targets...)
	for i := 0; i < block.NumTargets; i++ {
		for j := 0; j < block.Budget; j++ {
			s := i*block.Budget + j
			node := block.NbrNodes[s]
			if node < 0 {
				next = append(next, sampler.Target{Node: 0, Time: 0})
				continue
			}
			// Δt = t_target − t_edge ⇒ t_edge = t_target − Δt.
			next = append(next, sampler.Target{
				Node: node,
				Time: targets[i].Time - block.DeltaT.Data[s],
			})
		}
	}
	return next
}

// blockFromResult converts a finder result (budget n) directly into a layer
// block (the non-adaptive path).
func (t *Trainer) blockFromResult(targets []sampler.Target, res *sampler.Result) *models.LayerBlock {
	block := t.pool.getBlock(len(targets), res.Budget, t.DS.Spec.EdgeDim)
	fillBlockFromResult(block, targets, res)
	return block
}

// fillBlockFromResult copies a finder result into a zeroed block of matching
// shape and finishes the mask. Shared by the training build path and the
// detached InferenceBuilder, so served minibatches are constructed by the
// byte-identical kernel the offline loop uses.
func fillBlockFromResult(block *models.LayerBlock, targets []sampler.Target, res *sampler.Result) {
	for i, tg := range targets {
		for j := 0; j < int(res.Counts[i]); j++ {
			s := res.Slot(i, j)
			block.SetEntry(i, j, res.Nodes[s], tg.Time-res.Times[s])
		}
	}
	block.FinishMask()
}

// sliceBlockEdges fetches the block's edge features (eids aligned with the
// block layout; −1 yields zero rows).
func (t *Trainer) sliceBlockEdges(block *models.LayerBlock, eids []int32) {
	if t.DS.Spec.EdgeDim == 0 {
		return
	}
	t.sliceEdges(eids, block.EdgeFeat)
}

// buildCandidateSet turns an m-budget finder result into the adaptive
// sampler's input, slicing candidate node/edge features and the targets' own
// features (the extra traffic that motivates the GPU cache, §III-D).
func (t *Trainer) buildCandidateSet(targets []sampler.Target, res *sampler.Result) *adaptive.CandidateSet {
	cs := t.pool.getSet(len(targets), res.Budget, t.DS.Spec.NodeDim, t.DS.Spec.EdgeDim)
	for i, tg := range targets {
		for j := 0; j < int(res.Counts[i]); j++ {
			s := res.Slot(i, j)
			cs.SetEntry(i, j, res.Nodes[s], tg.Time-res.Times[s])
		}
	}
	cs.FinishMask()
	if t.DS.Spec.NodeDim > 0 {
		t.sliceNodes(cs.Nodes, cs.NodeFeat)
		ids := t.pool.getIDs(len(targets))
		for _, tg := range targets {
			ids = append(ids, tg.Node)
		}
		t.sliceNodes(ids, cs.TargetFeat)
		t.pool.putIDs(ids)
	}
	if t.DS.Spec.EdgeDim > 0 {
		t.sliceEdges(res.Eids, cs.EdgeFeat)
	}
	return cs
}

// blockFromSelection materializes the n-budget layer block from the adaptive
// sampler's chosen candidate slots, then slices the chosen edges' features.
func (t *Trainer) blockFromSelection(targets []sampler.Target, res *sampler.Result, sel *adaptive.Selection) *models.LayerBlock {
	n := t.Cfg.N
	block := t.pool.getBlock(len(targets), n, t.DS.Spec.EdgeDim)
	eids := t.pool.getIDs(len(targets) * n)
	eids = eids[:len(targets)*n]
	for i := range eids {
		eids[i] = -1
	}
	for i, tg := range targets {
		for j, slot := range sel.Chosen[i] {
			s := res.Slot(i, slot)
			block.SetEntry(i, j, res.Nodes[s], tg.Time-res.Times[s])
			eids[i*n+j] = res.Eids[s]
		}
	}
	block.FinishMask()
	t.sliceBlockEdges(block, eids)
	t.pool.putIDs(eids)
	return block
}
