package train

import (
	"taser/internal/adaptive"
	"taser/internal/autograd"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/tensor"
)

// builtBatch bundles a materialized minibatch with the adaptive-sampler
// state needed for co-training (nil when adaptive neighbor sampling is off).
type builtBatch struct {
	mb  *models.MiniBatch
	sel *adaptive.Selection
	cs  *adaptive.CandidateSet
	gS  *autograd.Graph // sampler graph (separate from the model graph)
}

// BuildMiniBatch materializes an inference minibatch for arbitrary roots
// through the full sampling pipeline (including the adaptive sampler when
// enabled). Exported for downstream applications that embed nodes outside
// the training loop, e.g. recommendation scoring.
func (t *Trainer) BuildMiniBatch(roots []sampler.Target) *models.MiniBatch {
	return t.buildMiniBatch(roots).mb
}

// buildMiniBatch materializes the multi-hop minibatch for the given roots,
// hop by hop from the outermost layer inward (Algorithm 1 lines 3–9). Each
// hop runs the static neighbor finder (NF); when adaptive neighbor sampling
// is enabled the finder over-samples m candidates whose features are sliced
// (FS) and the parameterized sampler sub-selects n of them (AS).
func (t *Trainer) buildMiniBatch(roots []sampler.Target) *builtBatch {
	cfg := t.Cfg
	layers := t.Model.NumLayers()
	out := &builtBatch{}
	if t.Sampler != nil {
		out.gS = autograd.New()
	}

	targets := roots
	blocks := make([]*models.LayerBlock, layers) // [0] = innermost
	for l := layers - 1; l >= 0; l-- {
		isOuter := l == layers-1
		useAda := t.Sampler != nil && (isOuter || cfg.AdaAllLayers)
		var block *models.LayerBlock
		if useAda {
			t.time("NF", func() {
				if err := t.Finder.Sample(targets, cfg.M, t.policy, &t.scratch); err != nil {
					panic(err)
				}
			})
			cs := t.buildCandidateSet(targets, &t.scratch)
			var sel *adaptive.Selection
			t.time("AS", func() { sel = t.Sampler.Select(out.gS, cs, cfg.N) })
			block = t.blockFromSelection(targets, &t.scratch, sel)
			if isOuter {
				out.sel, out.cs = sel, cs
			}
		} else {
			t.time("NF", func() {
				if err := t.Finder.Sample(targets, cfg.N, t.policy, &t.scratch); err != nil {
					panic(err)
				}
				block = t.blockFromResult(targets, &t.scratch)
			})
			t.sliceBlockEdges(block, t.scratch.Eids)
		}
		blocks[l] = block
		targets = extendTargets(targets, block)
	}

	// Leaf features: h⁰ for the innermost targets followed by their
	// neighbors — which is exactly the final extended target list.
	leaf := tensor.New(len(targets), t.DS.Spec.NodeDim)
	ids := make([]int32, len(targets))
	for i, tg := range targets {
		ids[i] = tg.Node
	}
	t.sliceNodes(ids, leaf)

	out.mb = &models.MiniBatch{Layers: blocks, LeafFeat: leaf}
	return out
}

// extendTargets appends the block's selected neighbors as next-hop targets.
// A neighbor (u, t_u) is embedded at its interaction time t_u. Padded slots
// become the sentinel target (node 0, time 0), whose temporal neighborhood
// is empty; its (meaningless) embedding is excluded by the outer layer mask.
func extendTargets(targets []sampler.Target, block *models.LayerBlock) []sampler.Target {
	next := make([]sampler.Target, 0, len(targets)+len(block.NbrNodes))
	next = append(next, targets...)
	for i := 0; i < block.NumTargets; i++ {
		for j := 0; j < block.Budget; j++ {
			s := i*block.Budget + j
			node := block.NbrNodes[s]
			if node < 0 {
				next = append(next, sampler.Target{Node: 0, Time: 0})
				continue
			}
			// Δt = t_target − t_edge ⇒ t_edge = t_target − Δt.
			next = append(next, sampler.Target{
				Node: node,
				Time: targets[i].Time - block.DeltaT.Data[s],
			})
		}
	}
	return next
}

// blockFromResult converts a finder result (budget n) directly into a layer
// block (the non-adaptive path).
func (t *Trainer) blockFromResult(targets []sampler.Target, res *sampler.Result) *models.LayerBlock {
	block := models.NewLayerBlock(len(targets), res.Budget, t.DS.Spec.EdgeDim)
	for i, tg := range targets {
		for j := 0; j < int(res.Counts[i]); j++ {
			s := res.Slot(i, j)
			block.SetEntry(i, j, res.Nodes[s], tg.Time-res.Times[s])
		}
	}
	block.FinishMask()
	return block
}

// sliceBlockEdges fetches the block's edge features (eids aligned with the
// block layout; −1 yields zero rows).
func (t *Trainer) sliceBlockEdges(block *models.LayerBlock, eids []int32) {
	if t.DS.Spec.EdgeDim == 0 {
		return
	}
	t.sliceEdges(eids, block.EdgeFeat)
}

// buildCandidateSet turns an m-budget finder result into the adaptive
// sampler's input, slicing candidate node/edge features and the targets' own
// features (the extra traffic that motivates the GPU cache, §III-D).
func (t *Trainer) buildCandidateSet(targets []sampler.Target, res *sampler.Result) *adaptive.CandidateSet {
	cs := adaptive.NewCandidateSet(len(targets), res.Budget, t.DS.Spec.NodeDim, t.DS.Spec.EdgeDim)
	for i, tg := range targets {
		for j := 0; j < int(res.Counts[i]); j++ {
			s := res.Slot(i, j)
			cs.SetEntry(i, j, res.Nodes[s], tg.Time-res.Times[s])
		}
	}
	cs.FinishMask()
	if t.DS.Spec.NodeDim > 0 {
		t.sliceNodes(cs.Nodes, cs.NodeFeat)
		ids := make([]int32, len(targets))
		for i, tg := range targets {
			ids[i] = tg.Node
		}
		t.sliceNodes(ids, cs.TargetFeat)
	}
	if t.DS.Spec.EdgeDim > 0 {
		t.sliceEdges(res.Eids, cs.EdgeFeat)
	}
	return cs
}

// blockFromSelection materializes the n-budget layer block from the adaptive
// sampler's chosen candidate slots, then slices the chosen edges' features.
func (t *Trainer) blockFromSelection(targets []sampler.Target, res *sampler.Result, sel *adaptive.Selection) *models.LayerBlock {
	n := t.Cfg.N
	block := models.NewLayerBlock(len(targets), n, t.DS.Spec.EdgeDim)
	eids := make([]int32, len(targets)*n)
	for i := range eids {
		eids[i] = -1
	}
	for i, tg := range targets {
		for j, slot := range sel.Chosen[i] {
			s := res.Slot(i, slot)
			block.SetEntry(i, j, res.Nodes[s], tg.Time-res.Times[s])
			eids[i*n+j] = res.Eids[s]
		}
	}
	block.FinishMask()
	t.sliceBlockEdges(block, eids)
	return block
}
