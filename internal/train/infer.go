package train

import (
	"fmt"
	"sync"

	"taser/internal/autograd"
	"taser/internal/device"
	"taser/internal/featstore"
	"taser/internal/mathx"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/tensor"
	"taser/internal/tgraph"
)

// InferConfig binds an InferenceBuilder to a graph and a model shape. TCSR
// accepts any packed adjacency layout — the dataset's flat T-CSR or the
// chunked AppendableTCSR an online ingest path publishes incrementally.
type InferConfig struct {
	TCSR     tgraph.Adjacency
	NodeFeat *tensor.Matrix // static node features (nil or zero-width when absent)
	EdgeFeat *tensor.Matrix // per-event edge features, rows aligned with event ids

	Layers int            // model hop depth (TGAT: 2, GraphMixer: 1)
	Budget int            // supporting neighbors per hop (n)
	Policy sampler.Policy // static sampling policy (serving default: MostRecent)
	Finder FinderKind     // "" = FinderGPU (arbitrary-order, the serving requirement)
	Seed   uint64

	Xfer *device.XferStats // optional transfer accounting (may be nil)
}

// InferenceBuilder materializes inference minibatches through the same
// pooled, allocation-free build path the training loop uses (pool.go),
// detached from any Trainer: it binds a neighbor finder over an arbitrary
// T-CSR — e.g. an online serving snapshot — plus node/edge feature stores,
// and builds non-adaptive (static-policy) minibatches for arbitrary roots.
//
// The online serving subsystem (internal/serve) creates one per engine and
// retargets it at each published snapshot with SwapGraph. The buffer pool
// survives swaps: block/matrix shape classes depend only on batch size and
// model shape, not on the graph, so steady-state serving recycles the same
// buffers while the graph grows underneath.
//
// Build and Release are not safe for concurrent use with each other or with
// SwapGraph; the serving scheduler owns the builder from a single goroutine,
// which is also what keeps the finder's sampling stream well-defined.
type InferenceBuilder struct {
	cfg      InferConfig
	gpu      *device.GPU // one worker pool shared by every snapshot's finder
	finder   sampler.Finder
	finderMu sync.Mutex

	nodeStore *featstore.Store
	edgeStore *featstore.Store // nil when the graph carries no edge features

	pool             *buildPool
	nodeDim, edgeDim int

	// g is the builder's reusable arena-backed forward graph; see Graph.
	g *autograd.Graph
}

// Graph checks out the builder's reusable arena-backed autograd graph for
// one forward pass, resetting the previous pass's tape and recycling its
// intermediates. The serving scheduler pairs each Build with one Graph
// checkout: embeddings must be copied out of the returned graph's matrices
// before the next checkout (DESIGN.md §7). Like Build/SwapGraph, it is owned
// by a single goroutine.
func (b *InferenceBuilder) Graph() *autograd.Graph {
	if b.g == nil {
		b.g = autograd.NewReusable()
	}
	b.g.Reset()
	return b.g
}

// NewInferenceBuilder validates cfg and builds the initial finder and stores.
func NewInferenceBuilder(cfg InferConfig) (*InferenceBuilder, error) {
	if cfg.TCSR == nil {
		return nil, fmt.Errorf("train: InferConfig.TCSR is required")
	}
	if cfg.Layers <= 0 || cfg.Budget <= 0 {
		return nil, fmt.Errorf("train: InferConfig needs positive Layers (%d) and Budget (%d)",
			cfg.Layers, cfg.Budget)
	}
	if cfg.NodeFeat == nil {
		cfg.NodeFeat = tensor.New(cfg.TCSR.NumNodes(), 0)
	}
	b := &InferenceBuilder{
		cfg:     cfg,
		pool:    newBuildPool(),
		nodeDim: cfg.NodeFeat.Cols,
	}
	b.nodeStore = featstore.New(cfg.NodeFeat, nil, cfg.Xfer)
	if cfg.EdgeFeat != nil {
		b.edgeDim = cfg.EdgeFeat.Cols
	}
	if err := b.SwapGraph(cfg.TCSR, cfg.EdgeFeat); err != nil {
		return nil, err
	}
	return b, nil
}

// newFinder constructs a finder of the configured kind over tcsr. The GPU
// finder reuses the builder's device (and so its persistent worker pool)
// across snapshot swaps instead of spinning up a pool per snapshot.
func (b *InferenceBuilder) newFinder(tcsr tgraph.Adjacency) (sampler.Finder, error) {
	switch b.cfg.Finder {
	case FinderOrigin:
		return sampler.NewOriginFinder(tcsr, mathx.NewRNG(b.cfg.Seed)), nil
	case FinderTGL:
		return sampler.NewTGLFinder(tcsr, mathx.NewRNG(b.cfg.Seed)), nil
	case "", FinderGPU:
		if b.gpu == nil {
			b.gpu = device.New()
		}
		return sampler.NewGPUFinder(tcsr, b.gpu, b.cfg.Seed), nil
	}
	return nil, fmt.Errorf("train: unknown finder %q", b.cfg.Finder)
}

// SwapGraph retargets the builder at a new immutable graph snapshot: a fresh
// finder over tcsr and a fresh edge-feature store (rows aligned with the
// snapshot's event ids). The node store and the buffer pool are retained.
// The finder is reseeded from the configured seed, so randomized policies
// restart their stream per snapshot; the serving default (MostRecent) draws
// no randomness and is unaffected. tcsr may be any packed layout; with
// incremental snapshots (tgraph.AppendableTCSR) the swap cost is independent
// of the stream length.
func (b *InferenceBuilder) SwapGraph(tcsr tgraph.Adjacency, edgeFeat *tensor.Matrix) error {
	if edgeFeat == nil {
		edgeFeat = tensor.New(0, b.edgeDim)
	}
	if edgeFeat.Cols != b.edgeDim {
		return fmt.Errorf("train: SwapGraph edge-feature width %d, builder expects %d",
			edgeFeat.Cols, b.edgeDim)
	}
	finder, err := b.newFinder(tcsr)
	if err != nil {
		return err
	}
	b.finderMu.Lock()
	b.finder = finder
	b.finderMu.Unlock()
	if b.edgeDim > 0 {
		b.edgeStore = featstore.New(edgeFeat, nil, b.cfg.Xfer)
	}
	return nil
}

// Build materializes the minibatch for roots through the pooled non-adaptive
// path: per hop, neighbor finding at the static policy followed by edge
// feature slicing, then leaf (h⁰) slicing. The returned minibatch is owned by
// the pool — hand it back with Release after the forward pass; do not retain
// references across the Release.
func (b *InferenceBuilder) Build(roots []sampler.Target) *models.MiniBatch {
	blocks := make([]*models.LayerBlock, b.cfg.Layers)
	targets := roots
	var spent []sampler.Target
	for l := b.cfg.Layers - 1; l >= 0; l-- {
		res := b.pool.getResult()
		b.finderMu.Lock()
		err := b.finder.Sample(targets, b.cfg.Budget, b.cfg.Policy, res)
		b.finderMu.Unlock()
		if err != nil {
			panic(err) // targets are internally generated; a failure is a bug
		}
		block := b.pool.getBlock(len(targets), res.Budget, b.edgeDim)
		fillBlockFromResult(block, targets, res)
		if b.edgeDim > 0 {
			b.edgeStore.Slice(res.Eids, block.EdgeFeat)
		}
		b.pool.putResult(res)
		blocks[l] = block

		next := b.pool.getTargets(len(targets) + len(block.NbrNodes))
		next = appendExtendedTargets(next, targets, block)
		b.pool.putTargets(spent)
		spent, targets = next, next
	}
	leaf := b.pool.getMat(len(targets), b.nodeDim)
	ids := b.pool.getIDs(len(targets))
	for _, tg := range targets {
		ids = append(ids, tg.Node)
	}
	b.nodeStore.Slice(ids, leaf)
	b.pool.putIDs(ids)
	b.pool.putTargets(spent)
	return &models.MiniBatch{Layers: blocks, LeafFeat: leaf}
}

// Release returns a minibatch built by Build to the pool.
func (b *InferenceBuilder) Release(mb *models.MiniBatch) {
	if mb == nil {
		return
	}
	for _, blk := range mb.Layers {
		b.pool.putBlock(blk)
	}
	b.pool.putMat(mb.LeafFeat)
}
