package train

import (
	"math"
	"testing"

	"taser/internal/datasets"
)

// tinyDS generates a fast dataset for trainer tests.
func tinyDS(seed uint64) *datasets.Dataset {
	return datasets.Generate(datasets.Spec{
		Name: "tiny", NumNodes: 60, NumSrc: 48, NumEvents: 900,
		NodeDim: 4, EdgeDim: 6,
		NoiseRate: 0.2, DriftRate: 1, RepeatRate: 0.5, Skew: 1.1,
		Seed: seed,
	})
}

func tinyCfg() Config {
	return Config{
		Model: ModelTGAT, Hidden: 8, TimeDim: 6, N: 3, M: 6,
		BatchSize: 32, Epochs: 1, EvalNegatives: 5, MaxEvalEdges: 40, Seed: 3,
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Model != ModelTGAT || c.Finder != FinderGPU || c.N != 10 || c.M != 25 ||
		c.Gamma != 0.1 || c.EvalNegatives != 49 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	ds := tinyDS(1)
	if _, err := New(Config{Model: "nope"}, ds); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := New(Config{Finder: "nope"}, ds); err == nil {
		t.Fatal("unknown finder must error")
	}
	// TGL finder cannot serve adaptive mini-batch selection (§III-C).
	if _, err := New(Config{Finder: FinderTGL, AdaBatch: true}, ds); err == nil {
		t.Fatal("TGL + adaptive batching must error")
	}
}

func TestTrainStepReducesNothingButRuns(t *testing.T) {
	ds := tinyDS(2)
	for _, model := range []ModelKind{ModelTGAT, ModelGraphMixer} {
		cfg := tinyCfg()
		cfg.Model = model
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		loss := tr.TrainStep()
		if math.IsNaN(loss) || loss <= 0 {
			t.Fatalf("%s: implausible loss %v", model, loss)
		}
		// BCE with random init should start near ln 2.
		if loss > 1.5 {
			t.Fatalf("%s: loss %v far above ln2", model, loss)
		}
	}
}

func TestTrainLossDecreases(t *testing.T) {
	ds := tinyDS(3)
	cfg := tinyCfg()
	cfg.Epochs = 4
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	losses, _, _ := tr.Run()
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss should fall: %v", losses)
	}
}

func TestAllVariantsRun(t *testing.T) {
	ds := tinyDS(4)
	for _, v := range []struct {
		name   string
		ab, an bool
	}{
		{"baseline", false, false},
		{"adabatch", true, false},
		{"adaneighbor", false, true},
		{"taser", true, true},
	} {
		cfg := tinyCfg()
		cfg.AdaBatch, cfg.AdaNeighbor = v.ab, v.an
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		res := tr.TrainEpoch()
		if res.Steps == 0 || math.IsNaN(res.MeanLoss) {
			t.Fatalf("%s: %+v", v.name, res)
		}
		if v.ab && tr.Selector == nil || v.an && tr.Sampler == nil {
			t.Fatalf("%s: adaptive components missing", v.name)
		}
	}
}

func TestAdaBatchUpdatesScores(t *testing.T) {
	ds := tinyDS(5)
	cfg := tinyCfg()
	cfg.AdaBatch = true
	tr, _ := New(cfg, ds)
	tr.TrainEpoch()
	// After an epoch, at least some scores must have left the uniform init.
	changed := 0
	for e := 0; e < tr.Selector.Len(); e++ {
		if tr.Selector.Score(e) != 1 {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("adaptive batch selection never updated P")
	}
}

func TestTimerBucketsPopulated(t *testing.T) {
	ds := tinyDS(6)
	cfg := tinyCfg()
	cfg.AdaNeighbor = true
	tr, _ := New(cfg, ds)
	tr.TrainStep()
	for _, bucket := range []string{"NF", "AS", "FS", "PP"} {
		if tr.Timer.Get(bucket) <= 0 {
			t.Fatalf("bucket %s empty", bucket)
		}
	}
}

func TestEvalMRRBounds(t *testing.T) {
	ds := tinyDS(7)
	cfg := tinyCfg()
	tr, _ := New(cfg, ds)
	mrr := tr.EvalMRR(SplitTest)
	if mrr < 0 || mrr > 1 {
		t.Fatalf("MRR out of bounds: %v", mrr)
	}
	// Untrained model with 5 negatives: expected MRR ≈ mean(1/rank) over
	// uniform ranks 1..6 ≈ 0.41; allow a generous band.
	if mrr < 0.1 || mrr > 0.8 {
		t.Fatalf("untrained MRR %v implausible for 5 negatives", mrr)
	}
}

func TestEvalRespectsMaxEdges(t *testing.T) {
	ds := tinyDS(8)
	cfg := tinyCfg()
	cfg.MaxEvalEdges = 10
	tr, _ := New(cfg, ds)
	// Just verify it runs fast and returns a sane value on both splits.
	for _, split := range []Split{SplitVal, SplitTest} {
		if m := tr.EvalMRR(split); m < 0 || m > 1 {
			t.Fatalf("split %d: %v", split, m)
		}
	}
}

func TestTrainingImprovesMRR(t *testing.T) {
	// The synthetic affinity signal must be learnable: trained MRR should
	// beat the untrained model's MRR by a clear margin.
	ds := datasets.Generate(datasets.Spec{
		Name: "learn", NumNodes: 60, NumSrc: 48, NumEvents: 2500,
		NodeDim: 0, EdgeDim: 8,
		NoiseRate: 0.1, DriftRate: 0.5, RepeatRate: 0.6, Skew: 1.0,
		Seed: 11,
	})
	cfg := Config{
		Model: ModelGraphMixer, Hidden: 16, TimeDim: 8, N: 5, M: 10,
		BatchSize: 100, Epochs: 5, EvalNegatives: 9, MaxEvalEdges: 150,
		LR: 3e-3, Seed: 5,
	}
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.EvalMRR(SplitTest)
	for e := 0; e < cfg.Epochs; e++ {
		tr.TrainEpoch()
	}
	after := tr.EvalMRR(SplitTest)
	if after <= before+0.05 {
		t.Fatalf("training did not improve MRR: before %v after %v", before, after)
	}
}

func TestCacheIntegrationHitRateRises(t *testing.T) {
	ds := tinyDS(9)
	cfg := tinyCfg()
	cfg.CacheRatio = 0.3
	tr, _ := New(cfg, ds)
	tr.TrainEpoch() // epoch 1 trains the cache
	pol := tr.EdgeStore.Policy()
	pol.ResetStats()
	tr.TrainEpoch()
	if pol.HitRate() < 0.2 {
		t.Fatalf("warm cache hit rate %v implausibly low", pol.HitRate())
	}
}

func TestNegativeDstRespectsBipartite(t *testing.T) {
	ds := tinyDS(10) // NumSrc=48
	cfg := tinyCfg()
	tr, _ := New(cfg, ds)
	for i := 0; i < 200; i++ {
		if v := tr.negativeDst(); v < 48 || v >= 60 {
			t.Fatalf("negative %d outside destination partition", v)
		}
	}
}

func TestRankOf(t *testing.T) {
	if RankOf(5, []float64{1, 2, 3}) != 1 {
		t.Fatal("top rank")
	}
	if RankOf(0, []float64{1, 2, 3}) != 4 {
		t.Fatal("bottom rank")
	}
	if RankOf(2, []float64{1, 2, 3}) != 3 {
		t.Fatal("ties rank pessimistically")
	}
}

func TestTGLFinderBaselineEpoch(t *testing.T) {
	// The chronological baseline must work with the TGL finder (this is how
	// TGL trains), including the epoch-boundary pointer reset.
	ds := tinyDS(12)
	cfg := tinyCfg()
	cfg.Finder = FinderTGL
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpoch()
	tr.TrainEpoch() // would fail without Reset between epochs
}

func TestOriginFinderBaselineStep(t *testing.T) {
	ds := tinyDS(13)
	cfg := tinyCfg()
	cfg.Finder = FinderOrigin
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if loss := tr.TrainStep(); math.IsNaN(loss) {
		t.Fatal("origin finder step")
	}
}
