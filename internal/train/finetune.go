package train

import (
	"fmt"

	"taser/internal/mathx"
	"taser/internal/models"
	"taser/internal/nn"
	"taser/internal/sampler"
	"taser/internal/tensor"
	"taser/internal/tgraph"
)

// FineTuneConfig binds a FineTuner to a model pair and a graph. Model and
// Pred are cloned at construction: the fine-tuner trains its own copies, so
// the originals (typically the ones a serving engine forwards with) are
// never written concurrently with reads.
type FineTuneConfig struct {
	Model models.TGNN           // pretrained backbone (cloned, not mutated)
	Pred  *models.EdgePredictor // pretrained decoder (cloned, not mutated)
	Infer InferConfig           // graph + build-path binding (Layers filled from Model)

	LR       float64 // Adam learning rate (default 1e-4: gentler than pretraining)
	ClipNorm float64 // gradient clipping by global norm (default 5, as offline)

	NumNodes int // negative-sampling id space
	NumSrc   int // bipartite: negatives drawn from [NumSrc, NumNodes); 0 = any node
	Seed     uint64
}

// FineTuner runs continual-learning steps on streamed events: the same
// self-supervised link-prediction objective, forward–backward and Adam
// update as one offline Trainer step, but assembled through the pooled
// InferenceBuilder against an arbitrary (typically live-serving) adjacency
// snapshot instead of a frozen dataset. One online Step on the same events,
// graph and starting parameters is bitwise-equal to the offline TrainStep
// (TestFinetuneStepMatchesOfflineTrainStep).
//
// Like the InferenceBuilder it owns, a FineTuner is single-goroutine state:
// the online fine-tuning loop (internal/finetune) serializes Step, SwapGraph
// and Capture on its own goroutine.
type FineTuner struct {
	cfg     FineTuneConfig
	model   models.TGNN
	pred    *models.EdgePredictor
	builder *InferenceBuilder
	opt     *nn.Adam
	rng     *mathx.RNG

	// Step scratch, reused across steps (the step envelope allocates O(1)
	// amortized once the builder pool and graph arena are warm).
	roots          []sampler.Target
	srcIdx, dstIdx []int32
	labels         []float64
}

// NewFineTuner clones cfg.Model/cfg.Pred and binds the pooled build path to
// cfg.Infer's graph. Infer.Layers is overridden by the model's own depth.
func NewFineTuner(cfg FineTuneConfig) (*FineTuner, error) {
	if cfg.Model == nil || cfg.Pred == nil {
		return nil, fmt.Errorf("train: FineTuneConfig needs Model and Pred")
	}
	if cfg.NumNodes <= 0 {
		return nil, fmt.Errorf("train: FineTuneConfig.NumNodes must be positive")
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-4
	}
	if cfg.ClipNorm == 0 {
		cfg.ClipNorm = 5
	}
	cfg.Infer.Layers = cfg.Model.NumLayers()
	if cfg.Infer.Seed == 0 {
		cfg.Infer.Seed = cfg.Seed
	}
	ft := &FineTuner{
		cfg:   cfg,
		model: cfg.Model.Clone(),
		pred:  cfg.Pred.Clone(),
		rng:   mathx.NewRNG(cfg.Seed),
	}
	b, err := NewInferenceBuilder(cfg.Infer)
	if err != nil {
		return nil, err
	}
	ft.builder = b
	params := append(ft.model.Params(), ft.pred.Params()...)
	ft.opt = nn.NewAdam(params, cfg.LR)
	ft.opt.ClipNorm = cfg.ClipNorm
	return ft, nil
}

// Model returns the fine-tuner's own (mutating) model copy.
func (f *FineTuner) Model() models.TGNN { return f.model }

// Pred returns the fine-tuner's own (mutating) decoder copy.
func (f *FineTuner) Pred() *models.EdgePredictor { return f.pred }

// SwapGraph retargets the build path at a new adjacency snapshot; the buffer
// pool, arena graph and optimizer state all survive the swap (see
// InferenceBuilder.SwapGraph).
func (f *FineTuner) SwapGraph(tcsr tgraph.Adjacency, edgeFeat *tensor.Matrix) error {
	return f.builder.SwapGraph(tcsr, edgeFeat)
}

// Capture snapshots the fine-tuner's current parameters as an immutable
// versioned WeightSet, ready for lock-free publication into a serving
// engine.
func (f *FineTuner) Capture(version uint64) *models.WeightSet {
	return models.CaptureWeights(version, f.model, f.pred)
}

// negativeDst mirrors Trainer.negativeDst: a uniform destination from the
// destination partition (or any node for general graphs).
func (f *FineTuner) negativeDst() int32 {
	lo := f.cfg.NumSrc
	return int32(lo + f.rng.Intn(f.cfg.NumNodes-lo))
}

// Step runs one fine-tune iteration on a batch of streamed events: roots
// [srcs | dsts | negatives] at the events' own timestamps, one pooled build,
// one forward–backward on the builder's reusable arena graph, BCE over
// positive and negative pairs, and one Adam update on the fine-tuner's
// parameter copies. negs supplies the negative destinations explicitly
// (len(events)); nil draws them from the fine-tuner's RNG in batch order,
// exactly as the offline loop draws them. Returns the batch loss.
func (f *FineTuner) Step(events []tgraph.Event, negs []int32) float64 {
	b := len(events)
	if b == 0 {
		return 0
	}
	if negs != nil && len(negs) != b {
		panic(fmt.Sprintf("train: FineTuner.Step got %d negatives for %d events", len(negs), b))
	}
	f.roots = grow(f.roots, 3*b)
	for i, ev := range events {
		neg := int32(0)
		if negs != nil {
			neg = negs[i]
		} else {
			neg = f.negativeDst()
		}
		f.roots[i] = sampler.Target{Node: ev.Src, Time: ev.Time}
		f.roots[b+i] = sampler.Target{Node: ev.Dst, Time: ev.Time}
		f.roots[2*b+i] = sampler.Target{Node: neg, Time: ev.Time}
	}

	mb := f.builder.Build(f.roots)
	g := f.builder.Graph()
	emb, _ := f.model.Forward(g, mb)

	f.srcIdx = grow(f.srcIdx, 2*b)
	f.dstIdx = grow(f.dstIdx, 2*b)
	f.labels = grow(f.labels, 2*b)
	for i := 0; i < b; i++ {
		f.srcIdx[i], f.dstIdx[i], f.labels[i] = int32(i), int32(b+i), 1 // positive
		f.srcIdx[b+i], f.dstIdx[b+i], f.labels[b+i] = int32(i), int32(2*b+i), 0
	}
	logits := f.pred.ScoreGathered(g, emb, f.srcIdx, f.dstIdx)
	lossVar := g.BCEWithLogits(logits, f.labels)
	loss := lossVar.Val.Data[0]
	g.Backward(lossVar)
	f.opt.Step()
	f.opt.ZeroGrad()
	f.builder.Release(mb)
	return loss
}
